package ftnoc_test

import (
	"testing"

	"ftnoc"
	"ftnoc/internal/experiments"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation section at quick scale (see cmd/experiments -full for the
// 300k-message runs). Each reports a headline metric from the produced
// series so a bench run doubles as a sanity check of the reproduced
// shape.

// pick returns the series value at the row with the given x.
func pick(f experiments.Figure, x float64, series string) float64 {
	for _, r := range f.Rows {
		if r.X == x {
			return r.Values[series]
		}
	}
	return 0
}

// BenchmarkFig5 regenerates the latency comparison of the three
// link-error handling schemes (HBH / E2E / FEC).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := experiments.Fig5(experiments.Quick)
		b.ReportMetric(pick(fig, 1e-1, "HBH"), "HBH@0.1_cycles")
		b.ReportMetric(pick(fig, 1e-1, "E2E"), "E2E@0.1_cycles")
		b.ReportMetric(pick(fig, 1e-1, "FEC"), "FEC@0.1_cycles")
	}
}

// BenchmarkFig6 regenerates the HBH latency-vs-error-rate series for the
// NR / BC / TN traffic patterns.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := experiments.Fig6(experiments.Quick)
		b.ReportMetric(pick(fig, 1e-5, "NR"), "NR@1e-5_cycles")
		b.ReportMetric(pick(fig, 1e-1, "NR"), "NR@0.1_cycles")
		b.ReportMetric(pick(fig, 1e-1, "TN"), "TN@0.1_cycles")
	}
}

// BenchmarkFig7 regenerates the HBH energy-per-message series.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := experiments.Fig7(experiments.Quick)
		b.ReportMetric(pick(fig, 1e-5, "NR"), "NR@1e-5_nJ")
		b.ReportMetric(pick(fig, 1e-1, "NR"), "NR@0.1_nJ")
	}
}

// BenchmarkFig8And9 regenerates both buffer-utilization figures
// (transmission and retransmission) for adaptive vs deterministic
// routing.
func BenchmarkFig8And9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f8, f9 := experiments.Fig8And9(experiments.Quick)
		b.ReportMetric(pick(f8, 0.9, "AD"), "tx_util_AD@0.9")
		b.ReportMetric(pick(f8, 0.9, "DT"), "tx_util_DT@0.9")
		b.ReportMetric(pick(f9, 0.3, "AD"), "rt_util_AD@0.3")
		b.ReportMetric(pick(f9, 0.9, "DT"), "rt_util_DT@0.9")
	}
}

// BenchmarkFig13a regenerates the corrected-error counts for the three
// isolated fault classes.
func BenchmarkFig13a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := experiments.Fig13a(experiments.Quick)
		b.ReportMetric(pick(fig, 1e-2, "LINK-HBH"), "LINK@1e-2")
		b.ReportMetric(pick(fig, 1e-2, "RT-Logic"), "RT@1e-2")
		b.ReportMetric(pick(fig, 1e-2, "SA-Logic"), "SA@1e-2")
	}
}

// BenchmarkFig13b regenerates the energy-per-packet series under each
// fault class.
func BenchmarkFig13b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := experiments.Fig13b(experiments.Quick)
		b.ReportMetric(pick(fig, 1e-2, "LINK-HBH"), "LINK@1e-2_nJ")
		b.ReportMetric(pick(fig, 1e-2, "SA-Logic"), "SA@1e-2_nJ")
	}
}

// BenchmarkTable1 regenerates the AC unit's power/area overhead table.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		b.ReportMetric(rows[1].PowerPct, "ac_power_pct")
		b.ReportMetric(rows[1].AreaPct, "ac_area_pct")
	}
}

// BenchmarkNetworkCycle measures raw simulation speed: wall time per
// simulated cycle of the paper's 8x8 platform at its 0.25 operating
// point.
//
// Compare against BenchmarkNetworkCycleBusAttached: the delta is the
// cost of structured tracing. With no sink attached (this benchmark) the
// event bus must be free — publishers guard every emission with the
// inlinable Bus.Enabled(), so the disabled path performs no event
// construction and no allocation. The ns/cycle here must match the
// pre-observability baseline within noise.
func BenchmarkNetworkCycle(b *testing.B) {
	cfg := ftnoc.NewConfig()
	net := ftnoc.New(cfg)
	k := net.Kernel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step()
	}
}

// nullSink counts events without retaining them: the cheapest possible
// consumer, isolating the bus's own fan-out cost.
type nullSink struct{ n uint64 }

func (s *nullSink) Emit(ftnoc.TraceEvent) { s.n++ }

// BenchmarkNetworkCycleBusAttached is the traced counterpart of
// BenchmarkNetworkCycle: identical platform with a minimal sink
// attached, so every guard turns true and every event is built and
// delivered.
func BenchmarkNetworkCycleBusAttached(b *testing.B) {
	cfg := ftnoc.NewConfig()
	cfg.TraceSink = &nullSink{}
	net := ftnoc.New(cfg)
	k := net.Kernel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step()
	}
}

// BenchmarkSimulationRun measures end-to-end runs of a small platform
// under link errors — the unit of every figure regeneration above.
func BenchmarkSimulationRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := ftnoc.NewConfig()
		cfg.Width, cfg.Height = 4, 4
		cfg.WarmupMessages = 200
		cfg.TotalMessages = 1_000
		cfg.Faults.Link = 1e-3
		cfg.Seed = uint64(i + 1)
		res := ftnoc.Run(cfg)
		if res.Stalled {
			b.Fatal("benchmark run stalled")
		}
	}
}

// BenchmarkDeadlockRecovery measures the burst-drain scenario: a
// deadlock-prone adaptive network recovering via probing + buffer
// shifting.
func BenchmarkDeadlockRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := ftnoc.NewConfig()
		cfg.Width, cfg.Height = 4, 4
		cfg.Routing = ftnoc.MinimalAdaptive
		cfg.VCs = 1
		cfg.BufDepth = 6
		cfg.InjectionRate = 0.6
		cfg.Cthres = 32
		cfg.WarmupMessages = 0
		cfg.InjectLimit = 2_000
		cfg.TotalMessages = 2_000
		cfg.Seed = uint64(i + 1)
		res := ftnoc.Run(cfg)
		if res.Stalled {
			b.ReportMetric(1, "stalls")
		}
	}
}
