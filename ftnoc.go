// Package ftnoc is a cycle-accurate simulator of fault-tolerant
// network-on-chip architectures, reproducing "Exploring Fault-Tolerant
// Network-on-Chip Architectures" (Park, Nicopoulos, Kim, Vijaykrishnan,
// Das — DSN 2006).
//
// The library models the paper's full system: a mesh/torus of pipelined
// virtual-channel wormhole routers with SEC/DED-protected links, the
// flit-based hop-by-hop retransmission scheme (§3.1), probing deadlock
// detection with retransmission-buffer recovery (§3.2), the Allocation
// Comparator protecting VA/SA/RT logic from single-event upsets (§4), the
// end-to-end and FEC-only baselines, and an area/power model calibrated
// to the paper's 90 nm synthesis results.
//
// Quick start:
//
//	cfg := ftnoc.NewConfig()          // the paper's 8x8 platform
//	cfg.Faults.Link = 1e-3            // inject link soft errors
//	res := ftnoc.Run(cfg)
//	fmt.Println(res.AvgLatency, ftnoc.EnergyPerMessageNJ(res))
//
// The package is a facade over the internal implementation packages; all
// simulation state lives in the value returned by New, so concurrent
// simulations are independent.
package ftnoc

import (
	"context"
	"io"

	"ftnoc/internal/deadlock"
	"ftnoc/internal/fault"
	"ftnoc/internal/invariant"
	"ftnoc/internal/kernel"
	"ftnoc/internal/link"
	"ftnoc/internal/network"
	"ftnoc/internal/power"
	"ftnoc/internal/routing"
	"ftnoc/internal/sim"
	"ftnoc/internal/topology"
	"ftnoc/internal/trace"
	"ftnoc/internal/traffic"
)

// Config parameterises a simulation. Obtain defaults from NewConfig and
// override fields; see the field documentation on the underlying type.
type Config = network.Config

// Results is the measurement record of a completed run.
type Results = network.Results

// FaultRates configures per-operation fault-injection probabilities.
type FaultRates = fault.Rates

// FaultClass identifies which router component a fault upsets.
type FaultClass = fault.Class

// Fault classes (Fig. 13's three error situations plus VA).
const (
	LinkError      = fault.LinkError
	RTLogic        = fault.RTLogic
	VALogic        = fault.VALogic
	SALogic        = fault.SALogic
	HandshakeError = fault.HandshakeError
)

// Protection selects the link-error handling scheme (Fig. 5).
type Protection = link.Protection

// Link protection schemes.
const (
	HBH = link.HBH
	E2E = link.E2E
	FEC = link.FEC
)

// Routing selects the routing algorithm.
type Routing = routing.Algorithm

// Routing algorithms. XY is the paper's deterministic baseline (DT);
// MinimalAdaptive is the adaptive one (AD). FaultAdaptive is the
// up*/down* fault-tolerant algorithm that reroutes around dead links
// and routers (required for graceful degradation under Mortality).
const (
	XY              = routing.XY
	MinimalAdaptive = routing.MinimalAdaptive
	WestFirst       = routing.WestFirst
	OddEven         = routing.OddEven
	FaultAdaptive   = routing.FaultAdaptive
)

// Pattern selects the traffic destination distribution.
type Pattern = traffic.Pattern

// Traffic patterns (§2.2 uses NR, BC and TN).
const (
	UniformRandom = traffic.UniformRandom
	BitComplement = traffic.BitComplement
	Tornado       = traffic.Tornado
	Transpose     = traffic.Transpose
	Shuffle       = traffic.Shuffle
	Hotspot       = traffic.Hotspot
)

// KernelKind selects the simulation scheduler (Config.Kernel): the naive
// tick-everything oracle, the quiescence-skipping kernel, the
// calendar-queue event-driven kernel (the default), or the
// mesh-partitioned parallel kernel (see Config.KernelWorkers). All four
// produce byte-identical Results; they differ only in wall-clock speed.
type KernelKind = kernel.Kind

// Kernel kinds.
const (
	KernelNaive     = kernel.Naive
	KernelQuiescent = kernel.Quiescent
	KernelEvent     = kernel.Event
	KernelParallel  = kernel.Parallel
)

// KernelKinds returns every kernel kind in its canonical order — the
// same set ParseKernel accepts, so tools that iterate schedulers
// (differential tests, benchmark harnesses) never fall behind a newly
// added kernel.
func KernelKinds() []KernelKind { return kernel.Kinds() }

// KernelStats is the scheduler's cumulative counter record (actor ticks
// executed, ticks skipped relative to the naive schedule, calendar events
// dispatched, and — under the parallel kernel — the per-worker breakdown
// with barrier-wait times), returned by Network.KernelStats.
type KernelStats = sim.Stats

// KernelWorkerStats is one parallel worker's slice of KernelStats.
type KernelWorkerStats = sim.WorkerStats

// TopologyKind selects the network shape.
type TopologyKind = topology.Kind

// Topology kinds.
const (
	Mesh  = topology.Mesh
	Torus = topology.Torus
)

// LinkID names a directed inter-router link, for hard-fault injection.
type LinkID = topology.LinkID

// Mortality schedules hard faults that strike mid-run: link and router
// deaths at fixed cycles plus an optional per-cycle hazard process. Set
// it on Config.Faults.Mortality; pair with the FaultAdaptive routing
// algorithm to study graceful degradation.
type Mortality = fault.Mortality

// Port identifies a router's physical channel.
type Port = topology.Port

// Router ports.
const (
	Local = topology.Local
	North = topology.North
	East  = topology.East
	South = topology.South
	West  = topology.West
)

// Network is a fully assembled simulation instance, for callers that
// want to step the kernel manually or inspect routers mid-run; most
// callers should use Run.
type Network = network.Network

// Observability. The simulator publishes typed microarchitectural events
// (flit lifecycle, NACKs, retransmissions, ECC corrections, AC
// mismatches, deadlock probes and recovery episodes, fault accounting)
// to a structured event bus; attach a sink via Config.TraceSink to
// consume them, and a Metrics registry via Config.Metrics for sampled
// per-router gauges. See package internal/trace for the event taxonomy.

// TraceEvent is one structured observability record.
type TraceEvent = trace.Event

// TraceKind classifies a TraceEvent.
type TraceKind = trace.Kind

// TraceSink consumes structured events (Config.TraceSink).
type TraceSink = trace.Sink

// Metrics is the sampled time-series registry (Config.Metrics).
type Metrics = trace.Metrics

// NewNDJSONTrace returns a sink streaming events to w as NDJSON, one
// fixed-field-order JSON object per line. Close it to flush.
func NewNDJSONTrace(w io.Writer) *trace.NDJSON { return trace.NewNDJSON(w) }

// NewChromeTrace returns a sink writing the Chrome trace_event format
// (load into Perfetto / chrome://tracing): one "process" per router, one
// "thread" per port. Close it to terminate the JSON.
func NewChromeTrace(w io.Writer) *trace.ChromeTrace { return trace.NewChromeTrace(w) }

// NewMetrics returns a registry that samples its gauges every interval
// cycles, streaming NDJSON rows to w. Close it to flush.
func NewMetrics(w io.Writer, interval uint64) *Metrics { return trace.NewMetrics(w, interval) }

// TeeTrace fans one event stream into several sinks.
func TeeTrace(sinks ...TraceSink) TraceSink { return trace.Tee(sinks...) }

// FilterTracePIDs wraps a sink, passing only events about the given
// packet IDs.
func FilterTracePIDs(s TraceSink, pids []uint64) TraceSink { return trace.FilterPIDs(s, pids) }

// FilterTraceKinds wraps a sink, passing only events of the given kinds.
func FilterTraceKinds(s TraceSink, kinds ...TraceKind) TraceSink {
	return trace.FilterKinds(s, kinds...)
}

// Verification. The simulator carries a runtime invariant checker that
// audits a run while it executes: flit conservation (every injected
// packet is delivered, terminally dropped, or still resident), credit
// flow-control conservation on every link, retransmission-buffer
// soundness, ECC consistency, deadlock-recovery liveness, and
// quiescence safety. Attach one via Config.Invariants (one checker per
// run — checkers are stateful) and inspect it after Run; the nocsim
// -check flag is the CLI form.

// InvariantChecker audits a single run against the simulator's
// structural invariants (Config.Invariants).
type InvariantChecker = invariant.Checker

// InvariantConfig tunes an InvariantChecker; the zero value is the
// recommended default (audit every cycle, record up to 100 violations).
type InvariantConfig = invariant.Config

// InvariantViolation is one recorded invariant failure, with the cycle
// and component it was attributed to. It implements error.
type InvariantViolation = invariant.Violation

// NewInvariantChecker returns a fresh checker for a single run.
func NewInvariantChecker(cfg InvariantConfig) *InvariantChecker { return invariant.New(cfg) }

// ReadConfig parses a JSON configuration (as written by Config.WriteJSON);
// absent fields keep NewConfig defaults.
func ReadConfig(r io.Reader) (Config, error) { return network.ReadConfig(r) }

// NewConfig returns the paper's evaluation platform defaults (§2.2):
// 8x8 mesh, 3-stage pipelined routers, 3 VCs per physical channel,
// 4-flit messages, XY routing, HBH protection, AC and deadlock recovery
// enabled, uniform traffic at 0.25 flits/node/cycle.
func NewConfig() Config { return network.NewConfig() }

// ErrInvalidConfig is the sentinel wrapped by every Config.Validate
// failure; test with errors.Is. New and Run still panic on invalid
// configurations (construction is programmer-driven); callers handling
// generated or user-supplied configurations should Validate first.
var ErrInvalidConfig = network.ErrInvalidConfig

// New assembles a simulation without running it. It panics on an invalid
// configuration; call cfg.Validate first to get the error instead.
func New(cfg Config) *Network { return network.New(cfg) }

// Run assembles and runs a simulation to completion. It is the
// zero-dependency wrapper around RunContext for callers that never
// cancel.
func Run(cfg Config) Results { return network.New(cfg).Run() }

// RunContext is Run with cooperative cancellation: the simulation polls
// ctx every network.AbortCheckInterval cycles and, once cancelled,
// returns the partial measurements with Results.Aborted set.
func RunContext(ctx context.Context, cfg Config) Results {
	return network.New(cfg).RunContext(ctx)
}

// ParseRouting parses a CLI routing name: xy/dt, adaptive/ad,
// west-first/westfirst, odd-even/oddeven (case-insensitive).
func ParseRouting(s string) (Routing, error) { return routing.Parse(s) }

// ParsePattern parses a CLI traffic-pattern name: NR, BC, TN, TP, SH, HS
// (case-insensitive).
func ParsePattern(s string) (Pattern, error) { return traffic.ParsePattern(s) }

// ParseProtection parses a CLI link-protection name: hbh, e2e, fec
// (case-insensitive).
func ParseProtection(s string) (Protection, error) { return link.ParseProtection(s) }

// ParseTopology parses a CLI topology name: mesh, torus
// (case-insensitive).
func ParseTopology(s string) (TopologyKind, error) { return topology.ParseKind(s) }

// ParseKernel parses a CLI kernel name: naive, quiescent, event,
// parallel (case-insensitive).
func ParseKernel(s string) (KernelKind, error) { return kernel.Parse(s) }

// ParseMortality parses a CLI hard-fault schedule: "none", or a
// comma-separated list of "link:NODEDIR@CYCLE" / "router:NODE@CYCLE" /
// "hazard:RATE@START-STOP" terms (e.g. "link:3E@1000,router:9@4000").
func ParseMortality(s string) (Mortality, error) { return fault.ParseMortality(s) }

// ConfigHash returns the configuration's canonical content hash: a hex
// SHA-256 over its canonical JSON form. Two configurations with the same
// hash produce byte-identical simulation results (runs are deterministic
// in the configuration, including the seed), which is what makes
// content-addressed result caching — nocd's /v1/campaigns cache — sound.
// Observability attachments (TraceSink, Metrics) do not affect results
// and are excluded from the hash.
func ConfigHash(cfg Config) (string, error) { return cfg.CanonicalHash() }

// EnergyPerMessageNJ converts a run's measured event counts into the
// paper's energy-per-message metric (nanojoules), using the 90 nm
// calibrated power model.
func EnergyPerMessageNJ(r Results) float64 {
	return power.EnergyPerMessage(r.Events, r.MeasuredMessages)
}

// TotalEnergyNJ returns the run's total measured dynamic energy in
// nanojoules.
func TotalEnergyNJ(r Results) float64 { return power.Energy(r.Events) }

// RouterPowerMW estimates a router configuration's power in milliwatts
// (90 nm, 1 V, 500 MHz), per the calibrated Table 1 model.
func RouterPowerMW(ports, vcs, bufDepth, retransDepth int, ac bool) float64 {
	return power.Power(power.RouterConfig{Ports: ports, VCs: vcs, BufDepth: bufDepth, RetransDepth: retransDepth, AC: ac})
}

// RouterAreaMM2 estimates a router configuration's area in mm².
func RouterAreaMM2(ports, vcs, bufDepth, retransDepth int, ac bool) float64 {
	return power.Area(power.RouterConfig{Ports: ports, VCs: vcs, BufDepth: bufDepth, RetransDepth: retransDepth, AC: ac})
}

// Eq1Satisfied evaluates the deadlock-recovery buffer lower bound of the
// paper's Equation (1) for n identical nodes with packet size m,
// transmission depth t and retransmission depth r.
func Eq1Satisfied(n, m, t, r int) bool { return deadlock.Eq1SatisfiedUniform(n, m, t, r) }

// MinTotalBuffer returns the smallest per-node total buffer size (T+R)
// that guarantees deadlock recovery per Equation (1).
func MinTotalBuffer(m, t int) int { return deadlock.MinTotalBuffer(m, t) }

// Eq1WorstCaseSatisfied evaluates the refined worst-case form of the
// buffer bound, which also counts the extra partial packet a wormhole
// buffer can hold when M divides T. See internal/deadlock for why the
// paper's own form understates that case.
func Eq1WorstCaseSatisfied(n, m, t, r int) bool {
	return deadlock.Eq1WorstCaseSatisfiedUniform(n, m, t, r)
}

// MinTotalBufferWorstCase returns the smallest per-node total buffer
// (T+R) that guarantees deadlock recovery under the refined worst case.
func MinTotalBufferWorstCase(m, t int) int { return deadlock.MinTotalBufferWorstCase(m, t) }
