package ftnoc_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"ftnoc"
)

func quickCfg() ftnoc.Config {
	cfg := ftnoc.NewConfig()
	cfg.Width, cfg.Height = 4, 4
	cfg.WarmupMessages = 200
	cfg.TotalMessages = 1_000
	return cfg
}

func TestPublicAPIRun(t *testing.T) {
	res := ftnoc.Run(quickCfg())
	if res.Stalled || res.Delivered < 1_000 {
		t.Fatalf("run incomplete: %v", res)
	}
	if e := ftnoc.EnergyPerMessageNJ(res); e <= 0 || e > 2 {
		t.Fatalf("energy per message %.4f nJ implausible", e)
	}
	if ftnoc.TotalEnergyNJ(res) <= 0 {
		t.Fatal("total energy zero")
	}
}

func TestPublicAPIDefaultsArePaperPlatform(t *testing.T) {
	cfg := ftnoc.NewConfig()
	if cfg.Width != 8 || cfg.Height != 8 || cfg.VCs != 3 || cfg.PacketSize != 4 ||
		cfg.PipelineDepth != 3 || cfg.InjectionRate != 0.25 {
		t.Fatalf("defaults diverge from the paper platform: %+v", cfg)
	}
	if cfg.Protection != ftnoc.HBH || cfg.Routing != ftnoc.XY || cfg.Pattern != ftnoc.UniformRandom {
		t.Fatal("default protocol choices diverge from the paper")
	}
	if !cfg.ACEnabled || !cfg.RecoveryEnabled || !cfg.TMREnabled {
		t.Fatal("protection mechanisms not on by default")
	}
	full := cfg.PaperScale()
	if full.TotalMessages != 300_000 || full.WarmupMessages != 100_000 {
		t.Fatalf("PaperScale = %d/%d, want 300k/100k", full.TotalMessages, full.WarmupMessages)
	}
}

func TestPublicAPIStepwise(t *testing.T) {
	net := ftnoc.New(quickCfg())
	k := net.Kernel()
	for i := 0; i < 100; i++ {
		k.Step()
	}
	if k.Cycle() != 100 {
		t.Fatalf("cycle = %d", k.Cycle())
	}
	if len(net.Routers()) != 16 {
		t.Fatalf("router count = %d", len(net.Routers()))
	}
	if net.Topology().Nodes() != 16 {
		t.Fatal("topology wrong")
	}
}

func TestPublicAPITable1Helpers(t *testing.T) {
	base := ftnoc.RouterPowerMW(5, 4, 4, 0, false)
	if math.Abs(base-119.55) > 0.01 {
		t.Fatalf("paper router power = %.2f, want 119.55", base)
	}
	withAC := ftnoc.RouterPowerMW(5, 4, 4, 0, true)
	if math.Abs(withAC-base-2.02) > 0.01 {
		t.Fatalf("AC power delta = %.3f, want 2.02", withAC-base)
	}
	area := ftnoc.RouterAreaMM2(5, 4, 4, 0, false)
	if math.Abs(area-0.374862) > 1e-5 {
		t.Fatalf("paper router area = %.6f", area)
	}
}

func TestPublicAPIEq1(t *testing.T) {
	if !ftnoc.Eq1Satisfied(3, 4, 4, 3) {
		t.Fatal("Fig. 10 example rejected")
	}
	if ftnoc.Eq1Satisfied(4, 4, 6, 0) {
		t.Fatal("violating case accepted")
	}
	if ftnoc.MinTotalBuffer(4, 6) != 9 {
		t.Fatal("MinTotalBuffer wrong")
	}
}

func TestPublicAPITorusRun(t *testing.T) {
	cfg := quickCfg()
	cfg.TopologyKind = ftnoc.Torus
	cfg.TotalMessages = 600
	cfg.WarmupMessages = 100
	res := ftnoc.Run(cfg)
	if res.Stalled || res.Delivered < 600 {
		t.Fatalf("torus run incomplete: %v", res)
	}
}

func TestPublicAPIDuplicateRetrans(t *testing.T) {
	cfg := quickCfg()
	cfg.DuplicateRetrans = true
	cfg.Faults.Link = 0.02
	cfg.TotalMessages = 600
	cfg.WarmupMessages = 100
	res := ftnoc.Run(cfg)
	if res.Stalled || res.Delivered < 600 || res.CorruptedPackets != 0 {
		t.Fatalf("duplicate-retrans run incomplete: %v", res)
	}
}

func TestPublicAPIValidate(t *testing.T) {
	if err := quickCfg().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := quickCfg()
	bad.InjectionRate = 2
	err := bad.Validate()
	if err == nil {
		t.Fatal("invalid config passed Validate")
	}
	if !errors.Is(err, ftnoc.ErrInvalidConfig) {
		t.Fatalf("error %v does not wrap ftnoc.ErrInvalidConfig", err)
	}
}

func TestPublicAPIRunContext(t *testing.T) {
	res := ftnoc.RunContext(context.Background(), quickCfg())
	if res.Aborted || res.Delivered < 1_000 {
		t.Fatalf("uncancelled RunContext: %+v", res)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res := ftnoc.RunContext(ctx, quickCfg()); !res.Aborted {
		t.Fatal("cancelled RunContext not aborted")
	}
}

func TestPublicAPIParseHelpers(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want ftnoc.Routing
	}{
		{"xy", ftnoc.XY}, {"DT", ftnoc.XY}, {"adaptive", ftnoc.MinimalAdaptive},
		{"westfirst", ftnoc.WestFirst}, {"west-first", ftnoc.WestFirst},
		{"oddeven", ftnoc.OddEven}, {"odd-even", ftnoc.OddEven},
	} {
		got, err := ftnoc.ParseRouting(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseRouting(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ftnoc.ParseRouting("spiral"); err == nil {
		t.Error("ParseRouting accepted nonsense")
	}
	if p, err := ftnoc.ParsePattern("tn"); err != nil || p != ftnoc.Tornado {
		t.Errorf("ParsePattern(tn) = %v, %v", p, err)
	}
	if _, err := ftnoc.ParsePattern("zz"); err == nil {
		t.Error("ParsePattern accepted nonsense")
	}
	if p, err := ftnoc.ParseProtection("E2E"); err != nil || p != ftnoc.E2E {
		t.Errorf("ParseProtection(E2E) = %v, %v", p, err)
	}
	if _, err := ftnoc.ParseProtection("rs"); err == nil {
		t.Error("ParseProtection accepted nonsense")
	}
}
