// Command nocd is the simulation-as-a-service daemon: it exposes the
// campaign engine over HTTP with a bounded job queue, a
// content-addressed result cache, and live progress streaming.
//
//	nocd -addr :8080 -workers 2 -queue 32 -cache-mb 128
//
// API:
//
//	POST   /v1/campaigns             submit a campaign spec (JSON); 202
//	                                 queued, 200 cache hit / coalesced,
//	                                 429 + Retry-After when the queue is full
//	GET    /v1/campaigns/{id}        status, progress and (when finished) results
//	GET    /v1/campaigns/{id}/events SSE per-point progress + terminal event
//	DELETE /v1/campaigns/{id}        cancel a queued or running campaign
//	GET    /v1/stats                 queue, job and cache counters
//	GET    /healthz                  liveness + build info (503 while draining)
//	GET    /metrics                  Prometheus text-format exposition
//
// SIGTERM/SIGINT drain gracefully: running campaigns get -drain to
// finish, then are canceled and publish their partial results; a second
// signal force-kills.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ftnoc/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
	workers := flag.Int("workers", 1, "campaigns executed concurrently")
	queue := flag.Int("queue", 16, "queued-campaign bound; beyond it submissions get 429")
	cacheMB := flag.Int64("cache-mb", 64, "result cache budget in MiB")
	retryAfter := flag.Duration("retry-after", 5*time.Second, "Retry-After hint on 429 responses")
	maxJobs := flag.Int("max-jobs", 1024, "finished-job records retained for GET")
	drain := flag.Duration("drain", 30*time.Second, "how long shutdown lets running campaigns finish before canceling them")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty: disabled)")
	flag.Parse()

	logger, err := newLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fatal(err)
	}

	srv := serve.New(serve.Options{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheBytes: *cacheMB << 20,
		RetryAfter: *retryAfter,
		MaxJobs:    *maxJobs,
		Logger:     logger,
	})

	// pprof stays off the service mux: profiling endpoints never share a
	// port with the public API, so exposing one cannot expose the other.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fatal(err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("pprof listening", "addr", pln.Addr().String())
		go func() {
			if err := http.Serve(pln, pmux); err != nil {
				logger.Error("pprof server", "err", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "nocd: listening on %s (%d workers, queue %d, cache %d MiB)\n",
		ln.Addr(), *workers, *queue, *cacheMB)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fatal(err)
		}
	}

	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	// First signal: graceful drain. stop() re-arms default signal
	// handling once the context fires, so a second Ctrl-C force-kills
	// instead of being swallowed for the rest of the drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)

	select {
	case err := <-serveErr:
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "nocd: shutting down — draining running campaigns (second signal force-kills)")

	// Refuse new jobs and drain campaigns first, so status/SSE requests
	// keep being served until every job has published its terminal state.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "nocd:", err)
	}
	cancel()

	// Then close the HTTP side: in-flight responses (including SSE
	// streams, which ended with the jobs' terminal events) get a moment
	// to flush.
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := hs.Shutdown(httpCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "nocd:", err)
	}
	fmt.Fprintln(os.Stderr, "nocd: bye")
}

// newLogger builds the daemon's slog.Logger from the -log-level and
// -log-format flags.
func newLogger(w *os.File, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("nocd: unknown -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("nocd: unknown -log-format %q (want text or json)", format)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocd:", err)
	os.Exit(1)
}
