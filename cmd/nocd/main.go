// Command nocd is the simulation-as-a-service daemon: it exposes the
// campaign engine over HTTP with a bounded job queue, a
// content-addressed result cache, and live progress streaming.
//
//	nocd -addr :8080 -workers 2 -queue 32 -cache-mb 128
//
// The -role flag scales it out:
//
//	nocd -role coordinator -addr :8080
//	nocd -role worker -coordinator http://host:8080 -addr :0
//
// A coordinator serves the same public API but executes campaigns by
// sharding them across registered workers (see internal/fabric); a
// worker serves shards and heartbeats to its coordinator. The default
// role, single, simulates in-process.
//
// API:
//
//	POST   /v1/campaigns             submit a campaign spec (JSON); 202
//	                                 queued, 200 cache hit / coalesced,
//	                                 429 + Retry-After when the queue is full
//	GET    /v1/campaigns/{id}        status, progress and (when finished) results
//	GET    /v1/campaigns/{id}/events SSE per-point progress + terminal event
//	DELETE /v1/campaigns/{id}        cancel a queued or running campaign
//	GET    /v1/stats                 queue, job and cache counters
//	GET    /healthz                  liveness + build info (503 while draining)
//	GET    /metrics                  Prometheus text-format exposition
//
// SIGTERM/SIGINT drain gracefully: running campaigns get -drain to
// finish, then are canceled and publish their partial results; a second
// signal force-kills.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ftnoc/internal/fabric"
	"ftnoc/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
	workers := flag.Int("workers", 1, "campaigns executed concurrently")
	queue := flag.Int("queue", 16, "queued-campaign bound; beyond it submissions get 429")
	cacheMB := flag.Int64("cache-mb", 64, "result cache budget in MiB")
	retryAfter := flag.Duration("retry-after", 5*time.Second, "Retry-After hint on 429 responses")
	maxJobs := flag.Int("max-jobs", 1024, "finished-job records retained for GET")
	drain := flag.Duration("drain", 30*time.Second, "how long shutdown lets running campaigns finish before canceling them")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty: disabled)")
	role := flag.String("role", "single", "daemon role: single (simulate in-process), coordinator (dispatch to workers), worker (execute shards)")
	coordinator := flag.String("coordinator", "", "coordinator base URL (worker role; required)")
	name := flag.String("name", "", "worker name (worker role; default <hostname>-<pid>)")
	slots := flag.Int("slots", 1, "concurrent shards this worker advertises (worker role)")
	advertise := flag.String("advertise", "", "base URL the coordinator reaches this worker at (worker role; default derived from the bound address)")
	shardPoints := flag.Int("shard-points", 8, "grid points per dispatched shard (coordinator role)")
	heartbeatTTL := flag.Duration("heartbeat-ttl", 15*time.Second, "worker liveness window (coordinator role)")
	tenantTokens := flag.Int("tenant-tokens", 0, "max in-flight shards per tenant (coordinator role; 0 = uncapped)")
	flag.Parse()

	logger, err := newLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fatal(err)
	}

	opts := serve.Options{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheBytes: *cacheMB << 20,
		RetryAfter: *retryAfter,
		MaxJobs:    *maxJobs,
		Logger:     logger,
	}
	var coord *fabric.Coordinator
	var worker *fabric.Worker
	switch *role {
	case "single":
	case "coordinator":
		coord = fabric.NewCoordinator(fabric.CoordinatorOptions{
			ShardPoints:  *shardPoints,
			HeartbeatTTL: *heartbeatTTL,
			TenantTokens: *tenantTokens,
			Logger:       logger,
		})
		opts.Runner = coord.Run
		opts.Fabric = coord.Handler()
		opts.ExtraMetrics = coord.Metrics()
	case "worker":
		if *coordinator == "" {
			fatal(errors.New("-role worker requires -coordinator"))
		}
		wname := *name
		if wname == "" {
			host, _ := os.Hostname()
			wname = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		worker = fabric.NewWorker(fabric.WorkerOptions{
			Name:        wname,
			Coordinator: *coordinator,
			Slots:       *slots,
			Logger:      logger,
		})
		opts.Fabric = worker.Handler()
		opts.ExtraMetrics = worker.Metrics()
	default:
		fatal(fmt.Errorf("unknown -role %q (want single, coordinator or worker)", *role))
	}

	srv := serve.New(opts)
	if coord != nil {
		// The server's content-addressed cache doubles as the fabric's
		// cache-peer store: shard results and whole-campaign results
		// share one byte budget.
		coord.SetCache(srv)
		defer coord.Close()
	}

	// pprof stays off the service mux: profiling endpoints never share a
	// port with the public API, so exposing one cannot expose the other.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fatal(err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("pprof listening", "addr", pln.Addr().String())
		go func() {
			if err := http.Serve(pln, pmux); err != nil {
				logger.Error("pprof server", "err", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "nocd: %s listening on %s (%d workers, queue %d, cache %d MiB)\n",
		*role, ln.Addr(), *workers, *queue, *cacheMB)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fatal(err)
		}
	}

	// A worker announces itself once it is actually reachable, and keeps
	// heartbeating until shutdown.
	if worker != nil {
		self := *advertise
		if self == "" {
			self = "http://" + reachableHostPort(ln.Addr().String())
		}
		regCtx, regCancel := context.WithCancel(context.Background())
		defer regCancel()
		go worker.RegisterLoop(regCtx, self)
	}

	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	// First signal: graceful drain. stop() re-arms default signal
	// handling once the context fires, so a second Ctrl-C force-kills
	// instead of being swallowed for the rest of the drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)

	select {
	case err := <-serveErr:
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "nocd: shutting down — draining running campaigns (second signal force-kills)")

	// Refuse new jobs and drain campaigns first, so status/SSE requests
	// keep being served until every job has published its terminal state.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "nocd:", err)
	}
	cancel()

	// Then close the HTTP side: in-flight responses (including SSE
	// streams, which ended with the jobs' terminal events) get a moment
	// to flush.
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := hs.Shutdown(httpCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "nocd:", err)
	}
	fmt.Fprintln(os.Stderr, "nocd: bye")
}

// reachableHostPort turns a bound listen address into one another
// process can dial: wildcard hosts become loopback. Multi-host fleets
// should pass -advertise instead.
func reachableHostPort(bound string) string {
	host, port, err := net.SplitHostPort(bound)
	if err != nil {
		return bound
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

// newLogger builds the daemon's slog.Logger from the -log-level and
// -log-format flags.
func newLogger(w *os.File, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("nocd: unknown -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("nocd: unknown -log-format %q (want text or json)", format)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocd:", err)
	os.Exit(1)
}
