// Command nocd is the simulation-as-a-service daemon: it exposes the
// campaign engine over HTTP with a bounded job queue, a
// content-addressed result cache, and live progress streaming.
//
//	nocd -addr :8080 -workers 2 -queue 32 -cache-mb 128
//
// API:
//
//	POST   /v1/campaigns             submit a campaign spec (JSON); 202
//	                                 queued, 200 cache hit / coalesced,
//	                                 429 + Retry-After when the queue is full
//	GET    /v1/campaigns/{id}        status, progress and (when finished) results
//	GET    /v1/campaigns/{id}/events SSE per-point progress + terminal event
//	DELETE /v1/campaigns/{id}        cancel a queued or running campaign
//	GET    /v1/stats                 queue, job and cache counters
//	GET    /healthz                  liveness (503 while draining)
//
// SIGTERM/SIGINT drain gracefully: running campaigns get -drain to
// finish, then are canceled and publish their partial results; a second
// signal force-kills.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ftnoc/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
	workers := flag.Int("workers", 1, "campaigns executed concurrently")
	queue := flag.Int("queue", 16, "queued-campaign bound; beyond it submissions get 429")
	cacheMB := flag.Int64("cache-mb", 64, "result cache budget in MiB")
	retryAfter := flag.Duration("retry-after", 5*time.Second, "Retry-After hint on 429 responses")
	maxJobs := flag.Int("max-jobs", 1024, "finished-job records retained for GET")
	drain := flag.Duration("drain", 30*time.Second, "how long shutdown lets running campaigns finish before canceling them")
	flag.Parse()

	srv := serve.New(serve.Options{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheBytes: *cacheMB << 20,
		RetryAfter: *retryAfter,
		MaxJobs:    *maxJobs,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "nocd: listening on %s (%d workers, queue %d, cache %d MiB)\n",
		ln.Addr(), *workers, *queue, *cacheMB)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fatal(err)
		}
	}

	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	// First signal: graceful drain. stop() re-arms default signal
	// handling once the context fires, so a second Ctrl-C force-kills
	// instead of being swallowed for the rest of the drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)

	select {
	case err := <-serveErr:
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "nocd: shutting down — draining running campaigns (second signal force-kills)")

	// Refuse new jobs and drain campaigns first, so status/SSE requests
	// keep being served until every job has published its terminal state.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "nocd:", err)
	}
	cancel()

	// Then close the HTTP side: in-flight responses (including SSE
	// streams, which ended with the jobs' terminal events) get a moment
	// to flush.
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := hs.Shutdown(httpCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "nocd:", err)
	}
	fmt.Fprintln(os.Stderr, "nocd: bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocd:", err)
	os.Exit(1)
}
