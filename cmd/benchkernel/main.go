// Command benchkernel is the kernel performance harness behind
// scripts/bench.sh. It times the Fig 5/6 quick workloads under every
// scheduler (naive, quiescent, event, parallel) and (optionally) a
// baseline git revision's nocsim binary, runs the kernel
// microbenchmarks, and writes the combined measurements to
// BENCH_kernel.json — the file that seeds the repo's perf trajectory.
//
//	benchkernel -out BENCH_kernel.json            # current tree only
//	benchkernel -baseline HEAD~1                  # plus speedup vs a ref
//
// The baseline comparison builds the ref's nocsim in a temporary git
// worktree and times it on the identical workloads. Results are
// byte-identical across schedulers and revisions (that is separately
// enforced by the differential tests), so cycle counts agree and the
// wall-clock ratio is a pure scheduler/allocator speedup.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"ftnoc"
)

// workload is one timed simulation: a config for in-process runs plus
// the equivalent nocsim arguments for timing a baseline binary.
type workload struct {
	name string
	cfg  ftnoc.Config
	args []string
}

// workloads are the quick-scale Fig 5/6 operating points at the low end
// of the error-rate axis (1e-5), where the ROADMAP's throughput demand
// bites: the error-handling machinery is nearly idle and scheduler +
// allocator overhead dominates. The 0.10-injection variant covers the
// low-load end of the paper's 0.1–0.4 operating range, where quiescence
// itself pays the most. The 16x16 large-mesh row is the parallel
// kernel's home turf: 512 actors per cycle give the row bands enough
// work to amortise the per-cycle barrier.
func workloads() []workload {
	quick := func() ftnoc.Config {
		cfg := ftnoc.NewConfig()
		cfg.WarmupMessages = 1_000
		cfg.TotalMessages = 4_000
		cfg.Faults.Link = 1e-5
		return cfg
	}
	fig5 := quick()
	fig6 := quick()
	fig6.Pattern = ftnoc.Tornado
	low := quick()
	low.InjectionRate = 0.10
	large := quick()
	large.Width, large.Height = 16, 16
	large.WarmupMessages = 4_000
	large.TotalMessages = 16_000
	common := []string{"-link-errors", "1e-5", "-messages", "4000", "-warmup", "1000"}
	return []workload{
		{"fig5_quick_hbh_err1e-5", fig5, append([]string{"-inj", "0.25"}, common...)},
		{"fig6_quick_tn_err1e-5", fig6, append([]string{"-inj", "0.25", "-pattern", "TN"}, common...)},
		{"fig56_quick_lowload_inj0.10", low, append([]string{"-inj", "0.10"}, common...)},
		{"large_16x16_inj0.25_err1e-5", large, []string{
			"-width", "16", "-height", "16", "-inj", "0.25",
			"-link-errors", "1e-5", "-messages", "16000", "-warmup", "4000"}},
	}
}

// measurement is one timed run of a workload under one scheduler.
type measurement struct {
	WallMS         float64 `json:"wall_ms"`
	CyclesPerSec   float64 `json:"cycles_per_sec"`
	SkippedRatio   float64 `json:"skipped_ratio,omitempty"`
	Events         uint64  `json:"events_dispatched,omitempty"`
	Workers        int     `json:"workers,omitempty"`
	SpeedupVsNaive float64 `json:"speedup_vs_naive,omitempty"`
}

// workloadResult is a workload's JSON record: one measurement per
// scheduler, keyed by kernel name, each carrying its own
// speedup_vs_naive (the naive entry's is 1).
type workloadResult struct {
	Name              string                 `json:"name"`
	Cycles            uint64                 `json:"cycles"`
	Kernels           map[string]measurement `json:"kernels"`
	Baseline          *measurement           `json:"baseline,omitempty"`
	SpeedupVsBaseline float64                `json:"speedup_vs_baseline,omitempty"`
}

// benchResult is one parsed `go test -bench` line.
type benchResult struct {
	Name    string             `json:"name"`
	N       int64              `json:"n"`
	Metrics map[string]float64 `json:"metrics"` // unit -> value (ns/op, allocs/op, ...)
}

// report is the BENCH_kernel.json schema. GOMAXPROCS qualifies every
// parallel-kernel number: on a 1-CPU host the parallel workers
// timeshare one core and the speedup column measures barrier overhead,
// not scaling.
type report struct {
	GoVersion   string           `json:"go_version"`
	GOOS        string           `json:"goos"`
	GOARCH      string           `json:"goarch"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	BaselineRef string           `json:"baseline_ref,omitempty"`
	Workloads   []workloadResult `json:"workloads"`
	Microbench  []benchResult    `json:"microbench"`
}

func main() {
	out := flag.String("out", "BENCH_kernel.json", "output file")
	baseline := flag.String("baseline", "", "git ref to build and time as the baseline (empty: skip)")
	reps := flag.Int("reps", 3, "timed repetitions per workload (best run is reported)")
	benchtime := flag.String("benchtime", "2s", "go test -benchtime for the microbenchmarks")
	kernelWorkers := flag.Int("kernel-workers", 0, "parallel-kernel worker goroutines (0 = GOMAXPROCS, clamped to mesh height)")
	flag.Parse()

	rep := report{
		GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	var baseBin string
	if *baseline != "" {
		rep.BaselineRef = *baseline
		var cleanup func()
		var err error
		baseBin, cleanup, err = buildBaseline(*baseline)
		if err != nil {
			fatal(err)
		}
		defer cleanup()
	}

	// Every kernel ParseKernel knows about, in canonical order (naive
	// first, so its entry exists when later kernels compute their
	// speedup) — a new kernel lands in the report without touching this
	// harness.
	for _, w := range workloads() {
		fmt.Fprintf(os.Stderr, "benchkernel: %s\n", w.name)
		r := workloadResult{Name: w.name, Kernels: map[string]measurement{}}
		for _, k := range ftnoc.KernelKinds() {
			cfg := w.cfg
			cfg.KernelWorkers = *kernelWorkers
			m, cycles := timeInProcess(cfg, k, *reps)
			r.Cycles = cycles
			if naive := r.Kernels[ftnoc.KernelNaive.String()]; naive.WallMS > 0 {
				m.SpeedupVsNaive = round3(m.CyclesPerSec / naive.CyclesPerSec)
			} else if k == ftnoc.KernelNaive {
				m.SpeedupVsNaive = 1
			}
			r.Kernels[k.String()] = m
		}
		if baseBin != "" {
			m := timeBinary(baseBin, w.args, r.Cycles, *reps)
			r.Baseline = &m
			if ev := r.Kernels[ftnoc.KernelEvent.String()]; m.WallMS > 0 {
				r.SpeedupVsBaseline = round3(ev.CyclesPerSec / m.CyclesPerSec)
			}
		}
		rep.Workloads = append(rep.Workloads, r)
	}

	var err error
	rep.Microbench, err = runMicrobench(*benchtime)
	if err != nil {
		fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "benchkernel: wrote", *out)
}

// timeInProcess runs the workload reps times in this process and keeps
// the fastest run (least scheduling noise); results are deterministic so
// every rep simulates the identical cycle count.
func timeInProcess(cfg ftnoc.Config, kind ftnoc.KernelKind, reps int) (measurement, uint64) {
	cfg.Kernel = kind
	var best measurement
	var cycles uint64
	for i := 0; i < reps; i++ {
		net := ftnoc.New(cfg)
		// Level the field between reps: without this, a rep can pay the
		// GC debt of the previous rep's discarded network inside the
		// timed region.
		runtime.GC()
		start := time.Now()
		res := net.Run()
		wall := time.Since(start)
		ks := net.KernelStats()
		m := measurement{
			WallMS:       round3(float64(wall.Microseconds()) / 1e3),
			CyclesPerSec: round3(float64(res.Cycles) / wall.Seconds()),
			Events:       ks.Events,
			Workers:      len(ks.Workers),
		}
		if total := ks.Ticked + ks.Skipped; total > 0 {
			m.SkippedRatio = round3(float64(ks.Skipped) / float64(total))
		}
		cycles = res.Cycles
		if best.WallMS == 0 || m.WallMS < best.WallMS {
			best = m
		}
	}
	return best, cycles
}

// timeBinary times an external nocsim binary on the workload's argument
// form. cycles is taken from the in-process run: the runs are
// byte-identical by construction, so the simulated horizon agrees.
func timeBinary(bin string, args []string, cycles uint64, reps int) measurement {
	var best measurement
	for i := 0; i < reps; i++ {
		cmd := exec.Command(bin, args...)
		cmd.Stdout, cmd.Stderr = nil, os.Stderr
		start := time.Now()
		if err := cmd.Run(); err != nil {
			fatal(fmt.Errorf("baseline run: %w", err))
		}
		wall := time.Since(start)
		m := measurement{
			WallMS:       round3(float64(wall.Microseconds()) / 1e3),
			CyclesPerSec: round3(float64(cycles) / wall.Seconds()),
		}
		if best.WallMS == 0 || m.WallMS < best.WallMS {
			best = m
		}
	}
	return best
}

// buildBaseline checks the ref out into a temporary git worktree, builds
// its nocsim, and returns the binary path plus a cleanup function.
func buildBaseline(ref string) (string, func(), error) {
	dir, err := os.MkdirTemp("", "benchkernel-baseline-*")
	if err != nil {
		return "", nil, err
	}
	tree := filepath.Join(dir, "tree")
	cleanup := func() {
		exec.Command("git", "worktree", "remove", "--force", tree).Run()
		os.RemoveAll(dir)
	}
	if out, err := exec.Command("git", "worktree", "add", "--detach", tree, ref).CombinedOutput(); err != nil {
		cleanup()
		return "", nil, fmt.Errorf("git worktree add %s: %v\n%s", ref, err, out)
	}
	bin := filepath.Join(dir, "nocsim")
	build := exec.Command("go", "build", "-o", bin, "./cmd/nocsim")
	build.Dir = tree
	if out, err := build.CombinedOutput(); err != nil {
		cleanup()
		return "", nil, fmt.Errorf("baseline build: %v\n%s", err, out)
	}
	return bin, cleanup, nil
}

// runMicrobench executes the kernel microbenchmarks via `go test` and
// parses the standard benchmark output lines.
func runMicrobench(benchtime string) ([]benchResult, error) {
	cmd := exec.Command("go", "test", "ftnoc/internal/network",
		"-run", "^$", "-bench", "BenchmarkKernel", "-benchtime", benchtime, "-benchmem", "-count", "1")
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	var results []benchResult
	for _, line := range strings.Split(string(out), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := benchResult{Name: strings.TrimSuffix(fields[0], "-"+strconv.Itoa(runtime.GOMAXPROCS(0))), N: n, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		results = append(results, r)
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("go test -bench produced no benchmark lines:\n%s", out)
	}
	return results, nil
}

// round3 trims float noise so the JSON diffs stay readable.
func round3(v float64) float64 {
	s, err := strconv.ParseFloat(strconv.FormatFloat(v, 'f', 3, 64), 64)
	if err != nil {
		return v
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchkernel:", err)
	os.Exit(1)
}
