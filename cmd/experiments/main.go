// Command experiments regenerates the paper's tables and figures. Each
// figure's grid of simulations runs in parallel on the campaign engine
// (default GOMAXPROCS workers).
//
//	experiments              # every figure at quick scale
//	experiments -fig 5       # just Fig. 5
//	experiments -table 1     # just Table 1
//	experiments -full        # the paper's 300k-message runs (slow)
//	experiments -workers 2   # bound the worker pool
package main

import (
	"flag"
	"fmt"
	"os"

	"ftnoc/internal/experiments"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 5, 6, 7, 8, 9, 13a, 13b (default: all)")
	table := flag.String("table", "", "table to regenerate: 1")
	full := flag.Bool("full", false, "run at the paper's 300k-message scale")
	formatName := flag.String("format", "text", "output format: text, csv, markdown")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
	flag.Parse()

	experiments.Workers = *workers

	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}
	format, err := experiments.ParseFormat(*formatName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	if *table == "1" {
		experiments.FprintTable1(os.Stdout, experiments.Table1())
		return
	}
	if *table != "" {
		fmt.Fprintf(os.Stderr, "experiments: unknown table %q\n", *table)
		os.Exit(1)
	}

	run := func(id string) {
		switch id {
		case "5":
			experiments.Fig5(scale).Render(os.Stdout, format)
		case "6":
			experiments.Fig6(scale).Render(os.Stdout, format)
		case "7":
			experiments.Fig7(scale).Render(os.Stdout, format)
		case "8", "9":
			f8, f9 := experiments.Fig8And9(scale)
			if id == "8" {
				f8.Render(os.Stdout, format)
			} else {
				f9.Render(os.Stdout, format)
			}
		case "13a":
			experiments.Fig13a(scale).Render(os.Stdout, format)
		case "13b":
			experiments.Fig13b(scale).Render(os.Stdout, format)
		default:
			fmt.Fprintf(os.Stderr, "experiments: unknown figure %q\n", id)
			os.Exit(1)
		}
		fmt.Println()
	}

	if *fig != "" {
		run(*fig)
		return
	}
	for _, id := range []string{"5", "6", "7", "13a", "13b"} {
		run(id)
	}
	f8, f9 := experiments.Fig8And9(scale)
	f8.Render(os.Stdout, format)
	fmt.Println()
	f9.Render(os.Stdout, format)
	fmt.Println()
	experiments.FprintTable1(os.Stdout, experiments.Table1())
}
