// Command nocsim runs one network simulation and prints its measurements.
//
// Example (the paper's platform with 1e-3 link errors):
//
//	nocsim -width 8 -height 8 -vcs 3 -inj 0.25 -link-errors 1e-3
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"ftnoc"
	"ftnoc/internal/visual"
)

func main() {
	cfg := ftnoc.NewConfig()

	width := flag.Int("width", cfg.Width, "mesh width")
	height := flag.Int("height", cfg.Height, "mesh height")
	torus := flag.Bool("torus", false, "use a torus instead of a mesh")
	vcs := flag.Int("vcs", cfg.VCs, "virtual channels per physical channel")
	bufDepth := flag.Int("buf", cfg.BufDepth, "input buffer depth per VC (flits)")
	depth := flag.Int("pipeline", cfg.PipelineDepth, "router pipeline depth (1-4)")
	packet := flag.Int("packet", cfg.PacketSize, "flits per message")
	inj := flag.Float64("inj", cfg.InjectionRate, "injection rate (flits/node/cycle)")
	pattern := flag.String("pattern", "NR", "traffic pattern: NR, BC, TN, TP, SH, HS")
	route := flag.String("routing", "xy", "routing: xy, adaptive, west-first, odd-even, fault-adaptive")
	prot := flag.String("protection", "hbh", "link protection: hbh, e2e, fec")
	linkErr := flag.Float64("link-errors", 0, "link error rate per flit traversal")
	mortality := flag.String("mortality", "", "hard-fault schedule: link:NODEDIR@CYCLE, router:NODE@CYCLE, hazard:RATE@START-STOP terms (comma-separated)")
	rtErr := flag.Float64("rt-errors", 0, "routing-unit upset rate per computation")
	vaErr := flag.Float64("va-errors", 0, "VC-allocator upset rate per allocation")
	saErr := flag.Float64("sa-errors", 0, "switch-allocator upset rate per arbitration")
	noAC := flag.Bool("no-ac", false, "disable the Allocation Comparator")
	noRecovery := flag.Bool("no-recovery", false, "disable deadlock recovery")
	duplicate := flag.Bool("duplicate-retrans", false, "duplicate retransmission buffers (section 4.5)")
	messages := flag.Uint64("messages", cfg.TotalMessages, "messages to eject (incl. warm-up)")
	warmup := flag.Uint64("warmup", cfg.WarmupMessages, "warm-up messages to discard")
	seed := flag.Uint64("seed", cfg.Seed, "simulation seed")
	paperScale := flag.Bool("paper-scale", false, "use the paper's 300k-message runs")
	heatmap := flag.Bool("heatmap", false, "print a per-router buffer-utilization floorplan")
	tracePIDs := flag.String("trace", "", "comma-separated packet IDs whose journeys to record and print")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event file (open in Perfetto / chrome://tracing)")
	eventsOut := flag.String("events-out", "", "stream structured events to an NDJSON file")
	metricsOut := flag.String("metrics-out", "", "stream sampled per-router metrics to an NDJSON file")
	metricsEvery := flag.Uint64("metrics-every", 100, "metrics sampling interval in cycles")
	kernelName := flag.String("kernel", "event", "simulation scheduler: naive, quiescent, event or parallel; results are identical, only speed differs")
	kernelWorkers := flag.Int("kernel-workers", 0, "with -kernel parallel, worker goroutines (0 = GOMAXPROCS, clamped to mesh height)")
	check := flag.Bool("check", false, "run the runtime invariant checker alongside the simulation; exit non-zero on any violation")
	checkEvery := flag.Uint64("check-every", 1, "with -check, audit network state every N cycles (1 = every cycle)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	configPath := flag.String("config", "", "load the configuration from a JSON file (other config flags are ignored)")
	saveConfig := flag.String("save-config", "", "write the effective configuration to a JSON file and exit")
	flag.Parse()

	cfg.Width, cfg.Height = *width, *height
	if *torus {
		cfg.TopologyKind = ftnoc.Torus
	}
	cfg.VCs = *vcs
	cfg.BufDepth = *bufDepth
	cfg.PipelineDepth = *depth
	cfg.PacketSize = *packet
	cfg.InjectionRate = *inj
	cfg.ACEnabled = !*noAC
	cfg.RecoveryEnabled = !*noRecovery
	cfg.DuplicateRetrans = *duplicate
	cfg.TotalMessages = *messages
	cfg.WarmupMessages = *warmup
	cfg.Seed = *seed
	cfg.Faults.Link = *linkErr
	cfg.Faults.RT = *rtErr
	cfg.Faults.VA = *vaErr
	cfg.Faults.SA = *saErr
	if *paperScale {
		cfg = cfg.PaperScale()
	}
	pids, err := parsePIDs(*tracePIDs)
	if err != nil {
		fatal(err)
	}
	cfg.TracePIDs = pids

	if cfg.Pattern, err = ftnoc.ParsePattern(*pattern); err != nil {
		fatal(err)
	}
	if cfg.Routing, err = ftnoc.ParseRouting(*route); err != nil {
		fatal(err)
	}
	if *mortality != "" {
		if cfg.Faults.Mortality, err = ftnoc.ParseMortality(*mortality); err != nil {
			fatal(err)
		}
	}
	if cfg.Protection, err = ftnoc.ParseProtection(*prot); err != nil {
		fatal(err)
	}
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			fatal(err)
		}
		cfg, err = ftnoc.ReadConfig(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	if *saveConfig != "" {
		f, err := os.Create(*saveConfig)
		if err != nil {
			fatal(err)
		}
		if err := cfg.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *saveConfig)
		return
	}

	// Observability sinks: Chrome trace, NDJSON event stream, metrics.
	var closers []func() error
	var sinks []ftnoc.TraceSink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		ct := ftnoc.NewChromeTrace(f)
		ct.ProcessName = func(node int) string {
			return fmt.Sprintf("router %d (%d,%d)", node, node%cfg.Width, node/cfg.Width)
		}
		ct.ThreadName = func(port int) string {
			return fmt.Sprintf("port %v", ftnoc.Port(port))
		}
		sinks = append(sinks, ct)
		closers = append(closers, ct.Close, f.Close)
	}
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			fatal(err)
		}
		nd := ftnoc.NewNDJSONTrace(f)
		sinks = append(sinks, nd)
		closers = append(closers, nd.Close, f.Close)
	}
	cfg.TraceSink = ftnoc.TeeTrace(sinks...)
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatal(err)
		}
		m := ftnoc.NewMetrics(f, *metricsEvery)
		cfg.Metrics = m
		closers = append(closers, m.Close, f.Close)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	// Validate up front so a bad flag combination prints one line, not a
	// stack trace; ^C aborts the run and reports the partial measurements.
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// Once the first interrupt fires, stop intercepting: a second ^C gets
	// the default handling and kills the process instead of being ignored
	// while the simulator finishes the abort path.
	context.AfterFunc(ctx, stop)
	// Kernel choice is scheduling-only (excluded from canonical JSON), so
	// it is applied after any -config load rather than read from it. The
	// invariant checker is likewise an observability attachment.
	if cfg.Kernel, err = ftnoc.ParseKernel(*kernelName); err != nil {
		fatal(err)
	}
	cfg.KernelWorkers = *kernelWorkers
	var chk *ftnoc.InvariantChecker
	if *check {
		chk = ftnoc.NewInvariantChecker(ftnoc.InvariantConfig{Every: *checkEvery})
		cfg.Invariants = chk
	}
	net := ftnoc.New(cfg)
	wallStart := time.Now()
	res := net.RunContext(ctx)
	wall := time.Since(wallStart)
	if res.Aborted {
		fmt.Fprintln(os.Stderr, "nocsim: interrupted — reporting partial measurements")
	}

	for _, c := range closers {
		if err := c(); err != nil {
			fatal(err)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("platform:       %dx%d %v, %d VCs/PC, %d-flit buffers, %d-stage routers\n",
		cfg.Width, cfg.Height, cfg.TopologyKind, cfg.VCs, cfg.BufDepth, cfg.PipelineDepth)
	fmt.Printf("workload:       %v @ %.3f flits/node/cycle, %d-flit messages, routing %v, protection %v\n",
		cfg.Pattern, cfg.InjectionRate, cfg.PacketSize, cfg.Routing, cfg.Protection)
	fmt.Printf("delivered:      %d messages in %d cycles (stalled: %v, aborted: %v)\n",
		res.Delivered, res.Cycles, res.Stalled, res.Aborted)
	fmt.Printf("kernel:         %s\n", kernelSummary(net, cfg.Kernel, res.Cycles, wall))
	fmt.Printf("latency:        avg %.2f, p95 %.0f, max %.0f cycles\n", res.AvgLatency, res.P95Latency, res.MaxLatency)
	fmt.Printf("throughput:     %s\n", res.Throughput)
	fmt.Printf("energy:         %.4f nJ/message\n", ftnoc.EnergyPerMessageNJ(res))
	fmt.Printf("buffer util:    transmission %.4f, retransmission %.4f\n", res.TxBufUtil, res.RtBufUtil)
	fmt.Printf("fault handling: %d NACKs, %d retransmissions, %d flits dropped\n",
		res.Counters.NACKs, res.Counters.Retransmissions, res.Counters.DroppedFlits)
	for _, cl := range []ftnoc.FaultClass{ftnoc.LinkError, ftnoc.RTLogic, ftnoc.VALogic, ftnoc.SALogic} {
		if res.Counters.Injected[cl] == 0 && res.Counters.Corrected[cl] == 0 {
			continue
		}
		fmt.Printf("  %-9v injected %d, corrected %d, undetected %d\n",
			cl, res.Counters.Injected[cl], res.Counters.Corrected[cl], res.Counters.Undetected[cl])
	}
	if res.Undeliverable > 0 || res.DeadLinks > 0 || res.DeadRouters > 0 {
		fmt.Printf("hard faults:    %d dead links, %d dead routers, %d undeliverable messages\n",
			res.DeadLinks, res.DeadRouters, res.Undeliverable)
		fmt.Printf("degradation:    reachable pairs %.4f, post-fault throughput %.4f flits/node/cycle\n",
			res.ReachablePairFraction, res.PostFaultThroughput)
	}
	if res.Recoveries > 0 || res.ProbesSent > 0 {
		fmt.Printf("deadlock:       %d probes, %d recovery episodes\n", res.ProbesSent, res.Recoveries)
	}
	if res.CorruptedPackets+res.LostPackets+res.E2ENACKs > 0 {
		fmt.Printf("end-to-end:     %d corrupted, %d retransmit requests, %d re-sent, %d lost (buf max %d)\n",
			res.CorruptedPackets, res.E2ENACKs, res.E2ERetransmits, res.LostPackets, res.E2EBufMax)
	}
	if hist := res.LatencyHist; len(hist) > 0 && res.Delivered > 0 {
		vals := make([]float64, len(hist))
		for i, c := range hist {
			vals[i] = float64(c)
		}
		fmt.Printf("latency dist:   %s (10-cycle bins from 0)\n", visual.Sparkline(vals))
	}
	tracedPIDs := make([]uint64, 0, len(res.Traces))
	for pid := range res.Traces {
		tracedPIDs = append(tracedPIDs, pid)
	}
	sort.Slice(tracedPIDs, func(i, j int) bool { return tracedPIDs[i] < tracedPIDs[j] })
	for _, pid := range tracedPIDs {
		fmt.Printf("\ntrace of packet %d:\n", pid)
		for _, l := range res.Traces[pid] {
			fmt.Println(" ", l)
		}
	}
	if *heatmap && res.RouterTxUtil != nil {
		fmt.Println()
		fmt.Print(visual.Heatmap(cfg.Width, cfg.Height, 0,
			"per-router transmission-buffer utilization",
			func(x, y int) float64 { return res.RouterTxUtil[y*cfg.Width+x] }))
	}
	if chk != nil {
		injected, ejected, dropped, events := chk.Stats()
		if err := chk.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "nocsim: invariant check FAILED:", err)
			for i, v := range chk.Violations() {
				if i >= 20 {
					fmt.Fprintf(os.Stderr, "  ... and %d more\n", chk.Total()-i)
					break
				}
				fmt.Fprintln(os.Stderr, " ", v)
			}
			os.Exit(1)
		}
		fmt.Printf("invariants:     clean — %d packets injected, %d ejected, %d dropped terminally (%d events audited)\n",
			injected, ejected, dropped, events)
	}
}

// kernelSummary renders the end-of-run scheduling line: the scheduler
// in use, simulated cycles per wall-clock second, the fraction of actor
// ticks elided relative to the naive schedule, and (for the event
// kernel) how many calendar events were dispatched.
func kernelSummary(net *ftnoc.Network, kind ftnoc.KernelKind, cycles uint64, wall time.Duration) string {
	ks := net.KernelStats()
	rate := "n/a"
	if wall > 0 {
		rate = fmt.Sprintf("%.0f cycles/sec", float64(cycles)/wall.Seconds())
	}
	s := fmt.Sprintf("%v, %s (wall %v)", kind, rate, wall.Round(time.Millisecond))
	if total := ks.Ticked + ks.Skipped; total > 0 {
		s += fmt.Sprintf(", %.1f%% actor ticks skipped", 100*float64(ks.Skipped)/float64(total))
	}
	if ks.Events > 0 {
		s += fmt.Sprintf(", %d events dispatched", ks.Events)
	}
	for i, w := range ks.Workers {
		s += fmt.Sprintf("\n                worker %d: %d ticked, %d skipped, barrier wait %v",
			i, w.Ticked, w.Skipped, time.Duration(w.BarrierWaitNs).Round(time.Microsecond))
	}
	return s
}

// parsePIDs parses the -trace flag: a comma-separated packet ID list.
// Empty (the default) disables journey tracing; "0" is a valid packet ID
// list entry no longer conflated with "disabled".
func parsePIDs(s string) ([]uint64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var pids []uint64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		pid, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -trace packet ID %q: %v", part, err)
		}
		pids = append(pids, pid)
	}
	return pids, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocsim:", err)
	os.Exit(1)
}
