// Command sweep produces latency-throughput curves: it sweeps the
// injection rate and prints offered load, accepted throughput, average
// latency and energy per message — the standard way to characterise a
// NoC configuration beyond the paper's fixed 0.25 operating point.
//
//	sweep -routing adaptive -link-errors 1e-3 -from 0.05 -to 0.5 -step 0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"ftnoc"
)

func main() {
	cfg := ftnoc.NewConfig()
	from := flag.Float64("from", 0.05, "first injection rate")
	to := flag.Float64("to", 0.50, "last injection rate")
	step := flag.Float64("step", 0.05, "injection rate step")
	width := flag.Int("width", cfg.Width, "mesh width")
	height := flag.Int("height", cfg.Height, "mesh height")
	vcs := flag.Int("vcs", cfg.VCs, "virtual channels per PC")
	adaptive := flag.Bool("adaptive", false, "use minimal adaptive routing (default XY)")
	linkErr := flag.Float64("link-errors", 0, "link error rate")
	messages := flag.Uint64("messages", 4000, "messages per point (incl. warm-up)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memProfile)

	cfg.Width, cfg.Height = *width, *height
	cfg.VCs = *vcs
	cfg.Faults.Link = *linkErr
	cfg.TotalMessages = *messages
	cfg.WarmupMessages = *messages / 4
	cfg.Seed = *seed
	if *adaptive {
		cfg.Routing = ftnoc.MinimalAdaptive
	}

	fmt.Printf("%-10s %-10s %-12s %-12s %-10s\n", "offered", "accepted", "avg_latency", "p95_latency", "nJ/msg")
	for rate := *from; rate <= *to+1e-9; rate += *step {
		c := cfg
		c.InjectionRate = rate
		// Past saturation a fixed message count cannot eject in bounded
		// time; cap the horizon and report what was measured.
		c.MaxCycles = 400_000
		c.StallCycles = c.MaxCycles
		res := ftnoc.Run(c)
		fmt.Printf("%-10.3f %-10.4f %-12.2f %-12.0f %-10.4f\n",
			rate, res.Throughput.FlitsPerNodePerCycle(), res.AvgLatency, res.P95Latency,
			ftnoc.EnergyPerMessageNJ(res))
	}
}

// writeMemProfile snapshots the heap to path (no-op when empty).
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
