// Command sweep produces latency-throughput curves: it sweeps the
// injection rate and prints offered load, accepted throughput, average
// latency and energy per message — the standard way to characterise a
// NoC configuration beyond the paper's fixed 0.25 operating point.
//
// Points run in parallel on the campaign engine (default GOMAXPROCS
// workers), optionally replicated across seeds (-seeds N prints each
// metric's 95% confidence half-width), and ^C aborts cleanly, reporting
// the points that completed.
//
//	sweep -routing adaptive -link-errors 1e-3 -from 0.05 -to 0.5 -step 0.05
//	sweep -pattern TN -seeds 5 -workers 8 -csv sweep.csv
//	sweep -seeds 3 -timeline spans.json   # engine span timeline for chrome://tracing
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ftnoc"
	"ftnoc/internal/campaign"
	"ftnoc/internal/trace"
)

func main() {
	cfg := ftnoc.NewConfig()
	from := flag.Float64("from", 0.05, "first injection rate")
	to := flag.Float64("to", 0.50, "last injection rate")
	step := flag.Float64("step", 0.05, "injection rate step")
	width := flag.Int("width", cfg.Width, "mesh width")
	height := flag.Int("height", cfg.Height, "mesh height")
	vcs := flag.Int("vcs", cfg.VCs, "virtual channels per PC")
	routingName := flag.String("routing", "xy", "routing algorithm: xy, adaptive, westfirst, oddeven, fault-adaptive")
	patternName := flag.String("pattern", "NR", "traffic pattern: NR, BC, TN, TP, SH, HS")
	protName := flag.String("protection", "hbh", "link protection: hbh, e2e, fec")
	linkErr := flag.Float64("link-errors", 0, "link error rate")
	mortalityAxis := flag.String("mortality", "", "hard-fault schedule axis: semicolon-separated schedules (each in link:3E@1000,router:9@4000 / hazard:RATE@START-STOP grammar; 'none' for the fault-free point)")
	messages := flag.Uint64("messages", 4000, "messages per point (incl. warm-up)")
	seed := flag.Uint64("seed", 1, "base simulation seed")
	seeds := flag.Int("seeds", 1, "replicates per point (distinct derived seeds; metrics print mean ± 95% CI)")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	kernelName := flag.String("kernel", "event", "simulation scheduler: naive, quiescent, event or parallel; results are identical, only speed differs")
	kernelWorkers := flag.Int("kernel-workers", 0, "with -kernel parallel, worker goroutines per simulation (0 = GOMAXPROCS, clamped to mesh height)")
	check := flag.Bool("check", false, "run the invariant checker inside every replicate; violations fail the replicate")
	csvOut := flag.String("csv", "", "also write the full result table to this CSV file")
	ndjsonOut := flag.String("ndjson", "", "also write the per-replicate result table to this NDJSON file")
	timelineOut := flag.String("timeline", "", "write the campaign span timeline (Chrome trace JSON, open in chrome://tracing or Perfetto) to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memProfile)

	routing, err := ftnoc.ParseRouting(*routingName)
	if err != nil {
		fatal(err)
	}
	pattern, err := ftnoc.ParsePattern(*patternName)
	if err != nil {
		fatal(err)
	}
	protection, err := ftnoc.ParseProtection(*protName)
	if err != nil {
		fatal(err)
	}
	// Scheduling-only: kernel choice never changes a replicate's Results,
	// so it is excluded from the spec's canonical hash.
	if cfg.Kernel, err = ftnoc.ParseKernel(*kernelName); err != nil {
		fatal(err)
	}
	cfg.KernelWorkers = *kernelWorkers

	cfg.Width, cfg.Height = *width, *height
	cfg.VCs = *vcs
	cfg.Routing = routing
	cfg.Pattern = pattern
	cfg.Protection = protection
	cfg.Faults.Link = *linkErr
	cfg.TotalMessages = *messages
	cfg.WarmupMessages = *messages / 4
	cfg.Seed = *seed
	// Past saturation a fixed message count cannot eject in bounded time;
	// cap the horizon and report what was measured.
	cfg.MaxCycles = 400_000
	cfg.StallCycles = cfg.MaxCycles

	var rates []float64
	for rate := *from; rate <= *to+1e-9; rate += *step {
		rates = append(rates, rate)
	}
	spec := campaign.Spec{
		Base:           cfg,
		InjectionRates: rates,
		Seeds:          *seeds,
		Workers:        *workers,
		Invariants:     *check,
	}
	if *mortalityAxis != "" {
		// Schedules use commas internally, so the axis separator is ";".
		for _, term := range strings.Split(*mortalityAxis, ";") {
			m, err := ftnoc.ParseMortality(strings.TrimSpace(term))
			if err != nil {
				fatal(err)
			}
			spec.MortalitySchedules = append(spec.MortalitySchedules, m)
		}
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	// The engine's span stream (campaign → point → replicate) renders
	// directly as a Chrome trace: lanes for the campaign, each grid
	// point's wall window, and per-worker replicate execution.
	var timeline *trace.ChromeTrace
	if *timelineOut != "" {
		f, err := os.Create(*timelineOut)
		if err != nil {
			fatal(err)
		}
		timeline = trace.NewChromeTrace(f)
		spec.Progress = timeline
		defer func() {
			if err := timeline.Close(); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintln(os.Stderr, "sweep: wrote", *timelineOut)
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// Once the first interrupt fires, stop intercepting: a second ^C gets
	// the default handling and kills the process instead of being ignored
	// while the engine drains in-flight points.
	context.AfterFunc(ctx, stop)
	report, err := campaign.Run(ctx, spec)
	if err != nil {
		fatal(err)
	}
	if report.Aborted {
		fmt.Fprintln(os.Stderr, "sweep: interrupted — reporting completed points only")
	}

	degradation := len(spec.MortalitySchedules) > 0
	if degradation {
		fmt.Printf("%-10s %-34s %-18s %-22s %-12s %-10s %-8s\n",
			"offered", "mortality", "accepted", "avg_latency", "p95_latency", "undeliv", "reach")
	} else {
		fmt.Printf("%-10s %-18s %-22s %-12s %-10s\n", "offered", "accepted", "avg_latency", "p95_latency", "nJ/msg")
	}
	for _, p := range report.Points {
		if p.Err != nil {
			fmt.Printf("%-10.3f %s\n", p.InjectionRate, p.Err)
			continue
		}
		if p.Agg.Completed == 0 {
			fmt.Printf("%-10.3f (aborted before completion)\n", p.InjectionRate)
			continue
		}
		if degradation {
			fmt.Printf("%-10.3f %-34s %-18s %-22s %-12.0f %-10.1f %-8.4f\n",
				p.InjectionRate, p.Mortality.String(),
				fmt.Sprintf("%.4f", p.Agg.Throughput.Mean)+ci(p.Agg.Throughput.CI95, 4),
				fmt.Sprintf("%.2f", p.Agg.AvgLatency.Mean)+ci(p.Agg.AvgLatency.CI95, 2),
				p.Agg.P95Latency.Mean, p.Agg.Undeliverable.Mean, p.Agg.ReachableFrac.Mean)
			continue
		}
		fmt.Printf("%-10.3f %-18s %-22s %-12.0f %-10.4f\n",
			p.InjectionRate,
			fmt.Sprintf("%.4f", p.Agg.Throughput.Mean)+ci(p.Agg.Throughput.CI95, 4),
			fmt.Sprintf("%.2f", p.Agg.AvgLatency.Mean)+ci(p.Agg.AvgLatency.CI95, 2),
			p.Agg.P95Latency.Mean, p.Agg.EnergyPerMsgNJ.Mean)
	}
	fmt.Fprintf(os.Stderr, "sweep: %d points x %d seed(s) in %v on %d workers\n",
		len(report.Points), max(*seeds, 1), report.Elapsed.Round(1_000_000), report.Workers)
	fmt.Fprintln(os.Stderr, "sweep: kernel:", kernelSummary(report))

	if *csvOut != "" {
		writeTable(*csvOut, report.WriteCSV)
	}
	if *ndjsonOut != "" {
		writeTable(*ndjsonOut, report.WriteNDJSON)
	}
}

// kernelSummary aggregates scheduler throughput across every completed
// replicate: simulated cycles per wall-clock second (summed over the
// parallel workers), the fraction of actor ticks elided relative to the
// naive schedule, and calendar events dispatched (event kernel only).
func kernelSummary(report *campaign.Report) string {
	var cycles, ticked, skipped, events uint64
	var workers []ftnoc.KernelWorkerStats
	for _, p := range report.Points {
		for _, rr := range p.Reps {
			if rr.Err != nil || rr.Seed == 0 {
				continue
			}
			cycles += rr.Results.Cycles
			ticked += rr.KernelTicked
			skipped += rr.KernelSkipped
			events += rr.KernelEvents
			for i, w := range rr.KernelWorkers {
				if i >= len(workers) {
					workers = append(workers, ftnoc.KernelWorkerStats{})
				}
				workers[i].Ticked += w.Ticked
				workers[i].Skipped += w.Skipped
				workers[i].BarrierWaitNs += w.BarrierWaitNs
			}
		}
	}
	rate := "n/a"
	if report.Elapsed > 0 {
		rate = fmt.Sprintf("%.0f cycles/sec", float64(cycles)/report.Elapsed.Seconds())
	}
	if ticked+skipped == 0 {
		return rate
	}
	s := fmt.Sprintf("%s aggregate, %.1f%% actor ticks skipped",
		rate, 100*float64(skipped)/float64(ticked+skipped))
	if events > 0 {
		s += fmt.Sprintf(", %d events dispatched", events)
	}
	for i, w := range workers {
		s += fmt.Sprintf("\nsweep: kernel: sim worker %d: %d ticked, %d skipped, barrier wait %v",
			i, w.Ticked, w.Skipped, time.Duration(w.BarrierWaitNs).Round(time.Microsecond))
	}
	return s
}

// ci renders a confidence half-width suffix ("±x.xx"), or nothing for
// unreplicated points.
func ci(halfWidth float64, prec int) string {
	if halfWidth == 0 {
		return ""
	}
	return fmt.Sprintf("±%.*f", prec, halfWidth)
}

// writeTable writes one of the report's table formats to path.
func writeTable(path string, render func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := render(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "sweep: wrote", path)
}

// writeMemProfile snapshots the heap to path (no-op when empty).
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
