#!/usr/bin/env bash
# bench.sh — kernel performance harness.
#
# Full mode (default) times the Fig 5/6 quick workloads under every
# scheduler (naive, quiescent, event, parallel), runs the kernel
# microbenchmarks, and writes BENCH_kernel.json at the repo root — each
# kernel's entry records speedup_vs_naive. Pass a git ref to also build
# that revision's nocsim and record the speedup against it:
#
#   scripts/bench.sh                      # current tree only
#   scripts/bench.sh --baseline HEAD~1    # plus speedup vs a revision
#   scripts/bench.sh --out /tmp/bench.json --baseline v0.1
#
# Smoke mode is the CI guard: it runs every kernel benchmark once (so
# they cannot bit-rot) and fails the build if the steady-state
# benchmark of any scheduler — event (BenchmarkKernelSteady), naive,
# quiescent, parallel, or the metrics-on variant — reports any
# allocations per simulated cycle:
#
#   scripts/bench.sh --smoke
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--smoke" ]]; then
    # One iteration of everything: compile + run each benchmark body.
    go test ./internal/network -run '^$' -bench 'BenchmarkKernel' -benchtime=1x -benchmem

    # Allocation guard. 200 measured cycles after each benchmark's own
    # 2000-cycle warm-up is enough for any per-cycle allocation to show
    # up as allocs/op >= 1 (Go reports the floor of the mean). All four
    # kernels are guarded — the calendar queue, the quiescence scan, the
    # naive loop and the parallel barrier step must each stay
    # allocation-free at steady state. The Metrics variant guards the
    # zero-cost-when-unscraped observability contract: gauges
    # registered, sampling interval never firing.
    for bench in BenchmarkKernelSteady BenchmarkKernelSteadyNaive \
                 BenchmarkKernelSteadyQuiescent BenchmarkKernelSteadyParallel \
                 BenchmarkKernelSteadyMetrics; do
        line=$(go test ./internal/network -run '^$' -bench "${bench}\$" \
            -benchtime=200x -benchmem | grep "^${bench}")
        allocs=$(awk '{for (i = 2; i <= NF; i++) if ($i == "allocs/op") print $(i-1)}' <<<"$line")
        if [[ -z "$allocs" ]]; then
            echo "bench.sh: could not parse allocs/op from: $line" >&2
            exit 1
        fi
        if [[ "$allocs" != "0" ]]; then
            echo "bench.sh: FAIL — ${bench} allocates ($allocs allocs/op); the steady-state hot path must be allocation-free" >&2
            exit 1
        fi
        echo "bench.sh: OK — ${bench} is allocation-free"
    done
    exit 0
fi

exec go run ./cmd/benchkernel "$@"
