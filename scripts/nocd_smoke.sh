#!/usr/bin/env bash
# End-to-end smoke test for the nocd daemon: build it, start it on a
# random port, run a tiny 2-point campaign over HTTP, stream its SSE
# progress to completion, then resubmit the identical spec and assert a
# cache hit with byte-identical results — scraping /metrics before and
# after the resubmit to prove the Prometheus counters track the same
# events. Finishes with a graceful SIGTERM shutdown.
#
# Used by CI; runnable locally from the repo root: scripts/nocd_smoke.sh
set -euo pipefail

workdir=$(mktemp -d)
nocd_pid=""
cleanup() {
    if [[ -n "$nocd_pid" ]] && kill -0 "$nocd_pid" 2>/dev/null; then
        kill -TERM "$nocd_pid" 2>/dev/null || true
        wait "$nocd_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

# metric FILE SERIES — extract one sample value from a text-format scrape.
metric() {
    awk -v s="$2" 'index($0, s " ") == 1 {print $NF}' "$1"
}

echo "== build nocd"
go build -o "$workdir/nocd" ./cmd/nocd

echo "== start nocd on a random port"
"$workdir/nocd" -addr 127.0.0.1:0 -addr-file "$workdir/addr" \
    -workers 1 -queue 4 -drain 20s 2>"$workdir/nocd.log" &
nocd_pid=$!
for _ in $(seq 1 100); do
    [[ -s "$workdir/addr" ]] && break
    sleep 0.1
done
[[ -s "$workdir/addr" ]] || { echo "nocd never wrote its address"; cat "$workdir/nocd.log"; exit 1; }
addr=$(cat "$workdir/addr")
echo "   listening on $addr"

body='{"base":{"Width":4,"Height":4,"TotalMessages":300,"WarmupMessages":50,"Seed":11},"injection_rates":[0.1,0.2],"seeds":2}'

echo "== submit a 2-point campaign"
curl -sf -X POST -d "$body" "http://$addr/v1/campaigns" >"$workdir/sub1.json"
id=$(jq -r .id "$workdir/sub1.json")
state=$(jq -r .state "$workdir/sub1.json")
[[ "$state" == "queued" ]] || { echo "fresh submission state = $state, want queued"; exit 1; }
echo "   id=$id"

echo "== stream SSE until the server closes the connection"
curl -sN --max-time 120 "http://$addr/v1/campaigns/$id/events" >"$workdir/sse.txt"
grep -q "^event: done$" "$workdir/sse.txt" || { echo "no terminal done event in SSE stream"; cat "$workdir/sse.txt"; exit 1; }
echo "   $(grep -c '^event: point-done$' "$workdir/sse.txt" || true) point-done events, terminal: done"

echo "== fetch results"
curl -sf "http://$addr/v1/campaigns/$id" >"$workdir/status1.json"
jq -e '.state == "done" and .cached == false and (.result | length) == 2' "$workdir/status1.json" >/dev/null \
    || { echo "unexpected status:"; jq . "$workdir/status1.json"; exit 1; }
jq -c '.result' "$workdir/status1.json" >"$workdir/result1.json"

echo "== healthz reports build info"
curl -sf "http://$addr/healthz" >"$workdir/healthz.json"
jq -e '.status == "ok" and .go_version != "" and .uptime_seconds >= 0' "$workdir/healthz.json" >/dev/null \
    || { echo "unexpected healthz document:"; cat "$workdir/healthz.json"; exit 1; }

echo "== scrape /metrics (baseline before the cached resubmit)"
curl -sf "http://$addr/metrics" >"$workdir/metrics1.txt"
grep -q '^# TYPE nocd_jobs_completed_total counter$' "$workdir/metrics1.txt" \
    || { echo "scrape missing nocd_jobs_completed_total TYPE header"; exit 1; }
for fam in nocd_http_requests_total nocd_queue_depth nocd_jobs nocd_cache_hits_total \
           nocd_sse_subscribers nocd_job_run_seconds_bucket nocd_build_info; do
    grep -q "^$fam" "$workdir/metrics1.txt" || { echo "scrape missing family $fam"; exit 1; }
done
done1=$(metric "$workdir/metrics1.txt" 'nocd_jobs_completed_total{state="done"}')
hits1=$(metric "$workdir/metrics1.txt" 'nocd_cache_hits_total')
[[ "$done1" == "1" ]] || { echo "jobs_completed_total{done} = $done1, want 1"; exit 1; }
echo "   jobs done=$done1 cache hits=$hits1"

echo "== resubmit the identical spec — must be a cache hit"
curl -sf -X POST -d "$body" "http://$addr/v1/campaigns" >"$workdir/sub2.json"
jq -e '.cached == true and .state == "done"' "$workdir/sub2.json" >/dev/null \
    || { echo "resubmission was not a cache hit:"; jq . "$workdir/sub2.json"; exit 1; }
hash1=$(jq -r .hash "$workdir/sub1.json")
hash2=$(jq -r .hash "$workdir/sub2.json")
[[ "$hash1" == "$hash2" ]] || { echo "hash mismatch: $hash1 vs $hash2"; exit 1; }
id2=$(jq -r .id "$workdir/sub2.json")
curl -sf "http://$addr/v1/campaigns/$id2" | jq -c '.result' >"$workdir/result2.json"
cmp -s "$workdir/result1.json" "$workdir/result2.json" \
    || { echo "cached result differs from fresh result"; diff "$workdir/result1.json" "$workdir/result2.json" || true; exit 1; }
jq -e '.cache.hits >= 1 and .cache.misses >= 1' <(curl -sf "http://$addr/v1/stats") >/dev/null \
    || { echo "cache counters missing the hit/miss"; exit 1; }
echo "   cache hit, result bytes identical"

echo "== /metrics counters moved across the cached resubmit"
curl -sf "http://$addr/metrics" >"$workdir/metrics2.txt"
done2=$(metric "$workdir/metrics2.txt" 'nocd_jobs_completed_total{state="done"}')
hits2=$(metric "$workdir/metrics2.txt" 'nocd_cache_hits_total')
[[ "$done2" == "2" ]] || { echo "jobs_completed_total{done} = $done2 after resubmit, want 2"; exit 1; }
awk -v a="$hits1" -v b="$hits2" 'BEGIN {exit !(b > a)}' \
    || { echo "cache_hits_total did not increment: $hits1 -> $hits2"; exit 1; }
# /v1/stats and /metrics must agree on the cache hit counter.
jq -e --argjson hits "$hits2" '.cache.hits == $hits' <(curl -sf "http://$addr/v1/stats") >/dev/null \
    || { echo "/v1/stats and /metrics disagree on cache hits"; exit 1; }
echo "   jobs done $done1->$done2, cache hits $hits1->$hits2, stats agree"

echo "== mortality degradation: 2-point hard-fault sweep"
mbody='{"base":{"Width":4,"Height":4,"TotalMessages":300,"WarmupMessages":50,"Seed":11},"routings":["fault-adaptive"],"injection_rates":[0.2],"mortality_schedules":["none","link:5E@100,router:9@150"],"seeds":2}'
curl -sf -X POST -d "$mbody" "http://$addr/v1/campaigns" >"$workdir/sub3.json"
mid=$(jq -r .id "$workdir/sub3.json")
curl -sN --max-time 120 "http://$addr/v1/campaigns/$mid/events" >"$workdir/sse3.txt"
grep -q "^event: done$" "$workdir/sse3.txt" || { echo "no terminal done event for mortality campaign"; cat "$workdir/sse3.txt"; exit 1; }
curl -sf "http://$addr/v1/campaigns/$mid" >"$workdir/status3.json"
jq -e '.state == "done" and (.result | length) == 2 and ([.result[].error // ""] | all(. == ""))' \
    "$workdir/status3.json" >/dev/null \
    || { echo "mortality campaign did not finish cleanly:"; jq . "$workdir/status3.json"; exit 1; }
# The fault-free point keeps full reachability; the faulted point's
# reachable-pair fraction must strictly degrade — the monotone curve the
# degradation plots are built from.
jq -e '
    (.result[] | select(.mortality == "none")) as $ok
    | (.result[] | select(.mortality != "none")) as $hurt
    | $ok.reachable_frac.mean == 1
      and $hurt.reachable_frac.mean < 1
      and $hurt.reachable_frac.mean > 0
' "$workdir/status3.json" >/dev/null \
    || { echo "degradation curve not monotone:"; jq '[.result[] | {mortality, reachable_frac}]' "$workdir/status3.json"; exit 1; }
echo "   reachable fraction: $(jq -r '[.result[].reachable_frac.mean] | @csv' "$workdir/status3.json") (fault-free vs faulted)"

echo "== graceful shutdown"
kill -TERM "$nocd_pid"
wait "$nocd_pid"
nocd_pid=""
grep -q "nocd: bye" "$workdir/nocd.log" || { echo "daemon did not shut down cleanly"; cat "$workdir/nocd.log"; exit 1; }

echo "nocd smoke: OK"
