#!/usr/bin/env bash
# coverage_gate.sh — fail the build if total test coverage regresses.
#
# Runs the full test suite with a coverage profile and compares the
# total statement coverage against scripts/coverage_baseline.txt. A drop
# of more than 0.5 points fails (slack absorbs run-to-run jitter from
# randomized tests); a rise of more than 2 points prints a reminder to
# ratchet the baseline up so the gain is locked in.
#
#   scripts/coverage_gate.sh            # gate against the baseline
#   scripts/coverage_gate.sh --update   # rewrite the baseline instead
set -euo pipefail
cd "$(dirname "$0")/.."

profile=$(mktemp)
trap 'rm -f "$profile"' EXIT

go test -count=1 -coverprofile="$profile" ./... >/dev/null
total=$(go tool cover -func="$profile" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
if [[ -z "$total" ]]; then
    echo "coverage_gate.sh: could not compute total coverage" >&2
    exit 1
fi

if [[ "${1:-}" == "--update" ]]; then
    echo "$total" > scripts/coverage_baseline.txt
    echo "coverage_gate.sh: baseline updated to ${total}%"
    exit 0
fi

baseline=$(cat scripts/coverage_baseline.txt)
echo "total coverage: ${total}% (baseline ${baseline}%)"

if ! awk -v t="$total" -v b="$baseline" 'BEGIN { exit !(t + 0.5 >= b) }'; then
    echo "coverage_gate.sh: FAIL — coverage fell more than 0.5 points below the baseline" >&2
    echo "  (if the drop is intentional, run scripts/coverage_gate.sh --update)" >&2
    exit 1
fi
if awk -v t="$total" -v b="$baseline" 'BEGIN { exit !(t > b + 2.0) }'; then
    echo "note: coverage is >2 points above baseline; run scripts/coverage_gate.sh --update to ratchet it"
fi
echo "coverage_gate.sh: OK"
