#!/usr/bin/env bash
# fuzz_smoke.sh — run every fuzz target in the module for a short burst.
#
# Targets are discovered with `go test -list`, so a new FuzzXxx anywhere
# in the tree is picked up without editing this script. Each target gets
# FUZZTIME (default 10s) of coverage-guided input generation on top of
# its seed corpus; any crasher fails the run and go leaves the input
# under the package's testdata/fuzz/ for reproduction.
#
#   scripts/fuzz_smoke.sh               # 10s per target (CI default)
#   FUZZTIME=60s scripts/fuzz_smoke.sh  # longer local soak
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"

# `go test -list` prints the matching target names of each package
# followed by that package's "ok <import path> ..." line; fold that into
# "<package> <target>" pairs.
targets=$(go test -list '^Fuzz' ./... | awk '
    /^Fuzz/ { names[n++] = $1 }
    /^ok/   { for (i = 0; i < n; i++) print $2, names[i]; n = 0 }
')
if [[ -z "$targets" ]]; then
    echo "fuzz_smoke.sh: no fuzz targets found" >&2
    exit 1
fi

count=0
while read -r pkg target; do
    echo "== $pkg $target ($FUZZTIME)"
    go test "$pkg" -run '^$' -fuzz "^${target}\$" -fuzztime "$FUZZTIME"
    count=$((count + 1))
done <<<"$targets"

echo "fuzz_smoke.sh: OK — $count targets fuzzed for $FUZZTIME each"
