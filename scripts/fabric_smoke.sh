#!/usr/bin/env bash
# End-to-end smoke test for the distributed fabric: build nocd, start a
# coordinator and two workers on random ports, submit a campaign through
# the coordinator's public API, SIGKILL one worker while it has a shard
# in flight, and assert the campaign still completes with rows
# byte-identical to a single-node run of the same spec. Finishes by
# scraping the coordinator's /metrics for the nocd_fabric_ families and
# checking the failure/retry counters recorded the kill.
#
# Used by CI; runnable locally from the repo root: scripts/fabric_smoke.sh
set -euo pipefail

workdir=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]}"; do
        kill -9 "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

# wait_file FILE — poll until FILE is non-empty (10s budget).
wait_file() {
    for _ in $(seq 1 100); do
        [[ -s "$1" ]] && return 0
        sleep 0.1
    done
    echo "timed out waiting for $1"
    return 1
}

# metric FILE SERIES — extract one sample value from a text-format scrape.
metric() {
    awk -v s="$2" 'index($0, s " ") == 1 {print $NF}' "$1"
}

echo "== build nocd"
go build -o "$workdir/nocd" ./cmd/nocd

echo "== start coordinator + 2 workers + a single-node reference daemon"
"$workdir/nocd" -role coordinator -addr 127.0.0.1:0 -addr-file "$workdir/coord.addr" \
    -shard-points 1 -heartbeat-ttl 2s 2>"$workdir/coord.log" &
pids+=($!)
wait_file "$workdir/coord.addr"
coord=$(cat "$workdir/coord.addr")
echo "   coordinator on $coord"

for w in alpha bravo; do
    "$workdir/nocd" -role worker -coordinator "http://$coord" -name "$w" \
        -addr 127.0.0.1:0 -addr-file "$workdir/$w.addr" 2>"$workdir/$w.log" &
    pids+=($!)
    eval "${w}_pid=\${pids[-1]}"
done
wait_file "$workdir/alpha.addr"
wait_file "$workdir/bravo.addr"

"$workdir/nocd" -role single -addr 127.0.0.1:0 -addr-file "$workdir/single.addr" \
    2>"$workdir/single.log" &
pids+=($!)
wait_file "$workdir/single.addr"
single=$(cat "$workdir/single.addr")

echo "== wait for both workers to register"
for _ in $(seq 1 100); do
    alive=$(curl -sf "http://$coord/fabric/v1/workers" | jq '[.[] | select(.alive)] | length')
    [[ "$alive" == "2" ]] && break
    sleep 0.1
done
[[ "$alive" == "2" ]] || { echo "workers never registered"; cat "$workdir"/*.log; exit 1; }
echo "   2 workers alive"

# 10 points, one per shard, heavy enough that the campaign is still
# running when the kill lands.
body='{"base":{"Width":4,"Height":4,"TotalMessages":4000,"WarmupMessages":200,"Seed":11},
       "injection_rates":[0.05,0.08,0.1,0.12,0.15,0.18,0.2,0.22,0.25,0.28],"seeds":1}'

echo "== submit through the coordinator"
curl -sf -X POST -d "$body" "http://$coord/v1/campaigns" >"$workdir/sub.json"
id=$(jq -r .id "$workdir/sub.json")
echo "   id=$id"

echo "== SIGKILL worker alpha while it has a shard in flight"
killed=""
for _ in $(seq 1 200); do
    busy=$(curl -sf "http://$coord/fabric/v1/workers" \
        | jq '[.[] | select(.name == "alpha")][0].busy')
    if [[ "$busy" -ge 1 ]]; then
        kill -9 "$alpha_pid"
        wait "$alpha_pid" 2>/dev/null || true
        killed=yes
        break
    fi
    state=$(curl -sf "http://$coord/v1/campaigns/$id" | jq -r .state)
    [[ "$state" == "done" || "$state" == "failed" ]] && break
    sleep 0.05
done
[[ -n "$killed" ]] || { echo "campaign finished before alpha was ever busy"; exit 1; }
echo "   alpha killed mid-shard"

echo "== campaign must still complete"
for _ in $(seq 1 600); do
    state=$(curl -sf "http://$coord/v1/campaigns/$id" | jq -r .state)
    [[ "$state" == "done" || "$state" == "failed" || "$state" == "canceled" ]] && break
    sleep 0.2
done
[[ "$state" == "done" ]] || { echo "cluster campaign state = $state, want done"; cat "$workdir/coord.log"; exit 1; }
curl -sf "http://$coord/v1/campaigns/$id" | jq -c '.result' >"$workdir/cluster.json"
rows=$(jq 'length' "$workdir/cluster.json")
[[ "$rows" == "10" ]] || { echo "cluster result has $rows rows, want 10"; exit 1; }
echo "   done, $rows rows"

echo "== single-node run of the same spec must be byte-identical"
curl -sf -X POST -d "$body" "http://$single/v1/campaigns" >"$workdir/ssub.json"
sid=$(jq -r .id "$workdir/ssub.json")
curl -sN --max-time 300 "http://$single/v1/campaigns/$sid/events" >/dev/null
curl -sf "http://$single/v1/campaigns/$sid" | jq -c '.result' >"$workdir/single.json"
cmp -s "$workdir/cluster.json" "$workdir/single.json" \
    || { echo "cluster rows differ from single-node rows"; diff "$workdir/cluster.json" "$workdir/single.json" || true; exit 1; }
echo "   byte-identical"

echo "== coordinator /metrics carries the fabric families and saw the kill"
curl -sf "http://$coord/metrics" >"$workdir/metrics.txt"
for fam in nocd_fabric_shards_dispatched_total nocd_fabric_shards_completed_total \
           nocd_fabric_shard_failures_total nocd_fabric_rows_received_total \
           nocd_fabric_workers_registered nocd_fabric_workers_alive \
           nocd_fabric_tenant_queue_depth; do
    grep -q "^$fam" "$workdir/metrics.txt" || { echo "scrape missing family $fam"; exit 1; }
done
completed=$(metric "$workdir/metrics.txt" nocd_fabric_shards_completed_total)
failures=$(metric "$workdir/metrics.txt" nocd_fabric_shard_failures_total)
retries=$(metric "$workdir/metrics.txt" nocd_fabric_shard_retries_total)
awk -v c="$completed" 'BEGIN {exit !(c >= 10)}' \
    || { echo "shards_completed_total = $completed, want >= 10"; exit 1; }
awk -v f="$failures" 'BEGIN {exit !(f >= 1)}' \
    || { echo "shard_failures_total = $failures, want >= 1 after the kill"; exit 1; }
awk -v r="$retries" 'BEGIN {exit !(r >= 1)}' \
    || { echo "shard_retries_total = $retries, want >= 1 after the kill"; exit 1; }
echo "   completed=$completed failures=$failures retries=$retries"

echo "fabric smoke: OK"
