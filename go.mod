module ftnoc

go 1.22
