package ftnoc_test

import (
	"fmt"
	"testing"

	"ftnoc"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: router
// pipeline depth (§2.1), the probing threshold Cthres (§3.2.2), the
// duplicate retransmission buffers (§4.5), and TMR on the handshake
// lines (§4.6). Each reports the metric the choice trades against.

// BenchmarkPipelineDepthAblation shows zero-load latency scaling with the
// number of router pipeline stages (4-stage baseline down to the
// single-stage router of [18]).
func BenchmarkPipelineDepthAblation(b *testing.B) {
	for depth := 1; depth <= 4; depth++ {
		depth := depth
		b.Run(fmt.Sprintf("stages=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ftnoc.NewConfig()
				cfg.Width, cfg.Height = 4, 4
				cfg.PipelineDepth = depth
				cfg.InjectionRate = 0.05
				cfg.WarmupMessages = 200
				cfg.TotalMessages = 1_000
				res := ftnoc.Run(cfg)
				if res.Stalled {
					b.Fatal("stalled")
				}
				b.ReportMetric(res.AvgLatency, "latency_cycles")
			}
		})
	}
}

// BenchmarkCthresSensitivity sweeps the deadlock-probing threshold. The
// paper argues its exact value barely matters because probing eliminates
// false positives; the completion time of a deadlock-prone burst should
// stay in the same ballpark across a wide range.
func BenchmarkCthresSensitivity(b *testing.B) {
	for _, cthres := range []uint64{16, 32, 64, 128} {
		cthres := cthres
		b.Run(fmt.Sprintf("Cthres=%d", cthres), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ftnoc.NewConfig()
				cfg.Width, cfg.Height = 4, 4
				cfg.Routing = ftnoc.MinimalAdaptive
				cfg.VCs = 1
				cfg.BufDepth = 6
				cfg.InjectionRate = 0.6
				cfg.Cthres = cthres
				cfg.WarmupMessages = 0
				cfg.InjectLimit = 2_000
				cfg.TotalMessages = 2_000
				cfg.Seed = uint64(i + 1)
				res := ftnoc.Run(cfg)
				// Under this 3x-oversaturated workload a minority of
				// seeds wedge past the Eq. (1) capacity before detection
				// completes (see EXPERIMENTS.md); report rather than fail.
				if res.Stalled {
					b.ReportMetric(1, "stalls")
					continue
				}
				b.ReportMetric(float64(res.Cycles), "drain_cycles")
				b.ReportMetric(float64(res.ProbesSent), "probes")
			}
		})
	}
}

// BenchmarkDuplicateRetransAblation compares the §4.5 duplicate
// retransmission buffers against the single-copy design: identical
// traffic behaviour, double the buffer cost.
func BenchmarkDuplicateRetransAblation(b *testing.B) {
	for _, dup := range []bool{false, true} {
		dup := dup
		name := "single"
		if dup {
			name = "duplicate"
		}
		b.Run(name, func(b *testing.B) {
			depth := 3
			if dup {
				depth = 6
			}
			b.ReportMetric(ftnoc.RouterAreaMM2(5, 3, 4, depth, true), "router_mm2")
			b.ReportMetric(ftnoc.RouterPowerMW(5, 3, 4, depth, true), "router_mW")
			for i := 0; i < b.N; i++ {
				cfg := ftnoc.NewConfig()
				cfg.Width, cfg.Height = 4, 4
				cfg.DuplicateRetrans = dup
				cfg.Faults.Link = 0.01
				cfg.WarmupMessages = 200
				cfg.TotalMessages = 1_000
				res := ftnoc.Run(cfg)
				if res.Stalled || res.CorruptedPackets != 0 {
					b.Fatal("run damaged")
				}
				b.ReportMetric(res.AvgLatency, "latency_cycles")
			}
		})
	}
}

// BenchmarkTMRAblation quantifies what the §4.6 handshake-line voter
// buys: with faults on the NACK wires, TMR keeps deliveries clean while
// the unprotected design corrupts packets.
func BenchmarkTMRAblation(b *testing.B) {
	for _, tmr := range []bool{true, false} {
		tmr := tmr
		name := "tmr"
		if !tmr {
			name = "unprotected"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ftnoc.NewConfig()
				cfg.Width, cfg.Height = 4, 4
				cfg.Faults.Link = 0.02
				cfg.Faults.Handshake = 0.3
				cfg.TMREnabled = tmr
				cfg.WarmupMessages = 0
				cfg.TotalMessages = 1_500
				cfg.StallCycles = 30_000
				cfg.MaxCycles = 150_000
				res := ftnoc.Run(cfg)
				b.ReportMetric(float64(res.CorruptedPackets+res.SinkAnomalies), "damaged_packets")
			}
		})
	}
}

// BenchmarkEq1Provisioning contrasts recovery with buffers meeting vs
// violating the Eq. (1) worst case: the under-provisioned configuration
// can wedge permanently, the compliant one always drains.
func BenchmarkEq1Provisioning(b *testing.B) {
	for _, bufDepth := range []int{6, 4} {
		bufDepth := bufDepth
		name := fmt.Sprintf("T=%d_worstcase_ok=%v", bufDepth, bufDepth+3 >= ftnoc.MinTotalBufferWorstCase(4, bufDepth))
		b.Run(name, func(b *testing.B) {
			drained := 0
			for i := 0; i < b.N; i++ {
				cfg := ftnoc.NewConfig()
				cfg.Width, cfg.Height = 4, 4
				cfg.Routing = ftnoc.MinimalAdaptive
				cfg.VCs = 1
				cfg.BufDepth = bufDepth
				cfg.InjectionRate = 0.6
				cfg.Cthres = 32
				cfg.WarmupMessages = 0
				cfg.InjectLimit = 2_000
				cfg.TotalMessages = 2_000
				cfg.StallCycles = 20_000
				cfg.Seed = uint64(i + 1)
				if res := ftnoc.Run(cfg); !res.Stalled {
					drained++
				}
			}
			b.ReportMetric(float64(drained)/float64(b.N), "drain_rate")
		})
	}
}
