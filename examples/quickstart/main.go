// Quickstart: simulate the paper's 8x8 evaluation platform under a
// moderate link soft-error rate and print the headline metrics.
package main

import (
	"fmt"

	"ftnoc"
)

func main() {
	// The paper's platform (§2.2): 8x8 mesh, 3-stage pipelined routers,
	// 3 VCs per physical channel, 4-flit messages, uniform traffic at
	// 0.25 flits/node/cycle, hop-by-hop retransmission protection.
	cfg := ftnoc.NewConfig()

	// Inject transient link errors: each flit traversal has a 1-in-1000
	// chance of a bit upset (5% of those are uncorrectable double flips).
	cfg.Faults.Link = 1e-3

	res := ftnoc.Run(cfg)

	fmt.Println("== ftnoc quickstart ==")
	fmt.Printf("delivered %d messages in %d cycles\n", res.Delivered, res.Cycles)
	fmt.Printf("average latency:  %.2f cycles\n", res.AvgLatency)
	fmt.Printf("throughput:       %.4f flits/node/cycle\n", res.Throughput.FlitsPerNodePerCycle())
	fmt.Printf("energy:           %.4f nJ/message\n", ftnoc.EnergyPerMessageNJ(res))
	fmt.Printf("link errors:      %d injected, %d corrected (%d retransmissions)\n",
		res.Counters.Injected[ftnoc.LinkError], res.Counters.Corrected[ftnoc.LinkError],
		res.Counters.Retransmissions)
	if res.CorruptedPackets == 0 {
		fmt.Println("integrity:        every delivered message arrived intact")
	} else {
		fmt.Printf("integrity:        %d corrupted messages escaped!\n", res.CorruptedPackets)
	}
}
