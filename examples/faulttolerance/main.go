// Fault tolerance walkthrough: exercises each protection mechanism of the
// paper in isolation — the HBH link scheme (§3.1), the Allocation
// Comparator for RT/VA/SA logic upsets (§4), and the unprotected ablation
// — and shows what each one catches.
package main

import (
	"fmt"

	"ftnoc"
)

func run(name string, mutate func(*ftnoc.Config)) ftnoc.Results {
	cfg := ftnoc.NewConfig()
	cfg.Width, cfg.Height = 4, 4
	cfg.WarmupMessages = 500
	cfg.TotalMessages = 4_000
	mutate(&cfg)
	res := ftnoc.Run(cfg)
	fmt.Printf("\n-- %s --\n", name)
	fmt.Printf("delivered %d messages, avg latency %.2f cycles, %.4f nJ/msg\n",
		res.Delivered, res.AvgLatency, ftnoc.EnergyPerMessageNJ(res))
	return res
}

func main() {
	fmt.Println("== fault-tolerance mechanisms, one at a time ==")

	// 1. Link soft errors, handled by SEC/DED + HBH retransmission.
	res := run("link errors @ 1% per flit-hop (HBH)", func(c *ftnoc.Config) {
		c.Faults.Link = 0.01
	})
	fmt.Printf("   corrected %d of %d injected link errors; %d NACK retransmission rounds\n",
		res.Counters.Corrected[ftnoc.LinkError], res.Counters.Injected[ftnoc.LinkError],
		res.Counters.NACKs)
	fmt.Printf("   corrupted deliveries: %d (must be 0)\n", res.CorruptedPackets)

	// 2. Routing-unit upsets, caught by the VA state info locally or by
	// the neighbor's consistency check (§4.2).
	res = run("routing-logic upsets @ 1e-3 (VA state + neighbor check)", func(c *ftnoc.Config) {
		c.Faults.RT = 1e-3
	})
	fmt.Printf("   corrected %d RT misdirections; stray flits: %d (must be 0)\n",
		res.Counters.Corrected[ftnoc.RTLogic], res.StrayFlits)

	// 3. Allocator upsets, caught by the Allocation Comparator (§4.1/4.3).
	res = run("VA+SA upsets @ 1e-3 (Allocation Comparator)", func(c *ftnoc.Config) {
		c.Faults.VA = 1e-3
		c.Faults.SA = 1e-3
	})
	fmt.Printf("   AC corrected: VA %d/%d, SA %d/%d\n",
		res.Counters.Corrected[ftnoc.VALogic], res.Counters.Injected[ftnoc.VALogic],
		res.Counters.Corrected[ftnoc.SALogic], res.Counters.Injected[ftnoc.SALogic])

	// 4. Ablation: the same VA fault rate with the AC disabled.
	res = run("VA upsets @ 5e-3 with the AC DISABLED (ablation)", func(c *ftnoc.Config) {
		c.Faults.VA = 5e-3
		c.ACEnabled = false
		c.TotalMessages = 2_000
		c.StallCycles = 30_000
		c.MaxCycles = 150_000
	})
	fmt.Printf("   damage: %d wormhole violations, %d stray flits, %d sink anomalies, stalled=%v\n",
		res.WormholeViolations, res.StrayFlits, res.SinkAnomalies, res.Stalled)
	fmt.Println("\nThe AC unit costs, per Table 1:")
	fmt.Printf("   +%.2f mW power and +%.4f mm2 area on a %.2f mW / %.4f mm2 router\n",
		ftnoc.RouterPowerMW(5, 4, 4, 0, true)-ftnoc.RouterPowerMW(5, 4, 4, 0, false),
		ftnoc.RouterAreaMM2(5, 4, 4, 0, true)-ftnoc.RouterAreaMM2(5, 4, 4, 0, false),
		ftnoc.RouterPowerMW(5, 4, 4, 0, false), ftnoc.RouterAreaMM2(5, 4, 4, 0, false))
}
