// Deadlock recovery walkthrough: first replays the exact buffer mechanics
// of the paper's Fig. 10 on a 3-node ring, then demonstrates the full
// network protocol — probing detection (Rules 1-4) plus
// retransmission-buffer recovery — rescuing a deadlock-prone adaptive
// network that wedges solid without it.
package main

import (
	"fmt"

	"ftnoc"
	"ftnoc/internal/deadlock"
)

func main() {
	fmt.Println("== Part 1: the Fig. 10 ring, step by step ==")
	ring := deadlock.NewRing(3, 4, 3)
	ring.Fill(4)
	fmt.Println("step 1 (deadlocked):", ring.Snapshot())
	ring.StartRecovery()
	for s := 2; s <= 7; s++ {
		ring.Step()
		fmt.Printf("step %d: %s\n", s, ring.Snapshot())
	}
	fmt.Println("after one rotation every flit has advanced 3 slots — the")
	fmt.Println("state of step 1, shifted, exactly as the paper's figure shows.")

	fmt.Println("\nEquation (1) lower bounds (total buffer T+R per node):")
	for _, tc := range []struct{ m, t int }{{4, 4}, {4, 6}, {8, 8}} {
		fmt.Printf("  %d-flit packets, %d-deep buffers: need > %d total slots\n",
			tc.m, tc.t, ftnoc.MinTotalBuffer(tc.m, tc.t)-1)
	}

	fmt.Println("\n== Part 2: the full network protocol ==")
	base := ftnoc.NewConfig()
	base.Width, base.Height = 4, 4
	base.Routing = ftnoc.MinimalAdaptive // fully adaptive: can deadlock
	base.VCs = 1                         // no escape channels
	base.BufDepth = 6                    // satisfies Eq. (1): 6+3 > 4*2
	base.InjectionRate = 0.6             // far beyond saturation
	base.Cthres = 32
	base.WarmupMessages = 0
	base.InjectLimit = 3_000 // bounded burst: everything must drain
	base.TotalMessages = 3_000
	base.StallCycles = 20_000
	base.Seed = 1

	off := base
	off.RecoveryEnabled = false
	resOff := ftnoc.Run(off)
	fmt.Printf("recovery OFF: delivered %d/%d, stalled=%v\n",
		resOff.Delivered, off.TotalMessages, resOff.Stalled)

	resOn := ftnoc.Run(base)
	fmt.Printf("recovery ON:  delivered %d/%d, stalled=%v\n",
		resOn.Delivered, base.TotalMessages, resOn.Stalled)
	fmt.Printf("              %d probes sent, %d recovery episodes, avg latency %.1f cycles\n",
		resOn.ProbesSent, resOn.Recoveries, resOn.AvgLatency)
	if resOff.Stalled && !resOn.Stalled {
		fmt.Println("\nthe probing + retransmission-buffer scheme broke every deadlock.")
	}
}
