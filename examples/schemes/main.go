// Protection-scheme comparison: reproduces the Fig. 5 experiment shape on
// a small platform — hop-by-hop retransmission (the paper's scheme)
// against the end-to-end and FEC-only baselines across link error rates —
// and prints why E2E also needs much larger retransmission buffers.
package main

import (
	"fmt"

	"ftnoc"
)

func main() {
	fmt.Println("== link-error handling schemes vs error rate (Fig. 5 shape) ==")
	fmt.Printf("%-12s %10s %10s %10s\n", "error_rate", "HBH", "FEC", "E2E")

	schemes := []struct {
		name string
		prot ftnoc.Protection
	}{
		{"HBH", ftnoc.HBH}, {"FEC", ftnoc.FEC}, {"E2E", ftnoc.E2E},
	}

	var e2eBufMax int
	for _, rate := range []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1} {
		lat := map[string]float64{}
		for _, s := range schemes {
			cfg := ftnoc.NewConfig()
			cfg.Width, cfg.Height = 4, 4
			cfg.Protection = s.prot
			cfg.Faults.Link = rate
			cfg.InjectionRate = 0.15
			cfg.WarmupMessages = 400
			cfg.TotalMessages = 2_400
			cfg.MaxCycles = 300_000
			res := ftnoc.Run(cfg)
			lat[s.name] = res.AvgLatency
			if s.prot == ftnoc.E2E && res.E2EBufMax > e2eBufMax {
				e2eBufMax = res.E2EBufMax
			}
		}
		fmt.Printf("%-12.0e %10.1f %10.1f %10.1f\n", rate, lat["HBH"], lat["FEC"], lat["E2E"])
	}

	fmt.Println("\nHBH stays flat; FEC rises once double errors force end-to-end")
	fmt.Println("retransmissions; E2E pays a round trip for any error at all.")
	fmt.Printf("\nbuffer cost: HBH retains 3 flits per VC; E2E sources retained up to %d whole packets\n", e2eBufMax)
	fmt.Println("awaiting acknowledgement — the worst-case round-trip sizing the paper warns about.")
}
