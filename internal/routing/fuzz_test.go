package routing

import "testing"

// FuzzParse holds the routing-name parser to: no panics; accepted names
// map to a known algorithm; and the algorithm's String form parses back
// to the same algorithm (the CLI prints names it must itself accept).
func FuzzParse(f *testing.F) {
	for _, s := range []string{"xy", "DT", "adaptive", "ad", "west-first", "WestFirst", "odd-even", "oddeven", "", "bogus"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := Parse(s)
		if err != nil {
			return
		}
		switch a {
		case XY, MinimalAdaptive, WestFirst, OddEven:
		default:
			t.Fatalf("Parse(%q) produced unknown algorithm %d", s, a)
		}
		back, err := Parse(a.String())
		if err != nil || back != a {
			t.Fatalf("String form %q of Parse(%q) does not round-trip: %v / %v", a, s, back, err)
		}
	})
}
