// Package routing implements the routing functions evaluated in the
// paper: deterministic dimension-order XY (the "DT" series of Figs. 8–9)
// and minimal adaptive routing (the "AD" series), plus west-first and
// odd-even turn-model algorithms as extensions. A routing function maps
// (current node, destination) to the set of output ports a header flit may
// legally request; the VC allocator arbitrates among the candidates.
package routing

import (
	"fmt"
	"strings"

	"ftnoc/internal/flit"
	"ftnoc/internal/topology"
)

// Algorithm names a routing function.
type Algorithm uint8

// Supported algorithms.
const (
	// XY is deterministic dimension-order routing: exhaust the X offset,
	// then the Y offset. Deadlock-free on a mesh. The paper's "DT".
	XY Algorithm = iota + 1
	// MinimalAdaptive returns every productive direction, giving maximal
	// minimal-path adaptivity. Not deadlock-free by itself — which is the
	// point: the paper's recovery scheme (§3.2), not avoidance, handles
	// deadlock. The paper's "AD".
	MinimalAdaptive
	// WestFirst is a turn-model algorithm: all west hops are taken first,
	// after which the packet may route adaptively among N/E/S. Deadlock-
	// free on a mesh with bounded adaptivity.
	WestFirst
	// OddEven is the odd-even turn model (referenced by the paper as a
	// fault-tolerant deterministic substrate [26]): it restricts where
	// east-north/east-south and north-west/south-west turns may occur
	// based on column parity.
	OddEven
	// FaultAdaptive is up*/down* routing over the surviving topology: a
	// BFS spanning orientation of the live graph restricts every path to
	// zero or more "up" hops followed by zero or more "down" hops, which
	// is deadlock-free on any connected fault pattern and delivers
	// between every mutually reachable pair. Its tables are rebuilt by
	// the reconfiguration controller at every hard-fault boundary; a
	// destination with no legal path yields an empty candidate set, which
	// the network converts into an undeliverable verdict instead of a
	// hang.
	FaultAdaptive
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case XY:
		return "xy"
	case MinimalAdaptive:
		return "adaptive"
	case WestFirst:
		return "west-first"
	case OddEven:
		return "odd-even"
	case FaultAdaptive:
		return "fault-adaptive"
	default:
		return fmt.Sprintf("Algorithm(%d)", uint8(a))
	}
}

// Parse maps a routing name to its Algorithm, case-insensitively. It
// accepts both the CLI short forms (xy/dt, adaptive/ad) and the String
// forms (west-first, odd-even), with and without the hyphen.
func Parse(s string) (Algorithm, error) {
	switch strings.ToLower(s) {
	case "xy", "dt":
		return XY, nil
	case "adaptive", "ad":
		return MinimalAdaptive, nil
	case "west-first", "westfirst":
		return WestFirst, nil
	case "odd-even", "oddeven":
		return OddEven, nil
	case "fault-adaptive", "faultadaptive", "fa", "updown", "up-down":
		return FaultAdaptive, nil
	default:
		return 0, fmt.Errorf("unknown routing %q (want xy, adaptive, westfirst, oddeven or fault-adaptive)", s)
	}
}

// Adaptive reports whether the algorithm may return more than one
// candidate port.
func (a Algorithm) Adaptive() bool { return a != XY }

// Func computes the legal output ports for a packet at cur heading for
// dst. Implementations must return Local exactly when cur == dst, and must
// never return a port without a physical link. Candidate order expresses
// preference; the allocator tries earlier ports first.
type Func interface {
	Route(cur, dst flit.NodeID) []topology.Port
	Algorithm() Algorithm
}

// New returns the routing function for algorithm a over topo.
func New(a Algorithm, topo *topology.Topology) Func {
	switch a {
	case XY:
		return xyFunc{topo}
	case MinimalAdaptive:
		return adaptiveFunc{topo}
	case WestFirst:
		return westFirstFunc{topo}
	case OddEven:
		return oddEvenFunc{topo}
	case FaultAdaptive:
		return NewFaultAdaptiveFunc(topo)
	default:
		panic("routing: unknown algorithm")
	}
}

// offsets returns the signed coordinate deltas from cur to dst, taking the
// shortest way around in a torus.
func offsets(t *topology.Topology, cur, dst flit.NodeID) (dx, dy int) {
	cc, dc := t.CoordOf(cur), t.CoordOf(dst)
	dx = dc.X - cc.X
	dy = dc.Y - cc.Y
	if t.Kind() == topology.Torus {
		if dx > t.Width()/2 {
			dx -= t.Width()
		} else if dx < -t.Width()/2 {
			dx += t.Width()
		}
		if dy > t.Height()/2 {
			dy -= t.Height()
		} else if dy < -t.Height()/2 {
			dy += t.Height()
		}
	}
	return dx, dy
}

type xyFunc struct{ t *topology.Topology }

func (f xyFunc) Algorithm() Algorithm { return XY }

func (f xyFunc) Route(cur, dst flit.NodeID) []topology.Port {
	if cur == dst {
		return []topology.Port{topology.Local}
	}
	dx, dy := offsets(f.t, cur, dst)
	switch {
	case dx > 0:
		return []topology.Port{topology.East}
	case dx < 0:
		return []topology.Port{topology.West}
	case dy > 0:
		return []topology.Port{topology.South}
	default:
		return []topology.Port{topology.North}
	}
}

type adaptiveFunc struct{ t *topology.Topology }

func (f adaptiveFunc) Algorithm() Algorithm { return MinimalAdaptive }

func (f adaptiveFunc) Route(cur, dst flit.NodeID) []topology.Port {
	if cur == dst {
		return []topology.Port{topology.Local}
	}
	dx, dy := offsets(f.t, cur, dst)
	var ps []topology.Port
	if dx > 0 {
		ps = append(ps, topology.East)
	} else if dx < 0 {
		ps = append(ps, topology.West)
	}
	if dy > 0 {
		ps = append(ps, topology.South)
	} else if dy < 0 {
		ps = append(ps, topology.North)
	}
	return ps
}

type westFirstFunc struct{ t *topology.Topology }

func (f westFirstFunc) Algorithm() Algorithm { return WestFirst }

func (f westFirstFunc) Route(cur, dst flit.NodeID) []topology.Port {
	if cur == dst {
		return []topology.Port{topology.Local}
	}
	dx, dy := offsets(f.t, cur, dst)
	if dx < 0 {
		// All westward movement first, no adaptivity.
		return []topology.Port{topology.West}
	}
	var ps []topology.Port
	if dx > 0 {
		ps = append(ps, topology.East)
	}
	if dy > 0 {
		ps = append(ps, topology.South)
	} else if dy < 0 {
		ps = append(ps, topology.North)
	}
	return ps
}

type oddEvenFunc struct{ t *topology.Topology }

func (f oddEvenFunc) Algorithm() Algorithm { return OddEven }

// Route implements the odd-even turn model (Chiu): in even columns a
// packet may not turn from east to north/south; in odd columns it may not
// turn from north/south to west. Restricting to minimal directions and
// applying the column-parity rules yields the classic formulation below.
func (f oddEvenFunc) Route(cur, dst flit.NodeID) []topology.Port {
	if cur == dst {
		return []topology.Port{topology.Local}
	}
	cc := f.t.CoordOf(cur)
	dc := f.t.CoordOf(dst)
	dx, dy := offsets(f.t, cur, dst)
	var ps []topology.Port
	if dx == 0 {
		if dy > 0 {
			ps = append(ps, topology.South)
		} else {
			ps = append(ps, topology.North)
		}
		return ps
	}
	if dx > 0 { // eastbound
		if dy == 0 {
			ps = append(ps, topology.East)
			return ps
		}
		// EN/ES turns are forbidden in even columns, so only allow the
		// vertical move when the current column is odd, or when the
		// packet is one column west of the destination (last chance).
		if cc.X%2 == 1 || cc.X == dc.X-1 {
			if dy > 0 {
				ps = append(ps, topology.South)
			} else {
				ps = append(ps, topology.North)
			}
		}
		ps = append(ps, topology.East)
		return ps
	}
	// westbound: NW/SW turns are forbidden in odd columns — take the
	// vertical move only in even columns; West is always available.
	if dy != 0 && cc.X%2 == 0 {
		if dy > 0 {
			ps = append(ps, topology.South)
		} else {
			ps = append(ps, topology.North)
		}
	}
	ps = append(ps, topology.West)
	return ps
}
