package routing

import (
	"testing"
	"testing/quick"

	"ftnoc/internal/flit"
	"ftnoc/internal/topology"
)

func mesh8() *topology.Topology { return topology.New(topology.Mesh, 8, 8) }

func TestXYSingleCandidate(t *testing.T) {
	r := New(XY, mesh8())
	for src := 0; src < 64; src += 7 {
		for dst := 0; dst < 64; dst += 5 {
			cands := r.Route(flit.NodeID(src), flit.NodeID(dst))
			if len(cands) != 1 {
				t.Fatalf("XY Route(%d,%d) returned %d candidates", src, dst, len(cands))
			}
		}
	}
}

func TestXYOrder(t *testing.T) {
	r := New(XY, mesh8())
	// From (1,1)=9 to (5,3)=29: X first (East) until aligned, then South.
	if got := r.Route(9, 29)[0]; got != topology.East {
		t.Fatalf("first hop = %v, want E", got)
	}
	// From (5,1)=13 to (5,3)=29: aligned in X, go South.
	if got := r.Route(13, 29)[0]; got != topology.South {
		t.Fatalf("aligned-X hop = %v, want S", got)
	}
}

func TestRouteToSelfIsLocal(t *testing.T) {
	topo := mesh8()
	for _, a := range []Algorithm{XY, MinimalAdaptive, WestFirst, OddEven} {
		r := New(a, topo)
		cands := r.Route(11, 11)
		if len(cands) != 1 || cands[0] != topology.Local {
			t.Errorf("%v: Route(self) = %v, want [L]", a, cands)
		}
	}
}

// walk follows a routing function from src to dst, always taking the
// first candidate, and returns the hop count (or -1 on a cycle/overrun).
func walk(t *testing.T, r Func, topo *topology.Topology, src, dst flit.NodeID) int {
	cur := src
	for hops := 0; hops <= 4*(topo.Width()+topo.Height()); hops++ {
		cands := r.Route(cur, dst)
		if len(cands) == 0 {
			t.Fatalf("%v: no candidates at %d for dst %d", r.Algorithm(), cur, dst)
		}
		if cands[0] == topology.Local {
			if cur != dst {
				t.Fatalf("%v: ejected at %d, dst %d", r.Algorithm(), cur, dst)
			}
			return hops
		}
		next, ok := topo.Neighbor(cur, cands[0])
		if !ok {
			t.Fatalf("%v: candidate %v at %d has no link", r.Algorithm(), cands[0], cur)
		}
		cur = next
	}
	return -1
}

// Every algorithm must deliver every (src,dst) pair, and the minimal ones
// must do it in exactly the Manhattan distance.
func TestAllAlgorithmsDeliverMinimally(t *testing.T) {
	topo := mesh8()
	for _, a := range []Algorithm{XY, MinimalAdaptive, WestFirst, OddEven} {
		r := New(a, topo)
		for src := 0; src < 64; src += 3 {
			for dst := 0; dst < 64; dst += 5 {
				s, d := flit.NodeID(src), flit.NodeID(dst)
				hops := walk(t, r, topo, s, d)
				if hops != topo.HopDistance(s, d) {
					t.Fatalf("%v: %d->%d took %d hops, minimal is %d", a, s, d, hops, topo.HopDistance(s, d))
				}
			}
		}
	}
}

// Every candidate an algorithm returns must be productive: following it
// reduces the distance to the destination.
func TestCandidatesAreProductive(t *testing.T) {
	topo := mesh8()
	f := func(sRaw, dRaw uint8, aRaw uint8) bool {
		algos := []Algorithm{XY, MinimalAdaptive, WestFirst, OddEven}
		a := algos[int(aRaw)%len(algos)]
		r := New(a, topo)
		s, d := flit.NodeID(sRaw%64), flit.NodeID(dRaw%64)
		if s == d {
			return true
		}
		for _, c := range r.Route(s, d) {
			next, ok := topo.Neighbor(s, c)
			if !ok {
				return false
			}
			if topo.HopDistance(next, d) != topo.HopDistance(s, d)-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveReturnsBothProductiveDirections(t *testing.T) {
	r := New(MinimalAdaptive, mesh8())
	// (1,1)=9 to (3,3)=27: both East and South are productive.
	cands := r.Route(9, 27)
	if len(cands) != 2 {
		t.Fatalf("adaptive Route(9,27) = %v, want 2 candidates", cands)
	}
	seen := map[topology.Port]bool{}
	for _, c := range cands {
		seen[c] = true
	}
	if !seen[topology.East] || !seen[topology.South] {
		t.Fatalf("adaptive candidates = %v, want {E,S}", cands)
	}
}

func TestWestFirstRestriction(t *testing.T) {
	r := New(WestFirst, mesh8())
	// Westward traffic gets no adaptivity: (5,1)=13 to (1,3)=25.
	cands := r.Route(13, 25)
	if len(cands) != 1 || cands[0] != topology.West {
		t.Fatalf("west-first westbound candidates = %v, want [W]", cands)
	}
	// Eastbound traffic may adapt: (1,1)=9 to (5,3)=29.
	if len(r.Route(9, 29)) < 2 {
		t.Fatal("west-first eastbound should offer adaptivity")
	}
}

// The odd-even turn model forbids east->north and east->south turns in
// even columns.
func TestOddEvenTurnRule(t *testing.T) {
	r := New(OddEven, mesh8())
	// At (2,1)=10 (even column), heading to (5,3)=29 (dx>0, dy>0): the
	// EN/ES turn is forbidden, so only East may be offered — unless the
	// node is just west of the destination column.
	for _, c := range r.Route(10, 29) {
		if c == topology.South || c == topology.North {
			t.Fatalf("odd-even allowed a vertical turn in an even column: %v", r.Route(10, 29))
		}
	}
	// At (3,1)=11 (odd column) the same request may turn.
	found := false
	for _, c := range r.Route(11, 29) {
		if c == topology.South {
			found = true
		}
	}
	if !found {
		t.Fatalf("odd-even refused a legal turn in an odd column: %v", r.Route(11, 29))
	}
}

func TestTorusShortestWay(t *testing.T) {
	topo := topology.New(topology.Torus, 8, 8)
	r := New(XY, topo)
	// 0 -> 7 should wrap west (1 hop), not walk east (7 hops).
	if got := r.Route(0, 7)[0]; got != topology.West {
		t.Fatalf("torus XY(0,7) = %v, want W (wrap)", got)
	}
}

func TestAlgorithmStringAndAdaptive(t *testing.T) {
	if XY.String() != "xy" || MinimalAdaptive.String() != "adaptive" {
		t.Error("Algorithm.String wrong")
	}
	if XY.Adaptive() {
		t.Error("XY reported adaptive")
	}
	for _, a := range []Algorithm{MinimalAdaptive, WestFirst, OddEven} {
		if !a.Adaptive() {
			t.Errorf("%v reported deterministic", a)
		}
	}
}

func TestNewPanicsOnUnknownAlgorithm(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown algorithm did not panic")
		}
	}()
	New(Algorithm(99), mesh8())
}
