package routing

import (
	"math/rand"
	"testing"

	"ftnoc/internal/flit"
	"ftnoc/internal/topology"
)

// bfsReachable is the oracle: component labels by plain BFS over the
// live graph, independent of the up*/down* machinery.
func bfsReachable(t *topology.Topology) []int {
	n := t.Width() * t.Height()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	for root := 0; root < n; root++ {
		if comp[root] >= 0 {
			continue
		}
		comp[root] = root
		queue := []flit.NodeID{flit.NodeID(root)}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, d := range dirs {
				if !t.LinkUp(cur, d) {
					continue
				}
				nbr, _ := t.Neighbor(cur, d)
				if comp[nbr] < 0 {
					comp[nbr] = root
					queue = append(queue, nbr)
				}
			}
		}
	}
	return comp
}

// failRandomLinks downs up to frac of the physical links, both
// directions, and returns the live topology.
func failRandomLinks(w, h int, frac float64, rng *rand.Rand) *topology.Topology {
	t := topology.New(topology.Mesh, w, h)
	links := t.Links()
	for _, l := range links {
		nbr, _ := t.Neighbor(l.From, l.Dir)
		if l.From > nbr {
			continue // one entry per physical link
		}
		if rng.Float64() < frac {
			t.FailLink(l.From, l.Dir)
			t.FailLink(nbr, l.Dir.Opposite())
		}
	}
	return t
}

// TestFaultAdaptiveProperties drives the routing function over random
// fault patterns (up to ~30% dead links) and asserts, against the BFS
// oracle: reachability agreement, progress (walking any candidate chain
// reaches the destination within a hop bound — no livelock), the
// up*/down* turn discipline (never down then up), and that candidates
// only ever name live links.
func TestFaultAdaptiveProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(0xfadada))
	for trial := 0; trial < 40; trial++ {
		w, h := 3+rng.Intn(5), 3+rng.Intn(5)
		topo := failRandomLinks(w, h, 0.3*rng.Float64(), rng)
		f := NewFaultAdaptiveFunc(topo)
		comp := bfsReachable(topo)
		n := w * h
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				s, d := flit.NodeID(src), flit.NodeID(dst)
				if got, want := f.Reachable(s, d), comp[src] == comp[dst]; got != want {
					t.Fatalf("trial %d (%dx%d): Reachable(%d,%d)=%v, oracle %v", trial, w, h, src, dst, got, want)
				}
				walkToDst(t, f, topo, s, d, comp)
			}
		}
	}
}

// walkToDst follows the worst candidate (the last offered) from src to
// dst, checking the turn discipline and a hop bound on the way.
func walkToDst(t *testing.T, f *FaultAdaptiveFunc, topo *topology.Topology, src, dst flit.NodeID, comp []int) {
	t.Helper()
	cur := src
	wentDown := false
	for hops := 0; ; hops++ {
		if hops > 4*len(comp) {
			t.Fatalf("livelock: %d -> %d not reached after %d hops", src, dst, hops)
		}
		ps := f.Route(cur, dst)
		if cur == dst {
			if len(ps) != 1 || ps[0] != topology.Local {
				t.Fatalf("Route(%d,%d) at destination = %v, want [Local]", cur, dst, ps)
			}
			return
		}
		if comp[src] != comp[dst] {
			if len(ps) != 0 {
				t.Fatalf("Route(%d,%d) offered %v for an unreachable destination", cur, dst, ps)
			}
			return
		}
		if len(ps) == 0 {
			t.Fatalf("Route(%d,%d) empty for a reachable destination (at %d)", src, dst, cur)
		}
		next := ps[len(ps)-1]
		if !topo.LinkUp(cur, next) {
			t.Fatalf("Route(%d,%d) offered dead link %v at %d", src, dst, next, cur)
		}
		nbr, _ := topo.Neighbor(cur, next)
		if f.before(cur, nbr) { // down hop
			wentDown = true
		} else if wentDown {
			t.Fatalf("down→up turn on %d -> %d at node %d", src, dst, cur)
		}
		cur = nbr
	}
}

// TestFaultAdaptiveRebuildTracksDeaths kills links one at a time and
// re-checks reachability agreement after every Rebuild.
func TestFaultAdaptiveRebuildTracksDeaths(t *testing.T) {
	topo := topology.New(topology.Mesh, 4, 4)
	f := NewFaultAdaptiveFunc(topo)
	rng := rand.New(rand.NewSource(7))
	links := topo.Links()
	for kill := 0; kill < 8; kill++ {
		l := links[rng.Intn(len(links))]
		nbr, _ := topo.Neighbor(l.From, l.Dir)
		if !topo.LinkUp(l.From, l.Dir) {
			continue
		}
		topo.FailLink(l.From, l.Dir)
		topo.FailLink(nbr, l.Dir.Opposite())
		f.Rebuild()
		comp := bfsReachable(topo)
		for src := 0; src < 16; src++ {
			for dst := 0; dst < 16; dst++ {
				if got, want := f.Reachable(flit.NodeID(src), flit.NodeID(dst)), comp[src] == comp[dst]; got != want {
					t.Fatalf("after kill %d: Reachable(%d,%d)=%v, oracle %v", kill, src, dst, got, want)
				}
			}
		}
	}
}

func TestFaultAdaptiveParseAndString(t *testing.T) {
	if FaultAdaptive.String() != "fault-adaptive" {
		t.Fatalf("String = %q", FaultAdaptive.String())
	}
	for _, s := range []string{"fault-adaptive", "faultadaptive", "FA", "updown", "up-down"} {
		a, err := Parse(s)
		if err != nil || a != FaultAdaptive {
			t.Fatalf("Parse(%q) = %v, %v", s, a, err)
		}
	}
	if !FaultAdaptive.Adaptive() {
		t.Fatal("FaultAdaptive must report adaptive")
	}
	if New(FaultAdaptive, topology.New(topology.Mesh, 3, 3)).Algorithm() != FaultAdaptive {
		t.Fatal("factory wired wrong")
	}
}
