package routing

import (
	"math"
	"sort"

	"ftnoc/internal/flit"
	"ftnoc/internal/topology"
)

// FaultAdaptiveFunc is the up*/down* routing function (Autonet's scheme,
// the substrate of general fault-tolerant deadlock-free routing): every
// live link is oriented by a BFS of the surviving topology, and a legal
// path takes zero or more "up" hops (toward the component root in the
// (level, id) order) followed by zero or more "down" hops — the down→up
// turn is forbidden. The orientation gives two consequences at once:
//
//   - Deadlock-freedom on ANY fault pattern: up channels only ever wait
//     on channels with strictly smaller (level, id) target, down
//     channels only on strictly larger, and up never waits on down via
//     the forbidden turn — so the channel dependency graph is acyclic
//     and wormhole deadlock is impossible, no matter which links died.
//   - Delivery between mutually reachable pairs: within a connected
//     component the BFS root reaches every node by down hops along tree
//     edges, so cur ⇝ root ⇝ dst is always legal; the distance tables
//     below find the shortest legal path, not just that fallback.
//
// Route consults precomputed per-destination distance tables; Rebuild
// recomputes them from the live topology and must be called (serially —
// Route is lock-free) whenever a hard fault changes the graph.
type FaultAdaptiveFunc struct {
	t *topology.Topology
	n int

	// level is each node's BFS depth in its component (roots at 0);
	// comp is the component id (the root's node id). The pair
	// (level, id) totally orders nodes; a hop a→b is "up" iff
	// (level[b], b) < (level[a], a).
	level []int32
	comp  []int32

	// down[dst*n+v] is the length of the shortest down-only path v→dst
	// (infDist if none); updown[dst*n+v] the shortest legal up*/down*
	// path. A packet at v bound for dst descends while down is finite
	// and climbs along decreasing updown otherwise.
	down   []uint16
	updown []uint16
}

const infDist = math.MaxUint16

// NewFaultAdaptiveFunc builds the routing function and its initial
// tables over topo's current live graph.
func NewFaultAdaptiveFunc(t *topology.Topology) *FaultAdaptiveFunc {
	n := t.Width() * t.Height()
	f := &FaultAdaptiveFunc{
		t: t, n: n,
		level:  make([]int32, n),
		comp:   make([]int32, n),
		down:   make([]uint16, n*n),
		updown: make([]uint16, n*n),
	}
	f.Rebuild()
	return f
}

// Algorithm implements Func.
func (f *FaultAdaptiveFunc) Algorithm() Algorithm { return FaultAdaptive }

// dirs is the deterministic neighbor iteration order.
var dirs = [...]topology.Port{topology.North, topology.East, topology.South, topology.West}

// Rebuild recomputes the BFS orientation and all per-destination
// distance tables from the topology's current live links. O(n²) time
// and called only at hard-fault boundaries (and construction), so the
// cost is per death, not per cycle.
func (f *FaultAdaptiveFunc) Rebuild() {
	n := f.n
	for i := range f.level {
		f.level[i] = -1
		f.comp[i] = -1
	}
	// BFS forest in id order: each unvisited node roots its component.
	queue := make([]flit.NodeID, 0, n)
	for root := 0; root < n; root++ {
		if f.level[root] >= 0 {
			continue
		}
		f.level[root], f.comp[root] = 0, int32(root)
		queue = append(queue[:0], flit.NodeID(root))
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, d := range dirs {
				nbr, ok := f.liveNeighbor(cur, d)
				if !ok || f.level[nbr] >= 0 {
					continue
				}
				f.level[nbr] = f.level[cur] + 1
				f.comp[nbr] = int32(root)
				queue = append(queue, nbr)
			}
		}
	}

	// Nodes in increasing (level, id) order — the up direction points
	// toward earlier entries, so a single pass in this order computes
	// updown once down is known.
	order := make([]flit.NodeID, n)
	for i := range order {
		order[i] = flit.NodeID(i)
	}
	sort.Slice(order, func(i, j int) bool { return f.before(order[i], order[j]) })

	for dst := 0; dst < n; dst++ {
		f.buildDst(flit.NodeID(dst), order, queue[:0])
	}
}

// before reports whether a precedes b in the (level, id) order.
func (f *FaultAdaptiveFunc) before(a, b flit.NodeID) bool {
	la, lb := f.level[a], f.level[b]
	if la != lb {
		return la < lb
	}
	return a < b
}

// liveNeighbor returns cur's neighbor through d when the directed link
// is up.
func (f *FaultAdaptiveFunc) liveNeighbor(cur flit.NodeID, d topology.Port) (flit.NodeID, bool) {
	if !f.t.LinkUp(cur, d) {
		return 0, false
	}
	return f.t.Neighbor(cur, d)
}

// buildDst fills the down and updown tables for one destination.
func (f *FaultAdaptiveFunc) buildDst(dst flit.NodeID, order, queue []flit.NodeID) {
	down := f.down[int(dst)*f.n : (int(dst)+1)*f.n]
	updown := f.updown[int(dst)*f.n : (int(dst)+1)*f.n]
	for i := range down {
		down[i] = infDist
		updown[i] = infDist
	}
	// Down distances: BFS from dst over reversed down edges — a node v
	// at distance k+1 has a down hop (to larger (level, id)) onto a node
	// at distance k.
	down[dst] = 0
	queue = append(queue[:0], dst)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, d := range dirs {
			nbr, ok := f.liveNeighbor(cur, d)
			// The reverse of a down hop nbr→cur: nbr must precede cur.
			if !ok || !f.before(nbr, cur) || down[nbr] != infDist {
				continue
			}
			down[nbr] = down[cur] + 1
			queue = append(queue, nbr)
		}
	}
	// Legal distances: climb until some ancestor's down-cone contains
	// dst. updown[v] depends only on up-neighbors — nodes earlier in the
	// (level, id) order — so one pass in that order suffices.
	for _, v := range order {
		best := down[v]
		for _, d := range dirs {
			nbr, ok := f.liveNeighbor(v, d)
			if !ok || !f.before(nbr, v) {
				continue
			}
			if up := updown[nbr]; up != infDist && up+1 < best {
				best = up + 1
			}
		}
		updown[v] = best
	}
}

// Reachable reports whether a legal path cur ⇝ dst exists on the live
// graph (equivalently, whether the two nodes share a component).
func (f *FaultAdaptiveFunc) Reachable(cur, dst flit.NodeID) bool {
	return f.updown[int(dst)*f.n+int(cur)] != infDist
}

// Route implements Func. In the down phase (a down-only path to dst
// exists) it offers every down hop on a shortest down path; otherwise
// it offers every up hop that shortens the legal distance. An
// unreachable destination yields an empty set — the caller's signal to
// declare the packet undeliverable rather than let it wait forever.
func (f *FaultAdaptiveFunc) Route(cur, dst flit.NodeID) []topology.Port {
	if cur == dst {
		return []topology.Port{topology.Local}
	}
	down := f.down[int(dst)*f.n : (int(dst)+1)*f.n]
	updown := f.updown[int(dst)*f.n : (int(dst)+1)*f.n]
	if updown[cur] == infDist {
		return nil
	}
	var ps []topology.Port
	if dd := down[cur]; dd != infDist {
		for _, d := range dirs {
			nbr, ok := f.liveNeighbor(cur, d)
			if ok && f.before(cur, nbr) && down[nbr] == dd-1 {
				ps = append(ps, d)
			}
		}
		return ps
	}
	ud := updown[cur]
	for _, d := range dirs {
		nbr, ok := f.liveNeighbor(cur, d)
		if ok && f.before(nbr, cur) && updown[nbr] == ud-1 {
			ps = append(ps, d)
		}
	}
	return ps
}
