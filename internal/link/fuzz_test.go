package link

import "testing"

// FuzzParseProtection holds the protection-scheme parser to: no panics;
// accepted names map to a known scheme; and the scheme's String form
// parses back to the same scheme.
func FuzzParseProtection(f *testing.F) {
	for _, s := range []string{"hbh", "HBH", "e2e", "fec", "FEC", "", "tmr"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParseProtection(s)
		if err != nil {
			return
		}
		switch p {
		case HBH, E2E, FEC:
		default:
			t.Fatalf("ParseProtection(%q) produced unknown protection %d", s, p)
		}
		back, err := ParseProtection(p.String())
		if err != nil || back != p {
			t.Fatalf("String form %q of ParseProtection(%q) does not round-trip: %v / %v", p, s, back, err)
		}
	})
}
