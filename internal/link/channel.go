package link

import (
	"fmt"
	"strings"

	"ftnoc/internal/fault"
	"ftnoc/internal/flit"
	"ftnoc/internal/sim"
	"ftnoc/internal/stats"
)

// Protection selects the link-error handling scheme compared in Fig. 5.
type Protection uint8

// Link protection schemes.
const (
	// HBH is the paper's flit-based hop-by-hop scheme (§3.1): every flit
	// is SEC/DED-checked at every hop; single errors are corrected in
	// place, double errors trigger a NACK and barrel-shifter
	// retransmission.
	HBH Protection = iota + 1
	// E2E is the end-to-end baseline: data flits are checked only at the
	// destination and any error forces whole-packet source
	// retransmission. Header flits still get hop-by-hop checking, as the
	// paper (following [1]) prescribes for both baselines, so corrupted
	// headers never misroute.
	E2E
	// FEC is the forward-error-correction baseline: single errors are
	// corrected at each hop, but uncorrectable double errors in data
	// flits survive to the destination and force source retransmission.
	FEC
)

// String implements fmt.Stringer.
func (p Protection) String() string {
	switch p {
	case HBH:
		return "HBH"
	case E2E:
		return "E2E"
	case FEC:
		return "FEC"
	default:
		return "unknown"
	}
}

// ParseProtection maps a protection name (hbh, e2e, fec —
// case-insensitive) to its Protection.
func ParseProtection(s string) (Protection, error) {
	switch strings.ToLower(s) {
	case "hbh":
		return HBH, nil
	case "e2e":
		return E2E, nil
	case "fec":
		return FEC, nil
	default:
		return 0, fmt.Errorf("unknown protection %q (want hbh, e2e or fec)", s)
	}
}

// Credit is the backpressure token returned when a buffer slot frees.
type Credit struct {
	VC uint8
}

// NACKKind distinguishes the reasons a NACK handshake fires.
type NACKKind uint8

// NACK kinds.
const (
	// NACKLinkError asks the transmitter to replay its retransmission
	// buffer for a VC after an uncorrectable link error (§3.1).
	NACKLinkError NACKKind = iota + 1
	// NACKIgnore tells neighbors to discard the previous cycle's
	// transmission after an AC-detected allocation error (§4.1, §4.3).
	NACKIgnore
	// NACKMisroute reports a deterministic-routing consistency violation
	// detected at the receiving router (§4.2); the sender must re-route.
	NACKMisroute
	// NACKRecoveryOn tells the transmitter the receiving node has entered
	// deadlock-recovery mode: no NEW wormholes may be opened onto this
	// channel until NACKRecoveryOff, so fresh packets cannot consume the
	// buffer slack the recovery creates (§3.2.1: "no new packets are
	// allowed to enter the transmission buffers that are involved in the
	// deadlock recovery").
	NACKRecoveryOn
	// NACKRecoveryOff lifts the NACKRecoveryOn restriction.
	NACKRecoveryOff
)

// NACK is the error-handshake message travelling opposite to the flits.
type NACK struct {
	VC   uint8
	Kind NACKKind
}

// Latencies of the three wire groups, in cycles. Flits take one cycle
// (§2.2, single-cycle links). Credits take one cycle. NACKs become
// visible to the transmitter two cycles after the flawed flit arrived:
// one cycle of error checking plus one cycle of signal propagation —
// which, with the one-cycle link, gives the paper's 3-cycle NACK window.
const (
	FlitLatency   = 1
	CreditLatency = 1
	NACKLatency   = 2
)

// Channel is one direction of an inter-router (or PE-router) connection:
// a flit wire forward, and credit + NACK wires backward.
type Channel struct {
	flits   *sim.Pipe[flit.Flit]
	credits *sim.Pipe[Credit]
	nacks   *sim.Pipe[NACK]

	injector fault.Corruptor // nil for fault-free channels
	// events/counters are the TRANSMITTER-side accounts, charged by Send
	// and RecvNACKs; rxEvents/rxCounters are the RECEIVER-side accounts,
	// charged by SendCredit and SendNACK. They default to the same
	// objects; under the parallel kernel the two endpoints may live on
	// different workers, so each side must charge a shard its own worker
	// owns (see SetRxStats).
	events     *stats.Events
	counters   *fault.Counters
	rxEvents   *stats.Events
	rxCounters *fault.Counters
	local      bool // PE<->router channel: no fault injection, separate energy class

	// injScratch backs Send's fault-injection call: passing a stack
	// flit's address through the Corruptor interface would heap-allocate
	// the flit on every traversal.
	injScratch flit.Flit

	// Handshake-line fault modelling (§4.6).
	hsRate float64
	hsTMR  bool
	hsRNG  *sim.RNG
}

// SetHandshakeFaults enables transient faults on the backward NACK wires
// at the given per-signal rate. With tmr true the lines are triplicated
// and voted (§4.6), masking every single fault; without it a faulted
// NACK is lost in transit.
func (c *Channel) SetHandshakeFaults(rate float64, tmr bool, rng *sim.RNG) {
	if rate < 0 || rate > 1 {
		panic("link: handshake fault rate must be in [0,1]")
	}
	c.hsRate = rate
	c.hsTMR = tmr
	c.hsRNG = rng
}

// NewChannel wires a channel into kernel k. injector may be nil for a
// fault-free link (e.g. the PE-to-router channel, which the paper does
// not inject faults into). events and counters must be non-nil.
func NewChannel(k *sim.Kernel, injector fault.Corruptor, local bool, events *stats.Events, counters *fault.Counters) *Channel {
	return &Channel{
		flits:      sim.NewPipe[flit.Flit](k, FlitLatency),
		credits:    sim.NewPipe[Credit](k, CreditLatency),
		nacks:      sim.NewPipe[NACK](k, NACKLatency),
		injector:   injector,
		events:     events,
		counters:   counters,
		rxEvents:   events,
		rxCounters: counters,
		local:      local,
	}
}

// SetRxStats redirects the receiver-side accounting (credits sent, NACKs
// raised) to the given accounts, leaving the transmitter side on the
// ones passed to NewChannel. Required when the two endpoints are stepped
// by different parallel workers; harmless (and exact, since all accounts
// are summed) under the serial kernels.
func (c *Channel) SetRxStats(events *stats.Events, counters *fault.Counters) {
	c.rxEvents = events
	c.rxCounters = counters
}

// SetArmShards assigns the kernel arm-shards for the channel's three
// wires by producer: the forward flit wire is pushed by the transmitter
// owner (tx), the backward credit and NACK wires by the receiver owner
// (rx). See sim.Pipe.SetArmShard.
func (c *Channel) SetArmShards(tx, rx int) {
	c.flits.SetArmShard(tx)
	c.credits.SetArmShard(rx)
	c.nacks.SetArmShard(rx)
}

// Send puts a flit on the wire, applying fault injection. It returns the
// injection outcome, which the transmitter records but must NOT act on —
// only the receiver's ECC unit may observe corruption.
func (c *Channel) Send(f flit.Flit) fault.LinkOutcome {
	out := fault.NoError
	if c.injector != nil {
		c.injScratch = f
		out = c.injector.Corrupt(&c.injScratch)
		f = c.injScratch
	}
	if out != fault.NoError {
		c.counters.AddInjected(fault.LinkError)
	}
	f.Hops++
	if c.local {
		c.events.LocalTraversals++
	} else {
		c.events.LinkTraversals++
	}
	c.flits.Push(f)
	return out
}

// Recv removes the flit (at most one per cycle) visible on the wire.
func (c *Channel) Recv() (flit.Flit, bool) { return c.flits.Pop() }

// SendCredit returns a buffer slot to the transmitter.
func (c *Channel) SendCredit(vc uint8) {
	c.rxEvents.Credits++
	c.credits.Push(Credit{VC: vc})
}

// RecvCredits drains all credits visible this cycle.
func (c *Channel) RecvCredits() []Credit { return c.credits.PopAll() }

// SendNACK raises the error handshake toward the transmitter.
func (c *Channel) SendNACK(vc uint8, kind NACKKind) {
	c.rxEvents.NACKs++
	c.rxCounters.NACKs++
	c.nacks.Push(NACK{VC: vc, Kind: kind})
}

// RecvNACKs drains all NACKs visible this cycle, applying handshake-line
// fault injection: a faulted signal is masked by the TMR voter when
// enabled, or lost otherwise.
func (c *Channel) RecvNACKs() []NACK {
	ns := c.nacks.PopAll()
	if c.hsRate == 0 || len(ns) == 0 {
		return ns
	}
	kept := ns[:0]
	for _, n := range ns {
		if c.hsRNG.Bool(c.hsRate) {
			c.counters.AddInjected(fault.HandshakeError)
			if c.hsTMR {
				// Two clean copies out-vote the faulted line.
				c.counters.AddCorrected(fault.HandshakeError)
				kept = append(kept, n)
				continue
			}
			c.counters.AddUndetected(fault.HandshakeError)
			continue
		}
		kept = append(kept, n)
	}
	return kept
}

// Pending reports the number of flits anywhere in the forward wire,
// including not-yet-visible ones (used by drain detection).
func (c *Channel) Pending() int { return c.flits.InFlight() }

// InFlightData counts the data flits anywhere in the forward wire that
// ride the given VC. Control flits (probes/activations) bypass credits
// and are excluded. Invariant-checker inspection.
func (c *Channel) InFlightData(vc int) int {
	n := 0
	c.flits.Each(func(f flit.Flit) {
		if f.IsData() && int(f.VC) == vc {
			n++
		}
	})
	return n
}

// InFlightCredits counts the credits anywhere in the backward credit wire
// for the given VC. Invariant-checker inspection.
func (c *Channel) InFlightCredits(vc int) int {
	n := 0
	c.credits.Each(func(cr Credit) {
		if int(cr.VC) == vc {
			n++
		}
	})
	return n
}

// EachDataFlit visits every data flit anywhere in the forward wire.
// Invariant-checker inspection; fn must not send or receive.
func (c *Channel) EachDataFlit(fn func(flit.Flit)) {
	c.flits.Each(func(f flit.Flit) {
		if f.IsData() {
			fn(f)
		}
	})
}

// DestroyData destructively removes in-flight forward traffic at a
// hard-fault boundary, pushing one credit back toward the transmitter
// per destroyed data flit so per-VC credit conservation survives the
// kill. With vc >= 0 only that virtual channel's data flits are
// destroyed (a live channel carrying one segment of a killed worm);
// with vc < 0 every data AND control flit goes (the channel itself is
// dead). fn (if non-nil) observes each destroyed data flit. Serial use
// only — this must run between kernel steps. The credit and NACK wires
// stay functional: the kill protocol itself rides them.
func (c *Channel) DestroyData(vc int, fn func(flit.Flit)) int {
	n := 0
	c.flits.Filter(func(f flit.Flit) bool {
		return vc < 0 || (f.IsData() && int(f.VC) == vc)
	}, func(f flit.Flit) {
		if !f.IsData() {
			return
		}
		n++
		c.credits.Push(Credit{VC: f.VC})
		if fn != nil {
			fn(f)
		}
	})
	return n
}

// DropNACKs discards every pending backward NACK handshake. Applied to a
// dead channel so the transmitter never replays onto it.
func (c *Channel) DropNACKs() { c.nacks.Filter(func(NACK) bool { return true }, nil) }

// SetFlitWake installs the forward flit pipe's delivery callback: it runs
// whenever a latch leaves flits visible to the receiver, waking the
// consuming actor (see sim.Kernel.Waker). Credit pipes need no wake:
// credits accumulate unobserved in the visible slot and are drained by
// the consumer's BeginCycle whenever it next ticks, before any decision
// depends on them.
func (c *Channel) SetFlitWake(f func()) { c.flits.SetWake(f) }

// SetNACKWake installs the backward NACK pipe's delivery callback, waking
// the transmitter-owning actor when a NACK becomes visible. Under strict
// quiescence this was unnecessary — a router holding retransmission-buffer
// entries (the only NACK targets) could not sleep. Relaxed quiescence lets
// it sleep with a timed wake at the oldest entry's expiry, and misroute or
// recovery NACKs can arrive before that deadline; this wake guarantees
// they are processed on their exact visibility cycle. (Link-error NACKs
// need no wake even then: one is visible at the transmitter exactly
// NACKWindow cycles after the flawed flit was sent, which coincides with
// that flit's expiry wake.)
func (c *Channel) SetNACKWake(f func()) { c.nacks.SetWake(f) }
