package link

import (
	"fmt"

	"ftnoc/internal/ecc"
	"ftnoc/internal/fault"
	"ftnoc/internal/flit"
	"ftnoc/internal/sim"
	"ftnoc/internal/stats"
	"ftnoc/internal/trace"
)

// Transmitter is the sending side of Fig. 3 for one output port: per-VC
// credit counters, per-VC barrel-shifter retransmission buffers, and the
// replay queue that services NACKs. The FIFO "transmission buffer" of
// Fig. 3 is the upstream input-VC buffer feeding this port; the router
// owns it.
type Transmitter struct {
	ch       *Channel
	shifters []*RetransBuffer
	credits  []int
	// replay[replayHead:] is the pending replay queue; the backing array
	// is recycled once it drains.
	replay     []flit.Flit
	replayHead int
	events     *stats.Events
	counters   *fault.Counters

	// Retransmission-buffer soft errors (§4.5).
	rbRate      float64
	rbDuplicate bool
	rbRNG       *sim.RNG

	// Event-bus identity (set by SetTrace; bus may be nil).
	bus       *trace.Bus
	traceNode int32
	tracePort int8
}

// SetTrace attaches the structured event bus and this transmitter's
// (node, port) identity for event attribution.
func (t *Transmitter) SetTrace(bus *trace.Bus, node int32, port int8) {
	t.bus, t.traceNode, t.tracePort = bus, node, port
}

// SetRetransBufFaults enables soft errors inside the retransmission
// buffers at the given per-capture rate. With duplicate buffers (§4.5)
// the second copy masks every upset; without them the stored copy is
// corrupted and replaying it can never succeed.
func (t *Transmitter) SetRetransBufFaults(rate float64, duplicate bool, rng *sim.RNG) {
	if rate < 0 || rate > 1 {
		panic("link: retrans-buffer fault rate must be in [0,1]")
	}
	t.rbRate = rate
	t.rbDuplicate = duplicate
	t.rbRNG = rng
}

// NewTransmitter creates the sending side of a channel with vcs virtual
// channels, each granted downstreamCap credits and a shifterDepth-deep
// retransmission buffer (NACKWindow for the paper's scheme; 2*NACKWindow
// with the duplicate-buffer option of §4.5).
func NewTransmitter(ch *Channel, vcs, downstreamCap, shifterDepth int, events *stats.Events, counters *fault.Counters) *Transmitter {
	if vcs < 1 || downstreamCap < 1 {
		panic("link: transmitter needs >=1 VC and >=1 credit")
	}
	t := &Transmitter{
		ch:       ch,
		shifters: make([]*RetransBuffer, vcs),
		credits:  make([]int, vcs),
		events:   events,
		counters: counters,
	}
	for i := range t.shifters {
		t.shifters[i] = NewRetransBuffer(shifterDepth)
		t.credits[i] = downstreamCap
	}
	return t
}

// BeginCycle ingests the cycle's incoming handshakes: credits replenish
// counters; link-error NACKs drain the affected shifter into the replay
// queue. NACKs of other kinds (AC invalidations, misroute reports) are
// returned for the router to act on — their flits stay in the shifters
// until the router Recalls them. Must be called exactly once per cycle,
// before any send, and must be followed by ExpireShifters once the
// returned NACKs have been handled.
func (t *Transmitter) BeginCycle(cycle uint64) []NACK {
	var routerNACKs []NACK
	for _, n := range t.ch.RecvNACKs() {
		if n.Kind != NACKLinkError {
			routerNACKs = append(routerNACKs, n)
			continue
		}
		if int(n.VC) >= len(t.shifters) {
			continue // corrupted handshake naming a non-existent VC; drop
		}
		t.replay = append(t.replay, t.shifters[n.VC].Drain()...)
	}
	for _, c := range t.ch.RecvCredits() {
		if int(c.VC) < len(t.credits) {
			t.credits[c.VC]++
		}
	}
	return routerNACKs
}

// ExpireShifters frees retransmission-buffer slots whose NACK window has
// elapsed. It must run every cycle after BeginCycle's NACKs — including
// misroute NACKs, whose Recall must see the full window — have been
// processed, and before any send.
func (t *Transmitter) ExpireShifters(cycle uint64) {
	for _, sh := range t.shifters {
		sh.Expire(cycle)
	}
}

// Credits returns the free downstream slots for a VC.
func (t *Transmitter) Credits(vc int) int { return t.credits[vc] }

// HasReplay reports whether NACKed flits are waiting to be re-sent; while
// true the router must not grant new flits to this port (replay has
// priority for the physical channel).
func (t *Transmitter) HasReplay() bool { return len(t.replay) > t.replayHead }

// TickReplay re-sends the oldest replay flit if one is ready and credited.
// It returns true if the port was used this cycle.
func (t *Transmitter) TickReplay(cycle uint64) bool {
	if !t.HasReplay() {
		return false
	}
	f := t.replay[t.replayHead]
	vc := int(f.VC)
	if t.credits[vc] <= 0 {
		// The credits returned by the receiver's drops are still in
		// flight; the port idles this cycle but stays reserved.
		return true
	}
	t.replayHead++
	if t.replayHead == len(t.replay) {
		t.replay = t.replay[:0]
		t.replayHead = 0
	}
	t.sendOnWire(f, cycle)
	t.events.Retransmitted++
	t.counters.Retransmissions++
	if t.bus.Enabled() {
		t.bus.Emit(trace.Event{
			Cycle: cycle, Kind: trace.Retransmit,
			Node: t.traceNode, Port: t.tracePort, VC: int8(vc),
			PID: uint64(f.PID), Seq: f.Seq,
		})
	}
	return true
}

// Send transmits a data flit on the given VC, consuming a credit and
// capturing a clean copy in the VC's retransmission buffer. The caller
// must have checked Credits(vc) > 0 and HasReplay() == false.
func (t *Transmitter) Send(f flit.Flit, vc int, cycle uint64) {
	if t.credits[vc] <= 0 {
		panic("link: send without credit")
	}
	if t.HasReplay() {
		panic("link: send while replay pending")
	}
	f.VC = uint8(vc)
	t.sendOnWire(f, cycle)
}

func (t *Transmitter) sendOnWire(f flit.Flit, cycle uint64) {
	vc := int(f.VC)
	t.credits[vc]--
	// Capture the clean copy before the wire corrupts it. A soft error in
	// the buffer itself (§4.5) corrupts the stored copy with two bit
	// flips — uncorrectable, so a replay of it is doomed. Duplicate
	// buffers hold a second copy that out-survives the single upset.
	stored := f
	if t.rbRate > 0 && t.rbRNG.Bool(t.rbRate) {
		t.counters.AddInjected(fault.RetransBufError)
		if t.rbDuplicate {
			t.counters.AddCorrected(fault.RetransBufError)
		} else {
			t.counters.AddUndetected(fault.RetransBufError)
			stored.Word = ecc.FlipDataBit(ecc.FlipDataBit(stored.Word, t.rbRNG.Intn(64)), (t.rbRNG.Intn(63)+17)%64)
		}
	}
	t.shifters[vc].Capture(stored, cycle)
	t.events.RetransWrites++
	t.ch.Send(f)
}

// SendControl transmits a probe/activation flit. Control flits bypass the
// buffer/credit machinery (they feed the retransmission-buffer direct
// input of Fig. 3) and are not captured: a lost probe is retried by the
// blocked node's threshold timer.
func (t *Transmitter) SendControl(f flit.Flit) {
	t.events.Probes++
	t.ch.Send(f)
}

// EarliestExpiry returns the earliest cycle at which any retransmission-
// buffer entry on this port expires (oldest capture + NACKWindow), and
// whether such an entry exists. It is the timed-wake deadline that lets a
// router sleep with occupied shifters: no entry can expire — and no
// link-error NACK for one can arrive — before that cycle.
func (t *Transmitter) EarliestExpiry() (cycle uint64, ok bool) {
	for _, sh := range t.shifters {
		if sent, has := sh.OldestSent(); has {
			if !ok || sent+NACKWindow < cycle {
				cycle, ok = sent+NACKWindow, true
			}
		}
	}
	return cycle, ok
}

// ShifterOccupancy returns the summed occupancy and capacity of the
// port's retransmission buffers, for the Fig. 9 utilization metric.
func (t *Transmitter) ShifterOccupancy() (occupied, capacity int) {
	for _, sh := range t.shifters {
		occupied += sh.Len()
		capacity += sh.Depth()
	}
	return occupied, capacity
}

// ShifterOccupied is the occupancy half of ShifterOccupancy without the
// capacity walk, for per-cycle samplers that cache the fixed capacity.
func (t *Transmitter) ShifterOccupied() (occupied int) {
	for _, sh := range t.shifters {
		occupied += sh.Len()
	}
	return occupied
}

// PendingReplay returns the number of queued replay flits (tests).
func (t *Transmitter) PendingReplay() int { return len(t.replay) - t.replayHead }

// Channel returns the transmitter's channel (invariant-checker and test
// inspection).
func (t *Transmitter) Channel() *Channel { return t.ch }

// EachRetained visits every flit the transmitter can still resend: the
// pending replay queue followed by each VC's retransmission buffer.
// Invariant-checker inspection.
func (t *Transmitter) EachRetained(fn func(flit.Flit)) {
	for _, f := range t.replay[t.replayHead:] {
		fn(f)
	}
	for _, sh := range t.shifters {
		for _, f := range sh.Snapshot() {
			fn(f)
		}
	}
}

// AuditRetrans checks the retransmission machinery's soundness at a cycle
// boundary (clock = the cycle about to be ticked): every shifter entry
// must still be inside its NACK window — Expire frees slots at
// sent+NACKWindow, so an older entry means the expiry clock was skipped —
// and every queued replay flit must name a real VC, or it could never be
// resent. It returns a description of the first violation, or "".
func (t *Transmitter) AuditRetrans(clock uint64) string {
	for vc, sh := range t.shifters {
		if sent, ok := sh.OldestSent(); ok && clock > sent+NACKWindow {
			return fmt.Sprintf("vc %d: shifter entry sent at %d still present at %d (window %d)",
				vc, sent, clock, NACKWindow)
		}
	}
	for _, f := range t.replay[t.replayHead:] {
		if int(f.VC) >= len(t.credits) {
			return fmt.Sprintf("replay flit pid %d names VC %d of %d — unresendable",
				f.PID, f.VC, len(t.credits))
		}
	}
	return ""
}

// AbandonVC discards one virtual channel's retransmission state — its
// shifter contents and any replay-queue entries riding it — without
// resending or crediting anything (shifter copies hold no credits).
// Hard-fault worm kills use it on LIVE channels whose VC carried a
// segment of a destroyed worm; fn (if non-nil) observes each abandoned
// flit for packet accounting. Serial use only.
func (t *Transmitter) AbandonVC(vc int, fn func(flit.Flit)) {
	if vc < 0 || vc >= len(t.shifters) {
		return
	}
	for _, f := range t.shifters[vc].Drain() {
		if fn != nil {
			fn(f)
		}
	}
	kept := t.replay[:t.replayHead]
	for _, f := range t.replay[t.replayHead:] {
		if int(f.VC) == vc {
			if fn != nil {
				fn(f)
			}
			continue
		}
		kept = append(kept, f)
	}
	t.replay = kept
	if t.replayHead >= len(t.replay) {
		t.replay = t.replay[:0]
		t.replayHead = 0
	}
}

// AbandonAll discards every VC's retransmission state and the whole
// replay queue: the transmitter's channel is dead and nothing it retains
// can ever be resent. fn (if non-nil) observes each abandoned flit.
// Serial use only.
func (t *Transmitter) AbandonAll(fn func(flit.Flit)) {
	for vc := range t.shifters {
		for _, f := range t.shifters[vc].Drain() {
			if fn != nil {
				fn(f)
			}
		}
	}
	if fn != nil {
		for _, f := range t.replay[t.replayHead:] {
			fn(f)
		}
	}
	t.replay = t.replay[:0]
	t.replayHead = 0
}

// Recall drains a VC's retransmission buffer without scheduling replay:
// the misroute-recovery path of §4.2, where the sender must re-route the
// recalled header (and any body flits behind it) rather than re-send them
// on the same path. The result is freshly allocated — callers retain it.
func (t *Transmitter) Recall(vc int) []flit.Flit {
	if vc < 0 || vc >= len(t.shifters) {
		return nil
	}
	drained := t.shifters[vc].Drain()
	if len(drained) == 0 {
		return nil
	}
	out := make([]flit.Flit, len(drained))
	copy(out, drained)
	return out
}
