package link

import (
	"ftnoc/internal/ecc"
	"ftnoc/internal/fault"
	"ftnoc/internal/flit"
	"ftnoc/internal/stats"
	"ftnoc/internal/trace"
)

// dropWindow is how many cycles after an uncorrectable error the receiver
// keeps dropping arrivals on the affected VC: exactly the two in-flight
// flits the transmitter sent before the NACK reached it (Fig. 4).
const dropWindow = 2

// Receiver is the receiving side of a channel for one input port: the
// error detection/correction unit of Fig. 1 plus the per-VC drop windows
// of the HBH protocol. Accepted flits are handed to the router for
// buffering; the router returns credits through ReturnCredit as buffer
// slots free.
type Receiver struct {
	ch         *Channel
	protection Protection
	dropUntil  []uint64
	events     *stats.Events
	counters   *fault.Counters

	// Scratch buffers backing ReceiveAll's return values, reused across
	// cycles; callers consume the slices within the cycle.
	dataScratch []flit.Flit
	ctrlScratch []flit.Flit

	// Event-bus identity (set by SetTrace; bus may be nil).
	bus       *trace.Bus
	traceNode int32
	tracePort int8

	// verify, when non-nil, re-checks every SEC/DED-corrected codeword
	// (invariant: corrected flits re-verify clean). Installed by the
	// network when an invariant checker is attached.
	verify func(cycle uint64, vc int, pid uint64, word uint64, check uint8)

	// skipCreditEvery, when n > 0, silently swallows every nth
	// ReturnCredit call — a deliberately broken credit loop used by the
	// invariant checker's regression tests to prove credit-conservation
	// violations are caught. Never set outside tests.
	skipCreditEvery int
	creditCalls     int
}

// SetVerifier installs the post-correction audit hook: fn runs after
// every single-bit correction with the corrected codeword, letting an
// invariant checker assert the repair actually decodes clean.
func (r *Receiver) SetVerifier(fn func(cycle uint64, vc int, pid uint64, word uint64, check uint8)) {
	r.verify = fn
}

// SkipCreditEvery breaks the credit loop on purpose: every nth freed
// buffer slot is never reported back to the transmitter. Test hook for
// proving the invariant checker detects credit leaks; n <= 0 restores
// correct behaviour.
func (r *Receiver) SkipCreditEvery(n int) { r.skipCreditEvery = n }

// SetTrace attaches the structured event bus and this receiver's
// (node, port) identity for event attribution.
func (r *Receiver) SetTrace(bus *trace.Bus, node int32, port int8) {
	r.bus, r.traceNode, r.tracePort = bus, node, port
}

// emitECCCorrected publishes a single-bit correction event.
func (r *Receiver) emitECCCorrected(cycle uint64, vc int8, pid uint64, seq uint8) {
	if r.bus.Enabled() {
		r.bus.Emit(trace.Event{
			Cycle: cycle, Kind: trace.ECCCorrected,
			Node: r.traceNode, Port: r.tracePort, VC: vc, PID: pid, Seq: seq,
		})
	}
}

// NewReceiver creates the receiving side of a channel with vcs virtual
// channels under the given protection scheme.
func NewReceiver(ch *Channel, vcs int, protection Protection, events *stats.Events, counters *fault.Counters) *Receiver {
	return &Receiver{
		ch:         ch,
		protection: protection,
		dropUntil:  make([]uint64, vcs),
		events:     events,
		counters:   counters,
	}
}

// Protection returns the receiver's link-error handling scheme.
func (r *Receiver) Protection() Protection { return r.protection }

// ReceiveAll processes every arrival visible this cycle. At most one data
// flit per cycle can be accepted (the transmitter owns the physical
// channel), but control flits (probes/activations) may share a cycle with
// it; they bypass buffers and credits. The returned slices alias internal
// scratch buffers valid only until the next ReceiveAll on this receiver.
func (r *Receiver) ReceiveAll(cycle uint64) (data []flit.Flit, ctrl []flit.Flit) {
	data = r.dataScratch[:0]
	ctrl = r.ctrlScratch[:0]
	for {
		f, got := r.ch.Recv()
		if !got {
			break
		}
		if d, ok, isCtrl := r.receiveOne(f, cycle); isCtrl {
			ctrl = append(ctrl, d)
		} else if ok {
			data = append(data, d)
		}
	}
	r.dataScratch, r.ctrlScratch = data, ctrl
	return data, ctrl
}

// receiveOne classifies and error-checks a single arrival. A control
// flit comes back with isCtrl set (ok is then meaningless); returning it
// by value rather than by pointer keeps the flit on the caller's stack.
func (r *Receiver) receiveOne(f flit.Flit, cycle uint64) (res flit.Flit, ok, isCtrl bool) {
	if !f.IsData() {
		// Control flit: always decode (it travels under the error
		// correcting blanket, §3.2.2); an uncorrectable one is dropped
		// and the sender's threshold timer will retry.
		word, check, out := r.decode(f)
		r.events.ECCDecodes++
		switch out {
		case ecc.Detected:
			return flit.Flit{}, false, false
		case ecc.Corrected:
			r.events.ECCCorrections++
			r.counters.AddCorrected(fault.LinkError)
			r.emitECCCorrected(cycle, -1, 0, 0)
			if r.verify != nil {
				r.verify(cycle, -1, 0, word, check)
			}
		}
		f.Word, f.Check = word, check
		return f, false, true
	}

	vc := int(f.VC)
	if vc >= len(r.dropUntil) {
		// A corrupted VC identifier in the sideband; treat as an
		// uncorrectable arrival on VC 0.
		vc = 0
		f.VC = 0
	}
	if r.dropUntil[vc] >= cycle && r.dropUntil[vc] != 0 {
		// Inside the drop window: this flit was sent before the NACK
		// reached the transmitter and will be replayed. Return its
		// reserved slot.
		r.counters.DroppedFlits++
		r.ch.SendCredit(uint8(vc))
		r.emitDrop(cycle, vc, uint64(f.PID), f.Seq, trace.DropWindow)
		return flit.Flit{}, false, false
	}

	checkIt := r.protection != E2E || f.Type == flit.Head
	if !checkIt {
		// E2E data flit: no hop-by-hop check; corruption (if any) rides
		// along to the destination.
		return f, true, false
	}

	r.events.ECCDecodes++
	word, check, out := ecc.Decode(f.Word, f.Check)
	switch out {
	case ecc.OK:
		return f, true, false
	case ecc.Corrected:
		if r.protection == E2E {
			// E2E provides detection only: even a single-bit header error
			// goes down the retransmission path.
			r.nack(vc, cycle, f)
			return flit.Flit{}, false, false
		}
		r.events.ECCCorrections++
		r.counters.AddCorrected(fault.LinkError)
		r.emitECCCorrected(cycle, int8(vc), uint64(f.PID), f.Seq)
		if r.verify != nil {
			r.verify(cycle, vc, uint64(f.PID), word, check)
		}
		f.Word, f.Check = word, check
		return f, true, false
	default: // ecc.Detected
		if r.protection == FEC && f.Type != flit.Head {
			// FEC cannot repair a double error in a data flit; it is
			// delivered corrupt and caught end-to-end.
			return f, true, false
		}
		r.nack(vc, cycle, f)
		return flit.Flit{}, false, false
	}
}

// nack initiates hop-by-hop retransmission for a VC: drop the corrupt
// flit (returning its slot), open the drop window for the two in-flight
// flits behind it, and raise the NACK handshake.
func (r *Receiver) nack(vc int, cycle uint64, f flit.Flit) {
	r.counters.DroppedFlits++
	r.counters.AddCorrected(fault.LinkError)
	r.ch.SendCredit(uint8(vc))
	r.ch.SendNACK(uint8(vc), NACKLinkError)
	r.dropUntil[vc] = cycle + dropWindow
	r.emitNACK(cycle, vc, NACKLinkError)
	r.emitDrop(cycle, vc, uint64(f.PID), f.Seq, trace.DropNACK)
}

// emitNACK publishes a NACK handshake event.
func (r *Receiver) emitNACK(cycle uint64, vc int, kind NACKKind) {
	if r.bus.Enabled() {
		r.bus.Emit(trace.Event{
			Cycle: cycle, Kind: trace.NACKSent,
			Node: r.traceNode, Port: r.tracePort, VC: int8(vc), Aux: uint64(kind),
		})
	}
}

// emitDrop publishes a flit-discard event with its reason code.
func (r *Receiver) emitDrop(cycle uint64, vc int, pid uint64, seq uint8, reason uint64) {
	if r.bus.Enabled() {
		r.bus.Emit(trace.Event{
			Cycle: cycle, Kind: trace.FlitDropped,
			Node: r.traceNode, Port: r.tracePort, VC: int8(vc),
			PID: pid, Seq: seq, Aux: reason,
		})
	}
}

// decode applies SEC/DED to a flit and returns the (possibly corrected)
// word/check pair.
func (r *Receiver) decode(f flit.Flit) (uint64, uint8, ecc.Outcome) {
	return ecc.Decode(f.Word, f.Check)
}

// ReturnCredit hands a freed buffer slot back to the transmitter. The
// router calls this when a flit leaves the input VC buffer.
func (r *Receiver) ReturnCredit(vc int) {
	if r.skipCreditEvery > 0 {
		r.creditCalls++
		if r.creditCalls%r.skipCreditEvery == 0 {
			return // deliberate leak (see SkipCreditEvery)
		}
	}
	r.ch.SendCredit(uint8(vc))
}

// SendNACK lets the router raise non-link NACKs (AC invalidation,
// misroute reports) on this receiver's backward handshake wires.
func (r *Receiver) SendNACK(vc int, kind NACKKind) { r.ch.SendNACK(uint8(vc), kind) }

// ForceDrop lets the router reject a flit the ECC accepted — the
// misroute-consistency check of §4.2. The flit's slot is returned, the
// stated NACK is raised, and the drop window opens so the in-flight flits
// behind it are discarded like any retransmission episode. pid and seq
// identify the rejected flit for the event stream.
func (r *Receiver) ForceDrop(vc int, cycle uint64, kind NACKKind, pid uint64, seq uint8) {
	r.counters.DroppedFlits++
	r.ch.SendCredit(uint8(vc))
	r.ch.SendNACK(uint8(vc), kind)
	r.dropUntil[vc] = cycle + dropWindow
	r.emitNACK(cycle, vc, kind)
	r.emitDrop(cycle, vc, pid, seq, trace.DropMisroute)
}
