package link

import (
	"fmt"

	"ftnoc/internal/flit"
)

// NACKWindow is the number of cycles after transmission during which a
// NACK for a flit can still arrive: 1 cycle link traversal + 1 cycle
// error checking at the receiver + 1 cycle NACK propagation (§3.1). It is
// also therefore the required depth of the retransmission buffer.
const NACKWindow = 3

// RetransBuffer is the barrel-shifter retransmission buffer of Fig. 3,
// one per virtual channel. A flit is captured when it is transmitted on
// the link; it shifts toward the front as cycles pass and is discarded
// once the NACK window has elapsed without complaint. On a NACK, the
// still-buffered flits (the corrupted one plus any sent after it) are
// drained, in order, for retransmission.
type RetransBuffer struct {
	depth int
	// ring is a fixed-size circular buffer: entries live at
	// ring[(head+i)%depth] for i in [0,count).
	ring  []retransEntry
	head  int
	count int
	// scratch backs Drain's return value, reused across drains.
	scratch []flit.Flit
}

type retransEntry struct {
	f    flit.Flit
	sent uint64
}

// NewRetransBuffer creates a barrel shifter of the given depth. The HBH
// scheme needs exactly NACKWindow slots; the duplicate-buffer option of
// §4.5 doubles that.
func NewRetransBuffer(depth int) *RetransBuffer {
	if depth < 1 {
		panic("link: retransmission buffer depth must be >= 1")
	}
	return &RetransBuffer{
		depth:   depth,
		ring:    make([]retransEntry, depth),
		scratch: make([]flit.Flit, 0, depth),
	}
}

// Depth returns the configured slot count.
func (rb *RetransBuffer) Depth() int { return rb.depth }

// Len returns the number of occupied slots.
func (rb *RetransBuffer) Len() int { return rb.count }

// Empty reports whether no flit is retained.
func (rb *RetransBuffer) Empty() bool { return rb.count == 0 }

// Capture stores a copy of a flit transmitted at the given cycle. It
// panics if the shifter is full: the flow-control invariant is that at
// most NACKWindow flits can be inside their NACK window at once, so
// overflow indicates the transmitter failed to call Expire each cycle.
func (rb *RetransBuffer) Capture(f flit.Flit, cycle uint64) {
	if rb.count >= rb.depth {
		panic(fmt.Sprintf("link: retransmission buffer overflow (depth %d)", rb.depth))
	}
	rb.ring[(rb.head+rb.count)%rb.depth] = retransEntry{f: f, sent: cycle}
	rb.count++
}

// Expire discards entries whose NACK window has elapsed: a flit sent at
// cycle s has its NACK, if any, visible at the transmitter at exactly
// s+NACKWindow, so once that cycle's NACKs have been processed (the
// caller runs Expire after NACK ingestion) the slot is free — the
// barrel-shift to the front and off the end. Freeing at s+NACKWindow is
// what lets a 3-deep shifter sustain one flit per cycle. It returns the
// number of slots freed.
func (rb *RetransBuffer) Expire(cycle uint64) int {
	n := 0
	for rb.count > 0 && cycle >= rb.ring[rb.head].sent+NACKWindow {
		rb.head = (rb.head + 1) % rb.depth
		rb.count--
		n++
	}
	return n
}

// OldestSent returns the transmission cycle of the oldest retained flit;
// ok is false when the buffer is empty. Invariant checkers use it to
// assert no entry outlives its NACK window.
func (rb *RetransBuffer) OldestSent() (cycle uint64, ok bool) {
	if rb.count == 0 {
		return 0, false
	}
	return rb.ring[rb.head].sent, true
}

// Drain removes and returns all retained flits, oldest first. The caller
// retransmits them in order (re-capturing each as it goes back out on the
// wire). An empty buffer drains to nil. The returned slice aliases an
// internal scratch buffer valid only until the next Drain; callers that
// retain flits past that must copy.
func (rb *RetransBuffer) Drain() []flit.Flit {
	if rb.count == 0 {
		return nil
	}
	out := rb.scratch[:0]
	for i := 0; i < rb.count; i++ {
		out = append(out, rb.ring[(rb.head+i)%rb.depth].f)
	}
	rb.head, rb.count = 0, 0
	return out
}

// Snapshot returns copies of the retained flits, oldest first; nil when
// the buffer is empty.
func (rb *RetransBuffer) Snapshot() []flit.Flit {
	if rb.count == 0 {
		return nil
	}
	out := make([]flit.Flit, 0, rb.count)
	for i := 0; i < rb.count; i++ {
		out = append(out, rb.ring[(rb.head+i)%rb.depth].f)
	}
	return out
}
