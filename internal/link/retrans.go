package link

import (
	"fmt"

	"ftnoc/internal/flit"
)

// NACKWindow is the number of cycles after transmission during which a
// NACK for a flit can still arrive: 1 cycle link traversal + 1 cycle
// error checking at the receiver + 1 cycle NACK propagation (§3.1). It is
// also therefore the required depth of the retransmission buffer.
const NACKWindow = 3

// RetransBuffer is the barrel-shifter retransmission buffer of Fig. 3,
// one per virtual channel. A flit is captured when it is transmitted on
// the link; it shifts toward the front as cycles pass and is discarded
// once the NACK window has elapsed without complaint. On a NACK, the
// still-buffered flits (the corrupted one plus any sent after it) are
// drained, in order, for retransmission.
type RetransBuffer struct {
	depth   int
	entries []retransEntry
}

type retransEntry struct {
	f    flit.Flit
	sent uint64
}

// NewRetransBuffer creates a barrel shifter of the given depth. The HBH
// scheme needs exactly NACKWindow slots; the duplicate-buffer option of
// §4.5 doubles that.
func NewRetransBuffer(depth int) *RetransBuffer {
	if depth < 1 {
		panic("link: retransmission buffer depth must be >= 1")
	}
	return &RetransBuffer{depth: depth}
}

// Depth returns the configured slot count.
func (rb *RetransBuffer) Depth() int { return rb.depth }

// Len returns the number of occupied slots.
func (rb *RetransBuffer) Len() int { return len(rb.entries) }

// Empty reports whether no flit is retained.
func (rb *RetransBuffer) Empty() bool { return len(rb.entries) == 0 }

// Capture stores a copy of a flit transmitted at the given cycle. It
// panics if the shifter is full: the flow-control invariant is that at
// most NACKWindow flits can be inside their NACK window at once, so
// overflow indicates the transmitter failed to call Expire each cycle.
func (rb *RetransBuffer) Capture(f flit.Flit, cycle uint64) {
	if len(rb.entries) >= rb.depth {
		panic(fmt.Sprintf("link: retransmission buffer overflow (depth %d)", rb.depth))
	}
	rb.entries = append(rb.entries, retransEntry{f: f, sent: cycle})
}

// Expire discards entries whose NACK window has elapsed: a flit sent at
// cycle s has its NACK, if any, visible at the transmitter at exactly
// s+NACKWindow, so once that cycle's NACKs have been processed (the
// caller runs Expire after NACK ingestion) the slot is free — the
// barrel-shift to the front and off the end. Freeing at s+NACKWindow is
// what lets a 3-deep shifter sustain one flit per cycle. It returns the
// number of slots freed.
func (rb *RetransBuffer) Expire(cycle uint64) int {
	n := 0
	for len(rb.entries) > 0 && cycle >= rb.entries[0].sent+NACKWindow {
		rb.entries = rb.entries[1:]
		n++
	}
	return n
}

// Drain removes and returns all retained flits, oldest first. The caller
// retransmits them in order (re-capturing each as it goes back out on the
// wire).
func (rb *RetransBuffer) Drain() []flit.Flit {
	out := make([]flit.Flit, len(rb.entries))
	for i, e := range rb.entries {
		out[i] = e.f
	}
	rb.entries = rb.entries[:0]
	return out
}

// Snapshot returns copies of the retained flits, oldest first.
func (rb *RetransBuffer) Snapshot() []flit.Flit {
	out := make([]flit.Flit, len(rb.entries))
	for i, e := range rb.entries {
		out[i] = e.f
	}
	return out
}
