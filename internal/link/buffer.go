// Package link models the inter-router transmission path of Fig. 3: the
// per-VC FIFO transmission buffer, the 3-flit-deep barrel-shifter
// retransmission buffer, the channel wires (flit, credit, NACK), and the
// fault-injecting link itself.
package link

import (
	"fmt"

	"ftnoc/internal/flit"
)

// FIFO is a bounded flit queue: the "normal transmission buffer" of the
// paper (one per virtual channel). During deadlock recovery its effective
// capacity is extended by the depth of the associated retransmission
// buffer (§3.2.1) — the flow-control equivalent of physically shifting
// flits into the barrel shifter (see DESIGN.md for the equivalence
// argument; the literal Fig. 10 mechanics are modelled in package
// deadlock).
type FIFO struct {
	cap   int
	extra int // recovery-mode capacity extension
	// buf[head:] holds the queued flits; the consumed prefix is reclaimed
	// by compaction instead of reslicing, so a steady-state queue reuses
	// one backing array forever.
	buf  []flit.Flit
	head int
}

// NewFIFO creates a queue holding at most capacity flits.
func NewFIFO(capacity int) *FIFO {
	if capacity < 1 {
		panic("link: FIFO capacity must be >= 1")
	}
	return &FIFO{cap: capacity}
}

// NewFIFOs creates n queues of the given capacity whose backing storage
// is carved out of one contiguous arena, for cache locality when a router
// walks its VC buffers. Each queue's window is capacity-capped (a
// three-index slice), so a queue that outgrows its window during a
// recovery extension reallocates privately instead of clobbering its
// neighbour. The returned slice itself is contiguous; callers keep
// pointers &fifos[i].
func NewFIFOs(n, capacity int) []FIFO {
	if capacity < 1 {
		panic("link: FIFO capacity must be >= 1")
	}
	fifos := make([]FIFO, n)
	arena := make([]flit.Flit, n*capacity)
	for i := range fifos {
		fifos[i].cap = capacity
		fifos[i].buf = arena[i*capacity : i*capacity : (i+1)*capacity]
	}
	return fifos
}

// Cap returns the nominal (non-recovery) capacity.
func (q *FIFO) Cap() int { return q.cap }

// EffectiveCap returns the capacity including any recovery extension.
func (q *FIFO) EffectiveCap() int { return q.cap + q.extra }

// Len returns the current occupancy.
func (q *FIFO) Len() int { return len(q.buf) - q.head }

// Free returns the number of empty slots at the current effective capacity.
func (q *FIFO) Free() int { return q.EffectiveCap() - q.Len() }

// Full reports whether no slot is free.
func (q *FIFO) Full() bool { return q.Free() <= 0 }

// Empty reports whether the queue holds no flits.
func (q *FIFO) Empty() bool { return q.head >= len(q.buf) }

// Push appends a flit. It panics on overflow — the credit protocol must
// prevent it, so an overflow is a flow-control bug, not a runtime
// condition.
func (q *FIFO) Push(f flit.Flit) {
	if q.Full() {
		panic(fmt.Sprintf("link: FIFO overflow (cap %d): %v", q.EffectiveCap(), f))
	}
	if q.head > 0 && len(q.buf) == cap(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, f)
}

// Front returns the oldest flit without removing it.
func (q *FIFO) Front() (flit.Flit, bool) {
	if q.Empty() {
		return flit.Flit{}, false
	}
	return q.buf[q.head], true
}

// Pop removes and returns the oldest flit.
func (q *FIFO) Pop() (flit.Flit, bool) {
	if q.Empty() {
		return flit.Flit{}, false
	}
	f := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return f, true
}

// ExtendForRecovery grows the effective capacity by extra slots while the
// VC participates in deadlock recovery.
func (q *FIFO) ExtendForRecovery(extra int) {
	if extra < 0 {
		panic("link: negative recovery extension")
	}
	q.extra = extra
}

// EndRecovery reverts to nominal capacity. Occupancy above nominal
// capacity is permitted to persist; the queue simply accepts no new flits
// until it drains below nominal.
func (q *FIFO) EndRecovery() { q.extra = 0 }

// InRecovery reports whether a capacity extension is active.
func (q *FIFO) InRecovery() bool { return q.extra > 0 }

// Snapshot returns a copy of the queued flits, oldest first (for tests and
// trace tooling).
func (q *FIFO) Snapshot() []flit.Flit {
	out := make([]flit.Flit, q.Len())
	copy(out, q.buf[q.head:])
	return out
}
