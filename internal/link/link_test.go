package link

import (
	"testing"
	"testing/quick"

	"ftnoc/internal/ecc"
	"ftnoc/internal/fault"
	"ftnoc/internal/flit"
	"ftnoc/internal/sim"
	"ftnoc/internal/stats"
)

func TestFIFOBasics(t *testing.T) {
	q := NewFIFO(2)
	if !q.Empty() || q.Full() || q.Cap() != 2 {
		t.Fatal("fresh FIFO state wrong")
	}
	q.Push(flit.Flit{Seq: 1})
	q.Push(flit.Flit{Seq: 2})
	if !q.Full() || q.Len() != 2 || q.Free() != 0 {
		t.Fatal("full FIFO state wrong")
	}
	f, ok := q.Front()
	if !ok || f.Seq != 1 {
		t.Fatalf("Front = %v,%v", f, ok)
	}
	f, ok = q.Pop()
	if !ok || f.Seq != 1 || q.Len() != 1 {
		t.Fatalf("Pop = %v,%v len=%d", f, ok, q.Len())
	}
}

func TestFIFOOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	q := NewFIFO(1)
	q.Push(flit.Flit{})
	q.Push(flit.Flit{})
}

func TestFIFORecoveryExtension(t *testing.T) {
	q := NewFIFO(2)
	q.Push(flit.Flit{Seq: 1})
	q.Push(flit.Flit{Seq: 2})
	q.ExtendForRecovery(3)
	if q.EffectiveCap() != 5 || q.Free() != 3 || !q.InRecovery() {
		t.Fatalf("extension wrong: cap=%d free=%d", q.EffectiveCap(), q.Free())
	}
	q.Push(flit.Flit{Seq: 3})
	q.EndRecovery()
	if q.EffectiveCap() != 2 {
		t.Fatalf("EndRecovery cap = %d", q.EffectiveCap())
	}
	// Over-nominal occupancy persists but no pushes are allowed.
	if !q.Full() {
		t.Fatal("over-capacity FIFO should report full")
	}
	if q.Free() > 0 {
		t.Fatalf("over-capacity FIFO reports %d free slots", q.Free())
	}
	// It drains back to nominal normally.
	q.Pop()
	q.Pop()
	if q.Full() || q.Free() != 1 {
		t.Fatalf("after draining: full=%v free=%d, want free=1", q.Full(), q.Free())
	}
}

func TestRetransBufferCaptureExpireDrain(t *testing.T) {
	rb := NewRetransBuffer(NACKWindow)
	rb.Capture(flit.Flit{Seq: 0}, 10)
	rb.Capture(flit.Flit{Seq: 1}, 11)
	rb.Capture(flit.Flit{Seq: 2}, 12)
	if rb.Len() != 3 {
		t.Fatalf("Len = %d", rb.Len())
	}
	// At cycle 12 the flit sent at 10 is still NACKable.
	if n := rb.Expire(12); n != 0 {
		t.Fatalf("Expire(12) freed %d, want 0", n)
	}
	// At cycle 13 its NACK deadline has passed (NACKs are ingested before
	// Expire runs), so the slot frees.
	if n := rb.Expire(13); n != 1 {
		t.Fatalf("Expire(13) freed %d, want 1", n)
	}
	got := rb.Drain()
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("Drain = %v", got)
	}
	if !rb.Empty() {
		t.Fatal("not empty after drain")
	}
}

// Empty buffers must hand back nil, not freshly allocated empty slices:
// Snapshot and Drain sit on the per-cycle hot path (every NACK and every
// recovery step), and the empty case is by far the common one.
func TestRetransBufferEmptyReturnsNil(t *testing.T) {
	rb := NewRetransBuffer(NACKWindow)
	if got := rb.Snapshot(); got != nil {
		t.Fatalf("empty Snapshot = %v, want nil", got)
	}
	if got := rb.Drain(); got != nil {
		t.Fatalf("empty Drain = %v, want nil", got)
	}
	rb.Capture(flit.Flit{Seq: 7}, 5)
	if got := rb.Snapshot(); len(got) != 1 || got[0].Seq != 7 {
		t.Fatalf("Snapshot = %v", got)
	}
	if got := rb.Drain(); len(got) != 1 || got[0].Seq != 7 {
		t.Fatalf("Drain = %v", got)
	}
	// Drained-to-empty again: back to nil results, and the scratch
	// capacity is reused rather than reallocated.
	if got := rb.Drain(); got != nil {
		t.Fatalf("post-drain Drain = %v, want nil", got)
	}
	if got := rb.Snapshot(); got != nil {
		t.Fatalf("post-drain Snapshot = %v, want nil", got)
	}
	allocs := testing.AllocsPerRun(100, func() {
		rb.Capture(flit.Flit{Seq: 1}, 5)
		if rb.Drain() == nil {
			t.Fatal("drain lost the captured flit")
		}
	})
	if allocs != 0 {
		t.Fatalf("capture+drain cycle allocates %.1f/op, want 0", allocs)
	}
}

func TestRetransBufferOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	rb := NewRetransBuffer(1)
	rb.Capture(flit.Flit{}, 0)
	rb.Capture(flit.Flit{}, 0)
}

// scriptedCorruptor corrupts the flits whose global send index appears in
// the plan (index -> number of bits to flip).
type scriptedCorruptor struct {
	n    int
	plan map[int]int
}

func (s *scriptedCorruptor) Corrupt(f *flit.Flit) fault.LinkOutcome {
	idx := s.n
	s.n++
	switch s.plan[idx] {
	case 1:
		f.Word = ecc.FlipDataBit(f.Word, 5)
		return fault.SingleFlip
	case 2:
		f.Word = ecc.FlipDataBit(ecc.FlipDataBit(f.Word, 5), 40)
		return fault.DoubleFlip
	default:
		return fault.NoError
	}
}

// harness wires a transmitter and receiver over one channel and runs a
// fixed flit script through it.
type harness struct {
	k        sim.Kernel
	ev       stats.Events
	ctr      *fault.Counters
	tx       *Transmitter
	rx       *Receiver
	toSend   []flit.Flit
	accepted []flit.Flit
	acceptAt []uint64
	// recycle returns each accepted flit's credit immediately (an
	// always-draining consumer); off by default so backpressure tests
	// can count resident flits.
	recycle bool
}

func newHarness(prot Protection, corr fault.Corruptor, cap int, packet []flit.Flit) *harness {
	h := &harness{ctr: fault.NewCounters(), toSend: packet}
	ch := NewChannel(&h.k, corr, false, &h.ev, h.ctr)
	h.tx = NewTransmitter(ch, 3, cap, NACKWindow, &h.ev, h.ctr)
	h.rx = NewReceiver(ch, 3, prot, &h.ev, h.ctr)
	h.k.Register(sim.ActorFunc(func(c uint64) {
		h.tx.BeginCycle(c)
		h.tx.ExpireShifters(c)
		if h.tx.TickReplay(c) {
			return
		}
		if len(h.toSend) > 0 && h.tx.Credits(0) > 0 {
			h.tx.Send(h.toSend[0], 0, c)
			h.toSend = h.toSend[1:]
		}
	}))
	h.k.Register(sim.ActorFunc(func(c uint64) {
		data, _ := h.rx.ReceiveAll(c)
		for _, f := range data {
			h.accepted = append(h.accepted, f)
			h.acceptAt = append(h.acceptAt, c)
			if h.recycle {
				h.rx.ReturnCredit(int(f.VC))
			}
		}
	}))
	return h
}

func packet4() []flit.Flit {
	return flit.Packet{ID: 1, Src: 0, Dst: 5, Size: 4}.Flits()
}

// TestHBHFlitFlowFigure4 reproduces the flit-flow example of Fig. 4: the
// header flit is corrupted with a double error on its first traversal;
// the receiver drops it plus the two subsequent flits and the transmitter
// replays all three from the barrel shifter. The corrected header arrives
// exactly 3 cycles late.
func TestHBHFlitFlowFigure4(t *testing.T) {
	corr := &scriptedCorruptor{plan: map[int]int{0: 2}} // first traversal: double error
	h := newHarness(HBH, corr, 8, packet4())
	h.k.Run(20)

	if len(h.accepted) != 4 {
		t.Fatalf("accepted %d flits, want 4", len(h.accepted))
	}
	for i, f := range h.accepted {
		if int(f.Seq) != i {
			t.Fatalf("flit %d has seq %d: order broken", i, f.Seq)
		}
	}
	// Clean header would arrive at cycle 1; the replayed one lands at 4.
	if h.acceptAt[0] != 4 {
		t.Fatalf("header accepted at cycle %d, want 4 (3-cycle penalty)", h.acceptAt[0])
	}
	// Header payload must be the corrected original.
	hd := flit.DecodeHeader(h.accepted[0].Word)
	if hd.Dst != 5 || hd.Src != 0 {
		t.Fatalf("header corrupted after recovery: %+v", hd)
	}
	if h.ctr.DroppedFlits != 3 {
		t.Fatalf("dropped %d flits, want 3 (corrupt header + two in-flight)", h.ctr.DroppedFlits)
	}
	if h.ctr.Retransmissions != 3 {
		t.Fatalf("retransmitted %d flits, want 3", h.ctr.Retransmissions)
	}
	if h.ctr.NACKs != 1 {
		t.Fatalf("sent %d NACKs, want 1", h.ctr.NACKs)
	}
}

// A single-bit error must be corrected in place with no retransmission at
// all (the FEC half of the hybrid scheme).
func TestHBHSingleErrorCorrectedInPlace(t *testing.T) {
	corr := &scriptedCorruptor{plan: map[int]int{1: 1}} // second flit: single flip
	h := newHarness(HBH, corr, 8, packet4())
	h.k.Run(12)

	if len(h.accepted) != 4 {
		t.Fatalf("accepted %d flits, want 4", len(h.accepted))
	}
	if h.ctr.Retransmissions != 0 || h.ctr.NACKs != 0 {
		t.Fatalf("single error caused retransmission (%d) / NACK (%d)", h.ctr.Retransmissions, h.ctr.NACKs)
	}
	if h.accepted[1].Word != flit.PayloadWord(1, 1) {
		t.Fatal("payload not corrected")
	}
	if h.ev.ECCCorrections != 1 {
		t.Fatalf("ECCCorrections = %d, want 1", h.ev.ECCCorrections)
	}
	// No penalty: last flit arrives at cycle 4 (sent 0..3).
	if h.acceptAt[3] != 4 {
		t.Fatalf("tail accepted at %d, want 4", h.acceptAt[3])
	}
}

// Double errors on consecutive flits: each triggers its own NACK cycle
// and the stream still arrives intact and in order.
func TestHBHBackToBackErrors(t *testing.T) {
	corr := &scriptedCorruptor{plan: map[int]int{0: 2, 4: 2}}
	h := newHarness(HBH, corr, 8, packet4())
	h.k.Run(40)
	if len(h.accepted) != 4 {
		t.Fatalf("accepted %d flits, want 4", len(h.accepted))
	}
	for i, f := range h.accepted {
		if int(f.Seq) != i {
			t.Fatalf("order broken at %d: %v", i, f)
		}
	}
	if h.ctr.NACKs != 2 {
		t.Fatalf("NACKs = %d, want 2", h.ctr.NACKs)
	}
}

// An error on the retransmitted flit itself must trigger a second
// recovery round and still converge.
func TestHBHErrorOnRetransmission(t *testing.T) {
	// Traversal 0: H1 double error. Traversals 3..5 are the replays of
	// H1,D2,D3; corrupt the replayed H1 too.
	corr := &scriptedCorruptor{plan: map[int]int{0: 2, 3: 2}}
	h := newHarness(HBH, corr, 8, packet4())
	h.k.Run(40)
	if len(h.accepted) != 4 {
		t.Fatalf("accepted %d flits, want 4", len(h.accepted))
	}
	for i, f := range h.accepted {
		if int(f.Seq) != i {
			t.Fatalf("order broken at %d: %v", i, f)
		}
	}
	if h.ctr.NACKs != 2 {
		t.Fatalf("NACKs = %d, want 2", h.ctr.NACKs)
	}
}

// E2E mode: data-flit corruption passes through uninspected; the flit is
// delivered corrupt (the destination, not the hop, must catch it).
func TestE2EDataCorruptionPassesThrough(t *testing.T) {
	corr := &scriptedCorruptor{plan: map[int]int{1: 2}}
	h := newHarness(E2E, corr, 8, packet4())
	h.k.Run(12)
	if len(h.accepted) != 4 {
		t.Fatalf("accepted %d flits, want 4", len(h.accepted))
	}
	if _, _, out := ecc.Decode(h.accepted[1].Word, h.accepted[1].Check); out != ecc.Detected {
		t.Fatal("corrupted data flit was repaired at the hop in E2E mode")
	}
	if h.ctr.NACKs != 0 {
		t.Fatal("E2E hop issued a NACK for a data flit")
	}
}

// E2E mode still protects headers hop-by-hop: even a single-bit header
// error goes down the retransmission path (detection-only code).
func TestE2EHeaderProtectedHopByHop(t *testing.T) {
	corr := &scriptedCorruptor{plan: map[int]int{0: 1}}
	h := newHarness(E2E, corr, 8, packet4())
	h.k.Run(20)
	if len(h.accepted) != 4 {
		t.Fatalf("accepted %d flits, want 4", len(h.accepted))
	}
	hd := flit.DecodeHeader(h.accepted[0].Word)
	if hd.Dst != 5 {
		t.Fatalf("header still corrupt: %+v", hd)
	}
	if h.ctr.NACKs != 1 {
		t.Fatalf("NACKs = %d, want 1", h.ctr.NACKs)
	}
}

// FEC mode: data singles corrected at the hop; data doubles delivered
// corrupt; header doubles retransmitted.
func TestFECPolicies(t *testing.T) {
	corr := &scriptedCorruptor{plan: map[int]int{1: 1, 2: 2}}
	h := newHarness(FEC, corr, 8, packet4())
	h.k.Run(16)
	if len(h.accepted) != 4 {
		t.Fatalf("accepted %d flits, want 4", len(h.accepted))
	}
	if h.accepted[1].Word != flit.PayloadWord(1, 1) {
		t.Fatal("FEC hop did not correct single error")
	}
	if _, _, out := ecc.Decode(h.accepted[2].Word, h.accepted[2].Check); out != ecc.Detected {
		t.Fatal("FEC hop repaired or dropped a double-error data flit")
	}
	if h.ctr.NACKs != 0 {
		t.Fatal("FEC hop NACKed a data flit")
	}
}

// Credit conservation: after any error/recovery episode, the transmitter's
// credit count equals capacity minus flits resident downstream.
func TestCreditConservationThroughRecovery(t *testing.T) {
	corr := &scriptedCorruptor{plan: map[int]int{0: 2, 5: 2}}
	h := newHarness(HBH, corr, 4, packet4())
	h.k.Run(40)
	// All 4 flits accepted and still in the downstream buffer (the
	// harness never returns credits on pop), so credits must be 0.
	if len(h.accepted) != 4 {
		t.Fatalf("accepted %d flits, want 4", len(h.accepted))
	}
	if got := h.tx.Credits(0); got != 0 {
		t.Fatalf("credits = %d, want 0 (4 flits resident, cap 4)", got)
	}
	// Returning credits restores the full count.
	for i := 0; i < 4; i++ {
		h.rx.ReturnCredit(0)
	}
	h.k.Run(2)
	h.tx.BeginCycle(h.k.Cycle())
	h.tx.ExpireShifters(h.k.Cycle())
	if got := h.tx.Credits(0); got != 4 {
		t.Fatalf("credits = %d after returns, want 4", got)
	}
}

func TestTransmitterPanicsWithoutCredit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("send without credit did not panic")
		}
	}()
	var k sim.Kernel
	var ev stats.Events
	ctr := fault.NewCounters()
	ch := NewChannel(&k, nil, false, &ev, ctr)
	tx := NewTransmitter(ch, 1, 1, NACKWindow, &ev, ctr)
	tx.Send(flit.Flit{Type: flit.Head}, 0, 0)
	tx.Send(flit.Flit{Type: flit.Body}, 0, 1)
}

func TestControlFlitBypassesCredits(t *testing.T) {
	var k sim.Kernel
	var ev stats.Events
	ctr := fault.NewCounters()
	ch := NewChannel(&k, nil, false, &ev, ctr)
	tx := NewTransmitter(ch, 1, 1, NACKWindow, &ev, ctr)
	rx := NewReceiver(ch, 1, HBH, &ev, ctr)

	probe := flit.Flit{Type: flit.Probe, Word: 0xabc}
	probe.Check = ecc.Encode(probe.Word)
	tx.SendControl(probe)
	k.Step()
	data, ctrl := rx.ReceiveAll(k.Cycle())
	if len(data) != 0 {
		t.Fatal("control flit delivered as data")
	}
	if len(ctrl) != 1 || ctrl[0].Type != flit.Probe || ctrl[0].Word != 0xabc {
		t.Fatalf("control flit not delivered: %v", ctrl)
	}
	if tx.Credits(0) != 1 {
		t.Fatal("control flit consumed a credit")
	}
}

func TestCorruptedControlFlitDropped(t *testing.T) {
	var k sim.Kernel
	var ev stats.Events
	ctr := fault.NewCounters()
	corr := &scriptedCorruptor{plan: map[int]int{0: 2}}
	ch := NewChannel(&k, corr, false, &ev, ctr)
	tx := NewTransmitter(ch, 1, 1, NACKWindow, &ev, ctr)
	rx := NewReceiver(ch, 1, HBH, &ev, ctr)

	probe := flit.Flit{Type: flit.Probe, Word: 0xabc}
	probe.Check = ecc.Encode(probe.Word)
	tx.SendControl(probe)
	k.Step()
	data, ctrl := rx.ReceiveAll(k.Cycle())
	if len(data) != 0 || len(ctrl) != 0 {
		t.Fatal("uncorrectable control flit was delivered")
	}
}

func TestShifterOccupancyMetric(t *testing.T) {
	var k sim.Kernel
	var ev stats.Events
	ctr := fault.NewCounters()
	ch := NewChannel(&k, nil, false, &ev, ctr)
	tx := NewTransmitter(ch, 3, 4, NACKWindow, &ev, ctr)
	occ, cap := tx.ShifterOccupancy()
	if occ != 0 || cap != 9 {
		t.Fatalf("fresh occupancy = %d/%d, want 0/9", occ, cap)
	}
	tx.Send(flit.Flit{Type: flit.Head}, 1, 0)
	occ, _ = tx.ShifterOccupancy()
	if occ != 1 {
		t.Fatalf("occupancy after send = %d, want 1", occ)
	}
}

// Property: under any random schedule of single and double errors, an
// HBH stream of whole packets arrives complete, in order, and unmodified.
func TestHBHStreamIntegrityProperty(t *testing.T) {
	f := func(seed uint64, rate8, dbl8 uint8) bool {
		rate := float64(rate8%40) / 100 // 0..0.39
		dbl := float64(dbl8%100) / 100
		inj := fault.NewLinkInjector(rate, dbl, sim.NewRNG(seed))
		var fs []flit.Flit
		for pid := 1; pid <= 6; pid++ {
			fs = append(fs, flit.Packet{ID: flit.PacketID(pid), Src: 0, Dst: 5, Size: 4}.Flits()...)
		}
		h := newHarness(HBH, inj, 8, fs)
		h.recycle = true
		h.k.Run(600)
		if len(h.accepted) != 24 {
			return false
		}
		for i, got := range h.accepted {
			wantPID := flit.PacketID(1 + i/4)
			wantSeq := uint8(i % 4)
			if got.PID != wantPID || got.Seq != wantSeq {
				return false
			}
			var wantWord uint64
			if wantSeq == 0 {
				wantWord = flit.EncodeHeader(flit.Header{Src: 0, Dst: 5, PID: wantPID})
			} else {
				wantWord = flit.PayloadWord(wantPID, wantSeq)
			}
			if got.Word != wantWord {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: credits are conserved under random error schedules — after
// the stream completes and the sink's slots are recycled, the transmitter
// sees full credit.
func TestHBHCreditConservationProperty(t *testing.T) {
	f := func(seed uint64, rate8 uint8) bool {
		rate := float64(rate8%30) / 100
		inj := fault.NewLinkInjector(rate, 0.3, sim.NewRNG(seed))
		fs := flit.Packet{ID: 1, Src: 0, Dst: 5, Size: 4}.Flits()
		h := newHarness(HBH, inj, 4, fs)
		h.k.Run(300)
		if len(h.accepted) != 4 {
			return false
		}
		for range h.accepted {
			h.rx.ReturnCredit(0)
		}
		h.k.Run(4)
		h.tx.BeginCycle(h.k.Cycle())
		h.tx.ExpireShifters(h.k.Cycle())
		return h.tx.Credits(0) == 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
