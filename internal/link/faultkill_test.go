package link

import (
	"testing"

	"ftnoc/internal/fault"
	"ftnoc/internal/flit"
	"ftnoc/internal/sim"
	"ftnoc/internal/stats"
)

// killHarness is a bare channel + transmitter pair for exercising the
// hard-fault destruction primitives outside a full network.
type killHarness struct {
	k   sim.Kernel
	ev  stats.Events
	ctr *fault.Counters
	ch  *Channel
	tx  *Transmitter
}

func newKillHarness() *killHarness {
	h := &killHarness{ctr: fault.NewCounters()}
	h.ch = NewChannel(&h.k, nil, false, &h.ev, h.ctr)
	h.tx = NewTransmitter(h.ch, 3, 8, NACKWindow, &h.ev, h.ctr)
	return h
}

// flitsOnVC builds one packet's flits riding the given VC.
func flitsOnVC(pid, vc, size int) []flit.Flit {
	fs := flit.Packet{ID: flit.PacketID(pid), Src: 0, Dst: 5, Size: size}.Flits()
	for i := range fs {
		fs[i].VC = uint8(vc)
	}
	return fs
}

// TestChannelDestroyData pins the wire-destruction primitive's credit
// law: destroying an in-flight data flit must push exactly one credit
// back toward the transmitter on that flit's VC, per-VC selection must
// leave other VCs' traffic untouched, and vc<0 must clear the wire.
func TestChannelDestroyData(t *testing.T) {
	h := newKillHarness()
	for _, f := range flitsOnVC(1, 0, 3) {
		h.ch.Send(f)
	}
	for _, f := range flitsOnVC(2, 1, 2) {
		h.ch.Send(f)
	}
	if h.ch.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", h.ch.Pending())
	}
	if h.ch.InFlightData(0) != 3 || h.ch.InFlightData(1) != 2 {
		t.Fatalf("InFlightData = %d,%d want 3,2", h.ch.InFlightData(0), h.ch.InFlightData(1))
	}

	var seen []flit.Flit
	if n := h.ch.DestroyData(0, func(f flit.Flit) { seen = append(seen, f) }); n != 3 {
		t.Fatalf("DestroyData(0) = %d, want 3", n)
	}
	if len(seen) != 3 {
		t.Fatalf("observer saw %d flits, want 3", len(seen))
	}
	for _, f := range seen {
		if f.VC != 0 || f.PID != 1 {
			t.Fatalf("observer saw foreign flit %+v", f)
		}
	}
	// Credit conservation: one credit per destroyed data flit, on its VC.
	if h.ch.InFlightCredits(0) != 3 || h.ch.InFlightCredits(1) != 0 {
		t.Fatalf("InFlightCredits = %d,%d want 3,0",
			h.ch.InFlightCredits(0), h.ch.InFlightCredits(1))
	}
	// The other VC's worm is untouched.
	if h.ch.InFlightData(1) != 2 {
		t.Fatalf("VC1 lost flits: InFlightData(1) = %d, want 2", h.ch.InFlightData(1))
	}
	count := 0
	h.ch.EachDataFlit(func(f flit.Flit) {
		count++
		if f.VC != 1 {
			t.Fatalf("surviving flit on VC %d, want 1", f.VC)
		}
	})
	if count != 2 {
		t.Fatalf("EachDataFlit visited %d, want 2", count)
	}

	// Whole-channel destruction clears the remaining traffic.
	if n := h.ch.DestroyData(-1, nil); n != 2 {
		t.Fatalf("DestroyData(-1) = %d, want 2", n)
	}
	if h.ch.Pending() != 0 {
		t.Fatalf("Pending = %d after full destruction, want 0", h.ch.Pending())
	}
}

// TestChannelDropNACKs kills pending backward handshakes: a dead
// channel's transmitter must never see a NACK, even one already
// visible on the wire.
func TestChannelDropNACKs(t *testing.T) {
	h := newKillHarness()
	drain := sim.ActorFunc(func(uint64) {})
	h.k.Register(drain)
	h.ch.SendNACK(0, NACKLinkError)
	h.k.Run(NACKLatency + 1)        // let it reach the visible slot
	h.ch.SendNACK(1, NACKLinkError) // and stage another, still in flight
	h.ch.DropNACKs()
	if ns := h.ch.RecvNACKs(); len(ns) != 0 {
		t.Fatalf("RecvNACKs returned %v after DropNACKs", ns)
	}
}

// TestTransmitterAbandon pins the retransmission-state kill paths: per-VC
// abandonment drains exactly that VC's shifter without crediting
// anything, and AbandonAll leaves the transmitter retaining nothing.
func TestTransmitterAbandon(t *testing.T) {
	h := newKillHarness()
	for _, f := range flitsOnVC(1, 0, 3) {
		h.tx.Send(f, 0, 0)
	}
	for _, f := range flitsOnVC(2, 1, 2) {
		h.tx.Send(f, 1, 0)
	}
	if occ := h.tx.ShifterOccupied(); occ != 5 {
		t.Fatalf("ShifterOccupied = %d, want 5", occ)
	}
	if h.tx.Channel() != h.ch {
		t.Fatal("Channel() does not return the wired channel")
	}

	credits0 := h.tx.Credits(0)
	var seen []flit.Flit
	h.tx.AbandonVC(0, func(f flit.Flit) { seen = append(seen, f) })
	if len(seen) != 3 {
		t.Fatalf("AbandonVC(0) observed %d flits, want 3", len(seen))
	}
	if occ := h.tx.ShifterOccupied(); occ != 2 {
		t.Fatalf("ShifterOccupied = %d after AbandonVC(0), want 2", occ)
	}
	// Shifter copies hold no credits: abandoning must not mint any.
	if h.tx.Credits(0) != credits0 {
		t.Fatalf("AbandonVC changed VC0 credits %d -> %d", credits0, h.tx.Credits(0))
	}

	retained := 0
	h.tx.EachRetained(func(flit.Flit) { retained++ })
	if retained != 2 {
		t.Fatalf("EachRetained visited %d, want 2", retained)
	}

	h.tx.AbandonAll(nil)
	if occ := h.tx.ShifterOccupied(); occ != 0 {
		t.Fatalf("ShifterOccupied = %d after AbandonAll, want 0", occ)
	}
	if n := h.tx.PendingReplay(); n != 0 {
		t.Fatalf("PendingReplay = %d after AbandonAll, want 0", n)
	}
	retained = 0
	h.tx.EachRetained(func(flit.Flit) { retained++ })
	if retained != 0 {
		t.Fatalf("EachRetained visited %d after AbandonAll, want 0", retained)
	}
}
