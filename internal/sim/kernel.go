// Package sim provides the cycle-driven simulation kernel underneath the
// network model: a deterministic clock, actor scheduling, and latched
// delay lines that decouple intra-cycle evaluation order from observable
// behaviour.
//
// The kernel is synchronous. Each call to Kernel.Step advances the global
// clock by one cycle in two phases:
//
//  1. every registered Actor's Tick(cycle) runs, reading only values
//     latched in previous cycles and writing only into delay lines;
//  2. every delay line advances, making this cycle's writes visible at
//     their programmed latency.
//
// Because actors never observe same-cycle writes, the order in which they
// tick is immaterial, which is what makes the model cycle-accurate rather
// than merely event-ordered.
//
// # Quiescence
//
// An actor that also implements Quiescer may report, after a tick, that it
// is idle until woken. The kernel then stops ticking it — a skipped actor
// must be observationally indistinguishable from one that ticked while
// idle, which is the actor's contract to uphold (see DESIGN.md, "Kernel
// performance"). A quiescent actor returns to the active set when
//
//   - a delay line delivers a value to it (the pipe's wake callback, wired
//     via Waker, fires when a latch leaves values visible), or
//   - its self-declared timed wake cycle arrives (for purely clock-driven
//     work such as a traffic source's next injection slot).
//
// # Scheduling modes
//
// SetMode selects among three schedulers that share the actor/latch model
// and produce identical simulations:
//
//   - ModeNaive ticks every actor every cycle — the historical exhaustive
//     schedule, kept as the differential oracle.
//   - ModeQuiescent (the zero value) walks the actor list each cycle but
//     skips sleeping actors.
//   - ModeEvent is a calendar-queue discrete-event scheduler: each actor
//     carries a pending-tick cycle, due handles are drained from a
//     256-bucket ring (plus an overflow min-heap for far-future wakes),
//     and cost scales with dispatched events rather than cycles x actors.
//     Busy actors simply reschedule themselves for the next cycle, so a
//     fully-active network degenerates gracefully to the per-cycle walk.
//
// Latch skipping stays on in all modes: an empty pipe's latch is the
// identity, so eliding it is exact. Due handles are dispatched in
// ascending registration order in every mode, keeping intra-cycle trace
// order identical across schedulers.
package sim

import (
	"slices"
	"time"
)

// Actor is a component evaluated once per simulated clock cycle.
type Actor interface {
	// Tick evaluates one cycle of behaviour. Implementations must read
	// only state latched before this cycle and buffer their outputs in
	// delay lines (or internal next-state fields committed by a latch
	// Actor registered after them).
	Tick(cycle uint64)
}

// ActorFunc adapts a function to the Actor interface.
type ActorFunc func(cycle uint64)

// Tick implements Actor.
func (f ActorFunc) Tick(cycle uint64) { f(cycle) }

// Quiescer is optionally implemented by actors that can prove themselves
// idle. Quiescent is consulted immediately after each of the actor's own
// ticks; returning quiet=true suspends the actor until a pipe delivery
// wakes it or, if wakeAt > cycle, until that cycle arrives.
//
// The contract: while suspended, the actor's tick must have been a
// semantic no-op apart from state it can reconstruct on wake (catch-up),
// and every external input it reacts to must arrive through a delay line
// whose wake callback targets it (or be covered by the timed wake).
type Quiescer interface {
	Actor
	// Quiescent reports whether the actor is idle after ticking cycle.
	// wakeAt, when > cycle, schedules an unconditional wake at that cycle;
	// wakeAt == 0 means "sleep until a delivery wakes me".
	Quiescent(cycle uint64) (quiet bool, wakeAt uint64)
}

// Handle identifies a registered actor, for wake wiring.
type Handle int

// Mode selects the kernel's scheduling strategy. All modes simulate the
// same network identically; they differ only in which cycles an actor's
// Tick is physically invoked on (skipped ticks are provably no-ops).
type Mode uint8

const (
	// ModeQuiescent walks all actors each cycle, skipping sleepers. The
	// zero value, for compatibility with kernels built before ModeEvent.
	ModeQuiescent Mode = iota
	// ModeNaive ticks every actor every cycle (differential oracle).
	ModeNaive
	// ModeEvent dispatches only due actors from a calendar queue.
	ModeEvent
	// ModeParallel partitions the actors into worker-owned groups plus a
	// serial group (see SetParallel). Each cycle, worker goroutines step
	// their groups concurrently (quiescent-style, with per-worker timed
	// wake heaps), a barrier waits for all of them, then the serial group
	// ticks in registration order and all latches advance. Cross-group
	// pipe pushes land in staging buffers disjoint from anything the
	// consumer reads this cycle, so the schedule is observationally
	// identical to the synchronous loop.
	ModeParallel
)

// Stats is the kernel's cumulative scheduling telemetry. Ticked counts
// actor ticks executed; Skipped counts actor ticks elided (relative to
// the naive every-actor-every-cycle schedule, in all modes, so the skip
// ratio is comparable across schedulers); Events counts calendar-queue
// dispatches and is zero outside ModeEvent. Workers is non-empty only
// under ModeParallel, one entry per region worker; its Ticked/Skipped
// are already included in the top-level totals.
type Stats struct {
	Ticked  uint64
	Skipped uint64
	Events  uint64
	Workers []WorkerStats
}

// WorkerStats is one parallel region worker's share of the scheduling
// telemetry. BarrierWaitNs is the cumulative wall-clock time the worker
// spent idle at the per-cycle barrier waiting for the serial phase and
// its slower peers — the direct measure of partition imbalance and
// serial-fraction overhead.
type WorkerStats struct {
	Ticked        uint64
	Skipped       uint64
	BarrierWaitNs uint64
}

// activeLatch is implemented by delay lines; the kernel advances armed
// ones after all actors have ticked. latch reports whether the line still
// holds values and must remain armed.
type activeLatch interface {
	latch() bool
}

// wakeEntry is one scheduled timed wake in a min-heap (the quiescent
// mode's timed-wake heap, or the event mode's far-future overflow heap).
type wakeEntry struct {
	at uint64
	h  Handle
}

const (
	// numBuckets sizes the calendar-queue ring. Wakes due within the next
	// numBuckets-1 cycles go in the ring (O(1) insert/drain); anything
	// further — rare: retention sweeps, low-rate sources — overflows to
	// the heap. Power of two so the bucket index is a mask, and larger
	// than every latency constant in the model (pipe depths, NACK window,
	// reprobe interval) so steady-state scheduling never touches the heap.
	numBuckets = 256
	bucketMask = numBuckets - 1

	// noPending marks an actor with no scheduled tick.
	noPending = ^uint64(0)
)

// Kernel drives a set of actors and delay lines through simulated time.
// The zero value is ready to use.
type Kernel struct {
	cycle  uint64
	actors []Actor
	// quiescers[i] is actors[i] if it implements Quiescer, else nil.
	quiescers []Quiescer
	asleep    []bool
	// wakeAt[i] is the pending timed-wake cycle for a sleeping actor
	// (0 = none); heap entries not matching it are stale and ignored.
	// Used by ModeQuiescent only.
	wakeAt []uint64
	// heap holds timed wakes (ModeQuiescent, and ModeParallel's serial
	// group) or far-future scheduled ticks (ModeEvent); the uses never
	// coexist.
	heap []wakeEntry
	// shards hold the armed delay lines; pipes arm themselves on Push
	// into their producer's shard and disarm by returning false from
	// latch. Serial kernels use only shard 0; ModeParallel gives each
	// worker its own shard so concurrent arms never share a slice.
	shards [][]activeLatch

	// Calendar queue (ModeEvent). pendingAt[i] is the cycle actor i is
	// scheduled to tick on (noPending = none); ring buckets hold handles
	// due within numBuckets cycles, keyed by cycle & bucketMask. Entries
	// whose pendingAt no longer matches the drain cycle are stale —
	// superseded by an earlier wake — and skipped, so duplicates are
	// harmless.
	pendingAt []uint64
	buckets   [numBuckets][]Handle
	due       []Handle
	evInit    bool

	// Parallel scheduling (ModeParallel, see SetParallel). serialH holds
	// the handles ticked by the coordinator after the barrier; workerH[w]
	// holds worker w's handles, both in ascending registration order.
	// wheaps[w] is worker w's private timed-wake heap; wstats[w] its
	// telemetry, written only between the worker's start-receive and
	// done-send so the barrier orders every access. lastTick[h] is the
	// cycle handle h last actually ticked (noPending = never), maintained
	// only in ModeParallel for mid-cycle observers that need to know
	// whether an actor has already advanced past an observation point.
	serialH  []Handle
	workerH  [][]Handle
	wheaps   [][]wakeEntry
	wstats   []WorkerStats
	lastTick []uint64
	startCh  []chan uint64
	doneCh   chan struct{}
	pRunning bool
	pStopped bool

	mode    Mode
	ticked  uint64
	skipped uint64
	events  uint64
}

// Register adds actors to the kernel. Actors tick in registration order,
// though correctness must not depend on that order.
func (k *Kernel) Register(actors ...Actor) {
	for _, a := range actors {
		k.RegisterActor(a)
	}
}

// RegisterActor adds one actor and returns its handle, for wake wiring
// via Waker.
//
// Implementing Quiescer is not by itself enough to be skipped: skipping
// an actor is only sound once every delay line feeding it has a wake
// callback installed, which the kernel cannot verify. Whoever does that
// wiring opts the actor in with EnableQuiescence.
func (k *Kernel) RegisterActor(a Actor) Handle {
	h := Handle(len(k.actors))
	k.actors = append(k.actors, a)
	k.quiescers = append(k.quiescers, nil)
	k.asleep = append(k.asleep, false)
	k.wakeAt = append(k.wakeAt, 0)
	k.pendingAt = append(k.pendingAt, noPending)
	if k.evInit {
		k.scheduleTick(h, k.cycle+1)
	}
	return h
}

// EnableQuiescence opts a registered Quiescer into idle skipping. Call
// only after wiring wake callbacks on every pipe that delivers to it. A
// non-Quiescer actor is left untouched.
func (k *Kernel) EnableQuiescence(h Handle) {
	if q, ok := k.actors[h].(Quiescer); ok {
		k.quiescers[h] = q
	}
}

// Waker returns the wake callback for an actor: invoking it returns the
// actor to the active set so it ticks next cycle. Safe to call on awake
// actors (no-op) and repeatedly.
func (k *Kernel) Waker(h Handle) func() {
	return func() {
		if k.mode == ModeEvent {
			k.asleep[h] = false
			k.scheduleTick(h, k.cycle+1)
			return
		}
		if k.asleep[h] {
			k.asleep[h] = false
			k.wakeAt[h] = 0
		}
	}
}

// Asleep reports whether the actor is currently suspended as quiescent.
// In ModeEvent an actor merely awaiting its next-cycle tick is not
// asleep; only one that declared itself quiet is.
func (k *Kernel) Asleep(h Handle) bool { return k.asleep[h] }

// SetMode selects the scheduler. Must be set before stepping. For
// ModeParallel use SetParallel, which also supplies the partition.
func (k *Kernel) SetMode(m Mode) { k.mode = m }

// SetParallel selects ModeParallel and installs the partition: groups[h]
// assigns registered handle h to region worker groups[h] (0..workers-1),
// or -1 to the serial group ticked by the coordinator after the barrier.
// Workers step their groups concurrently each cycle, so two handles may
// share a group only if ticking them concurrently with every other
// group is race-free (all cross-group communication through pipes, no
// shared mutable state). Must be called after all registrations and
// before the first Step. Worker goroutines start lazily on the first
// Step and run until StopWorkers.
func (k *Kernel) SetParallel(groups []int, workers int) {
	if workers < 1 {
		panic("sim: SetParallel needs >= 1 worker")
	}
	if len(groups) != len(k.actors) {
		panic("sim: SetParallel groups must cover every registered actor")
	}
	k.mode = ModeParallel
	k.serialH = k.serialH[:0]
	k.workerH = make([][]Handle, workers)
	for h, g := range groups {
		switch {
		case g < 0:
			k.serialH = append(k.serialH, Handle(h))
		case g < workers:
			k.workerH[g] = append(k.workerH[g], Handle(h))
		default:
			panic("sim: SetParallel group out of range")
		}
	}
	k.wheaps = make([][]wakeEntry, workers)
	k.wstats = make([]WorkerStats, workers)
	k.lastTick = make([]uint64, len(groups))
	for h := range k.lastTick {
		k.lastTick[h] = noPending
	}
	k.startCh = make([]chan uint64, workers)
	for w := range k.startCh {
		k.startCh[w] = make(chan uint64, 1)
	}
	k.doneCh = make(chan struct{}, workers)
	// Pre-grow the arm shards so no worker ever has to extend the outer
	// slice concurrently: shard 0 is serial, shard w+1 belongs to worker w.
	for len(k.shards) <= workers {
		k.shards = append(k.shards, nil)
	}
}

// Workers returns the number of region workers (0 outside ModeParallel).
func (k *Kernel) Workers() int { return len(k.workerH) }

// LastTicked reports the cycle handle h last actually ticked, and whether
// it has ever ticked. Maintained only under ModeParallel; callers use it
// to decide whether an actor has already advanced past a mid-cycle
// observation point. Call only between phases (e.g. from the serial
// group's ticks or after Step), never concurrently with the workers.
func (k *Kernel) LastTicked(h Handle) (uint64, bool) {
	if k.lastTick == nil || k.lastTick[h] == noPending {
		return 0, false
	}
	return k.lastTick[h], true
}

// StopWorkers shuts down the parallel region workers, if any are
// running. Idempotent; safe outside ModeParallel. The kernel must not be
// stepped afterwards.
func (k *Kernel) StopWorkers() {
	if !k.pRunning || k.pStopped {
		k.pStopped = true
		return
	}
	k.pStopped = true
	for _, ch := range k.startCh {
		close(ch)
	}
	for range k.startCh {
		<-k.doneCh
	}
}

// Mode returns the selected scheduler.
func (k *Kernel) Mode() Mode { return k.mode }

// SetNaive toggles the tick-every-actor fallback kernel, equivalent to
// SetMode(ModeNaive) / SetMode(ModeQuiescent). Kept for callers predating
// the mode API.
func (k *Kernel) SetNaive(naive bool) {
	if naive {
		k.mode = ModeNaive
	} else {
		k.mode = ModeQuiescent
	}
}

// Naive reports whether actor skipping is disabled.
func (k *Kernel) Naive() bool { return k.mode == ModeNaive }

// Stats returns the kernel's cumulative scheduling telemetry. Under
// ModeParallel the top-level Ticked/Skipped fold in every worker's
// share and Workers carries the per-worker breakdown. Call only between
// steps (the barrier makes that race-free), never from inside a tick.
func (k *Kernel) Stats() Stats {
	s := Stats{Ticked: k.ticked, Skipped: k.skipped, Events: k.events}
	if len(k.wstats) > 0 {
		s.Workers = append([]WorkerStats(nil), k.wstats...)
		for _, w := range k.wstats {
			s.Ticked += w.Ticked
			s.Skipped += w.Skipped
		}
	}
	return s
}

// arm adds a delay line to the given arm-shard (called by Pipe.Push).
// Serial producers use shard 0; parallel worker w's pipes use shard w+1,
// so no two goroutines ever append to the same slice.
func (k *Kernel) arm(l activeLatch, shard int) {
	for len(k.shards) <= shard {
		k.shards = append(k.shards, nil)
	}
	k.shards[shard] = append(k.shards[shard], l)
}

// heapPush schedules an entry on a min-heap ordered by at.
func heapPush(heap *[]wakeEntry, e wakeEntry) {
	h := append(*heap, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].at <= h[i].at {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	*heap = h
}

// heapPop removes and returns the earliest entry.
func heapPop(heap *[]wakeEntry) wakeEntry {
	h := *heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l].at < h[small].at {
			small = l
		}
		if r < len(h) && h[r].at < h[small].at {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	*heap = h
	return top
}

// scheduleTick (ModeEvent) records that actor h must tick at cycle at,
// unless an earlier tick is already pending. Near wakes go in the ring
// bucket for their cycle — an entry lands in bucket at&bucketMask only
// when at is the next cycle with that residue, so every entry in a
// drained bucket is due exactly then; far wakes overflow to the heap.
// Superseded entries are left in place and filtered at drain time.
func (k *Kernel) scheduleTick(h Handle, at uint64) {
	if at <= k.cycle {
		at = k.cycle + 1
	}
	if k.pendingAt[h] <= at {
		return
	}
	k.pendingAt[h] = at
	if at-k.cycle < numBuckets {
		b := &k.buckets[at&bucketMask]
		*b = append(*b, h)
	} else {
		heapPush(&k.heap, wakeEntry{at: at, h: h})
	}
}

// Cycle returns the number of completed cycles.
func (k *Kernel) Cycle() uint64 { return k.cycle }

// Step advances simulated time by one cycle.
func (k *Kernel) Step() {
	if k.mode == ModeEvent {
		k.stepEvent()
		return
	}
	if k.mode == ModeParallel {
		k.stepParallel()
		return
	}
	c := k.cycle

	// Fire timed wakes due this cycle. Stale heap entries (the actor was
	// woken earlier by a delivery, or re-slept with a different deadline)
	// are recognised by wakeAt disagreeing with the entry.
	for len(k.heap) > 0 && k.heap[0].at <= c {
		e := heapPop(&k.heap)
		if k.asleep[e.h] && k.wakeAt[e.h] == e.at {
			k.asleep[e.h] = false
			k.wakeAt[e.h] = 0
		}
	}

	naive := k.mode == ModeNaive
	for i, a := range k.actors {
		if k.asleep[i] {
			k.skipped++
			continue
		}
		a.Tick(c)
		k.ticked++
		if q := k.quiescers[i]; q != nil && !naive {
			if quiet, at := q.Quiescent(c); quiet {
				k.asleep[i] = true
				if at > c {
					k.wakeAt[i] = at
					heapPush(&k.heap, wakeEntry{at: at, h: Handle(i)})
				} else {
					k.wakeAt[i] = 0
				}
			}
		}
	}

	k.latchAndAdvance()
}

// stepEvent advances one cycle under the calendar-queue scheduler: drain
// this cycle's ring bucket plus any due overflow-heap entries, dispatch
// the surviving handles in registration order, and let each actor either
// reschedule for the next cycle (busy), sleep until a delivery (quiet),
// or sleep with a timed wake (quiet with a deadline).
func (k *Kernel) stepEvent() {
	c := k.cycle
	if !k.evInit {
		// First event-mode step: every registered actor starts due now.
		k.evInit = true
		b := &k.buckets[c&bucketMask]
		for h := range k.actors {
			k.pendingAt[h] = c
			*b = append(*b, Handle(h))
		}
	}

	// Collect due handles. The bucket is copied then truncated in place:
	// reschedules during dispatch target later cycles, so they can never
	// land back in this cycle's bucket (at == c+numBuckets overflows to
	// the heap rather than aliasing the ring).
	due := k.due[:0]
	b := &k.buckets[c&bucketMask]
	due = append(due, (*b)...)
	*b = (*b)[:0]
	for len(k.heap) > 0 && k.heap[0].at <= c {
		due = append(due, heapPop(&k.heap).h)
	}
	// Registration order = tick order, matching the other schedulers'
	// intra-cycle trace order exactly.
	slices.Sort(due)

	ticked := 0
	for _, h := range due {
		if k.pendingAt[h] != c {
			continue // superseded by an earlier wake, or a duplicate
		}
		k.pendingAt[h] = noPending
		k.asleep[h] = false
		k.actors[h].Tick(c)
		ticked++
		k.events++
		if q := k.quiescers[h]; q != nil {
			if quiet, at := q.Quiescent(c); quiet {
				k.asleep[h] = true
				if at > c {
					k.scheduleTick(h, at)
				}
				continue
			}
		}
		k.scheduleTick(h, c+1)
	}
	k.due = due[:0]
	k.ticked += uint64(ticked)
	k.skipped += uint64(len(k.actors) - ticked)

	k.latchAndAdvance()
}

// stepParallel advances one cycle under the partitioned scheduler:
// start every region worker on this cycle, wait for all of them at the
// barrier, tick the serial group in registration order, then run the
// latch phase. Workers only read state latched in earlier cycles and
// write into staging buffers nothing else reads this cycle, so the
// result is identical to ticking everything on one goroutine; the
// barrier plus the start/done channel pairs provide the happens-before
// edges that make the sharing visible (and -race clean).
func (k *Kernel) stepParallel() {
	c := k.cycle
	if !k.pRunning {
		if k.pStopped {
			panic("sim: Step after StopWorkers")
		}
		k.pRunning = true
		for w := range k.workerH {
			go k.workerLoop(w)
		}
	}
	for _, ch := range k.startCh {
		ch <- c
	}
	for range k.startCh {
		<-k.doneCh
	}

	// Serial phase: timed wakes then ticks for the serial group, exactly
	// the quiescent schedule restricted to serialH. Pipe wake callbacks
	// fired later in the latch phase also run here on the coordinator.
	for len(k.heap) > 0 && k.heap[0].at <= c {
		e := heapPop(&k.heap)
		if k.asleep[e.h] && k.wakeAt[e.h] == e.at {
			k.asleep[e.h] = false
			k.wakeAt[e.h] = 0
		}
	}
	for _, h := range k.serialH {
		if k.asleep[h] {
			k.skipped++
			continue
		}
		k.actors[h].Tick(c)
		k.lastTick[h] = c
		k.ticked++
		if q := k.quiescers[h]; q != nil {
			if quiet, at := q.Quiescent(c); quiet {
				k.asleep[h] = true
				if at > c {
					k.wakeAt[h] = at
					heapPush(&k.heap, wakeEntry{at: at, h: h})
				} else {
					k.wakeAt[h] = 0
				}
			}
		}
	}

	k.latchAndAdvance()
}

// workerLoop is one region worker: wait for a start signal, step the
// region, signal done. The time between signalling done and receiving
// the next start is the worker's barrier wait — the serial phase plus
// straggler peers — accumulated into its WorkerStats.
func (k *Kernel) workerLoop(w int) {
	var waitFrom time.Time
	for {
		c, ok := <-k.startCh[w]
		if !waitFrom.IsZero() {
			k.wstats[w].BarrierWaitNs += uint64(time.Since(waitFrom))
		}
		if !ok {
			k.doneCh <- struct{}{}
			return
		}
		k.tickGroup(w, c)
		k.doneCh <- struct{}{}
		waitFrom = time.Now()
	}
}

// tickGroup steps worker w's handles for one cycle: fire the worker's
// due timed wakes, then walk the group in ascending registration order
// skipping sleepers — the quiescent schedule restricted to one region.
func (k *Kernel) tickGroup(w int, c uint64) {
	heap := &k.wheaps[w]
	for len(*heap) > 0 && (*heap)[0].at <= c {
		e := heapPop(heap)
		if k.asleep[e.h] && k.wakeAt[e.h] == e.at {
			k.asleep[e.h] = false
			k.wakeAt[e.h] = 0
		}
	}
	var ticked, skipped uint64
	for _, h := range k.workerH[w] {
		if k.asleep[h] {
			skipped++
			continue
		}
		k.actors[h].Tick(c)
		k.lastTick[h] = c
		ticked++
		if q := k.quiescers[h]; q != nil {
			if quiet, at := q.Quiescent(c); quiet {
				k.asleep[h] = true
				if at > c {
					k.wakeAt[h] = at
					heapPush(heap, wakeEntry{at: at, h: h})
				} else {
					k.wakeAt[h] = 0
				}
			}
		}
	}
	k.wstats[w].Ticked += ticked
	k.wstats[w].Skipped += skipped
}

// latchAndAdvance runs the cycle's latch phase and advances the clock.
// Latch-order equals arm-order, which may differ from historical
// registration order — sound because latches are independent: each
// pipe only rotates its own ring. Wake callbacks fired here return
// consumers to the active set for the next cycle.
func (k *Kernel) latchAndAdvance() {
	for s, shard := range k.shards {
		n := 0
		for _, l := range shard {
			if l.latch() {
				shard[n] = l
				n++
			}
		}
		k.shards[s] = shard[:n]
	}
	k.cycle++
}

// Run advances simulated time by n cycles.
func (k *Kernel) Run(n uint64) {
	for i := uint64(0); i < n; i++ {
		k.Step()
	}
}

// RunUntil steps the kernel until done returns true or limit cycles have
// elapsed. It returns true if done was satisfied within the limit.
func (k *Kernel) RunUntil(done func() bool, limit uint64) bool {
	for i := uint64(0); i < limit; i++ {
		if done() {
			return true
		}
		k.Step()
	}
	return done()
}
