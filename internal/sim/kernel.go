// Package sim provides the cycle-driven simulation kernel underneath the
// network model: a deterministic clock, actor scheduling, and latched
// delay lines that decouple intra-cycle evaluation order from observable
// behaviour.
//
// The kernel is synchronous. Each call to Kernel.Step advances the global
// clock by one cycle in two phases:
//
//  1. every registered Actor's Tick(cycle) runs, reading only values
//     latched in previous cycles and writing only into delay lines;
//  2. every delay line advances, making this cycle's writes visible at
//     their programmed latency.
//
// Because actors never observe same-cycle writes, the order in which they
// tick is immaterial, which is what makes the model cycle-accurate rather
// than merely event-ordered.
//
// # Quiescence
//
// An actor that also implements Quiescer may report, after a tick, that it
// is idle until woken. The kernel then stops ticking it — a skipped actor
// must be observationally indistinguishable from one that ticked while
// idle, which is the actor's contract to uphold (see DESIGN.md, "Kernel
// performance"). A quiescent actor returns to the active set when
//
//   - a delay line delivers a value to it (the pipe's wake callback, wired
//     via Waker, fires when a latch leaves values visible), or
//   - its self-declared timed wake cycle arrives (for purely clock-driven
//     work such as a traffic source's next injection slot).
//
// SetNaive(true) disables actor skipping entirely, restoring the historical
// tick-everyone kernel for differential testing. Latch skipping stays on in
// both modes: an empty pipe's latch is the identity, so eliding it is exact.
package sim

// Actor is a component evaluated once per simulated clock cycle.
type Actor interface {
	// Tick evaluates one cycle of behaviour. Implementations must read
	// only state latched before this cycle and buffer their outputs in
	// delay lines (or internal next-state fields committed by a latch
	// Actor registered after them).
	Tick(cycle uint64)
}

// ActorFunc adapts a function to the Actor interface.
type ActorFunc func(cycle uint64)

// Tick implements Actor.
func (f ActorFunc) Tick(cycle uint64) { f(cycle) }

// Quiescer is optionally implemented by actors that can prove themselves
// idle. Quiescent is consulted immediately after each of the actor's own
// ticks; returning quiet=true suspends the actor until a pipe delivery
// wakes it or, if wakeAt > cycle, until that cycle arrives.
//
// The contract: while suspended, the actor's tick must have been a
// semantic no-op apart from state it can reconstruct on wake (catch-up),
// and every external input it reacts to must arrive through a delay line
// whose wake callback targets it (or be covered by the timed wake).
type Quiescer interface {
	Actor
	// Quiescent reports whether the actor is idle after ticking cycle.
	// wakeAt, when > cycle, schedules an unconditional wake at that cycle;
	// wakeAt == 0 means "sleep until a delivery wakes me".
	Quiescent(cycle uint64) (quiet bool, wakeAt uint64)
}

// Handle identifies a registered actor, for wake wiring.
type Handle int

// activeLatch is implemented by delay lines; the kernel advances armed
// ones after all actors have ticked. latch reports whether the line still
// holds values and must remain armed.
type activeLatch interface {
	latch() bool
}

// wakeEntry is one scheduled timed wake in the kernel's min-heap.
type wakeEntry struct {
	at uint64
	h  Handle
}

// Kernel drives a set of actors and delay lines through simulated time.
// The zero value is ready to use.
type Kernel struct {
	cycle  uint64
	actors []Actor
	// quiescers[i] is actors[i] if it implements Quiescer, else nil.
	quiescers []Quiescer
	asleep    []bool
	// wakeAt[i] is the pending timed-wake cycle for a sleeping actor
	// (0 = none); heap entries not matching it are stale and ignored.
	wakeAt []uint64
	heap   []wakeEntry
	// active holds the armed delay lines; pipes arm themselves on Push
	// and disarm by returning false from latch.
	active []activeLatch

	naive   bool
	ticked  uint64
	skipped uint64
}

// Register adds actors to the kernel. Actors tick in registration order,
// though correctness must not depend on that order.
func (k *Kernel) Register(actors ...Actor) {
	for _, a := range actors {
		k.RegisterActor(a)
	}
}

// RegisterActor adds one actor and returns its handle, for wake wiring
// via Waker.
//
// Implementing Quiescer is not by itself enough to be skipped: skipping
// an actor is only sound once every delay line feeding it has a wake
// callback installed, which the kernel cannot verify. Whoever does that
// wiring opts the actor in with EnableQuiescence.
func (k *Kernel) RegisterActor(a Actor) Handle {
	h := Handle(len(k.actors))
	k.actors = append(k.actors, a)
	k.quiescers = append(k.quiescers, nil)
	k.asleep = append(k.asleep, false)
	k.wakeAt = append(k.wakeAt, 0)
	return h
}

// EnableQuiescence opts a registered Quiescer into idle skipping. Call
// only after wiring wake callbacks on every pipe that delivers to it. A
// non-Quiescer actor is left untouched.
func (k *Kernel) EnableQuiescence(h Handle) {
	if q, ok := k.actors[h].(Quiescer); ok {
		k.quiescers[h] = q
	}
}

// Waker returns the wake callback for an actor: invoking it returns the
// actor to the active set so it ticks next cycle. Safe to call on awake
// actors (no-op) and repeatedly.
func (k *Kernel) Waker(h Handle) func() {
	return func() {
		if k.asleep[h] {
			k.asleep[h] = false
			k.wakeAt[h] = 0
		}
	}
}

// Asleep reports whether the actor is currently suspended as quiescent.
func (k *Kernel) Asleep(h Handle) bool { return k.asleep[h] }

// SetNaive toggles the tick-every-actor fallback kernel (quiescence
// skipping disabled). Must be set before stepping; it exists so the
// quiescence machinery can be differentially tested against the
// historical exhaustive schedule.
func (k *Kernel) SetNaive(naive bool) { k.naive = naive }

// Naive reports whether actor skipping is disabled.
func (k *Kernel) Naive() bool { return k.naive }

// Stats returns the cumulative number of actor ticks executed and actor
// ticks skipped through quiescence.
func (k *Kernel) Stats() (ticked, skipped uint64) { return k.ticked, k.skipped }

// arm adds a delay line to the active-latch list (called by Pipe.Push).
func (k *Kernel) arm(l activeLatch) {
	k.active = append(k.active, l)
}

// pushWake schedules a timed wake on the min-heap.
func (k *Kernel) pushWake(at uint64, h Handle) {
	k.heap = append(k.heap, wakeEntry{at: at, h: h})
	i := len(k.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if k.heap[parent].at <= k.heap[i].at {
			break
		}
		k.heap[parent], k.heap[i] = k.heap[i], k.heap[parent]
		i = parent
	}
}

// popWake removes and returns the earliest timed wake.
func (k *Kernel) popWake() wakeEntry {
	top := k.heap[0]
	last := len(k.heap) - 1
	k.heap[0] = k.heap[last]
	k.heap = k.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(k.heap) && k.heap[l].at < k.heap[small].at {
			small = l
		}
		if r < len(k.heap) && k.heap[r].at < k.heap[small].at {
			small = r
		}
		if small == i {
			break
		}
		k.heap[i], k.heap[small] = k.heap[small], k.heap[i]
		i = small
	}
	return top
}

// Cycle returns the number of completed cycles.
func (k *Kernel) Cycle() uint64 { return k.cycle }

// Step advances simulated time by one cycle.
func (k *Kernel) Step() {
	c := k.cycle

	// Fire timed wakes due this cycle. Stale heap entries (the actor was
	// woken earlier by a delivery, or re-slept with a different deadline)
	// are recognised by wakeAt disagreeing with the entry.
	for len(k.heap) > 0 && k.heap[0].at <= c {
		e := k.popWake()
		if k.asleep[e.h] && k.wakeAt[e.h] == e.at {
			k.asleep[e.h] = false
			k.wakeAt[e.h] = 0
		}
	}

	for i, a := range k.actors {
		if k.asleep[i] {
			k.skipped++
			continue
		}
		a.Tick(c)
		k.ticked++
		if q := k.quiescers[i]; q != nil && !k.naive {
			if quiet, at := q.Quiescent(c); quiet {
				k.asleep[i] = true
				if at > c {
					k.wakeAt[i] = at
					k.pushWake(at, Handle(i))
				} else {
					k.wakeAt[i] = 0
				}
			}
		}
	}

	// Advance armed delay lines, compacting out the ones that emptied.
	// Latch-order equals arm-order, which may differ from historical
	// registration order — sound because latches are independent: each
	// pipe only rotates its own ring. Wake callbacks fired here return
	// consumers to the active set for cycle c+1.
	n := 0
	for _, l := range k.active {
		if l.latch() {
			k.active[n] = l
			n++
		}
	}
	k.active = k.active[:n]

	k.cycle++
}

// Run advances simulated time by n cycles.
func (k *Kernel) Run(n uint64) {
	for i := uint64(0); i < n; i++ {
		k.Step()
	}
}

// RunUntil steps the kernel until done returns true or limit cycles have
// elapsed. It returns true if done was satisfied within the limit.
func (k *Kernel) RunUntil(done func() bool, limit uint64) bool {
	for i := uint64(0); i < limit; i++ {
		if done() {
			return true
		}
		k.Step()
	}
	return done()
}
