// Package sim provides the cycle-driven simulation kernel underneath the
// network model: a deterministic clock, actor scheduling, and latched
// delay lines that decouple intra-cycle evaluation order from observable
// behaviour.
//
// The kernel is synchronous. Each call to Kernel.Step advances the global
// clock by one cycle in two phases:
//
//  1. every registered Actor's Tick(cycle) runs, reading only values
//     latched in previous cycles and writing only into delay lines;
//  2. every delay line advances, making this cycle's writes visible at
//     their programmed latency.
//
// Because actors never observe same-cycle writes, the order in which they
// tick is immaterial, which is what makes the model cycle-accurate rather
// than merely event-ordered.
package sim

// Actor is a component evaluated once per simulated clock cycle.
type Actor interface {
	// Tick evaluates one cycle of behaviour. Implementations must read
	// only state latched before this cycle and buffer their outputs in
	// delay lines (or internal next-state fields committed by a latch
	// Actor registered after them).
	Tick(cycle uint64)
}

// ActorFunc adapts a function to the Actor interface.
type ActorFunc func(cycle uint64)

// Tick implements Actor.
func (f ActorFunc) Tick(cycle uint64) { f(cycle) }

// latcher is implemented by delay lines registered with the kernel; the
// kernel advances them after all actors have ticked.
type latcher interface {
	latch()
}

// Kernel drives a set of actors and delay lines through simulated time.
// The zero value is ready to use.
type Kernel struct {
	cycle   uint64
	actors  []Actor
	latches []latcher
}

// Register adds actors to the kernel. Actors tick in registration order,
// though correctness must not depend on that order.
func (k *Kernel) Register(actors ...Actor) {
	k.actors = append(k.actors, actors...)
}

// addLatch registers a delay line for end-of-cycle advancement.
func (k *Kernel) addLatch(l latcher) {
	k.latches = append(k.latches, l)
}

// Cycle returns the number of completed cycles.
func (k *Kernel) Cycle() uint64 { return k.cycle }

// Step advances simulated time by one cycle.
func (k *Kernel) Step() {
	c := k.cycle
	for _, a := range k.actors {
		a.Tick(c)
	}
	for _, l := range k.latches {
		l.latch()
	}
	k.cycle++
}

// Run advances simulated time by n cycles.
func (k *Kernel) Run(n uint64) {
	for i := uint64(0); i < n; i++ {
		k.Step()
	}
}

// RunUntil steps the kernel until done returns true or limit cycles have
// elapsed. It returns true if done was satisfied within the limit.
func (k *Kernel) RunUntil(done func() bool, limit uint64) bool {
	for i := uint64(0); i < limit; i++ {
		if done() {
			return true
		}
		k.Step()
	}
	return done()
}
