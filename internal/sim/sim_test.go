package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at draw %d", i)
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(9)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("Intn(10) value %d drawn %d times out of 100000; distribution badly skewed", v, c)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGBoolExtremes(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("Bool(0.25) hit rate %.4f, want ~0.25", frac)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	for trial := 0; trial < 50; trial++ {
		p := r.Perm(20)
		seen := make(map[int]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				t.Fatalf("Perm(20) not a permutation: %v", p)
			}
			seen[v] = true
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(1)
	child := parent.Split()
	// Child stream must not replay the parent stream.
	a, b := parent.Uint64(), child.Uint64()
	if a == b {
		t.Fatal("split child replayed parent draw")
	}
}

func TestKernelCycleCount(t *testing.T) {
	var k Kernel
	k.Run(17)
	if k.Cycle() != 17 {
		t.Fatalf("Cycle() = %d, want 17", k.Cycle())
	}
}

func TestKernelActorsTickEveryCycle(t *testing.T) {
	var k Kernel
	var got []uint64
	k.Register(ActorFunc(func(c uint64) { got = append(got, c) }))
	k.Run(5)
	want := []uint64{0, 1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("actor ticked %d times, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tick %d saw cycle %d, want %d", i, got[i], want[i])
		}
	}
}

func TestKernelRunUntil(t *testing.T) {
	var k Kernel
	n := 0
	k.Register(ActorFunc(func(uint64) { n++ }))
	ok := k.RunUntil(func() bool { return n >= 3 }, 100)
	if !ok {
		t.Fatal("RunUntil did not reach condition")
	}
	if n != 3 {
		t.Fatalf("ran %d cycles, want 3", n)
	}
	if ok := k.RunUntil(func() bool { return n >= 1000 }, 10); ok {
		t.Fatal("RunUntil reported success past its limit")
	}
}

func TestPipeLatencyOne(t *testing.T) {
	var k Kernel
	p := NewPipe[int](&k, 1)
	p.Push(42)
	if _, ok := p.Pop(); ok {
		t.Fatal("value visible in the same cycle it was pushed")
	}
	k.Step()
	v, ok := p.Pop()
	if !ok || v != 42 {
		t.Fatalf("after 1 cycle got (%d,%v), want (42,true)", v, ok)
	}
}

func TestPipeLatencyThree(t *testing.T) {
	var k Kernel
	p := NewPipe[string](&k, 3)
	p.Push("x")
	for i := 0; i < 2; i++ {
		k.Step()
		if !p.Empty() {
			t.Fatalf("value visible after %d cycles, want 3", i+1)
		}
	}
	k.Step()
	v, ok := p.Pop()
	if !ok || v != "x" {
		t.Fatalf("after 3 cycles got (%q,%v), want (x,true)", v, ok)
	}
}

func TestPipeFIFOOrder(t *testing.T) {
	var k Kernel
	p := NewPipe[int](&k, 1)
	p.Push(1)
	p.Push(2)
	k.Step()
	p.Push(3)
	a, _ := p.Pop()
	k.Step()
	b, _ := p.Pop()
	c, _ := p.Pop()
	if a != 1 || b != 2 || c != 3 {
		t.Fatalf("got order %d,%d,%d, want 1,2,3", a, b, c)
	}
}

func TestPipeStalledConsumerKeepsData(t *testing.T) {
	var k Kernel
	p := NewPipe[int](&k, 1)
	p.Push(9)
	k.Run(10) // consumer stalls for many cycles
	v, ok := p.Pop()
	if !ok || v != 9 {
		t.Fatalf("stalled value lost: got (%d,%v)", v, ok)
	}
}

func TestPipePopAll(t *testing.T) {
	var k Kernel
	p := NewPipe[int](&k, 1)
	p.Push(1)
	p.Push(2)
	k.Step()
	all := p.PopAll()
	if len(all) != 2 || all[0] != 1 || all[1] != 2 {
		t.Fatalf("PopAll = %v, want [1 2]", all)
	}
	if !p.Empty() {
		t.Fatal("pipe not empty after PopAll")
	}
}

func TestPipeInFlight(t *testing.T) {
	var k Kernel
	p := NewPipe[int](&k, 2)
	p.Push(1)
	if p.InFlight() != 1 {
		t.Fatalf("InFlight = %d, want 1 (staged)", p.InFlight())
	}
	k.Step()
	p.Push(2)
	if p.InFlight() != 2 {
		t.Fatalf("InFlight = %d, want 2", p.InFlight())
	}
	k.Step()
	k.Step()
	if p.InFlight() != 2 {
		t.Fatalf("InFlight = %d, want 2 (both visible, unconsumed)", p.InFlight())
	}
	p.PopAll()
	if p.InFlight() != 0 {
		t.Fatalf("InFlight = %d, want 0", p.InFlight())
	}
}

func TestPipePanicsOnZeroLatency(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPipe with latency 0 did not panic")
		}
	}()
	var k Kernel
	NewPipe[int](&k, 0)
}

// Property: any push sequence through a pipe preserves order and loses
// nothing, regardless of latency and step pattern.
func TestPipeLosslessProperty(t *testing.T) {
	f := func(vals []uint8, latSeed uint8) bool {
		lat := int(latSeed%4) + 1
		var k Kernel
		p := NewPipe[uint8](&k, lat)
		for _, v := range vals {
			p.Push(v)
			k.Step()
		}
		k.Run(uint64(lat))
		got := p.PopAll()
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPipePeek(t *testing.T) {
	var k Kernel
	p := NewPipe[int](&k, 1)
	if _, ok := p.Peek(); ok {
		t.Fatal("peek on empty pipe")
	}
	p.Push(7)
	k.Step()
	v, ok := p.Peek()
	if !ok || v != 7 {
		t.Fatalf("Peek = %d,%v", v, ok)
	}
	// Peek must not consume.
	if v, ok := p.Pop(); !ok || v != 7 {
		t.Fatalf("Pop after Peek = %d,%v", v, ok)
	}
}

func TestPipeLatencyAccessor(t *testing.T) {
	var k Kernel
	if NewPipe[int](&k, 3).Latency() != 3 {
		t.Fatal("Latency() wrong")
	}
}

// sleeper is a Quiescer that sleeps after every tick with a fixed timed
// wake offset (0 = sleep until delivery), recording its tick cycles and
// draining its input pipe, if any.
type sleeper struct {
	ticks  []uint64
	offset uint64
	in     *Pipe[int]
}

func (s *sleeper) Tick(c uint64) {
	s.ticks = append(s.ticks, c)
	if s.in != nil {
		s.in.PopAll()
	}
}
func (s *sleeper) Quiescent(c uint64) (bool, uint64) {
	if s.offset == 0 {
		return true, 0
	}
	return true, c + s.offset
}

func TestEventKernelTicksNonQuiescersEveryCycle(t *testing.T) {
	var k Kernel
	k.SetMode(ModeEvent)
	var got []uint64
	k.Register(ActorFunc(func(c uint64) { got = append(got, c) }))
	k.Run(5)
	if len(got) != 5 {
		t.Fatalf("non-quiescer ticked %d times in 5 cycles, want 5", len(got))
	}
	for i, c := range got {
		if c != uint64(i) {
			t.Fatalf("tick %d saw cycle %d", i, c)
		}
	}
}

func TestEventKernelTimedWake(t *testing.T) {
	var k Kernel
	k.SetMode(ModeEvent)
	s := &sleeper{offset: 7}
	h := k.RegisterActor(s)
	k.EnableQuiescence(h)
	k.Run(22)
	want := []uint64{0, 7, 14, 21}
	if len(s.ticks) != len(want) {
		t.Fatalf("sleeper ticks = %v, want %v", s.ticks, want)
	}
	for i := range want {
		if s.ticks[i] != want[i] {
			t.Fatalf("sleeper ticks = %v, want %v", s.ticks, want)
		}
	}
	if !k.Asleep(h) {
		t.Fatal("sleeper not asleep between timed wakes")
	}
	st := k.Stats()
	if st.Events != uint64(len(want)) {
		t.Fatalf("Events = %d, want %d", st.Events, len(want))
	}
	if st.Ticked != uint64(len(want)) || st.Ticked+st.Skipped != 22 {
		t.Fatalf("Stats = %+v, want ticked %d and ticked+skipped 22", st, len(want))
	}
}

// TestEventKernelFarWake exercises the overflow heap: a timed wake beyond
// the calendar ring must still fire on the exact cycle.
func TestEventKernelFarWake(t *testing.T) {
	var k Kernel
	k.SetMode(ModeEvent)
	s := &sleeper{offset: 1000}
	h := k.RegisterActor(s)
	k.EnableQuiescence(h)
	k.Run(1001)
	want := []uint64{0, 1000}
	if len(s.ticks) != 2 || s.ticks[0] != want[0] || s.ticks[1] != want[1] {
		t.Fatalf("far-wake ticks = %v, want %v", s.ticks, want)
	}
}

// TestEventKernelDeliveryWakeSupersedesTimer: a pipe delivery must wake a
// sleeping actor before its timed deadline, and the stale calendar entry
// must not cause a duplicate tick when its cycle comes around.
func TestEventKernelDeliveryWakeSupersedesTimer(t *testing.T) {
	var k Kernel
	k.SetMode(ModeEvent)
	s := &sleeper{offset: 50}
	h := k.RegisterActor(s)
	k.EnableQuiescence(h)
	p := NewPipe[int](&k, 1)
	s.in = p
	p.SetWake(k.Waker(h))
	k.Run(3) // sleeper ticks at 0, sleeps until 50
	p.Push(1)
	k.Run(60)
	// Delivery visible after the cycle-3 latch wakes it for cycle 4; it
	// then re-sleeps until 54. The stale entry at 50 must not tick it.
	want := []uint64{0, 4, 54}
	if len(s.ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", s.ticks, want)
	}
	for i := range want {
		if s.ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", s.ticks, want)
		}
	}
}

// TestEventKernelRegistrationOrder: actors due on the same cycle dispatch
// in registration order regardless of how their wakes were scheduled.
func TestEventKernelRegistrationOrder(t *testing.T) {
	var k Kernel
	k.SetMode(ModeEvent)
	var order []int
	mk := func(id int, offset uint64) Handle {
		s := &orderSleeper{id: id, offset: offset, order: &order}
		h := k.RegisterActor(s)
		k.EnableQuiescence(h)
		return h
	}
	// Different offsets that all coincide at cycle 12.
	mk(0, 12)
	mk(1, 6)
	mk(2, 4)
	mk(3, 3)
	k.Run(13)
	// At cycle 12 all four are due; the tail of order must be 0,1,2,3.
	tail := order[len(order)-4:]
	for i, id := range tail {
		if id != i {
			t.Fatalf("cycle-12 dispatch order = %v, want [0 1 2 3]", tail)
		}
	}
}

type orderSleeper struct {
	id     int
	offset uint64
	order  *[]int
}

func (s *orderSleeper) Tick(uint64) { *s.order = append(*s.order, s.id) }
func (s *orderSleeper) Quiescent(c uint64) (bool, uint64) {
	next := (c/s.offset + 1) * s.offset
	return true, next
}

// TestEventKernelMatchesQuiescent runs a randomized mix of sleepers and
// always-on actors under both schedulers and requires identical tick
// traces — the unit-level version of the network differential grids.
func TestEventKernelMatchesQuiescent(t *testing.T) {
	build := func(mode Mode) []*sleeper {
		var k Kernel
		k.SetMode(mode)
		actors := []*sleeper{
			{offset: 0}, {offset: 3}, {offset: 1}, {offset: 17}, {offset: 300},
		}
		pipes := make([]*Pipe[int], len(actors))
		for _, s := range actors {
			h := k.RegisterActor(s)
			k.EnableQuiescence(h)
			p := NewPipe[int](&k, 1)
			s.in = p
			p.SetWake(k.Waker(h))
			pipes[h] = p
		}
		for i := 0; i < 500; i++ {
			if i%41 == 0 {
				pipes[0].Push(i) // wake the delivery-only sleeper
			}
			k.Step()
		}
		return actors
	}
	want := build(ModeQuiescent)
	got := build(ModeEvent)
	for i := range want {
		if len(want[i].ticks) != len(got[i].ticks) {
			t.Fatalf("actor %d: quiescent ticked %d, event ticked %d", i, len(want[i].ticks), len(got[i].ticks))
		}
		for j := range want[i].ticks {
			if want[i].ticks[j] != got[i].ticks[j] {
				t.Fatalf("actor %d tick %d: quiescent at %d, event at %d", i, j, want[i].ticks[j], got[i].ticks[j])
			}
		}
	}
}
