package sim

import (
	"testing"
)

// buildParallel registers n sleepers (one pipe each), splits them across
// the given worker count round-robin with the last actor serial, and
// returns the kernel plus the actors and their pipes.
func buildParallel(t *testing.T, offsets []uint64, workers int) (*Kernel, []*sleeper, []*Pipe[int]) {
	t.Helper()
	var k Kernel
	actors := make([]*sleeper, len(offsets))
	pipes := make([]*Pipe[int], len(offsets))
	groups := make([]int, len(offsets))
	for i, off := range offsets {
		s := &sleeper{offset: off}
		actors[i] = s
		h := k.RegisterActor(s)
		k.EnableQuiescence(h)
		p := NewPipe[int](&k, 1)
		s.in = p
		p.SetWake(k.Waker(h))
		pipes[i] = p
		groups[i] = i % workers
	}
	groups[len(groups)-1] = -1 // one serial actor, to cover both phases
	k.SetParallel(groups, workers)
	return &k, actors, pipes
}

// TestParallelKernelMatchesQuiescent is the unit-level differential for
// ModeParallel: a randomized mix of delivery-woken and timed-wake
// sleepers must produce identical tick traces under the quiescent
// walk and under every partitioning of the same actors.
func TestParallelKernelMatchesQuiescent(t *testing.T) {
	offsets := []uint64{0, 3, 1, 17, 300, 5, 2}
	run := func(k *Kernel, pipes []*Pipe[int]) {
		for i := 0; i < 500; i++ {
			if i%41 == 0 {
				pipes[0].Push(i) // wake the delivery-only sleeper
			}
			k.Step()
		}
		k.StopWorkers()
	}

	var ref Kernel
	want := make([]*sleeper, len(offsets))
	refPipes := make([]*Pipe[int], len(offsets))
	for i, off := range offsets {
		s := &sleeper{offset: off}
		want[i] = s
		h := ref.RegisterActor(s)
		ref.EnableQuiescence(h)
		p := NewPipe[int](&ref, 1)
		s.in = p
		p.SetWake(ref.Waker(h))
		refPipes[i] = p
	}
	run(&ref, refPipes)

	for workers := 1; workers <= 4; workers++ {
		k, got, pipes := buildParallel(t, offsets, workers)
		run(k, pipes)
		for i := range want {
			if len(want[i].ticks) != len(got[i].ticks) {
				t.Fatalf("%d workers, actor %d: quiescent ticked %d, parallel ticked %d",
					workers, i, len(want[i].ticks), len(got[i].ticks))
			}
			for j := range want[i].ticks {
				if want[i].ticks[j] != got[i].ticks[j] {
					t.Fatalf("%d workers, actor %d tick %d: quiescent at %d, parallel at %d",
						workers, i, j, want[i].ticks[j], got[i].ticks[j])
				}
			}
		}
	}
}

// TestParallelKernelTimedWake pins the per-worker timed-wake heap: a
// sleeper owned by a region worker must tick on exactly its deadline
// cycles, and the per-worker telemetry must fold into the top-level
// totals.
func TestParallelKernelTimedWake(t *testing.T) {
	k, actors, _ := buildParallel(t, []uint64{7, 0}, 1)
	defer k.StopWorkers()
	k.Run(22)
	want := []uint64{0, 7, 14, 21}
	if len(actors[0].ticks) != len(want) {
		t.Fatalf("worker-owned sleeper ticks = %v, want %v", actors[0].ticks, want)
	}
	for i := range want {
		if actors[0].ticks[i] != want[i] {
			t.Fatalf("worker-owned sleeper ticks = %v, want %v", actors[0].ticks, want)
		}
	}
	st := k.Stats()
	if len(st.Workers) != 1 {
		t.Fatalf("Stats.Workers has %d entries, want 1", len(st.Workers))
	}
	// Worker 0 owns the timed sleeper (4 ticks in 22 cycles); the serial
	// delivery-only sleeper ticked once at cycle 0.
	if st.Workers[0].Ticked != 4 || st.Workers[0].Skipped != 18 {
		t.Fatalf("worker stats = %+v, want 4 ticked / 18 skipped", st.Workers[0])
	}
	if st.Ticked != 5 || st.Ticked+st.Skipped != 44 {
		t.Fatalf("Stats = %+v, want 5 ticked of 44 total slots", st)
	}
}

// TestParallelLastTicked covers the mid-cycle observation hook: a handle
// reports the cycle it last physically ticked, and never-ticked or
// sleeping handles say so.
func TestParallelLastTicked(t *testing.T) {
	k, _, _ := buildParallel(t, []uint64{5, 0}, 1)
	defer k.StopWorkers()
	if _, ok := k.LastTicked(0); ok {
		t.Fatal("LastTicked true before any step")
	}
	k.Step() // both tick on cycle 0, then sleep
	if c, ok := k.LastTicked(0); !ok || c != 0 {
		t.Fatalf("LastTicked(0) = %d,%v after first step, want 0,true", c, ok)
	}
	k.Run(4) // sleeper 0 sleeps until cycle 5; nothing ticks
	if c, ok := k.LastTicked(0); !ok || c != 0 {
		t.Fatalf("LastTicked(0) = %d,%v while asleep, want 0,true", c, ok)
	}
	k.Step() // cycle 5: the timed wake fires
	if c, ok := k.LastTicked(0); !ok || c != 5 {
		t.Fatalf("LastTicked(0) = %d,%v after timed wake, want 5,true", c, ok)
	}
}

// TestParallelStopWorkersIdempotent: StopWorkers may be called multiple
// times, before or after the workers ever started, and stepping a
// stopped kernel panics instead of deadlocking on closed channels.
func TestParallelStopWorkersIdempotent(t *testing.T) {
	k, _, _ := buildParallel(t, []uint64{0, 0}, 2)
	k.Run(3)
	k.StopWorkers()
	k.StopWorkers() // second call must be a no-op
	defer func() {
		if recover() == nil {
			t.Fatal("Step after StopWorkers did not panic")
		}
	}()
	k.Step()
}

// TestParallelStopBeforeStart: a kernel configured for ModeParallel but
// never stepped has no goroutines; StopWorkers must still be safe.
func TestParallelStopBeforeStart(t *testing.T) {
	k, _, _ := buildParallel(t, []uint64{0}, 1)
	k.StopWorkers()
	k.StopWorkers()
}

// TestStopWorkersOutsideParallel: serial kernels have no workers and
// StopWorkers must be a no-op, so callers can defer it unconditionally.
func TestStopWorkersOutsideParallel(t *testing.T) {
	var k Kernel
	k.Register(ActorFunc(func(uint64) {}))
	k.Run(2)
	k.StopWorkers()
	if k.Workers() != 0 {
		t.Fatalf("Workers() = %d outside ModeParallel, want 0", k.Workers())
	}
}

// TestSetParallelValidation: the partition must cover every actor with
// in-range groups and at least one worker.
func TestSetParallelValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	var k Kernel
	k.Register(ActorFunc(func(uint64) {}), ActorFunc(func(uint64) {}))
	mustPanic("zero workers", func() { k.SetParallel([]int{0, 0}, 0) })
	mustPanic("short groups", func() { k.SetParallel([]int{0}, 1) })
	mustPanic("group out of range", func() { k.SetParallel([]int{0, 1}, 1) })
}
