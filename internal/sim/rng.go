package sim

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256**). Every stochastic decision in the simulator — traffic
// injection, destination selection, fault injection — draws from an RNG
// seeded explicitly by the caller, so a simulation run is a pure function
// of its configuration. The zero value is not usable; construct with
// NewRNG.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64, which
// guarantees a well-distributed internal state even for small or
// correlated seeds.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from r. It is used to give each
// component (per-link fault injectors, per-node traffic sources) its own
// stream so that changing one component's draw count does not perturb the
// others.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
