package sim

// Pipe is a latched delay line carrying values of type T with a fixed
// latency in cycles. A value pushed during cycle c becomes poppable at the
// start of cycle c+latency. Pipes are the only legal way for actors to
// communicate, guaranteeing that intra-cycle evaluation order never leaks.
//
// A Pipe with latency 1 models a register stage; the paper's single-cycle
// inter-router links, single-cycle NACK propagation, and single-cycle
// error-check delay are all latency-1 pipes.
type Pipe[T any] struct {
	latency int
	// slots[0] holds values visible now; slots[i] becomes visible after i
	// more latches. Each slot may carry multiple values (e.g. a credit
	// pipe aggregating several VCs); ordering within a slot is FIFO.
	slots [][]T
	// staged collects pushes made during the current cycle; latch moves
	// them into slots[latency-1] after shifting.
	staged []T
}

// NewPipe creates a delay line with the given latency (>= 1) and registers
// it with the kernel for end-of-cycle latching.
func NewPipe[T any](k *Kernel, latency int) *Pipe[T] {
	if latency < 1 {
		panic("sim: pipe latency must be >= 1")
	}
	p := &Pipe[T]{
		latency: latency,
		slots:   make([][]T, latency),
	}
	k.addLatch(p)
	return p
}

// Latency returns the pipe's configured delay in cycles.
func (p *Pipe[T]) Latency() int { return p.latency }

// Push enqueues v for delivery latency cycles from now.
func (p *Pipe[T]) Push(v T) {
	p.staged = append(p.staged, v)
}

// Pop removes and returns the oldest value visible this cycle. ok is false
// if no value is available.
func (p *Pipe[T]) Pop() (v T, ok bool) {
	head := p.slots[0]
	if len(head) == 0 {
		return v, false
	}
	v = head[0]
	p.slots[0] = head[1:]
	return v, true
}

// Peek returns the oldest visible value without removing it.
func (p *Pipe[T]) Peek() (v T, ok bool) {
	head := p.slots[0]
	if len(head) == 0 {
		return v, false
	}
	return head[0], true
}

// PopAll removes and returns every value visible this cycle.
func (p *Pipe[T]) PopAll() []T {
	head := p.slots[0]
	p.slots[0] = nil
	return head
}

// Empty reports whether no value is visible this cycle. Values still in
// flight (pushed fewer than latency cycles ago) do not count.
func (p *Pipe[T]) Empty() bool { return len(p.slots[0]) == 0 }

// InFlight reports the total number of values buffered anywhere in the
// pipe, including those not yet visible and any not yet latched.
func (p *Pipe[T]) InFlight() int {
	n := len(p.staged)
	for _, s := range p.slots {
		n += len(s)
	}
	return n
}

// latch advances the delay line by one cycle.
func (p *Pipe[T]) latch() {
	// Undelivered visible values remain visible (slot 0 accumulates), so a
	// consumer that stalls does not lose data.
	carry := p.slots[0]
	copy(p.slots, p.slots[1:])
	p.slots[p.latency-1] = p.staged
	p.staged = nil
	if len(carry) > 0 {
		p.slots[0] = append(carry, p.slots[0]...)
	}
	// Note: for latency 1, slots[0] was overwritten with staged above and
	// the carry is prepended, preserving FIFO order.
}
