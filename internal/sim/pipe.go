package sim

// Pipe is a latched delay line carrying values of type T with a fixed
// latency in cycles. A value pushed during cycle c becomes poppable at the
// start of cycle c+latency. Pipes are the only legal way for actors to
// communicate, guaranteeing that intra-cycle evaluation order never leaks.
//
// A Pipe with latency 1 models a register stage; the paper's single-cycle
// inter-router links, single-cycle NACK propagation, and single-cycle
// error-check delay are all latency-1 pipes.
//
// Internally the pipe is a ring of latency+1 reusable buffers: one visible
// buffer and latency in-flight stages. Advancing the ring recycles the
// drained visible buffer as the new staging buffer, so a pipe in steady
// state performs zero allocations. An empty pipe additionally disarms
// itself from the kernel's active-latch list, so idle wires cost nothing
// per cycle (see Kernel).
type Pipe[T any] struct {
	k       *Kernel
	latency int
	// bufs[vis] holds values visible now (with the first off already
	// consumed); bufs[(vis+i)%len] becomes visible after i more latches;
	// bufs[(vis+latency)%len] is the staging buffer collecting this
	// cycle's pushes. Each buffer may carry multiple values (e.g. a credit
	// pipe aggregating several VCs); ordering within a buffer is FIFO.
	bufs [][]T
	vis  int
	off  int
	// pushed and popped count values ever enqueued and ever consumed;
	// their difference is the number of unconsumed values anywhere in the
	// ring (staged, in-flight, and visible-but-unpopped). They are split
	// rather than kept as one counter because under the parallel kernel a
	// pipe's producer and consumer may live on different workers within a
	// cycle: pushed is written only by the producer, popped only by the
	// consumer, and only the serial latch phase reads both together.
	pushed, popped int
	// shard indexes the kernel's arm-shard this pipe joins when it arms:
	// shard 0 is the serial shard, shard w+1 belongs to worker w. A pipe
	// arms from its producer's context, so giving each producer its own
	// shard keeps the active-latch lists race-free under the parallel
	// kernel (see Kernel.arm).
	shard int
	// armed mirrors membership in the kernel's active-latch list. It is
	// written only by the producer (Push) and the serial latch phase,
	// which the per-cycle barrier orders.
	armed bool
	// wake, when set, runs whenever a latch leaves values visible — the
	// delivery signal that returns a quiescent consumer to the active set.
	wake func()
}

// NewPipe creates a delay line with the given latency (>= 1) and registers
// it with the kernel for end-of-cycle latching.
func NewPipe[T any](k *Kernel, latency int) *Pipe[T] {
	if latency < 1 {
		panic("sim: pipe latency must be >= 1")
	}
	p := &Pipe[T]{
		k:       k,
		latency: latency,
		bufs:    make([][]T, latency+1),
	}
	return p
}

// SetWake installs the delivery callback: it runs at the end of any cycle
// whose latch leaves at least one value visible, signalling the pipe's
// consumer to wake (see Kernel.Waker). At most one callback is supported.
func (p *Pipe[T]) SetWake(wake func()) { p.wake = wake }

// SetArmShard assigns the kernel arm-shard this pipe arms into. The shard
// must identify the pipe's single producer: 0 (the default) for pipes
// pushed from the serial phase, w+1 for pipes pushed by parallel worker
// w. Serial kernels ignore the distinction — every shard is latched — so
// wiring shards unconditionally is free.
func (p *Pipe[T]) SetArmShard(shard int) { p.shard = shard }

// Latency returns the pipe's configured delay in cycles.
func (p *Pipe[T]) Latency() int { return p.latency }

// Push enqueues v for delivery latency cycles from now. Under the
// parallel kernel the staging buffer bufs[(vis+latency)%len] is disjoint
// from the consumer's visible buffer for every latency >= 1 and vis only
// moves at the serial latch, so a producer may push across a region
// boundary while the consumer drains the visible buffer concurrently —
// the staging buffer is the cycle-stamped boundary queue, ordered by the
// producer's own deterministic emission order.
func (p *Pipe[T]) Push(v T) {
	s := (p.vis + p.latency) % len(p.bufs)
	p.bufs[s] = append(p.bufs[s], v)
	p.pushed++
	if !p.armed {
		p.armed = true
		p.k.arm(p, p.shard)
	}
}

// Pop removes and returns the oldest value visible this cycle. ok is false
// if no value is available.
func (p *Pipe[T]) Pop() (v T, ok bool) {
	head := p.bufs[p.vis]
	if p.off >= len(head) {
		return v, false
	}
	v = head[p.off]
	p.off++
	p.popped++
	return v, true
}

// Peek returns the oldest visible value without removing it.
func (p *Pipe[T]) Peek() (v T, ok bool) {
	head := p.bufs[p.vis]
	if p.off >= len(head) {
		return v, false
	}
	return head[p.off], true
}

// PopAll removes and returns every value visible this cycle. The returned
// slice aliases the pipe's internal ring buffer and is valid only until
// the next latch; callers must consume (or copy) it within the cycle.
func (p *Pipe[T]) PopAll() []T {
	head := p.bufs[p.vis][p.off:]
	p.off = len(p.bufs[p.vis])
	p.popped += len(head)
	return head
}

// Empty reports whether no value is visible this cycle. Values still in
// flight (pushed fewer than latency cycles ago) do not count.
func (p *Pipe[T]) Empty() bool { return p.off >= len(p.bufs[p.vis]) }

// InFlight reports the total number of values buffered anywhere in the
// pipe, including those not yet visible and any not yet latched. Valid
// only outside a parallel step (the counters live on the two endpoints).
func (p *Pipe[T]) InFlight() int { return p.pushed - p.popped }

// Each visits every value still held by the pipe — visible-but-unpopped,
// in-flight, and staged this cycle — in no particular order. It is a
// read-only inspection for invariant checkers and debug tooling; fn must
// not push or pop.
func (p *Pipe[T]) Each(fn func(T)) {
	for i := 0; i <= p.latency; i++ {
		b := p.bufs[(p.vis+i)%len(p.bufs)]
		if i == 0 {
			b = b[p.off:]
		}
		for _, v := range b {
			fn(v)
		}
	}
}

// Filter destructively removes every value v for which remove(v) is
// true, from every stage of the pipe — visible-but-unpopped, in-flight,
// and staged — invoking fn (if non-nil) on each removed value. It
// returns the number removed. Serial use only: it is the hard-fault
// machinery's wire-destruction primitive and must run between kernel
// steps, never from a concurrent actor tick. Relative order of the kept
// values is preserved.
func (p *Pipe[T]) Filter(remove func(T) bool, fn func(T)) int {
	removed := 0
	for i := 0; i <= p.latency; i++ {
		idx := (p.vis + i) % len(p.bufs)
		b := p.bufs[idx]
		lo := 0
		if i == 0 {
			lo = p.off
		}
		kept := lo
		for j := lo; j < len(b); j++ {
			if remove(b[j]) {
				removed++
				if fn != nil {
					fn(b[j])
				}
				continue
			}
			b[kept] = b[j]
			kept++
		}
		p.bufs[idx] = b[:kept]
	}
	p.popped += removed
	return removed
}

// latch advances the delay line by one cycle. It reports whether the pipe
// still holds values and must stay on the kernel's active-latch list; an
// all-empty pipe's latch is the identity (rotating empty buffers), so
// skipping it is exact, not an approximation.
func (p *Pipe[T]) latch() bool {
	// Undelivered visible values remain visible (the new visible buffer
	// accumulates them at its front), so a consumer that stalls does not
	// lose data.
	carryFrom := p.bufs[p.vis][p.off:]
	next := (p.vis + 1) % len(p.bufs)
	if len(carryFrom) > 0 {
		if p.off == 0 && len(p.bufs[next]) == 0 {
			// Nothing arriving and nothing consumed (a quiescent consumer
			// letting credits/NACKs pool): carry by swapping buffers, no
			// copy, no allocation, however long the consumer sleeps.
			p.bufs[next], p.bufs[p.vis] = p.bufs[p.vis], p.bufs[next]
		} else {
			merged := make([]T, 0, len(carryFrom)+len(p.bufs[next]))
			merged = append(merged, carryFrom...)
			merged = append(merged, p.bufs[next]...)
			p.bufs[next] = merged
		}
	}
	p.bufs[p.vis] = p.bufs[p.vis][:0]
	p.vis = next
	p.off = 0
	if len(p.bufs[p.vis]) > 0 && p.wake != nil {
		p.wake()
	}
	p.armed = p.pushed != p.popped
	return p.armed
}
