package sim

import (
	"sort"
	"testing"
)

// TestPipeEachAndFilter pins the hard-fault machinery's wire primitives:
// Each must see every resident value across all pipeline stages, and
// Filter must remove matching values from every stage — visible,
// in-flight and staged alike — while preserving the survivors' order.
func TestPipeEachAndFilter(t *testing.T) {
	var k Kernel
	p := NewPipe[int](&k, 2)
	p.Push(1) // staged this cycle
	k.Step()
	p.Push(2) // one stage behind
	k.Step()
	p.Push(3) // 1 is now visible, 2 in flight, 3 staged
	if v, ok := p.Peek(); !ok || v != 1 {
		t.Fatalf("Peek = %d,%v want 1,true", v, ok)
	}

	var all []int
	p.Each(func(v int) { all = append(all, v) })
	sort.Ints(all)
	if len(all) != 3 || all[0] != 1 || all[1] != 2 || all[2] != 3 {
		t.Fatalf("Each saw %v, want [1 2 3]", all)
	}
	if p.InFlight() != 3 {
		t.Fatalf("InFlight = %d, want 3", p.InFlight())
	}

	// Remove the even values, from whichever stage they occupy.
	var removed []int
	if n := p.Filter(func(v int) bool { return v%2 == 0 }, func(v int) { removed = append(removed, v) }); n != 1 {
		t.Fatalf("Filter removed %d, want 1", n)
	}
	if len(removed) != 1 || removed[0] != 2 {
		t.Fatalf("Filter observer saw %v, want [2]", removed)
	}
	if p.InFlight() != 2 {
		t.Fatalf("InFlight = %d after filter, want 2", p.InFlight())
	}

	// The survivors emerge in order as latches advance.
	v, ok := p.Pop()
	if !ok || v != 1 {
		t.Fatalf("Pop = %d,%v want 1,true", v, ok)
	}
	k.Step()
	k.Step()
	v, ok = p.Pop()
	if !ok || v != 3 {
		t.Fatalf("Pop = %d,%v want 3,true", v, ok)
	}
	if p.InFlight() != 0 {
		t.Fatalf("InFlight = %d at the end, want 0", p.InFlight())
	}

	// Filtering a visible-but-unpopped value must also work after a
	// partial Pop (the off cursor is honoured).
	p.Push(7)
	p.Push(8)
	k.Step()
	k.Step()
	p.Pop() // consume 7; 8 still visible
	if n := p.Filter(func(v int) bool { return v == 8 }, nil); n != 1 {
		t.Fatalf("Filter after partial pop removed %d, want 1", n)
	}
	if !p.Empty() {
		t.Fatal("pipe should be empty")
	}
}
