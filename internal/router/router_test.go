package router

import (
	"testing"

	"ftnoc/internal/fault"
	"ftnoc/internal/flit"
	"ftnoc/internal/link"
	"ftnoc/internal/routing"
	"ftnoc/internal/sim"
	"ftnoc/internal/stats"
	"ftnoc/internal/topology"
)

// pair wires two routers on a 2x1 mesh (node 0 west, node 1 east) with
// manually driven PE endpoints, for white-box pipeline tests.
type pair struct {
	k   sim.Kernel
	ev  stats.Events
	ctr *fault.Counters
	a   *Router // node 0
	b   *Router // node 1

	srcTx *link.Transmitter // test -> a.Local
	dstRx *link.Receiver    // last router's Local -> test

	// extra holds routers beyond a and b for wider grids (buildGrid).
	extra []*Router

	arrived   []flit.Flit
	arrivedAt []uint64
}

func newPair(t *testing.T, depth int) *pair {
	t.Helper()
	return buildGrid(t, 2, 1, depth)
}

// buildGrid wires a w x h mesh of routers with PE endpoints everywhere;
// the test drives node 0's local input and consumes the last node's
// local output.
func buildGrid(t *testing.T, w, h, depth int) *pair {
	t.Helper()
	p := &pair{ctr: fault.NewCounters()}
	topo := topology.New(topology.Mesh, w, h)
	route := routing.New(routing.XY, topo)
	routers := make([]*Router, topo.Nodes())
	for i := range routers {
		routers[i] = New(Config{
			ID: flit.NodeID(i), Topo: topo, Route: route,
			VCs: 2, BufDepth: 4, PipelineDepth: depth,
			Protection: link.HBH, ACEnabled: true, XYCheck: true,
			RecoveryEnabled: true,
			Events:          &p.ev, Counters: p.ctr,
		})
	}
	p.a, p.b = routers[0], routers[1]
	if len(routers) > 2 {
		p.extra = routers[2:]
	}

	for _, l := range topo.Links() {
		dst, _ := topo.Neighbor(l.From, l.Dir)
		ch := link.NewChannel(&p.k, nil, false, &p.ev, p.ctr)
		routers[l.From].AttachOutput(l.Dir, link.NewTransmitter(ch, 2, 4, link.NACKWindow, &p.ev, p.ctr))
		routers[dst].AttachInput(l.Dir.Opposite(), link.NewReceiver(ch, 2, link.HBH, &p.ev, p.ctr))
	}

	mkLocal := func(r *Router) (*link.Transmitter, *link.Receiver) {
		up := link.NewChannel(&p.k, nil, true, &p.ev, p.ctr)
		upTx := link.NewTransmitter(up, 2, 4, link.NACKWindow, &p.ev, p.ctr)
		r.AttachInput(topology.Local, link.NewReceiver(up, 2, link.HBH, &p.ev, p.ctr))
		down := link.NewChannel(&p.k, nil, true, &p.ev, p.ctr)
		r.AttachOutput(topology.Local, link.NewTransmitter(down, 2, 4, link.NACKWindow, &p.ev, p.ctr))
		return upTx, link.NewReceiver(down, 2, link.HBH, &p.ev, p.ctr)
	}
	for i, r := range routers {
		tx, rx := mkLocal(r)
		if i == 0 {
			p.srcTx = tx
		}
		if i == len(routers)-1 {
			p.dstRx = rx
		}
	}
	for _, r := range routers {
		p.k.Register(r)
	}
	return p
}

// autoSink registers the default destination PE: consume every arrival
// and return its credit immediately.
func (p *pair) autoSink() {
	p.k.Register(sim.ActorFunc(func(c uint64) {
		data, _ := p.dstRx.ReceiveAll(c)
		for _, f := range data {
			p.dstRx.ReturnCredit(int(f.VC))
			p.arrived = append(p.arrived, f)
			p.arrivedAt = append(p.arrivedAt, c)
		}
	}))
}

// driveSource sends the flits on local VC 0 as credits permit.
func (p *pair) driveSource(flits []flit.Flit) {
	rest := flits
	p.k.Register(sim.ActorFunc(func(c uint64) {
		p.srcTx.BeginCycle(c)
		p.srcTx.ExpireShifters(c)
		if len(rest) > 0 && p.srcTx.Credits(0) > 0 {
			p.srcTx.Send(rest[0], 0, c)
			rest = rest[1:]
		}
	}))
}

func (p *pair) checkInvariants(t *testing.T) {
	t.Helper()
	rs := append([]*Router{p.a, p.b}, p.extra...)
	for _, r := range rs {
		if msg := r.CheckInvariants(); msg != "" {
			t.Fatalf("invariant violated at cycle %d: %s", p.k.Cycle(), msg)
		}
	}
}

func TestSinglePacketTraversal(t *testing.T) {
	p := newPair(t, 3)
	p.autoSink()
	pkt := flit.Packet{ID: 1, Src: 0, Dst: 1, Size: 4}
	p.driveSource(pkt.Flits())
	for i := 0; i < 20; i++ {
		p.k.Step()
		p.checkInvariants(t)
	}
	if len(p.arrived) != 4 {
		t.Fatalf("arrived %d flits, want 4", len(p.arrived))
	}
	for i, f := range p.arrived {
		if int(f.Seq) != i {
			t.Fatalf("out of order at %d: %v", i, f)
		}
	}
	// Depth-3 pipeline: inject@0, a-ingest@1, VA@2, SA+send@3, b-ingest@4,
	// VA@5, SA+eject@6, PE@7; body flits stream 1/cycle behind.
	if p.arrivedAt[0] != 7 {
		t.Fatalf("head arrived at %d, want 7", p.arrivedAt[0])
	}
	if p.arrivedAt[3] != 10 {
		t.Fatalf("tail arrived at %d, want 10", p.arrivedAt[3])
	}
}

func TestPipelineDepthHeadLatency(t *testing.T) {
	want := map[int]uint64{1: 3, 2: 5, 3: 7, 4: 9}
	for depth, at := range want {
		p := newPair(t, depth)
		p.autoSink()
		p.driveSource(flit.Packet{ID: 1, Src: 0, Dst: 1, Size: 2}.Flits())
		for i := 0; i < 20; i++ {
			p.k.Step()
		}
		if len(p.arrived) == 0 {
			t.Fatalf("depth %d: nothing arrived", depth)
		}
		if p.arrivedAt[0] != at {
			t.Errorf("depth %d: head at cycle %d, want %d", depth, p.arrivedAt[0], at)
		}
	}
}

// Two packets on the same source VC: the second's head must not enter
// the pipeline until the first's tail released the wormhole, and both
// must arrive intact and ordered.
func TestWormholeExclusivity(t *testing.T) {
	p := newPair(t, 3)
	p.autoSink()
	fs := flit.Packet{ID: 1, Src: 0, Dst: 1, Size: 3}.Flits()
	fs = append(fs, flit.Packet{ID: 2, Src: 0, Dst: 1, Size: 3}.Flits()...)
	p.driveSource(fs)
	for i := 0; i < 30; i++ {
		p.k.Step()
		p.checkInvariants(t)
	}
	if len(p.arrived) != 6 {
		t.Fatalf("arrived %d flits, want 6", len(p.arrived))
	}
	for i, f := range p.arrived {
		wantPID := flit.PacketID(1 + i/3)
		if f.PID != wantPID || int(f.Seq) != i%3 {
			t.Fatalf("flit %d = %v, want packet %d seq %d", i, f, wantPID, i%3)
		}
	}
}

// Credit backpressure: with the sink withholding credits, the number of
// flits absorbed by the network is bounded by the total buffering along
// the path, and nothing is lost once the sink opens up.
func TestCreditBackpressure(t *testing.T) {
	p := newPair(t, 3)
	// A sink that hoards credits until released.
	hold := true
	var held []int
	p.k.Register(sim.ActorFunc(func(c uint64) {
		data, _ := p.dstRx.ReceiveAll(c)
		for _, f := range data {
			p.arrived = append(p.arrived, f)
			p.arrivedAt = append(p.arrivedAt, c)
			if hold {
				held = append(held, int(f.VC))
				continue
			}
			p.dstRx.ReturnCredit(int(f.VC))
		}
	}))
	var fs []flit.Flit
	for pid := 1; pid <= 8; pid++ {
		fs = append(fs, flit.Packet{ID: flit.PacketID(pid), Src: 0, Dst: 1, Size: 4}.Flits()...)
	}
	p.driveSource(fs)
	p.k.Run(100)
	// The sink accepted at most its buffer depth (4) before starving.
	firstWave := len(p.arrived)
	if firstWave > 8 {
		t.Fatalf("sink absorbed %d flits with credits withheld; backpressure broken", firstWave)
	}
	hold = false
	for _, vc := range held {
		p.dstRx.ReturnCredit(vc)
	}
	p.k.Run(200)
	if len(p.arrived) != 32 {
		t.Fatalf("arrived %d flits after release, want 32", len(p.arrived))
	}
}

// A VC allocator must round-robin among competing inputs rather than
// starving one: two sources (a's Local and b->a traffic) compete for a's
// East output... simplified here as two VCs of the same local port
// competing for one output VC at depth 3.
func TestVCCompetitionNoStarvation(t *testing.T) {
	p := newPair(t, 3)
	p.autoSink()
	// Drive both local VCs with their own packet streams.
	mkStream := func(vc int, base flit.PacketID) func(uint64) {
		var queue []flit.Flit
		next := base
		return func(c uint64) {
			if len(queue) == 0 {
				queue = flit.Packet{ID: next, Src: 0, Dst: 1, Size: 2}.Flits()
				next += 2
			}
			if p.srcTx.Credits(vc) > 0 && !p.srcTx.HasReplay() {
				p.srcTx.Send(queue[0], vc, c)
				queue = queue[1:]
			}
		}
	}
	s0 := mkStream(0, 1)
	s1 := mkStream(1, 1000)
	turn := false
	p.k.Register(sim.ActorFunc(func(c uint64) {
		p.srcTx.BeginCycle(c)
		p.srcTx.ExpireShifters(c)
		// Alternate which VC gets the local channel's single flit slot.
		if turn {
			s0(c)
		} else {
			s1(c)
		}
		turn = !turn
	}))
	p.k.Run(300)
	var low, high int
	for _, f := range p.arrived {
		if f.PID < 1000 {
			low++
		} else {
			high++
		}
	}
	if low == 0 || high == 0 {
		t.Fatalf("starvation: stream counts %d vs %d", low, high)
	}
	ratio := float64(low) / float64(high)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("unfair arbitration: %d vs %d", low, high)
	}
}

func TestConfigValidation(t *testing.T) {
	topo := topology.New(topology.Mesh, 2, 2)
	route := routing.New(routing.XY, topo)
	var ev stats.Events
	ctr := fault.NewCounters()
	good := Config{Topo: topo, Route: route, VCs: 2, BufDepth: 2, PipelineDepth: 3, Events: &ev, Counters: ctr}
	New(good) // must not panic

	bad := []func(*Config){
		func(c *Config) { c.Topo = nil },
		func(c *Config) { c.Route = nil },
		func(c *Config) { c.VCs = 0 },
		func(c *Config) { c.BufDepth = 0 },
		func(c *Config) { c.PipelineDepth = 5 },
		func(c *Config) { c.Events = nil },
	}
	for i, mutate := range bad {
		cfg := good
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad config %d did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestProbeEncodingRoundTrip(t *testing.T) {
	m := probeMsg{Origin: 42, OriginPort: topology.West, OriginVC: 2, TargetVC: AnyVC, Hops: 17}
	w, check := encodeProbe(m)
	got := decodeProbe(w)
	if got != m {
		t.Fatalf("round trip %+v -> %+v", m, got)
	}
	f := probeFlit(flit.Probe, m)
	if f.Type != flit.Probe || f.Word != w || f.Check != check {
		t.Fatalf("probeFlit wrong: %+v", f)
	}
}

func TestVAOffsetPerDepth(t *testing.T) {
	want := map[int]uint64{1: 0, 2: 1, 3: 1, 4: 2}
	for d, off := range want {
		if got := vaOffset(d); got != off {
			t.Errorf("vaOffset(%d) = %d, want %d", d, got, off)
		}
	}
	if saAfterVA(2) || !saAfterVA(3) {
		t.Error("saAfterVA boundaries wrong")
	}
}
