package router

import (
	"ftnoc/internal/flit"
	"ftnoc/internal/link"
	"ftnoc/internal/topology"
	"ftnoc/internal/trace"
)

// exitHysteresis is how many consecutive all-clear cycles a node must
// observe before leaving recovery mode. Exiting on a momentarily clear
// cycle drops the new-packet gate too early: fresh wormholes flood the
// just-created slack, the deadlock re-forms at higher buffer occupancy,
// and after a few such ratchets the configuration exceeds the Eq. (1)
// absorption capacity and becomes unrecoverable.
const exitHysteresis = 32

// blockedForward is the minimum blocked time (cycles) for a VC to count
// as "also blocked" when deciding whether to forward a probe (Rule 2). A
// VC that advanced very recently is making progress, so a suspicion
// passing through it is a false positive.
const blockedForward = 4

// deadlock runs the probing detection protocol of §3.2.2 and the
// retransmission-buffer recovery of §3.2.1.
func (r *Router) deadlock(cycle uint64) {
	if !r.cfg.RecoveryEnabled {
		return
	}
	// Prune before the recovery branch: a node can spend many windows in
	// recovery mode, and skipping pruning there let probeSeen grow without
	// bound in long soak/daemon runs. Pruning neither reads nor writes any
	// state the probing rules below consult this cycle (entries are added
	// during ingest, which already ran).
	r.pruneProbeSeen(cycle)
	if r.inRecovery {
		r.recoveryStep(cycle)
		return
	}
	// Rule 1: probe for every VC blocked past the threshold. A blocked VC
	// is non-idle, hence live, so the sparse path scans the live list
	// (ascending, matching the dense flat order).
	if r.sparse {
		for _, i := range r.liveList {
			r.probeRule1(cycle, r.flatVCs[i])
		}
		return
	}
	for i, n := 0, r.inputVCCount(); i < n; i++ {
		if ivc := r.inputVCAt(i); ivc != nil {
			r.probeRule1(cycle, ivc)
		}
	}
}

// probeRule1 applies Rule 1 to one input VC: probe if it has been blocked
// past the threshold. Re-probe only after a cool-down, in case the
// previous probe was lost or its activation path diverged.
func (r *Router) probeRule1(cycle uint64, ivc *inputVC) {
	if ivc.state == vcIdle {
		return
	}
	if ivc.blockedFor(cycle) < r.cfg.Cthres {
		return
	}
	if ivc.probeSentAt != 0 && cycle-ivc.probeSentAt < reprobeInterval {
		return
	}
	if r.sendSignal(cycle, flit.Probe, ivc, probeMsg{
		Origin:     r.id,
		OriginPort: ivc.port,
		OriginVC:   uint8(ivc.idx),
	}) {
		// Note: sending a probe does NOT make this VC a deadlock
		// member — it is merely a suspect. Membership comes from the
		// probe's loop completing (ownProbeReturned) or from sitting
		// on another probe's dependency chain (forwardSignal); a
		// packet blocked behind a deadlock, rather than inside one,
		// never sees its probe again and must not be allowed to eat
		// the recovery slack.
		ivc.probeOutstanding = true
		ivc.probeSentAt = cycle
		r.probesSent++
	}
}

// sendSignal emits a probe or activation along the blocked packet's next
// hop, filling in the target VC at the receiving node. It reports whether
// a usable next hop existed.
func (r *Router) sendSignal(cycle uint64, t flit.Type, ivc *inputVC, m probeMsg) bool {
	var port topology.Port
	switch ivc.state {
	case vcActive:
		port = ivc.outPort
		m.TargetVC = uint8(ivc.outVC)
	case vcVAWait:
		legal := r.legalCandidates(ivc)
		if len(legal) == 0 || legal[0] == topology.Local {
			return false
		}
		port = legal[0]
		m.TargetVC = AnyVC
	default:
		return false
	}
	if port == topology.Local || !port.Valid() || r.out[port] == nil {
		return false
	}
	r.out[port].tx.SendControl(probeFlit(t, m))
	if r.cfg.Bus.Enabled() {
		aux := trace.AuxProbe
		if t == flit.Activation {
			aux = trace.AuxActivation
		}
		r.cfg.Bus.Emit(trace.Event{
			Cycle: cycle, Kind: trace.ProbeSent,
			Node: int32(r.id), Port: int8(ivc.port), VC: int8(ivc.idx), Aux: aux,
		})
	}
	return true
}

// handleControl processes an arriving probe or activation flit (Rules
// 2-4 of §3.2.2).
func (r *Router) handleControl(cycle uint64, p topology.Port, f flit.Flit) {
	if !r.cfg.RecoveryEnabled {
		return
	}
	m := decodeProbe(f.Word)
	switch f.Type {
	case flit.Probe:
		if m.Origin == r.id {
			r.ownProbeReturned(cycle, m)
			return
		}
		// Rule 2: remember the probe (for Rule 3) and forward it if the
		// suspected buffer is blocked here too.
		r.probeSeen[m.key()] = cycle
		r.forwardSignal(cycle, p, flit.Probe, m)
	case flit.Activation:
		if m.Origin == r.id {
			// Our activation completed the loop: switch to recovery mode
			// (the sender switches after the activation returns).
			r.enterRecovery(cycle)
			return
		}
		// Rule 3: only honor activations whose probe we forwarded.
		if _, ok := r.probeSeen[m.key()]; !ok {
			return
		}
		// Rule 4: switch to recovery mode and pass the activation on.
		r.enterRecovery(cycle)
		r.forwardSignal(cycle, p, flit.Activation, m)
	}
}

// ownProbeReturned handles a probe completing its loop back to the
// origin: the suspected flit is confirmed deadlocked, so an activation is
// dispatched along the same path — unless recovery is already under way
// (Rule 4: discard our own probe).
func (r *Router) ownProbeReturned(cycle uint64, m probeMsg) {
	if r.in[m.OriginPort] == nil || int(m.OriginVC) >= r.cfg.VCs {
		return
	}
	ivc := r.in[m.OriginPort].vcs[m.OriginVC]
	ivc.probeOutstanding = false
	if ivc.state == vcIdle {
		return // the packet advanced while the probe travelled
	}
	// The loop completed: the packet is confirmed inside a cyclic
	// dependency and may advance into recovering buffers.
	ivc.member = true
	if r.inRecovery {
		return // Rule 4: recovery already active; discard our own probe
	}
	r.sendSignal(cycle, flit.Activation, ivc, probeMsg{
		Origin:     r.id,
		OriginPort: m.OriginPort,
		OriginVC:   m.OriginVC,
	})
}

// forwardSignal applies Rule 2 to an incoming probe/activation: find the
// suspected VC on the arrival port; if it is blocked here as well (or the
// node is already recovering), pass the signal along that VC's own next
// hop with the target rewritten; otherwise discard it.
func (r *Router) forwardSignal(cycle uint64, p topology.Port, t flit.Type, m probeMsg) {
	if m.Hops >= maxProbeHops || r.in[p] == nil {
		return
	}
	var ivc *inputVC
	if m.TargetVC == AnyVC {
		// The suspected packet upstream is waiting for *any* VC on this
		// port: the suspicion holds only if all of them are occupied;
		// the dependency chain continues through the most-blocked one.
		var worst uint64
		for _, v := range r.in[p].vcs {
			if v.state == vcIdle {
				return // a VC is free; upstream will get it — no deadlock
			}
			if b := v.blockedFor(cycle); ivc == nil || b > worst {
				ivc, worst = v, b
			}
		}
	} else {
		if int(m.TargetVC) >= r.cfg.VCs {
			return
		}
		ivc = r.in[p].vcs[m.TargetVC]
	}
	if ivc == nil || ivc.state == vcIdle {
		return
	}
	if ivc.blockedFor(cycle) < blockedForward && !r.inRecovery {
		return // making progress here: not a deadlock
	}
	ivc.member = true // the suspicion chain runs through this packet
	m.Hops++
	r.sendSignal(cycle, t, ivc, m)
}

// enterRecovery switches the node into deadlock-recovery mode (§3.2.1)
// and tells every upstream neighbor to stop opening new wormholes onto
// this node's buffers.
func (r *Router) enterRecovery(cycle uint64) {
	if r.inRecovery {
		return
	}
	r.inRecovery = true
	r.recoveries++
	r.signalRecovery(link.NACKRecoveryOn)
	if r.cfg.Bus.Enabled() {
		r.cfg.Bus.Emit(trace.Event{
			Cycle: cycle, Kind: trace.RecoveryBegin, Node: int32(r.id), Port: -1, VC: -1,
		})
	}
}

// signalRecovery raises or lowers the recovery handshake on every
// router-router input channel.
func (r *Router) signalRecovery(kind link.NACKKind) {
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		if p == topology.Local || r.in[p] == nil {
			continue
		}
		r.in[p].rx.SendNACK(0, kind)
	}
}

// recoveryStep performs one cycle of recovery-mode buffer management:
// every blocked VC on a router-router port parks up to NACKWindow flits
// from its transmission buffer into the (idle) retransmission shifter,
// freeing slots that let the preceding node advance; the parked flits are
// sent onward as soon as downstream credits appear (Fig. 10). VA-blocked
// packets are absorbed the same way — the Fig. 11 worst case, where
// partially transferred messages must be soaked up before anything can
// move. Parking stops at packet boundaries so a trailing next packet
// never enters a parked queue. Local (PE) input VCs never park: freeing
// them would only admit new traffic into the recovery region, which the
// paper forbids. Recovery ends when every parked queue has drained and
// no VC is starved.
func (r *Router) recoveryStep(cycle uint64) {
	done := true
	for i, n := 0, r.inputVCCount(); i < n; i++ {
		ivc := r.inputVCAt(i)
		if ivc == nil || ivc.state == vcIdle {
			continue
		}
		starved := true // a VA-blocked packet cannot move by definition
		if ivc.state == vcActive {
			if ivc.outVC < 0 || ivc.outVC >= r.cfg.VCs || !ivc.outPort.Valid() || r.out[ivc.outPort] == nil {
				continue
			}
			starved = r.out[ivc.outPort].tx.Credits(ivc.outVC) == 0
		}
		if room := link.NACKWindow - len(ivc.pending); ivc.port != topology.Local && room > 0 && starved && ivc.buf.Len() > 0 {
			// Park into the free shifter slots; each parked flit frees a
			// credited buffer slot for the preceding node. Using the full
			// depth every round is what realises the Eq. (1) capacity
			// B = T + R per virtual channel.
			if l := ivc.buf.Len(); l < room {
				room = l
			}
			for j := 0; j < room; j++ {
				f, _ := ivc.buf.Pop()
				ivc.pending = append(ivc.pending, f)
				r.in[ivc.port].rx.ReturnCredit(ivc.idx)
				r.cfg.Events.BufReads++
				r.cfg.Events.RetransWrites++
				if r.cfg.Bus.Enabled() {
					r.cfg.Bus.Emit(trace.Event{
						Cycle: cycle, Kind: trace.FlitParked,
						Node: int32(r.id), Port: int8(ivc.port), VC: int8(ivc.idx),
						PID: uint64(f.PID), Seq: f.Seq,
					})
				}
			}
		}
		if len(ivc.pending) > 0 && ivc.state == vcActive && starved {
			done = false
		}
		if ivc.state == vcActive && starved && ivc.buf.Len() > 0 && ivc.port != topology.Local {
			done = false
		}
	}
	if !done {
		r.doneStreak = 0
		return
	}
	r.doneStreak++
	if r.doneStreak >= exitHysteresis {
		r.doneStreak = 0
		r.inRecovery = false
		r.signalRecovery(link.NACKRecoveryOff)
		if r.cfg.Bus.Enabled() {
			r.cfg.Bus.Emit(trace.Event{
				Cycle: cycle, Kind: trace.RecoveryEnd, Node: int32(r.id), Port: -1, VC: -1,
			})
		}
		// Blocked clocks are NOT reset: a still-starved VC is still a
		// deadlock member and must keep its standing (both for prompt
		// re-probing and for the new-packet gate above). Probe timers
		// clear so a persisting wedge is re-detected without delay.
		for i, n := 0, r.inputVCCount(); i < n; i++ {
			if ivc := r.inputVCAt(i); ivc != nil {
				ivc.probeOutstanding = false
			}
		}
	}
}

// pruneProbeSeen forgets stale probe records (Rule 3 validity window).
func (r *Router) pruneProbeSeen(cycle uint64) {
	if cycle%probeSeenWindow != 0 || len(r.probeSeen) == 0 {
		return
	}
	for k, c := range r.probeSeen {
		if cycle-c > probeSeenWindow {
			delete(r.probeSeen, k)
		}
	}
}
