package router

import (
	"ftnoc/internal/flit"
	"ftnoc/internal/link"
	"ftnoc/internal/topology"
)

// This file is the router's hard-fault surface: the accessors and
// destructive helpers the network's reconfiguration controller uses to
// rebuild routing state and excise wormholes severed by link or router
// deaths. Everything here runs serially, between kernel steps, at fault
// boundaries — never from a concurrent tick.

// FlushRouteCache invalidates the memoised routing tables. Required
// after the fault-adaptive routing function rebuilds its distance
// tables: the memos capture Route() results from the previous topology
// epoch and would keep steering packets along the dead orientation.
func (r *Router) FlushRouteCache() {
	for i := range r.routeCache {
		r.routeCache[i] = nil
	}
	for p := range r.neighborRoute {
		cache := r.neighborRoute[p]
		for i := range cache {
			cache[i] = nil
		}
	}
}

// RefreshWaitingRoutes recomputes the candidate set of every VA-waiting
// input VC from the (just rebuilt) routing function, so headers that
// were computed under the previous topology epoch re-request along the
// new orientation instead of waiting on candidates that no longer
// exist. No event accounting and no RT fault injection: this models the
// reconfiguration controller rewriting route registers, not the RT
// pipeline stage.
func (r *Router) RefreshWaitingRoutes() {
	for _, ivc := range r.flatVCs {
		if ivc == nil || ivc.state != vcVAWait {
			continue
		}
		ivc.candidates = r.cfg.Route.Route(r.id, ivc.dst)
	}
}

// Transmitter returns the transmitter attached to output port p, or nil.
// Reconfiguration-controller access for dead-channel abandonment.
func (r *Router) Transmitter(p topology.Port) *link.Transmitter {
	if !p.Valid() || r.out[p] == nil {
		return nil
	}
	return r.out[p].tx
}

// OutputOwner resolves the wormhole occupying output VC (p, vc) back to
// the input VC that owns it. ok is false when the output VC is free or
// the port unattached.
func (r *Router) OutputOwner(p topology.Port, vc int) (inPort topology.Port, inVC int, ok bool) {
	if !p.Valid() || r.out[p] == nil || vc < 0 || vc >= len(r.out[p].vcs) {
		return 0, 0, false
	}
	ov := r.out[p].vcs[vc]
	if !ov.busy {
		return 0, 0, false
	}
	return ov.inPort, ov.inVC, true
}

// InputBinding resolves the downstream allocation of input VC (p, vc):
// which output VC its resident wormhole holds. active is false when the
// VC is idle, still waiting for allocation, or stranded by a corrupted
// binding.
func (r *Router) InputBinding(p topology.Port, vc int) (outPort topology.Port, outVC int, active bool) {
	ip := r.in[p]
	if !p.Valid() || ip == nil || vc < 0 || vc >= len(ip.vcs) {
		return 0, 0, false
	}
	ivc := ip.vcs[vc]
	if ivc.state != vcActive || !ivc.outPort.Valid() || r.out[ivc.outPort] == nil ||
		ivc.outVC < 0 || ivc.outVC >= r.cfg.VCs {
		return 0, 0, false
	}
	return ivc.outPort, ivc.outVC, true
}

// WormDst returns the destination of the packet resident in input VC
// (p, vc) and whether one is resident at all (state not idle).
func (r *Router) WormDst(p topology.Port, vc int) (dst flit.NodeID, resident bool) {
	ip := r.in[p]
	if !p.Valid() || ip == nil || vc < 0 || vc >= len(ip.vcs) {
		return 0, false
	}
	ivc := ip.vcs[vc]
	if ivc.state == vcIdle {
		return 0, false
	}
	return ivc.dst, true
}

// StuckWorm reports whether input VC (p, vc) holds a VA-waiting header
// that can never be allocated: a fresh route computation, filtered by
// the VA's own legality rules (attached ports, live links), yields no
// candidate. With irreversible hard faults an empty legal set is
// permanent, so a stuck worm is safe to excise. The fresh computation
// bypasses the RT stage's event accounting and fault injection — this
// is the reconfiguration controller peeking, not the pipeline routing.
func (r *Router) StuckWorm(p topology.Port, vc int) bool {
	ip := r.in[p]
	if !p.Valid() || ip == nil || vc < 0 || vc >= len(ip.vcs) {
		return false
	}
	ivc := ip.vcs[vc]
	if ivc.state != vcVAWait {
		return false
	}
	for _, c := range r.cfg.Route.Route(r.id, ivc.dst) {
		if !c.Valid() {
			continue
		}
		if c == topology.Local {
			if ivc.dst == r.id && r.out[c] != nil {
				return false
			}
			continue
		}
		if r.out[c] != nil && r.cfg.Topo.LinkUp(r.id, c) {
			return false
		}
	}
	return true
}

// EachWaitingVC visits every VA-waiting input VC — the candidates for
// the network's stuck-worm sweep.
func (r *Router) EachWaitingVC(fn func(p topology.Port, vc int, dst flit.NodeID)) {
	for _, ivc := range r.flatVCs {
		if ivc == nil || ivc.state != vcVAWait {
			continue
		}
		fn(ivc.port, ivc.idx, ivc.dst)
	}
}

// KillVC excises whatever wormhole state input VC (p, vc) holds: every
// buffered flit is drained (returning its upstream credit, preserving
// the per-VC credit law), parked pending flits are discarded (their
// credits were returned when they were parked), the downstream output
// VC reservation is released, and the VC returns to idle. fn (if
// non-nil) observes every removed flit for packet accounting. It
// returns the number of flits removed. Serial use only.
func (r *Router) KillVC(cycle uint64, p topology.Port, vc int, fn func(flit.Flit)) int {
	ip := r.in[p]
	if !p.Valid() || ip == nil || vc < 0 || vc >= len(ip.vcs) {
		return 0
	}
	ivc := ip.vcs[vc]
	removed := 0
	for {
		f, ok := ivc.buf.Pop()
		if !ok {
			break
		}
		ip.rx.ReturnCredit(vc)
		removed++
		if fn != nil {
			fn(f)
		}
	}
	for _, f := range ivc.pending {
		removed++
		if fn != nil {
			fn(f)
		}
	}
	ivc.pending = nil
	if ivc.state == vcActive && ivc.outPort.Valid() && r.out[ivc.outPort] != nil &&
		ivc.outVC >= 0 && ivc.outVC < r.cfg.VCs {
		r.out[ivc.outPort].vcs[ivc.outVC] = outputVC{}
	}
	ivc.reset(cycle)
	return removed
}
