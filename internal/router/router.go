package router

import (
	"fmt"
	"math/bits"
	"sort"

	"ftnoc/internal/ac"
	"ftnoc/internal/ecc"
	"ftnoc/internal/fault"
	"ftnoc/internal/flit"
	"ftnoc/internal/link"
	"ftnoc/internal/topology"
	"ftnoc/internal/trace"
)

// probeSeenWindow is how long a node remembers having forwarded a probe
// from a given origin, for validating activations (Rule 3).
const probeSeenWindow = 512

// reprobeInterval is how long a blocked VC waits after sending a probe
// before assuming it was lost (e.g. corrupted on the wire) and probing
// again.
const reprobeInterval = 2 * DefaultCthres

// Router is one pipelined virtual-channel wormhole router (Fig. 1). It
// implements sim.Actor; the network registers it with the kernel and
// attaches channel endpoints to its ports.
type Router struct {
	cfg Config
	id  flit.NodeID

	in  [topology.NumPorts]*inPort
	out [topology.NumPorts]*outputPort

	vaRR  int // rotates VA priority over input VCs
	outRR int // rotates SA priority over output ports

	// Deadlock machinery (§3.2.2).
	probeSeen  map[probeKey]uint64
	inRecovery bool
	doneStreak int // consecutive all-clear cycles before recovery exits

	// Diagnostic counters, exported via accessors.
	recoveries         uint64
	probesSent         uint64
	wormholeViolations uint64
	strayFlits         uint64
	creditStalls       uint64

	// nextExpected is the cycle the next Tick should see; a gap means the
	// kernel skipped this router as quiescent, and Tick replays the
	// per-cycle mutations an idle tick would have made (see catchUp).
	nextExpected uint64

	// flatVCs flattens (port, vc) pairs for round-robin iteration without
	// a divmod per probe; nil entries are unattached ports.
	flatVCs []*inputVC

	// arena backs the attached input VCs contiguously (struct-of-arrays
	// locality: one router's whole VC state shares cache lines); fifos
	// backs their buffers the same way. flatVCs/in[p].vcs point into it.
	arena []inputVC
	fifos []link.FIFO

	// Sparse fast path (Config.Sparse, <=64 input VCs): liveVCs is a
	// conservative superset of the VCs that are not (idle AND empty).
	// The ONLY dead->live transition is a flit arrival (ingestData), the
	// single place a bit is set; bits are cleared lazily when a scan
	// visits a dead VC. liveList materialises the set bits ascending once
	// per tick (after ingest), so the allocator phases iterate live VCs
	// instead of scanning ports x VCs.
	sparse      bool
	liveVCs     uint64
	liveList    []int
	bufCapTotal int
	bufCapKnown bool
	shCapTotal  int
	shCapKnown  bool

	// saCand buckets the live, vcActive input VCs by bound output port,
	// rebuilt once per allocateSA pass (sparse mode only). Each port's
	// arbitration then rotates over its own few requesters instead of
	// re-scanning every live VC per port — the flat-index order inside a
	// bucket is ascending, so the rotated split reproduces the dense
	// walk's (saRR+j)%n requester sequence exactly.
	saCand [topology.NumPorts][]int

	// routeCache memoises the routing function per destination: routes
	// are pure in (cur, dst) — link health is filtered later, in
	// legalCandidates — so one computation serves the whole run.
	// neighborRoute does the same for the §4.2 arrival-direction check,
	// per upstream port.
	routeCache    [][]topology.Port
	neighborRoute [topology.NumPorts][][]topology.Port

	// Per-cycle scratch buffers, reused across ticks; capacities are
	// bounded by the port/VC counts so the steady state never allocates.
	scratchLegal  []topology.Port
	scratchBind   []ac.Binding
	scratchGrants []ac.Grant
	scratchReqs   []saRequest
	scratchKept   []saRequest
	scratchViol   []ac.Violation
}

type inPort struct {
	port topology.Port
	rx   *link.Receiver
	vcs  []*inputVC
}

// New creates a router. Ports start unattached; wire them with
// AttachInput / AttachOutput before the first Tick.
func New(cfg Config) *Router {
	cfg.validate()
	np := int(topology.NumPorts)
	n := np * cfg.VCs
	return &Router{
		cfg:           cfg,
		id:            cfg.ID,
		probeSeen:     make(map[probeKey]uint64),
		flatVCs:       make([]*inputVC, n),
		arena:         make([]inputVC, n),
		fifos:         link.NewFIFOs(n, cfg.BufDepth),
		sparse:        cfg.Sparse && n <= 64,
		liveList:      make([]int, 0, n),
		routeCache:    make([][]topology.Port, cfg.Topo.Nodes()),
		scratchLegal:  make([]topology.Port, 0, np),
		scratchBind:   make([]ac.Binding, 0, np*cfg.VCs),
		scratchGrants: make([]ac.Grant, 0, np),
		scratchReqs:   make([]saRequest, 0, np),
		scratchKept:   make([]saRequest, 0, np),
		scratchViol:   make([]ac.Violation, 0, np),
	}
}

// ID returns the router's node identifier.
func (r *Router) ID() flit.NodeID { return r.id }

// AttachInput connects the receiving side of a channel to port p and
// creates the port's input VC buffers (slots in the router's contiguous
// VC arena).
func (r *Router) AttachInput(p topology.Port, rx *link.Receiver) {
	vcs := make([]*inputVC, r.cfg.VCs)
	for i := range vcs {
		slot := int(p)*r.cfg.VCs + i
		ivc := &r.arena[slot]
		*ivc = inputVC{port: p, idx: i, flat: slot, buf: &r.fifos[slot]}
		vcs[i] = ivc
		r.flatVCs[slot] = ivc
	}
	r.in[p] = &inPort{port: p, rx: rx, vcs: vcs}
}

// AttachOutput connects the transmitting side of a channel to port p.
func (r *Router) AttachOutput(p topology.Port, tx *link.Transmitter) {
	r.out[p] = &outputPort{port: p, tx: tx, vcs: make([]outputVC, r.cfg.VCs)}
}

// Tick evaluates one cycle of the router pipeline. The phases mirror the
// atomic modules of Fig. 2; all cross-router effects go through latched
// channel wires, so intra-cycle phase order is purely local.
func (r *Router) Tick(cycle uint64) {
	if cycle > r.nextExpected {
		r.catchUp(cycle - r.nextExpected)
	}
	r.nextExpected = cycle + 1
	if r.cfg.EventsMirror != nil {
		// Snapshot the pre-tick counters (catch-up included: those belong
		// to cycles before this one) for mid-cycle measurement snapshots.
		*r.cfg.EventsMirror = *r.cfg.Events
	}
	r.beginOutputs(cycle)
	r.ingest(cycle)
	if r.sparse {
		// The live set is fixed for the rest of the tick: ingest is the
		// only phase that can revive a dead VC (see liveVCs). Build the
		// ascending index list the allocator phases iterate.
		r.buildLive()
	}
	r.advance(cycle)
	r.allocateVA(cycle)
	r.allocateSA(cycle)
	r.deadlock(cycle)
}

// markLive flags a VC as possibly non-idle/non-empty in the sparse mask.
func (r *Router) markLive(ivc *inputVC) {
	r.liveVCs |= 1 << uint(ivc.flat)
}

// buildLive refreshes liveList from the mask, lazily clearing bits whose
// VC has gone back to (idle AND empty) — the only scan that shrinks the
// live set, so membership is a stable superset within a tick.
func (r *Router) buildLive() {
	list := r.liveList[:0]
	m := r.liveVCs
	for m != 0 {
		i := bits.TrailingZeros64(m)
		m &= m - 1
		ivc := r.flatVCs[i]
		if ivc == nil || (ivc.state == vcIdle && ivc.occupied() == 0) {
			r.liveVCs &^= 1 << uint(i)
			continue
		}
		list = append(list, i)
	}
	r.liveList = list
}

// catchUp replays the per-cycle mutations a quiescent-eligible router
// makes on every idle tick, for the gap cycles the kernel skipped: the
// unconditional VA/SA round-robin rotations, and the per-cycle AC grant
// screen the comparator performs even on an empty grant vector. Nothing
// else in an idle tick mutates state (that is what Quiescent certifies),
// so after catch-up the router is byte-identical to one ticked
// throughout.
func (r *Router) catchUp(gap uint64) {
	r.vaRR += int(gap)
	r.outRR += int(gap)
	if r.cfg.ACEnabled {
		r.cfg.Events.ACChecks += gap
	}
}

// CatchUpTo applies the idle-tick effects of every skipped cycle before
// target, as if the router had ticked them all. The kernel normally leaves
// catch-up to the next Tick; counter observers (the network's measurement
// snapshots) call this so that a sleeping router's externally visible
// counters match the naive kernel's at the observation point. No-op for a
// router that is up to date.
func (r *Router) CatchUpTo(target uint64) {
	if target > r.nextExpected {
		r.catchUp(target - r.nextExpected)
		r.nextExpected = target
	}
}

// Quiescent implements sim.Quiescer: the router may be skipped when every
// input VC is idle and empty, no output port is replaying, no deadlock
// machinery is live, and the probe-memory table is empty (pruning it is
// clock-driven, so a non-empty table keeps the router ticking until it
// drains). Credits and NACKs may still arrive while asleep: they
// accumulate on their wires and are drained by beginOutputs at the wake
// cycle, before any decision reads them. Flit arrivals wake the router
// via the channel's delivery callback.
//
// Occupied retransmission shifters do NOT keep the router awake: no entry
// can expire — and no link-error NACK for one can become visible — before
// the oldest entry's expiry cycle, which the router declares as its timed
// wake. The two NACK kinds that can arrive sooner (a neighbour's misroute
// report, or recovery on/off) wake it through the channels' NACK-pipe
// delivery callbacks, so every handshake is still processed on its exact
// visibility cycle. While asleep nothing captures into the shifters, so
// the declared expiry stays the earliest.
func (r *Router) Quiescent(cycle uint64) (bool, uint64) {
	if r.inRecovery || len(r.probeSeen) > 0 {
		return false, 0
	}
	if r.sparse {
		m := r.liveVCs
		for m != 0 {
			i := bits.TrailingZeros64(m)
			m &= m - 1
			ivc := r.flatVCs[i]
			if ivc == nil || (ivc.state == vcIdle && ivc.occupied() == 0) {
				r.liveVCs &^= 1 << uint(i)
				continue
			}
			return false, 0
		}
	} else {
		for _, ivc := range r.flatVCs {
			if ivc == nil {
				continue
			}
			if ivc.state != vcIdle || ivc.occupied() != 0 {
				return false, 0
			}
		}
	}
	var wake uint64
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		op := r.out[p]
		if op == nil {
			continue
		}
		if op.tx.HasReplay() {
			return false, 0
		}
		if exp, ok := op.tx.EarliestExpiry(); ok && (wake == 0 || exp < wake) {
			wake = exp
		}
	}
	return true, wake
}

// beginOutputs ingests handshakes on every output channel and services
// misroute NACKs (§4.2 recovery).
func (r *Router) beginOutputs(cycle uint64) {
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		op := r.out[p]
		if op == nil {
			continue
		}
		for _, n := range op.tx.BeginCycle(cycle) {
			switch n.Kind {
			case link.NACKMisroute:
				r.recoverMisroute(p, int(n.VC), cycle)
			case link.NACKRecoveryOn:
				op.downstreamRecovering = true
			case link.NACKRecoveryOff:
				op.downstreamRecovering = false
			}
			// NACKIgnore carries no action for the transmitter: the AC
			// invalidation already prevented the erroneous state from
			// being used; the handshake exists for energy accounting.
		}
		op.tx.ExpireShifters(cycle)
	}
}

// recoverMisroute handles a neighbor's report that the header we sent on
// (p, ov) violated the deterministic route: recall the sent flits from
// the retransmission buffer, release the allocation, and re-route
// (§4.2 — "the header flit is still in the previous router's
// retransmission buffer").
func (r *Router) recoverMisroute(p topology.Port, ov int, cycle uint64) {
	op := r.out[p]
	if ov < 0 || ov >= len(op.vcs) || !op.vcs[ov].busy {
		return
	}
	owner := op.vcs[ov]
	ivc := r.in[owner.inPort].vcs[owner.inVC]
	recalled := op.tx.Recall(ov)
	op.vcs[ov] = outputVC{}
	ivc.pending = append(recalled, ivc.pending...)
	if r.cfg.Bus.Enabled() {
		for _, f := range recalled {
			r.cfg.Bus.Emit(trace.Event{
				Cycle: cycle, Kind: trace.FlitRecalled,
				Node: int32(r.id), Port: int8(owner.inPort), VC: int8(owner.inVC),
				PID: uint64(f.PID), Seq: f.Seq,
			})
		}
	}
	ivc.state = vcVAWait
	ivc.candidates = r.computeRoute(cycle, ivc)
	ivc.earliestVA = cycle + 1 // the re-routing process (§4.2)
	r.cfg.Counters.AddCorrected(fault.RTLogic)
}

// ingest receives this cycle's arrivals on every input port, applies the
// misroute consistency check to headers, and writes accepted flits into
// the VC buffers.
func (r *Router) ingest(cycle uint64) {
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		ip := r.in[p]
		if ip == nil {
			continue
		}
		data, ctrl := ip.rx.ReceiveAll(cycle)
		for _, f := range ctrl {
			r.handleControl(cycle, p, f)
		}
		for _, f := range data {
			r.ingestData(cycle, ip, f)
		}
	}
}

func (r *Router) ingestData(cycle uint64, ip *inPort, f flit.Flit) {
	vc := int(f.VC)
	if vc >= len(ip.vcs) {
		vc = 0
	}
	ivc := ip.vcs[vc]

	if f.Type == flit.Head && ip.port != topology.Local && r.cfg.XYCheck {
		// §4.2: under deterministic routing, a misdirected header is
		// detected by the router that receives it — the arrival direction
		// must match the route the previous node should have taken.
		if up, ok := r.cfg.Topo.Neighbor(r.id, ip.port); ok {
			dst := flit.DecodeHeader(f.Word).Dst
			exp := r.cachedNeighborRoute(ip.port, up, dst)
			if len(exp) == 1 && exp[0] != ip.port.Opposite() {
				ip.rx.ForceDrop(vc, cycle, link.NACKMisroute, uint64(f.PID), f.Seq)
				return
			}
		}
	}

	if ivc.buf.Full() {
		// Flow control forbids this for healthy traffic; it happens only
		// when an unprotected logic fault (AC-off ablation) has corrupted
		// wormhole state. Drop and reclaim the slot.
		r.wormholeViolations++
		ip.rx.ReturnCredit(vc)
		r.emitDrop(cycle, ip.port, vc, f, trace.DropWormhole)
		return
	}
	if ivc.occupied() == 0 {
		ivc.lastProgress = cycle
	}
	ivc.buf.Push(f)
	if r.sparse {
		// The single dead->live site: every other mutation that keeps a VC
		// live (VA/SA state changes, recovery parking, misroute recall)
		// operates on a VC that already holds flits or a wormhole.
		r.markLive(ivc)
	}
	r.cfg.Events.BufWrites++
	if r.cfg.Bus.Enabled() {
		r.cfg.Bus.Emit(trace.Event{
			Cycle: cycle, Kind: trace.FlitBuffered,
			Node: int32(r.id), Port: int8(ip.port), VC: int8(vc),
			PID: uint64(f.PID), Seq: f.Seq,
		})
	}
}

// advance starts the pipeline for newly headed packets: an idle VC with a
// Head flit at its buffer front computes its route (the RT stage; folded
// into arrival by look-ahead for depths <= 3) and enters VA wait. Only a
// live VC can satisfy the idle-with-front condition, so the sparse path
// visits the live list (same ascending port-major order as the dense
// walk).
func (r *Router) advance(cycle uint64) {
	if r.sparse {
		for _, i := range r.liveList {
			ivc := r.flatVCs[i]
			r.advanceVC(cycle, r.in[ivc.port], ivc)
		}
		return
	}
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		ip := r.in[p]
		if ip == nil {
			continue
		}
		for _, ivc := range ip.vcs {
			r.advanceVC(cycle, ip, ivc)
		}
	}
}

func (r *Router) advanceVC(cycle uint64, ip *inPort, ivc *inputVC) {
	if ivc.state != vcIdle {
		return
	}
	f, ok := ivc.front()
	if !ok {
		return
	}
	if f.Type != flit.Head {
		// Stray flit with no wormhole: only possible when an
		// unprotected fault broke packet framing. Drop it.
		dropped, fromBuf := ivc.popFront()
		if fromBuf {
			ip.rx.ReturnCredit(ivc.idx)
		}
		r.strayFlits++
		r.wormholeViolations++
		if r.cfg.Bus.Enabled() {
			aux := trace.DequeuedStray
			if fromBuf {
				aux |= trace.DequeuedFromBuffer
			}
			r.cfg.Bus.Emit(trace.Event{
				Cycle: cycle, Kind: trace.FlitDequeued,
				Node: int32(r.id), Port: int8(ivc.port), VC: int8(ivc.idx),
				PID: uint64(dropped.PID), Seq: dropped.Seq, Aux: aux,
			})
		}
		r.emitDrop(cycle, ivc.port, ivc.idx, dropped, trace.DropStray)
		return
	}
	ivc.dst = flit.DecodeHeader(f.Word).Dst
	ivc.candidates = r.computeRoute(cycle, ivc)
	ivc.state = vcVAWait
	ivc.earliestVA = cycle + vaOffset(r.cfg.PipelineDepth)
}

// computeRoute runs the routing function for the packet resident in ivc,
// with RT-logic fault injection (§4.2: a transient fault misdirects the
// packet by replacing the candidate set).
func (r *Router) computeRoute(cycle uint64, ivc *inputVC) []topology.Port {
	r.cfg.Events.RTComputes++
	cands := r.cachedRoute(ivc.dst)
	if r.cfg.RTFault.Upset() {
		r.cfg.Counters.AddInjected(fault.RTLogic)
		cands = []topology.Port{topology.Port(r.cfg.RTFault.Pick(int(topology.NumPorts)))}
	}
	if r.cfg.Bus.Enabled() {
		var pid uint64
		var seq uint8
		if f, ok := ivc.front(); ok {
			pid, seq = uint64(f.PID), f.Seq
		}
		r.cfg.Bus.Emit(trace.Event{
			Cycle: cycle, Kind: trace.RouteComputed,
			Node: int32(r.id), Port: int8(ivc.port), VC: int8(ivc.idx),
			PID: pid, Seq: seq,
		})
	}
	return cands
}

// cachedRoute memoises Route(r.id, dst). The static routing functions
// are pure in (cur, dst): link health is consulted in legalCandidates,
// not here, so a cached candidate set stays valid across hard-fault
// changes. The fault-adaptive function's tables DO change at hard-fault
// boundaries; the reconfiguration controller calls FlushRouteCache on
// every router after each table rebuild. Cached slices are shared
// read-only — input VCs rebind candidates but never mutate them.
func (r *Router) cachedRoute(dst flit.NodeID) []topology.Port {
	if i := int(dst); i >= 0 && i < len(r.routeCache) {
		if c := r.routeCache[i]; c != nil {
			return c
		}
		c := r.cfg.Route.Route(r.id, dst)
		r.routeCache[i] = c
		return c
	}
	// A corrupted destination outside the node space (possible only in
	// unprotected ablations): fall through uncached.
	return r.cfg.Route.Route(r.id, dst)
}

// cachedNeighborRoute memoises Route(up, dst) for the arrival-direction
// consistency check, keyed by the arrival port (which fixes up).
func (r *Router) cachedNeighborRoute(p topology.Port, up, dst flit.NodeID) []topology.Port {
	i := int(dst)
	if i < 0 || i >= len(r.routeCache) {
		return r.cfg.Route.Route(up, dst)
	}
	cache := r.neighborRoute[p]
	if cache == nil {
		cache = make([][]topology.Port, len(r.routeCache))
		r.neighborRoute[p] = cache
	}
	if c := cache[i]; c != nil {
		return c
	}
	c := r.cfg.Route.Route(up, dst)
	cache[i] = c
	return c
}

// legalCandidates filters the RT candidate set down to ports that the VC
// allocator's state information permits: existing, un-faulted links, and
// Local only for packets that have arrived (§4.2 — the VA "is aware of
// blocked links or links which are not permitted due to physical
// constraints").
func (r *Router) legalCandidates(ivc *inputVC) []topology.Port {
	// Returns the reusable scratch buffer; callers consume it before the
	// next legalCandidates call on this router.
	legal := r.scratchLegal[:0]
	for _, p := range ivc.candidates {
		if !p.Valid() {
			continue
		}
		if p == topology.Local {
			if ivc.dst == r.id && r.out[p] != nil {
				legal = append(legal, p)
			}
			continue
		}
		if r.out[p] != nil && r.cfg.Topo.LinkUp(r.id, p) {
			legal = append(legal, p)
		}
	}
	return legal
}

// existingBindings snapshots the VA state table for the comparator. The
// returned slice is a reusable scratch buffer, consumed synchronously.
func (r *Router) existingBindings() []ac.Binding {
	bs := r.scratchBind[:0]
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		op := r.out[p]
		if op == nil {
			continue
		}
		for v := range op.vcs {
			if op.vcs[v].busy {
				bs = append(bs, ac.Binding{
					InPort: op.vcs[v].inPort, InVC: op.vcs[v].inVC,
					OutPort: p, OutVC: v,
				})
			}
		}
	}
	return bs
}

// allocateVA runs the VC allocator: each waiting header arbitrates for a
// free output VC on one of its candidate ports. Fresh allocations are
// screened by the Allocation Comparator (§4.1). A VA-waiting VC is never
// dead (its wormhole keeps it non-idle), so the sparse path visits the
// live list rotated at the same round-robin origin as the dense walk —
// identical visit order over the VCs that can request, hence identical
// grants, event counts, and fault-injector draws.
func (r *Router) allocateVA(cycle uint64) {
	n := r.inputVCCount()
	if r.sparse {
		split := sort.SearchInts(r.liveList, r.vaRR%n)
		for _, i := range r.liveList[split:] {
			r.tryVA(cycle, r.flatVCs[i])
		}
		for _, i := range r.liveList[:split] {
			r.tryVA(cycle, r.flatVCs[i])
		}
	} else {
		for i := 0; i < n; i++ {
			if ivc := r.inputVCAt((r.vaRR + i) % n); ivc != nil {
				r.tryVA(cycle, ivc)
			}
		}
	}
	r.vaRR++
}

// tryVA considers one input VC for VC allocation this cycle.
func (r *Router) tryVA(cycle uint64, ivc *inputVC) {
	if ivc.state != vcVAWait || cycle < ivc.earliestVA {
		return
	}
	if r.inRecovery && ivc.port == topology.Local {
		// A recovering node admits no new traffic from its own PE
		// (§3.2.1): injected packets would consume the recovery slack.
		return
	}
	if _, ok := ivc.front(); !ok {
		return
	}
	r.cfg.Events.VAAllocs++

	legal := r.legalCandidates(ivc)
	if len(legal) == 0 {
		// Every candidate is blocked, missing, or physically
		// impossible: the VA state info has caught a misdirection
		// (§4.2). Re-route with a one-cycle penalty.
		r.cfg.Counters.AddCorrected(fault.RTLogic)
		ivc.candidates = r.computeRoute(cycle, ivc)
		ivc.earliestVA = cycle + 1
		return
	}

	grantPort, grantVC := topology.Port(0), -1
	for _, p := range legal {
		if r.out[p].downstreamRecovering && !ivc.member && ivc.blockedFor(cycle) < 4*r.cfg.Cthres {
			// §3.2.1: "no new packets are allowed to enter the
			// transmission buffers that are involved in the deadlock
			// recovery." Deadlock members — packets the detection
			// probes ran through — must still advance (their advance
			// IS the recovery), but fresh traffic would consume the
			// slack the recovery created.
			continue
		}
		if v := r.out[p].freeVC(r.vaRR); v >= 0 {
			grantPort, grantVC = p, v
			break
		}
	}
	if grantVC < 0 {
		return // all candidate VCs reserved; retry next cycle
	}

	b := ac.Binding{InPort: ivc.port, InVC: ivc.idx, OutPort: grantPort, OutVC: grantVC}
	corrupted := false
	if r.cfg.VAFault.Upset() {
		r.cfg.Counters.AddInjected(fault.VALogic)
		b = r.corruptBinding(b)
		corrupted = true
	}

	if r.cfg.ACEnabled {
		r.cfg.Events.ACChecks++
		if v := ac.CheckVA(b, ivc.candidates, r.cfg.VCs, int(topology.NumPorts), r.existingBindings()); v != ac.None {
			// Invalidate the previous allocation and redo it: one
			// cycle of latency (§4.1). In routers of depth <= 2 the
			// speculative transmission must also be squashed with an
			// ignore-NACK to the neighbors.
			r.cfg.Counters.AddCorrected(fault.VALogic)
			if r.cfg.PipelineDepth <= 2 {
				r.cfg.Events.NACKs++
			}
			if r.cfg.Bus.Enabled() {
				r.cfg.Bus.Emit(trace.Event{
					Cycle: cycle, Kind: trace.ACMismatch,
					Node: int32(r.id), Port: int8(ivc.port), VC: int8(ivc.idx),
					Aux: trace.AuxVA,
				})
			}
			ivc.earliestVA = cycle + 1
			return
		}
	}

	// Commit (possibly corrupt, if the AC is disabled).
	ivc.state = vcActive
	ivc.outPort, ivc.outVC = b.OutPort, b.OutVC
	if int(b.OutPort) < int(topology.NumPorts) && r.out[b.OutPort] != nil && b.OutVC >= 0 && b.OutVC < r.cfg.VCs {
		r.out[b.OutPort].vcs[b.OutVC] = outputVC{busy: true, inPort: ivc.port, inVC: ivc.idx, corrupt: corrupted}
	}
	if saAfterVA(r.cfg.PipelineDepth) {
		ivc.earliestSA = cycle + 1
	} else {
		ivc.earliestSA = cycle
	}
	if corrupted {
		r.cfg.Counters.AddUndetected(fault.VALogic)
	}
	if r.cfg.Bus.Enabled() {
		var pid uint64
		if f, ok := ivc.front(); ok {
			pid = uint64(f.PID)
		}
		r.cfg.Bus.Emit(trace.Event{
			Cycle: cycle, Kind: trace.VCAllocated,
			Node: int32(r.id), Port: int8(b.OutPort), VC: int8(b.OutVC), PID: pid,
		})
	}
}

// corruptBinding damages a fresh VA allocation the way a single-event
// upset would (§4.1 scenarios 1-3 and 4b).
func (r *Router) corruptBinding(b ac.Binding) ac.Binding {
	switch r.cfg.VAFault.Pick(3) {
	case 0: // scenario 1: invalid output VC id
		b.OutVC = r.cfg.VCs + r.cfg.VAFault.Pick(2)
	case 1: // scenarios 2/3: collide with a reserved output VC
		if ex := r.existingBindings(); len(ex) > 0 {
			e := ex[r.cfg.VAFault.Pick(len(ex))]
			b.OutPort, b.OutVC = e.OutPort, e.OutVC
		} else {
			b.OutVC = r.cfg.VCs
		}
	default: // scenario 4b: VC on a physical channel other than intended
		shift := 1 + r.cfg.VAFault.Pick(int(topology.NumPorts)-1)
		b.OutPort = topology.Port((int(b.OutPort) + shift) % int(topology.NumPorts))
	}
	return b
}

// saRequest is one switch-allocation requester this cycle.
type saRequest struct {
	ivc   *inputVC
	upset bool
}

// saRequestFor registers one eligible SA requester: it counts the
// allocation attempt, draws the fault injector, and returns the updated
// (winner, won) pair. Losing requesters hit by an upset are the benign
// case (a) of §4.3 — the fault denied them nothing.
func (r *Router) saRequestFor(ivc *inputVC, winner saRequest, won bool) (saRequest, bool) {
	r.cfg.Events.SAAllocs++
	req := saRequest{ivc: ivc}
	if r.cfg.SAFault.Upset() {
		r.cfg.Counters.AddInjected(fault.SALogic)
		req.upset = true
	}
	if !won {
		return req, true
	}
	if req.upset {
		r.cfg.Counters.AddUndetected(fault.SALogic)
	}
	// Non-winning clean requesters simply retry next cycle.
	return winner, won
}

// allocateSA arbitrates the crossbar per output port, screens the grant
// vector with the Allocation Comparator (§4.3), and performs switch +
// link traversal for the winners.
func (r *Router) allocateSA(cycle uint64) {
	grantedInput := [topology.NumPorts]bool{}
	grants := r.scratchGrants[:0]
	grantReqs := r.scratchReqs[:0]

	if r.sparse {
		// One pass over the live list buckets the active VCs by output
		// port; VA ran earlier this tick, so bindings are settled, and
		// grants execute only after every port is arbitrated, so no
		// state moves under the buckets mid-pass.
		for p := range r.saCand {
			r.saCand[p] = r.saCand[p][:0]
		}
		for _, fi := range r.liveList {
			ivc := r.flatVCs[fi]
			if ivc.state == vcActive && ivc.outPort >= 0 && ivc.outPort < topology.NumPorts {
				r.saCand[ivc.outPort] = append(r.saCand[ivc.outPort], fi)
			}
		}
	}

	for i := 0; i < int(topology.NumPorts); i++ {
		p := topology.Port((r.outRR + i) % int(topology.NumPorts))
		op := r.out[p]
		if op == nil {
			continue
		}
		if op.tx.HasReplay() {
			// Retransmission has channel priority (§3.1).
			op.tx.TickReplay(cycle)
			continue
		}
		// The winner is held by value: taking a loop-local request's
		// address would heap-allocate it every allocation round. An
		// SA-eligible VC is vcActive, hence live, so the sparse path
		// rotates over the live list at the port's round-robin origin —
		// the same requester sequence as the dense walk.
		var winner saRequest
		won := false
		n := r.inputVCCount()
		if r.sparse {
			cand := r.saCand[p]
			split := sort.SearchInts(cand, op.saRR%n)
			for _, fi := range cand[split:] {
				if ivc := r.flatVCs[fi]; r.eligibleForSA(ivc, p, cycle) && !grantedInput[ivc.port] {
					winner, won = r.saRequestFor(ivc, winner, won)
				}
			}
			for _, fi := range cand[:split] {
				if ivc := r.flatVCs[fi]; r.eligibleForSA(ivc, p, cycle) && !grantedInput[ivc.port] {
					winner, won = r.saRequestFor(ivc, winner, won)
				}
			}
		} else {
			for j := 0; j < n; j++ {
				ivc := r.inputVCAt((op.saRR + j) % n)
				if ivc == nil || !r.eligibleForSA(ivc, p, cycle) || grantedInput[ivc.port] {
					continue
				}
				winner, won = r.saRequestFor(ivc, winner, won)
			}
		}
		if !won {
			continue
		}
		op.saRR++
		if winner.upset && !winner.ivc.upsetWins(r) {
			// Case (a) of §4.3: the upset suppressed the grant. The flit
			// keeps requesting; one cycle lost, nothing to correct.
			r.cfg.Counters.AddUndetected(fault.SALogic)
			continue
		}
		grantedInput[winner.ivc.port] = true
		grants = append(grants, ac.Grant{InPort: winner.ivc.port, InVC: winner.ivc.idx, OutPort: p})
		grantReqs = append(grantReqs, winner)
	}
	r.outRR++

	// Inject grant-vector corruption for upset winners (cases b-d).
	for i := range grants {
		if grantReqs[i].upset {
			grants[i] = r.corruptGrant(grants, i)
		}
	}

	// Allocation Comparator screen (§4.3): cancel violating grants; the
	// flits retry next cycle (one-cycle latency overhead) and, in the
	// parallelised pipelines, neighbors are NACKed to ignore the squashed
	// transmission.
	keep := grants
	if r.cfg.ACEnabled {
		r.cfg.Events.ACChecks++
		viol := ac.CheckSAInto(r.scratchViol[:0], grants, int(topology.NumPorts), r.lookupBinding)
		keep = keep[:0]
		kept := r.scratchKept[:0]
		for i, v := range viol {
			if v == ac.None {
				keep = append(keep, grants[i])
				kept = append(kept, grantReqs[i])
				continue
			}
			r.cfg.Counters.AddCorrected(fault.SALogic)
			r.cfg.Events.NACKs++
			if r.cfg.Bus.Enabled() {
				r.cfg.Bus.Emit(trace.Event{
					Cycle: cycle, Kind: trace.ACMismatch,
					Node: int32(r.id), Port: int8(grants[i].InPort), VC: int8(grants[i].InVC),
					Aux: trace.AuxSA,
				})
			}
		}
		grantReqs = kept
	}

	for i, g := range keep {
		r.executeGrant(cycle, g, grantReqs[i].upset && !r.cfg.ACEnabled)
	}
}

// upsetWins decides whether an SA upset on a winning request corrupts the
// grant (cases b-d) rather than suppressing it (case a). Drawn from the
// injector stream to stay deterministic.
func (v *inputVC) upsetWins(r *Router) bool { return r.cfg.SAFault.Pick(4) != 0 }

// corruptGrant damages grant i the way §4.3 describes: misdirection to a
// wrong output (b), collision with another grant's output (c), or
// multicast is approximated as misdirection of the duplicate (d).
func (r *Router) corruptGrant(grants []ac.Grant, i int) ac.Grant {
	g := grants[i]
	switch r.cfg.SAFault.Pick(2) {
	case 0: // wrong output port
		shift := 1 + r.cfg.SAFault.Pick(int(topology.NumPorts)-1)
		g.OutPort = topology.Port((int(g.OutPort) + shift) % int(topology.NumPorts))
	default: // crossbar collision with another granted output
		if len(grants) > 1 {
			j := r.cfg.SAFault.Pick(len(grants) - 1)
			if j >= i {
				j++
			}
			g.OutPort = grants[j].OutPort
		} else {
			shift := 1 + r.cfg.SAFault.Pick(int(topology.NumPorts)-1)
			g.OutPort = topology.Port((int(g.OutPort) + shift) % int(topology.NumPorts))
		}
	}
	return g
}

// lookupBinding resolves the VA state entry for an input VC, for the
// comparator's SA/VA agreement check.
func (r *Router) lookupBinding(inPort topology.Port, inVC int) (ac.Binding, bool) {
	if r.in[inPort] == nil || inVC >= len(r.in[inPort].vcs) {
		return ac.Binding{}, false
	}
	ivc := r.in[inPort].vcs[inVC]
	if ivc.state != vcActive {
		return ac.Binding{}, false
	}
	return ac.Binding{InPort: inPort, InVC: inVC, OutPort: ivc.outPort, OutVC: ivc.outVC}, true
}

// eligibleForSA reports whether ivc may request output port p this cycle.
func (r *Router) eligibleForSA(ivc *inputVC, p topology.Port, cycle uint64) bool {
	if ivc.state != vcActive || ivc.outPort != p {
		return false
	}
	if ivc.outVC < 0 || ivc.outVC >= r.cfg.VCs {
		return false // scenario-1 VA corruption left the packet stranded
	}
	f, ok := ivc.front()
	if !ok {
		return false
	}
	if f.Type == flit.Head && cycle < ivc.earliestSA {
		return false
	}
	if r.out[p].tx.Credits(ivc.outVC) <= 0 {
		r.creditStalls++ // downstream backpressure is the only blocker
		return false
	}
	return true
}

// executeGrant pops the granted flit, traverses the crossbar, and puts it
// on the wire. corruptedPath marks an uncaught SA corruption (AC-off
// ablation): the flit goes to the corrupted grant's port if that is
// physically possible, otherwise it is lost.
func (r *Router) executeGrant(cycle uint64, g ac.Grant, corrupted bool) {
	ivc := r.in[g.InPort].vcs[g.InVC]
	f, fromBuf := ivc.popFront()
	if fromBuf {
		r.in[g.InPort].rx.ReturnCredit(g.InVC)
	}
	r.cfg.Events.BufReads++
	r.cfg.Events.XbTraversals++
	if r.cfg.Bus.Enabled() {
		var aux uint64
		if fromBuf {
			aux = trace.DequeuedFromBuffer
		}
		r.cfg.Bus.Emit(trace.Event{
			Cycle: cycle, Kind: trace.FlitDequeued,
			Node: int32(r.id), Port: int8(g.InPort), VC: int8(g.InVC),
			PID: uint64(f.PID), Seq: f.Seq, Aux: aux,
		})
	}
	if r.cfg.XbarFault.Upset() {
		// §4.4: a transient fault in the crossbar flips one datapath bit;
		// the next hop's SEC/DED unit corrects it, so the upset is benign
		// by construction.
		r.cfg.Counters.AddInjected(fault.XbarError)
		r.cfg.Counters.AddCorrected(fault.XbarError)
		f.Word = ecc.FlipDataBit(f.Word, r.cfg.XbarFault.Pick(64))
	}
	ivc.lastProgress = cycle
	ivc.probeOutstanding = false

	op := r.out[g.OutPort]
	vc := ivc.outVC
	switch {
	case op == nil || vc >= r.cfg.VCs:
		// Uncaught corruption pointed nowhere usable: the flit is lost.
		r.strayFlits++
		r.cfg.Counters.AddUndetected(fault.SALogic)
		r.emitDrop(cycle, g.InPort, g.InVC, f, trace.DropSALost)
	case corrupted && op.tx.Credits(vc) <= 0:
		r.strayFlits++
		r.cfg.Counters.AddUndetected(fault.SALogic)
		r.emitDrop(cycle, g.InPort, g.InVC, f, trace.DropSALost)
	case op.tx.HasReplay():
		// The corrupted grant targets a port busy replaying; flit lost.
		r.strayFlits++
		r.cfg.Counters.AddUndetected(fault.SALogic)
		r.emitDrop(cycle, g.InPort, g.InVC, f, trace.DropSALost)
	default:
		if r.cfg.DeadSend != nil && g.OutPort != topology.Local && r.cfg.FaultMap != nil &&
			r.cfg.FaultMap.LinkDead(r.id, g.OutPort) {
			r.cfg.DeadSend(cycle, r.id, g.OutPort, vc, uint64(f.PID))
		}
		op.tx.Send(f, vc, cycle)
		if corrupted {
			r.cfg.Counters.AddUndetected(fault.SALogic)
		}
	}

	if f.Type == flit.Tail {
		// Tail releases the wormhole (close the VA state entry and free
		// the input VC for the next packet).
		if ivc.outPort.Valid() && r.out[ivc.outPort] != nil && ivc.outVC < r.cfg.VCs {
			r.out[ivc.outPort].vcs[ivc.outVC] = outputVC{}
		}
		ivc.reset(cycle)
	}
}

// emitDrop publishes a terminal flit-loss event with its reason code, so
// conservation audits can account for every discarded flit.
func (r *Router) emitDrop(cycle uint64, port topology.Port, vc int, f flit.Flit, reason uint64) {
	if r.cfg.Bus.Enabled() {
		r.cfg.Bus.Emit(trace.Event{
			Cycle: cycle, Kind: trace.FlitDropped,
			Node: int32(r.id), Port: int8(port), VC: int8(vc),
			PID: uint64(f.PID), Seq: f.Seq, Aux: reason,
		})
	}
}

// inputVCCount and inputVCAt flatten (port, vc) pairs for round-robin
// iteration.
func (r *Router) inputVCCount() int { return int(topology.NumPorts) * r.cfg.VCs }

func (r *Router) inputVCAt(i int) *inputVC { return r.flatVCs[i] }

// BufferOccupancy sums input VC buffer occupancy and capacity (the
// transmission-buffer utilization metric of Fig. 8). Capacity is fixed at
// attachment time and cached; a dead VC holds nothing, so the sparse path
// sums occupancy over the live mask only.
func (r *Router) BufferOccupancy() (occupied, capacity int) {
	if !r.bufCapKnown {
		for p := topology.Port(0); p < topology.NumPorts; p++ {
			if r.in[p] == nil {
				continue
			}
			for _, ivc := range r.in[p].vcs {
				r.bufCapTotal += ivc.buf.Cap()
			}
		}
		r.bufCapKnown = true
	}
	capacity = r.bufCapTotal
	if r.sparse {
		for m := r.liveVCs; m != 0; m &= m - 1 {
			occupied += r.flatVCs[bits.TrailingZeros64(m)].buf.Len()
		}
		return occupied, capacity
	}
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		if r.in[p] == nil {
			continue
		}
		for _, ivc := range r.in[p].vcs {
			occupied += ivc.buf.Len()
		}
	}
	return occupied, capacity
}

// ShifterOccupancy sums retransmission-buffer occupancy and capacity (the
// metric of Fig. 9). Flits parked during deadlock recovery conceptually
// occupy the shifters (that is the resource-sharing point of §3.2), so
// pending queues count as occupancy; a parked queue keeps its VC live, so
// the sparse path scans the live mask for them.
func (r *Router) ShifterOccupancy() (occupied, capacity int) {
	if !r.shCapKnown {
		for p := topology.Port(0); p < topology.NumPorts; p++ {
			if r.out[p] != nil {
				_, c := r.out[p].tx.ShifterOccupancy()
				r.shCapTotal += c
			}
		}
		r.shCapKnown = true
	}
	capacity = r.shCapTotal
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		if r.out[p] != nil {
			occupied += r.out[p].tx.ShifterOccupied()
		}
	}
	if r.sparse {
		for m := r.liveVCs; m != 0; m &= m - 1 {
			occupied += len(r.flatVCs[bits.TrailingZeros64(m)].pending)
		}
		return occupied, capacity
	}
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		if r.in[p] != nil {
			for _, ivc := range r.in[p].vcs {
				occupied += len(ivc.pending)
			}
		}
	}
	return occupied, capacity
}

// InRecovery reports whether the router is in deadlock-recovery mode.
func (r *Router) InRecovery() bool { return r.inRecovery }

// Recoveries returns how many times this router entered recovery mode.
func (r *Router) Recoveries() uint64 { return r.recoveries }

// ProbesSent returns how many suspicion probes this router originated.
func (r *Router) ProbesSent() uint64 { return r.probesSent }

// WormholeViolations returns how many flits were dropped due to corrupted
// wormhole state (nonzero only with unprotected logic faults).
func (r *Router) WormholeViolations() uint64 { return r.wormholeViolations }

// StrayFlits returns how many flits were lost to uncaught misdirections.
func (r *Router) StrayFlits() uint64 { return r.strayFlits }

// CreditStalls returns the cumulative count of switch-allocation
// attempts denied purely by exhausted downstream credits — the
// backpressure gauge of the metrics registry.
func (r *Router) CreditStalls() uint64 { return r.creditStalls }

// ProbeSeenLen returns the number of live probe-memory entries (Rule 3
// validity records). Soak tests assert it stays bounded by the pruning
// window.
func (r *Router) ProbeSeenLen() int { return len(r.probeSeen) }

// DebugVCs renders a one-line summary of every non-idle input VC: state,
// occupancy (buffer+pending), blocked time, and allocation. Test tooling.
func (r *Router) DebugVCs(cycle uint64) string {
	s := ""
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		if r.in[p] == nil {
			continue
		}
		for _, ivc := range r.in[p].vcs {
			if ivc.state == vcIdle && ivc.occupied() == 0 {
				continue
			}
			st := "I"
			switch ivc.state {
			case vcVAWait:
				st = "V"
			case vcActive:
				st = "A"
			}
			s += fmt.Sprintf("[%v%d %s occ%d pend%d blk%d ->%v/%d] ", p, ivc.idx, st, ivc.buf.Len(), len(ivc.pending), ivc.blockedFor(cycle), ivc.outPort, ivc.outVC)
		}
	}
	return s
}

// CheckInvariants validates internal consistency: every busy output VC
// must be owned by an active input VC bound back to it, and every active
// input VC's binding must be marked busy. It returns a description of the
// first violation, or "". Test tooling.
func (r *Router) CheckInvariants() string {
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		op := r.out[p]
		if op == nil {
			continue
		}
		for v := range op.vcs {
			if !op.vcs[v].busy {
				continue
			}
			own := op.vcs[v]
			if r.in[own.inPort] == nil || own.inVC >= len(r.in[own.inPort].vcs) {
				return fmt.Sprintf("router %d: out %v/%d owned by missing VC %v/%d", r.id, p, v, own.inPort, own.inVC)
			}
			ivc := r.in[own.inPort].vcs[own.inVC]
			if ivc.state != vcActive || ivc.outPort != p || ivc.outVC != v {
				return fmt.Sprintf("router %d: out %v/%d owner %v/%d in state %d bound to %v/%d (leak)",
					r.id, p, v, own.inPort, own.inVC, ivc.state, ivc.outPort, ivc.outVC)
			}
		}
	}
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		if r.in[p] == nil {
			continue
		}
		for _, ivc := range r.in[p].vcs {
			if ivc.state != vcActive {
				continue
			}
			if !ivc.outPort.Valid() || r.out[ivc.outPort] == nil || ivc.outVC < 0 || ivc.outVC >= r.cfg.VCs {
				continue // deliberately stranded by an uncaught fault
			}
			ov := r.out[ivc.outPort].vcs[ivc.outVC]
			if !ov.busy || ov.inPort != p || ov.inVC != ivc.idx {
				return fmt.Sprintf("router %d: active VC %v/%d binding %v/%d not reserved for it (busy=%v owner=%v/%d)",
					r.id, p, ivc.idx, ivc.outPort, ivc.outVC, ov.busy, ov.inPort, ov.inVC)
			}
		}
	}
	return ""
}

// VCBufLen returns the occupancy of one input VC buffer — the flits that
// still hold upstream credits. Parked (pending) flits are excluded: their
// credits were returned when recovery parked them. Invariant-checker
// inspection; 0 for unattached ports.
func (r *Router) VCBufLen(p topology.Port, vc int) int {
	ip := r.in[p]
	if ip == nil || vc < 0 || vc >= len(ip.vcs) {
		return 0
	}
	return ip.vcs[vc].buf.Len()
}

// EachResidentFlit visits every data flit currently held inside the
// router: input VC buffers and recovery-parked pending queues. Flits in
// output-side retransmission machinery are visited via the transmitters
// (EachRetained). Invariant-checker inspection.
func (r *Router) EachResidentFlit(fn func(flit.Flit)) {
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		if r.in[p] == nil {
			continue
		}
		for _, ivc := range r.in[p].vcs {
			for _, f := range ivc.buf.Snapshot() {
				fn(f)
			}
			for _, f := range ivc.pending {
				fn(f)
			}
		}
	}
}

// EachRetainedFlit visits every flit the router's transmitters can still
// resend (replay queues and retransmission shifters). Invariant-checker
// inspection.
func (r *Router) EachRetainedFlit(fn func(flit.Flit)) {
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		if r.out[p] != nil {
			r.out[p].tx.EachRetained(fn)
		}
	}
}

// AuditInvariants runs the per-cycle structural audit at a cycle boundary
// (clock = the cycle about to tick): the VA-binding consistency of
// CheckInvariants, every output port's retransmission-buffer soundness,
// and the probe-memory bound — pruning runs every probeSeenWindow cycles
// and discards entries older than the window, so no entry may be older
// than 3x the window (2x from pruning cadence plus slack for entries
// refreshed just before a prune). It returns a description of the first
// violation, or "".
func (r *Router) AuditInvariants(clock uint64) string {
	if s := r.CheckInvariants(); s != "" {
		return s
	}
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		if r.out[p] == nil {
			continue
		}
		if s := r.out[p].tx.AuditRetrans(clock); s != "" {
			return fmt.Sprintf("router %d out %v: %s", r.id, p, s)
		}
	}
	for k, seen := range r.probeSeen {
		if clock > seen && clock-seen > 3*probeSeenWindow {
			return fmt.Sprintf("router %d: probeSeen entry origin=%d aged %d cycles (bound %d) — prune leak",
				r.id, k.origin, clock-seen, 3*probeSeenWindow)
		}
	}
	return ""
}

// DebugWants lists, for each VA-waiting VC, its legal candidates and
// their output VC busy states. Test tooling.
func (r *Router) DebugWants() string {
	s := ""
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		if r.in[p] == nil {
			continue
		}
		for _, ivc := range r.in[p].vcs {
			if ivc.state != vcVAWait {
				continue
			}
			s += fmt.Sprintf("[%v%d dst%d wants", p, ivc.idx, ivc.dst)
			for _, c := range r.legalCandidates(ivc) {
				busy := "?"
				if r.out[c] != nil {
					busy = ""
					for v := range r.out[c].vcs {
						if r.out[c].vcs[v].busy {
							busy += "B"
						} else {
							busy += "-"
						}
					}
				}
				s += fmt.Sprintf(" %v:%s", c, busy)
			}
			s += "] "
		}
	}
	return s
}

// FindPacket lists where a packet's flits currently reside in this
// router: one entry per input VC holding them, with buffer/pending
// occupancy split. Trace tooling; O(ports x VCs x depth).
func (r *Router) FindPacket(pid flit.PacketID) []string {
	var out []string
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		if r.in[p] == nil {
			continue
		}
		for _, ivc := range r.in[p].vcs {
			inBuf, inPend := 0, 0
			for _, f := range ivc.buf.Snapshot() {
				if f.PID == pid {
					inBuf++
				}
			}
			for _, f := range ivc.pending {
				if f.PID == pid {
					inPend++
				}
			}
			if inBuf+inPend == 0 {
				continue
			}
			loc := fmt.Sprintf("%v%d[buf:%d", p, ivc.idx, inBuf)
			if inPend > 0 {
				loc += fmt.Sprintf(" parked:%d", inPend)
			}
			loc += "]"
			out = append(out, loc)
		}
	}
	return out
}
