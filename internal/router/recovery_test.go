package router

import (
	"testing"

	"ftnoc/internal/fault"
	"ftnoc/internal/flit"
)

// These white-box tests inject exactly one scripted logic fault and check
// the paper's recovery behaviour and latency accounting (§4.1-§4.3).

// A single RT misdirection under deterministic routing, aimed at a
// legal-but-wrong port, must be caught by the neighbor's consistency
// check and recovered by recall + re-route (§4.2), delivering the packet
// intact with a bounded penalty.
func TestMisrouteRecoveryEndToEnd(t *testing.T) {
	// Build a 1x3 mesh row: src router 0, middle router 1, dst router 2.
	// Packet 0 -> 2 should head East at router 1; the fault misdirects
	// the routing computation at router 0... router 0's only legal wrong
	// choice from the fault is caught by the VA (edge ports), so place
	// the fault at the middle router where West is legal-but-wrong.
	p := newRow(t)
	// Router 1's first routing computation upsets; Pick(5)=4 selects West
	// (ports are L,N,E,S,W = 0..4) — legal at router 1, wrong for dst 2.
	p.b.cfg.RTFault = fault.NewScriptedLogicInjector(fault.RTLogic, []bool{true}, []int{4})

	p.autoSink()
	p.driveSource(flit.Packet{ID: 1, Src: 0, Dst: 2, Size: 4}.Flits())
	for i := 0; i < 40; i++ {
		p.k.Step()
		p.checkInvariants(t)
	}
	if len(p.arrived) != 4 {
		t.Fatalf("arrived %d flits, want 4", len(p.arrived))
	}
	for i, f := range p.arrived {
		if int(f.Seq) != i {
			t.Fatalf("order broken: %v", p.arrived)
		}
	}
	if got := p.ctr.Corrected[fault.RTLogic]; got != 1 {
		t.Fatalf("corrected %d RT faults, want 1", got)
	}
	// Fault-free head arrival is cycle 10 (3 routers x 3 stages + wire);
	// the misroute costs the West round trip + recall + re-route.
	if p.arrivedAt[0] <= 10 || p.arrivedAt[0] > 22 {
		t.Fatalf("head arrived at %d; expected a bounded misroute penalty after 10", p.arrivedAt[0])
	}
}

// A single VA upset is invalidated by the AC within the cycle and retried:
// one cycle of added latency, nothing corrupted (§4.1).
func TestVAUpsetSingleCyclePenalty(t *testing.T) {
	clean := newPair(t, 3)
	clean.autoSink()
	clean.driveSource(flit.Packet{ID: 1, Src: 0, Dst: 1, Size: 2}.Flits())
	clean.k.Run(20)

	faulty := newPair(t, 3)
	// First VA allocation at router a upsets (scenario 1: invalid VC).
	faulty.a.cfg.VAFault = fault.NewScriptedLogicInjector(fault.VALogic, []bool{true}, []int{0})
	faulty.autoSink()
	faulty.driveSource(flit.Packet{ID: 1, Src: 0, Dst: 1, Size: 2}.Flits())
	faulty.k.Run(20)

	if len(clean.arrived) != 2 || len(faulty.arrived) != 2 {
		t.Fatalf("arrivals: clean %d faulty %d", len(clean.arrived), len(faulty.arrived))
	}
	delta := faulty.arrivedAt[0] - clean.arrivedAt[0]
	if delta != 1 {
		t.Fatalf("VA upset cost %d cycles, want exactly 1 (§4.1)", delta)
	}
	if faulty.ctr.Corrected[fault.VALogic] != 1 {
		t.Fatalf("corrected %d VA upsets, want 1", faulty.ctr.Corrected[fault.VALogic])
	}
}

// A single SA upset that corrupts the winning grant is squashed by the AC
// and the flit retries next cycle (§4.3).
func TestSAUpsetSquashedByAC(t *testing.T) {
	clean := newPair(t, 3)
	clean.autoSink()
	clean.driveSource(flit.Packet{ID: 1, Src: 0, Dst: 1, Size: 2}.Flits())
	clean.k.Run(20)

	faulty := newPair(t, 3)
	// The first SA request at router a upsets; pick 1.. makes upsetWins
	// true and misdirects the grant.
	faulty.a.cfg.SAFault = fault.NewScriptedLogicInjector(fault.SALogic, []bool{true}, []int{1})
	faulty.autoSink()
	faulty.driveSource(flit.Packet{ID: 1, Src: 0, Dst: 1, Size: 2}.Flits())
	faulty.k.Run(20)

	if len(faulty.arrived) != 2 {
		t.Fatalf("arrived %d flits, want 2", len(faulty.arrived))
	}
	if faulty.ctr.Corrected[fault.SALogic] != 1 {
		t.Fatalf("corrected %d SA upsets, want 1", faulty.ctr.Corrected[fault.SALogic])
	}
	delta := faulty.arrivedAt[0] - clean.arrivedAt[0]
	if delta != 1 {
		t.Fatalf("SA upset cost %d cycles, want exactly 1", delta)
	}
}

// newRow wires a 3x1 mesh (routers a=0, b=1, c=2) reusing the pair
// plumbing: a's local input injects, c's local output ejects.
type row struct {
	*pair
	c *Router
}

func newRow(t *testing.T) *row {
	t.Helper()
	// Build on the pair helper but with a 3-wide topology.
	p := buildGrid(t, 3, 1, 3)
	return &row{pair: p, c: p.extra[0]}
}
