package router

import (
	"testing"

	"ftnoc/internal/ecc"
	"ftnoc/internal/flit"
	"ftnoc/internal/topology"
)

// TestProbeCodecRoundTrip drives the probe word layout through its edge
// values: every field at zero, at its maximum, and at the sentinel
// values the protocol actually uses (AnyVC targets, maxProbeHops). The
// codec is load-bearing — a probe that decodes differently than it
// encoded misdirects deadlock recovery at another node.
func TestProbeCodecRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		m    probeMsg
	}{
		{"zero", probeMsg{}},
		{"typical", probeMsg{Origin: 5, OriginPort: topology.East, OriginVC: 1, TargetVC: 2, Hops: 3}},
		{"any-vc-target", probeMsg{Origin: 12, OriginPort: topology.North, OriginVC: 0, TargetVC: AnyVC, Hops: 1}},
		{"max-origin", probeMsg{Origin: 0xffff, OriginPort: topology.West, OriginVC: 0xff, TargetVC: 0xff, Hops: maxProbeHops}},
		{"max-hops", probeMsg{Origin: 63, OriginPort: topology.South, OriginVC: 7, TargetVC: 0, Hops: maxProbeHops}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			word, check := encodeProbe(tc.m)
			if got := decodeProbe(word); got != tc.m {
				t.Fatalf("decode(encode(%+v)) = %+v", tc.m, got)
			}
			// Probes travel ECC-protected like any flit; the encoded check
			// bits must match a fresh encode of the word.
			if want := ecc.Encode(word); check != want {
				t.Fatalf("check bits %#x, want %#x", check, want)
			}
			// The dedup key must identify the origin triple and nothing else:
			// two probes from the same blocked input differing only in target
			// or hops are the same suspicion.
			other := tc.m
			other.TargetVC ^= 0x5
			other.Hops++
			if tc.m.key() != other.key() {
				t.Fatalf("key depends on non-origin fields: %+v vs %+v", tc.m.key(), other.key())
			}
		})
	}
}

// TestProbeFlitCarriesType pins probeFlit's wrapping: the control flit
// type is preserved and the payload round-trips through the flit word.
func TestProbeFlitCarriesType(t *testing.T) {
	m := probeMsg{Origin: 9, OriginPort: topology.South, OriginVC: 2, TargetVC: AnyVC, Hops: 4}
	for _, ft := range []flit.Type{flit.Probe, flit.Activation} {
		f := probeFlit(ft, m)
		if f.Type != ft {
			t.Fatalf("flit type %v, want %v", f.Type, ft)
		}
		if got := decodeProbe(f.Word); got != m {
			t.Fatalf("payload mangled: %+v", got)
		}
	}
}

// TestPruneProbeSeenBoundaries pins the dedup-memory expiry contract:
// pruning runs only at probeSeenWindow boundaries, an entry exactly one
// window old survives (the Rule 3 validity window is inclusive), and
// anything older goes.
func TestPruneProbeSeenBoundaries(t *testing.T) {
	key := func(origin int) probeKey {
		return probeMsg{Origin: flit.NodeID(origin), OriginPort: topology.North, OriginVC: 1}.key()
	}
	boundary := uint64(6 * probeSeenWindow)
	cases := []struct {
		name     string
		cycle    uint64
		seen     uint64
		survives bool
	}{
		{"off-boundary-no-prune", boundary + 1, 1, true},
		{"exactly-one-window-old", boundary, boundary - probeSeenWindow, true},
		{"one-past-window", boundary, boundary - probeSeenWindow - 1, false},
		{"ancient", boundary, 1, false},
		{"fresh", boundary, boundary - 2, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := &Router{probeSeen: map[probeKey]uint64{key(3): tc.seen}}
			r.pruneProbeSeen(tc.cycle)
			if _, ok := r.probeSeen[key(3)]; ok != tc.survives {
				t.Fatalf("entry seen at %d, pruned at %d: survived=%v, want %v",
					tc.seen, tc.cycle, ok, tc.survives)
			}
		})
	}
}
