package router

import (
	"ftnoc/internal/ecc"
	"ftnoc/internal/flit"
	"ftnoc/internal/topology"
)

// AnyVC in a probe's target field means "any virtual channel of the input
// port": used when the suspected packet is still waiting for VC
// allocation, so the resource it blocks on is the whole downstream port.
const AnyVC = 0xff

// maxProbeHops bounds probe forwarding; a deadlock cycle cannot be longer
// than the node count, so a probe alive past that is stale and dropped.
const maxProbeHops = 255

// probeMsg is the payload of a Probe or Activation control flit: the
// origin of the suspicion (node + the input VC whose packet is blocked)
// and the VC buffer under suspicion at the receiving node (Rule 1 of
// §3.2.2). The origin triple lets Rule 3 validate activations and lets
// the origin recognise its own returning probe.
type probeMsg struct {
	Origin     flit.NodeID
	OriginPort topology.Port
	OriginVC   uint8
	TargetVC   uint8 // VC under suspicion at the receiver, or AnyVC
	Hops       uint8
}

// Probe word layout (bits, LSB first):
//
//	[0,16)  origin node
//	[16,20) origin port
//	[20,28) origin VC
//	[28,36) target VC
//	[36,44) hop count
func encodeProbe(m probeMsg) (word uint64, check uint8) {
	word = uint64(m.Origin) |
		uint64(m.OriginPort&0xf)<<16 |
		uint64(m.OriginVC)<<20 |
		uint64(m.TargetVC)<<28 |
		uint64(m.Hops)<<36
	return word, ecc.Encode(word)
}

func decodeProbe(word uint64) probeMsg {
	return probeMsg{
		Origin:     flit.NodeID(word & 0xffff),
		OriginPort: topology.Port(word >> 16 & 0xf),
		OriginVC:   uint8(word >> 20 & 0xff),
		TargetVC:   uint8(word >> 28 & 0xff),
		Hops:       uint8(word >> 36 & 0xff),
	}
}

// probeKey identifies a probe origin for the Rule 3 "seen before" check.
type probeKey struct {
	origin flit.NodeID
	port   topology.Port
	vc     uint8
}

func (m probeMsg) key() probeKey {
	return probeKey{origin: m.Origin, port: m.OriginPort, vc: m.OriginVC}
}

// probeFlit wraps a probeMsg into a control flit of the given type.
func probeFlit(t flit.Type, m probeMsg) flit.Flit {
	w, c := encodeProbe(m)
	return flit.Flit{Type: t, Word: w, Check: c}
}
