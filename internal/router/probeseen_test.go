package router

import (
	"testing"

	"ftnoc/internal/fault"
	"ftnoc/internal/flit"
	"ftnoc/internal/link"
	"ftnoc/internal/routing"
	"ftnoc/internal/stats"
	"ftnoc/internal/topology"
)

// Regression test: probe-memory entries must age out even while the node
// sits in recovery mode. Before the prune was hoisted ahead of the
// recovery branch in deadlock(), a node that spent many windows recovering
// never pruned, and probeSeen grew without bound in long soak and daemon
// runs.
func TestProbeSeenPrunedDuringRecovery(t *testing.T) {
	var ev stats.Events
	topo := topology.New(topology.Mesh, 2, 2)
	r := New(Config{
		ID: 0, Topo: topo, Route: routing.New(routing.XY, topo),
		VCs: 2, BufDepth: 4, PipelineDepth: 1,
		Protection: link.HBH, RecoveryEnabled: true,
		Events: &ev, Counters: fault.NewCounters(),
	})
	r.inRecovery = true
	stale := probeMsg{Origin: flit.NodeID(3), OriginPort: topology.North, OriginVC: 1}
	r.probeSeen[stale.key()] = 1 // recorded long ago
	fresh := probeMsg{Origin: flit.NodeID(2), OriginPort: topology.East, OriginVC: 0}
	cycle := uint64(4 * probeSeenWindow) // a prune boundary
	r.probeSeen[fresh.key()] = cycle - 2
	r.deadlock(cycle)
	if _, ok := r.probeSeen[stale.key()]; ok {
		t.Fatal("stale probe-memory entry survived pruning during recovery")
	}
	if _, ok := r.probeSeen[fresh.key()]; !ok {
		t.Fatal("fresh probe-memory entry pruned early")
	}
	if !r.inRecovery {
		t.Fatal("pruning must not end recovery by itself")
	}
}
