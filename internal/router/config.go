// Package router implements the paper's generic virtual-channel wormhole
// router (Fig. 1) with configurable 1/2/3/4-stage pipelines (Fig. 2), the
// hop-by-hop retransmission transmitter of §3.1, the probing deadlock
// detection and retransmission-buffer recovery of §3.2, and the
// Allocation Comparator protection of §4.
package router

import (
	"ftnoc/internal/fault"
	"ftnoc/internal/faultmap"
	"ftnoc/internal/flit"
	"ftnoc/internal/link"
	"ftnoc/internal/routing"
	"ftnoc/internal/stats"
	"ftnoc/internal/topology"
	"ftnoc/internal/trace"
)

// DefaultCthres is the default blocked-cycle threshold before a router
// probes for deadlock (Rule 1 of §3.2.2). The paper argues the exact
// value barely matters because probing eliminates false positives; the
// default is a few packet-service times.
const DefaultCthres = 48

// Config parameterises one router. The zero value is not usable;
// populate every non-optional field.
type Config struct {
	// ID is this router's node identifier.
	ID flit.NodeID
	// Topo is the network shape (shared, read-only).
	Topo *topology.Topology
	// Route is the routing function (shared, stateless).
	Route routing.Func
	// VCs is the number of virtual channels per physical channel
	// (3 on the paper's evaluation platform, §2.2).
	VCs int
	// BufDepth is the per-VC input buffer capacity in flits (the
	// "transmission buffer" T of §3.2.1).
	BufDepth int
	// PipelineDepth is the number of router pipeline stages, 1-4 (§2.1).
	// The paper's platform uses 3.
	PipelineDepth int
	// Protection selects the link-error handling scheme.
	Protection link.Protection
	// ACEnabled engages the Allocation Comparator (§4.1). Disabling it is
	// the ablation showing unprotected logic faults corrupting traffic.
	ACEnabled bool
	// XYCheck engages the neighbor-side routing-consistency check that
	// catches legal-but-wrong misdirections under deterministic routing
	// (§4.2). Meaningless (and disabled) for adaptive routing.
	XYCheck bool
	// RecoveryEnabled engages probing deadlock detection and
	// retransmission-buffer recovery (§3.2).
	RecoveryEnabled bool
	// Cthres is the blocked-cycle threshold before probing (Rule 1).
	// Zero selects DefaultCthres.
	Cthres uint64
	// Sparse enables the live-VC bitmask fast path: allocator and
	// deadlock scans visit only VCs that might hold or expect traffic,
	// instead of walking every (port, VC) pair each cycle. Results are
	// identical — the differential grids prove it — but the naive oracle
	// keeps the exhaustive dense walks, so the two implementations check
	// each other. Ignored (dense walks) when ports x VCs exceeds 64.
	Sparse bool

	// Fault injectors; nil disables a class.
	RTFault   *fault.LogicInjector
	VAFault   *fault.LogicInjector
	SAFault   *fault.LogicInjector
	XbarFault *fault.LogicInjector

	// Events and Counters are the shared accounting sinks (required).
	// Under the parallel kernel each router gets its own shard of both,
	// summed into run totals when results are read.
	Events   *stats.Events
	Counters *fault.Counters

	// EventsMirror, when non-nil, receives a copy of Events at the start
	// of every executed tick — after skipped-cycle catch-up, before the
	// cycle's own contributions. The parallel kernel's measurement
	// snapshots use it to reconstruct a router's counters as they stood
	// at a mid-cycle observation point the router has already raced past.
	EventsMirror *stats.Events

	// Bus is the structured event bus this router publishes to. Nil (or
	// a bus with no sinks) disables publishing at zero cost.
	Bus *trace.Bus

	// FaultMap, when non-nil, is this router's local view of hard faults,
	// maintained by the network's reconfiguration controller and
	// disseminated router-to-router at fault boundaries. The router only
	// reads it, and only for the dead-send invariant below; routing
	// decisions consult the topology's live-link state (legalCandidates)
	// and the rebuilt routing tables instead.
	FaultMap *faultmap.Map

	// DeadSend, when non-nil, fires whenever a flit is about to go on the
	// wire toward a link the local fault map marks dead. Such a send is an
	// invariant breach by construction — the boundary kill sweeps must
	// destroy every worm crossing a dying link before the map update
	// becomes visible — so the network wires this to the invariant
	// checker. Observation only: the flit is still sent (and self-drains
	// downstream), keeping the failure observable rather than masked.
	DeadSend func(cycle uint64, node flit.NodeID, port topology.Port, vc int, pid uint64)
}

func (c *Config) validate() {
	switch {
	case c.Topo == nil:
		panic("router: Config.Topo is required")
	case c.Route == nil:
		panic("router: Config.Route is required")
	case c.VCs < 1 || c.VCs > 250:
		panic("router: VCs must be in [1,250]")
	case c.BufDepth < 1:
		panic("router: BufDepth must be >= 1")
	case c.PipelineDepth < 1 || c.PipelineDepth > 4:
		panic("router: PipelineDepth must be in [1,4]")
	case c.Events == nil || c.Counters == nil:
		panic("router: Events and Counters are required")
	}
	if c.Protection == 0 {
		c.Protection = link.HBH
	}
	if c.Cthres == 0 {
		c.Cthres = DefaultCthres
	}
}

// vaOffset returns how many cycles after a header reaches the buffer
// front the VC allocator may first consider it, per pipeline depth: the
// stages in front of VA (§2.1 / Fig. 2).
func vaOffset(depth int) uint64 {
	switch depth {
	case 4:
		return 2 // dedicated RT stage, then VA
	case 3, 2:
		return 1 // look-ahead routing folds RT into arrival
	default:
		return 0 // single-stage router: fully parallel
	}
}

// saAfterVA reports whether switch allocation occupies the stage after VC
// allocation (depths 3-4) or is speculated in the same stage (depths 1-2,
// the Peh-Dally speculative architecture [15]).
func saAfterVA(depth int) bool { return depth >= 3 }
