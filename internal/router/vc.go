package router

import (
	"ftnoc/internal/flit"
	"ftnoc/internal/link"
	"ftnoc/internal/topology"
)

// vcState is the input virtual channel's pipeline state.
type vcState uint8

const (
	// vcIdle: no packet resident; a Head flit at the buffer front starts
	// a new packet.
	vcIdle vcState = iota
	// vcVAWait: route computed, waiting for an output VC (the VA stage).
	vcVAWait
	// vcActive: output VC held; flits stream through SA/crossbar until
	// the tail passes.
	vcActive
)

// inputVC is one virtual channel of one input port: the FIFO
// "transmission buffer", the packet's pipeline state, and the deadlock /
// misroute recovery queue.
type inputVC struct {
	port topology.Port
	idx  int
	// flat is this VC's index in the router's flattened (port, vc) order,
	// precomputed for the sparse live-set bitmask.
	flat int
	buf  *link.FIFO

	state      vcState
	dst        flit.NodeID
	candidates []topology.Port
	outPort    topology.Port
	outVC      int

	// Stage timing (§2.1): the earliest cycles VA/SA may serve the
	// resident header, derived from pipeline depth.
	earliestVA uint64
	earliestSA uint64

	// pending holds flits that already left the buffer but must be
	// (re)sent before anything else from this VC: flits parked in the
	// retransmission shifter during deadlock recovery (§3.2.1), or
	// recalled after a misroute NACK (§4.2). Their buffer credits were
	// returned when they left the buffer, so popping pending entries
	// returns no upstream credit.
	pending []flit.Flit

	// lastProgress is the last cycle a flit left this VC (or it was
	// empty); the blocked-time clock for deadlock detection (Rule 1).
	lastProgress uint64
	// probeOutstanding marks that this VC's suspicion probe is in flight.
	probeOutstanding bool
	// probeSentAt is when the last probe left, throttling re-probes.
	probeSentAt uint64
	// member marks the resident packet as part of a suspected deadlock
	// configuration: the deadlock-detection probes traverse exactly the
	// VCs of the cyclic dependency, so a VC a probe originated from or
	// passed through is a member. Members may allocate output VCs toward
	// recovering neighbors (their advance IS the recovery); non-members
	// are the "new packets" §3.2.1 excludes. Cleared when the packet's
	// tail leaves.
	member bool
}

// front returns the next flit this VC must emit.
func (v *inputVC) front() (flit.Flit, bool) {
	if len(v.pending) > 0 {
		return v.pending[0], true
	}
	return v.buf.Front()
}

// popFront removes the next flit. It reports whether the flit came from
// the buffer (and therefore frees a credited slot) rather than from the
// pending queue.
func (v *inputVC) popFront() (flit.Flit, bool) {
	if len(v.pending) > 0 {
		f := v.pending[0]
		v.pending = v.pending[1:]
		return f, false
	}
	f, ok := v.buf.Pop()
	if !ok {
		panic("router: popFront on empty VC")
	}
	return f, true
}

// occupied returns the number of flits resident in this VC (buffer +
// pending queue).
func (v *inputVC) occupied() int { return v.buf.Len() + len(v.pending) }

// blockedFor returns how many cycles this VC has gone without emitting a
// flit while holding at least one.
func (v *inputVC) blockedFor(cycle uint64) uint64 {
	if v.state == vcIdle || v.occupied() == 0 {
		return 0
	}
	if cycle < v.lastProgress {
		return 0
	}
	return cycle - v.lastProgress
}

// reset returns the VC to idle between packets.
func (v *inputVC) reset(cycle uint64) {
	v.state = vcIdle
	v.candidates = nil
	v.outPort = 0
	v.outVC = 0
	v.probeOutstanding = false
	v.member = false
	v.lastProgress = cycle
}

// outputVC tracks one output virtual channel's wormhole reservation.
type outputVC struct {
	busy    bool
	inPort  topology.Port
	inVC    int
	corrupt bool // AC-off ablation: binding damaged by an uncaught VA fault
}

// outputPort is the transmitter side of one physical channel.
type outputPort struct {
	port topology.Port
	tx   *link.Transmitter
	vcs  []outputVC
	// saRR rotates switch-allocation priority across (inPort, inVC)
	// requesters for fairness.
	saRR int
	// downstreamRecovering blocks new wormhole creation while the node at
	// the far end runs deadlock recovery (§3.2.1).
	downstreamRecovering bool
}

// freeVC returns the lowest-index free output VC at or after the rotor,
// or -1.
func (o *outputPort) freeVC(rotor int) int {
	n := len(o.vcs)
	for i := 0; i < n; i++ {
		v := (rotor + i) % n
		if !o.vcs[v].busy {
			return v
		}
	}
	return -1
}
