package campaign

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"ftnoc/internal/fault"
	"ftnoc/internal/kernel"
	"ftnoc/internal/link"
	"ftnoc/internal/network"
	"ftnoc/internal/routing"
	"ftnoc/internal/topology"
	"ftnoc/internal/traffic"
)

// specWire is the JSON wire form of a Spec — the request body nocd's
// POST /v1/campaigns accepts. Axis enums are spelled as their CLI names
// (routing "xy", pattern "NR", protection "hbh", topology "mesh") rather
// than numeric codes; `base` is a network.Config override document with
// the same semantics as a -config file (absent fields keep NewConfig
// defaults). Sizes may be given as "8x8" strings. The optional `kernel`
// field ("naive", "quiescent" or "event") picks the simulation
// scheduler; it never changes results, so it does not contribute to
// CanonicalHash (the Kernel field is excluded from canonical configs).
type specWire struct {
	Base           json.RawMessage `json:"base"`
	Sizes          []wireSize      `json:"sizes"`
	Topologies     []string        `json:"topologies"`
	Routings       []string        `json:"routings"`
	Protections    []string        `json:"protections"`
	Patterns       []string        `json:"patterns"`
	LinkErrorRates []float64       `json:"link_error_rates"`
	// Mortalities spells hard-fault schedules in the fault.ParseMortality
	// grammar ("none", "link:3E@1000,router:9@4000", "hazard:1e-3@500-0").
	Mortalities    []string  `json:"mortality_schedules"`
	InjectionRates []float64 `json:"injection_rates"`
	Seeds          int       `json:"seeds"`
	Workers        int       `json:"workers"`
	Invariants     bool      `json:"invariants"`
	Kernel         string    `json:"kernel"`
	KernelWorkers  int       `json:"kernel_workers,omitempty"`
}

// wireSize accepts either {"width":8,"height":8} or the string "8x8";
// it always marshals as the string form.
type wireSize struct{ Size }

func (w wireSize) MarshalJSON() ([]byte, error) {
	return json.Marshal(fmt.Sprintf("%dx%d", w.Width, w.Height))
}

func (w *wireSize) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		if _, err := fmt.Sscanf(s, "%dx%d", &w.Width, &w.Height); err != nil {
			return fmt.Errorf("bad size %q (want WxH)", s)
		}
		return nil
	}
	var obj struct {
		Width  int `json:"width"`
		Height int `json:"height"`
	}
	d := json.NewDecoder(bytes.NewReader(data))
	d.DisallowUnknownFields()
	if err := d.Decode(&obj); err != nil {
		return err
	}
	w.Width, w.Height = obj.Width, obj.Height
	return nil
}

// ParseSpec decodes a campaign spec from its JSON wire form. Unknown
// fields and unknown enum names are errors (the document is untrusted
// client input); the returned Spec still needs the usual per-point
// validation, which Run performs. Progress is a process-local
// attachment, not data, and has no wire representation.
func ParseSpec(data []byte) (Spec, error) {
	var w specWire
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return Spec{}, fmt.Errorf("campaign: decoding spec: %w", err)
	}

	base := network.NewConfig()
	if len(w.Base) > 0 {
		var err error
		if base, err = network.ReadConfig(bytes.NewReader(w.Base)); err != nil {
			return Spec{}, fmt.Errorf("campaign: spec base: %w", err)
		}
	}
	spec := Spec{
		Base:           base,
		LinkErrorRates: w.LinkErrorRates,
		InjectionRates: w.InjectionRates,
		Seeds:          w.Seeds,
		Workers:        w.Workers,
		Invariants:     w.Invariants,
	}
	if w.Kernel != "" {
		k, err := kernel.Parse(w.Kernel)
		if err != nil {
			return Spec{}, fmt.Errorf("campaign: spec kernel: %w", err)
		}
		spec.Base.Kernel = k
	}
	if w.KernelWorkers < 0 {
		return Spec{}, fmt.Errorf("campaign: spec kernel_workers must be >= 0, have %d", w.KernelWorkers)
	}
	spec.Base.KernelWorkers = w.KernelWorkers
	for _, s := range w.Sizes {
		spec.Sizes = append(spec.Sizes, s.Size)
	}
	for _, name := range w.Topologies {
		k, err := topology.ParseKind(name)
		if err != nil {
			return Spec{}, fmt.Errorf("campaign: spec topologies: %w", err)
		}
		spec.Topologies = append(spec.Topologies, k)
	}
	for _, name := range w.Routings {
		a, err := routing.Parse(name)
		if err != nil {
			return Spec{}, fmt.Errorf("campaign: spec routings: %w", err)
		}
		spec.Routings = append(spec.Routings, a)
	}
	for _, name := range w.Protections {
		p, err := link.ParseProtection(name)
		if err != nil {
			return Spec{}, fmt.Errorf("campaign: spec protections: %w", err)
		}
		spec.Protections = append(spec.Protections, p)
	}
	for _, name := range w.Patterns {
		p, err := traffic.ParsePattern(name)
		if err != nil {
			return Spec{}, fmt.Errorf("campaign: spec patterns: %w", err)
		}
		spec.Patterns = append(spec.Patterns, p)
	}
	for _, s := range w.Mortalities {
		m, err := fault.ParseMortality(s)
		if err != nil {
			return Spec{}, fmt.Errorf("campaign: spec mortality_schedules: %w", err)
		}
		spec.MortalitySchedules = append(spec.MortalitySchedules, m)
	}
	return spec, nil
}

// WireJSON renders the spec in its ParseSpec wire form — the document a
// distributed coordinator ships to workers. The round trip preserves
// everything that determines results (ParseSpec(WireJSON(s)) has the
// same CanonicalHash as s): the base config travels as its canonical
// JSON, axes as their CLI names. Workers is deliberately dropped (each
// worker sizes its own pool — results are scheduling-independent), and
// the hash-excluded Kernel / KernelWorkers preferences stay local too.
func (s Spec) WireJSON() ([]byte, error) {
	base, err := s.Base.CanonicalJSON()
	if err != nil {
		return nil, fmt.Errorf("campaign: wire spec base: %w", err)
	}
	w := specWire{
		Base:           base,
		LinkErrorRates: s.LinkErrorRates,
		InjectionRates: s.InjectionRates,
		Seeds:          s.Seeds,
		Invariants:     s.Invariants,
	}
	for _, sz := range s.Sizes {
		w.Sizes = append(w.Sizes, wireSize{sz})
	}
	for _, t := range s.Topologies {
		w.Topologies = append(w.Topologies, t.String())
	}
	for _, r := range s.Routings {
		w.Routings = append(w.Routings, r.String())
	}
	for _, p := range s.Protections {
		w.Protections = append(w.Protections, p.String())
	}
	for _, p := range s.Patterns {
		w.Patterns = append(w.Patterns, p.String())
	}
	for _, m := range s.MortalitySchedules {
		w.Mortalities = append(w.Mortalities, m.String())
	}
	return json.Marshal(w)
}

// CanonicalHash content-addresses the campaign's results: a hex SHA-256
// over the replicate count and every expanded point's validated
// canonical Config. Runs are deterministic and scheduling-independent,
// so two specs with equal hashes produce byte-identical reports —
// Workers, Progress and Invariants deliberately do not contribute
// (checking observes a run; it never changes one). Each point's
// Config embeds Base.Seed (the root of per-replicate seed derivation),
// so the base seed is hashed implicitly. An invalid point makes the
// spec unhashable, mirroring Run's refusal to execute it silently.
func (s Spec) CanonicalHash() (string, error) {
	points := s.Points()
	reps := s.Seeds
	if reps <= 0 {
		reps = 1
	}
	h := sha256.New()
	fmt.Fprintf(h, "ftnoc-campaign-v1 reps=%d points=%d\n", reps, len(points))
	for i := range points {
		if err := points[i].Config.Validate(); err != nil {
			return "", fmt.Errorf("campaign: point %d: %w", i, err)
		}
		cj, err := points[i].Config.CanonicalJSON()
		if err != nil {
			return "", fmt.Errorf("campaign: point %d: %w", i, err)
		}
		h.Write(cj)
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// RangeHash content-addresses one shard's results: the rows RunRange
// would produce for the grid points in [lo, hi). Beyond each point's
// canonical Config (which embeds the base seed, the root of replicate
// seed derivation) the hash covers the point's *global* grid index,
// because both the row's point number and its derived seeds depend on
// where the point sits in the full grid — identical configs at different
// grid positions produce different rows. It is the key of the fabric's
// cache-peer protocol: a worker consults the coordinator's cache under
// this hash before simulating a shard.
func (s Spec) RangeHash(lo, hi int) (string, error) {
	points := s.Points()
	if lo < 0 || hi > len(points) || lo >= hi {
		return "", fmt.Errorf("campaign: %w: point range [%d,%d) outside grid of %d points",
			network.ErrInvalidConfig, lo, hi, len(points))
	}
	reps := s.Seeds
	if reps <= 0 {
		reps = 1
	}
	h := sha256.New()
	fmt.Fprintf(h, "ftnoc-shard-v1 reps=%d range=%d:%d\n", reps, lo, hi)
	for i := lo; i < hi; i++ {
		if err := points[i].Config.Validate(); err != nil {
			return "", fmt.Errorf("campaign: point %d: %w", i, err)
		}
		cj, err := points[i].Config.CanonicalJSON()
		if err != nil {
			return "", fmt.Errorf("campaign: point %d: %w", i, err)
		}
		fmt.Fprintf(h, "%d ", points[i].Index)
		h.Write(cj)
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
