package campaign

import (
	"context"
	"testing"

	"ftnoc/internal/fault"
	"ftnoc/internal/routing"
)

func mustMortality(t *testing.T, s string) fault.Mortality {
	t.Helper()
	m, err := fault.ParseMortality(s)
	if err != nil {
		t.Fatalf("ParseMortality(%q): %v", s, err)
	}
	return m
}

// TestSpecMortalityAxis pins mortality's status as a first-class sweep
// axis: it multiplies the grid, lands on each point's config, survives
// the wire round-trip, and contributes to the canonical hash (two
// schedules are two different experiments, never a cache hit).
func TestSpecMortalityAxis(t *testing.T) {
	base := tinyBase()
	base.Routing = routing.FaultAdaptive
	spec := Spec{
		Base:           base,
		InjectionRates: []float64{0.1, 0.2},
		MortalitySchedules: []fault.Mortality{
			{},
			mustMortality(t, "link:5E@200,router:9@250"),
		},
	}

	points := spec.Points()
	if len(points) != 4 {
		t.Fatalf("got %d points, want 2 schedules x 2 injections = 4", len(points))
	}
	// The schedule must land on both the point label and the config the
	// replicates actually run.
	sawFaulted := 0
	for _, p := range points {
		if p.Mortality.String() != p.Config.Faults.Mortality.String() {
			t.Fatalf("point label %q disagrees with its config %q",
				p.Mortality, p.Config.Faults.Mortality)
		}
		if p.Mortality.Enabled() {
			sawFaulted++
			if len(p.Config.Faults.Mortality.Links) != 1 || len(p.Config.Faults.Mortality.Routers) != 1 {
				t.Fatalf("faulted point lost schedule entries: %+v", p.Config.Faults.Mortality)
			}
		}
	}
	if sawFaulted != 2 {
		t.Fatalf("%d faulted points, want 2", sawFaulted)
	}

	// Wire round-trip: the JSON body nocd receives must reconstruct the
	// axis schedule-for-schedule.
	doc, err := spec.WireJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.MortalitySchedules) != 2 {
		t.Fatalf("round-trip kept %d schedules, want 2", len(back.MortalitySchedules))
	}
	for i := range back.MortalitySchedules {
		if back.MortalitySchedules[i].String() != spec.MortalitySchedules[i].String() {
			t.Fatalf("schedule %d round-tripped to %q, want %q",
				i, back.MortalitySchedules[i], spec.MortalitySchedules[i])
		}
	}

	// The hash must separate different schedules and ignore spelling that
	// parses to the same schedule.
	h1, err := spec.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	other := spec
	other.MortalitySchedules = []fault.Mortality{
		{},
		mustMortality(t, "link:5E@200,router:9@300"), // later router death
	}
	h2, err := other.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Fatal("changing a death cycle did not alter the canonical hash")
	}
	if hb, _ := back.CanonicalHash(); hb != h1 {
		t.Fatal("wire round-trip changed the canonical hash")
	}
}

// TestCampaignMortalityDegradation runs a real two-point mortality sweep
// and checks the degradation aggregates nocd serves: the fault-free
// point keeps full reachability and zero undeliverables, the point that
// loses a router reports the oracle pair fraction and a positive
// undeliverable count.
func TestCampaignMortalityDegradation(t *testing.T) {
	base := tinyBase()
	base.Routing = routing.FaultAdaptive
	spec := Spec{
		Base:           base,
		InjectionRates: []float64{0.2},
		MortalitySchedules: []fault.Mortality{
			{},
			mustMortality(t, "router:5@100"),
		},
		Seeds: 2,
	}
	report, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(report.Points))
	}
	healthy, faulted := &report.Points[0], &report.Points[1]
	if healthy.Mortality.Enabled() {
		healthy, faulted = faulted, healthy
	}
	for _, p := range []*PointResult{healthy, faulted} {
		if p.Err != nil {
			t.Fatalf("point %q failed: %v", p.Mortality, p.Err)
		}
		if p.Agg.Completed != 2 {
			t.Fatalf("point %q completed %d of 2 replicates (stalled %d, aborted %d)",
				p.Mortality, p.Agg.Completed, p.Agg.Stalled, p.Agg.Aborted)
		}
	}
	if healthy.Agg.ReachableFrac.Mean != 1 || healthy.Agg.Undeliverable.Mean != 0 {
		t.Fatalf("fault-free point degraded: reach %v undeliv %v",
			healthy.Agg.ReachableFrac.Mean, healthy.Agg.Undeliverable.Mean)
	}
	// One dead router in a 4x4 mesh: 15*14 ordered live pairs of 16*15.
	want := float64(15*14) / float64(16*15)
	if faulted.Agg.ReachableFrac.Mean != want {
		t.Fatalf("faulted reachable fraction = %v, want %v", faulted.Agg.ReachableFrac.Mean, want)
	}
	if faulted.Agg.Undeliverable.Mean <= 0 {
		t.Fatal("router death produced no undeliverable messages")
	}
	// Degradation must be visible in the serialized row clients consume.
	row := PointRowOf(faulted)
	if row.Mortality != "router:5@100" || row.ReachableFrac.Mean != want {
		t.Fatalf("PointRow lost degradation detail: %+v", row)
	}
	if len(row.Replicates) != 2 || row.Replicates[0].ReachableFrac != want {
		t.Fatalf("replicate rows lost degradation detail: %+v", row.Replicates)
	}
}
