package campaign

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// runExportReport produces a report with replicated good points and one
// invalid point, exercising every row shape the tables can contain.
func runExportReport(t *testing.T) *Report {
	t.Helper()
	spec := Spec{
		Base:           tinyBase(),
		InjectionRates: []float64{0.1, 1.5, 0.2}, // middle point invalid
		Seeds:          2,
		Workers:        2,
	}
	report, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return report
}

// TestNDJSONRoundTrip guards the serialization nocd returns to clients:
// a written NDJSON table, read back, must reconstruct every point row
// exactly — coordinates, aggregates and per-replicate detail.
func TestNDJSONRoundTrip(t *testing.T) {
	report := runExportReport(t)

	var out strings.Builder
	if err := report.WriteNDJSON(&out); err != nil {
		t.Fatal(err)
	}
	rows, err := ReadNDJSON(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(report.Points) {
		t.Fatalf("read %d rows, want %d", len(rows), len(report.Points))
	}
	for i := range rows {
		want := PointRowOf(&report.Points[i])
		if !reflect.DeepEqual(rows[i], want) {
			t.Fatalf("row %d does not reconstruct the point:\n got %+v\nwant %+v", i, rows[i], want)
		}
	}
	// The good points must carry real replicate detail, or the equality
	// above proves nothing.
	if len(rows[0].Replicates) != 2 || rows[0].Replicates[0].Delivered == 0 {
		t.Fatalf("point 0 replicates missing: %+v", rows[0].Replicates)
	}
	if rows[1].Error == "" {
		t.Fatal("invalid point lost its error")
	}
}

// TestCSVRoundTrip is the CSV counterpart: every column must parse back
// to the exact written value (floats use shortest-exact formatting).
func TestCSVRoundTrip(t *testing.T) {
	report := runExportReport(t)

	var out strings.Builder
	if err := report.WriteCSV(&out); err != nil {
		t.Fatal(err)
	}
	rows, err := ReadCSV(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(report.Points) {
		t.Fatalf("read %d rows, want %d", len(rows), len(report.Points))
	}
	for i := range rows {
		want := PointRowOf(&report.Points[i])
		// CSV carries no replicate detail and no sample counts.
		want.Replicates = nil
		want.AvgLatency.N, want.P95Latency.N, want.Throughput.N = 0, 0, 0
		want.EnergyPerMsgNJ.N, want.Delivered.N = 0, 0
		want.Undeliverable.N, want.ReachableFrac.N = 0, 0
		// Nor the mean-only columns' CI.
		want.Delivered.CI95 = 0
		want.Undeliverable.CI95, want.ReachableFrac.CI95 = 0, 0
		if !reflect.DeepEqual(rows[i], want) {
			t.Fatalf("row %d does not reconstruct the point:\n got %+v\nwant %+v", i, rows[i], want)
		}
	}
	if rows[0].AvgLatency.Mean == 0 || rows[0].Completed != 2 {
		t.Fatalf("point 0 aggregates missing: %+v", rows[0])
	}

	// Corrupt tables must be rejected, not misread.
	if _, err := ReadCSV(strings.NewReader("a,b,c\n1,2,3\n")); err == nil {
		t.Fatal("ReadCSV accepted a foreign header")
	}
	lines := strings.SplitN(out.String(), "\n", 2)
	if _, err := ReadCSV(strings.NewReader(lines[0] + "\nnot-a-number" + strings.Repeat(",0", 21) + ",\n")); err == nil {
		t.Fatal("ReadCSV accepted a malformed row")
	}
}
