// Package campaign is the declarative parallel experiment engine: it
// expands a parameter grid over network.Config into points, executes the
// points' replicates on a bounded worker pool, and aggregates replicated
// measurements into mean ± 95% CI estimates.
//
// Design constraints:
//
//   - Determinism. Every (point, replicate) derives its seed from the
//     base seed and its grid coordinates alone, and results land in a
//     preallocated table indexed by those coordinates, so the output is
//     byte-identical whatever the worker count or scheduling order.
//   - Error isolation. An invalid or crashing point is captured in its
//     PointResult — the rest of the grid still runs to completion.
//   - Cancellable. The context is honoured both between points (no new
//     work is dispatched) and inside a running simulation (via
//     network.RunContext), so ^C returns promptly with the completed
//     prefix marked per point.
package campaign

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ftnoc/internal/invariant"
	"ftnoc/internal/link"
	"ftnoc/internal/network"
	"ftnoc/internal/power"
	"ftnoc/internal/routing"
	"ftnoc/internal/stats"
	"ftnoc/internal/topology"
	"ftnoc/internal/trace"
	"ftnoc/internal/traffic"
)

// Size is one topology-size axis value.
type Size struct{ Width, Height int }

func (s Size) String() string { return fmt.Sprintf("%dx%d", s.Width, s.Height) }

// Spec declares a campaign: a base configuration plus the axes to sweep.
// An empty axis means "keep the base value" (a single implicit value);
// the grid is the cartesian product of all axes, with Seeds replicates
// per point. The zero Workers runs on GOMAXPROCS workers.
type Spec struct {
	// Base supplies every parameter not swept by an axis. Base.Seed is
	// the root of the deterministic per-replicate seed derivation.
	Base network.Config

	// Axes, outermost to innermost in the point ordering.
	Sizes          []Size
	Topologies     []topology.Kind
	Routings       []routing.Algorithm
	Protections    []link.Protection
	Patterns       []traffic.Pattern
	LinkErrorRates []float64
	InjectionRates []float64

	// Seeds is the number of replicates per point (default 1), each with
	// a distinct derived seed; replicated metrics aggregate to mean ± CI.
	Seeds int

	// Workers bounds the pool: positive is an explicit size, zero means
	// GOMAXPROCS, and negative is rejected by Run with an error wrapping
	// network.ErrInvalidConfig.
	Workers int

	// Invariants runs the runtime invariant checker inside every
	// replicate (a fresh checker per replicate — checkers are stateful).
	// A violation becomes the replicate's Err, so a structurally unsound
	// run is reported as a failure instead of contributing silently to
	// the aggregates. Checking does not perturb results, so it does not
	// contribute to CanonicalHash.
	Invariants bool

	// Progress, when non-nil, receives CampaignPointStart/Done events as
	// replicates are dispatched and retired. The engine serialises
	// emissions, so any Sink works unmodified; events arrive in
	// completion order, not point order.
	Progress trace.Sink
}

// Point is one fully resolved grid coordinate.
type Point struct {
	Index         int
	Size          Size
	Topology      topology.Kind
	Routing       routing.Algorithm
	Protection    link.Protection
	Pattern       traffic.Pattern
	LinkErrorRate float64
	InjectionRate float64

	// Config is the point's complete configuration, before per-replicate
	// seed assignment.
	Config network.Config
}

// RepResult is one replicate's outcome.
type RepResult struct {
	Seed    uint64
	Results network.Results
	// KernelTicked/KernelSkipped are the replicate's scheduler-level
	// actor-tick counters (skipped = ticks elided by quiescence). They
	// live here rather than in Results because they describe the
	// simulator, not the simulated network, and must not perturb result
	// hashing or serialisation.
	KernelTicked, KernelSkipped uint64
	// Err captures a crash inside this replicate's simulation; the
	// Results are zero when set.
	Err error
}

// Aggregate summarises a point's completed replicates.
type Aggregate struct {
	// Completed counts replicates that ran to the end (Stalled is the
	// stalled subset); Aborted counts replicates cut short by
	// cancellation, which are excluded from the aggregates below.
	Completed, Stalled, Aborted int

	AvgLatency     stats.Estimate
	P95Latency     stats.Estimate
	Throughput     stats.Estimate // accepted flits/node/cycle
	EnergyPerMsgNJ stats.Estimate
	Delivered      stats.Estimate
}

// PointResult is one point's outcome: its replicates plus the aggregate.
type PointResult struct {
	Point
	Reps []RepResult
	Agg  Aggregate
	// Err is the point's validation error (no replicate ran), or the
	// first replicate error when every replicate failed.
	Err error
}

// Failed reports whether the point produced no usable measurements.
func (p PointResult) Failed() bool { return p.Err != nil && p.Agg.Completed == 0 }

// Report is a completed campaign: every point in grid order.
type Report struct {
	Points  []PointResult
	Workers int
	Elapsed time.Duration
	// Aborted reports that the campaign's context was cancelled before
	// the grid completed; unstarted replicates have zero RepResults.
	Aborted bool
}

// Points expands the spec's grid in deterministic order (axes nest
// outermost to innermost as declared on Spec, the injection rate
// innermost).
func (s Spec) Points() []Point {
	sizes := s.Sizes
	if len(sizes) == 0 {
		sizes = []Size{{s.Base.Width, s.Base.Height}}
	}
	topos := s.Topologies
	if len(topos) == 0 {
		topos = []topology.Kind{s.Base.TopologyKind}
	}
	routings := s.Routings
	if len(routings) == 0 {
		routings = []routing.Algorithm{s.Base.Routing}
	}
	prots := s.Protections
	if len(prots) == 0 {
		prots = []link.Protection{s.Base.Protection}
	}
	patterns := s.Patterns
	if len(patterns) == 0 {
		patterns = []traffic.Pattern{s.Base.Pattern}
	}
	linkErrs := s.LinkErrorRates
	if len(linkErrs) == 0 {
		linkErrs = []float64{s.Base.Faults.Link}
	}
	injs := s.InjectionRates
	if len(injs) == 0 {
		injs = []float64{s.Base.InjectionRate}
	}

	points := make([]Point, 0, len(sizes)*len(topos)*len(routings)*len(prots)*len(patterns)*len(linkErrs)*len(injs))
	for _, sz := range sizes {
		for _, tk := range topos {
			for _, ro := range routings {
				for _, pr := range prots {
					for _, pa := range patterns {
						for _, le := range linkErrs {
							for _, inj := range injs {
								cfg := s.Base
								cfg.Width, cfg.Height = sz.Width, sz.Height
								cfg.TopologyKind = tk
								cfg.Routing = ro
								cfg.Protection = pr
								cfg.Pattern = pa
								cfg.Faults.Link = le
								cfg.InjectionRate = inj
								points = append(points, Point{
									Index: len(points), Size: sz, Topology: tk,
									Routing: ro, Protection: pr, Pattern: pa,
									LinkErrorRate: le, InjectionRate: inj,
									Config: cfg,
								})
							}
						}
					}
				}
			}
		}
	}
	return points
}

// DeriveSeed maps (base seed, point index, replicate index) to the
// replicate's simulation seed via a splitmix64-style finalizer: derived
// seeds are decorrelated, scheduling-independent and never zero.
func DeriveSeed(base uint64, point, rep int) uint64 {
	z := base ^ (uint64(point)+1)*0x9E3779B97F4A7C15 ^ (uint64(rep)+1)*0xD1B54A32D192ED03
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// Run executes the spec's grid and returns the report. The only
// top-level error is an empty grid; per-point failures are captured in
// their PointResult. Cancelling ctx stops dispatch and aborts in-flight
// simulations; the report still contains everything that completed.
func Run(ctx context.Context, spec Spec) (*Report, error) {
	if spec.Workers < 0 {
		return nil, fmt.Errorf("campaign: %w: Workers must be >= 0 (0 means GOMAXPROCS), have %d",
			network.ErrInvalidConfig, spec.Workers)
	}
	points := spec.Points()
	if len(points) == 0 {
		return nil, fmt.Errorf("campaign: empty grid")
	}
	reps := spec.Seeds
	if reps <= 0 {
		reps = 1
	}

	report := &Report{Points: make([]PointResult, len(points)), Workers: workers(spec.Workers)}
	start := time.Now()
	progress := newLockedSink(spec.Progress)

	// Validation happens up front, once per point: an invalid point is
	// recorded and dispatches no replicates.
	type job struct{ point, rep int }
	var jobs []job
	for i := range points {
		report.Points[i].Point = points[i]
		report.Points[i].Reps = make([]RepResult, reps)
		if err := points[i].Config.Validate(); err != nil {
			report.Points[i].Err = err
			continue
		}
		for r := 0; r < reps; r++ {
			jobs = append(jobs, job{point: i, rep: r})
		}
	}

	jobc := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < report.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobc {
				cfg := points[j.point].Config
				cfg.Seed = DeriveSeed(spec.Base.Seed, j.point, j.rep)
				progress.emit(trace.Event{
					Kind: trace.CampaignPointStart, Node: -1, Port: -1, VC: -1,
					Aux: uint64(j.point), PID: uint64(j.rep),
				})
				rr := runReplicate(ctx, cfg, spec.Invariants)
				report.Points[j.point].Reps[j.rep] = rr
				progress.emit(trace.Event{
					Kind: trace.CampaignPointDone, Cycle: rr.Results.Cycles,
					Node: -1, Port: -1, VC: -1,
					Aux: uint64(j.point), PID: uint64(j.rep),
				})
			}
		}()
	}
dispatch:
	for _, j := range jobs {
		select {
		case jobc <- j:
		case <-ctx.Done():
			report.Aborted = true
			break dispatch
		}
	}
	close(jobc)
	wg.Wait()

	for i := range report.Points {
		finalizePoint(&report.Points[i])
		if report.Points[i].Agg.Aborted > 0 {
			report.Aborted = true
		}
	}
	report.Elapsed = time.Since(start)
	return report, nil
}

// runReplicate builds and runs one simulation, converting any panic into
// the replicate's error so a crashing point cannot take down the grid.
// With check set it attaches a fresh invariant checker (replacing any
// caller-supplied one — checkers are single-run state and must never be
// shared across concurrent replicates); either way, a checker present on
// the config turns violations into the replicate's error.
func runReplicate(ctx context.Context, cfg network.Config, check bool) (rr RepResult) {
	rr.Seed = cfg.Seed
	defer func() {
		if r := recover(); r != nil {
			rr.Err = fmt.Errorf("campaign: replicate seed %d panicked: %v", rr.Seed, r)
		}
	}()
	if check {
		cfg.Invariants = invariant.New(invariant.Config{})
	}
	net := network.New(cfg)
	rr.Results = net.RunContext(ctx)
	rr.KernelTicked, rr.KernelSkipped = net.KernelStats()
	if cfg.Invariants != nil && !rr.Results.Aborted {
		if err := cfg.Invariants.Err(); err != nil {
			rr.Err = fmt.Errorf("campaign: replicate seed %d: %w", rr.Seed, err)
		}
	}
	return rr
}

// finalizePoint computes the aggregate and promotes an all-replicates
// failure to the point error.
func finalizePoint(p *PointResult) {
	if p.Err != nil {
		return // invalid config: no replicates ran
	}
	var lat, p95, thr, energy, delivered []float64
	var firstErr error
	for _, rr := range p.Reps {
		if rr.Err != nil {
			if firstErr == nil {
				firstErr = rr.Err
			}
			continue
		}
		if rr.Seed == 0 {
			continue // never dispatched (campaign aborted)
		}
		if rr.Results.Aborted {
			// A cancelled replicate is a partial measurement: counted,
			// but kept out of the aggregates.
			p.Agg.Aborted++
			continue
		}
		p.Agg.Completed++
		if rr.Results.Stalled {
			p.Agg.Stalled++
		}
		lat = append(lat, rr.Results.AvgLatency)
		p95 = append(p95, rr.Results.P95Latency)
		thr = append(thr, rr.Results.Throughput.FlitsPerNodePerCycle())
		energy = append(energy, power.EnergyPerMessage(rr.Results.Events, rr.Results.MeasuredMessages))
		delivered = append(delivered, float64(rr.Results.Delivered))
	}
	p.Agg.AvgLatency = stats.MeanCI95(lat)
	p.Agg.P95Latency = stats.MeanCI95(p95)
	p.Agg.Throughput = stats.MeanCI95(thr)
	p.Agg.EnergyPerMsgNJ = stats.MeanCI95(energy)
	p.Agg.Delivered = stats.MeanCI95(delivered)
	if p.Agg.Completed == 0 {
		p.Err = firstErr
	}
}

// ConfigResult is one explicit configuration's outcome (RunConfigs).
type ConfigResult struct {
	Results network.Results
	Err     error
}

// RunConfigs executes an explicit configuration list on a bounded pool
// and returns results in input order — the low-level entry point for
// harnesses (package experiments) whose grids don't fit Spec's axes.
// Seeds are taken from the configs as given. Invalid or crashing configs
// are captured per entry; a cancelled ctx aborts in-flight runs.
func RunConfigs(ctx context.Context, poolSize int, cfgs []network.Config) []ConfigResult {
	out := make([]ConfigResult, len(cfgs))
	jobc := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers(poolSize); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobc {
				if err := cfgs[i].Validate(); err != nil {
					out[i].Err = err
					continue
				}
				rr := runReplicate(ctx, cfgs[i], false)
				out[i] = ConfigResult{Results: rr.Results, Err: rr.Err}
			}
		}()
	}
dispatch:
	for i := range cfgs {
		select {
		case jobc <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobc)
	wg.Wait()
	return out
}

// workers resolves a pool-size request to a positive worker count.
func workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// lockedSink serialises concurrent workers' progress emissions onto one
// Sink, so ordinary single-goroutine sinks (NDJSON writers, counters)
// work unchanged.
type lockedSink struct {
	mu   sync.Mutex
	next trace.Sink
}

func newLockedSink(next trace.Sink) *lockedSink { return &lockedSink{next: next} }

func (l *lockedSink) emit(e trace.Event) {
	if l.next == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.next.Emit(e)
}
