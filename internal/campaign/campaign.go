// Package campaign is the declarative parallel experiment engine: it
// expands a parameter grid over network.Config into points, executes the
// points' replicates on a bounded worker pool, and aggregates replicated
// measurements into mean ± 95% CI estimates.
//
// Design constraints:
//
//   - Determinism. Every (point, replicate) derives its seed from the
//     base seed and its grid coordinates alone, and results land in a
//     preallocated table indexed by those coordinates, so the output is
//     byte-identical whatever the worker count or scheduling order.
//   - Error isolation. An invalid or crashing point is captured in its
//     PointResult — the rest of the grid still runs to completion.
//   - Cancellable. The context is honoured both between points (no new
//     work is dispatched) and inside a running simulation (via
//     network.RunContext), so ^C returns promptly with the completed
//     prefix marked per point.
package campaign

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"ftnoc/internal/fault"
	"ftnoc/internal/invariant"
	"ftnoc/internal/link"
	"ftnoc/internal/network"
	"ftnoc/internal/power"
	"ftnoc/internal/routing"
	"ftnoc/internal/sim"
	"ftnoc/internal/stats"
	"ftnoc/internal/topology"
	"ftnoc/internal/trace"
	"ftnoc/internal/traffic"
)

// Size is one topology-size axis value.
type Size struct{ Width, Height int }

func (s Size) String() string { return fmt.Sprintf("%dx%d", s.Width, s.Height) }

// Spec declares a campaign: a base configuration plus the axes to sweep.
// An empty axis means "keep the base value" (a single implicit value);
// the grid is the cartesian product of all axes, with Seeds replicates
// per point. The zero Workers runs on GOMAXPROCS workers.
type Spec struct {
	// Base supplies every parameter not swept by an axis. Base.Seed is
	// the root of the deterministic per-replicate seed derivation.
	Base network.Config

	// Axes, outermost to innermost in the point ordering.
	Sizes          []Size
	Topologies     []topology.Kind
	Routings       []routing.Algorithm
	Protections    []link.Protection
	Patterns       []traffic.Pattern
	LinkErrorRates []float64
	// MortalitySchedules sweeps hard-fault schedules (fault.Mortality;
	// the zero schedule means no deaths) — the degradation-curve axis.
	MortalitySchedules []fault.Mortality
	InjectionRates     []float64

	// Seeds is the number of replicates per point (default 1), each with
	// a distinct derived seed; replicated metrics aggregate to mean ± CI.
	Seeds int

	// Workers bounds the pool: positive is an explicit size, zero means
	// GOMAXPROCS, and negative is rejected by Run with an error wrapping
	// network.ErrInvalidConfig.
	Workers int

	// Invariants runs the runtime invariant checker inside every
	// replicate (a fresh checker per replicate — checkers are stateful).
	// A violation becomes the replicate's Err, so a structurally unsound
	// run is reported as a failure instead of contributing silently to
	// the aggregates. Checking does not perturb results, so it does not
	// contribute to CanonicalHash.
	Invariants bool

	// Progress, when non-nil, receives CampaignPointStart/Done events as
	// replicates are dispatched and retired, plus the span-timeline kinds
	// (CampaignBegin/End, CampaignPointBegin/End, CampaignRepBegin/End)
	// whose Cycle field carries wall-clock microseconds since Run
	// started — feed it a trace.ChromeTrace and the whole schedule
	// (worker lanes, idle gaps, straggler points) renders in
	// chrome://tracing. The engine serialises emissions, so any Sink
	// works unmodified; events arrive in completion order, not point
	// order.
	Progress trace.Sink

	// Logger, when non-nil, receives a structured record for every
	// failed replicate, attributed with the point's grid coordinates and
	// the replicate's derived seed — so a service running thousands of
	// points can tell exactly which configuration died. Like Progress it
	// does not perturb results and is excluded from CanonicalHash.
	Logger *slog.Logger
}

// Point is one fully resolved grid coordinate.
type Point struct {
	Index         int
	Size          Size
	Topology      topology.Kind
	Routing       routing.Algorithm
	Protection    link.Protection
	Pattern       traffic.Pattern
	LinkErrorRate float64
	Mortality     fault.Mortality
	InjectionRate float64

	// Config is the point's complete configuration, before per-replicate
	// seed assignment.
	Config network.Config
}

// RepResult is one replicate's outcome.
type RepResult struct {
	Seed    uint64
	Results network.Results
	// KernelTicked/KernelSkipped/KernelEvents are the replicate's
	// scheduler-level counters: actor ticks executed, ticks elided
	// relative to the naive schedule, and calendar-queue events
	// dispatched (zero outside the event kernel). They live here rather
	// than in Results because they describe the simulator, not the
	// simulated network, and must not perturb result hashing or
	// serialisation.
	KernelTicked, KernelSkipped, KernelEvents uint64
	// KernelWorkers is the parallel kernel's per-worker breakdown of the
	// counters above plus barrier-wait time (nil for serial kernels).
	KernelWorkers []sim.WorkerStats
	// Wall is the replicate's wall-clock execution time on its worker.
	// Like the kernel counters it describes the engine, not the
	// simulated network: it varies run to run, so it stays out of the
	// result tables and the content-addressed hash.
	Wall time.Duration
	// Err captures a crash inside this replicate's simulation; the
	// Results are zero when set.
	Err error
}

// Aggregate summarises a point's completed replicates.
type Aggregate struct {
	// Completed counts replicates that ran to the end (Stalled is the
	// stalled subset); Aborted counts replicates cut short by
	// cancellation, which are excluded from the aggregates below.
	Completed, Stalled, Aborted int

	AvgLatency     stats.Estimate
	P95Latency     stats.Estimate
	Throughput     stats.Estimate // accepted flits/node/cycle
	EnergyPerMsgNJ stats.Estimate
	Delivered      stats.Estimate
	// Undeliverable and ReachableFrac summarise hard-fault degradation:
	// the per-replicate undeliverable-verdict count and the end-of-run
	// reachable-pair fraction. With no mortality schedule they aggregate
	// the constants 0 and 1.
	Undeliverable stats.Estimate
	ReachableFrac stats.Estimate
}

// PointResult is one point's outcome: its replicates plus the aggregate.
type PointResult struct {
	Point
	Reps []RepResult
	Agg  Aggregate
	// Wall is the point's wall-clock window: from its first replicate's
	// dispatch to its last replicate's retirement (straggler points show
	// up as outliers here). Zero when no replicate was dispatched.
	Wall time.Duration
	// Err is the point's validation error (no replicate ran), or the
	// first replicate error when every replicate failed.
	Err error
}

// Failed reports whether the point produced no usable measurements.
func (p PointResult) Failed() bool { return p.Err != nil && p.Agg.Completed == 0 }

// Report is a completed campaign: every point in grid order.
type Report struct {
	Points  []PointResult
	Workers int
	Elapsed time.Duration
	// Aborted reports that the campaign's context was cancelled before
	// the grid completed; unstarted replicates have zero RepResults.
	Aborted bool
	// Rows, when non-nil, is the report's pre-flattened row form and
	// takes precedence over Points in every table export. A distributed
	// coordinator assembles its report from rows streamed back by
	// workers — the full PointResult (raw network.Results per replicate)
	// never crosses the wire, only the row form clients see — so a
	// row-level report renders byte-identically to the single-node
	// engine's without reconstructing simulator internals.
	Rows []PointRow
}

// Points expands the spec's grid in deterministic order (axes nest
// outermost to innermost as declared on Spec, the injection rate
// innermost).
func (s Spec) Points() []Point {
	sizes := s.Sizes
	if len(sizes) == 0 {
		sizes = []Size{{s.Base.Width, s.Base.Height}}
	}
	topos := s.Topologies
	if len(topos) == 0 {
		topos = []topology.Kind{s.Base.TopologyKind}
	}
	routings := s.Routings
	if len(routings) == 0 {
		routings = []routing.Algorithm{s.Base.Routing}
	}
	prots := s.Protections
	if len(prots) == 0 {
		prots = []link.Protection{s.Base.Protection}
	}
	patterns := s.Patterns
	if len(patterns) == 0 {
		patterns = []traffic.Pattern{s.Base.Pattern}
	}
	linkErrs := s.LinkErrorRates
	if len(linkErrs) == 0 {
		linkErrs = []float64{s.Base.Faults.Link}
	}
	morts := s.MortalitySchedules
	if len(morts) == 0 {
		morts = []fault.Mortality{s.Base.Faults.Mortality}
	}
	injs := s.InjectionRates
	if len(injs) == 0 {
		injs = []float64{s.Base.InjectionRate}
	}

	points := make([]Point, 0, len(sizes)*len(topos)*len(routings)*len(prots)*len(patterns)*len(linkErrs)*len(morts)*len(injs))
	for _, sz := range sizes {
		for _, tk := range topos {
			for _, ro := range routings {
				for _, pr := range prots {
					for _, pa := range patterns {
						for _, le := range linkErrs {
							for _, mo := range morts {
								for _, inj := range injs {
									cfg := s.Base
									cfg.Width, cfg.Height = sz.Width, sz.Height
									cfg.TopologyKind = tk
									cfg.Routing = ro
									cfg.Protection = pr
									cfg.Pattern = pa
									cfg.Faults.Link = le
									cfg.Faults.Mortality = mo
									cfg.InjectionRate = inj
									points = append(points, Point{
										Index: len(points), Size: sz, Topology: tk,
										Routing: ro, Protection: pr, Pattern: pa,
										LinkErrorRate: le, Mortality: mo, InjectionRate: inj,
										Config: cfg,
									})
								}
							}
						}
					}
				}
			}
		}
	}
	return points
}

// DeriveSeed maps (base seed, point index, replicate index) to the
// replicate's simulation seed via a splitmix64-style finalizer: derived
// seeds are decorrelated, scheduling-independent and never zero.
func DeriveSeed(base uint64, point, rep int) uint64 {
	z := base ^ (uint64(point)+1)*0x9E3779B97F4A7C15 ^ (uint64(rep)+1)*0xD1B54A32D192ED03
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// Run executes the spec's grid and returns the report. The only
// top-level error is an empty grid; per-point failures are captured in
// their PointResult. Cancelling ctx stops dispatch and aborts in-flight
// simulations; the report still contains everything that completed.
func Run(ctx context.Context, spec Spec) (*Report, error) {
	points := spec.Points()
	if len(points) == 0 {
		return nil, fmt.Errorf("campaign: empty grid")
	}
	return run(ctx, spec, points, nil)
}

// RunRange executes only the grid points with global index in [lo, hi) —
// the shard primitive of the distributed fabric. Every replicate derives
// its seed from the point's *global* grid index, so a range run produces
// exactly the rows the same points would produce inside a full Run, and
// re-running a range is idempotent. When emit is non-nil it receives each
// point's finished row as soon as its last replicate retires (completion
// order, serialised), which is what lets a worker stream partial results
// while the rest of the shard is still simulating. The returned report
// contains only the range's points, with their global indices preserved.
func RunRange(ctx context.Context, spec Spec, lo, hi int, emit func(PointRow)) (*Report, error) {
	points := spec.Points()
	if lo < 0 || hi > len(points) || lo >= hi {
		return nil, fmt.Errorf("campaign: %w: point range [%d,%d) outside grid of %d points",
			network.ErrInvalidConfig, lo, hi, len(points))
	}
	return run(ctx, spec, points[lo:hi], emit)
}

// run is the shared engine core behind Run (full grid, no streaming) and
// RunRange (a shard with per-point row emission). points carries global
// indices in Point.Index; report slots are local.
func run(ctx context.Context, spec Spec, points []Point, emit func(PointRow)) (*Report, error) {
	if spec.Workers < 0 {
		return nil, fmt.Errorf("campaign: %w: Workers must be >= 0 (0 means GOMAXPROCS), have %d",
			network.ErrInvalidConfig, spec.Workers)
	}
	reps := spec.Seeds
	if reps <= 0 {
		reps = 1
	}

	report := &Report{Points: make([]PointResult, len(points)), Workers: workers(spec.Workers)}
	start := time.Now()
	progress := newLockedSink(spec.Progress)

	// emitRow serialises streaming emissions: workers finish points
	// concurrently, but the consumer (typically an NDJSON writer on an
	// HTTP response) sees one row at a time.
	var emitMu sync.Mutex
	emitRow := func(local int) {
		if emit == nil {
			return
		}
		row := PointRowOf(&report.Points[local])
		emitMu.Lock()
		emit(row)
		emitMu.Unlock()
	}

	// Validation happens up front, once per point: an invalid point is
	// recorded, dispatches no replicates, and streams its (error) row
	// immediately.
	type job struct{ point, rep int }
	var jobs []job
	for i := range points {
		report.Points[i].Point = points[i]
		report.Points[i].Reps = make([]RepResult, reps)
		if err := points[i].Config.Validate(); err != nil {
			report.Points[i].Err = err
			emitRow(i)
			continue
		}
		for r := 0; r < reps; r++ {
			jobs = append(jobs, job{point: i, rep: r})
		}
	}

	spans := newSpanTracker(progress, start, points, reps)
	// A point's row is final the moment its last replicate retires: the
	// tracker's mutex hand-off ordered every replicate write before this
	// callback, so finalizing and streaming here races with nothing.
	spans.onPoint = func(local int) {
		finalizePoint(&report.Points[local])
		emitRow(local)
	}
	spans.campaignBegin(len(points), len(jobs))

	jobc := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < report.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for j := range jobc {
				global := points[j.point].Index
				cfg := points[j.point].Config
				cfg.Seed = DeriveSeed(spec.Base.Seed, global, j.rep)
				spans.repBegin(worker, j.point, j.rep, cfg.Seed)
				progress.emit(trace.Event{
					Kind: trace.CampaignPointStart, Node: -1, Port: -1, VC: -1,
					Aux: uint64(global), PID: uint64(j.rep),
				})
				repStart := time.Now()
				rr := runReplicate(ctx, cfg, spec.Invariants)
				rr.Wall = time.Since(repStart)
				report.Points[j.point].Reps[j.rep] = rr
				logRepFailure(spec.Logger, points[j.point], j.rep, rr)
				progress.emit(trace.Event{
					Kind: trace.CampaignPointDone, Cycle: rr.Results.Cycles,
					Node: -1, Port: -1, VC: -1,
					Aux: uint64(global), PID: uint64(j.rep),
				})
				spans.repEnd(worker, j.point, j.rep, rr)
			}
		}(w)
	}
	dispatched := 0
dispatch:
	for _, j := range jobs {
		select {
		case jobc <- j:
			dispatched++
		case <-ctx.Done():
			report.Aborted = true
			break dispatch
		}
	}
	close(jobc)
	wg.Wait()
	spans.flush(report)

	for i := range report.Points {
		finalizePoint(&report.Points[i])
		if report.Points[i].Agg.Aborted > 0 {
			report.Aborted = true
		}
	}
	spans.campaignEnd(dispatched, report.Aborted)
	report.Elapsed = time.Since(start)
	return report, nil
}

// spanTracker turns the workers' replicate lifecycles into the
// hierarchical span timeline (campaign → point → replicate) published on
// the progress sink, and accumulates the wall-clock windows recorded on
// the report. Points open on their first replicate's dispatch and close
// on their last replicate's retirement; an aborted campaign closes its
// still-open points in flush so every Begin has a matching End.
type spanTracker struct {
	sink  *lockedSink
	start time.Time
	reps  int     // replicates per point
	grid  []Point // local slot → Point (Index carries the global id)

	// onPoint, when non-nil, fires once per point right after its last
	// replicate retires (outside the tracker lock, but ordered after
	// every replicate write by the lock hand-off) — the streaming-row
	// hook of RunRange.
	onPoint func(local int)

	mu     sync.Mutex
	points []pointSpan
}

type pointSpan struct {
	started, done, failed int
	begun, ended          bool
	first, last           time.Time
}

func newSpanTracker(sink *lockedSink, start time.Time, grid []Point, reps int) *spanTracker {
	return &spanTracker{sink: sink, start: start, reps: reps, grid: grid, points: make([]pointSpan, len(grid))}
}

// global maps a local report slot to its global grid index.
func (t *spanTracker) global(local int) uint64 { return uint64(t.grid[local].Index) }

// wall is the event timestamp: microseconds of wall clock since Run
// started (the Chrome exporter's 1 tick = 1 µs).
func (t *spanTracker) wall() uint64 { return uint64(time.Since(t.start).Microseconds()) }

func (t *spanTracker) campaignBegin(points, jobs int) {
	t.sink.emit(trace.Event{
		Kind: trace.CampaignBegin, Cycle: t.wall(), Node: -1, Port: -1, VC: -1,
		Aux: uint64(points), Aux2: uint64(jobs),
	})
}

func (t *spanTracker) campaignEnd(ran int, aborted bool) {
	var ab uint64
	if aborted {
		ab = 1
	}
	t.sink.emit(trace.Event{
		Kind: trace.CampaignEnd, Cycle: t.wall(), Node: -1, Port: -1, VC: -1,
		Aux: uint64(ran), Aux2: ab,
	})
}

func (t *spanTracker) repBegin(worker, point, rep int, seed uint64) {
	now := t.wall()
	t.mu.Lock()
	ps := &t.points[point]
	ps.started++
	if !ps.begun {
		ps.begun = true
		ps.first = time.Now()
		t.sink.emit(trace.Event{
			Kind: trace.CampaignPointBegin, Cycle: now, Node: -1, Port: -1, VC: -1,
			Aux: t.global(point),
		})
	}
	t.mu.Unlock()
	t.sink.emit(trace.Event{
		Kind: trace.CampaignRepBegin, Cycle: now, Node: int32(worker), Port: -1, VC: -1,
		Aux: t.global(point), PID: uint64(rep), Aux2: seed,
	})
}

func (t *spanTracker) repEnd(worker, point, rep int, rr RepResult) {
	now := t.wall()
	status := trace.RepStatusOK
	switch {
	case rr.Err != nil:
		status = trace.RepStatusError
	case rr.Results.Aborted:
		status = trace.RepStatusAborted
	}
	t.sink.emit(trace.Event{
		Kind: trace.CampaignRepEnd, Cycle: now, Node: int32(worker), Port: -1, VC: -1,
		PID: uint64(rep), Aux: rr.KernelTicked, Aux2: rr.KernelSkipped, Seq: status,
	})
	t.mu.Lock()
	ps := &t.points[point]
	ps.done++
	if rr.Err != nil {
		ps.failed++
	}
	ps.last = time.Now()
	completed := ps.done == t.reps && !ps.ended
	if completed {
		ps.ended = true
		t.sink.emit(trace.Event{
			Kind: trace.CampaignPointEnd, Cycle: now, Node: -1, Port: -1, VC: -1,
			Aux: t.global(point), Aux2: uint64(ps.failed),
		})
	}
	t.mu.Unlock()
	if completed && t.onPoint != nil {
		t.onPoint(point)
	}
}

// flush closes the point spans an aborted dispatch left open and copies
// every begun point's wall window onto the report.
func (t *spanTracker) flush(report *Report) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.points {
		ps := &t.points[i]
		if !ps.begun {
			continue
		}
		if !ps.ended {
			ps.ended = true
			t.sink.emit(trace.Event{
				Kind: trace.CampaignPointEnd, Cycle: t.wall(), Node: -1, Port: -1, VC: -1,
				Aux: t.global(i), Aux2: uint64(ps.failed),
			})
		}
		report.Points[i].Wall = ps.last.Sub(ps.first)
	}
}

// logRepFailure emits the structured record for a failed replicate:
// the full grid coordinates plus the derived seed, so the exact failing
// configuration can be re-run in isolation (nocsim with the same
// parameters and -seed). No-op for nil loggers and successful runs.
func logRepFailure(l *slog.Logger, p Point, rep int, rr RepResult) {
	if l == nil || rr.Err == nil {
		return
	}
	l.Error("replicate failed",
		"point", p.Index, "rep", rep, "seed", rr.Seed,
		"size", p.Size.String(), "topology", p.Topology.String(),
		"routing", p.Routing.String(), "protection", p.Protection.String(),
		"pattern", p.Pattern.String(),
		"link_error_rate", p.LinkErrorRate, "injection_rate", p.InjectionRate,
		"err", rr.Err)
}

// runReplicate builds and runs one simulation, converting any panic into
// the replicate's error so a crashing point cannot take down the grid.
// With check set it attaches a fresh invariant checker (replacing any
// caller-supplied one — checkers are single-run state and must never be
// shared across concurrent replicates); either way, a checker present on
// the config turns violations into the replicate's error.
func runReplicate(ctx context.Context, cfg network.Config, check bool) (rr RepResult) {
	rr.Seed = cfg.Seed
	defer func() {
		if r := recover(); r != nil {
			rr.Err = fmt.Errorf("campaign: replicate seed %d panicked: %v", rr.Seed, r)
		}
	}()
	if check {
		cfg.Invariants = invariant.New(invariant.Config{})
	}
	net := network.New(cfg)
	rr.Results = net.RunContext(ctx)
	ks := net.KernelStats()
	rr.KernelTicked, rr.KernelSkipped, rr.KernelEvents = ks.Ticked, ks.Skipped, ks.Events
	rr.KernelWorkers = ks.Workers
	if cfg.Invariants != nil && !rr.Results.Aborted {
		if err := cfg.Invariants.Err(); err != nil {
			rr.Err = fmt.Errorf("campaign: replicate seed %d: %w", rr.Seed, err)
		}
	}
	return rr
}

// finalizePoint computes the aggregate and promotes an all-replicates
// failure to the point error. Idempotent: the streaming path finalizes a
// point the moment its last replicate retires, and the end-of-run sweep
// finalizes every point again — the recomputation starts from a zero
// aggregate and identical replicates, so both calls agree.
func finalizePoint(p *PointResult) {
	if p.Err != nil {
		return // invalid config: no replicates ran
	}
	p.Agg = Aggregate{}
	var lat, p95, thr, energy, delivered, undeliv, reach []float64
	var firstErr error
	for _, rr := range p.Reps {
		if rr.Err != nil {
			if firstErr == nil {
				firstErr = rr.Err
			}
			continue
		}
		if rr.Seed == 0 {
			continue // never dispatched (campaign aborted)
		}
		if rr.Results.Aborted {
			// A cancelled replicate is a partial measurement: counted,
			// but kept out of the aggregates.
			p.Agg.Aborted++
			continue
		}
		p.Agg.Completed++
		if rr.Results.Stalled {
			p.Agg.Stalled++
		}
		lat = append(lat, rr.Results.AvgLatency)
		p95 = append(p95, rr.Results.P95Latency)
		thr = append(thr, rr.Results.Throughput.FlitsPerNodePerCycle())
		energy = append(energy, power.EnergyPerMessage(rr.Results.Events, rr.Results.MeasuredMessages))
		delivered = append(delivered, float64(rr.Results.Delivered))
		undeliv = append(undeliv, float64(rr.Results.Undeliverable))
		reach = append(reach, rr.Results.ReachablePairFraction)
	}
	p.Agg.AvgLatency = stats.MeanCI95(lat)
	p.Agg.P95Latency = stats.MeanCI95(p95)
	p.Agg.Throughput = stats.MeanCI95(thr)
	p.Agg.EnergyPerMsgNJ = stats.MeanCI95(energy)
	p.Agg.Delivered = stats.MeanCI95(delivered)
	p.Agg.Undeliverable = stats.MeanCI95(undeliv)
	p.Agg.ReachableFrac = stats.MeanCI95(reach)
	if p.Agg.Completed == 0 {
		p.Err = firstErr
	}
}

// ConfigResult is one explicit configuration's outcome (RunConfigs).
type ConfigResult struct {
	Results network.Results
	Err     error
}

// RunConfigs executes an explicit configuration list on a bounded pool
// and returns results in input order — the low-level entry point for
// harnesses (package experiments) whose grids don't fit Spec's axes.
// Seeds are taken from the configs as given. Invalid or crashing configs
// are captured per entry; a cancelled ctx aborts in-flight runs.
func RunConfigs(ctx context.Context, poolSize int, cfgs []network.Config) []ConfigResult {
	out := make([]ConfigResult, len(cfgs))
	jobc := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers(poolSize); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobc {
				if err := cfgs[i].Validate(); err != nil {
					out[i].Err = err
					continue
				}
				rr := runReplicate(ctx, cfgs[i], false)
				out[i] = ConfigResult{Results: rr.Results, Err: rr.Err}
			}
		}()
	}
dispatch:
	for i := range cfgs {
		select {
		case jobc <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobc)
	wg.Wait()
	return out
}

// workers resolves a pool-size request to a positive worker count.
func workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// lockedSink serialises concurrent workers' progress emissions onto one
// Sink, so ordinary single-goroutine sinks (NDJSON writers, counters)
// work unchanged.
type lockedSink struct {
	mu   sync.Mutex
	next trace.Sink
}

func newLockedSink(next trace.Sink) *lockedSink { return &lockedSink{next: next} }

func (l *lockedSink) emit(e trace.Event) {
	if l.next == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.next.Emit(e)
}
