package campaign

import (
	"errors"
	"testing"

	"ftnoc/internal/link"
	"ftnoc/internal/network"
	"ftnoc/internal/routing"
)

// wireSpec is a small multi-axis spec for wire-form and shard-hash
// tests.
func wireSpec() Spec {
	return Spec{
		Base:           network.NewConfig(),
		Sizes:          []Size{{Width: 4, Height: 4}},
		Routings:       []routing.Algorithm{routing.XY, routing.WestFirst},
		Protections:    []link.Protection{link.HBH},
		InjectionRates: []float64{0.1, 0.2},
		Seeds:          2,
	}
}

// TestWireJSONPreservesHash is the shipping law behind the fabric: the
// spec document a coordinator sends to workers decodes to a spec with
// the same canonical hash, so both sides address the same results.
func TestWireJSONPreservesHash(t *testing.T) {
	spec := wireSpec()
	h1, err := spec.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	wire, err := spec.WireJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(wire)
	if err != nil {
		t.Fatalf("%v\nwire: %s", err, wire)
	}
	h2, err := back.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("hash mismatch\nwire: %s", wire)
	}
}

func TestRangeHash(t *testing.T) {
	spec := wireSpec() // 4 points
	whole1, err := spec.RangeHash(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	whole2, err := spec.RangeHash(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if whole1 != whole2 {
		t.Fatal("RangeHash not deterministic")
	}
	lo, err := spec.RangeHash(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := spec.RangeHash(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if lo == hi || lo == whole1 || hi == whole1 {
		t.Fatal("distinct ranges must hash distinctly")
	}

	// The same configs at different grid positions are different shards:
	// row point numbers and derived seeds depend on the global index.
	sym := spec
	sym.InjectionRates = []float64{0.1, 0.1}
	a, err := sym.RangeHash(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sym.RangeHash(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("identical configs at different grid indices must hash differently")
	}

	for _, r := range [][2]int{{-1, 2}, {0, 5}, {2, 2}, {3, 1}} {
		if _, err := spec.RangeHash(r[0], r[1]); !errors.Is(err, network.ErrInvalidConfig) {
			t.Errorf("RangeHash(%d,%d): err = %v, want ErrInvalidConfig", r[0], r[1], err)
		}
	}
}
