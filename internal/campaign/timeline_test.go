package campaign

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"sync"
	"testing"

	"ftnoc/internal/trace"
)

// timelineSink records span events, tolerating the engine's concurrent
// workers (campaign.Run serialises emissions through its locked sink,
// but the test keeps its own lock to stay honest under -race).
type timelineSink struct {
	mu     sync.Mutex
	events []trace.Event
}

func (s *timelineSink) Emit(e trace.Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// TestSpanTimeline checks the hierarchical span stream: exactly one
// campaign span, one point span per grid point, one replicate span per
// dispatched replicate, every Begin matched by an End, replicate ends
// carrying the kernel counters, and wall windows recorded on the report.
func TestSpanTimeline(t *testing.T) {
	var sink timelineSink
	spec := Spec{
		Base:           tinyBase(),
		InjectionRates: []float64{0.1, 0.2},
		Seeds:          2,
		Workers:        2,
		Progress:       &sink,
	}
	report, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	count := map[trace.Kind]int{}
	var lastWall uint64
	var repKernel uint64
	for _, e := range sink.events {
		count[e.Kind]++
		switch e.Kind {
		case trace.CampaignBegin, trace.CampaignEnd,
			trace.CampaignPointBegin, trace.CampaignPointEnd,
			trace.CampaignRepBegin, trace.CampaignRepEnd:
			// Wall timestamps are per-event non-decreasing only within a
			// lane; globally they must at least stay sane (≤ elapsed).
			if e.Cycle > uint64(report.Elapsed.Microseconds())+1000 {
				t.Errorf("%v wall timestamp %dµs exceeds campaign elapsed %v", e.Kind, e.Cycle, report.Elapsed)
			}
			lastWall = e.Cycle
		}
		if e.Kind == trace.CampaignRepEnd {
			repKernel += e.Aux + e.Aux2
			if e.Seq != trace.RepStatusOK {
				t.Errorf("replicate status = %d, want ok", e.Seq)
			}
		}
	}
	_ = lastWall
	if count[trace.CampaignBegin] != 1 || count[trace.CampaignEnd] != 1 {
		t.Fatalf("campaign span: %d begins, %d ends", count[trace.CampaignBegin], count[trace.CampaignEnd])
	}
	if count[trace.CampaignPointBegin] != 2 || count[trace.CampaignPointEnd] != 2 {
		t.Fatalf("point spans: %d begins, %d ends, want 2/2", count[trace.CampaignPointBegin], count[trace.CampaignPointEnd])
	}
	if count[trace.CampaignRepBegin] != 4 || count[trace.CampaignRepEnd] != 4 {
		t.Fatalf("replicate spans: %d begins, %d ends, want 4/4", count[trace.CampaignRepBegin], count[trace.CampaignRepEnd])
	}
	// The legacy progress kinds keep flowing on the same sink.
	if count[trace.CampaignPointStart] != 4 || count[trace.CampaignPointDone] != 4 {
		t.Fatalf("legacy progress kinds missing: %d starts, %d dones", count[trace.CampaignPointStart], count[trace.CampaignPointDone])
	}
	if repKernel == 0 {
		t.Error("replicate ends carried no kernel tick counters")
	}

	// First and last span events frame the run.
	if sink.events[0].Kind != trace.CampaignBegin {
		t.Errorf("first event = %v, want campaign-begin", sink.events[0].Kind)
	}
	if last := sink.events[len(sink.events)-1].Kind; last != trace.CampaignEnd {
		t.Errorf("last event = %v, want campaign-end", last)
	}

	for i, p := range report.Points {
		if p.Wall <= 0 {
			t.Errorf("point %d wall window not recorded", i)
		}
		for r, rr := range p.Reps {
			if rr.Wall <= 0 {
				t.Errorf("point %d rep %d wall not recorded", i, r)
			}
			if p.Wall < rr.Wall {
				t.Errorf("point %d window %v shorter than its replicate %v", i, p.Wall, rr.Wall)
			}
		}
	}
}

// TestSpanTimelineAbort: an aborted campaign still closes every opened
// span, so a Chrome trace of a cancelled run is well-formed.
func TestSpanTimelineAbort(t *testing.T) {
	var sink timelineSink
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // abort before dispatch: no replicate may start
	spec := Spec{
		Base:           tinyBase(),
		InjectionRates: []float64{0.1, 0.2},
		Workers:        1,
		Progress:       &sink,
	}
	report, err := Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Aborted {
		t.Fatal("report not marked aborted")
	}
	begins, ends := 0, 0
	for _, e := range sink.events {
		switch e.Kind {
		case trace.CampaignPointBegin, trace.CampaignRepBegin:
			begins++
		case trace.CampaignPointEnd, trace.CampaignRepEnd:
			ends++
		case trace.CampaignEnd:
			if e.Aux2 != 1 {
				t.Error("campaign-end should carry the aborted flag")
			}
		}
	}
	if begins != ends {
		t.Fatalf("unbalanced spans after abort: %d begins, %d ends", begins, ends)
	}
}

// TestReplicateFailureLogging: a failed replicate logs its grid
// coordinates and derived seed; successful replicates and nil loggers
// log nothing, and point-validation failures (no replicate ran) stay
// silent too.
func TestReplicateFailureLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))

	points := (Spec{Base: tinyBase(), InjectionRates: []float64{0.1, 0.35}}).Points()
	rr := RepResult{Seed: 12345, Err: context.DeadlineExceeded}
	logRepFailure(logger, points[1], 3, rr)
	got := buf.String()
	for _, want := range []string{
		"replicate failed", "point=1", "rep=3", "seed=12345",
		"size=4x4", "injection_rate=0.35", "err=", "routing=", "pattern=",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("failure record missing %q: %s", want, got)
		}
	}

	buf.Reset()
	logRepFailure(logger, points[0], 0, RepResult{Seed: 1}) // no error: silent
	logRepFailure(nil, points[0], 0, rr)                    // nil logger: no panic
	if buf.Len() != 0 {
		t.Fatalf("successful replicate logged: %s", buf.String())
	}

	// End to end: a campaign whose points all fail validation dispatches
	// no replicates, so nothing reaches the failure log.
	buf.Reset()
	spec := Spec{
		Base:           tinyBase(),
		InjectionRates: []float64{2.0},
		Workers:        1,
		Logger:         logger,
	}
	if _, err := Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("point-validation failures must not log as replicate failures: %s", buf.String())
	}
}
