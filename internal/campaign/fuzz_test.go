package campaign

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseSpec holds the campaign-spec parser — the exact surface nocd
// exposes to untrusted POST bodies — to: no panics; an accepted spec's
// grid expands without panicking; and CanonicalHash either fails cleanly
// or is stable across calls. Grid expansion is skipped for adversarially
// huge axis products (Points preallocates the product).
func FuzzParseSpec(f *testing.F) {
	f.Add(`{}`)
	f.Add(`{"seeds":3,"workers":2,"invariants":true}`)
	f.Add(`{"base":{"width":4,"height":4},"sizes":["4x4","8x8"],"routings":["xy","adaptive"]}`)
	f.Add(`{"protections":["hbh","e2e","fec"],"patterns":["NR","BC"],"link_error_rates":[0,0.001]}`)
	f.Add(`{"sizes":[{"width":3,"height":3}],"injection_rates":[0.1,0.2,0.3]}`)
	f.Add(`{"topologies":["mesh","torus"]}`)
	f.Add(`{"sizes":["axb"]}`)
	f.Add(`{"base":{"injection_rate":2}}`)

	f.Fuzz(func(t *testing.T, doc string) {
		spec, err := ParseSpec([]byte(doc))
		if err != nil {
			return
		}
		product := 1
		for _, n := range []int{
			max(len(spec.Sizes), 1), max(len(spec.Topologies), 1),
			max(len(spec.Routings), 1), max(len(spec.Protections), 1),
			max(len(spec.Patterns), 1), max(len(spec.LinkErrorRates), 1),
			max(len(spec.InjectionRates), 1),
		} {
			product *= n
		}
		if product > 4096 {
			return
		}
		points := spec.Points()
		if len(points) != product {
			t.Fatalf("grid expanded to %d points, axes imply %d", len(points), product)
		}
		h1, err := spec.CanonicalHash()
		if err != nil {
			return // an invalid point makes the spec unhashable — fine
		}
		h2, err := spec.CanonicalHash()
		if err != nil || h1 != h2 {
			t.Fatalf("CanonicalHash unstable: %q / %q (err %v)", h1, h2, err)
		}
	})
}

// FuzzReadCSV holds the CSV result-table parser to: no panics, and an
// accepted table reaching a fixed point after one rewrite —
// Write(Read(Write(Read(input)))) == Write(Read(input)) byte for byte.
// Comparing the two written forms (rather than the parsed rows) keeps
// the law meaningful when a column holds NaN.
func FuzzReadCSV(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteRowsCSV(&buf, []PointRow{{
		Point: 0, Width: 4, Height: 4, Topology: "mesh", Routing: "xy",
		Protection: "HBH", Pattern: "NR", InjectionRate: 0.25,
		Reps: 2, Completed: 2,
		AvgLatency: EstimateRow{Mean: 19.5, CI95: 0.7},
	}}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(strings.Join(csvHeader, ",") + "\n")
	f.Add("not,a,table\n")
	f.Add("")

	f.Fuzz(func(t *testing.T, doc string) {
		rows, err := ReadCSV(strings.NewReader(doc))
		if err != nil {
			return
		}
		var w1 bytes.Buffer
		if err := WriteRowsCSV(&w1, rows); err != nil {
			t.Fatalf("accepted rows do not re-serialise: %v", err)
		}
		rows2, err := ReadCSV(bytes.NewReader(w1.Bytes()))
		if err != nil {
			t.Fatalf("own output rejected: %v\n%s", err, w1.Bytes())
		}
		var w2 bytes.Buffer
		if err := WriteRowsCSV(&w2, rows2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("write/read/write not a fixed point:\nfirst:  %s\nsecond: %s", w1.Bytes(), w2.Bytes())
		}
	})
}

// FuzzReadNDJSON is FuzzReadCSV's law for the NDJSON table format,
// which additionally round-trips nested per-replicate rows.
func FuzzReadNDJSON(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteRowsNDJSON(&buf, []PointRow{{
		Point: 1, Width: 4, Height: 4, Topology: "mesh", Routing: "adaptive",
		Protection: "E2E", Pattern: "TN", LinkErrorRate: 0.001, InjectionRate: 0.3,
		Reps: 1, Completed: 1,
		Throughput: EstimateRow{Mean: 0.29, N: 1},
		Replicates: []RepRow{{Seed: 7, Delivered: 600, Cycles: 9000, AvgLatency: 21.5}},
	}}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("{}\n")
	f.Add("{\"point\":1}\n\n{\"point\":2}\n")
	f.Add("nonsense\n")

	f.Fuzz(func(t *testing.T, doc string) {
		rows, err := ReadNDJSON(strings.NewReader(doc))
		if err != nil {
			return
		}
		var w1 bytes.Buffer
		if err := WriteRowsNDJSON(&w1, rows); err != nil {
			t.Fatalf("accepted rows do not re-serialise: %v", err)
		}
		rows2, err := ReadNDJSON(bytes.NewReader(w1.Bytes()))
		if err != nil {
			t.Fatalf("own output rejected: %v\n%s", err, w1.Bytes())
		}
		var w2 bytes.Buffer
		if err := WriteRowsNDJSON(&w2, rows2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("write/read/write not a fixed point:\nfirst:  %s\nsecond: %s", w1.Bytes(), w2.Bytes())
		}
	})
}
