package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ftnoc/internal/link"
	"ftnoc/internal/network"
	"ftnoc/internal/routing"
	"ftnoc/internal/topology"
	"ftnoc/internal/trace"
	"ftnoc/internal/traffic"
)

// tinyBase is a 4x4 platform small enough that a grid of points runs in
// well under a second per point.
func tinyBase() network.Config {
	cfg := network.NewConfig()
	cfg.Width, cfg.Height = 4, 4
	cfg.WarmupMessages = 50
	cfg.TotalMessages = 300
	cfg.MaxCycles = 100_000
	cfg.StallCycles = 30_000
	return cfg
}

func TestSpecPointsExpansion(t *testing.T) {
	spec := Spec{
		Base:           tinyBase(),
		Routings:       []routing.Algorithm{routing.XY, routing.MinimalAdaptive},
		Protections:    []link.Protection{link.HBH, link.E2E, link.FEC},
		LinkErrorRates: []float64{0, 1e-3},
		InjectionRates: []float64{0.1, 0.2},
	}
	points := spec.Points()
	if len(points) != 2*3*2*2 {
		t.Fatalf("got %d points, want 24", len(points))
	}
	// Injection is the innermost axis; indices are dense and ordered.
	if points[0].InjectionRate != 0.1 || points[1].InjectionRate != 0.2 {
		t.Fatalf("injection not innermost: %+v %+v", points[0], points[1])
	}
	for i, p := range points {
		if p.Index != i {
			t.Fatalf("point %d has index %d", i, p.Index)
		}
		if p.Config.Routing != p.Routing || p.Config.Protection != p.Protection ||
			p.Config.Faults.Link != p.LinkErrorRate || p.Config.InjectionRate != p.InjectionRate {
			t.Fatalf("point %d config does not match coordinates: %+v", i, p)
		}
	}
	// Empty axes inherit the base value.
	single := Spec{Base: tinyBase()}.Points()
	if len(single) != 1 || single[0].Config.Routing != routing.XY ||
		single[0].Size != (Size{4, 4}) || single[0].Topology != topology.Mesh {
		t.Fatalf("base-only grid wrong: %+v", single)
	}
}

func TestDeriveSeed(t *testing.T) {
	seen := map[uint64]bool{}
	for point := 0; point < 8; point++ {
		for rep := 0; rep < 8; rep++ {
			s := DeriveSeed(1, point, rep)
			if s == 0 {
				t.Fatalf("zero seed at (%d,%d)", point, rep)
			}
			if seen[s] {
				t.Fatalf("seed collision at (%d,%d)", point, rep)
			}
			seen[s] = true
			if s != DeriveSeed(1, point, rep) {
				t.Fatal("DeriveSeed not deterministic")
			}
		}
	}
	if DeriveSeed(1, 0, 0) == DeriveSeed(2, 0, 0) {
		t.Fatal("base seed ignored")
	}
}

// TestCampaignDeterminism is the engine's core guarantee: a parallel run
// (workers=8) produces per-point results identical to a serial run
// (workers=1) of the same spec.
func TestCampaignDeterminism(t *testing.T) {
	spec := Spec{
		Base:           tinyBase(),
		Routings:       []routing.Algorithm{routing.XY, routing.MinimalAdaptive},
		LinkErrorRates: []float64{0, 1e-3},
		InjectionRates: []float64{0.1, 0.2},
		Seeds:          2,
	}

	serial := spec
	serial.Workers = 1
	parallel := spec
	parallel.Workers = 8

	rs, err := Run(context.Background(), serial)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run(context.Background(), parallel)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Points) != 8 || len(rp.Points) != 8 {
		t.Fatalf("point counts: serial %d, parallel %d, want 8", len(rs.Points), len(rp.Points))
	}
	for i := range rs.Points {
		ps, pp := rs.Points[i], rp.Points[i]
		if ps.Err != nil || pp.Err != nil {
			t.Fatalf("point %d errored: serial %v, parallel %v", i, ps.Err, pp.Err)
		}
		if ps.Agg.Completed != len(ps.Reps) {
			t.Fatalf("point %d incomplete: %+v", i, ps.Agg)
		}
		if !reflect.DeepEqual(stripWall(ps.Reps), stripWall(pp.Reps)) {
			t.Errorf("point %d replicate results differ between workers=1 and workers=8", i)
		}
		for _, rr := range ps.Reps {
			if rr.Wall <= 0 {
				t.Errorf("point %d: replicate wall time not recorded", i)
			}
		}
		if !reflect.DeepEqual(ps.Agg, pp.Agg) {
			t.Errorf("point %d aggregates differ: serial %+v, parallel %+v", i, ps.Agg, pp.Agg)
		}
	}
}

// stripWall clears the wall-clock fields, which legitimately vary
// between runs — everything else must match exactly.
func stripWall(reps []RepResult) []RepResult {
	out := append([]RepResult(nil), reps...)
	for i := range out {
		out[i].Wall = 0
	}
	return out
}

// TestCampaignErrorIsolation: one invalid grid point fails with a wrapped
// ErrInvalidConfig while every other point completes.
func TestCampaignErrorIsolation(t *testing.T) {
	spec := Spec{
		Base:           tinyBase(),
		InjectionRates: []float64{0.1, 1.5, 0.2}, // 1.5 is out of [0,1]
		Workers:        4,
	}
	report, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Points) != 3 {
		t.Fatalf("got %d points", len(report.Points))
	}
	bad := report.Points[1]
	if bad.Err == nil || !errors.Is(bad.Err, network.ErrInvalidConfig) {
		t.Fatalf("invalid point error = %v, want ErrInvalidConfig", bad.Err)
	}
	if !bad.Failed() || bad.Agg.Completed != 0 {
		t.Fatalf("invalid point should have no completed reps: %+v", bad.Agg)
	}
	for _, i := range []int{0, 2} {
		p := report.Points[i]
		if p.Err != nil {
			t.Fatalf("valid point %d errored: %v", i, p.Err)
		}
		if p.Agg.Completed != 1 || p.Reps[0].Results.Delivered == 0 {
			t.Fatalf("valid point %d did not complete: %+v", i, p.Agg)
		}
	}
}

// TestCampaignAbort: a cancelled context stops the campaign promptly and
// marks the report aborted.
func TestCampaignAbort(t *testing.T) {
	base := tinyBase()
	base.TotalMessages = 50_000 // long enough that cancellation lands mid-run
	base.WarmupMessages = 0
	spec := Spec{
		Base:           base,
		InjectionRates: []float64{0.1, 0.15, 0.2, 0.25},
		Workers:        2,
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	report, err := Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Aborted {
		t.Fatal("report not marked aborted")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("abort took %v", elapsed)
	}
}

// countingSink tallies events; the engine must serialise emissions so
// this needs no locking of its own beyond the engine's.
type countingSink struct {
	mu          sync.Mutex
	start, done int
}

func (c *countingSink) Emit(e trace.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch e.Kind {
	case trace.CampaignPointStart:
		c.start++
	case trace.CampaignPointDone:
		c.done++
	}
}

func TestCampaignProgressEvents(t *testing.T) {
	sink := &countingSink{}
	spec := Spec{
		Base:           tinyBase(),
		InjectionRates: []float64{0.1, 0.2},
		Seeds:          3,
		Workers:        4,
		Progress:       sink,
	}
	if _, err := Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if sink.start != 6 || sink.done != 6 {
		t.Fatalf("progress events start=%d done=%d, want 6/6", sink.start, sink.done)
	}
}

func TestReportCSVAndNDJSON(t *testing.T) {
	spec := Spec{
		Base:           tinyBase(),
		InjectionRates: []float64{0.1, 1.5}, // second point invalid
		Seeds:          2,
		Workers:        2,
	}
	report, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	var csvOut strings.Builder
	if err := report.WriteCSV(&csvOut); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvOut.String()), "\n")
	if len(lines) != 3 { // header + 2 points
		t.Fatalf("CSV has %d lines:\n%s", len(lines), csvOut.String())
	}
	if !strings.HasPrefix(lines[0], "point,width,height,topology,routing") {
		t.Fatalf("CSV header wrong: %s", lines[0])
	}
	if !strings.Contains(lines[2], "invalid config") {
		t.Fatalf("invalid point's CSV row lacks error: %s", lines[2])
	}

	var ndOut strings.Builder
	if err := report.WriteNDJSON(&ndOut); err != nil {
		t.Fatal(err)
	}
	ndLines := strings.Split(strings.TrimSpace(ndOut.String()), "\n")
	if len(ndLines) != 2 {
		t.Fatalf("NDJSON has %d lines", len(ndLines))
	}
	for i, l := range ndLines {
		var row map[string]any
		if err := json.Unmarshal([]byte(l), &row); err != nil {
			t.Fatalf("NDJSON line %d not JSON: %v", i, err)
		}
		if int(row["point"].(float64)) != i {
			t.Fatalf("NDJSON line %d out of order: %v", i, row["point"])
		}
	}
}

func TestRunConfigsOrderAndIsolation(t *testing.T) {
	good := tinyBase()
	bad := tinyBase()
	bad.VCs = 0
	cfgs := []network.Config{good, bad, good}
	cfgs[2].Seed = 7

	out := RunConfigs(context.Background(), 4, cfgs)
	if len(out) != 3 {
		t.Fatalf("got %d results", len(out))
	}
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatalf("valid configs errored: %v, %v", out[0].Err, out[2].Err)
	}
	if !errors.Is(out[1].Err, network.ErrInvalidConfig) {
		t.Fatalf("invalid config error = %v", out[1].Err)
	}
	if out[0].Results.Delivered == 0 || out[2].Results.Delivered == 0 {
		t.Fatal("valid configs delivered nothing")
	}
	// Distinct seeds must give distinct runs (order preserved).
	if reflect.DeepEqual(out[0].Results, out[2].Results) {
		t.Fatal("different seeds produced identical results — ordering broken?")
	}
}

// TestCampaignSpeedup demonstrates the multicore win: a ≥16-point grid
// must run at least twice as fast on the full pool as on one worker.
// Skipped on small machines and in -short runs (it is a benchmark in
// test clothing).
func TestCampaignSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs, have %d", runtime.NumCPU())
	}
	base := tinyBase()
	base.TotalMessages = 1_500
	base.WarmupMessages = 300
	spec := Spec{
		Base:           base,
		Routings:       []routing.Algorithm{routing.XY, routing.MinimalAdaptive},
		LinkErrorRates: []float64{0, 1e-3},
		InjectionRates: []float64{0.1, 0.15, 0.2, 0.25},
		Patterns:       []traffic.Pattern{traffic.UniformRandom},
	}

	serial := spec
	serial.Workers = 1
	t0 := time.Now()
	if _, err := Run(context.Background(), serial); err != nil {
		t.Fatal(err)
	}
	serialTime := time.Since(t0)

	parallel := spec
	parallel.Workers = 0 // GOMAXPROCS
	t1 := time.Now()
	if _, err := Run(context.Background(), parallel); err != nil {
		t.Fatal(err)
	}
	parallelTime := time.Since(t1)

	speedup := float64(serialTime) / float64(parallelTime)
	t.Logf("16-point grid: serial %v, parallel %v (%d workers) — speedup %.2fx",
		serialTime, parallelTime, runtime.GOMAXPROCS(0), speedup)
	if speedup < 2 {
		t.Errorf("speedup %.2fx < 2x (serial %v, parallel %v)", speedup, serialTime, parallelTime)
	}
}
