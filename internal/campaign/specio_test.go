package campaign

import (
	"context"
	"errors"
	"strings"
	"testing"

	"ftnoc/internal/link"
	"ftnoc/internal/network"
	"ftnoc/internal/routing"
	"ftnoc/internal/topology"
	"ftnoc/internal/traffic"
)

func TestParseSpec(t *testing.T) {
	doc := `{
		"base": {"Width": 4, "Height": 4, "TotalMessages": 500, "WarmupMessages": 100, "Seed": 9},
		"sizes": ["4x4", {"width": 6, "height": 6}],
		"topologies": ["mesh", "torus"],
		"routings": ["xy", "adaptive"],
		"protections": ["hbh", "e2e"],
		"patterns": ["NR", "tn"],
		"link_error_rates": [0, 0.001],
		"injection_rates": [0.1, 0.2],
		"seeds": 3,
		"workers": 2
	}`
	spec, err := ParseSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Base.Width != 4 || spec.Base.TotalMessages != 500 || spec.Base.Seed != 9 {
		t.Fatalf("base not applied: %+v", spec.Base)
	}
	if spec.Base.VCs != network.NewConfig().VCs {
		t.Fatalf("base should keep NewConfig defaults for absent fields, VCs = %d", spec.Base.VCs)
	}
	if len(spec.Sizes) != 2 || spec.Sizes[0] != (Size{4, 4}) || spec.Sizes[1] != (Size{6, 6}) {
		t.Fatalf("sizes = %+v", spec.Sizes)
	}
	if len(spec.Topologies) != 2 || spec.Topologies[1] != topology.Torus {
		t.Fatalf("topologies = %+v", spec.Topologies)
	}
	if len(spec.Routings) != 2 || spec.Routings[1] != routing.MinimalAdaptive {
		t.Fatalf("routings = %+v", spec.Routings)
	}
	if len(spec.Protections) != 2 || spec.Protections[1] != link.E2E {
		t.Fatalf("protections = %+v", spec.Protections)
	}
	if len(spec.Patterns) != 2 || spec.Patterns[1] != traffic.Tornado {
		t.Fatalf("patterns = %+v", spec.Patterns)
	}
	if spec.Seeds != 3 || spec.Workers != 2 {
		t.Fatalf("seeds/workers = %d/%d", spec.Seeds, spec.Workers)
	}
	if got := len(spec.Points()); got != 2*2*2*2*2*2*2 {
		t.Fatalf("grid size = %d, want 128", got)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := map[string]string{
		"unknown top-level field": `{"bogus": 1}`,
		"unknown base field":      `{"base": {"Bogus": 1}}`,
		"unknown routing":         `{"routings": ["zigzag"]}`,
		"unknown pattern":         `{"patterns": ["XX"]}`,
		"unknown protection":      `{"protections": ["tmr"]}`,
		"unknown topology":        `{"topologies": ["ring"]}`,
		"bad size string":         `{"sizes": ["4by4"]}`,
		"unknown size field":      `{"sizes": [{"width": 4, "depth": 4}]}`,
	}
	for name, doc := range cases {
		if _, err := ParseSpec([]byte(doc)); err == nil {
			t.Errorf("%s: ParseSpec accepted %s", name, doc)
		}
	}
	// An empty document is a valid single-point spec over the defaults.
	spec, err := ParseSpec([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Points()) != 1 {
		t.Fatalf("empty doc grid = %d points", len(spec.Points()))
	}
}

func TestSpecCanonicalHash(t *testing.T) {
	base := tinyBase()
	spec := Spec{Base: base, InjectionRates: []float64{0.1, 0.2}, Seeds: 2}

	h1, err := spec.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := spec.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 || len(h1) != 64 {
		t.Fatalf("hash unstable or malformed: %q vs %q", h1, h2)
	}

	// Scheduling and observability must not contribute.
	withWorkers := spec
	withWorkers.Workers = 7
	withWorkers.Progress = new(countingSink)
	if h, _ := withWorkers.CanonicalHash(); h != h1 {
		t.Fatal("Workers/Progress changed the canonical hash")
	}

	// Anything that changes the simulated work must contribute.
	for name, mutate := range map[string]func(*Spec){
		"seed":      func(s *Spec) { s.Base.Seed++ },
		"reps":      func(s *Spec) { s.Seeds++ },
		"axis":      func(s *Spec) { s.InjectionRates = []float64{0.1} },
		"base conf": func(s *Spec) { s.Base.VCs++ },
	} {
		m := spec
		mutate(&m)
		if h, err := m.CanonicalHash(); err != nil {
			t.Fatalf("%s: %v", name, err)
		} else if h == h1 {
			t.Fatalf("%s change did not alter the canonical hash", name)
		}
	}

	// Seeds=0 and Seeds=1 are the same campaign (one replicate).
	zero, one := spec, spec
	zero.Seeds, one.Seeds = 0, 1
	hz, _ := zero.CanonicalHash()
	ho, _ := one.CanonicalHash()
	if hz != ho {
		t.Fatal("Seeds=0 and Seeds=1 hash differently")
	}

	// Invalid points make the spec unhashable.
	bad := spec
	bad.InjectionRates = []float64{1.5}
	if _, err := bad.CanonicalHash(); !errors.Is(err, network.ErrInvalidConfig) {
		t.Fatalf("invalid point hash error = %v", err)
	}
}

func TestRunRejectsNegativeWorkers(t *testing.T) {
	spec := Spec{Base: tinyBase(), Workers: -1}
	_, err := Run(context.Background(), spec)
	if err == nil {
		t.Fatal("Run accepted Workers = -1")
	}
	if !errors.Is(err, network.ErrInvalidConfig) {
		t.Fatalf("error does not wrap ErrInvalidConfig: %v", err)
	}
	if !strings.Contains(err.Error(), "Workers") {
		t.Fatalf("error does not name Workers: %v", err)
	}
}
