package campaign

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"strconv"
)

// csvHeader is the fixed column order of WriteCSV (and the field order of
// WriteNDJSON's flat fields); it is part of the output format.
var csvHeader = []string{
	"point", "width", "height", "topology", "routing", "protection", "pattern",
	"link_error_rate", "mortality", "injection_rate", "reps", "completed", "stalled", "aborted",
	"delivered_mean", "undeliverable_mean", "reachable_frac_mean",
	"avg_latency_mean", "avg_latency_ci95",
	"p95_latency_mean", "p95_latency_ci95",
	"throughput_mean", "throughput_ci95",
	"energy_nj_mean", "energy_nj_ci95",
	"error",
}

// WriteCSV renders the report as one CSV row per point, in grid order,
// with mean and 95%-CI half-width columns for each replicated metric.
func (r *Report) WriteCSV(w io.Writer) error {
	return WriteRowsCSV(w, r.rows())
}

// rows flattens the report's points into their external row form (or
// returns the pre-flattened Rows of a coordinator-assembled report).
func (r *Report) rows() []PointRow {
	if r.Rows != nil {
		return r.Rows
	}
	rows := make([]PointRow, len(r.Points))
	for i := range r.Points {
		rows[i] = PointRowOf(&r.Points[i])
	}
	return rows
}

// PointRows returns the report's external row form — the rows WriteCSV
// and WriteNDJSON render. Distributed differential tests compare these
// directly against a single-node run's.
func (r *Report) PointRows() []PointRow { return r.rows() }

// MergeRows assembles the row sets returned by distributed shards into
// one grid-ordered table over a grid of total points. Duplicate rows for
// a point are tolerated when identical (redispatch can recompute a point
// another worker already streamed — determinism makes the copies equal)
// and rejected otherwise; missing lists the points no shard covered, so
// a resuming coordinator knows exactly what to re-dispatch.
func MergeRows(total int, parts ...[]PointRow) (rows []PointRow, missing []int, err error) {
	seen := make([]*PointRow, total)
	for _, part := range parts {
		for i := range part {
			row := &part[i]
			if row.Point < 0 || row.Point >= total {
				return nil, nil, fmt.Errorf("campaign: merged row for point %d outside grid of %d points", row.Point, total)
			}
			if prev := seen[row.Point]; prev != nil {
				if !reflect.DeepEqual(*prev, *row) {
					return nil, nil, fmt.Errorf("campaign: conflicting rows for point %d", row.Point)
				}
				continue
			}
			seen[row.Point] = row
		}
	}
	rows = make([]PointRow, 0, total)
	for i, row := range seen {
		if row == nil {
			missing = append(missing, i)
			continue
		}
		rows = append(rows, *row)
	}
	return rows, missing, nil
}

// WriteRowsCSV renders already-flattened rows in the WriteCSV table
// format. Splitting the row form from the Report lets a parsed table be
// re-emitted byte-identically — the round-trip law ReadCSV∘WriteRowsCSV
// is a fixed point, which the fuzz harness exercises.
func WriteRowsCSV(w io.Writer, rows []PointRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for i := range rows {
		p := &rows[i]
		row := []string{
			strconv.Itoa(p.Point),
			strconv.Itoa(p.Width), strconv.Itoa(p.Height),
			p.Topology, p.Routing, p.Protection, p.Pattern,
			formatFloat(p.LinkErrorRate), p.Mortality, formatFloat(p.InjectionRate),
			strconv.Itoa(p.Reps),
			strconv.Itoa(p.Completed), strconv.Itoa(p.Stalled), strconv.Itoa(p.Aborted),
			formatFloat(p.Delivered.Mean),
			formatFloat(p.Undeliverable.Mean), formatFloat(p.ReachableFrac.Mean),
			formatFloat(p.AvgLatency.Mean), formatFloat(p.AvgLatency.CI95),
			formatFloat(p.P95Latency.Mean), formatFloat(p.P95Latency.CI95),
			formatFloat(p.Throughput.Mean), formatFloat(p.Throughput.CI95),
			formatFloat(p.EnergyPerMsgNJ.Mean), formatFloat(p.EnergyPerMsgNJ.CI95),
			p.Error,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatFloat renders a float in the shortest form that parses back to
// the identical value, so the tables round-trip losslessly.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// PointRow is the flattened external form of a PointResult: one NDJSON
// line (with nested replicates) or one CSV row (without). It is the
// row shape nocd returns to API clients.
type PointRow struct {
	Point         int     `json:"point"`
	Width         int     `json:"width"`
	Height        int     `json:"height"`
	Topology      string  `json:"topology"`
	Routing       string  `json:"routing"`
	Protection    string  `json:"protection"`
	Pattern       string  `json:"pattern"`
	LinkErrorRate float64 `json:"link_error_rate"`
	// Mortality is the point's hard-fault schedule in ParseMortality
	// grammar ("none" when the axis is unswept).
	Mortality     string  `json:"mortality"`
	InjectionRate float64 `json:"injection_rate"`

	Reps      int    `json:"reps"`
	Completed int    `json:"completed"`
	Stalled   int    `json:"stalled"`
	Aborted   int    `json:"aborted"`
	Error     string `json:"error,omitempty"`

	AvgLatency     EstimateRow `json:"avg_latency"`
	P95Latency     EstimateRow `json:"p95_latency"`
	Throughput     EstimateRow `json:"throughput"`
	EnergyPerMsgNJ EstimateRow `json:"energy_nj"`
	Delivered      EstimateRow `json:"delivered"`
	Undeliverable  EstimateRow `json:"undeliverable"`
	ReachableFrac  EstimateRow `json:"reachable_frac"`

	Replicates []RepRow `json:"replicates,omitempty"`
}

// EstimateRow is the external form of a stats.Estimate.
type EstimateRow struct {
	Mean float64 `json:"mean"`
	CI95 float64 `json:"ci95"`
	N    int     `json:"n"`
}

// RepRow is the external form of one replicate's measurements.
type RepRow struct {
	Seed          uint64  `json:"seed"`
	Delivered     uint64  `json:"delivered"`
	Undeliverable uint64  `json:"undeliverable,omitempty"`
	ReachableFrac float64 `json:"reachable_frac"`
	Cycles        uint64  `json:"cycles"`
	AvgLatency    float64 `json:"avg_latency"`
	P95Latency    float64 `json:"p95_latency"`
	Throughput    float64 `json:"throughput"`
	Stalled       bool    `json:"stalled,omitempty"`
	Aborted       bool    `json:"aborted,omitempty"`
	Error         string  `json:"error,omitempty"`
}

// PointRowOf flattens a PointResult into its external row form,
// including per-replicate detail (never-dispatched replicates are
// omitted, matching the aggregates).
func PointRowOf(p *PointResult) PointRow {
	row := PointRow{
		Point: p.Index, Width: p.Size.Width, Height: p.Size.Height,
		Topology: p.Topology.String(), Routing: p.Routing.String(),
		Protection: p.Protection.String(), Pattern: p.Pattern.String(),
		LinkErrorRate: p.LinkErrorRate, Mortality: p.Mortality.String(),
		InjectionRate: p.InjectionRate,
		Reps:          len(p.Reps), Completed: p.Agg.Completed,
		Stalled: p.Agg.Stalled, Aborted: p.Agg.Aborted,
		AvgLatency:     EstimateRow(p.Agg.AvgLatency),
		P95Latency:     EstimateRow(p.Agg.P95Latency),
		Throughput:     EstimateRow(p.Agg.Throughput),
		EnergyPerMsgNJ: EstimateRow(p.Agg.EnergyPerMsgNJ),
		Delivered:      EstimateRow(p.Agg.Delivered),
		Undeliverable:  EstimateRow(p.Agg.Undeliverable),
		ReachableFrac:  EstimateRow(p.Agg.ReachableFrac),
	}
	if p.Err != nil {
		row.Error = p.Err.Error()
	}
	for _, rr := range p.Reps {
		if rr.Seed == 0 && rr.Err == nil {
			continue // never dispatched
		}
		rep := RepRow{
			Seed:          rr.Seed,
			Delivered:     rr.Results.Delivered,
			Undeliverable: rr.Results.Undeliverable,
			ReachableFrac: rr.Results.ReachablePairFraction,
			Cycles:        rr.Results.Cycles,
			AvgLatency:    rr.Results.AvgLatency,
			P95Latency:    rr.Results.P95Latency,
			Throughput:    rr.Results.Throughput.FlitsPerNodePerCycle(),
			Stalled:       rr.Results.Stalled,
			Aborted:       rr.Results.Aborted,
		}
		if rr.Err != nil {
			rep.Error = rr.Err.Error()
		}
		row.Replicates = append(row.Replicates, rep)
	}
	return row
}

// WriteNDJSON renders the report as one JSON object per line per point,
// in grid order, with per-replicate detail nested in each row.
func (r *Report) WriteNDJSON(w io.Writer) error {
	return WriteRowsNDJSON(w, r.rows())
}

// WriteRowsNDJSON renders already-flattened rows in the WriteNDJSON
// format (see WriteRowsCSV for why the row form is writable directly).
func WriteRowsNDJSON(w io.Writer, rows []PointRow) error {
	enc := json.NewEncoder(w)
	for i := range rows {
		if err := enc.Encode(&rows[i]); err != nil {
			return fmt.Errorf("campaign: encoding point %d: %w", rows[i].Point, err)
		}
	}
	return nil
}

// maxNDJSONRow bounds one table line; a longer line means the stream is
// not one of our tables.
const maxNDJSONRow = 16 << 20

// ReadNDJSON parses a WriteNDJSON table back into its rows, in file
// order. Together with ReadCSV it guards the export formats: a report
// written and read back must reconstruct every row.
//
// Every writer newline-terminates every row, so a final line without its
// newline is a truncated stream (a writer that died mid-row) and is
// reported as an error even when the fragment happens to parse as JSON —
// the resume path must never mistake a partial table for a complete one.
func ReadNDJSON(r io.Reader) ([]PointRow, error) {
	br := bufio.NewReaderSize(r, 64*1024)
	var rows []PointRow
	for {
		line, err := br.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("campaign: reading NDJSON: %w", err)
		}
		terminated := err == nil
		if len(line) > maxNDJSONRow {
			return nil, fmt.Errorf("campaign: NDJSON row %d exceeds %d bytes", len(rows), maxNDJSONRow)
		}
		line = bytes.TrimSuffix(line, []byte{'\n'})
		if len(line) > 0 {
			if !terminated {
				return nil, fmt.Errorf("campaign: truncated NDJSON: row %d is missing its terminating newline (partial write from a dead producer?)", len(rows))
			}
			var row PointRow
			if uerr := json.Unmarshal(line, &row); uerr != nil {
				return nil, fmt.Errorf("campaign: parsing NDJSON row %d: %w", len(rows), uerr)
			}
			rows = append(rows, row)
		}
		if !terminated {
			return rows, nil
		}
	}
}

// ReadCSV parses a WriteCSV table back into its rows. CSV carries no
// per-replicate detail and no sample counts, so Replicates is nil and
// the estimates' N is zero; every other field round-trips exactly
// (floats are written in shortest-exact form).
func ReadCSV(r io.Reader) ([]PointRow, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("campaign: reading CSV: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("campaign: CSV table has no header")
	}
	if got, want := records[0], csvHeader; !equalStrings(got, want) {
		return nil, fmt.Errorf("campaign: CSV header %q does not match the table format", got)
	}
	rows := make([]PointRow, 0, len(records)-1)
	for i, rec := range records[1:] {
		row, err := parseCSVRow(rec)
		if err != nil {
			return nil, fmt.Errorf("campaign: parsing CSV row %d: %w", i, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func parseCSVRow(rec []string) (PointRow, error) {
	if len(rec) != len(csvHeader) {
		return PointRow{}, fmt.Errorf("have %d columns, want %d", len(rec), len(csvHeader))
	}
	f := fieldParser{rec: rec}
	row := PointRow{
		Point: f.int(0), Width: f.int(1), Height: f.int(2),
		Topology: rec[3], Routing: rec[4], Protection: rec[5], Pattern: rec[6],
		LinkErrorRate: f.float(7), Mortality: rec[8], InjectionRate: f.float(9),
		Reps: f.int(10), Completed: f.int(11), Stalled: f.int(12), Aborted: f.int(13),
		Delivered:      EstimateRow{Mean: f.float(14)},
		Undeliverable:  EstimateRow{Mean: f.float(15)},
		ReachableFrac:  EstimateRow{Mean: f.float(16)},
		AvgLatency:     EstimateRow{Mean: f.float(17), CI95: f.float(18)},
		P95Latency:     EstimateRow{Mean: f.float(19), CI95: f.float(20)},
		Throughput:     EstimateRow{Mean: f.float(21), CI95: f.float(22)},
		EnergyPerMsgNJ: EstimateRow{Mean: f.float(23), CI95: f.float(24)},
		Error:          rec[25],
	}
	return row, f.err
}

// fieldParser accumulates the first strconv error across a row's typed
// columns, so parseCSVRow reads as a table instead of an error ladder.
type fieldParser struct {
	rec []string
	err error
}

func (f *fieldParser) int(i int) int {
	v, err := strconv.Atoi(f.rec[i])
	if err != nil && f.err == nil {
		f.err = fmt.Errorf("column %q: %w", csvHeader[i], err)
	}
	return v
}

func (f *fieldParser) float(i int) float64 {
	v, err := strconv.ParseFloat(f.rec[i], 64)
	if err != nil && f.err == nil {
		f.err = fmt.Errorf("column %q: %w", csvHeader[i], err)
	}
	return v
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
