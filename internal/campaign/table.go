package campaign

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// csvHeader is the fixed column order of WriteCSV (and the field order of
// WriteNDJSON's flat fields); it is part of the output format.
var csvHeader = []string{
	"point", "width", "height", "topology", "routing", "protection", "pattern",
	"link_error_rate", "injection_rate", "reps", "completed", "stalled", "aborted",
	"delivered_mean", "avg_latency_mean", "avg_latency_ci95",
	"p95_latency_mean", "p95_latency_ci95",
	"throughput_mean", "throughput_ci95",
	"energy_nj_mean", "energy_nj_ci95",
	"error",
}

// WriteCSV renders the report as one CSV row per point, in grid order,
// with mean and 95%-CI half-width columns for each replicated metric.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for i := range r.Points {
		p := &r.Points[i]
		errText := ""
		if p.Err != nil {
			errText = p.Err.Error()
		}
		row := []string{
			strconv.Itoa(p.Index),
			strconv.Itoa(p.Size.Width), strconv.Itoa(p.Size.Height),
			p.Topology.String(), p.Routing.String(), p.Protection.String(), p.Pattern.String(),
			formatFloat(p.LinkErrorRate), formatFloat(p.InjectionRate),
			strconv.Itoa(len(p.Reps)),
			strconv.Itoa(p.Agg.Completed), strconv.Itoa(p.Agg.Stalled), strconv.Itoa(p.Agg.Aborted),
			formatFloat(p.Agg.Delivered.Mean),
			formatFloat(p.Agg.AvgLatency.Mean), formatFloat(p.Agg.AvgLatency.CI95),
			formatFloat(p.Agg.P95Latency.Mean), formatFloat(p.Agg.P95Latency.CI95),
			formatFloat(p.Agg.Throughput.Mean), formatFloat(p.Agg.Throughput.CI95),
			formatFloat(p.Agg.EnergyPerMsgNJ.Mean), formatFloat(p.Agg.EnergyPerMsgNJ.CI95),
			errText,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ndjsonPoint is the NDJSON row shape: the point's coordinates and
// aggregate, plus one entry per replicate.
type ndjsonPoint struct {
	Point         int     `json:"point"`
	Width         int     `json:"width"`
	Height        int     `json:"height"`
	Topology      string  `json:"topology"`
	Routing       string  `json:"routing"`
	Protection    string  `json:"protection"`
	Pattern       string  `json:"pattern"`
	LinkErrorRate float64 `json:"link_error_rate"`
	InjectionRate float64 `json:"injection_rate"`

	Reps      int    `json:"reps"`
	Completed int    `json:"completed"`
	Stalled   int    `json:"stalled"`
	Aborted   int    `json:"aborted"`
	Error     string `json:"error,omitempty"`

	AvgLatency     ndjsonEstimate `json:"avg_latency"`
	P95Latency     ndjsonEstimate `json:"p95_latency"`
	Throughput     ndjsonEstimate `json:"throughput"`
	EnergyPerMsgNJ ndjsonEstimate `json:"energy_nj"`
	Delivered      ndjsonEstimate `json:"delivered"`

	Replicates []ndjsonRep `json:"replicates"`
}

type ndjsonEstimate struct {
	Mean float64 `json:"mean"`
	CI95 float64 `json:"ci95"`
	N    int     `json:"n"`
}

type ndjsonRep struct {
	Seed       uint64  `json:"seed"`
	Delivered  uint64  `json:"delivered"`
	Cycles     uint64  `json:"cycles"`
	AvgLatency float64 `json:"avg_latency"`
	P95Latency float64 `json:"p95_latency"`
	Throughput float64 `json:"throughput"`
	Stalled    bool    `json:"stalled,omitempty"`
	Aborted    bool    `json:"aborted,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// WriteNDJSON renders the report as one JSON object per line per point,
// in grid order, with per-replicate detail nested in each row.
func (r *Report) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range r.Points {
		p := &r.Points[i]
		row := ndjsonPoint{
			Point: p.Index, Width: p.Size.Width, Height: p.Size.Height,
			Topology: p.Topology.String(), Routing: p.Routing.String(),
			Protection: p.Protection.String(), Pattern: p.Pattern.String(),
			LinkErrorRate: p.LinkErrorRate, InjectionRate: p.InjectionRate,
			Reps: len(p.Reps), Completed: p.Agg.Completed,
			Stalled: p.Agg.Stalled, Aborted: p.Agg.Aborted,
			AvgLatency:     ndjsonEstimate(p.Agg.AvgLatency),
			P95Latency:     ndjsonEstimate(p.Agg.P95Latency),
			Throughput:     ndjsonEstimate(p.Agg.Throughput),
			EnergyPerMsgNJ: ndjsonEstimate(p.Agg.EnergyPerMsgNJ),
			Delivered:      ndjsonEstimate(p.Agg.Delivered),
		}
		if p.Err != nil {
			row.Error = p.Err.Error()
		}
		for _, rr := range p.Reps {
			if rr.Seed == 0 && rr.Err == nil {
				continue // never dispatched
			}
			rep := ndjsonRep{
				Seed:       rr.Seed,
				Delivered:  rr.Results.Delivered,
				Cycles:     rr.Results.Cycles,
				AvgLatency: rr.Results.AvgLatency,
				P95Latency: rr.Results.P95Latency,
				Throughput: rr.Results.Throughput.FlitsPerNodePerCycle(),
				Stalled:    rr.Results.Stalled,
				Aborted:    rr.Results.Aborted,
			}
			if rr.Err != nil {
				rep.Error = rr.Err.Error()
			}
			row.Replicates = append(row.Replicates, rep)
		}
		if err := enc.Encode(row); err != nil {
			return fmt.Errorf("campaign: encoding point %d: %w", p.Index, err)
		}
	}
	return nil
}
