package campaign

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// renderedTable produces a real two-point NDJSON table and its CSV twin
// for the truncation tests.
func renderedTable(t *testing.T) (ndjson, csv []byte, rows int) {
	t.Helper()
	spec := Spec{
		Base:           tinyBase(),
		InjectionRates: []float64{0.1, 0.2},
		Seeds:          1,
		Workers:        1,
	}
	report, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var nb, cb bytes.Buffer
	if err := report.WriteNDJSON(&nb); err != nil {
		t.Fatal(err)
	}
	if err := report.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	return nb.Bytes(), cb.Bytes(), len(report.Points)
}

// TestReadNDJSONTruncated covers partial row streams — the shape a
// crashed producer (dead worker, killed daemon) leaves behind. A final
// line missing its newline must error cleanly even when the fragment
// happens to parse as JSON, because there is no way to know the row was
// complete.
func TestReadNDJSONTruncated(t *testing.T) {
	table, _, n := renderedTable(t)

	full, err := ReadNDJSON(bytes.NewReader(table))
	if err != nil {
		t.Fatalf("intact table: %v", err)
	}
	if len(full) != n {
		t.Fatalf("intact table: %d rows, want %d", len(full), n)
	}

	// Chop the trailing newline only: the last row is byte-complete,
	// valid JSON, and still must be rejected.
	noNewline := bytes.TrimSuffix(table, []byte{'\n'})
	if _, err := ReadNDJSON(bytes.NewReader(noNewline)); err == nil {
		t.Fatal("complete JSON row without terminating newline was accepted")
	} else if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("want truncation error, got: %v", err)
	}

	// Chop mid-row: both the missing newline and the broken JSON make
	// this invalid; the reader must say truncated, not panic or accept.
	cut := table[:len(table)-len(table)/4]
	if cut[len(cut)-1] == '\n' {
		cut = cut[:len(cut)-1]
	}
	if _, err := ReadNDJSON(bytes.NewReader(cut)); err == nil {
		t.Fatal("mid-row truncation was accepted")
	}

	// A clean prefix of whole lines is a valid (shorter) table: partial
	// results from an aborted run stay readable.
	firstLine := bytes.IndexByte(table, '\n') + 1
	prefix, err := ReadNDJSON(bytes.NewReader(table[:firstLine]))
	if err != nil {
		t.Fatalf("whole-line prefix: %v", err)
	}
	if len(prefix) != 1 {
		t.Fatalf("whole-line prefix: %d rows, want 1", len(prefix))
	}

	if rows, err := ReadNDJSON(bytes.NewReader(nil)); err != nil || len(rows) != 0 {
		t.Fatalf("empty input: rows=%d err=%v", len(rows), err)
	}
}

// TestReadCSVTruncated: a record cut mid-line loses columns (or breaks a
// quoted field) and must be rejected, while a whole-record prefix parses.
func TestReadCSVTruncated(t *testing.T) {
	_, table, n := renderedTable(t)

	full, err := ReadCSV(bytes.NewReader(table))
	if err != nil {
		t.Fatalf("intact table: %v", err)
	}
	if len(full) != n {
		t.Fatalf("intact table: %d rows, want %d", len(full), n)
	}

	cut := bytes.TrimRight(table[:len(table)-len(table)/4], "\n")
	if _, err := ReadCSV(bytes.NewReader(cut)); err == nil {
		t.Fatal("mid-record truncation was accepted")
	}

	lines := bytes.SplitAfter(table, []byte{'\n'})
	prefix := append(append([]byte(nil), lines[0]...), lines[1]...)
	rows, err := ReadCSV(bytes.NewReader(prefix))
	if err != nil {
		t.Fatalf("whole-record prefix: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("whole-record prefix: %d rows, want 1", len(rows))
	}
}

func TestMergeRows(t *testing.T) {
	table, _, n := renderedTable(t)
	rows, err := ReadNDJSON(bytes.NewReader(table))
	if err != nil {
		t.Fatal(err)
	}

	// Shards arrive out of order, with an idempotent duplicate.
	merged, missing, err := MergeRows(n, []PointRow{rows[1]}, []PointRow{rows[0]}, []PointRow{rows[1]})
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 || len(merged) != n {
		t.Fatalf("merged=%d missing=%v", len(merged), missing)
	}
	for i := range merged {
		if merged[i].Point != i {
			t.Fatalf("merged[%d].Point = %d", i, merged[i].Point)
		}
	}

	_, missing, err = MergeRows(n, []PointRow{rows[1]})
	if err != nil || len(missing) != 1 || missing[0] != 0 {
		t.Fatalf("partial merge: missing=%v err=%v", missing, err)
	}

	conflict := rows[1]
	conflict.Completed++
	if _, _, err := MergeRows(n, []PointRow{rows[1]}, []PointRow{conflict}); err == nil {
		t.Fatal("conflicting duplicate was accepted")
	}

	bad := rows[0]
	bad.Point = n + 3
	if _, _, err := MergeRows(n, []PointRow{bad}); err == nil {
		t.Fatal("out-of-range row was accepted")
	}
}
