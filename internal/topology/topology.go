// Package topology models the physical structure of the on-chip network:
// node placement, ports, inter-router links, and hard faults (permanently
// failed links). The paper's evaluation platform is an 8x8 2-D mesh
// (§2.2); a torus is provided as an extension because the tornado traffic
// pattern and several cited routing algorithms originate there.
package topology

import (
	"fmt"
	"strings"

	"ftnoc/internal/flit"
)

// Port identifies one of a router's physical channels. The paper's generic
// router has 5 PCs: the four mesh directions plus the local
// processing-element port (§4.1).
type Port uint8

// Router ports. Local is the PE-to-router channel.
const (
	Local Port = iota
	North
	East
	South
	West
	// NumPorts is the number of physical channels per router.
	NumPorts
)

// String implements fmt.Stringer.
func (p Port) String() string {
	switch p {
	case Local:
		return "L"
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	default:
		return fmt.Sprintf("Port(%d)", uint8(p))
	}
}

// Valid reports whether p is a real port.
func (p Port) Valid() bool { return p < NumPorts }

// Opposite returns the port on the neighboring router that faces p.
// Local has no opposite and panics.
func (p Port) Opposite() Port {
	switch p {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	default:
		panic(fmt.Sprintf("topology: port %v has no opposite", p))
	}
}

// Kind selects the network shape.
type Kind uint8

// Supported topologies.
const (
	Mesh Kind = iota + 1
	Torus
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Mesh:
		return "mesh"
	case Torus:
		return "torus"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind maps a topology name ("mesh" or "torus", case-insensitive)
// to its Kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "mesh":
		return Mesh, nil
	case "torus":
		return Torus, nil
	default:
		return 0, fmt.Errorf("unknown topology %q (want mesh or torus)", s)
	}
}

// Coord is a node's (x, y) position. x grows eastward, y grows southward,
// node 0 at the north-west corner — the usual NoC floorplan convention.
type Coord struct {
	X, Y int
}

// LinkID names a directed inter-router link: the flit leaves node From
// through port Dir.
type LinkID struct {
	From flit.NodeID
	Dir  Port
}

// Topology describes a W x H grid of routers and which inter-router links
// exist (and still function, given hard faults).
type Topology struct {
	kind   Kind
	w, h   int
	downed map[LinkID]bool
}

// New creates a W x H topology of the given kind. Width and height must be
// at least 1; the paper's platform is New(Mesh, 8, 8).
func New(kind Kind, w, h int) *Topology {
	if w < 1 || h < 1 {
		panic("topology: dimensions must be >= 1")
	}
	if kind != Mesh && kind != Torus {
		panic("topology: unknown kind")
	}
	return &Topology{kind: kind, w: w, h: h, downed: make(map[LinkID]bool)}
}

// Kind returns the topology shape.
func (t *Topology) Kind() Kind { return t.kind }

// Width returns the number of columns.
func (t *Topology) Width() int { return t.w }

// Height returns the number of rows.
func (t *Topology) Height() int { return t.h }

// Nodes returns the node count.
func (t *Topology) Nodes() int { return t.w * t.h }

// CoordOf converts a node ID to grid coordinates.
func (t *Topology) CoordOf(id flit.NodeID) Coord {
	n := int(id)
	return Coord{X: n % t.w, Y: n / t.w}
}

// IDOf converts grid coordinates to a node ID. Coordinates wrap in a
// torus; out-of-range mesh coordinates panic.
func (t *Topology) IDOf(c Coord) flit.NodeID {
	if t.kind == Torus {
		c.X = ((c.X % t.w) + t.w) % t.w
		c.Y = ((c.Y % t.h) + t.h) % t.h
	}
	if c.X < 0 || c.X >= t.w || c.Y < 0 || c.Y >= t.h {
		panic(fmt.Sprintf("topology: coordinate %+v out of %dx%d mesh", c, t.w, t.h))
	}
	return flit.NodeID(c.Y*t.w + c.X)
}

// Neighbor returns the node reached by leaving id through dir, and whether
// such a link physically exists (mesh edges have none; torus wraps).
// Hard faults do not affect Neighbor; see LinkUp.
func (t *Topology) Neighbor(id flit.NodeID, dir Port) (flit.NodeID, bool) {
	c := t.CoordOf(id)
	switch dir {
	case North:
		c.Y--
	case South:
		c.Y++
	case East:
		c.X++
	case West:
		c.X--
	default:
		return 0, false
	}
	if t.kind == Mesh && (c.X < 0 || c.X >= t.w || c.Y < 0 || c.Y >= t.h) {
		return 0, false
	}
	return t.IDOf(c), true
}

// FailLink marks the directed link leaving from through dir as permanently
// down (a hard fault, §3.2). Failing a non-existent link panics.
func (t *Topology) FailLink(from flit.NodeID, dir Port) {
	if _, ok := t.Neighbor(from, dir); !ok {
		panic(fmt.Sprintf("topology: no link %v from node %d", dir, from))
	}
	t.downed[LinkID{From: from, Dir: dir}] = true
}

// RepairLink clears a hard fault.
func (t *Topology) RepairLink(from flit.NodeID, dir Port) {
	delete(t.downed, LinkID{From: from, Dir: dir})
}

// LinkUp reports whether the directed link leaving from through dir both
// exists and is not hard-faulted.
func (t *Topology) LinkUp(from flit.NodeID, dir Port) bool {
	if _, ok := t.Neighbor(from, dir); !ok {
		return false
	}
	return !t.downed[LinkID{From: from, Dir: dir}]
}

// Links enumerates every directed inter-router link that physically
// exists, including hard-faulted ones.
func (t *Topology) Links() []LinkID {
	var ls []LinkID
	for n := 0; n < t.Nodes(); n++ {
		for _, d := range []Port{North, East, South, West} {
			if _, ok := t.Neighbor(flit.NodeID(n), d); ok {
				ls = append(ls, LinkID{From: flit.NodeID(n), Dir: d})
			}
		}
	}
	return ls
}

// HopDistance returns the minimal hop count between two nodes under the
// topology's geometry (Manhattan for mesh, wrap-aware for torus).
func (t *Topology) HopDistance(a, b flit.NodeID) int {
	ca, cb := t.CoordOf(a), t.CoordOf(b)
	dx := abs(ca.X - cb.X)
	dy := abs(ca.Y - cb.Y)
	if t.kind == Torus {
		if w := t.w - dx; w < dx {
			dx = w
		}
		if h := t.h - dy; h < dy {
			dy = h
		}
	}
	return dx + dy
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
