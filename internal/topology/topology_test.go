package topology

import (
	"testing"
	"testing/quick"

	"ftnoc/internal/flit"
)

func TestPortStringAndValid(t *testing.T) {
	want := map[Port]string{Local: "L", North: "N", East: "E", South: "S", West: "W"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
		if !p.Valid() {
			t.Errorf("%v reported invalid", p)
		}
	}
	if NumPorts.Valid() {
		t.Error("NumPorts reported valid")
	}
}

func TestPortOpposite(t *testing.T) {
	pairs := map[Port]Port{North: South, South: North, East: West, West: East}
	for a, b := range pairs {
		if a.Opposite() != b {
			t.Errorf("%v.Opposite() = %v, want %v", a, a.Opposite(), b)
		}
	}
}

func TestLocalOppositePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Local.Opposite() did not panic")
		}
	}()
	Local.Opposite()
}

func TestCoordIDRoundTrip(t *testing.T) {
	m := New(Mesh, 8, 8)
	for n := 0; n < m.Nodes(); n++ {
		id := flit.NodeID(n)
		if got := m.IDOf(m.CoordOf(id)); got != id {
			t.Fatalf("round trip %d -> %d", id, got)
		}
	}
	if c := m.CoordOf(0); c.X != 0 || c.Y != 0 {
		t.Errorf("node 0 at %+v, want origin", c)
	}
	if c := m.CoordOf(63); c.X != 7 || c.Y != 7 {
		t.Errorf("node 63 at %+v, want (7,7)", c)
	}
	if c := m.CoordOf(9); c.X != 1 || c.Y != 1 {
		t.Errorf("node 9 at %+v, want (1,1)", c)
	}
}

func TestMeshNeighbors(t *testing.T) {
	m := New(Mesh, 4, 4)
	// Interior node 5 = (1,1): all four neighbors.
	cases := []struct {
		dir  Port
		want flit.NodeID
	}{
		{North, 1}, {South, 9}, {East, 6}, {West, 4},
	}
	for _, c := range cases {
		got, ok := m.Neighbor(5, c.dir)
		if !ok || got != c.want {
			t.Errorf("Neighbor(5,%v) = %d,%v want %d", c.dir, got, ok, c.want)
		}
	}
	// Corner 0: no north, no west.
	if _, ok := m.Neighbor(0, North); ok {
		t.Error("corner has a north neighbor")
	}
	if _, ok := m.Neighbor(0, West); ok {
		t.Error("corner has a west neighbor")
	}
	// Local direction is never a neighbor.
	if _, ok := m.Neighbor(5, Local); ok {
		t.Error("Local reported as a link")
	}
}

func TestTorusWrap(t *testing.T) {
	tr := New(Torus, 4, 4)
	if got, ok := tr.Neighbor(0, North); !ok || got != 12 {
		t.Errorf("torus Neighbor(0,N) = %d,%v, want 12", got, ok)
	}
	if got, ok := tr.Neighbor(0, West); !ok || got != 3 {
		t.Errorf("torus Neighbor(0,W) = %d,%v, want 3", got, ok)
	}
	if got, ok := tr.Neighbor(15, South); !ok || got != 3 {
		t.Errorf("torus Neighbor(15,S) = %d,%v, want 3", got, ok)
	}
}

func TestNeighborSymmetry(t *testing.T) {
	for _, kind := range []Kind{Mesh, Torus} {
		topo := New(kind, 5, 3)
		for n := 0; n < topo.Nodes(); n++ {
			for _, d := range []Port{North, East, South, West} {
				nb, ok := topo.Neighbor(flit.NodeID(n), d)
				if !ok {
					continue
				}
				back, ok2 := topo.Neighbor(nb, d.Opposite())
				if !ok2 || back != flit.NodeID(n) {
					t.Fatalf("%v: Neighbor(%d,%v)=%d but reverse = %d,%v", kind, n, d, nb, back, ok2)
				}
			}
		}
	}
}

func TestLinkCount(t *testing.T) {
	// 4x4 mesh: 2*(3*4)*2 directed links = 48.
	if got := len(New(Mesh, 4, 4).Links()); got != 48 {
		t.Errorf("4x4 mesh has %d directed links, want 48", got)
	}
	// 4x4 torus: every node has 4 out-links = 64.
	if got := len(New(Torus, 4, 4).Links()); got != 64 {
		t.Errorf("4x4 torus has %d directed links, want 64", got)
	}
}

func TestHardFaults(t *testing.T) {
	m := New(Mesh, 4, 4)
	if !m.LinkUp(5, East) {
		t.Fatal("healthy link reported down")
	}
	m.FailLink(5, East)
	if m.LinkUp(5, East) {
		t.Fatal("failed link reported up")
	}
	// Directed: the reverse direction is unaffected.
	if !m.LinkUp(6, West) {
		t.Fatal("reverse direction failed too")
	}
	m.RepairLink(5, East)
	if !m.LinkUp(5, East) {
		t.Fatal("repaired link still down")
	}
}

func TestFailNonexistentLinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("failing a mesh-edge link did not panic")
		}
	}()
	New(Mesh, 4, 4).FailLink(0, North)
}

func TestHopDistance(t *testing.T) {
	m := New(Mesh, 8, 8)
	cases := []struct {
		a, b flit.NodeID
		want int
	}{
		{0, 0, 0}, {0, 7, 7}, {0, 63, 14}, {9, 10, 1}, {9, 18, 2},
	}
	for _, c := range cases {
		if got := m.HopDistance(c.a, c.b); got != c.want {
			t.Errorf("mesh HopDistance(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	tr := New(Torus, 8, 8)
	if got := tr.HopDistance(0, 7); got != 1 {
		t.Errorf("torus HopDistance(0,7) = %d, want 1 (wrap)", got)
	}
	if got := tr.HopDistance(0, 63); got != 2 {
		t.Errorf("torus HopDistance(0,63) = %d, want 2 (wrap both dims)", got)
	}
}

func TestHopDistanceSymmetric(t *testing.T) {
	f := func(a, b uint8) bool {
		m := New(Mesh, 8, 8)
		x, y := flit.NodeID(a%64), flit.NodeID(b%64)
		return m.HopDistance(x, y) == m.HopDistance(y, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if Mesh.String() != "mesh" || Torus.String() != "torus" {
		t.Error("Kind.String wrong")
	}
}

func TestNewPanicsOnBadInput(t *testing.T) {
	for _, fn := range []func(){
		func() { New(Mesh, 0, 4) },
		func() { New(Kind(9), 4, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad topology construction did not panic")
				}
			}()
			fn()
		}()
	}
}
