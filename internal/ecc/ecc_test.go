package ecc

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeClean(t *testing.T) {
	words := []uint64{0, 1, 0xffffffffffffffff, 0xdeadbeefcafebabe, 1 << 63, 0x5555555555555555}
	for _, w := range words {
		c := Encode(w)
		d, cc, out := Decode(w, c)
		if out != OK || d != w || cc != c {
			t.Errorf("Decode(Encode(%#x)) = (%#x,%#x,%v), want clean", w, d, cc, out)
		}
	}
}

func TestSingleDataBitCorrected(t *testing.T) {
	w := uint64(0xdeadbeefcafebabe)
	c := Encode(w)
	for i := 0; i < 64; i++ {
		d, _, out := Decode(FlipDataBit(w, i), c)
		if out != Corrected {
			t.Fatalf("data bit %d flip: outcome %v, want Corrected", i, out)
		}
		if d != w {
			t.Fatalf("data bit %d flip: corrected to %#x, want %#x", i, d, w)
		}
	}
}

func TestSingleCheckBitCorrected(t *testing.T) {
	w := uint64(0x0123456789abcdef)
	c := Encode(w)
	for i := 0; i < 8; i++ {
		d, cc, out := Decode(w, FlipCheckBit(c, i))
		if out != Corrected {
			t.Fatalf("check bit %d flip: outcome %v, want Corrected", i, out)
		}
		if d != w || cc != c {
			t.Fatalf("check bit %d flip: repaired to (%#x,%#x), want (%#x,%#x)", i, d, cc, w, c)
		}
	}
}

func TestDoubleDataBitDetected(t *testing.T) {
	w := uint64(0xfeedfacefeedface)
	c := Encode(w)
	for i := 0; i < 64; i += 7 {
		for j := i + 1; j < 64; j += 11 {
			_, _, out := Decode(FlipDataBit(FlipDataBit(w, i), j), c)
			if out != Detected {
				t.Fatalf("double flip (%d,%d): outcome %v, want Detected", i, j, out)
			}
		}
	}
}

func TestDataPlusCheckBitDetected(t *testing.T) {
	w := uint64(0x1122334455667788)
	c := Encode(w)
	for i := 0; i < 64; i += 9 {
		for j := 0; j < 8; j++ {
			_, _, out := Decode(FlipDataBit(w, i), FlipCheckBit(c, j))
			if out != Detected {
				t.Fatalf("data %d + check %d flip: outcome %v, want Detected", i, j, out)
			}
		}
	}
}

func TestDoubleCheckBitDetected(t *testing.T) {
	w := uint64(0xa5a5a5a5a5a5a5a5)
	c := Encode(w)
	for i := 0; i < 7; i++ {
		for j := i + 1; j < 7; j++ {
			_, _, out := Decode(w, FlipCheckBit(FlipCheckBit(c, i), j))
			if out != Detected {
				t.Fatalf("check bits (%d,%d) flip: outcome %v, want Detected", i, j, out)
			}
		}
	}
}

func TestOutcomeString(t *testing.T) {
	cases := map[Outcome]string{OK: "ok", Corrected: "corrected", Detected: "detected", Outcome(0): "unknown"}
	for o, want := range cases {
		if o.String() != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", o, o.String(), want)
		}
	}
}

// Property: every single-bit corruption of any codeword is corrected back
// to the original.
func TestSECProperty(t *testing.T) {
	f := func(w uint64, bit uint8) bool {
		c := Encode(w)
		var d uint64
		var out Outcome
		if int(bit%72) < 64 {
			d, _, out = Decode(FlipDataBit(w, int(bit%64)), c)
		} else {
			d, _, out = Decode(w, FlipCheckBit(c, int(bit%8)))
		}
		return out == Corrected && d == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: every double-bit corruption (two distinct data bits) is
// detected, never silently "corrected" to wrong data.
func TestDEDProperty(t *testing.T) {
	f := func(w uint64, a, b uint8) bool {
		i, j := int(a%64), int(b%64)
		if i == j {
			return true
		}
		c := Encode(w)
		_, _, out := Decode(FlipDataBit(FlipDataBit(w, i), j), c)
		return out == Detected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: clean codewords always decode OK.
func TestCleanProperty(t *testing.T) {
	f := func(w uint64) bool {
		d, _, out := Decode(w, Encode(w))
		return out == OK && d == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Encode(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

func BenchmarkDecodeClean(b *testing.B) {
	w := uint64(0xdeadbeefcafebabe)
	c := Encode(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decode(w, c)
	}
}

func BenchmarkDecodeCorrect(b *testing.B) {
	w := uint64(0xdeadbeefcafebabe)
	c := Encode(w)
	bad := FlipDataBit(w, 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decode(bad, c)
	}
}
