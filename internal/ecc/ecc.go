// Package ecc implements the Single Error Correction / Double Error
// Detection (SEC/DED) code that protects flit contents on inter-router
// links and in retransmission buffers, as assumed throughout the paper
// (§3): single-bit upsets are corrected in place by the receiver's
// error-detection/correction unit, double-bit upsets are detected and
// trigger the NACK/retransmission path.
//
// The code is an extended Hamming(72,64): 64 data bits, 7 Hamming check
// bits and one overall parity bit. Codewords are represented as the data
// word (uint64) plus an 8-bit check field, matching the Flit.Word /
// Flit.Check pair in package flit.
package ecc

import "math/bits"

// Outcome classifies the result of decoding a possibly corrupted codeword.
type Outcome uint8

// Decode outcomes.
const (
	// OK means the codeword was error-free.
	OK Outcome = iota + 1
	// Corrected means exactly one bit was flipped and has been repaired.
	Corrected
	// Detected means an uncorrectable (two-bit) error was detected; the
	// returned data must not be used.
	Detected
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Detected:
		return "detected"
	default:
		return "unknown"
	}
}

// The codeword has 72 bit positions. Positions are numbered 1..72 in the
// classical Hamming arrangement: power-of-two positions (1,2,4,8,16,32,64)
// hold the 7 Hamming check bits, position 0 (kept separate) holds the
// overall parity, and the remaining 64 positions hold data bits in
// ascending order.

// dataPositions[i] is the 1-based Hamming position of data bit i.
var dataPositions = buildDataPositions()

// positionOfData inverts dataPositions: positionOfData[pos] = data bit
// index + 1, or 0 if pos is a check position.
var positionOfData = buildPositionIndex()

// checkMasks[k] has bit i set iff data bit i contributes to Hamming check
// bit k, i.e. iff dataPositions[i] has bit k set. Precomputing the masks
// turns the per-flit check computation into 7 popcounts.
var checkMasks = buildCheckMasks()

func buildDataPositions() [64]uint8 {
	var dp [64]uint8
	i := 0
	for pos := 1; pos <= 72 && i < 64; pos++ {
		if pos&(pos-1) == 0 { // power of two: check bit position
			continue
		}
		dp[i] = uint8(pos)
		i++
	}
	return dp
}

func buildPositionIndex() [73]uint8 {
	var idx [73]uint8
	for i, pos := range dataPositions {
		idx[pos] = uint8(i) + 1
	}
	return idx
}

func buildCheckMasks() [7]uint64 {
	var m [7]uint64
	for i, pos := range dataPositions {
		for k := 0; k < 7; k++ {
			if pos>>uint(k)&1 == 1 {
				m[k] |= 1 << uint(i)
			}
		}
	}
	return m
}

// hammingChecks computes the 7 Hamming check bits for the 64-bit data
// word. Check bit k (k = 0..6, at position 2^k) is the parity of all data
// positions whose position number has bit k set — the parity of the set
// data bits selected by checkMasks[k].
func hammingChecks(data uint64) uint8 {
	var checks uint8
	for k := 0; k < 7; k++ {
		checks |= uint8(bits.OnesCount64(data&checkMasks[k])&1) << uint(k)
	}
	return checks
}

// Encode computes the 8-bit check field (7 Hamming bits in bits 0..6,
// overall parity in bit 7) for a 64-bit data word.
func Encode(data uint64) uint8 {
	checks := hammingChecks(data)
	parity := uint8(bits.OnesCount64(data)+bits.OnesCount8(checks)) & 1
	return checks | parity<<7
}

// Decode examines a received (data, check) pair. It returns the corrected
// data word, the corrected check field, and the decode outcome:
//
//   - OK: no error.
//   - Corrected: a single-bit error (in data, a check bit, or the parity
//     bit itself) was repaired; returned values are clean.
//   - Detected: a double-bit error; returned values are unreliable.
func Decode(data uint64, check uint8) (uint64, uint8, Outcome) {
	syndrome := hammingChecks(data) ^ (check & 0x7f)
	parityOK := uint8(bits.OnesCount64(data)+bits.OnesCount8(check))&1 == 0

	switch {
	case syndrome == 0 && parityOK:
		return data, check, OK
	case syndrome == 0 && !parityOK:
		// Overall parity bit itself flipped.
		return data, check ^ 0x80, Corrected
	case parityOK:
		// Non-zero syndrome with correct overall parity means an even
		// number of flips: uncorrectable.
		return data, check, Detected
	default:
		// Single-bit error at position `syndrome`.
		pos := int(syndrome)
		if pos > 72 {
			// Syndrome points outside the codeword: alias of a multi-bit
			// error; report detected.
			return data, check, Detected
		}
		if pos&(pos-1) == 0 {
			// A check bit flipped; data is clean, repair the check field.
			k := bits.TrailingZeros(uint(pos))
			return data, check ^ 1<<uint(k), Corrected
		}
		di := positionOfData[pos]
		if di == 0 {
			return data, check, Detected
		}
		return data ^ 1<<uint(di-1), check, Corrected
	}
}

// FlipDataBit returns data with bit i (0..63) flipped. It is the injection
// primitive used by the fault package.
func FlipDataBit(data uint64, i int) uint64 { return data ^ 1<<uint(i&63) }

// FlipCheckBit returns check with bit i (0..7) flipped.
func FlipCheckBit(check uint8, i int) uint8 { return check ^ 1<<uint(i&7) }
