package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"log/slog"

	"ftnoc/internal/obs"
)

// scrapeMetrics fetches /metrics, asserting the exposition content type.
func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("metrics content-type = %q, want %q", ct, obs.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts one sample line ("series value") from a scrape.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if v, ok := strings.CutPrefix(line, series+" "); ok {
			f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				t.Fatalf("series %q has unparsable value %q", series, v)
			}
			return f
		}
	}
	t.Fatalf("series %q not in scrape:\n%s", series, body)
	return 0
}

// TestMetricsExposition runs a real campaign and asserts the scrape
// covers every advertised family with sane values: queue, jobs, cache,
// HTTP, histograms, build info, and runtime health.
func TestMetricsExposition(t *testing.T) {
	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer shutdownNow(t, s)

	sr, resp := postSpec(t, ts, tinySpecBody(31))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	waitState(t, ts, sr.ID, StateDone)

	body := scrapeMetrics(t, ts)

	// Typed headers for the major families.
	for _, want := range []string{
		"# TYPE nocd_http_requests_total counter",
		"# TYPE nocd_http_request_seconds histogram",
		"# TYPE nocd_jobs_completed_total counter",
		"# TYPE nocd_job_queue_wait_seconds histogram",
		"# TYPE nocd_job_run_seconds histogram",
		"# TYPE nocd_jobs gauge",
		"# TYPE nocd_queue_depth gauge",
		"# TYPE nocd_cache_hits_total counter",
		"# TYPE nocd_sse_subscribers gauge",
		"# TYPE nocd_workers_busy gauge",
		"# TYPE nocd_goroutines gauge",
		"# TYPE nocd_heap_alloc_bytes gauge",
		"# TYPE nocd_build_info gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	if v := metricValue(t, body, `nocd_http_requests_total{method="POST",route="POST /v1/campaigns",status="202"}`); v != 1 {
		t.Errorf("submit request count = %v, want 1", v)
	}
	if v := metricValue(t, body, `nocd_jobs{state="done"}`); v != 1 {
		t.Errorf("done jobs gauge = %v, want 1", v)
	}
	if v := metricValue(t, body, `nocd_jobs_completed_total{state="done"}`); v != 1 {
		t.Errorf("jobs completed = %v, want 1", v)
	}
	if v := metricValue(t, body, "nocd_job_queue_wait_seconds_count"); v != 1 {
		t.Errorf("queue wait observations = %v, want 1", v)
	}
	if v := metricValue(t, body, "nocd_job_run_seconds_count"); v != 1 {
		t.Errorf("run duration observations = %v, want 1", v)
	}
	if v := metricValue(t, body, "nocd_workers"); v != 2 {
		t.Errorf("workers = %v, want 2", v)
	}
	if v := metricValue(t, body, "nocd_queue_capacity"); v != 16 {
		t.Errorf("queue capacity = %v, want default 16", v)
	}
	if v := metricValue(t, body, "nocd_goroutines"); v <= 0 {
		t.Errorf("goroutines = %v", v)
	}
	if v := metricValue(t, body, "nocd_heap_alloc_bytes"); v <= 0 {
		t.Errorf("heap alloc = %v", v)
	}
	if v := metricValue(t, body, "nocd_uptime_seconds"); v < 0 {
		t.Errorf("uptime = %v", v)
	}
	// Build info is a constant 1 regardless of whether the test binary
	// carries VCS stamps; the series must exist with some label set.
	if !strings.Contains(body, "nocd_build_info{") {
		t.Error("nocd_build_info series missing")
	}

	// A histogram's +Inf bucket equals its count (cumulative contract).
	inf := metricValue(t, body, `nocd_job_run_seconds_bucket{le="+Inf"}`)
	if count := metricValue(t, body, "nocd_job_run_seconds_count"); inf != count {
		t.Errorf("+Inf bucket %v != count %v", inf, count)
	}
}

// TestStatsAndMetricsAgree is the single-snapshot contract: after a
// cached resubmit, the cache counters reported by /v1/stats and by
// /metrics are identical — both derive from Server.Stats(), so the two
// observability surfaces cannot diverge.
func TestStatsAndMetricsAgree(t *testing.T) {
	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer shutdownNow(t, s)

	body := tinySpecBody(32)
	sr, _ := postSpec(t, ts, body)
	waitState(t, ts, sr.ID, StateDone)

	// Byte-identical resubmit: a content-addressed cache hit.
	sr2, resp2 := postSpec(t, ts, body)
	if resp2.StatusCode != http.StatusOK || !sr2.Cached {
		t.Fatalf("resubmit: status %d cached %v", resp2.StatusCode, sr2.Cached)
	}

	httpResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var st Stats
	if err := json.NewDecoder(httpResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	scrape := scrapeMetrics(t, ts)

	if st.Cache.Hits < 1 || st.Cache.Misses < 1 {
		t.Fatalf("cache counters did not move: %+v", st.Cache)
	}
	pairs := []struct {
		series string
		want   float64
	}{
		{"nocd_cache_hits_total", float64(st.Cache.Hits)},
		{"nocd_cache_misses_total", float64(st.Cache.Misses)},
		{"nocd_cache_evictions_total", float64(st.Cache.Evictions)},
		{"nocd_cache_entries", float64(st.Cache.Entries)},
		{"nocd_cache_bytes", float64(st.Cache.Bytes)},
		{"nocd_queue_depth", float64(st.QueueDepth)},
		{"nocd_workers", float64(st.Workers)},
		{`nocd_jobs{state="done"}`, float64(st.Jobs[string(StateDone)])},
	}
	for _, p := range pairs {
		if got := metricValue(t, scrape, p.series); got != p.want {
			t.Errorf("%s = %v, /v1/stats says %v", p.series, got, p.want)
		}
	}
	// Both submissions reached done: one ran, one was born finished from
	// the cache. The terminal counter must count them both.
	if v := metricValue(t, scrape, `nocd_jobs_completed_total{state="done"}`); v != 2 {
		t.Errorf("jobs completed = %v, want 2 (fresh + cached)", v)
	}
	// But only one campaign actually executed.
	if v := metricValue(t, scrape, "nocd_job_run_seconds_count"); v != 1 {
		t.Errorf("run observations = %v, want 1 (cache hits never run)", v)
	}
}

// TestConcurrentMetricsScrapes hammers /metrics while a campaign is
// running and workers/queue state churn — the scrape path must be safe
// under the race detector and always well-formed.
func TestConcurrentMetricsScrapes(t *testing.T) {
	g := newStubRunner()
	s := newServer(Options{Workers: 1, QueueDepth: 4}, g.run)
	ts := httptest.NewServer(s)
	defer ts.Close()

	sr, _ := postSpec(t, ts, tinySpecBody(33))
	<-g.started // the job is now running

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 10; n++ {
				body := scrapeMetrics(t, ts)
				if !strings.Contains(body, "nocd_workers_busy") {
					t.Error("scrape missing nocd_workers_busy")
					return
				}
			}
		}()
	}
	wg.Wait()

	// Mid-run state: the lone worker is busy.
	if v := metricValue(t, scrapeMetrics(t, ts), "nocd_workers_busy"); v != 1 {
		t.Errorf("workers busy mid-run = %v, want 1", v)
	}

	close(g.release)
	waitState(t, ts, sr.ID, StateDone)
	if v := metricValue(t, scrapeMetrics(t, ts), "nocd_workers_busy"); v != 0 {
		t.Errorf("workers busy after drain = %v, want 0", v)
	}
	shutdownNow(t, s)
}

// TestHealthzBuildInfo: /healthz now reports liveness plus build
// identity and uptime.
func TestHealthzBuildInfo(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer shutdownNow(t, s)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("healthz content-type = %q", ct)
	}
	var hz healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" {
		t.Errorf("status = %q", hz.Status)
	}
	if hz.UptimeSeconds < 0 {
		t.Errorf("uptime = %v", hz.UptimeSeconds)
	}
	if hz.GoVersion == "" {
		t.Error("go_version empty")
	}
	// Version/Revision are empty under `go test` (no VCS stamping) — the
	// fields just have to round-trip, which Decode above already proved.
}

// lockedBuffer lets the test read log output that handler goroutines
// write concurrently.
type lockedBuffer struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestStructuredRequestLogs: every request gets a log record carrying a
// request id, and the job lifecycle (submitted → started → finished)
// logs under the job id.
func TestStructuredRequestLogs(t *testing.T) {
	var buf lockedBuffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	g := newStubRunner()
	s := newServer(Options{Workers: 1, Logger: logger}, g.run)
	ts := httptest.NewServer(s)

	sr, _ := postSpec(t, ts, tinySpecBody(34))
	<-g.started
	close(g.release)
	waitState(t, ts, sr.ID, StateDone)

	// A malformed submission logs with its 400 status too.
	if _, resp := postSpec(t, ts, `{"bogus"`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec = %d", resp.StatusCode)
	}

	ts.Close() // waits for in-flight handlers, so the log is complete
	shutdownNow(t, s)

	got := buf.String()
	for _, want := range []string{
		"msg=http",
		"req=r1",
		`route="POST /v1/campaigns"`,
		"status=202",
		"status=400",
		`msg="campaign submitted"`,
		`msg="job started"`,
		`msg="job finished"`,
		"job=" + sr.ID,
		"state=done",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("log missing %q in:\n%s", want, got)
		}
	}
}
