package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestSubmitErrorMessages holds the 400 path to more than its status
// code: the body must be the JSON error document with a message that
// names the actual problem, because the daemon's clients (and humans
// with curl) debug their specs from it.
func TestSubmitErrorMessages(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer shutdownNow(t, s)

	cases := []struct {
		name    string
		body    string
		mention string // substring the error message must contain
	}{
		{"malformed json", `{"seeds": `, "decoding spec"},
		{"unknown field", `{"bogus": 1}`, "bogus"},
		{"bad routing name", `{"routings": ["zigzag"]}`, "zigzag"},
		{"bad pattern name", `{"patterns": ["QQ"]}`, "QQ"},
		{"bad size string", `{"sizes": ["4by4"]}`, "4by4"},
		{"invalid point", `{"base": {"Width": 4, "Height": 4}, "injection_rates": [1.5]}`, "InjectionRate"},
		{"negative workers", `{"workers": -1}`, "Workers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("error content-type %q", ct)
			}
			var body struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("error body not the JSON error document: %v", err)
			}
			if !strings.Contains(body.Error, tc.mention) {
				t.Fatalf("error %q does not mention %q", body.Error, tc.mention)
			}
		})
	}
}

// TestCancelBeforeStart cancels a job that is still queued behind a
// running one: it must land in canceled having never started, the
// worker must skip it entirely, and the job ahead of it must finish
// undisturbed.
func TestCancelBeforeStart(t *testing.T) {
	g := newStubRunner()
	s := newServer(Options{Workers: 1, QueueDepth: 4}, g.run)
	ts := httptest.NewServer(s)
	defer ts.Close()

	srRun, _ := postSpec(t, ts, tinySpecBody(1))
	<-g.started // the lone worker holds job A
	srQueued, _ := postSpec(t, ts, tinySpecBody(2))

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+srQueued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE queued job = %d, want 202", resp.StatusCode)
	}

	st := waitState(t, ts, srQueued.ID, StateCanceled)
	if st.Started != "" {
		t.Fatalf("canceled-before-start job reports a start time: %+v", st)
	}

	// The worker must not run the canceled job once A releases.
	close(g.release)
	waitState(t, ts, srRun.ID, StateDone)
	select {
	case seed := <-g.started:
		t.Fatalf("canceled job still ran (seed %s)", seed)
	case <-time.After(200 * time.Millisecond):
	}
	shutdownNow(t, s)
}

// TestSSEDisconnectMidStream bounds the cost of rude clients: SSE
// subscribers that vanish mid-stream must not strand server goroutines.
// goleak is unavailable (no external dependencies), so the bound is a
// direct runtime.NumGoroutine envelope around repeated connect/drop
// cycles against a still-running job.
func TestSSEDisconnectMidStream(t *testing.T) {
	g := newStubRunner()
	s := newServer(Options{Workers: 1}, g.run)
	ts := httptest.NewServer(s)
	defer ts.Close()

	sr, _ := postSpec(t, ts, tinySpecBody(1))
	<-g.started

	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
			ts.URL+"/v1/campaigns/"+sr.ID+"/events", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		// Read the SSE preamble so the subscriber is genuinely attached,
		// then drop the connection mid-stream.
		br := bufio.NewReader(resp.Body)
		if _, err := br.ReadString('\n'); err != nil {
			t.Fatalf("connect %d: no preamble: %v", i, err)
		}
		cancel()
		resp.Body.Close()
	}
	http.DefaultClient.CloseIdleConnections()

	// Every dropped subscriber's goroutine must unwind; allow slack for
	// the server's own steady-state machinery.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+3 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("dropped SSE clients leaked goroutines: %d > baseline %d:\n%s",
				runtime.NumGoroutine(), before, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The job itself is unharmed: it still completes and a fresh,
	// well-behaved subscriber still gets the terminal event.
	close(g.release)
	waitState(t, ts, sr.ID, StateDone)
	names, _ := consumeSSE(t, ts, sr.ID)
	if len(names) == 0 || names[len(names)-1] != string(StateDone) {
		t.Fatalf("post-disconnect subscriber events = %v", names)
	}
	shutdownNow(t, s)
}
