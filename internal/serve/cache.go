package serve

import (
	"container/list"
	"sync"
)

// cache is the content-addressed result store: canonical spec hash →
// rendered result bytes, bounded by a byte budget with LRU eviction.
// Because campaign runs are deterministic and scheduling-independent, a
// hit is byte-identical to re-running the spec, so eviction only costs
// recomputation — never correctness.
type cache struct {
	mu        sync.Mutex
	budget    int64
	bytes     int64
	ll        *list.List // MRU at front; values are *centry
	m         map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type centry struct {
	key string
	val []byte
}

// CacheStats is the cache's exported counter snapshot (/v1/stats).
type CacheStats struct {
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Budget    int64  `json:"budget"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

func newCache(budget int64) *cache {
	return &cache{budget: budget, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the cached bytes for key, marking the entry most recently
// used. Callers must treat the returned slice as immutable — it is
// shared with every other hit for the same key.
func (c *cache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*centry).val, true
}

// put stores val under key, evicting least-recently-used entries until
// the byte budget holds. A value that alone exceeds the budget is not
// stored (it would only evict everything and then itself).
func (c *cache) put(key string, val []byte) {
	size := entrySize(key, val)
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.budget {
		return
	}
	if el, ok := c.m[key]; ok {
		ent := el.Value.(*centry)
		c.bytes += size - entrySize(ent.key, ent.val)
		ent.val = val
		c.ll.MoveToFront(el)
	} else {
		c.m[key] = c.ll.PushFront(&centry{key: key, val: val})
		c.bytes += size
	}
	for c.bytes > c.budget {
		oldest := c.ll.Back()
		ent := oldest.Value.(*centry)
		c.ll.Remove(oldest)
		delete(c.m, ent.key)
		c.bytes -= entrySize(ent.key, ent.val)
		c.evictions++
	}
}

func (c *cache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries: len(c.m), Bytes: c.bytes, Budget: c.budget,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
}

func entrySize(key string, val []byte) int64 { return int64(len(key) + len(val)) }
