package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"ftnoc/internal/campaign"
)

// tinySpecBody is a 2-point, 2-replicate campaign small enough for CI.
func tinySpecBody(seed uint64) string {
	return fmt.Sprintf(`{
		"base": {"Width": 4, "Height": 4, "WarmupMessages": 50, "TotalMessages": 300,
		         "MaxCycles": 100000, "StallCycles": 30000, "Seed": %d},
		"injection_rates": [0.1, 0.2],
		"seeds": 2
	}`, seed)
}

func postSpec(t *testing.T, ts *httptest.Server, body string) (submitResponse, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr submitResponse
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	}
	return sr, resp
}

func getStatus(t *testing.T, ts *httptest.Server, id string) statusResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	var st statusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls until the job reaches a terminal state or the
// deadline passes, returning the final status.
func waitState(t *testing.T, ts *httptest.Server, id string, want State) statusResponse {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return statusResponse{}
}

// resultBytes reassembles the status response's result rows into the
// raw NDJSON bytes the server stores and caches.
func resultBytes(st statusResponse) []byte {
	var buf bytes.Buffer
	for _, row := range st.Result {
		buf.Write(row)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// consumeSSE reads the event stream until the server closes it,
// returning the event names in order and the last event's data.
func consumeSSE(t *testing.T, ts *httptest.Server, id string) (names []string, lastData string) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if name, ok := strings.CutPrefix(line, "event: "); ok {
			names = append(names, name)
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			lastData = data
		}
	}
	return names, lastData
}

// TestCacheHitByteIdentical is the subsystem's core guarantee: a cache
// hit returns bytes identical to a fresh run of the same canonical
// spec — proven against an out-of-band campaign.Run, not just against
// the first response.
func TestCacheHitByteIdentical(t *testing.T) {
	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer shutdownNow(t, s)

	body := tinySpecBody(11)
	sr, resp := postSpec(t, ts, body)
	if resp.StatusCode != http.StatusAccepted || sr.Cached {
		t.Fatalf("first submit: status %d cached %v", resp.StatusCode, sr.Cached)
	}
	if sr.Points != 2 || sr.Reps != 4 {
		t.Fatalf("grid accounting: %+v", sr)
	}
	first := waitState(t, ts, sr.ID, StateDone)
	if first.Cached {
		t.Fatal("first run claims to be cached")
	}
	got := resultBytes(first)

	// Ground truth: the same spec run directly through the engine.
	spec, err := campaign.ParseSpec([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	report, err := campaign.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := renderReport(report)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("server result differs from direct run:\nserver: %s\ndirect: %s", got, want)
	}

	// Resubmission: a new job, born done, cached, byte-identical.
	sr2, resp2 := postSpec(t, ts, body)
	if resp2.StatusCode != http.StatusOK || !sr2.Cached {
		t.Fatalf("resubmit: status %d cached %v", resp2.StatusCode, sr2.Cached)
	}
	if sr2.ID == sr.ID {
		t.Fatal("cache hit reused the original job id")
	}
	if sr2.Hash != sr.Hash {
		t.Fatalf("hashes differ: %s vs %s", sr2.Hash, sr.Hash)
	}
	second := getStatus(t, ts, sr2.ID)
	if second.State != StateDone || !second.Cached {
		t.Fatalf("cached job: %+v", second)
	}
	if !bytes.Equal(resultBytes(second), want) {
		t.Fatal("cache hit is not byte-identical to the fresh run")
	}
	// And the cached rows still parse as a campaign table.
	rows, err := campaign.ReadNDJSON(bytes.NewReader(resultBytes(second)))
	if err != nil || len(rows) != 2 {
		t.Fatalf("cached result unparseable: %v (%d rows)", err, len(rows))
	}

	st := s.Stats()
	if st.Cache.Hits != 1 || st.Cache.Entries != 1 {
		t.Fatalf("cache stats: %+v", st.Cache)
	}

	// A different seed is a different canonical spec: miss, not hit.
	sr3, resp3 := postSpec(t, ts, tinySpecBody(12))
	if resp3.StatusCode != http.StatusAccepted || sr3.Cached || sr3.Hash == sr.Hash {
		t.Fatalf("different seed treated as identical: status %d %+v", resp3.StatusCode, sr3)
	}
	waitState(t, ts, sr3.ID, StateDone)
}

// stubRunner is a controllable campaign executor: it signals when a job
// starts and blocks until released or canceled.
type stubRunner struct {
	started chan string
	release chan struct{}
}

func newStubRunner() *stubRunner {
	return &stubRunner{started: make(chan string, 16), release: make(chan struct{})}
}

func (g *stubRunner) run(ctx context.Context, spec campaign.Spec) (*campaign.Report, error) {
	g.started <- fmt.Sprint(spec.Base.Seed)
	select {
	case <-g.release:
		return &campaign.Report{Points: make([]campaign.PointResult, 1), Workers: 1}, nil
	case <-ctx.Done():
		return &campaign.Report{Points: make([]campaign.PointResult, 1), Workers: 1, Aborted: true}, nil
	}
}

func shutdownNow(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// TestQueueFullBackpressure fills the queue and asserts the contract:
// the overflow submission gets 429 + Retry-After while the accepted
// jobs still run to completion.
func TestQueueFullBackpressure(t *testing.T) {
	g := newStubRunner()
	s := newServer(Options{Workers: 1, QueueDepth: 1, RetryAfter: 7 * time.Second}, g.run)
	ts := httptest.NewServer(s)
	defer ts.Close()

	srA, respA := postSpec(t, ts, tinySpecBody(1))
	if respA.StatusCode != http.StatusAccepted {
		t.Fatalf("submit A = %d", respA.StatusCode)
	}
	<-g.started // the lone worker now holds A; the buffer is empty

	srB, respB := postSpec(t, ts, tinySpecBody(2))
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("submit B = %d", respB.StatusCode)
	}

	// Queue (depth 1) holds B; C must be refused with backpressure.
	_, respC := postSpec(t, ts, tinySpecBody(3))
	if respC.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit C = %d, want 429", respC.StatusCode)
	}
	if ra := respC.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q, want 7", ra)
	}

	// The refused submission must not have dented the accepted ones.
	close(g.release)
	waitState(t, ts, srA.ID, StateDone)
	waitState(t, ts, srB.ID, StateDone)

	st := s.Stats()
	if st.Jobs[string(StateDone)] != 2 {
		t.Fatalf("done jobs = %d, want 2 (stats %+v)", st.Jobs[string(StateDone)], st)
	}
	shutdownNow(t, s)
}

// TestCoalescing: an identical spec submitted while its twin is active
// attaches to the same job instead of running twice.
func TestCoalescing(t *testing.T) {
	g := newStubRunner()
	s := newServer(Options{Workers: 1, QueueDepth: 4}, g.run)
	ts := httptest.NewServer(s)
	defer ts.Close()

	srA, _ := postSpec(t, ts, tinySpecBody(1))
	<-g.started
	srB, respB := postSpec(t, ts, tinySpecBody(1))
	if respB.StatusCode != http.StatusOK || !srB.Coalesced || srB.ID != srA.ID {
		t.Fatalf("identical submit not coalesced: %d %+v", respB.StatusCode, srB)
	}
	close(g.release)
	waitState(t, ts, srA.ID, StateDone)
	shutdownNow(t, s)
}

// TestSSEStreamAndCancel: a subscriber sees progress and the guaranteed
// terminal event; DELETE cancels a running job.
func TestSSEStreamAndCancel(t *testing.T) {
	g := newStubRunner()
	s := newServer(Options{Workers: 1}, g.run)
	ts := httptest.NewServer(s)
	defer ts.Close()

	sr, _ := postSpec(t, ts, tinySpecBody(1))
	<-g.started

	sseDone := make(chan []string, 1)
	go func() {
		names, _ := consumeSSE(t, ts, sr.ID)
		sseDone <- names
	}()
	time.Sleep(50 * time.Millisecond) // let the subscriber attach

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+sr.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}

	st := waitState(t, ts, sr.ID, StateCanceled)
	if !st.Aborted {
		t.Fatalf("canceled run not marked aborted: %+v", st)
	}
	select {
	case names := <-sseDone:
		if len(names) == 0 || names[len(names)-1] != string(StateCanceled) {
			t.Fatalf("SSE events = %v, want terminal canceled", names)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SSE stream never terminated after cancel")
	}

	// Canceling a terminal job is a conflict, not a crash.
	req2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+sr.ID, nil)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("second DELETE = %d, want 409", resp2.StatusCode)
	}
	shutdownNow(t, s)
}

// TestSSERealCampaignProgress runs a real 2-point campaign and checks
// the bus-to-SSE bridge delivers per-point progress and a terminal done
// event with full replicate accounting. The campaign is gated behind a
// channel released only after the subscriber has read the opening
// snapshot, so every progress event is deterministically observable —
// an ungated fast campaign can finish before the event stream connects.
func TestSSERealCampaignProgress(t *testing.T) {
	release := make(chan struct{})
	s := newServer(Options{Workers: 1}, func(ctx context.Context, spec campaign.Spec) (*campaign.Report, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return campaign.Run(ctx, spec)
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer shutdownNow(t, s)

	sr, _ := postSpec(t, ts, tinySpecBody(21))
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + sr.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var names []string
	var lastData string
	released := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if name, ok := strings.CutPrefix(line, "event: "); ok {
			names = append(names, name)
			if !released {
				// The opening snapshot arrived: we are attached, and the
				// campaign has not started. Let it run.
				close(release)
				released = true
			}
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			lastData = data
		}
	}
	if !released {
		t.Fatal("stream ended without any event")
	}
	if names[0] != "status" || names[len(names)-1] != string(StateDone) {
		t.Fatalf("event sequence = %v", names)
	}
	var counted struct {
		RepsDone  int `json:"reps_done"`
		RepsTotal int `json:"reps_total"`
	}
	if err := json.Unmarshal([]byte(lastData), &counted); err != nil {
		t.Fatalf("terminal data %q: %v", lastData, err)
	}
	if counted.RepsDone != 4 || counted.RepsTotal != 4 {
		t.Fatalf("terminal accounting %q", lastData)
	}
	var starts, dones int
	for _, n := range names {
		switch n {
		case "point-start":
			starts++
		case "point-done":
			dones++
		}
	}
	// Subscription preceded the campaign start, so every replicate's
	// progress events (2 points x 2 seeds) must be present in full.
	if starts != 4 || dones != 4 {
		t.Fatalf("progress events: %d starts, %d dones, want 4/4 (%v)", starts, dones, names)
	}

	// A late subscriber to a finished job gets the terminal event only.
	lateNames, _ := consumeSSE(t, ts, sr.ID)
	if len(lateNames) != 1 || lateNames[0] != string(StateDone) {
		t.Fatalf("late subscription events = %v", lateNames)
	}
}

// TestShutdownDrainsAndCancels is the graceful-lifecycle contract:
// SIGTERM-style shutdown cancels the running campaign after the drain
// deadline, the job lands in a partial-but-valid canceled state, SSE
// clients get a terminal event, submissions are refused, and no worker
// goroutines are left behind.
func TestShutdownDrainsAndCancels(t *testing.T) {
	before := runtime.NumGoroutine()

	// A campaign big enough to still be running when shutdown hits.
	body := `{
		"base": {"Width": 4, "Height": 4, "WarmupMessages": 1000, "TotalMessages": 2000000,
		         "MaxCycles": 2000000000, "StallCycles": 2000000000, "Seed": 5},
		"injection_rates": [0.2]
	}`
	s := New(Options{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()

	srRun, _ := postSpec(t, ts, body)
	// A queued job behind it must be canceled without starting.
	srQueued, _ := postSpec(t, ts, tinySpecBody(6))

	// Wait until the big campaign is actually running.
	deadline := time.Now().Add(30 * time.Second)
	for getStatus(t, ts, srRun.ID).State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("campaign never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	sseDone := make(chan []string, 1)
	go func() {
		names, _ := consumeSSE(t, ts, srRun.ID)
		sseDone <- names
	}()
	time.Sleep(50 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("shutdown took %v", elapsed)
	}

	// The running job: canceled, partial-but-valid results.
	st := getStatus(t, ts, srRun.ID)
	if st.State != StateCanceled || !st.Aborted {
		t.Fatalf("running job after shutdown: %+v", st)
	}
	rows, err := campaign.ReadNDJSON(bytes.NewReader(resultBytes(st)))
	if err != nil || len(rows) != 1 {
		t.Fatalf("partial result invalid: %v (%d rows)", err, len(rows))
	}
	if len(rows[0].Replicates) != 1 || !rows[0].Replicates[0].Aborted {
		t.Fatalf("partial replicate not marked aborted: %+v", rows[0].Replicates)
	}

	// The queued job: canceled without running.
	stQ := getStatus(t, ts, srQueued.ID)
	if stQ.State != StateCanceled || stQ.Started != "" {
		t.Fatalf("queued job after shutdown: %+v", stQ)
	}

	// SSE client received a terminal event and the stream closed.
	select {
	case names := <-sseDone:
		if len(names) == 0 || names[len(names)-1] != string(StateCanceled) {
			t.Fatalf("SSE terminal after shutdown = %v", names)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SSE stream never terminated after shutdown")
	}

	// Draining refuses new work and reports unhealthy.
	_, resp := postSpec(t, ts, tinySpecBody(7))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp.StatusCode)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", hz.StatusCode)
	}

	// No leaked workers or campaign goroutines.
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	leakDeadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines %d > baseline %d:\n%s",
				runtime.NumGoroutine(), before, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSubmitValidation: malformed and invalid specs are 400s with a
// JSON error, never enqueued.
func TestSubmitValidation(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer shutdownNow(t, s)

	for name, body := range map[string]string{
		"not json":         `{`,
		"unknown field":    `{"bogus": 1}`,
		"invalid point":    `{"base": {"Width": 4, "Height": 4}, "injection_rates": [1.5]}`,
		"negative workers": `{"workers": -1}`,
		"bad routing":      `{"routings": ["zigzag"]}`,
	} {
		_, resp := postSpec(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	if st := s.Stats(); len(st.Jobs) != 0 {
		t.Fatalf("invalid submissions created jobs: %+v", st.Jobs)
	}

	// Unknown job id → 404.
	resp, err := http.Get(ts.URL + "/v1/campaigns/c99999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id = %d, want 404", resp.StatusCode)
	}

	// Healthz is healthy while serving.
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", hz.StatusCode)
	}
}

// TestFinishedJobRetention: finished records are bounded; evicted jobs
// 404 but their results stay servable from the cache.
func TestFinishedJobRetention(t *testing.T) {
	g := newStubRunner()
	close(g.release) // every job completes immediately
	s := newServer(Options{Workers: 1, QueueDepth: 8, MaxJobs: 2}, g.run)
	ts := httptest.NewServer(s)
	defer ts.Close()

	var ids []string
	for seed := uint64(1); seed <= 4; seed++ {
		sr, _ := postSpec(t, ts, tinySpecBody(seed))
		waitState(t, ts, sr.ID, StateDone)
		ids = append(ids, sr.ID)
	}
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job GET = %d, want 404", resp.StatusCode)
	}
	// The newest job must survive.
	if st := getStatus(t, ts, ids[3]); st.State != StateDone {
		t.Fatalf("newest job lost: %+v", st)
	}
	// And the evicted job's result is still a cache hit.
	sr, respHit := postSpec(t, ts, tinySpecBody(1))
	if respHit.StatusCode != http.StatusOK || !sr.Cached {
		t.Fatalf("evicted job result not cached: %d %+v", respHit.StatusCode, sr)
	}
	shutdownNow(t, s)
}
