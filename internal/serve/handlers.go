package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"ftnoc/internal/obs"
)

// maxBodyBytes bounds a submitted spec document; campaign grids are
// declarative, so even huge campaigns fit in a small body.
const maxBodyBytes = 1 << 20

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	handle("POST /v1/campaigns", s.handleSubmit)
	handle("GET /v1/campaigns/{id}", s.handleStatus)
	handle("GET /v1/campaigns/{id}/events", s.handleEvents)
	handle("DELETE /v1/campaigns/{id}", s.handleCancel)
	handle("GET /v1/stats", s.handleStats)
	handle("GET /healthz", s.handleHealthz)
	handle("GET /metrics", s.handleMetrics)
	if s.opts.Fabric != nil {
		s.mux.HandleFunc("/fabric/", s.instrument("/fabric/", s.opts.Fabric.ServeHTTP))
	}
}

// submitResponse is the POST /v1/campaigns reply envelope.
type submitResponse struct {
	ID     string `json:"id"`
	Hash   string `json:"hash"`
	State  State  `json:"state"`
	Cached bool   `json:"cached"`
	// Coalesced marks a submission served by an already-active
	// identical job (same canonical hash): the returned id is that
	// job's, and canceling it cancels every coalesced client's campaign.
	Coalesced bool `json:"coalesced,omitempty"`
	Points    int  `json:"points"`
	Reps      int  `json:"reps_total"`
}

// backpressureResponse is the 429 body: enough context — how deep the
// queue is, how long the wait is likely to be — for a retrying client
// (the fabric's backoff, or a human) to make an informed decision
// instead of blindly hammering the Retry-After interval.
type backpressureResponse struct {
	Error                string  `json:"error"`
	QueueDepth           int     `json:"queue_depth"`
	QueueCapacity        int     `json:"queue_capacity"`
	RetryAfterSeconds    int     `json:"retry_after_seconds"`
	EstimatedWaitSeconds float64 `json:"estimated_wait_seconds"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	j, queued, err := s.submit(body, r.Header.Get("X-Tenant"))
	switch {
	case errors.Is(err, errQueueFull):
		retry := int((s.opts.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		st := s.Stats()
		writeJSON(w, http.StatusTooManyRequests, backpressureResponse{
			Error:                err.Error(),
			QueueDepth:           st.QueueDepth,
			QueueCapacity:        st.QueueCapacity,
			RetryAfterSeconds:    retry,
			EstimatedWaitSeconds: s.estimatedWait(st),
		})
		return
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	snap := j.snapshot()
	resp := submitResponse{
		ID: j.id, Hash: j.hash, State: snap.State, Cached: snap.Cached,
		Coalesced: !queued && !snap.Cached && !snap.State.Terminal(),
		Points:    j.points, Reps: j.repsTotal,
	}
	reqLog(r.Context()).Info("campaign submitted",
		"job", j.id, "tenant", j.tenant, "hash", j.hash, "queued", queued,
		"cached", snap.Cached, "coalesced", resp.Coalesced,
		"points", j.points, "reps_total", j.repsTotal)
	status := http.StatusAccepted
	if !queued {
		status = http.StatusOK
	}
	writeJSON(w, status, resp)
}

// statusResponse is the GET /v1/campaigns/{id} reply: the job's
// lifecycle, progress, and — once finished — its result rows. Result is
// the cached/rendered NDJSON table split into rows; the raw bytes pass
// through json.RawMessage untouched, so cached and fresh responses stay
// byte-identical.
type statusResponse struct {
	ID        string            `json:"id"`
	Hash      string            `json:"hash"`
	State     State             `json:"state"`
	Cached    bool              `json:"cached"`
	Points    int               `json:"points"`
	RepsTotal int               `json:"reps_total"`
	RepsDone  int               `json:"reps_done"`
	Submitted string            `json:"submitted"`
	Started   string            `json:"started,omitempty"`
	Finished  string            `json:"finished,omitempty"`
	Aborted   bool              `json:"aborted,omitempty"`
	Error     string            `json:"error,omitempty"`
	Result    []json.RawMessage `json:"result,omitempty"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such campaign %q", r.PathValue("id")))
		return
	}
	snap := j.snapshot()
	resp := statusResponse{
		ID: j.id, Hash: j.hash, State: snap.State, Cached: snap.Cached,
		Points: j.points, RepsTotal: snap.RepsTotal, RepsDone: snap.RepsDone,
		Submitted: j.submitted.UTC().Format(time.RFC3339Nano),
		Aborted:   snap.Aborted,
	}
	if !snap.Started.IsZero() {
		resp.Started = snap.Started.UTC().Format(time.RFC3339Nano)
	}
	if !snap.Finished.IsZero() {
		resp.Finished = snap.Finished.UTC().Format(time.RFC3339Nano)
	}
	if snap.Err != nil {
		resp.Error = snap.Err.Error()
	}
	resp.Result = splitNDJSON(snap.Result)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such campaign %q", r.PathValue("id")))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ch, term := j.hub.subscribe()
	if ch == nil {
		writeSSE(w, flusher, *term)
		return
	}
	defer j.hub.unsubscribe(ch)
	s.obs.sseSubs.Inc()
	defer s.obs.sseSubs.Dec()

	// Opening snapshot, so a subscriber knows where the job stands
	// before the first live event arrives.
	snap := j.snapshot()
	writeSSE(w, flusher, sseEvent{
		name: "status",
		data: fmt.Appendf(nil, `{"state":%q,"reps_done":%d,"reps_total":%d}`,
			snap.State, snap.RepsDone, snap.RepsTotal),
	})
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				// The job reached a terminal state; deliver the stored
				// terminal event and end the stream.
				if term := j.hub.terminalEvent(); term != nil {
					writeSSE(w, flusher, *term)
				}
				return
			}
			writeSSE(w, flusher, ev)
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such campaign %q", r.PathValue("id")))
		return
	}
	state := j.currentState()
	if state.Terminal() {
		writeError(w, http.StatusConflict, fmt.Errorf("campaign %s already %s", j.id, state))
		return
	}
	cause := errors.New("serve: canceled by client")
	j.cancel(cause)
	// A queued job has no worker to observe the cancellation; finish it
	// here. A running one finishes via its campaign's abort path with
	// partial results.
	if j.currentState() == StateQueued {
		j.finish(StateCanceled, nil, false, cause)
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.id, "state": string(j.currentState())})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// healthzResponse is the GET /healthz document: liveness plus the build
// identity (module version and VCS revision stamped by the go tool; both
// empty when the binary was built without VCS metadata, e.g. under
// plain `go test`).
type healthzResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoVersion     string  `json:"go_version"`
	Version       string  `json:"version,omitempty"`
	Revision      string  `json:"revision,omitempty"`
	Modified      bool    `json:"modified,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	version, revision, modified := buildInfo()
	resp := healthzResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		GoVersion:     runtime.Version(),
		Version:       version,
		Revision:      revision,
		Modified:      modified,
	}
	if draining {
		resp.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics serves the Prometheus text exposition. The snapshot
// refresh means the state-derived families encode exactly the document
// a concurrent /v1/stats would return (modulo one snapshot's worth of
// time skew, not divergent accounting).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.obs.refresh(s.Stats())
	w.Header().Set("Content-Type", obs.ContentType)
	_ = s.obs.reg.WriteText(w)
	if s.opts.ExtraMetrics != nil {
		_ = s.opts.ExtraMetrics.WriteText(w)
	}
}

// splitNDJSON turns rendered result bytes (one JSON object per line)
// into raw rows for embedding in a JSON response.
func splitNDJSON(b []byte) []json.RawMessage {
	if len(b) == 0 {
		return nil
	}
	var rows []json.RawMessage
	for _, line := range bytes.Split(b, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		rows = append(rows, json.RawMessage(line))
	}
	return rows
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
