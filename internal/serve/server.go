// Package serve turns the campaign engine into long-running shared
// infrastructure: an HTTP simulation service with a bounded job queue,
// a content-addressed result cache, and live per-point progress
// streaming over SSE.
//
// Design constraints:
//
//   - Explicit backpressure. The queue is a bounded buffer; when it is
//     full, submissions are refused with 429 and a Retry-After hint
//     instead of being accepted into unbounded memory.
//   - Sound caching. Results are addressed by the canonical hash of the
//     validated spec (campaign.Spec.CanonicalHash). Campaign runs are
//     deterministic and scheduling-independent, so a cache hit is
//     byte-identical to a fresh run — dedup is free, not approximate.
//     Identical in-flight submissions coalesce onto one job.
//   - Graceful lifecycle. Shutdown drains running jobs until its
//     context expires, then cancels them; canceled campaigns still
//     return their partial-but-valid results, SSE clients always
//     receive a terminal event, and completed results are never lost.
package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ftnoc/internal/campaign"
	"ftnoc/internal/obs"
)

// Options configures a Server. The zero value is usable: every field
// has a sensible default.
type Options struct {
	// Workers is the number of campaigns executed concurrently
	// (default 1 — each campaign parallelises internally).
	Workers int
	// QueueDepth bounds the number of accepted-but-not-started jobs
	// (default 16). Beyond it, submissions get 429.
	QueueDepth int
	// CacheBytes is the result cache's byte budget (default 64 MiB).
	CacheBytes int64
	// RetryAfter is the backpressure hint returned with 429 responses
	// (default 5s, rounded up to whole seconds on the wire).
	RetryAfter time.Duration
	// MaxJobs bounds retained finished-job records (default 1024);
	// beyond it the oldest finished jobs are forgotten. Their results
	// may still be served from the cache on resubmission.
	MaxJobs int
	// Logger receives the daemon's structured records: per-request logs
	// (with request ids), job lifecycle transitions, and replicate
	// failures surfaced by the campaign engine. Nil discards everything.
	Logger *slog.Logger
	// Runner executes submitted campaigns (nil means campaign.Run, the
	// in-process engine). The distributed coordinator substitutes its
	// fabric scheduler here: same contract — a Report whose rendered rows
	// are byte-identical to what campaign.Run would produce — so the
	// queue, cache and SSE machinery work unchanged above it.
	Runner func(ctx context.Context, spec campaign.Spec) (*campaign.Report, error)
	// Fabric, when non-nil, is mounted under /fabric/ on the service mux
	// (instrumented like every other route): the coordinator's worker
	// registration/heartbeat/cache-peer endpoints, or the worker's shard
	// endpoint, depending on the daemon's role.
	Fabric http.Handler
	// ExtraMetrics, when non-nil, is appended to every /metrics scrape
	// after the server's own families — the fabric layer exposes its
	// nocd_fabric_* families through the same endpoint this way. Family
	// names must not collide with the server's.
	ExtraMetrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = 64 << 20
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = 5 * time.Second
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 1024
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return o
}

// runner abstracts campaign execution so tests can substitute
// controllable workloads for real simulations.
type runner func(ctx context.Context, spec campaign.Spec) (*campaign.Report, error)

// Server is the simulation service. It implements http.Handler; the
// daemon (cmd/nocd) owns the listener and calls Shutdown on SIGTERM.
type Server struct {
	opts  Options
	run   runner
	mux   *http.ServeMux
	cache *cache
	start time.Time
	log   *slog.Logger
	obs   *serverObs

	reqSeq atomic.Uint64 // request-id source for the instrument middleware

	mu       sync.Mutex
	draining bool
	nextID   int
	jobs     map[string]*job
	byHash   map[string]*job // active (non-terminal) job per hash, for coalescing
	finished []string        // finished job ids, oldest first, for retention
	jobc     chan *job
	wg       sync.WaitGroup
	// avgRunSeconds is an EWMA over recent job run durations — the basis
	// of the estimated-wait hint in 429 backpressure bodies.
	avgRunSeconds float64
}

// tenantKey carries the submitting client's tenant id through a job's
// context, from the HTTP layer down to the runner.
type tenantKey struct{}

// WithTenant returns a context carrying the submitting client's tenant
// id — the identity the fabric coordinator's fair queueing schedules by.
func WithTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// TenantFrom returns the tenant id carried by ctx, or "" when absent.
func TenantFrom(ctx context.Context) string {
	t, _ := ctx.Value(tenantKey{}).(string)
	return t
}

// CacheGet returns the result bytes stored under key in the server's
// content-addressed cache. Together with CachePut it is the storage side
// of the fabric's cache-peer protocol: the coordinator daemon serves its
// cache to workers over /fabric/v1/cache/{key}. Peer lookups share the
// cache's hit/miss counters with client submissions.
func (s *Server) CacheGet(key string) ([]byte, bool) { return s.cache.get(key) }

// CachePut stores val under key in the server's content-addressed cache
// (subject to the usual byte budget and LRU eviction).
func (s *Server) CachePut(key string, val []byte) { s.cache.put(key, val) }

// New returns a ready Server executing campaigns with Options.Runner
// (campaign.Run by default).
func New(opts Options) *Server {
	run := campaign.Run
	if opts.Runner != nil {
		run = opts.Runner
	}
	return newServer(opts, run)
}

func newServer(opts Options, run runner) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:   opts,
		run:    run,
		cache:  newCache(opts.CacheBytes),
		start:  time.Now(),
		log:    opts.Logger,
		obs:    newServerObs(),
		jobs:   make(map[string]*job),
		byHash: make(map[string]*job),
		jobc:   make(chan *job, opts.QueueDepth),
	}
	s.routes()
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// submit validates and enqueues a campaign, returning the job plus
// whether it was newly queued (false for cache hits and coalesced
// submissions). Refusals: errQueueFull (429), errDraining (503), or a
// validation error (400). tenant is the submitting client's identity
// (empty means the anonymous tenant), carried to the runner through the
// job context.
func (s *Server) submit(body []byte, tenant string) (j *job, queued bool, err error) {
	spec, err := campaign.ParseSpec(body)
	if err != nil {
		return nil, false, err
	}
	if spec.Workers < 0 {
		return nil, false, fmt.Errorf("campaign: Workers must be >= 0, have %d", spec.Workers)
	}
	// A campaign's results are independent of its worker count, so
	// clamping cannot change what the client gets — it only stops one
	// request from oversubscribing the host.
	if maxw := runtime.GOMAXPROCS(0); spec.Workers > maxw {
		spec.Workers = maxw
	}
	hash, err := spec.CanonicalHash()
	if err != nil {
		return nil, false, err
	}
	points := spec.Points()
	reps := spec.Seeds
	if reps <= 0 {
		reps = 1
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, false, errDraining
	}

	// Coalesce: an identical campaign already queued or running serves
	// this submission too.
	if active, ok := s.byHash[hash]; ok && !active.currentState().Terminal() {
		s.mu.Unlock()
		return active, false, nil
	}

	j = s.newJobLocked(hash, spec, tenant, len(points), len(points)*reps)

	// Content-addressed hit: the job is born finished with the cached
	// bytes — byte-identical to the run that produced them.
	if result, ok := s.cache.get(hash); ok {
		j.cached = true // no readers yet: the job is not registered
		s.registerLocked(j)
		s.mu.Unlock()
		j.finish(StateDone, result, false, nil)
		return j, false, nil
	}

	select {
	case s.jobc <- j:
	default:
		s.mu.Unlock()
		j.cancel(nil)
		return nil, false, errQueueFull
	}
	s.registerLocked(j)
	s.byHash[hash] = j
	s.mu.Unlock()
	return j, true, nil
}

func (s *Server) newJobLocked(hash string, spec campaign.Spec, tenant string, points, repsTotal int) *job {
	s.nextID++
	if tenant == "" {
		tenant = "anonymous"
	}
	ctx, cancel := context.WithCancelCause(WithTenant(context.Background(), tenant))
	j := &job{
		id:        fmt.Sprintf("c%08d", s.nextID),
		hash:      hash,
		tenant:    tenant,
		points:    points,
		repsTotal: repsTotal,
		submitted: time.Now(),
		ctx:       ctx,
		cancel:    cancel,
		hub:       newHub(),
		state:     StateQueued,
		onFinish:  s.noteFinished,
	}
	spec.Progress = progressSink{j: j}
	// Failed replicates log their grid coordinates and seed under this
	// job's id (campaign.Spec.Logger is excluded from the canonical hash,
	// so attaching it cannot perturb cache identity).
	spec.Logger = s.log.With("job", j.id)
	j.spec = spec
	return j
}

// registerLocked records the job and enforces finished-job retention.
func (s *Server) registerLocked(j *job) {
	s.jobs[j.id] = j
	for len(s.jobs) > s.opts.MaxJobs && len(s.finished) > 0 {
		id := s.finished[0]
		s.finished = s.finished[1:]
		delete(s.jobs, id)
	}
}

// lookup returns the job by id.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// noteFinished retires a job from the coalescing index into the
// retention queue; job.finish calls it exactly once per job, with no
// locks held. Exactly-once also makes it the one sound place to count
// terminal transitions and observe run durations.
func (s *Server) noteFinished(j *job) {
	snap := j.snapshot()
	s.obs.jobsFinished.With(string(snap.State)).Inc()
	ran := !snap.Started.IsZero() && !snap.Finished.IsZero()
	if ran {
		s.obs.runDuration.Observe(snap.Finished.Sub(snap.Started).Seconds())
	}
	errText := ""
	if snap.Err != nil {
		errText = snap.Err.Error()
	}
	s.log.Info("job finished",
		"job", j.id, "tenant", j.tenant, "state", snap.State, "cached", snap.Cached,
		"aborted", snap.Aborted, "reps_done", snap.RepsDone,
		"reps_total", snap.RepsTotal, "error", errText)

	s.mu.Lock()
	defer s.mu.Unlock()
	if ran {
		// EWMA over recent run durations, feeding the estimated-wait hint
		// in 429 bodies. α=0.3: responsive to workload shifts, stable
		// against one outlier.
		const alpha = 0.3
		run := snap.Finished.Sub(snap.Started).Seconds()
		if s.avgRunSeconds == 0 {
			s.avgRunSeconds = run
		} else {
			s.avgRunSeconds = alpha*run + (1-alpha)*s.avgRunSeconds
		}
	}
	if s.byHash[j.hash] == j {
		delete(s.byHash, j.hash)
	}
	s.finished = append(s.finished, j.id)
}

// estimatedWait predicts how long a submission refused now would have
// waited before starting: the queued jobs ahead of it, paced by the
// recent average job duration spread over the worker pool. Before any
// job has finished the RetryAfter hint is the best available answer.
func (s *Server) estimatedWait(st Stats) float64 {
	s.mu.Lock()
	avg := s.avgRunSeconds
	s.mu.Unlock()
	if avg == 0 {
		return s.opts.RetryAfter.Seconds()
	}
	return float64(st.QueueDepth+1) * avg / float64(st.Workers)
}

// Shutdown gracefully stops the server: submissions are refused
// immediately, queued jobs are canceled without starting, and running
// jobs drain until ctx expires — after which their contexts are
// canceled and they return partial-but-valid results. It returns once
// every worker has exited; completed results remain queryable.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("serve: Shutdown called twice")
	}
	s.draining = true
	close(s.jobc)
	var queued []*job
	for _, j := range s.jobs {
		if j.currentState() == StateQueued {
			queued = append(queued, j)
		}
	}
	s.mu.Unlock()

	// Queued jobs never start during a drain: cancel and finish them now
	// so their SSE clients get the terminal event immediately. A job a
	// worker concurrently began is already Running and is left to drain.
	cause := errors.New("serve: canceled by shutdown before starting")
	for _, j := range queued {
		j.cancel(cause)
		j.finish(StateCanceled, nil, false, cause)
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		cause := errors.New("serve: drain deadline exceeded, canceling running jobs")
		s.mu.Lock()
		for _, j := range s.jobs {
			if !j.currentState().Terminal() {
				j.cancel(cause)
			}
		}
		s.mu.Unlock()
		<-done
	}
	return nil
}

// Stats is the /v1/stats document.
type Stats struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	Workers       int            `json:"workers"`
	QueueDepth    int            `json:"queue_depth"`
	QueueCapacity int            `json:"queue_capacity"`
	Draining      bool           `json:"draining"`
	Jobs          map[string]int `json:"jobs"`
	Cache         CacheStats     `json:"cache"`
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.opts.Workers,
		QueueDepth:    len(s.jobc),
		QueueCapacity: s.opts.QueueDepth,
		Draining:      s.draining,
		Jobs:          make(map[string]int),
	}
	for _, j := range s.jobs {
		st.Jobs[string(j.currentState())]++
	}
	s.mu.Unlock()
	st.Cache = s.cache.stats()
	return st
}

// renderReport serialises a report to the canonical result bytes: the
// campaign NDJSON table. One serialization pathway feeds clients, the
// cache, and the CLI exports alike.
func renderReport(r *campaign.Report) ([]byte, error) {
	var buf bytes.Buffer
	if err := r.WriteNDJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
