package serve

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	// Budget fits exactly two entries of key 2 bytes + value 8 bytes.
	c := newCache(20)
	val := func(i int) []byte { return []byte(fmt.Sprintf("value-%02d", i)) }

	c.put("k1", val(1))
	c.put("k2", val(2))
	if _, ok := c.get("k1"); !ok {
		t.Fatal("k1 missing before budget pressure")
	}
	// k1 is now MRU; inserting k3 must evict k2.
	c.put("k3", val(3))
	if _, ok := c.get("k2"); ok {
		t.Fatal("k2 survived eviction despite being LRU")
	}
	if v, ok := c.get("k1"); !ok || !bytes.Equal(v, val(1)) {
		t.Fatalf("k1 lost or corrupted: %q", v)
	}
	if v, ok := c.get("k3"); !ok || !bytes.Equal(v, val(3)) {
		t.Fatalf("k3 lost or corrupted: %q", v)
	}

	st := c.stats()
	if st.Entries != 2 || st.Bytes != 20 {
		t.Fatalf("stats after eviction: %+v", st)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// get hits: k1 (pre), k2 miss, k1, k3. misses: k2.
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 3/1", st.Hits, st.Misses)
	}
}

func TestCacheUpdateAndOversize(t *testing.T) {
	c := newCache(20)
	c.put("k1", []byte("12345678"))
	c.put("k1", []byte("1234")) // update shrinks
	if st := c.stats(); st.Entries != 1 || st.Bytes != 6 {
		t.Fatalf("stats after update: %+v", st)
	}
	// A value that alone busts the budget is not stored and evicts nothing.
	c.put("k2", bytes.Repeat([]byte("x"), 32))
	if _, ok := c.get("k2"); ok {
		t.Fatal("oversize value was stored")
	}
	if v, ok := c.get("k1"); !ok || !bytes.Equal(v, []byte("1234")) {
		t.Fatal("oversize insert disturbed existing entries")
	}
}
