package serve

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"ftnoc/internal/obs"
)

// serverObs is the daemon's metrics surface: every family the /metrics
// endpoint exposes, all registered on one obs.Registry.
//
// Families come in two flavours. Event-driven ones (HTTP requests,
// job-completion counters, the wait/run histograms, the SSE gauge) are
// updated inline by the code path that observes the event — single
// atomics, safe and cheap whether or not anything ever scrapes.
// State-derived ones (queue depth, jobs by state, cache counters) are
// func-backed closures over the snapshot refreshed by refresh() — the
// same Server.Stats() document /v1/stats serves, taken once per scrape,
// so the two endpoints can never drift apart (see
// TestStatsAndMetricsAgree).
type serverObs struct {
	reg *obs.Registry

	httpRequests *obs.CounterVec // method, route, status
	httpLatency  *obs.HistogramVec
	jobsFinished *obs.CounterVec // terminal state
	queueWait    *obs.Histogram
	runDuration  *obs.Histogram
	sseSubs      *obs.Gauge
	workersBusy  *obs.Gauge
	simCycles    *obs.Counter
	simTicks     *obs.CounterVec // ticked, skipped
	simEvents    *obs.Counter
	simWorker    *obs.CounterVec // parallel kernel: worker, outcome
	simBarrier   *obs.CounterVec // parallel kernel: worker

	jobsByState map[State]*obs.Gauge

	mu sync.Mutex
	st Stats // latest snapshot; refreshed before every scrape
}

// jobStates enumerates every lifecycle state so the nocd_jobs family
// always exposes all five series, zeros included — dashboards should
// not see series flicker in and out of existence.
var jobStates = []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled}

// jobSeconds buckets job queue-wait and run durations: campaigns range
// from milliseconds (tiny grids, cache-adjacent) to minutes.
var jobSeconds = []float64{.005, .025, .1, .5, 1, 5, 15, 60, 300, 1800}

// httpSeconds buckets request latency: most requests are microseconds;
// SSE streams run as long as their campaigns.
var httpSeconds = []float64{.0005, .001, .005, .025, .1, .5, 1, 5, 30, 120}

func newServerObs() *serverObs {
	reg := obs.NewRegistry()
	o := &serverObs{
		reg: reg,
		httpRequests: reg.CounterVec("nocd_http_requests_total",
			"HTTP requests served, by method, route pattern and status code.",
			"method", "route", "status"),
		httpLatency: reg.HistogramVec("nocd_http_request_seconds",
			"HTTP request latency by route pattern.", httpSeconds, "route"),
		jobsFinished: reg.CounterVec("nocd_jobs_completed_total",
			"Jobs that reached a terminal state, by state (done, failed, canceled).",
			"state"),
		queueWait: reg.Histogram("nocd_job_queue_wait_seconds",
			"Time jobs spent queued before a worker picked them up.", jobSeconds),
		runDuration: reg.Histogram("nocd_job_run_seconds",
			"Campaign execution time, submission-to-terminal, for jobs that ran.", jobSeconds),
		sseSubs: reg.Gauge("nocd_sse_subscribers",
			"Live SSE progress subscriptions."),
		workersBusy: reg.Gauge("nocd_workers_busy",
			"Workers currently executing a campaign."),
		simCycles: reg.Counter("nocd_sim_cycles_total",
			"Simulated network cycles across every completed replicate."),
		simTicks: reg.CounterVec("nocd_sim_actor_ticks_total",
			"Scheduler-level actor ticks across completed replicates, by outcome: "+
				"ticked (executed) or skipped (elided relative to the naive schedule).",
			"outcome"),
		simEvents: reg.Counter("nocd_sim_events_dispatched_total",
			"Calendar-queue events dispatched across completed replicates (event kernel only)."),
		simWorker: reg.CounterVec("nocd_sim_worker_ticks_total",
			"Parallel-kernel per-worker actor ticks across completed replicates, "+
				"by worker index and outcome (ticked or skipped).",
			"worker", "outcome"),
		simBarrier: reg.CounterVec("nocd_sim_worker_barrier_wait_seconds_total",
			"Parallel-kernel time each worker spent waiting at the per-cycle "+
				"barrier, by worker index.",
			"worker"),
	}

	// State-derived families: closures over the per-scrape snapshot.
	stat := func(f func(Stats) float64) func() float64 {
		return func() float64 {
			o.mu.Lock()
			defer o.mu.Unlock()
			return f(o.st)
		}
	}
	reg.GaugeFunc("nocd_uptime_seconds", "Seconds since the server started.",
		stat(func(s Stats) float64 { return s.UptimeSeconds }))
	reg.GaugeFunc("nocd_workers", "Size of the campaign worker pool.",
		stat(func(s Stats) float64 { return float64(s.Workers) }))
	reg.GaugeFunc("nocd_queue_depth", "Jobs accepted but not yet started.",
		stat(func(s Stats) float64 { return float64(s.QueueDepth) }))
	reg.GaugeFunc("nocd_queue_capacity", "Queue bound; at depth == capacity submissions get 429.",
		stat(func(s Stats) float64 { return float64(s.QueueCapacity) }))
	reg.GaugeFunc("nocd_draining", "1 while graceful shutdown is draining jobs, else 0.",
		stat(func(s Stats) float64 {
			if s.Draining {
				return 1
			}
			return 0
		}))
	jobs := reg.GaugeVec("nocd_jobs", "Retained jobs by lifecycle state.", "state")
	o.jobsByState = make(map[State]*obs.Gauge, len(jobStates))
	for _, state := range jobStates {
		o.jobsByState[state] = jobs.With(string(state))
	}

	reg.CounterFunc("nocd_cache_hits_total", "Result-cache hits (content-addressed by spec hash).",
		stat(func(s Stats) float64 { return float64(s.Cache.Hits) }))
	reg.CounterFunc("nocd_cache_misses_total", "Result-cache misses.",
		stat(func(s Stats) float64 { return float64(s.Cache.Misses) }))
	reg.CounterFunc("nocd_cache_evictions_total", "Result-cache LRU evictions.",
		stat(func(s Stats) float64 { return float64(s.Cache.Evictions) }))
	reg.GaugeFunc("nocd_cache_entries", "Cached result tables.",
		stat(func(s Stats) float64 { return float64(s.Cache.Entries) }))
	reg.GaugeFunc("nocd_cache_bytes", "Bytes held by the result cache.",
		stat(func(s Stats) float64 { return float64(s.Cache.Bytes) }))
	reg.GaugeFunc("nocd_cache_budget_bytes", "Result-cache byte budget.",
		stat(func(s Stats) float64 { return float64(s.Cache.Budget) }))

	// Runtime health, read live at scrape time.
	reg.GaugeFunc("nocd_goroutines", "Goroutines in the process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("nocd_heap_alloc_bytes", "Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.HeapAlloc)
		})

	version, revision, _ := buildInfo()
	reg.GaugeVec("nocd_build_info",
		"Constant 1, labelled with build metadata so fleet tooling can tell nodes apart.",
		"go_version", "revision", "version").
		With(runtime.Version(), revision, version).Set(1)

	return o
}

// refresh installs the snapshot the func-backed families will encode
// and mirrors the per-state job counts into the nocd_jobs gauges.
func (o *serverObs) refresh(st Stats) {
	o.mu.Lock()
	o.st = st
	o.mu.Unlock()
	for _, state := range jobStates {
		o.jobsByState[state].Set(float64(st.Jobs[string(state)]))
	}
}

// buildInfo extracts the module version and VCS revision stamped into
// the binary (empty strings under plain `go test`, which does not stamp
// VCS metadata).
func buildInfo() (version, revision string, modified bool) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "", "", false
	}
	version = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			modified = s.Value == "true"
		}
	}
	return version, revision, modified
}

// statusWriter captures the response status and size for metrics and
// request logs. It implements http.Flusher unconditionally, forwarding
// when the wrapped writer can flush — SSE streaming must survive the
// instrumentation wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// reqLogKey carries the request-scoped logger through the context.
type reqLogKey struct{}

func withReqLog(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, reqLogKey{}, l)
}

// reqLog returns the request-scoped logger installed by instrument
// (carrying the request id), falling back to a discard logger so
// handlers never nil-check.
func reqLog(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(reqLogKey{}).(*slog.Logger); ok {
		return l
	}
	return discardLog
}

var discardLog = slog.New(slog.NewTextHandler(io.Discard, nil))

// instrument wraps a handler with the request-scoped observability
// envelope: a request id, a structured log record, and the HTTP count
// and latency series labelled with the route pattern (never the raw
// path — ids would explode the cardinality).
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	// Scrapes, probes and fabric heartbeats arrive every few seconds
	// forever; keep them out of Info-level logs.
	level := slog.LevelInfo
	if route == "GET /metrics" || route == "GET /healthz" || route == "/fabric/" {
		level = slog.LevelDebug
	}
	return func(w http.ResponseWriter, r *http.Request) {
		id := "r" + strconv.FormatUint(s.reqSeq.Add(1), 10)
		log := s.log.With("req", id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r.WithContext(withReqLog(r.Context(), log)))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)
		s.obs.httpRequests.With(r.Method, route, strconv.Itoa(sw.status)).Inc()
		s.obs.httpLatency.With(route).Observe(elapsed.Seconds())
		log.Log(r.Context(), level, "http",
			"method", r.Method, "route", route, "path", r.URL.Path,
			"status", sw.status, "bytes", sw.bytes,
			"duration_ms", float64(elapsed.Microseconds())/1000)
	}
}
