package serve

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ftnoc/internal/campaign"
	"ftnoc/internal/kernel"
	"ftnoc/internal/sim"
	"ftnoc/internal/trace"
)

// State is a job's lifecycle position. Queued and Running are active;
// the rest are terminal.
type State string

// Job states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// job is one submitted campaign: its spec, its lifecycle, and its
// progress stream. Result bytes are the campaign's rendered NDJSON
// table — exactly what the cache stores, so cached and fresh responses
// are byte-identical.
type job struct {
	id        string
	hash      string
	tenant    string
	spec      campaign.Spec
	points    int
	repsTotal int
	submitted time.Time

	ctx    context.Context
	cancel context.CancelCauseFunc
	hub    *hub
	// onFinish runs exactly once, after the terminal transition, with no
	// job or server lock held (the server uses it to retire the job from
	// its active indexes).
	onFinish func(*job)

	repsDone atomic.Int64

	mu       sync.Mutex
	state    State
	cached   bool
	started  time.Time
	finished time.Time
	result   []byte
	aborted  bool
	err      error
}

// snapshot is a consistent copy of the job's mutable fields.
type snapshot struct {
	State               State
	Cached              bool
	Started, Finished   time.Time
	Result              []byte
	Aborted             bool
	Err                 error
	RepsDone, RepsTotal int
}

func (j *job) snapshot() snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return snapshot{
		State: j.state, Cached: j.cached,
		Started: j.started, Finished: j.finished,
		Result: j.result, Aborted: j.aborted, Err: j.err,
		RepsDone: int(j.repsDone.Load()), RepsTotal: j.repsTotal,
	}
}

func (j *job) currentState() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// setRunning transitions queued → running; it reports false if the job
// already reached a terminal state (canceled while queued).
func (j *job) setRunning(now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = now
	return true
}

// finish moves the job to a terminal state exactly once and closes its
// progress stream with the guaranteed terminal event. Later calls are
// no-ops, so cancellation racing completion is safe.
func (j *job) finish(state State, result []byte, aborted bool, err error) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.finished = time.Now()
	j.result = result
	j.aborted = aborted
	j.err = err
	cached := j.cached
	j.mu.Unlock()

	j.cancel(nil) // release the context's resources in every path
	errText := ""
	if err != nil {
		errText = err.Error()
	}
	j.hub.close(sseEvent{
		name: string(state),
		data: fmt.Appendf(nil,
			`{"state":%q,"reps_done":%d,"reps_total":%d,"aborted":%t,"cached":%t,"error":%q}`,
			state, j.repsDone.Load(), j.repsTotal, aborted, cached, errText),
	})
	if j.onFinish != nil {
		j.onFinish(j)
	}
}

// progressSink bridges the campaign engine's trace-bus progress kinds
// onto the job's SSE hub. The engine serialises emissions, so no extra
// locking is needed beyond the hub's own.
type progressSink struct{ j *job }

func (p progressSink) Emit(e trace.Event) {
	switch e.Kind {
	case trace.CampaignPointStart:
		p.j.hub.publish(sseEvent{
			name: "point-start",
			data: fmt.Appendf(nil, `{"point":%d,"rep":%d}`, e.Aux, e.PID),
		})
	case trace.CampaignPointDone:
		done := p.j.repsDone.Add(1)
		p.j.hub.publish(sseEvent{
			name: "point-done",
			data: fmt.Appendf(nil, `{"point":%d,"rep":%d,"cycles":%d,"reps_done":%d,"reps_total":%d}`,
				e.Aux, e.PID, e.Cycle, done, p.j.repsTotal),
		})
	}
}

// errQueueFull is the backpressure signal: the queue's bounded buffer is
// at capacity, and the submission was refused rather than accepted into
// unbounded memory. HTTP maps it to 429 with Retry-After.
var errQueueFull = errors.New("serve: job queue full")

// errDraining refuses submissions during graceful shutdown.
var errDraining = errors.New("serve: server is shutting down")

// worker drains the job channel until it closes. Jobs canceled while
// queued (client DELETE, or shutdown) are already terminal and skipped.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.jobc {
		s.runJob(j)
	}
}

// runJob executes one campaign and finishes the job. A report that ran
// to completion is rendered once and stored in the result cache; an
// aborted report (cancellation mid-run) is still rendered — the partial
// state is valid and returned to the client — but never cached.
func (s *Server) runJob(j *job) {
	if j.currentState().Terminal() {
		return // canceled while queued
	}
	if j.ctx.Err() != nil {
		j.finish(StateCanceled, nil, false, context.Cause(j.ctx))
		return
	}
	now := time.Now()
	if !j.setRunning(now) {
		return
	}
	wait := now.Sub(j.submitted)
	s.obs.queueWait.Observe(wait.Seconds())
	s.obs.workersBusy.Inc()
	defer s.obs.workersBusy.Dec()
	s.log.Info("job started",
		"job", j.id, "points", j.points, "reps_total", j.repsTotal,
		"queue_wait_ms", float64(wait.Microseconds())/1000)
	report, err := s.run(j.ctx, j.spec)
	if report != nil {
		s.recordKernelTelemetry(j, report)
	}
	switch {
	case err != nil:
		j.finish(StateFailed, nil, false, err)
	case report.Aborted:
		result, rerr := renderReport(report)
		if rerr != nil {
			j.finish(StateFailed, nil, true, rerr)
			return
		}
		j.finish(StateCanceled, result, true, context.Cause(j.ctx))
	default:
		result, rerr := renderReport(report)
		if rerr != nil {
			j.finish(StateFailed, nil, false, rerr)
			return
		}
		s.cache.put(j.hash, result)
		j.finish(StateDone, result, false, nil)
	}
}

// recordKernelTelemetry aggregates the report's scheduler counters into
// the /metrics families and the job log. The counters describe the
// simulator, not the simulated network — they stay out of the rendered
// (and cached) result tables, which must be byte-identical for equal
// spec hashes regardless of the kernel that produced them.
func (s *Server) recordKernelTelemetry(j *job, report *campaign.Report) {
	var cycles, ticked, skipped, events uint64
	var workers []sim.WorkerStats
	for i := range report.Points {
		for _, rr := range report.Points[i].Reps {
			if rr.Err != nil || rr.Seed == 0 {
				continue
			}
			cycles += rr.Results.Cycles
			ticked += rr.KernelTicked
			skipped += rr.KernelSkipped
			events += rr.KernelEvents
			for wi, w := range rr.KernelWorkers {
				if wi >= len(workers) {
					workers = append(workers, sim.WorkerStats{})
				}
				workers[wi].Ticked += w.Ticked
				workers[wi].Skipped += w.Skipped
				workers[wi].BarrierWaitNs += w.BarrierWaitNs
			}
		}
	}
	if ticked+skipped == 0 {
		return // nothing completed (canceled before the first replicate)
	}
	s.obs.simCycles.Add(float64(cycles))
	s.obs.simTicks.With("ticked").Add(float64(ticked))
	s.obs.simTicks.With("skipped").Add(float64(skipped))
	s.obs.simEvents.Add(float64(events))
	for wi, w := range workers {
		label := strconv.Itoa(wi)
		s.obs.simWorker.With(label, "ticked").Add(float64(w.Ticked))
		s.obs.simWorker.With(label, "skipped").Add(float64(w.Skipped))
		s.obs.simBarrier.With(label).Add(float64(w.BarrierWaitNs) / 1e9)
	}
	kind := j.spec.Base.Kernel
	if kind == 0 {
		kind = kernel.Event // the applyDefaults choice inside network.New
	}
	s.log.Info("job kernel telemetry",
		"job", j.id, "kernel", kind.String(),
		"sim_cycles", cycles, "actor_ticks", ticked, "ticks_skipped", skipped,
		"events_dispatched", events)
}
