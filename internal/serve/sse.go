package serve

import (
	"fmt"
	"net/http"
	"sync"
)

// sseEvent is one server-sent event: a name and a single-line JSON
// payload.
type sseEvent struct {
	name string
	data []byte
}

// hub fans one job's progress stream out to its SSE subscribers.
//
// Delivery contract: progress events (point-start/point-done) are
// best-effort — a subscriber that cannot keep up loses intermediate
// events, never the stream — but the terminal event is guaranteed: it is
// stored on the hub, so subscribers read it after their channel closes,
// and late subscribers (after the job finished) receive it immediately.
type hub struct {
	mu       sync.Mutex
	subs     map[chan sseEvent]struct{}
	terminal *sseEvent
}

func newHub() *hub { return &hub{subs: make(map[chan sseEvent]struct{})} }

// subscribe registers a listener. If the job already reached a terminal
// state, it returns a nil channel and the terminal event instead.
func (h *hub) subscribe() (chan sseEvent, *sseEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.terminal != nil {
		return nil, h.terminal
	}
	ch := make(chan sseEvent, 256)
	h.subs[ch] = struct{}{}
	return ch, nil
}

func (h *hub) unsubscribe(ch chan sseEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.subs, ch)
}

// publish delivers a progress event to every subscriber that has buffer
// space; slow subscribers drop it (see the delivery contract above).
func (h *hub) publish(ev sseEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.terminal != nil {
		return
	}
	for ch := range h.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// close records the terminal event and ends every subscription. It is
// idempotent; only the first terminal wins.
func (h *hub) close(term sseEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.terminal != nil {
		return
	}
	h.terminal = &term
	for ch := range h.subs {
		close(ch)
	}
	h.subs = make(map[chan sseEvent]struct{})
}

// terminalEvent returns the stored terminal event, or nil if the job is
// still active.
func (h *hub) terminalEvent() *sseEvent {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.terminal
}

// writeSSE emits one event in text/event-stream framing and flushes it.
func writeSSE(w http.ResponseWriter, f http.Flusher, ev sseEvent) {
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
	f.Flush()
}
