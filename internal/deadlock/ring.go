package deadlock

import (
	"fmt"
	"strings"

	"ftnoc/internal/trace"
)

// RingFlit is one flit in the ring model, identified the way Fig. 10
// labels them: packet letter + 1-based sequence, e.g. a1..a4.
type RingFlit struct {
	Packet byte
	Seq    int
	// Tail marks the last flit of its packet.
	Tail bool
}

// String implements fmt.Stringer (Fig. 10 notation).
func (f RingFlit) String() string { return fmt.Sprintf("%c%d", f.Packet, f.Seq) }

// sentCopy is a transmitted flit still occupying a retransmission-buffer
// slot until its NACK window closes (the thick-square flits of Fig. 10).
type sentCopy struct {
	f    RingFlit
	sent int
}

// nackWindow mirrors the link layer: a sent copy occupies its shifter
// slot for 3 steps.
const nackWindow = 3

// RingNode is one node of the Fig. 10 ring: a FIFO transmission buffer of
// capacity T and a barrel-shifter retransmission buffer of capacity R
// shared between parked (unsent) flits and sent copies.
type RingNode struct {
	T, R   int
	Trans  []RingFlit
	Parked []RingFlit
	sent   []sentCopy
}

// shifterUsed is the current occupancy of the retransmission buffer.
func (n *RingNode) shifterUsed() int { return len(n.Parked) + len(n.sent) }

// Occupancy returns flits resident at this node (transmission buffer plus
// parked flits; sent copies are duplicates, not residents).
func (n *RingNode) Occupancy() int { return len(n.Trans) + len(n.Parked) }

// Ring is a closed cycle of nodes, each forwarding to the next: the
// distilled deadlock configuration of Figs. 10 and 11. Node i sends to
// node (i+1) mod n. A flit whose packet has "escaped" leaves the ring at
// its exit node instead of re-entering (modelling a packet moving out of
// the deadlock configuration).
type Ring struct {
	Nodes []*RingNode
	// Exit, if non-negative, drains every flit arriving at that node
	// instead of buffering it: the packet that breaks the deadlock by
	// leaving the cyclic dependency.
	Exit int
	// Bus, when non-nil and enabled, receives structured events for every
	// ring action using the same taxonomy as the full simulator: parking
	// is FlitParked, transmission is FlitDequeued + FlitBuffered (or
	// FlitEjected through the exit), recovery onset is RecoveryBegin.
	// Cycle is the step count; Node the ring index; PID encodes the
	// packet letter.
	Bus *trace.Bus

	step      int
	recovery  bool
	delivered int
}

// NewRing builds a ring of n nodes with uniform buffer sizes.
func NewRing(n, t, r int) *Ring {
	if n < 2 || t < 1 || r < 0 {
		panic("deadlock: ring needs >=2 nodes, t>=1, r>=0")
	}
	ring := &Ring{Exit: -1}
	for i := 0; i < n; i++ {
		ring.Nodes = append(ring.Nodes, &RingNode{T: t, R: r})
	}
	return ring
}

// Fill loads node i's transmission buffer with a full packet of m flits
// labelled 'a'+i, as in step 1 of Fig. 10.
func (r *Ring) Fill(m int) {
	for i, n := range r.Nodes {
		for s := 1; s <= m; s++ {
			n.Trans = append(n.Trans, RingFlit{Packet: byte('a' + i), Seq: s, Tail: s == m})
		}
	}
}

// Delivered reports flits that left the ring via the exit node.
func (r *Ring) Delivered() int { return r.delivered }

// Step reports the number of Step calls so far.
func (r *Ring) StepCount() int { return r.step }

// StartRecovery switches every node into deadlock-recovery mode: the
// initial lateral move of step 2 in Fig. 10 happens on the next Step.
func (r *Ring) StartRecovery() {
	r.recovery = true
	if r.Bus.Enabled() {
		r.Bus.Emit(trace.Event{
			Cycle: uint64(r.step), Kind: trace.RecoveryBegin, Node: -1, Port: -1, VC: -1,
		})
	}
}

// emit publishes one ring event (kind, node, flit) if a bus is attached.
func (r *Ring) emit(k trace.Kind, node int, f RingFlit, aux uint64) {
	if !r.Bus.Enabled() {
		return
	}
	r.Bus.Emit(trace.Event{
		Cycle: uint64(r.step), Kind: k, Node: int32(node), Port: -1, VC: -1,
		Seq: uint8(f.Seq), PID: uint64(f.Packet), Aux: aux,
	})
}

// Blocked reports whether no flit can move: every transmission buffer is
// full and no parked flit has downstream space.
func (r *Ring) Blocked() bool {
	for i, n := range r.Nodes {
		next := r.Nodes[(i+1)%len(r.Nodes)]
		if r.Exit == (i+1)%len(r.Nodes) {
			if len(n.Trans) > 0 || len(n.Parked) > 0 {
				return false
			}
			continue
		}
		if len(next.Trans) < next.T {
			if len(n.Parked) > 0 || len(n.Trans) > 0 {
				return false
			}
		}
	}
	return true
}

// Step advances the ring by one cycle, applying Fig. 10's mechanics
// synchronously: (1) expire sent copies whose window closed, (2) every
// node with downstream space transmits its front flit (parked flits
// first), (3) in recovery mode, nodes park front flits into free shifter
// slots, creating space for the preceding node.
func (r *Ring) Step() {
	r.step++
	n := len(r.Nodes)

	// Phase 1: expire sent copies (the barrel shift off the end).
	for _, node := range r.Nodes {
		for len(node.sent) > 0 && r.step >= node.sent[0].sent+nackWindow {
			node.sent = node.sent[1:]
		}
	}

	// Phase 2: decide transmissions against the pre-step buffer state so
	// all nodes act simultaneously, then apply.
	type move struct {
		from int
		f    RingFlit
	}
	var moves []move
	space := make([]int, n)
	for i, node := range r.Nodes {
		space[i] = node.T - len(node.Trans)
	}
	for i, node := range r.Nodes {
		dst := (i + 1) % n
		var f RingFlit
		switch {
		case len(node.Parked) > 0:
			f = node.Parked[0]
		case len(node.Trans) > 0:
			f = node.Trans[0]
		default:
			continue
		}
		if dst != r.Exit && space[dst] <= 0 {
			continue
		}
		moves = append(moves, move{from: i, f: f})
	}
	for _, mv := range moves {
		node := r.Nodes[mv.from]
		if len(node.Parked) > 0 {
			node.Parked = node.Parked[1:]
			// A transmitted parked flit moves to the back of the shifter
			// as a sent copy (Fig. 10 steps 3-5).
			node.sent = append(node.sent, sentCopy{f: mv.f, sent: r.step})
			r.emit(trace.FlitDequeued, mv.from, mv.f, 0)
		} else {
			node.Trans = node.Trans[1:]
			node.sent = append(node.sent, sentCopy{f: mv.f, sent: r.step})
			r.emit(trace.FlitDequeued, mv.from, mv.f, trace.DequeuedFromBuffer)
		}
		dst := (mv.from + 1) % n
		if dst == r.Exit {
			r.delivered++
			r.emit(trace.FlitEjected, dst, mv.f, 0)
			continue
		}
		r.Nodes[dst].Trans = append(r.Nodes[dst].Trans, mv.f)
		r.emit(trace.FlitBuffered, dst, mv.f, 0)
	}

	// Phase 3: recovery parking into free shifter slots.
	if !r.recovery {
		return
	}
	for i, node := range r.Nodes {
		dst := (i + 1) % n
		if dst == r.Exit {
			continue // this node can always transmit; no need to park
		}
		for len(node.Trans) > 0 && node.shifterUsed() < node.R {
			f := node.Trans[0]
			node.Parked = append(node.Parked, f)
			node.Trans = node.Trans[1:]
			r.emit(trace.FlitParked, i, f, 0)
		}
	}
}

// Run steps until every flit has been delivered through the exit or the
// step limit is hit; it returns true on full drainage.
func (r *Ring) Run(limit int) bool {
	for s := 0; s < limit; s++ {
		if r.totalResident() == 0 {
			return true
		}
		r.Step()
	}
	return r.totalResident() == 0
}

func (r *Ring) totalResident() int {
	total := 0
	for _, n := range r.Nodes {
		total += n.Occupancy()
	}
	return total
}

// Snapshot renders the ring state in Fig. 10's style, for trace tests and
// the example program.
func (r *Ring) Snapshot() string {
	var b strings.Builder
	for i, n := range r.Nodes {
		fmt.Fprintf(&b, "node%d T:%v P:%v S:%d  ", i, n.Trans, n.Parked, len(n.sent))
		_ = i
	}
	return strings.TrimSpace(b.String())
}
