package deadlock

import (
	"testing"
	"testing/quick"
)

// The paper's first worked example (Fig. 10): T=4, R=3, M=4, n=3:
// B2 = 3*(4+3) = 21 > 4*3*1 = 12.
func TestEq1Figure10Example(t *testing.T) {
	if !Eq1SatisfiedUniform(3, 4, 4, 3) {
		t.Fatal("Fig. 10 configuration must satisfy Eq. (1)")
	}
}

// The paper's second worked example (Fig. 11): T=6, R=3, M=4, n=4:
// B2 = 4*(6+3) = 36 > 4*4*2 = 32.
func TestEq1Figure11Example(t *testing.T) {
	if !Eq1SatisfiedUniform(4, 4, 6, 3) {
		t.Fatal("Fig. 11 configuration must satisfy Eq. (1)")
	}
}

// Removing the retransmission buffers from the Fig. 11 case violates the
// bound: 4*6 = 24 < 32.
func TestEq1ViolatedWithoutRetrans(t *testing.T) {
	if Eq1SatisfiedUniform(4, 4, 6, 0) {
		t.Fatal("Fig. 11 without retransmission buffers must violate Eq. (1)")
	}
}

func TestEq1NonUniform(t *testing.T) {
	// Mixed buffer sizes: capacity 7+9 = 16 > 4*(1+2) = 12.
	if !Eq1Satisfied(4, []int{4, 6}, []int{3, 3}) {
		t.Fatal("non-uniform satisfying case failed")
	}
	// 4+6 = 10 < 12 without retransmission buffers.
	if Eq1Satisfied(4, []int{4, 6}, []int{0, 0}) {
		t.Fatal("non-uniform violating case passed")
	}
}

func TestEq1DegenerateInputs(t *testing.T) {
	if Eq1Satisfied(0, []int{4}, []int{3}) {
		t.Fatal("m=0 accepted")
	}
	if Eq1Satisfied(4, []int{4}, []int{3, 3}) {
		t.Fatal("mismatched lengths accepted")
	}
	if Eq1Satisfied(4, nil, nil) {
		t.Fatal("empty accepted")
	}
	if Eq1SatisfiedUniform(0, 4, 4, 3) {
		t.Fatal("n=0 accepted")
	}
}

func TestMinTotalBuffer(t *testing.T) {
	cases := []struct{ m, t, want int }{
		{4, 4, 5}, // one packet per buffer: need M+1
		{4, 6, 9}, // two partial packets: need 2M+1 (the Fig. 11 case)
		{4, 8, 9}, // exactly two packets
		{2, 5, 7}, // three 2-flit packets
		{8, 4, 9}, // buffer smaller than packet still holds one partial
	}
	for _, c := range cases {
		if got := MinTotalBuffer(c.m, c.t); got != c.want {
			t.Errorf("MinTotalBuffer(%d,%d) = %d, want %d", c.m, c.t, got, c.want)
		}
	}
}

// Property: MinTotalBuffer is the exact threshold of Eq1SatisfiedUniform.
func TestEq1ThresholdProperty(t *testing.T) {
	f := func(mRaw, tRaw, nRaw uint8) bool {
		m := int(mRaw%8) + 1
		tr := int(tRaw%12) + 1
		n := int(nRaw%6) + 1
		min := MinTotalBuffer(m, tr)
		r := min - tr // retrans depth that exactly reaches the threshold
		if r < 0 {
			return true // buffer alone already exceeds the bound
		}
		return Eq1SatisfiedUniform(n, m, tr, r) && !Eq1SatisfiedUniform(n, m, tr, r-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestRingFigure10 reproduces the Fig. 10 trace: a 3-node ring of 4-flit
// packets with T=4, R=3 is fully wedged; recovery parks 3 flits per node
// and after one full rotation (step 7 in the figure) every flit has
// advanced exactly 3 slots, with the retransmission buffers empty again.
func TestRingFigure10(t *testing.T) {
	r := NewRing(3, 4, 3)
	r.Fill(4)
	if !r.Blocked() {
		t.Fatal("filled ring not blocked")
	}
	r.Step()
	if !r.Blocked() {
		t.Fatal("blocked ring moved without recovery")
	}
	r.StartRecovery()
	// Step 2 of the figure: the lateral move happens, freeing 3 slots.
	r.Step()
	for i, n := range r.Nodes {
		if len(n.Parked) != 3 || len(n.Trans) != 1 {
			t.Fatalf("node %d after parking: trans=%v parked=%v", i, n.Trans, n.Parked)
		}
	}
	// Three more steps circulate the parked flits to the next nodes.
	r.Step()
	r.Step()
	r.Step()
	for i, n := range r.Nodes {
		if len(n.Trans) != 4 {
			t.Fatalf("node %d after rotation: %v / %v", i, n.Trans, n.Parked)
		}
		// Every flit advanced by 3 slots: node i now holds the last flit
		// of its own packet followed by the first three of the upstream
		// packet.
		up := byte('a' + (i+2)%3)
		own := byte('a' + i)
		want := []RingFlit{
			{Packet: own, Seq: 4, Tail: true},
			{Packet: up, Seq: 1},
			{Packet: up, Seq: 2},
			{Packet: up, Seq: 3},
		}
		for j, f := range n.Trans {
			if f.Packet != want[j].Packet || f.Seq != want[j].Seq {
				t.Fatalf("node %d slot %d = %v, want %v (state: %s)", i, j, f, want[j], r.Snapshot())
			}
		}
	}
}

// With an exit node, recovery drains the entire deadlock: the Fig. 10
// procedure "repeated until at least one of the packets breaks the
// deadlock by going out to a direction away from the configuration".
func TestRingDrainsThroughExit(t *testing.T) {
	r := NewRing(4, 4, 3)
	r.Fill(4)
	r.Exit = 0
	r.StartRecovery()
	if !r.Run(200) {
		t.Fatalf("ring did not drain: %s", r.Snapshot())
	}
	if r.Delivered() != 16 {
		t.Fatalf("delivered %d flits, want 16", r.Delivered())
	}
}

// Without recovery the same ring never moves.
func TestRingStuckWithoutRecovery(t *testing.T) {
	r := NewRing(4, 4, 3)
	r.Fill(4)
	for i := 0; i < 50; i++ {
		r.Step()
	}
	if !r.Blocked() {
		t.Fatal("ring moved without recovery")
	}
	for i, n := range r.Nodes {
		if len(n.Trans) != 4 {
			t.Fatalf("node %d changed: %v", i, n.Trans)
		}
	}
}

// Without retransmission buffers (R=0) recovery has no slack to create:
// the ring stays wedged even in recovery mode.
func TestRingStuckWithoutRetransBuffers(t *testing.T) {
	r := NewRing(4, 4, 0)
	r.Fill(4)
	r.StartRecovery()
	for i := 0; i < 50; i++ {
		r.Step()
	}
	if !r.Blocked() {
		t.Fatal("R=0 ring moved; recovery should be impossible")
	}
}

// TestRingFigure11WorstCase: with T=6 holding flits of two packets
// (a partial packet blocking a whole one), B=9 > 8 per Eq. (1) and the
// ring still drains.
func TestRingFigure11WorstCase(t *testing.T) {
	r := NewRing(4, 6, 3)
	// Fill each buffer with 6 flits spanning two packets: the Fig. 11
	// situation of partially transferred messages.
	for i, n := range r.Nodes {
		p1 := byte('a' + i)
		p2 := byte('e' + i)
		n.Trans = []RingFlit{
			{Packet: p1, Seq: 3}, {Packet: p1, Seq: 4, Tail: true},
			{Packet: p2, Seq: 1}, {Packet: p2, Seq: 2}, {Packet: p2, Seq: 3}, {Packet: p2, Seq: 4, Tail: true},
		}
	}
	r.Exit = 0
	r.StartRecovery()
	if !r.Run(300) {
		t.Fatalf("worst case did not drain: %s", r.Snapshot())
	}
	if r.Delivered() != 24 {
		t.Fatalf("delivered %d flits, want 24", r.Delivered())
	}
}

// Flit conservation: recovery must never lose or duplicate a resident
// flit.
func TestRingConservationProperty(t *testing.T) {
	f := func(nRaw, tRaw, rRaw, steps uint8) bool {
		n := int(nRaw%4) + 2
		tr := int(tRaw%6) + 2
		rr := int(rRaw % 4)
		ring := NewRing(n, tr, rr)
		ring.Fill(tr)
		ring.StartRecovery()
		total := n * tr
		for s := 0; s < int(steps%40); s++ {
			ring.Step()
			resident := 0
			for _, node := range ring.Nodes {
				resident += node.Occupancy()
			}
			if resident+ring.Delivered() != total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The worst-case refinement: T=4, R=3, M=4 passes the paper's formula
// but fails the refined bound (7 < 4*2+1), matching the full-network
// observation that such configurations wedge.
func TestEq1WorstCaseRefinement(t *testing.T) {
	if !Eq1SatisfiedUniform(4, 4, 4, 3) {
		t.Fatal("paper's formula should accept T=4,R=3,M=4")
	}
	if Eq1WorstCaseSatisfiedUniform(4, 4, 4, 3) {
		t.Fatal("refined bound should reject T=4,R=3,M=4")
	}
	// The paper's own Fig. 11 provisioning satisfies both forms.
	if !Eq1WorstCaseSatisfiedUniform(4, 4, 6, 3) {
		t.Fatal("refined bound should accept T=6,R=3,M=4")
	}
	if MinTotalBufferWorstCase(4, 4) != 9 || MinTotalBufferWorstCase(4, 6) != 9 {
		t.Fatalf("worst-case minimums wrong: %d, %d",
			MinTotalBufferWorstCase(4, 4), MinTotalBufferWorstCase(4, 6))
	}
}

func TestEq1WorstCaseDegenerate(t *testing.T) {
	if Eq1WorstCaseSatisfied(0, []int{4}, []int{3}) {
		t.Fatal("m=0 accepted")
	}
	if Eq1WorstCaseSatisfiedUniform(0, 4, 6, 3) {
		t.Fatal("n=0 accepted")
	}
}
