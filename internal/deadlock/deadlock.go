// Package deadlock contains the analytical side of the paper's deadlock
// recovery scheme (§3.2): the Eq. (1) buffer lower bound with the paper's
// two worked examples, and a flit-exact ring model that reproduces the
// buffer mechanics of Fig. 10 (barrel-shifter recovery) and Fig. 11 (the
// worst case with partially transferred packets).
//
// The full network simulator (package router) implements recovery inside
// real routers with credits and probes; this package isolates the buffer
// arithmetic so the theorem and its figures can be tested and
// demonstrated directly.
package deadlock

// Eq1Satisfied evaluates the buffer lower bound of Equation (1): during
// recovery the combined transmission + retransmission capacity must
// exceed the flits that may need absorbing, i.e.
//
//	sum_i (T_i + R_i)  >  M * sum_i N_i,   N_i = ceil(T_i / M)
//
// where M is the flits per packet and N_i the maximum number of different
// packets resident in transmission buffer i.
func Eq1Satisfied(m int, trans, retrans []int) bool {
	if m < 1 || len(trans) != len(retrans) || len(trans) == 0 {
		return false
	}
	capacity, need := 0, 0
	for i := range trans {
		capacity += trans[i] + retrans[i]
		need += m * packetsPerBuffer(trans[i], m)
	}
	return capacity > need
}

// Eq1SatisfiedUniform is Eq1Satisfied for n identical nodes: the form of
// the paper's examples.
func Eq1SatisfiedUniform(n, m, t, r int) bool {
	if n < 1 {
		return false
	}
	trans := make([]int, n)
	retrans := make([]int, n)
	for i := range trans {
		trans[i] = t
		retrans[i] = r
	}
	return Eq1Satisfied(m, trans, retrans)
}

// packetsPerBuffer is the paper's N_i = ceil(T_i / M).
func packetsPerBuffer(t, m int) int { return (t + m - 1) / m }

// MinTotalBuffer returns the smallest uniform per-node total buffer size
// (T + R) that satisfies Eq. (1) for the given packet size and
// transmission-buffer depth.
func MinTotalBuffer(m, t int) int {
	return m*packetsPerBuffer(t, m) + 1
}

// Worst-case refinement.
//
// Eq. (1) takes N_i = ceil(T_i / M), the packet count of a buffer whose
// packets are aligned to its boundaries. A wormhole buffer can do worse:
// the tail of one packet can occupy the front slots while the head of the
// next fills the rest, so up to floor(T_i/M)+1 *distinct* packets can be
// resident — one more than the paper's figure exactly when M divides T.
// Our full-network experiments confirm the refinement matters: with
// M = 4, the T=4, R=3 configuration satisfies the paper's bound (7 > 4)
// yet wedges permanently under adaptive-routing deadlocks, while T=6,
// R=3 (9 > 8, compliant under both forms) always drains. Use the
// WorstCase variants to provision real buffers.

// worstCasePackets is the refined N_i: floor(T_i/M) + 1.
func worstCasePackets(t, m int) int { return t/m + 1 }

// Eq1WorstCaseSatisfied evaluates the buffer bound against the refined
// worst-case packet count.
func Eq1WorstCaseSatisfied(m int, trans, retrans []int) bool {
	if m < 1 || len(trans) != len(retrans) || len(trans) == 0 {
		return false
	}
	capacity, need := 0, 0
	for i := range trans {
		capacity += trans[i] + retrans[i]
		need += m * worstCasePackets(trans[i], m)
	}
	return capacity > need
}

// Eq1WorstCaseSatisfiedUniform is Eq1WorstCaseSatisfied for n identical
// nodes.
func Eq1WorstCaseSatisfiedUniform(n, m, t, r int) bool {
	if n < 1 {
		return false
	}
	trans := make([]int, n)
	retrans := make([]int, n)
	for i := range trans {
		trans[i] = t
		retrans[i] = r
	}
	return Eq1WorstCaseSatisfied(m, trans, retrans)
}

// MinTotalBufferWorstCase returns the smallest per-node total buffer
// (T + R) that satisfies the refined worst-case bound.
func MinTotalBufferWorstCase(m, t int) int {
	return m*worstCasePackets(t, m) + 1
}
