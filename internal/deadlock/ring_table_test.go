package deadlock

import (
	"strings"
	"testing"

	"ftnoc/internal/trace"
)

// TestRingDrainTable sweeps the ring model's edge geometries — the
// minimal two-node ring, an exit on the wrap-around link, narrow
// single-flit buffers, shifters smaller than a packet, and recovery
// disabled — and pins for each whether the configuration drains and how
// many flits leave. The analytical cases (Figs. 10/11) live in the
// dedicated tests; this table guards the mechanics around them.
func TestRingDrainTable(t *testing.T) {
	cases := []struct {
		name         string
		n, tBuf, r   int
		m            int // flits per packet loaded by Fill
		exit         int
		recovery     bool
		limit        int
		wantDrain    bool
		wantDeliver  int
		wantStuckAll bool // every transmission buffer still full at the end
	}{
		// The smallest legal ring, exit on the wrap-around edge (node 1
		// sends to node 0 through the modulo step).
		{name: "two-node-wraparound-exit", n: 2, tBuf: 3, r: 2, m: 3,
			exit: 0, recovery: true, limit: 100, wantDrain: true, wantDeliver: 6},
		// Exit at the highest index: the non-wrapping edge into it drains,
		// the wrap edge out of it is never used once it is empty.
		{name: "exit-at-last-node", n: 4, tBuf: 4, r: 3, m: 4,
			exit: 3, recovery: true, limit: 200, wantDrain: true, wantDeliver: 16},
		// An exit alone (no recovery) already un-wedges the ring: the node
		// feeding the exit always has downstream space.
		{name: "exit-without-recovery", n: 3, tBuf: 4, r: 3, m: 4,
			exit: 1, recovery: false, limit: 200, wantDrain: true, wantDeliver: 12},
		// Single-flit buffers: the tightest geometry that can still rotate.
		{name: "single-flit-buffers", n: 3, tBuf: 1, r: 1, m: 1,
			exit: 0, recovery: true, limit: 100, wantDrain: true, wantDeliver: 3},
		// Shifter smaller than a packet still suffices with an exit: slack
		// is created one flit at a time.
		{name: "shifter-smaller-than-packet", n: 3, tBuf: 4, r: 2, m: 4,
			exit: 0, recovery: true, limit: 300, wantDrain: true, wantDeliver: 12},
		// No exit: recovery rotates flits around the cycle forever but
		// nothing ever leaves — livelock, not progress.
		{name: "recovery-without-exit-livelocks", n: 3, tBuf: 4, r: 3, m: 4,
			exit: -1, recovery: true, limit: 120, wantDrain: false, wantDeliver: 0},
		// Neither exit nor recovery: fully wedged, nothing moves at all.
		{name: "wedged", n: 4, tBuf: 4, r: 3, m: 4,
			exit: -1, recovery: false, limit: 50, wantDrain: false, wantDeliver: 0,
			wantStuckAll: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ring := NewRing(tc.n, tc.tBuf, tc.r)
			ring.Fill(tc.m)
			ring.Exit = tc.exit
			if tc.recovery {
				ring.StartRecovery()
			}
			drained := ring.Run(tc.limit)
			if drained != tc.wantDrain {
				t.Fatalf("drained=%v, want %v (state: %s)", drained, tc.wantDrain, ring.Snapshot())
			}
			if ring.Delivered() != tc.wantDeliver {
				t.Fatalf("delivered %d, want %d", ring.Delivered(), tc.wantDeliver)
			}
			if tc.wantStuckAll {
				for i, n := range ring.Nodes {
					if len(n.Trans) != tc.tBuf || len(n.Parked) != 0 {
						t.Fatalf("node %d moved in a wedged ring: %s", i, ring.Snapshot())
					}
				}
			}
			if drained {
				// Drained means drained: no stragglers in any buffer class.
				for i, n := range ring.Nodes {
					if n.Occupancy() != 0 {
						t.Fatalf("node %d still holds flits after drain: %s", i, ring.Snapshot())
					}
				}
			}
		})
	}
}

// TestRingBlockedEdgeCases pins Blocked's boundary behaviour: partial
// buffers are movable, a full ring is blocked, and the exit node's
// infinite sink unblocks its upstream neighbour.
func TestRingBlockedEdgeCases(t *testing.T) {
	// Full ring, no exit: blocked.
	r := NewRing(3, 2, 1)
	r.Fill(2)
	if !r.Blocked() {
		t.Fatal("full exitless ring not blocked")
	}
	// The same ring with an exit is not blocked: the upstream of the exit
	// can always transmit.
	r.Exit = 1
	if r.Blocked() {
		t.Fatal("ring with an exit reported blocked")
	}
	// Partially filled ring: downstream space exists, so not blocked.
	r2 := NewRing(3, 2, 1)
	r2.Fill(2)
	r2.Nodes[1].Trans = r2.Nodes[1].Trans[:1]
	if r2.Blocked() {
		t.Fatal("ring with free space reported blocked")
	}
}

// TestNewRingRejectsDegenerateGeometry pins the constructor's guards.
func TestNewRingRejectsDegenerateGeometry(t *testing.T) {
	cases := []struct {
		name    string
		n, t, r int
	}{
		{"one-node", 1, 4, 3},
		{"zero-transmission", 2, 0, 3},
		{"negative-retrans", 2, 4, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewRing(%d,%d,%d) accepted degenerate geometry", tc.n, tc.t, tc.r)
				}
			}()
			NewRing(tc.n, tc.t, tc.r)
		})
	}
}

// collectSink gathers ring events for the observability test.
type collectSink struct{ events []trace.Event }

func (c *collectSink) Emit(e trace.Event) { c.events = append(c.events, e) }

// TestRingEmitsTraceEvents checks the ring speaks the simulator's event
// taxonomy: RecoveryBegin at StartRecovery, FlitParked for lateral
// moves, FlitDequeued/FlitBuffered for transmissions, FlitEjected at
// the exit — and that a ring without a bus emits nothing and never
// panics (the Enabled guard).
func TestRingEmitsTraceEvents(t *testing.T) {
	sink := &collectSink{}
	bus := trace.NewBus()
	bus.Attach(sink)
	r := NewRing(3, 4, 3)
	r.Bus = bus
	r.Fill(4)
	r.Exit = 0
	r.StartRecovery()
	if !r.Run(200) {
		t.Fatalf("traced ring did not drain: %s", r.Snapshot())
	}
	counts := map[trace.Kind]int{}
	for _, e := range sink.events {
		counts[e.Kind]++
	}
	if counts[trace.RecoveryBegin] != 1 {
		t.Fatalf("RecoveryBegin emitted %d times, want 1", counts[trace.RecoveryBegin])
	}
	for _, k := range []trace.Kind{trace.FlitParked, trace.FlitDequeued, trace.FlitBuffered} {
		if counts[k] == 0 {
			t.Errorf("no %v events from a recovering ring", k)
		}
	}
	if counts[trace.FlitEjected] != r.Delivered() {
		t.Fatalf("%d FlitEjected events for %d delivered flits", counts[trace.FlitEjected], r.Delivered())
	}

	// No bus attached: same run, silent and safe.
	quiet := NewRing(3, 4, 3)
	quiet.Fill(4)
	quiet.Exit = 0
	quiet.StartRecovery()
	if !quiet.Run(200) {
		t.Fatal("busless ring did not drain")
	}
}

// TestRingSnapshotShape pins Snapshot's rendering contract loosely (it
// feeds trace tests and the example program): one "nodeN" group per
// node with the three buffer classes visible.
func TestRingSnapshotShape(t *testing.T) {
	r := NewRing(2, 2, 1)
	r.Fill(2)
	s := r.Snapshot()
	for _, want := range []string{"node0", "node1", "T:", "P:", "S:", "a1", "b1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("snapshot %q missing %q", s, want)
		}
	}
}
