package fabric

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// maxCacheEntryBytes bounds one cache-peer PUT body. Shard row tables
// are small (kilobytes per point); anything near this limit is a bug or
// abuse, not a result.
const maxCacheEntryBytes = 64 << 20

// Handler serves the coordinator's fabric surface: worker registration
// and heartbeats, the fleet listing, and the cache-peer store. The
// daemon mounts it under /fabric/ via serve.Options.Fabric.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathWorkers, c.handleRegister)
	mux.HandleFunc("GET "+PathWorkers, c.handleWorkers)
	mux.HandleFunc("GET "+PathCache+"{key}", c.handleCacheGet)
	mux.HandleFunc("PUT "+PathCache+"{key}", c.handleCachePut)
	return mux
}

// handleRegister upserts a worker by name and refreshes its liveness.
// Registration and heartbeat are the same request: idempotent, cheap,
// and self-healing — a coordinator restart loses the fleet map, and the
// next round of heartbeats rebuilds it.
func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad register request: %v", err), http.StatusBadRequest)
		return
	}
	if req.Name == "" || req.URL == "" {
		http.Error(w, "register: name and url are required", http.StatusBadRequest)
		return
	}
	if req.Slots <= 0 {
		req.Slots = 1
	}
	c.mu.Lock()
	ws := c.workers[req.Name]
	fresh := ws == nil
	if fresh {
		ws = &workerState{name: req.Name}
		c.workers[req.Name] = ws
	}
	ws.url = req.URL
	ws.slots = req.Slots
	ws.lastSeen = time.Now()
	c.mu.Unlock()
	c.broadcast()
	if fresh {
		c.log.Info("worker registered", "worker", req.Name, "url", req.URL, "slots", req.Slots)
	}
	writeJSON(w, http.StatusOK, RegisterResponse{
		HeartbeatSeconds: (c.opts.HeartbeatTTL / 3).Seconds(),
	})
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.WorkerList())
}

func (c *Coordinator) cacheStore() CacheStore {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cache
}

func (c *Coordinator) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	store := c.cacheStore()
	if store == nil {
		http.Error(w, "cache-peer disabled", http.StatusNotFound)
		return
	}
	val, ok := store.CacheGet(r.PathValue("key"))
	if !ok {
		http.Error(w, "cache miss", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_, _ = w.Write(val)
}

func (c *Coordinator) handleCachePut(w http.ResponseWriter, r *http.Request) {
	store := c.cacheStore()
	if store == nil {
		http.Error(w, "cache-peer disabled", http.StatusNotFound)
		return
	}
	val, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxCacheEntryBytes))
	if err != nil {
		http.Error(w, fmt.Sprintf("cache put: %v", err), http.StatusRequestEntityTooLarge)
		return
	}
	if len(val) == 0 {
		http.Error(w, "cache put: empty body", http.StatusBadRequest)
		return
	}
	store.CachePut(r.PathValue("key"), val)
	w.WriteHeader(http.StatusNoContent)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
