package fabric

import (
	"time"

	"ftnoc/internal/obs"
)

// coordMetrics is the coordinator's nocd_fabric_* surface. Event-driven
// counters are bumped inline by the dispatcher and executors; fleet and
// queue gauges are func-backed reads of coordinator state at scrape
// time. The registry mounts on the daemon's /metrics through
// serve.Options.ExtraMetrics.
type coordMetrics struct {
	reg *obs.Registry

	dispatched     *obs.Counter
	completed      *obs.Counter
	failures       *obs.Counter
	retries        *obs.Counter
	rows           *obs.Counter
	simCycles      *obs.Counter
	cacheHitShards *obs.Counter
	breakerOpens   *obs.Counter
	tenantQueue    *obs.GaugeVec
	tenantInflight *obs.GaugeVec
}

func newCoordMetrics(c *Coordinator) *coordMetrics {
	reg := obs.NewRegistry()
	m := &coordMetrics{
		reg: reg,
		dispatched: reg.Counter("nocd_fabric_shards_dispatched_total",
			"Shards handed to a worker (redispatches included)."),
		completed: reg.Counter("nocd_fabric_shards_completed_total",
			"Shard dispatches that delivered every row they covered."),
		failures: reg.Counter("nocd_fabric_shard_failures_total",
			"Shard dispatches that failed (transport error, worker error line, or truncated stream)."),
		retries: reg.Counter("nocd_fabric_shard_retries_total",
			"Replacement shards enqueued for undelivered point ranges."),
		rows: reg.Counter("nocd_fabric_rows_received_total",
			"Point rows streamed back from workers (duplicates included)."),
		simCycles: reg.Counter("nocd_fabric_sim_cycles_total",
			"Simulated network cycles reported by shard done lines (cache hits report zero)."),
		cacheHitShards: reg.Counter("nocd_fabric_cache_hit_shards_total",
			"Shards a worker served from the coordinator's cache without simulating."),
		breakerOpens: reg.Counter("nocd_fabric_breaker_opens_total",
			"Times a worker's circuit breaker opened after consecutive failures."),
		tenantQueue: reg.GaugeVec("nocd_fabric_tenant_queue_depth",
			"Shards queued at the coordinator, per tenant.", "tenant"),
		tenantInflight: reg.GaugeVec("nocd_fabric_tenant_inflight_shards",
			"Shards currently executing on workers, per tenant.", "tenant"),
	}
	reg.GaugeFunc("nocd_fabric_workers_registered",
		"Workers the coordinator has ever heard from (stale included).",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.workers))
		})
	reg.GaugeFunc("nocd_fabric_workers_alive",
		"Workers whose last heartbeat is within the liveness TTL.",
		func() float64 {
			now := time.Now()
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.aliveWorkersLocked(now))
		})
	reg.GaugeFunc("nocd_fabric_queue_depth",
		"Shards queued at the coordinator across all tenants.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			n := 0
			for _, tn := range c.tenants {
				n += len(tn.queue)
			}
			return float64(n)
		})
	return m
}

// Metrics is the coordinator's registry, for serve.Options.ExtraMetrics.
func (c *Coordinator) Metrics() *obs.Registry { return c.met.reg }

// noteTenantLocked mirrors one tenant's queue and in-flight depth into
// the per-tenant gauge families; callers hold c.mu.
func (c *Coordinator) noteTenantLocked(tn *tenantState) {
	c.met.tenantQueue.With(tn.name).Set(float64(len(tn.queue)))
	c.met.tenantInflight.With(tn.name).Set(float64(tn.inflight))
}
