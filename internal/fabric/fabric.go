// Package fabric scales the campaign engine beyond one process: a
// coordinator daemon shards a campaign's expanded grid into point-ranges
// and dispatches them over HTTP to registered worker daemons, streaming
// partial result rows back and merging them online into the same Report
// the single-node engine produces.
//
// The design leans entirely on the determinism guarantees the engine
// already provides. Every (point, replicate) derives its seed from the
// base seed and its global grid coordinates alone (campaign.DeriveSeed),
// so a point simulates to identical rows on any worker, any number of
// times — which makes shards idempotent: a dead or timed-out worker's
// unfinished points are simply re-dispatched, and rows that arrive twice
// are equal by construction. The headline consequence is differential
// verifiability: a distributed run is row-for-row identical to a
// single-node run of the same spec, including after a worker is killed
// mid-campaign.
//
// Components:
//
//   - Worker: executes shards (campaign.RunRange) and streams each
//     point's row the moment it completes, NDJSON-framed, over the shard
//     request's response body. Before simulating it consults the
//     coordinator's content-addressed cache under the shard's RangeHash
//     (the cache-peer protocol) and publishes fresh results back.
//   - Coordinator: owns the worker registry (registration + heartbeats,
//     staleness-based death detection), the dispatch scheduler (weighted
//     fair queueing across tenants with per-tenant token quotas, so one
//     giant sweep cannot starve interactive users), and the failure
//     machinery (exponential backoff re-dispatch, per-worker circuit
//     breakers).
//
// The coordinator plugs into internal/serve as its Options.Runner, so
// the public /v1/campaigns API, bounded queue, result cache and SSE
// progress streaming are exactly the single-node daemon's.
package fabric

// Protocol paths, shared by both roles. The coordinator serves workers
// and cache under these; the worker serves shards.
const (
	// PathShards is the worker's shard-execution endpoint.
	PathShards = "/fabric/v1/shards"
	// PathWorkers is the coordinator's registration/heartbeat endpoint.
	PathWorkers = "/fabric/v1/workers"
	// PathCache is the coordinator's cache-peer endpoint prefix; a key
	// is appended as the final path element.
	PathCache = "/fabric/v1/cache/"
)
