package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ftnoc/internal/campaign"
	"ftnoc/internal/serve"
)

// stubShardHandler implements the shard protocol without simulating:
// it sleeps `delay` per shard, then emits one synthetic row per point.
// It tracks concurrency so token-quota tests can assert the cap held.
type stubShardHandler struct {
	delay time.Duration
	cur   atomic.Int64
	peak  atomic.Int64
}

func (s *stubShardHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	cur := s.cur.Add(1)
	defer s.cur.Add(-1)
	for {
		peak := s.peak.Load()
		if cur <= peak || s.peak.CompareAndSwap(peak, cur) {
			break
		}
	}
	var req ShardRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	time.Sleep(s.delay)
	enc := json.NewEncoder(w)
	for p := req.Lo; p < req.Hi; p++ {
		_ = enc.Encode(ShardLine{Row: &campaign.PointRow{Point: p}})
	}
	_ = enc.Encode(ShardLine{Done: &ShardDone{Points: req.Hi - req.Lo}})
}

// sweepSpec builds an n-point grid by fanning out the injection-rate
// axis; the stub never simulates, so only the grid shape matters.
func sweepSpec(n int) campaign.Spec {
	spec := campaign.Spec{Base: tinyBase(), Seeds: 1}
	for i := 0; i < n; i++ {
		spec.InjectionRates = append(spec.InjectionRates, 0.001*float64(i+1))
	}
	return spec
}

// TestTenantFairness submits a 100-point sweep for one tenant, then a
// 2-point interactive run for another while the sweep is mid-flight.
// Weighted fair queueing must let the interactive run jump the sweep's
// backlog and complete first, and both tenants must show up in the
// per-tenant queue-depth metrics.
func TestTenantFairness(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{
		ShardPoints:  1,
		HeartbeatTTL: time.Minute,
	})
	defer coord.Close()
	coordSrv := httptest.NewServer(coord.Handler())
	defer coordSrv.Close()

	stub := &stubShardHandler{delay: 2 * time.Millisecond}
	stubSrv := httptest.NewServer(stub)
	defer stubSrv.Close()
	registerWorker(t, coordSrv.URL, "w0", stubSrv.URL, 1)

	sweepDone := make(chan time.Time, 1)
	go func() {
		ctx := serve.WithTenant(context.Background(), "sweep")
		if _, err := coord.Run(ctx, sweepSpec(100)); err != nil {
			t.Errorf("sweep run: %v", err)
		}
		sweepDone <- time.Now()
	}()

	// Wait until the sweep is actually being served before the
	// interactive tenant shows up.
	waitFor(t, func() bool { return coord.met.dispatched.Value() >= 3 })

	var metrics bytes.Buffer
	if err := coord.Metrics().WriteText(&metrics); err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if !strings.Contains(metrics.String(), `nocd_fabric_tenant_queue_depth{tenant="sweep"}`) {
		t.Fatalf("per-tenant queue-depth series missing:\n%s", metrics.String())
	}

	ctx := serve.WithTenant(context.Background(), "interactive")
	if _, err := coord.Run(ctx, sweepSpec(2)); err != nil {
		t.Fatalf("interactive run: %v", err)
	}
	interactiveDone := time.Now()

	select {
	case d := <-sweepDone:
		t.Fatalf("sweep finished at %v, before the interactive run (%v): WFQ did not protect the small tenant", d, interactiveDone)
	default:
	}
	if d := <-sweepDone; d.Before(interactiveDone) {
		t.Fatalf("sweep finished %v before interactive %v", d, interactiveDone)
	}

	metrics.Reset()
	if err := coord.Metrics().WriteText(&metrics); err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, series := range []string{
		`nocd_fabric_tenant_queue_depth{tenant="sweep"}`,
		`nocd_fabric_tenant_queue_depth{tenant="interactive"}`,
		`nocd_fabric_tenant_inflight_shards{tenant="interactive"}`,
	} {
		if !strings.Contains(metrics.String(), series) {
			t.Errorf("metrics missing series %s", series)
		}
	}
}

// TestTenantTokens caps one tenant at a single in-flight shard across a
// three-slot fleet, then removes the cap and checks the fleet saturates.
func TestTenantTokens(t *testing.T) {
	runWith := func(tokens int) int64 {
		coord := NewCoordinator(CoordinatorOptions{
			ShardPoints:  1,
			HeartbeatTTL: time.Minute,
			TenantTokens: tokens,
		})
		defer coord.Close()
		coordSrv := httptest.NewServer(coord.Handler())
		defer coordSrv.Close()
		stub := &stubShardHandler{delay: 20 * time.Millisecond}
		stubSrv := httptest.NewServer(stub)
		defer stubSrv.Close()
		for i := 0; i < 3; i++ {
			registerWorker(t, coordSrv.URL, fmt.Sprintf("w%d", i), stubSrv.URL, 1)
		}
		if _, err := coord.Run(context.Background(), sweepSpec(9)); err != nil {
			t.Fatalf("run with tokens=%d: %v", tokens, err)
		}
		return stub.peak.Load()
	}
	if peak := runWith(1); peak != 1 {
		t.Fatalf("with a 1-token quota, peak in-flight = %d, want 1", peak)
	}
	if peak := runWith(0); peak < 2 {
		t.Fatalf("uncapped 9-shard run on 3 workers peaked at %d in-flight, want >= 2", peak)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
