package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"ftnoc/internal/campaign"
	"ftnoc/internal/obs"
)

// WorkerOptions configures a shard-executing worker daemon.
type WorkerOptions struct {
	// Name identifies the worker to the coordinator (default: required
	// only for registration; the shard endpoint works unnamed).
	Name string
	// Coordinator is the coordinator's base URL. It is where the worker
	// registers, heartbeats, and resolves cache-peer lookups. Empty
	// disables both (useful in tests that drive the shard endpoint
	// directly).
	Coordinator string
	// Slots is the concurrent-shard capacity advertised at registration
	// (default 1). The worker does not enforce it; the coordinator's
	// dispatcher respects it.
	Slots int
	// SimWorkers overrides Spec.Workers for shard simulation (default 0,
	// meaning GOMAXPROCS). Results are scheduling-independent, so this
	// never changes rows — only how hard the worker drives its cores.
	SimWorkers int
	// Client issues registration and cache-peer requests (default
	// http.DefaultClient).
	Client *http.Client
	// Logger receives shard lifecycle records. Nil discards.
	Logger *slog.Logger
}

// Worker executes shards. It is an http.Handler factory (Handler serves
// POST PathShards) plus the registration/heartbeat loop that keeps the
// coordinator's liveness view current.
type Worker struct {
	opts   WorkerOptions
	log    *slog.Logger
	client *http.Client
	reg    *obs.Registry

	simCycles    atomic.Uint64
	shards       *obs.CounterVec // result: simulated | cache_hit | error
	rowsStreamed *obs.Counter
	active       *obs.Gauge
}

// NewWorker builds a worker from opts.
func NewWorker(opts WorkerOptions) *Worker {
	if opts.Slots <= 0 {
		opts.Slots = 1
	}
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	reg := obs.NewRegistry()
	w := &Worker{
		opts:   opts,
		log:    opts.Logger,
		client: opts.Client,
		reg:    reg,
		shards: reg.CounterVec("nocd_fabric_worker_shards_total",
			"Shards executed, by result: simulated, cache_hit, or error.", "result"),
		rowsStreamed: reg.Counter("nocd_fabric_worker_rows_streamed_total",
			"Point rows streamed back to the coordinator."),
		active: reg.Gauge("nocd_fabric_worker_active_shards",
			"Shards currently executing."),
	}
	reg.CounterFunc("nocd_fabric_worker_sim_cycles_total",
		"Simulated network cycles across all shards (cache hits cost none).",
		func() float64 { return float64(w.simCycles.Load()) })
	return w
}

// Metrics is the worker's nocd_fabric_worker_* registry, for mounting on
// the daemon's /metrics via serve.Options.ExtraMetrics.
func (w *Worker) Metrics() *obs.Registry { return w.reg }

// SimCycles reports the total simulated network cycles this worker has
// executed. The cache-peer differential test pins its claim on this
// counter: a fully cache-served rerun must leave it unchanged.
func (w *Worker) SimCycles() uint64 { return w.simCycles.Load() }

// Handler serves the worker's fabric surface: POST PathShards.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathShards, w.handleShard)
	return mux
}

// handleShard executes one shard and streams its rows back NDJSON-framed.
// Protocol errors before the stream opens (bad body, bad spec) are plain
// HTTP errors; once rows are flowing, failures travel as an Error line.
func (w *Worker) handleShard(rw http.ResponseWriter, r *http.Request) {
	var req ShardRequest
	if err := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(rw, fmt.Sprintf("bad shard request: %v", err), http.StatusBadRequest)
		return
	}
	spec, err := campaign.ParseSpec(req.Spec)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	w.active.Inc()
	defer w.active.Dec()

	rw.Header().Set("Content-Type", "application/x-ndjson")
	rw.WriteHeader(http.StatusOK)
	flusher, _ := rw.(http.Flusher)
	enc := json.NewEncoder(rw)
	writeLine := func(line ShardLine) {
		_ = enc.Encode(line) // Encode appends the NDJSON newline
		if flusher != nil {
			flusher.Flush()
		}
	}
	log := w.log.With("job", req.Job, "lo", req.Lo, "hi", req.Hi)

	// Cache-peer consult: someone may already have computed exactly these
	// rows (an earlier run of the same shard, possibly on another
	// worker). Any failure here just means simulating — the cache is an
	// optimisation, never a correctness dependency.
	if rows, ok := w.cacheLookup(r.Context(), req.CacheKey); ok {
		for i := range rows {
			writeLine(ShardLine{Row: &rows[i]})
		}
		writeLine(ShardLine{Done: &ShardDone{Points: len(rows), CacheHit: true}})
		w.shards.With("cache_hit").Inc()
		w.rowsStreamed.Add(float64(len(rows)))
		log.Debug("shard served from cache-peer", "rows", len(rows))
		return
	}

	spec.Workers = w.opts.SimWorkers
	streamed := 0
	report, err := campaign.RunRange(r.Context(), spec, req.Lo, req.Hi, func(row campaign.PointRow) {
		streamed++
		writeLine(ShardLine{Row: &row})
	})
	w.rowsStreamed.Add(float64(streamed))
	if err != nil {
		writeLine(ShardLine{Error: err.Error()})
		w.shards.With("error").Inc()
		log.Warn("shard failed", "err", err)
		return
	}
	var cycles uint64
	for i := range report.Points {
		for _, rr := range report.Points[i].Reps {
			cycles += rr.Results.Cycles
		}
	}
	w.simCycles.Add(cycles)
	w.cachePublish(r.Context(), req.CacheKey, report)
	writeLine(ShardLine{Done: &ShardDone{Points: streamed, SimCycles: cycles}})
	w.shards.With("simulated").Inc()
	log.Debug("shard simulated", "rows", streamed, "sim_cycles", cycles)
}

// cacheLookup fetches the shard's rows from the coordinator's cache.
// A miss, a transport error, or an unparseable body all report !ok.
func (w *Worker) cacheLookup(ctx context.Context, key string) ([]campaign.PointRow, bool) {
	if key == "" || w.opts.Coordinator == "" {
		return nil, false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.opts.Coordinator+PathCache+key, nil)
	if err != nil {
		return nil, false
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	rows, err := campaign.ReadNDJSON(resp.Body)
	if err != nil || len(rows) == 0 {
		w.log.Warn("cache-peer entry unreadable, simulating", "key", key, "err", err)
		return nil, false
	}
	return rows, true
}

// cachePublish stores a freshly simulated shard's rows under its content
// address, best-effort: the next request for these exact points — on any
// worker — becomes a cache hit.
func (w *Worker) cachePublish(ctx context.Context, key string, report *campaign.Report) {
	if key == "" || w.opts.Coordinator == "" {
		return
	}
	var buf bytes.Buffer
	if err := campaign.WriteRowsNDJSON(&buf, report.PointRows()); err != nil {
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, w.opts.Coordinator+PathCache+key, &buf)
	if err != nil {
		return
	}
	resp, err := w.client.Do(req)
	if err != nil {
		w.log.Warn("cache-peer publish failed", "key", key, "err", err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// RegisterLoop announces the worker to the coordinator and keeps
// heartbeating at the interval the coordinator prescribes until ctx is
// canceled. selfURL is the base URL where this worker's Handler is
// reachable. Transient failures retry at a short fixed interval — a
// worker that cannot reach its coordinator is useless but not broken.
func (w *Worker) RegisterLoop(ctx context.Context, selfURL string) {
	interval := time.Second
	registered := false
	for {
		resp, err := w.register(ctx, selfURL)
		switch {
		case err != nil:
			if registered {
				w.log.Warn("heartbeat failed", "coordinator", w.opts.Coordinator, "err", err)
			}
			registered = false
			interval = time.Second
		default:
			if !registered {
				w.log.Info("registered with coordinator",
					"coordinator", w.opts.Coordinator, "name", w.opts.Name,
					"heartbeat_seconds", resp.HeartbeatSeconds)
			}
			registered = true
			if resp.HeartbeatSeconds > 0 {
				interval = time.Duration(resp.HeartbeatSeconds * float64(time.Second))
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(interval):
		}
	}
}

func (w *Worker) register(ctx context.Context, selfURL string) (RegisterResponse, error) {
	body, err := json.Marshal(RegisterRequest{Name: w.opts.Name, URL: selfURL, Slots: w.opts.Slots})
	if err != nil {
		return RegisterResponse{}, err
	}
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Coordinator+PathWorkers, bytes.NewReader(body))
	if err != nil {
		return RegisterResponse{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return RegisterResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return RegisterResponse{}, fmt.Errorf("register: %s: %s", resp.Status, bytes.TrimSpace(b))
	}
	var rr RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return RegisterResponse{}, err
	}
	return rr, nil
}
