package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestRegisterLoopAndLiveness runs the real heartbeat loop against a
// coordinator with a short TTL: the worker must show up alive, then go
// stale once its loop stops.
func TestRegisterLoopAndLiveness(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{HeartbeatTTL: 300 * time.Millisecond})
	defer coord.Close()
	coordSrv := httptest.NewServer(coord.Handler())
	defer coordSrv.Close()

	w := NewWorker(WorkerOptions{Name: "hb", Coordinator: coordSrv.URL, Slots: 2})
	ctx, cancel := context.WithCancel(context.Background())
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		w.RegisterLoop(ctx, "http://worker.invalid:0")
	}()

	waitFor(t, func() bool {
		list := coord.WorkerList()
		return len(list) == 1 && list[0].Alive && list[0].Slots == 2
	})

	// The fleet listing is also served over HTTP.
	resp, err := http.Get(coordSrv.URL + PathWorkers)
	if err != nil {
		t.Fatalf("list workers: %v", err)
	}
	var listed []WorkerInfo
	if err := json.NewDecoder(resp.Body).Decode(&listed); err != nil {
		t.Fatalf("decode worker list: %v", err)
	}
	resp.Body.Close()
	if len(listed) != 1 || listed[0].Name != "hb" || !listed[0].Alive {
		t.Fatalf("listing = %+v", listed)
	}

	cancel()
	<-loopDone
	waitFor(t, func() bool { return !coord.WorkerList()[0].Alive })
}

func TestRegisterValidation(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{})
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	for name, body := range map[string]string{
		"missing name": `{"url":"http://x","slots":1}`,
		"missing url":  `{"name":"w"}`,
		"not json":     `{{`,
	} {
		resp, err := http.Post(srv.URL+PathWorkers, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestCachePeerEndpoints exercises the coordinator's cache store over
// HTTP: miss, put, hit, and the disabled (no store) path.
func TestCachePeerEndpoints(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{})
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	get := func(key string) (int, []byte) {
		resp, err := http.Get(srv.URL + PathCache + key)
		if err != nil {
			t.Fatalf("cache get: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}
	put := func(key string, val []byte) int {
		req, _ := http.NewRequest(http.MethodPut, srv.URL+PathCache+key, bytes.NewReader(val))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("cache put: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// No store installed: both verbs report not-found.
	if code, _ := get("shard:abc"); code != http.StatusNotFound {
		t.Fatalf("get with cache disabled: %d", code)
	}
	if code := put("shard:abc", []byte("x")); code != http.StatusNotFound {
		t.Fatalf("put with cache disabled: %d", code)
	}

	coord.SetCache(newMemCache())
	if code, _ := get("shard:abc"); code != http.StatusNotFound {
		t.Fatalf("miss: %d", code)
	}
	if code := put("shard:abc", []byte(`{"point":0}`+"\n")); code != http.StatusNoContent {
		t.Fatalf("put: %d", code)
	}
	if code := put("shard:empty", nil); code != http.StatusBadRequest {
		t.Fatalf("empty put: %d", code)
	}
	code, body := get("shard:abc")
	if code != http.StatusOK || string(body) != `{"point":0}`+"\n" {
		t.Fatalf("hit: %d %q", code, body)
	}
}

// TestWorkerShardErrors drives the worker's protocol-error paths: bad
// request bodies are plain HTTP errors, a bad range is an in-stream
// error line.
func TestWorkerShardErrors(t *testing.T) {
	w := NewWorker(WorkerOptions{Name: "w", SimWorkers: 1})
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	post := func(body string) *http.Response {
		resp, err := http.Post(srv.URL+PathShards, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		return resp
	}

	resp := post(`not json`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: %d", resp.StatusCode)
	}

	resp = post(`{"job":"j","spec":{"sizes":["notasize"]},"lo":0,"hi":1}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: %d", resp.StatusCode)
	}

	wire, err := tinySpec().WireJSON()
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(ShardRequest{Job: "j", Spec: wire, Lo: 0, Hi: 99})
	resp = post(string(body))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("out-of-range shard: status %d, want streamed error line", resp.StatusCode)
	}
	var line ShardLine
	if err := json.NewDecoder(resp.Body).Decode(&line); err != nil {
		t.Fatalf("decode error line: %v", err)
	}
	if line.Error == "" {
		t.Fatalf("want error line, got %+v", line)
	}
}
