package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ftnoc/internal/campaign"
	"ftnoc/internal/serve"
	"ftnoc/internal/trace"
)

// CacheStore is the content-addressed byte store behind the coordinator's
// cache-peer endpoint. *serve.Server satisfies it with the same LRU cache
// that serves whole-campaign results, so shard entries and report entries
// share one byte budget and one hit/miss ledger.
type CacheStore interface {
	CacheGet(key string) ([]byte, bool)
	CachePut(key string, val []byte)
}

// CoordinatorOptions tunes the dispatch scheduler. The zero value is
// usable; every field has a default chosen for small fleets.
type CoordinatorOptions struct {
	// ShardPoints is the maximum grid points per dispatched shard
	// (default 8). Smaller shards spread better and lose less work when
	// a worker dies; larger ones amortise per-request overhead.
	ShardPoints int
	// HeartbeatTTL is how stale a worker's last heartbeat may be before
	// the dispatcher considers it dead (default 15s). Workers are told
	// to heartbeat at a third of this.
	HeartbeatTTL time.Duration
	// ShardTimeout bounds one shard dispatch end to end (default 10m);
	// a worker that accepts a shard and hangs forfeits it to redispatch.
	ShardTimeout time.Duration
	// RetryBaseDelay seeds the exponential backoff applied before a
	// failed shard is redispatched (default 250ms, doubling per attempt
	// up to RetryMaxDelay, default 5s).
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// MaxAttempts bounds redispatches of one shard lineage before the
	// whole campaign is failed (default 8). Zero capacity is not an
	// attempt: a shard waiting for any live worker waits indefinitely.
	MaxAttempts int
	// BreakerThreshold opens a worker's circuit breaker after that many
	// consecutive shard failures (default 3): the worker receives no
	// dispatches for BreakerCooldown (default 10s), then gets another
	// chance. Heartbeats alone never close an open breaker — only the
	// cooldown does.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// TenantWeights maps tenant names to weighted-fair-queueing weights
	// (default 1.0 each). A tenant with weight 2 accrues virtual time at
	// half rate and thus receives twice the dispatch share under load.
	TenantWeights map[string]float64
	// TenantTokens caps one tenant's in-flight shards (default 0 = no
	// cap). With a cap of k, a tenant can occupy at most k worker slots
	// no matter how much it has queued — hard isolation on top of WFQ's
	// proportional sharing.
	TenantTokens int
	// Cache backs the cache-peer endpoint. Nil disables it (workers
	// always simulate). SetCache may install it after construction.
	Cache CacheStore
	// Client issues shard requests (default http.DefaultClient).
	Client *http.Client
	// Logger receives dispatch lifecycle records. Nil discards.
	Logger *slog.Logger
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.ShardPoints <= 0 {
		o.ShardPoints = 8
	}
	if o.HeartbeatTTL <= 0 {
		o.HeartbeatTTL = 15 * time.Second
	}
	if o.ShardTimeout <= 0 {
		o.ShardTimeout = 10 * time.Minute
	}
	if o.RetryBaseDelay <= 0 {
		o.RetryBaseDelay = 250 * time.Millisecond
	}
	if o.RetryMaxDelay <= 0 {
		o.RetryMaxDelay = 5 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 8
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 10 * time.Second
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return o
}

// Coordinator owns the worker fleet and the dispatch scheduler. Its Run
// method is a drop-in serve.Options.Runner: it produces a Report whose
// rendered rows are byte-identical to the single-node engine's, so the
// daemon's queue, cache and SSE layers work unchanged above it.
type Coordinator struct {
	opts   CoordinatorOptions
	log    *slog.Logger
	client *http.Client
	met    *coordMetrics
	runSeq atomic.Uint64

	mu      sync.Mutex
	cond    *sync.Cond
	cache   CacheStore
	workers map[string]*workerState
	tenants map[string]*tenantState
	vclock  float64
	closed  bool
}

// workerState is one registered worker: its capacity, its liveness, and
// its circuit breaker.
type workerState struct {
	name     string
	url      string
	slots    int
	busy     int
	lastSeen time.Time
	// fails counts consecutive shard failures; reaching BreakerThreshold
	// opens the breaker until openUntil.
	fails     int
	openUntil time.Time
}

// tenantState is one client's WFQ position: a FIFO of queued shards, the
// virtual time its service has accrued, and its in-flight count.
type tenantState struct {
	name     string
	vtime    float64
	inflight int
	queue    []*task
}

// task is one dispatchable shard of one campaign run.
type task struct {
	run       *campaignRun
	lo, hi    int
	attempt   int
	notBefore time.Time
	cost      float64 // points × replicates, the WFQ service quantum
	key       string  // cache-peer key, empty if unhashable
}

// campaignRun is one Run invocation's assembly state: rows keyed by
// global point index, filled as workers stream them back (online — the
// first copy of each row is merged the moment it arrives, duplicates
// from redispatch are dropped; determinism makes them equal anyway).
type campaignRun struct {
	c      *Coordinator
	id     string
	ctx    context.Context
	cancel context.CancelFunc
	spec   campaign.Spec
	wire   []byte
	tenant string
	reps   int

	mu      sync.Mutex
	rows    []*campaign.PointRow
	got     int
	pending int // tasks queued or in flight
	err     error

	once sync.Once
	done chan struct{}
	// idle closes when pending reaches zero: every task retired, no
	// streams in flight. Run waits for it so shard telemetry (done
	// lines, completion counters) is fully accounted before the report
	// is returned.
	idleOnce sync.Once
	idle     chan struct{}
}

// ended reports that the run needs no further dispatching: it resolved
// (done closed) or its context died. Queued tasks of ended runs are
// purged instead of dispatched.
func (r *campaignRun) ended() bool {
	select {
	case <-r.done:
		return true
	default:
		return r.ctx.Err() != nil
	}
}

// NewCoordinator builds a coordinator and starts its dispatcher.
// Close releases it.
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	opts = opts.withDefaults()
	c := &Coordinator{
		opts:    opts,
		log:     opts.Logger,
		client:  opts.Client,
		cache:   opts.Cache,
		workers: make(map[string]*workerState),
		tenants: make(map[string]*tenantState),
	}
	c.cond = sync.NewCond(&c.mu)
	c.met = newCoordMetrics(c)
	go c.dispatcher()
	return c
}

// SetCache installs the cache-peer store after construction — the daemon
// builds its serve.Server with the coordinator's Run as Runner, then
// hands the server back here as the store.
func (c *Coordinator) SetCache(store CacheStore) {
	c.mu.Lock()
	c.cache = store
	c.mu.Unlock()
}

// Close stops the dispatcher. Queued shards are abandoned; callers
// blocked in Run return when their contexts cancel.
func (c *Coordinator) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.cond.Broadcast()
}

func (c *Coordinator) broadcast() { c.cond.Broadcast() }

// Run executes the campaign across the fleet and assembles the report
// from streamed rows. It is shaped exactly like campaign.Run: the only
// top-level errors are an empty/unshippable grid or exhausted
// redispatch; cancellation returns the partial rows with Aborted set.
func (c *Coordinator) Run(ctx context.Context, spec campaign.Spec) (*campaign.Report, error) {
	points := spec.Points()
	if len(points) == 0 {
		return nil, fmt.Errorf("campaign: empty grid")
	}
	wire, err := spec.WireJSON()
	if err != nil {
		return nil, err
	}
	tenant := serve.TenantFrom(ctx)
	if tenant == "" {
		tenant = "anonymous"
	}
	reps := spec.Seeds
	if reps <= 0 {
		reps = 1
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	run := &campaignRun{
		c:      c,
		id:     fmt.Sprintf("run-%d", c.runSeq.Add(1)),
		ctx:    runCtx,
		cancel: cancel,
		spec:   spec,
		wire:   wire,
		tenant: tenant,
		reps:   reps,
		rows:   make([]*campaign.PointRow, len(points)),
		done:   make(chan struct{}),
		idle:   make(chan struct{}),
	}

	var tasks []*task
	for lo := 0; lo < len(points); lo += c.opts.ShardPoints {
		hi := min(lo+c.opts.ShardPoints, len(points))
		tasks = append(tasks, &task{
			run: run, lo: lo, hi: hi,
			cost: float64((hi - lo) * reps),
			key:  c.shardKey(spec, lo, hi),
		})
	}
	run.pending = len(tasks)
	start := time.Now()

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("fabric: coordinator closed")
	}
	tn := c.tenantLocked(tenant)
	tn.queue = append(tn.queue, tasks...)
	c.noteTenantLocked(tn)
	workersNow := c.aliveWorkersLocked(time.Now())
	c.mu.Unlock()
	c.broadcast()
	c.log.Info("campaign dispatched to fabric",
		"run", run.id, "tenant", tenant, "points", len(points),
		"shards", len(tasks), "workers_alive", workersNow)

	select {
	case <-run.done:
	case <-ctx.Done():
		run.finish(context.Cause(ctx))
	}
	// Wait for every task to settle — queued ones purge on the next
	// dispatcher wake, in-flight streams drain (or abort, if the run
	// failed) — so counters and the report are final when we return.
	<-run.idle

	run.mu.Lock()
	got, runErr := run.got, run.err
	ordered := make([]campaign.PointRow, 0, got)
	for _, row := range run.rows {
		if row != nil {
			ordered = append(ordered, *row)
		}
	}
	run.mu.Unlock()

	report := &campaign.Report{
		Rows:    ordered,
		Workers: workersNow,
		Elapsed: time.Since(start),
	}
	switch {
	case got == len(points):
		// Complete — even if the context raced cancellation in.
		return report, nil
	case ctx.Err() != nil:
		report.Aborted = true
		return report, nil
	default:
		if runErr == nil {
			runErr = errors.New("fabric: run ended incomplete")
		}
		return nil, runErr
	}
}

// shardKey derives the cache-peer content address for points [lo, hi).
// An unhashable shard (it contains an invalid point) gets no key: the
// worker will simulate it and stream the validation-error rows, exactly
// as the single-node engine records them.
func (c *Coordinator) shardKey(spec campaign.Spec, lo, hi int) string {
	h, err := spec.RangeHash(lo, hi)
	if err != nil {
		return ""
	}
	return "shard:" + h
}

// tenantLocked interns the tenant's WFQ state. A tenant that was idle
// (or new) starts at the global virtual clock so its backlog competes
// fairly from now on instead of replaying virtual time it never used —
// this is what lets a fresh interactive tenant overtake a long-queued
// sweep immediately.
func (c *Coordinator) tenantLocked(name string) *tenantState {
	tn := c.tenants[name]
	if tn == nil {
		tn = &tenantState{name: name}
		c.tenants[name] = tn
	}
	if tn.vtime < c.vclock {
		tn.vtime = c.vclock
	}
	return tn
}

func (c *Coordinator) weight(tenant string) float64 {
	if w, ok := c.opts.TenantWeights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// dispatcher is the scheduler loop: one goroutine that repeatedly picks
// the (tenant, shard, worker) triple allowed by WFQ order, token quotas,
// worker capacity and circuit breakers, and hands the shard to an
// executor goroutine. All waiting happens on the condition variable;
// time-gated events (backoff expiry, breaker cooldown) broadcast through
// time.AfterFunc rather than polling.
func (c *Coordinator) dispatcher() {
	c.mu.Lock()
	defer c.mu.Unlock()
	// On Close, settle whatever is still queued so blocked Runs can
	// observe their fate instead of waiting on a dispatcher that is gone.
	defer func() {
		for _, tn := range c.tenants {
			for _, t := range tn.queue {
				t.run.settle(0)
			}
			tn.queue = nil
			c.noteTenantLocked(tn)
		}
	}()
	for !c.closed {
		now := time.Now()
		t, tn, w := c.pickLocked(now)
		if t == nil {
			c.cond.Wait()
			continue
		}
		// WFQ accounting: the tenant pays for the shard in virtual time
		// scaled by its weight; the global clock follows the served
		// tenant so newly active tenants join at the current position.
		if tn.vtime < c.vclock {
			tn.vtime = c.vclock
		}
		c.vclock = tn.vtime
		tn.vtime += t.cost / c.weight(tn.name)
		tn.inflight++
		w.busy++
		c.noteTenantLocked(tn)
		c.met.dispatched.Inc()
		go c.execute(t, tn, w)
	}
}

// pickLocked chooses the next dispatch: the eligible shard of the
// minimum-virtual-time tenant, paired with the least-loaded live worker.
// It returns nils when nothing can be dispatched right now. Shards whose
// runs have finished (canceled, or completed through duplicates) are
// purged here.
func (c *Coordinator) pickLocked(now time.Time) (*task, *tenantState, *workerState) {
	c.purgeLocked()
	w := c.freeWorkerLocked(now)
	if w == nil {
		return nil, nil, nil
	}
	var bestT *tenantState
	var bestIdx int
	for _, tn := range c.tenants {
		if c.opts.TenantTokens > 0 && tn.inflight >= c.opts.TenantTokens {
			continue
		}
		idx := -1
		for i, t := range tn.queue {
			if !t.notBefore.After(now) {
				idx = i
				break
			}
		}
		if idx < 0 {
			continue
		}
		if bestT == nil || tn.vtime < bestT.vtime ||
			(tn.vtime == bestT.vtime && tn.name < bestT.name) {
			bestT, bestIdx = tn, idx
		}
	}
	if bestT == nil {
		return nil, nil, nil
	}
	t := bestT.queue[bestIdx]
	bestT.queue = append(bestT.queue[:bestIdx], bestT.queue[bestIdx+1:]...)
	return t, bestT, w
}

// purgeLocked drops queued shards of ended runs (resolved, canceled, or
// completed through redispatch duplicates), settling each so its run's
// idle accounting closes. It runs on every dispatcher wake — even when
// no worker is free — so ended runs never wait on capacity to drain.
func (c *Coordinator) purgeLocked() {
	for _, tn := range c.tenants {
		live := tn.queue[:0]
		for _, t := range tn.queue {
			if t.run.ended() {
				t.run.settle(0)
			} else {
				live = append(live, t)
			}
		}
		if len(live) != len(tn.queue) {
			tn.queue = live
			c.noteTenantLocked(tn)
		}
	}
}

// freeWorkerLocked returns the live, breaker-closed worker with the most
// spare capacity (ties by name, for deterministic tests), or nil.
func (c *Coordinator) freeWorkerLocked(now time.Time) *workerState {
	var best *workerState
	for _, w := range c.workers {
		if now.Sub(w.lastSeen) > c.opts.HeartbeatTTL {
			continue
		}
		if w.busy >= w.slots || w.openUntil.After(now) {
			continue
		}
		if best == nil || w.busy < best.busy || (w.busy == best.busy && w.name < best.name) {
			best = w
		}
	}
	return best
}

func (c *Coordinator) aliveWorkersLocked(now time.Time) int {
	n := 0
	for _, w := range c.workers {
		if now.Sub(w.lastSeen) <= c.opts.HeartbeatTTL {
			n++
		}
	}
	return n
}

// execute runs one dispatched shard to its conclusion: stream the rows,
// then either retire the task or carve the undelivered remainder into
// fresh backoff-delayed tasks. It owns the worker's failure accounting.
func (c *Coordinator) execute(t *task, tn *tenantState, w *workerState) {
	delivered := make([]bool, t.hi-t.lo)
	err := c.streamShard(t, w, delivered)

	canceled := t.run.ctx.Err() != nil
	c.mu.Lock()
	w.busy--
	tn.inflight--
	c.noteTenantLocked(tn)
	if err != nil && !canceled {
		// A stream cut by the run finishing (completion through a
		// duplicate, or client cancel) says nothing about the worker.
		c.met.failures.Inc()
		w.fails++
		if w.fails >= c.opts.BreakerThreshold {
			w.fails = 0
			w.openUntil = time.Now().Add(c.opts.BreakerCooldown)
			c.met.breakerOpens.Inc()
			c.log.Warn("worker circuit breaker opened",
				"worker", w.name, "cooldown", c.opts.BreakerCooldown)
			time.AfterFunc(c.opts.BreakerCooldown, c.broadcast)
		}
	} else if err == nil {
		w.fails = 0
	}
	c.mu.Unlock()

	if err != nil && !canceled {
		c.log.Warn("shard dispatch failed",
			"run", t.run.id, "worker", w.name, "lo", t.lo, "hi", t.hi,
			"attempt", t.attempt, "err", err)
	}
	// Redispatch exactly what did not arrive. Rows that made it before
	// the failure are merged and stay merged — a killed worker costs its
	// unfinished points, not its shard. Full coverage counts as
	// completion even when the run finishing mid-stream cut the
	// connection out from under the trailing done line.
	missing := undeliveredRanges(t.lo, delivered)
	if len(missing) == 0 {
		c.met.completed.Inc()
		t.run.settle(0)
		c.broadcast()
		return
	}
	if canceled {
		t.run.settle(0)
		c.broadcast()
		return
	}
	if err == nil {
		err = fmt.Errorf("fabric: worker %s reported done but %d ranges missing", w.name, len(missing))
	}
	if t.attempt+1 >= c.opts.MaxAttempts {
		t.run.finish(fmt.Errorf("fabric: shard [%d,%d) failed after %d attempts: %w",
			t.lo, t.hi, t.attempt+1, err))
		t.run.settle(0)
		c.broadcast()
		return
	}
	delay := backoff(c.opts.RetryBaseDelay, c.opts.RetryMaxDelay, t.attempt)
	notBefore := time.Now().Add(delay)
	retries := make([]*task, 0, len(missing))
	for _, r := range missing {
		retries = append(retries, &task{
			run: t.run, lo: r[0], hi: r[1],
			attempt: t.attempt + 1, notBefore: notBefore,
			cost: float64((r[1] - r[0]) * t.run.reps),
			key:  c.shardKey(t.run.spec, r[0], r[1]),
		})
	}
	c.mu.Lock()
	tn.queue = append(tn.queue, retries...)
	c.noteTenantLocked(tn)
	c.mu.Unlock()
	c.met.retries.Add(float64(len(retries)))
	t.run.settle(len(retries))
	time.AfterFunc(delay, c.broadcast)
}

// streamShard performs the HTTP dispatch and merges rows as they arrive,
// marking this task's coverage in delivered. It returns nil only after a
// Done line; a stream that ends any other way is a failure whose
// undelivered remainder the caller redispatches.
func (c *Coordinator) streamShard(t *task, w *workerState, delivered []bool) error {
	ctx, cancel := context.WithTimeout(t.run.ctx, c.opts.ShardTimeout)
	defer cancel()
	body, err := json.Marshal(ShardRequest{
		Job: t.run.id, Spec: t.run.wire, Lo: t.lo, Hi: t.hi, CacheKey: t.key,
	})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+PathShards, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("fabric: worker %s: %s: %s", w.name, resp.Status, bytes.TrimSpace(b))
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var line ShardLine
		if err := dec.Decode(&line); err != nil {
			if errors.Is(err, io.EOF) {
				return fmt.Errorf("fabric: worker %s: shard stream ended without done line", w.name)
			}
			return fmt.Errorf("fabric: worker %s: shard stream: %w", w.name, err)
		}
		switch {
		case line.Row != nil:
			if line.Row.Point >= t.lo && line.Row.Point < t.hi {
				delivered[line.Row.Point-t.lo] = true
			}
			c.met.rows.Inc()
			t.run.deliver(*line.Row)
		case line.Done != nil:
			c.met.simCycles.Add(float64(line.Done.SimCycles))
			if line.Done.CacheHit {
				c.met.cacheHitShards.Inc()
			}
			return nil
		case line.Error != "":
			return fmt.Errorf("fabric: worker %s: %s", w.name, line.Error)
		default:
			return fmt.Errorf("fabric: worker %s: empty shard line", w.name)
		}
	}
}

// deliver merges one streamed row (first copy wins; redispatch
// duplicates are identical by determinism and dropped) and re-emits the
// campaign progress events the single-node engine would have produced,
// so SSE subscribers see per-point progress from a distributed run too.
func (r *campaignRun) deliver(row campaign.PointRow) {
	r.mu.Lock()
	if row.Point < 0 || row.Point >= len(r.rows) || r.rows[row.Point] != nil {
		r.mu.Unlock()
		return
	}
	r.rows[row.Point] = &row
	r.got++
	complete := r.got == len(r.rows)
	r.mu.Unlock()

	if sink := r.spec.Progress; sink != nil {
		for i, rep := range row.Replicates {
			sink.Emit(trace.Event{Kind: trace.CampaignPointStart,
				Aux: uint64(row.Point), PID: uint64(i)})
			sink.Emit(trace.Event{Kind: trace.CampaignPointDone,
				Aux: uint64(row.Point), PID: uint64(i), Cycle: rep.Cycles})
		}
	}
	if complete {
		r.finish(nil)
	}
}

// settle retires one outstanding task and enqueues extra replacements
// (0 when the task is done for good). When the last task retires with
// rows still missing, the run cannot ever complete — surface that
// instead of hanging. The last settle also releases Run's idle wait.
func (r *campaignRun) settle(replacements int) {
	r.mu.Lock()
	r.pending += replacements - 1
	drained := r.pending == 0
	starved := drained && r.got < len(r.rows)
	r.mu.Unlock()
	if starved {
		r.finish(errors.New("fabric: all shards retired with rows missing"))
	}
	if drained {
		r.idleOnce.Do(func() { close(r.idle) })
	}
}

// finish resolves the run exactly once. A nil err is completion: the
// in-flight streams are left to drain naturally (their next line is the
// done trailer, so this is cheap) and queued leftovers purge on the next
// dispatcher wake. Any other cause (cancellation, exhausted redispatch)
// additionally aborts every in-flight shard via the run context.
func (r *campaignRun) finish(err error) {
	r.once.Do(func() {
		r.mu.Lock()
		r.err = err
		r.mu.Unlock()
		close(r.done)
		if err != nil {
			r.cancel()
		}
		r.c.broadcast()
	})
}

// undeliveredRanges lists the contiguous [lo, hi) subranges of the
// shard not covered by delivered rows.
func undeliveredRanges(lo int, delivered []bool) [][2]int {
	var out [][2]int
	for i := 0; i < len(delivered); {
		if delivered[i] {
			i++
			continue
		}
		j := i
		for j < len(delivered) && !delivered[j] {
			j++
		}
		out = append(out, [2]int{lo + i, lo + j})
		i = j
	}
	return out
}

func backoff(base, max time.Duration, attempt int) time.Duration {
	d := base << attempt
	if d > max || d <= 0 {
		return max
	}
	return d
}

// WorkerList snapshots the fleet for the GET PathWorkers listing, sorted
// by name.
func (c *Coordinator) WorkerList() []WorkerInfo {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerInfo{
			Name: w.name, URL: w.url, Slots: w.slots, Busy: w.busy,
			Alive:       now.Sub(w.lastSeen) <= c.opts.HeartbeatTTL,
			LastSeenAgo: now.Sub(w.lastSeen).Seconds(),
			BreakerOpen: w.openUntil.After(now),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
