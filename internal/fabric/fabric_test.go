package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ftnoc/internal/campaign"
	"ftnoc/internal/network"
	"ftnoc/internal/routing"
)

// tinyBase is a 4x4 platform small enough that a grid of points runs in
// well under a second per point.
func tinyBase() network.Config {
	cfg := network.NewConfig()
	cfg.Width, cfg.Height = 4, 4
	cfg.WarmupMessages = 50
	cfg.TotalMessages = 300
	cfg.MaxCycles = 100_000
	cfg.StallCycles = 30_000
	return cfg
}

// tinySpec is a 4-point grid (2 routings × 2 error rates), 2 replicates.
func tinySpec() campaign.Spec {
	return campaign.Spec{
		Base:           tinyBase(),
		Routings:       []routing.Algorithm{routing.XY, routing.WestFirst},
		LinkErrorRates: []float64{0, 1e-3},
		InjectionRates: []float64{0.1},
		Seeds:          2,
	}
}

// memCache is a test-local CacheStore.
type memCache struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMemCache() *memCache { return &memCache{m: make(map[string][]byte)} }

func (s *memCache) CacheGet(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	return v, ok
}

func (s *memCache) CachePut(key string, val []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), val...)
}

// registerWorker announces a worker to the coordinator over its real
// registration endpoint.
func registerWorker(t *testing.T, coordURL, name, workerURL string, slots int) {
	t.Helper()
	body, _ := json.Marshal(RegisterRequest{Name: name, URL: workerURL, Slots: slots})
	resp, err := http.Post(coordURL+PathWorkers, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("register %s: %v", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register %s: %s", name, resp.Status)
	}
}

// renderNDJSON is the differential oracle's serialisation: the exact
// bytes nocd would cache and serve for the report.
func renderNDJSON(t *testing.T, r *campaign.Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteNDJSON(&buf); err != nil {
		t.Fatalf("render: %v", err)
	}
	return buf.Bytes()
}

func singleNodeNDJSON(t *testing.T, spec campaign.Spec) []byte {
	t.Helper()
	report, err := campaign.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("single-node run: %v", err)
	}
	return renderNDJSON(t, report)
}

// TestCoordinatorDifferential is the fabric's core law: a campaign run
// across three workers renders byte-identical NDJSON to the single-node
// engine.
func TestCoordinatorDifferential(t *testing.T) {
	spec := tinySpec()
	want := singleNodeNDJSON(t, spec)

	coord := NewCoordinator(CoordinatorOptions{
		ShardPoints:  1,
		HeartbeatTTL: time.Minute,
		Cache:        newMemCache(),
	})
	defer coord.Close()
	coordSrv := httptest.NewServer(coord.Handler())
	defer coordSrv.Close()

	for i := 0; i < 3; i++ {
		w := NewWorker(WorkerOptions{Name: fmt.Sprintf("w%d", i), Coordinator: coordSrv.URL, SimWorkers: 1})
		srv := httptest.NewServer(w.Handler())
		defer srv.Close()
		registerWorker(t, coordSrv.URL, fmt.Sprintf("w%d", i), srv.URL, 1)
	}

	report, err := coord.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("fabric run: %v", err)
	}
	got := renderNDJSON(t, report)
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed rows differ from single-node:\n--- fabric ---\n%s\n--- single ---\n%s", got, want)
	}
	if v := coord.met.completed.Value(); v != 4 {
		t.Fatalf("completed shards = %v, want 4", v)
	}
}

// killingHandler emulates a worker SIGKILLed mid-shard: after `limit`
// streamed lines it severs the TCP connection, and every request after
// that is severed immediately — the process is gone.
type killingHandler struct {
	h     http.Handler
	limit int
	dead  atomic.Bool
	kills atomic.Int64
}

func (k *killingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.dead.Load() {
		k.sever(w)
		return
	}
	k.h.ServeHTTP(&killingWriter{ResponseWriter: w, k: k}, r)
}

func (k *killingHandler) sever(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
			k.kills.Add(1)
		}
	}
}

type killingWriter struct {
	http.ResponseWriter
	k     *killingHandler
	lines int
}

func (w *killingWriter) Write(p []byte) (int, error) {
	if w.k.dead.Load() {
		return 0, fmt.Errorf("worker is dead")
	}
	n, err := w.ResponseWriter.Write(p)
	w.lines += bytes.Count(p[:n], []byte{'\n'})
	return n, err
}

// Flush lets a completed line reach the wire, then kills the connection
// once the limit is hit — the coordinator really receives the rows
// streamed before the death, which is the partial-delivery path under
// test.
func (w *killingWriter) Flush() {
	if w.k.dead.Load() {
		return
	}
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
	if w.lines >= w.k.limit {
		w.k.dead.Store(true)
		w.k.sever(w.ResponseWriter)
	}
}

// TestCoordinatorSurvivesWorkerDeath kills one of three workers after
// its first streamed row: the campaign must still complete, its rows
// still byte-identical to single-node, with the dead worker's
// unfinished points redispatched to the survivors.
func TestCoordinatorSurvivesWorkerDeath(t *testing.T) {
	spec := tinySpec()
	want := singleNodeNDJSON(t, spec)

	coord := NewCoordinator(CoordinatorOptions{
		ShardPoints:      2, // 2 shards of 2 points: the victim gets one, dies after 1 row
		HeartbeatTTL:     time.Minute,
		RetryBaseDelay:   5 * time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute, // dead worker stays benched for the whole test
	})
	defer coord.Close()
	coordSrv := httptest.NewServer(coord.Handler())
	defer coordSrv.Close()

	// Name order makes the dispatcher offer the first shard to the
	// victim ("a-victim" sorts before the healthy workers).
	victim := NewWorker(WorkerOptions{Name: "a-victim", SimWorkers: 1})
	killer := &killingHandler{h: victim.Handler(), limit: 1}
	victimSrv := httptest.NewServer(killer)
	defer victimSrv.Close()
	registerWorker(t, coordSrv.URL, "a-victim", victimSrv.URL, 1)
	for _, name := range []string{"b-ok", "c-ok"} {
		w := NewWorker(WorkerOptions{Name: name, SimWorkers: 1})
		srv := httptest.NewServer(w.Handler())
		defer srv.Close()
		registerWorker(t, coordSrv.URL, name, srv.URL, 1)
	}

	report, err := coord.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("fabric run with dying worker: %v", err)
	}
	got := renderNDJSON(t, report)
	if !bytes.Equal(got, want) {
		t.Fatalf("rows after worker death differ from single-node:\n--- fabric ---\n%s\n--- single ---\n%s", got, want)
	}
	if killer.kills.Load() == 0 {
		t.Fatal("victim worker was never killed mid-stream; the test exercised nothing")
	}
	if v := coord.met.failures.Value(); v < 1 {
		t.Fatalf("failures = %v, want >= 1", v)
	}
	if v := coord.met.breakerOpens.Value(); v < 1 {
		t.Fatalf("breaker opens = %v, want >= 1", v)
	}
}

// TestCachePeerReplay resubmits a completed spec: every shard must be
// served from the coordinator's cache, byte-identical, with no worker
// simulating anything (sim-cycle counters unchanged).
func TestCachePeerReplay(t *testing.T) {
	spec := tinySpec()
	coord := NewCoordinator(CoordinatorOptions{
		ShardPoints:  2,
		HeartbeatTTL: time.Minute,
		Cache:        newMemCache(),
	})
	defer coord.Close()
	coordSrv := httptest.NewServer(coord.Handler())
	defer coordSrv.Close()

	workers := make([]*Worker, 2)
	for i := range workers {
		workers[i] = NewWorker(WorkerOptions{
			Name: fmt.Sprintf("w%d", i), Coordinator: coordSrv.URL, SimWorkers: 1,
		})
		srv := httptest.NewServer(workers[i].Handler())
		defer srv.Close()
		registerWorker(t, coordSrv.URL, fmt.Sprintf("w%d", i), srv.URL, 1)
	}
	cyclesSum := func() uint64 {
		var n uint64
		for _, w := range workers {
			n += w.SimCycles()
		}
		return n
	}

	first, err := coord.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	baseline := cyclesSum()
	if baseline == 0 {
		t.Fatal("first run simulated zero cycles; nothing to replay")
	}

	second, err := coord.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if got, want := renderNDJSON(t, second), renderNDJSON(t, first); !bytes.Equal(got, want) {
		t.Fatalf("replayed rows differ from original:\n--- replay ---\n%s\n--- first ---\n%s", got, want)
	}
	if after := cyclesSum(); after != baseline {
		t.Fatalf("replay simulated: sim cycles %d -> %d, want unchanged", baseline, after)
	}
	if v := coord.met.cacheHitShards.Value(); v != 2 {
		t.Fatalf("cache-hit shards = %v, want 2 (every replay shard)", v)
	}
}

// TestUndeliveredRanges covers the redispatch carve-up.
func TestUndeliveredRanges(t *testing.T) {
	cases := []struct {
		lo        int
		delivered []bool
		want      [][2]int
	}{
		{0, []bool{true, true}, nil},
		{4, []bool{false, false}, [][2]int{{4, 6}}},
		{2, []bool{true, false, false, true, false}, [][2]int{{3, 5}, {6, 7}}},
		{0, []bool{false, true, false}, [][2]int{{0, 1}, {2, 3}}},
	}
	for i, tc := range cases {
		got := undeliveredRanges(tc.lo, tc.delivered)
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("case %d: got %v, want %v", i, got, tc.want)
		}
	}
}

func TestBackoff(t *testing.T) {
	base, ceil := 100*time.Millisecond, time.Second
	if d := backoff(base, ceil, 0); d != base {
		t.Fatalf("attempt 0: %v", d)
	}
	if d := backoff(base, ceil, 2); d != 400*time.Millisecond {
		t.Fatalf("attempt 2: %v", d)
	}
	if d := backoff(base, ceil, 10); d != ceil {
		t.Fatalf("attempt 10: %v", d)
	}
	if d := backoff(base, ceil, 200); d != ceil {
		t.Fatalf("overflow attempt: %v", d)
	}
}
