package fabric

import (
	"encoding/json"

	"ftnoc/internal/campaign"
)

// RegisterRequest is the body a worker POSTs to the coordinator's
// PathWorkers endpoint, both to join the fleet and — repeated on every
// heartbeat — to prove it is still alive. Registration is an upsert
// keyed by Name, so a restarted worker reclaims its identity.
type RegisterRequest struct {
	// Name identifies the worker across restarts and heartbeats.
	Name string `json:"name"`
	// URL is the base URL where the worker's shard endpoint listens.
	URL string `json:"url"`
	// Slots is how many shards the worker executes concurrently.
	Slots int `json:"slots"`
}

// RegisterResponse tells the worker how often to heartbeat. Missing
// enough heartbeats (the coordinator's HeartbeatTTL) marks the worker
// dead: no new shards are dispatched to it, and its in-flight shards'
// failures re-dispatch elsewhere.
type RegisterResponse struct {
	HeartbeatSeconds float64 `json:"heartbeat_seconds"`
}

// WorkerInfo is one fleet member in the coordinator's GET PathWorkers
// listing — operator-facing state, not part of the dispatch protocol.
type WorkerInfo struct {
	Name        string  `json:"name"`
	URL         string  `json:"url"`
	Slots       int     `json:"slots"`
	Busy        int     `json:"busy"`
	Alive       bool    `json:"alive"`
	LastSeenAgo float64 `json:"last_seen_seconds_ago"`
	BreakerOpen bool    `json:"breaker_open,omitempty"`
}

// ShardRequest is the body the coordinator POSTs to a worker's
// PathShards endpoint: run the grid points [Lo, Hi) of Spec and stream
// the rows back. Spec travels in its ParseSpec wire form, which
// preserves everything that determines results (campaign.Spec.WireJSON).
type ShardRequest struct {
	// Job is the coordinator-side job id, for log correlation only.
	Job  string          `json:"job"`
	Spec json.RawMessage `json:"spec"`
	Lo   int             `json:"lo"`
	Hi   int             `json:"hi"`
	// CacheKey, when non-empty, is the shard's content address
	// ("shard:" + Spec.RangeHash(Lo,Hi)). The worker consults the
	// coordinator's cache under it before simulating, and publishes
	// fresh results back — the cache-peer protocol.
	CacheKey string `json:"cache_key,omitempty"`
}

// ShardLine is one NDJSON-framed line of a shard response stream:
// exactly one of the fields is set. Row lines arrive as points finish
// (completion order); the stream ends with either a Done or an Error
// line. A stream that ends without one was cut mid-shard — the
// coordinator re-dispatches whatever rows it did not receive.
type ShardLine struct {
	Row   *campaign.PointRow `json:"row,omitempty"`
	Done  *ShardDone         `json:"done,omitempty"`
	Error string             `json:"error,omitempty"`
}

// ShardDone is the stream's success trailer: a receipt for the whole
// shard plus the simulator-side telemetry the coordinator aggregates
// into its metrics.
type ShardDone struct {
	// Points is how many rows the worker streamed; the coordinator
	// cross-checks it against what actually arrived.
	Points int `json:"points"`
	// CacheHit marks a shard served from the coordinator's cache
	// without simulating anything.
	CacheHit bool `json:"cache_hit,omitempty"`
	// SimCycles is the total simulated network cycles the shard cost
	// (zero on cache hits).
	SimCycles uint64 `json:"sim_cycles,omitempty"`
}
