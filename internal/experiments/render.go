package experiments

import (
	"fmt"
	"io"
	"strings"
)

// FprintCSV renders the figure as CSV: a header of x plus series names,
// one row per x-axis point. Suitable for gnuplot/pandas.
func (f Figure) FprintCSV(w io.Writer) {
	cols := append([]string{f.XLabel}, f.Series...)
	fmt.Fprintln(w, strings.Join(cols, ","))
	for _, r := range f.Rows {
		fields := make([]string, 0, len(cols))
		fields = append(fields, fmt.Sprintf("%g", r.X))
		for _, s := range f.Series {
			fields = append(fields, fmt.Sprintf("%g", r.Values[s]))
		}
		fmt.Fprintln(w, strings.Join(fields, ","))
	}
}

// FprintMarkdown renders the figure as a GitHub-flavoured markdown table
// with a heading, the format EXPERIMENTS.md uses.
func (f Figure) FprintMarkdown(w io.Writer) {
	fmt.Fprintf(w, "## %s — %s\n\n", f.ID, f.Title)
	fmt.Fprintf(w, "| %s |", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, " %s |", s)
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, "|---|")
	for range f.Series {
		fmt.Fprint(w, "---|")
	}
	fmt.Fprintln(w)
	for _, r := range f.Rows {
		fmt.Fprintf(w, "| %g |", r.X)
		for _, s := range f.Series {
			fmt.Fprintf(w, " %.4g |", r.Values[s])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// Format selects a figure rendering.
type Format uint8

// Output formats.
const (
	Text Format = iota + 1
	CSV
	Markdown
)

// ParseFormat maps a CLI string to a Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "", "text":
		return Text, nil
	case "csv":
		return CSV, nil
	case "markdown", "md":
		return Markdown, nil
	default:
		return 0, fmt.Errorf("unknown format %q (want text, csv or markdown)", s)
	}
}

// Render writes the figure in the chosen format.
func (f Figure) Render(w io.Writer, format Format) {
	switch format {
	case CSV:
		f.FprintCSV(w)
	case Markdown:
		f.FprintMarkdown(w)
	default:
		f.Fprint(w)
	}
}
