package experiments

import (
	"ftnoc/internal/network"
	"ftnoc/internal/routing"
	"ftnoc/internal/topology"
	"ftnoc/internal/traffic"
)

// This file extends the paper's evaluation with the classic NoC
// characterisation its latency analysis implies: full latency-throughput
// curves and a saturation-point search, used to position the paper's
// fixed 0.25 flits/node/cycle operating point.

// LatencyThroughput sweeps the injection rate and reports offered load,
// accepted throughput and average latency for one routing algorithm.
func LatencyThroughput(scale Scale, algo routing.Algorithm, rates []float64) Figure {
	fig := Figure{
		ID:     "ExtLT",
		Title:  "Latency-throughput characteristic (" + algo.String() + ")",
		XLabel: "offered",
		YLabel: "latency (cycles) / accepted (flits/node/cycle)",
		Series: []string{"latency", "accepted"},
	}
	var cfgs []network.Config
	for _, inj := range rates {
		cfg := baseConfig(scale)
		cfg.Routing = algo
		cfg.InjectionRate = inj
		cfg.StallCycles = cfg.MaxCycles
		if scale == Tiny {
			cfg.MaxCycles = 15_000
		} else {
			cfg.MaxCycles = 60_000
		}
		cfgs = append(cfgs, cfg)
	}
	for i, res := range runAll(cfgs) {
		fig.Rows = append(fig.Rows, Row{X: rates[i], Values: map[string]float64{
			"latency":  res.AvgLatency,
			"accepted": res.Throughput.FlitsPerNodePerCycle(),
		}})
	}
	return fig
}

// saturationFactor: the network counts as saturated once average latency
// exceeds this multiple of its zero-load latency.
const saturationFactor = 3.0

// SaturationPoint bisects for the injection rate at which the
// configuration saturates (latency exceeding saturationFactor x the
// zero-load latency), within the given tolerance.
func SaturationPoint(scale Scale, algo routing.Algorithm, tol float64) float64 {
	measure := func(inj float64) float64 {
		cfg := baseConfig(scale)
		cfg.Routing = algo
		cfg.InjectionRate = inj
		cfg.StallCycles = cfg.MaxCycles
		if scale == Tiny {
			cfg.MaxCycles = 15_000
		} else {
			cfg.MaxCycles = 60_000
		}
		res := network.New(cfg).Run()
		if res.MeasuredMessages == 0 {
			return 1e9 // nothing ejected in the horizon: deeply saturated
		}
		return res.AvgLatency
	}
	zeroLoad := measure(0.02)
	lo, hi := 0.02, 1.0
	if measure(hi) < zeroLoad*saturationFactor {
		return hi // never saturates in range
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if measure(mid) < zeroLoad*saturationFactor {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// TorusVsMesh is an extension experiment: the tornado pattern (TN) is
// adversarial for tori — it concentrates half-ring traffic — while a mesh
// simply routes it as local hops. Comparing both topologies under TN and
// NR positions the paper's mesh-only evaluation.
func TorusVsMesh(scale Scale) Figure {
	fig := Figure{
		ID:     "ExtTorus",
		Title:  "Mesh vs torus latency under NR and TN traffic",
		XLabel: "inj_rate",
		YLabel: "latency (cycles)",
		Series: []string{"mesh/NR", "torus/NR", "mesh/TN", "torus/TN"},
	}
	cases := []struct {
		name    string
		kind    topology.Kind
		pattern traffic.Pattern
	}{
		{"mesh/NR", topology.Mesh, traffic.UniformRandom},
		{"torus/NR", topology.Torus, traffic.UniformRandom},
		{"mesh/TN", topology.Mesh, traffic.Tornado},
		{"torus/TN", topology.Torus, traffic.Tornado},
	}
	rates := []float64{0.05, 0.15, 0.25}
	var cfgs []network.Config
	for _, inj := range rates {
		for _, c := range cases {
			cfg := baseConfig(scale)
			cfg.TopologyKind = c.kind
			cfg.Pattern = c.pattern
			cfg.InjectionRate = inj
			cfgs = append(cfgs, cfg)
		}
	}
	results := runAll(cfgs)
	for ri, inj := range rates {
		row := Row{X: inj, Values: map[string]float64{}}
		for ci, c := range cases {
			row.Values[c.name] = results[ri*len(cases)+ci].AvgLatency
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig
}
