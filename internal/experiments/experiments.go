// Package experiments regenerates every table and figure of the paper's
// evaluation. Each generator builds the paper's platform (§2.2: 8x8 mesh,
// 3-stage routers, 3 VCs/PC, 4-flit messages), sweeps the figure's
// parameter, and returns the series the paper plots. Absolute numbers
// come from our simulator and calibrated power model, so they are not the
// authors' testbed numbers — EXPERIMENTS.md records the shape
// comparisons.
package experiments

import (
	"context"
	"fmt"
	"io"

	"ftnoc/internal/campaign"
	"ftnoc/internal/fault"
	"ftnoc/internal/link"
	"ftnoc/internal/network"
	"ftnoc/internal/power"
	"ftnoc/internal/routing"
	"ftnoc/internal/traffic"
)

// Workers bounds the campaign worker pool every generator's grid runs on
// (0 = GOMAXPROCS). Figure regeneration is embarrassingly parallel —
// each point is an independent simulation — so the generators batch
// their sweeps through campaign.RunConfigs instead of looping serially.
var Workers int

// runAll executes a generator's configuration list in parallel,
// returning results in input order. Generators build valid
// configurations by construction, so a failure is a programmer error
// and panics, matching network.New.
func runAll(cfgs []network.Config) []network.Results {
	out := campaign.RunConfigs(context.Background(), Workers, cfgs)
	res := make([]network.Results, len(out))
	for i, r := range out {
		if r.Err != nil {
			panic("experiments: " + r.Err.Error())
		}
		res[i] = r.Results
	}
	return res
}

// Scale selects run length: Quick for tests/benches, Full for the paper's
// 300k-message runs.
type Scale uint8

// Scales.
const (
	Quick Scale = iota + 1
	Full
	// Tiny is for the test suite: a 4x4 platform with a few hundred
	// messages per point — enough to verify every generator's structure
	// and orderings in seconds.
	Tiny
)

// ErrorRates is the x-axis of Figs. 5, 6 and 7.
var ErrorRates = []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1}

// LogicErrorRates is the x-axis of Fig. 13.
var LogicErrorRates = []float64{1e-5, 1e-4, 1e-3, 1e-2}

// InjectionRates is the x-axis of Figs. 8 and 9.
var InjectionRates = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// baseConfig is the paper's evaluation platform.
func baseConfig(scale Scale) network.Config {
	cfg := network.NewConfig()
	switch scale {
	case Full:
		cfg = cfg.PaperScale()
	case Tiny:
		cfg.Width, cfg.Height = 4, 4
		cfg.WarmupMessages = 150
		cfg.TotalMessages = 900
		cfg.MaxCycles = 200_000
		cfg.StallCycles = 60_000
	default:
		cfg.WarmupMessages = 1_000
		cfg.TotalMessages = 4_000
		cfg.MaxCycles = 400_000
		cfg.StallCycles = 120_000
	}
	return cfg
}

// Row is one (x, series value) record of a figure.
type Row struct {
	X      float64
	Values map[string]float64
}

// Figure is a regenerated table or figure: ordered series names plus one
// row per x-axis point.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []string
	Rows   []Row
}

// Fprint renders the figure as an aligned text table.
func (f Figure) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(w, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, "%14s", s)
	}
	fmt.Fprintln(w)
	for _, r := range f.Rows {
		fmt.Fprintf(w, "%-12.6g", r.X)
		for _, s := range f.Series {
			fmt.Fprintf(w, "%14.4g", r.Values[s])
		}
		fmt.Fprintln(w)
	}
}

// Fig5 compares the average message latency of the three link-error
// handling schemes (HBH, E2E, FEC) across link error rates at 0.25
// flits/node/cycle injection.
func Fig5(scale Scale) Figure {
	fig := Figure{
		ID:     "Fig5",
		Title:  "Latency of different error handling techniques (inj 0.25)",
		XLabel: "error_rate",
		YLabel: "latency (cycles)",
		Series: []string{"HBH", "E2E", "FEC"},
	}
	schemes := []link.Protection{link.HBH, link.E2E, link.FEC}
	var cfgs []network.Config
	for _, rate := range ErrorRates {
		for _, prot := range schemes {
			cfg := baseConfig(scale)
			cfg.Protection = prot
			cfg.Faults.Link = rate
			cfgs = append(cfgs, cfg)
		}
	}
	results := runAll(cfgs)
	for ri, rate := range ErrorRates {
		row := Row{X: rate, Values: map[string]float64{}}
		for si := range schemes {
			row.Values[fig.Series[si]] = results[ri*len(schemes)+si].AvgLatency
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig
}

// Fig6 shows the HBH scheme's latency across error rates for the three
// traffic patterns (NR, BC, TN): near-constant up to 10%.
func Fig6(scale Scale) Figure {
	fig := Figure{
		ID:     "Fig6",
		Title:  "Latency overhead of the HBH retransmission scheme (inj 0.25)",
		XLabel: "error_rate",
		YLabel: "latency (cycles)",
		Series: []string{"NR", "BC", "TN"},
	}
	rows := hbhPatternSweep(scale, func(res network.Results) float64 { return res.AvgLatency })
	fig.Rows = rows
	return fig
}

// Fig7 shows the HBH scheme's energy per message across error rates for
// the three traffic patterns.
func Fig7(scale Scale) Figure {
	fig := Figure{
		ID:     "Fig7",
		Title:  "Energy overhead of the HBH retransmission scheme (inj 0.25)",
		XLabel: "error_rate",
		YLabel: "energy (nJ/message)",
		Series: []string{"NR", "BC", "TN"},
	}
	fig.Rows = hbhPatternSweep(scale, func(res network.Results) float64 {
		return power.EnergyPerMessage(res.Events, res.MeasuredMessages)
	})
	return fig
}

func hbhPatternSweep(scale Scale, metric func(network.Results) float64) []Row {
	names := []string{"NR", "BC", "TN"}
	patterns := []traffic.Pattern{traffic.UniformRandom, traffic.BitComplement, traffic.Tornado}
	var cfgs []network.Config
	for _, rate := range ErrorRates {
		for _, p := range patterns {
			cfg := baseConfig(scale)
			cfg.Pattern = p
			cfg.Faults.Link = rate
			cfgs = append(cfgs, cfg)
		}
	}
	results := runAll(cfgs)
	var rows []Row
	for ri, rate := range ErrorRates {
		row := Row{X: rate, Values: map[string]float64{}}
		for pi, name := range names {
			row.Values[name] = metric(results[ri*len(patterns)+pi])
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig8And9 sweeps the injection rate for adaptive (AD) and deterministic
// (DT) routing and returns both buffer-utilization figures, which the
// paper measures from the same runs: Fig. 8 (transmission buffers) and
// Fig. 9 (retransmission buffers).
func Fig8And9(scale Scale) (fig8, fig9 Figure) {
	fig8 = Figure{
		ID:     "Fig8",
		Title:  "Transmission buffer utilization vs injection rate",
		XLabel: "inj_rate",
		YLabel: "utilization",
		Series: []string{"AD", "DT"},
	}
	fig9 = Figure{
		ID:     "Fig9",
		Title:  "Retransmission buffer utilization vs injection rate",
		XLabel: "inj_rate",
		YLabel: "utilization",
		Series: []string{"AD", "DT"},
	}
	names := []string{"AD", "DT"}
	algos := []routing.Algorithm{routing.MinimalAdaptive, routing.XY}
	var cfgs []network.Config
	for _, inj := range InjectionRates {
		for _, alg := range algos {
			cfg := baseConfig(scale)
			cfg.Routing = alg
			cfg.InjectionRate = inj
			// Beyond saturation the network cannot eject TotalMessages in
			// bounded time at the offered rate; measure a fixed horizon.
			cfg.StallCycles = cfg.MaxCycles // utilization runs never "stall"
			switch scale {
			case Full:
				cfg.MaxCycles = 300_000
			case Tiny:
				cfg.MaxCycles = 10_000
			default:
				cfg.MaxCycles = 30_000
			}
			cfgs = append(cfgs, cfg)
		}
	}
	results := runAll(cfgs)
	for ri, inj := range InjectionRates {
		r8 := Row{X: inj, Values: map[string]float64{}}
		r9 := Row{X: inj, Values: map[string]float64{}}
		for ai, name := range names {
			res := results[ri*len(algos)+ai]
			r8.Values[name] = res.TxBufUtil
			r9.Values[name] = res.RtBufUtil
		}
		fig8.Rows = append(fig8.Rows, r8)
		fig9.Rows = append(fig9.Rows, r9)
	}
	return fig8, fig9
}

// Fig13a counts the errors corrected by each protection mechanism across
// error rates: link errors (LINK-HBH), routing-unit logic errors
// (RT-Logic) and switch-allocator logic errors (SA-Logic), each injected
// in isolation as the paper does.
func Fig13a(scale Scale) Figure {
	fig := Figure{
		ID:     "Fig13a",
		Title:  "Number of corrected errors (inj 0.25)",
		XLabel: "error_rate",
		YLabel: "# errors corrected",
		Series: []string{"LINK-HBH", "RT-Logic", "SA-Logic"},
	}
	fig.Rows = fig13Sweep(scale, func(res network.Results, cl fault.Class) float64 {
		return float64(res.Counters.Corrected[cl])
	})
	return fig
}

// Fig13b measures the energy per packet under each isolated fault class.
func Fig13b(scale Scale) Figure {
	fig := Figure{
		ID:     "Fig13b",
		Title:  "Energy per packet under soft-error correction (inj 0.25)",
		XLabel: "error_rate",
		YLabel: "energy (nJ/message)",
		Series: []string{"LINK-HBH", "RT-Logic", "SA-Logic"},
	}
	fig.Rows = fig13Sweep(scale, func(res network.Results, cl fault.Class) float64 {
		return power.EnergyPerMessage(res.Events, res.MeasuredMessages)
	})
	return fig
}

func fig13Sweep(scale Scale, metric func(network.Results, fault.Class) float64) []Row {
	names := []string{"LINK-HBH", "RT-Logic", "SA-Logic"}
	classes := []fault.Class{fault.LinkError, fault.RTLogic, fault.SALogic}
	var cfgs []network.Config
	for _, rate := range LogicErrorRates {
		for _, cl := range classes {
			cfg := baseConfig(scale)
			switch cl {
			case fault.LinkError:
				cfg.Faults.Link = rate
			case fault.RTLogic:
				cfg.Faults.RT = rate
			case fault.SALogic:
				cfg.Faults.SA = rate
			}
			cfgs = append(cfgs, cfg)
		}
	}
	results := runAll(cfgs)
	var rows []Row
	for ri, rate := range LogicErrorRates {
		row := Row{X: rate, Values: map[string]float64{}}
		for ci, name := range names {
			row.Values[name] = metric(results[ri*len(classes)+ci], classes[ci])
		}
		rows = append(rows, row)
	}
	return rows
}

// Table1Row is one line of Table 1.
type Table1Row struct {
	Component string
	PowerMW   float64
	AreaMM2   float64
	PowerPct  float64 // overhead vs the generic router; 0 for the router itself
	AreaPct   float64
}

// Table1 regenerates the paper's Table 1: the AC unit's power and area
// against the generic 5-PC, 4-VC router.
func Table1() []Table1Row {
	c := power.PaperRouter()
	ov := power.ACOverhead(c)
	return []Table1Row{
		{Component: "Generic NoC Router (5 PCs, 4 VCs per PC)", PowerMW: ov.BasePowerMW, AreaMM2: ov.BaseAreaMM2},
		{
			Component: "Allocation Comparator (AC)",
			PowerMW:   ov.AddPowerMW, AreaMM2: ov.AddAreaMM2,
			PowerPct: ov.PowerPct(), AreaPct: ov.AreaPct(),
		},
	}
}

// FprintTable1 renders Table 1.
func FprintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1 — Power and Area Overhead of the AC Unit")
	fmt.Fprintf(w, "%-44s %12s %14s\n", "Component", "Power", "Area")
	for _, r := range rows {
		if r.PowerPct == 0 {
			fmt.Fprintf(w, "%-44s %9.2f mW %11.6f mm2\n", r.Component, r.PowerMW, r.AreaMM2)
			continue
		}
		fmt.Fprintf(w, "%-44s %9.2f mW %11.6f mm2  (+%.2f%% power, +%.2f%% area)\n",
			r.Component, r.PowerMW, r.AreaMM2, r.PowerPct, r.AreaPct)
	}
}
