package experiments

import (
	"strings"
	"testing"

	"ftnoc/internal/routing"
)

func value(f Figure, x float64, series string) float64 {
	for _, r := range f.Rows {
		if r.X == x {
			return r.Values[series]
		}
	}
	return -1
}

func checkShape(t *testing.T, f Figure, xs int) {
	t.Helper()
	if len(f.Rows) != xs {
		t.Fatalf("%s: %d rows, want %d", f.ID, len(f.Rows), xs)
	}
	for _, r := range f.Rows {
		for _, s := range f.Series {
			if _, ok := r.Values[s]; !ok {
				t.Fatalf("%s: row %v missing series %s", f.ID, r.X, s)
			}
		}
	}
	var b strings.Builder
	f.Fprint(&b)
	out := b.String()
	if !strings.Contains(out, f.ID) || !strings.Contains(out, f.XLabel) {
		t.Fatalf("%s: Fprint output malformed:\n%s", f.ID, out)
	}
}

// One tiny-scale pass over the Fig. 5 generator: structure plus the
// paper's headline ordering at the top error rate.
func TestFig5Generator(t *testing.T) {
	fig := Fig5(Tiny)
	checkShape(t, fig, len(ErrorRates))
	hbh := value(fig, 1e-1, "HBH")
	e2e := value(fig, 1e-1, "E2E")
	fec := value(fig, 1e-1, "FEC")
	if !(hbh <= fec && fec < e2e) {
		t.Fatalf("Fig5 ordering violated at 0.1: HBH=%.1f FEC=%.1f E2E=%.1f", hbh, fec, e2e)
	}
	// HBH must stay essentially flat across four decades.
	lo, hi := value(fig, 1e-5, "HBH"), value(fig, 1e-1, "HBH")
	if hi > lo*1.2 {
		t.Fatalf("HBH not flat: %.2f -> %.2f", lo, hi)
	}
}

func TestFig6And7Generators(t *testing.T) {
	f6 := Fig6(Tiny)
	checkShape(t, f6, len(ErrorRates))
	f7 := Fig7(Tiny)
	checkShape(t, f7, len(ErrorRates))
	for _, s := range f6.Series {
		lo, hi := value(f6, 1e-5, s), value(f6, 1e-1, s)
		if hi > lo*1.3 {
			t.Errorf("Fig6 %s latency not near-flat: %.2f -> %.2f", s, lo, hi)
		}
	}
	for _, s := range f7.Series {
		e := value(f7, 1e-1, s)
		if e <= 0 || e > 2 {
			t.Errorf("Fig7 %s energy %.3f nJ implausible", s, e)
		}
	}
}

func TestFig8And9Generators(t *testing.T) {
	f8, f9 := Fig8And9(Tiny)
	checkShape(t, f8, len(InjectionRates))
	checkShape(t, f9, len(InjectionRates))
	// Fig 8: utilization grows from light load to saturation.
	for _, s := range f8.Series {
		if !(value(f8, 0.1, s) < value(f8, 0.9, s)) {
			t.Errorf("Fig8 %s not increasing: %.3f vs %.3f", s, value(f8, 0.1, s), value(f8, 0.9, s))
		}
	}
	// Fig 9: retransmission buffers stay well below transmission buffers
	// at saturation (the paper's under-utilization claim).
	for _, s := range f9.Series {
		if value(f9, 0.9, s) >= value(f8, 0.9, s) {
			t.Errorf("Fig9 %s (%.3f) not below Fig8 (%.3f) at 0.9", s, value(f9, 0.9, s), value(f8, 0.9, s))
		}
	}
}

func TestFig13Generators(t *testing.T) {
	fa := Fig13a(Tiny)
	checkShape(t, fa, len(LogicErrorRates))
	// Corrected counts grow with the rate and keep the paper's ordering
	// at the top rate.
	for _, s := range fa.Series {
		if !(value(fa, 1e-4, s) <= value(fa, 1e-2, s)) {
			t.Errorf("Fig13a %s not increasing with rate", s)
		}
	}
	if !(value(fa, 1e-2, "SA-Logic") > value(fa, 1e-2, "RT-Logic")) {
		t.Error("Fig13a: SA corrections not above RT")
	}
	if !(value(fa, 1e-2, "LINK-HBH") > value(fa, 1e-2, "RT-Logic")) {
		t.Error("Fig13a: LINK corrections not above RT")
	}
	fb := Fig13b(Tiny)
	checkShape(t, fb, len(LogicErrorRates))
	for _, s := range fb.Series {
		if e := value(fb, 1e-2, s); e <= 0 || e > 2 {
			t.Errorf("Fig13b %s energy %.3f implausible", s, e)
		}
	}
}

func TestTable1Values(t *testing.T) {
	rows := Table1()
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].PowerMW != 119.55 {
		t.Errorf("router power %.2f", rows[0].PowerMW)
	}
	if rows[1].PowerPct < 1.68 || rows[1].PowerPct > 1.70 {
		t.Errorf("AC power pct %.3f", rows[1].PowerPct)
	}
	var b strings.Builder
	FprintTable1(&b, rows)
	if !strings.Contains(b.String(), "Allocation Comparator") {
		t.Error("Table 1 print malformed")
	}
}

func TestRenderFormats(t *testing.T) {
	fig := Figure{
		ID: "FigX", Title: "t", XLabel: "x", Series: []string{"A", "B"},
		Rows: []Row{{X: 0.5, Values: map[string]float64{"A": 1, "B": 2}}},
	}
	var csv strings.Builder
	fig.Render(&csv, CSV)
	if got := csv.String(); got != "x,A,B\n0.5,1,2\n" {
		t.Fatalf("CSV = %q", got)
	}
	var md strings.Builder
	fig.Render(&md, Markdown)
	if !strings.Contains(md.String(), "| x | A | B |") || !strings.Contains(md.String(), "| 0.5 | 1 | 2 |") {
		t.Fatalf("markdown = %q", md.String())
	}
	var txt strings.Builder
	fig.Render(&txt, Text)
	if !strings.Contains(txt.String(), "FigX") {
		t.Fatal("text render missing id")
	}
}

func TestParseFormat(t *testing.T) {
	for s, want := range map[string]Format{"": Text, "text": Text, "csv": CSV, "md": Markdown, "markdown": Markdown} {
		got, err := ParseFormat(s)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v,%v", s, got, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestLatencyThroughput(t *testing.T) {
	fig := LatencyThroughput(Tiny, routing.XY, []float64{0.05, 0.2, 0.6})
	checkShape(t, fig, 3)
	// Latency grows with offered load; accepted throughput saturates at
	// or below the offered rate.
	if !(value2(fig, 0.05, "latency") < value2(fig, 0.6, "latency")) {
		t.Fatal("latency not increasing with load")
	}
	for _, r := range fig.Rows {
		if r.Values["accepted"] > r.X+0.03 {
			t.Fatalf("accepted %.3f exceeds offered %.3f", r.Values["accepted"], r.X)
		}
	}
}

func value2(f Figure, x float64, s string) float64 { return value(f, x, s) }

func TestSaturationPoint(t *testing.T) {
	sat := SaturationPoint(Tiny, routing.XY, 0.1)
	// A 4x4 mesh with 3 VCs saturates somewhere between light load and
	// the bisection's upper bound.
	if sat <= 0.1 || sat > 1.0 {
		t.Fatalf("saturation point %.3f implausible", sat)
	}
}

func TestTorusVsMesh(t *testing.T) {
	fig := TorusVsMesh(Tiny)
	checkShape(t, fig, 3)
	// At light load a torus beats a mesh under NR (shorter average
	// paths thanks to the wraparound links).
	if !(value(fig, 0.05, "torus/NR") < value(fig, 0.05, "mesh/NR")) {
		t.Errorf("torus NR latency %.2f not below mesh %.2f",
			value(fig, 0.05, "torus/NR"), value(fig, 0.05, "mesh/NR"))
	}
}
