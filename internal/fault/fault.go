// Package fault implements the soft-fault injection machinery the paper
// uses to evaluate its protection schemes (§2.2): random transient faults
// on inter-router links (bit flips during flit traversal) and single-event
// upsets in intra-router logic (routing unit, VC allocator, switch
// allocator). Hard faults (permanent link outages) live in package
// topology.
//
// Every injector draws from its own deterministic stream, so fault
// placement is a pure function of the simulation seed.
package fault

import (
	"fmt"

	"ftnoc/internal/ecc"
	"ftnoc/internal/flit"
	"ftnoc/internal/sim"
)

// Class identifies which part of the router a fault upsets. These are the
// three error situations evaluated in Fig. 13 plus the VA class analysed
// in §4.1.
type Class uint8

// Fault classes.
const (
	// LinkError is a transient bit flip during flit link traversal (§3).
	LinkError Class = iota + 1
	// RTLogic is a soft error in the routing unit causing misdirection (§4.2).
	RTLogic
	// VALogic is a soft error in the virtual-channel allocator state (§4.1).
	VALogic
	// SALogic is a soft error in the switch allocator control (§4.3).
	SALogic
	// HandshakeError is a transient fault on the inter-router handshake
	// lines (NACK wires), countered by Triple Module Redundancy (§4.6).
	HandshakeError
	// RetransBufError is a soft error inside a retransmission buffer
	// (§4.5): the stored "clean" copy is itself corrupted, so replaying
	// it can never satisfy the receiver — an endless retransmission loop
	// unless duplicate buffers provide a second clean copy.
	RetransBufError
	// XbarError is a transient fault within the crossbar (§4.4): a
	// single-bit upset on the datapath, corrected by the next hop's
	// SEC/DED unit.
	XbarError
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case LinkError:
		return "LINK"
	case RTLogic:
		return "RT-Logic"
	case VALogic:
		return "VA-Logic"
	case SALogic:
		return "SA-Logic"
	case HandshakeError:
		return "Handshake"
	case RetransBufError:
		return "RetransBuf"
	case XbarError:
		return "Xbar"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Rates configures per-operation upset probabilities.
type Rates struct {
	// Link is the probability that a flit suffers an error event during a
	// single link traversal.
	Link float64
	// LinkDouble is the conditional probability that a link error event
	// flips two bits (uncorrectable by SEC/DED) rather than one. The
	// paper argues double errors are unlikely but non-negligible due to
	// crosstalk (§3.1).
	LinkDouble float64
	// RT is the per-routing-computation probability of a misdirection
	// upset in the routing unit.
	RT float64
	// VA is the per-allocation probability of a VC-allocator state upset.
	VA float64
	// SA is the per-arbitration probability of a switch-allocator control
	// upset.
	SA float64
	// Handshake is the per-signal probability of a transient fault on a
	// NACK handshake line (§4.6). Without TMR a faulted NACK is lost.
	Handshake float64
	// RetransBuf is the per-capture probability that a retransmission
	// buffer slot suffers an uncorrectable upset while holding a flit
	// (§4.5). Only the DuplicateRetrans option survives it.
	RetransBuf float64
	// Xbar is the per-traversal probability of a single-bit upset on the
	// crossbar datapath (§4.4), corrected downstream by SEC/DED.
	Xbar float64
	// Mortality is the hard-fault schedule: permanent link and router
	// deaths applied while the run is in flight (see Mortality). Unlike
	// the transient rates above it is irreversible damage, handled by the
	// network's reconfiguration controller rather than the injectors.
	Mortality Mortality `json:",omitempty"`
}

// DefaultLinkDouble is the conditional double-bit fraction used by the
// experiment harness when a config does not override it.
const DefaultLinkDouble = 0.05

// LinkOutcome describes what a link injector did to a flit.
type LinkOutcome uint8

// Link injection outcomes.
const (
	// NoError means the flit traversed cleanly.
	NoError LinkOutcome = iota
	// SingleFlip means one bit was flipped (SEC/DED-correctable).
	SingleFlip
	// DoubleFlip means two bits were flipped (detectable, uncorrectable).
	DoubleFlip
)

// Corruptor is anything that may corrupt a flit in transit. The link
// layer consults it once per flit traversal; tests substitute scripted
// implementations for deterministic fault placement.
type Corruptor interface {
	Corrupt(*flit.Flit) LinkOutcome
}

// LinkInjector corrupts flits crossing one directed link.
//
// The per-traversal Bernoulli draws are batched: instead of calling the
// RNG once per flit, the injector precomputes the run length of misses
// until the next hit by drawing Bool(rate) repeatedly from the SAME
// stream, stopping at the first success. Each traversal then consumes one
// precomputed draw, so the sequence of (hit/miss, bit-position) decisions
// is bit-identical to the unbatched injector — the RNG stream-stability
// contract (see DESIGN.md, "Kernel performance") — while the amortised
// per-flit cost at low error rates is a counter decrement.
type LinkInjector struct {
	rate   float64
	double float64
	rng    *sim.RNG

	// misses is the number of already-drawn Bool(rate)=false outcomes not
	// yet consumed; hitNext records whether a drawn success follows them.
	misses  int
	hitNext bool
}

// NewLinkInjector creates an injector with the given per-traversal error
// rate and conditional double-bit fraction, drawing from rng.
func NewLinkInjector(rate, double float64, rng *sim.RNG) *LinkInjector {
	if !(rate >= 0 && rate <= 1) { // negated form rejects NaN too
		panic("fault: link error rate must be in [0,1]")
	}
	if !(double >= 0 && double <= 1) {
		panic("fault: double fraction must be in [0,1]")
	}
	return &LinkInjector{rate: rate, double: double, rng: rng}
}

// maxMissBatch bounds how many Bernoulli misses a refill precomputes, so
// one refill's cost stays bounded regardless of the error rate.
const maxMissBatch = 4096

// refill draws Bool(rate) from the stream until the first success (or the
// batch bound), recording the run of misses. Exactly the draws the
// unbatched injector would have made, in the same order.
func (li *LinkInjector) refill() {
	for li.misses < maxMissBatch {
		if li.rng.Bool(li.rate) {
			li.hitNext = true
			return
		}
		li.misses++
	}
}

// Corrupt possibly flips bits in f's codeword and reports what happened.
// The 72 codeword bit positions (64 data + 8 check) are equally likely.
func (li *LinkInjector) Corrupt(f *flit.Flit) LinkOutcome {
	if li == nil || li.rate == 0 {
		return NoError
	}
	if li.misses == 0 && !li.hitNext {
		li.refill()
	}
	if li.misses > 0 {
		li.misses--
		return NoError
	}
	li.hitNext = false
	a := li.rng.Intn(72)
	flipBit(f, a)
	if !li.rng.Bool(li.double) {
		return SingleFlip
	}
	b := li.rng.Intn(71)
	if b >= a {
		b++ // distinct from a
	}
	flipBit(f, b)
	return DoubleFlip
}

func flipBit(f *flit.Flit, pos int) {
	if pos < 64 {
		f.Word = ecc.FlipDataBit(f.Word, pos)
	} else {
		f.Check = ecc.FlipCheckBit(f.Check, pos-64)
	}
}

// LogicInjector decides, operation by operation, whether a router's logic
// suffers a single-event upset. One injector per router per fault class;
// the single-event-upset assumption (at most one fault at a time, §4.1) is
// the caller's responsibility via configuration (enable one class per
// experiment, as the paper does for Fig. 13).
type LogicInjector struct {
	class Class
	rate  float64
	rng   *sim.RNG

	// script, when non-nil, overrides the stochastic draw: operation k
	// upsets iff script[k] (operations past the end never upset). Used by
	// white-box tests that need a fault at an exact operation.
	script []bool
	idx    int
	picks  []int
	pickI  int
}

// NewLogicInjector creates an injector for one fault class.
func NewLogicInjector(class Class, rate float64, rng *sim.RNG) *LogicInjector {
	if rate < 0 || rate > 1 {
		panic("fault: logic upset rate must be in [0,1]")
	}
	return &LogicInjector{class: class, rate: rate, rng: rng}
}

// NewScriptedLogicInjector creates a deterministic injector: operation k
// upsets iff script[k], and corruption-target choices are taken from
// picks (cycled). Test tooling for exercising exact fault scenarios.
func NewScriptedLogicInjector(class Class, script []bool, picks []int) *LogicInjector {
	if len(picks) == 0 {
		picks = []int{0}
	}
	return &LogicInjector{class: class, script: script, picks: picks}
}

// Class returns the injector's fault class.
func (li *LogicInjector) Class() Class { return li.class }

// Upset reports whether the current operation suffers an upset.
func (li *LogicInjector) Upset() bool {
	if li == nil {
		return false
	}
	if li.script != nil {
		if li.idx >= len(li.script) {
			return false
		}
		hit := li.script[li.idx]
		li.idx++
		return hit
	}
	if li.rate == 0 {
		return false
	}
	return li.rng.Bool(li.rate)
}

// Pick returns a uniform value in [0, n), for choosing corrupted targets
// (which VC id to clobber, which port to misdirect to, ...).
func (li *LogicInjector) Pick(n int) int {
	if li.script != nil {
		v := li.picks[li.pickI%len(li.picks)]
		li.pickI++
		return v % n
	}
	return li.rng.Intn(n)
}

// CounterOp distinguishes the three accounting outcomes an Observer can
// be notified of.
type CounterOp uint8

// Counter operations.
const (
	// OpInjected: an upset was actually injected.
	OpInjected CounterOp = iota + 1
	// OpCorrected: a protection mechanism repaired an error.
	OpCorrected
	// OpUndetected: an upset escaped every mechanism.
	OpUndetected
)

// Counters tallies fault-handling activity for the statistics pipeline.
// The "corrected errors" series of Fig. 13(a) is the sum, per class, of
// errors the corresponding protection mechanism repaired.
type Counters struct {
	// Injected counts upsets actually injected, per class.
	Injected map[Class]uint64
	// Corrected counts errors repaired by a protection mechanism:
	// SEC/DED corrections plus HBH retransmissions for LinkError;
	// AC invalidations for VA/SA; VA-state catches and neighbor NACKs
	// for RT.
	Corrected map[Class]uint64
	// Undetected counts upsets no mechanism caught (e.g. benign adaptive
	// misroutes, or any class with its protection disabled).
	Undetected map[Class]uint64
	// Retransmissions counts HBH flit retransmission events.
	Retransmissions uint64
	// NACKs counts NACK signals sent.
	NACKs uint64
	// DroppedFlits counts flits discarded at receivers during the HBH
	// drop window.
	DroppedFlits uint64

	// Observer, when non-nil, is invoked synchronously on every
	// class-accounting call. The network uses it to republish fault
	// accounting onto the structured event bus with cycle context; it
	// must not mutate simulation state. Excluded from JSON so Results
	// containing Counters still serialise.
	Observer func(op CounterOp, cl Class) `json:"-"`
}

// Merge folds o's counts into c. Observers are left untouched. The
// network keeps one counter shard per actor under the parallel kernel
// and merges them into a single record when results are read; merging is
// exact because every count is attributed to exactly one shard.
func (c *Counters) Merge(o *Counters) {
	for cl, v := range o.Injected {
		c.Injected[cl] += v
	}
	for cl, v := range o.Corrected {
		c.Corrected[cl] += v
	}
	for cl, v := range o.Undetected {
		c.Undetected[cl] += v
	}
	c.Retransmissions += o.Retransmissions
	c.NACKs += o.NACKs
	c.DroppedFlits += o.DroppedFlits
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{
		Injected:   make(map[Class]uint64),
		Corrected:  make(map[Class]uint64),
		Undetected: make(map[Class]uint64),
	}
}

// AddInjected records an injected upset.
func (c *Counters) AddInjected(cl Class) {
	c.Injected[cl]++
	if c.Observer != nil {
		c.Observer(OpInjected, cl)
	}
}

// AddCorrected records a repaired error.
func (c *Counters) AddCorrected(cl Class) {
	c.Corrected[cl]++
	if c.Observer != nil {
		c.Observer(OpCorrected, cl)
	}
}

// AddUndetected records an upset that escaped protection.
func (c *Counters) AddUndetected(cl Class) {
	c.Undetected[cl]++
	if c.Observer != nil {
		c.Observer(OpUndetected, cl)
	}
}
