package fault

import (
	"math"
	"testing"

	"ftnoc/internal/ecc"
	"ftnoc/internal/flit"
	"ftnoc/internal/sim"
)

func cleanFlit() flit.Flit {
	f := flit.Packet{ID: 1, Src: 0, Dst: 5, Size: 2}.Flits()[0]
	return f
}

func TestLinkInjectorRate(t *testing.T) {
	inj := NewLinkInjector(0.1, 0.05, sim.NewRNG(1))
	var single, double, clean int
	const n = 100_000
	for i := 0; i < n; i++ {
		f := cleanFlit()
		switch inj.Corrupt(&f) {
		case NoError:
			clean++
		case SingleFlip:
			single++
		case DoubleFlip:
			double++
		}
	}
	errFrac := float64(single+double) / n
	if math.Abs(errFrac-0.1) > 0.01 {
		t.Fatalf("error rate %.4f, want ~0.1", errFrac)
	}
	dblFrac := float64(double) / float64(single+double)
	if math.Abs(dblFrac-0.05) > 0.01 {
		t.Fatalf("double fraction %.4f, want ~0.05", dblFrac)
	}
}

func TestLinkInjectorZeroRate(t *testing.T) {
	inj := NewLinkInjector(0, 0.05, sim.NewRNG(1))
	f := cleanFlit()
	for i := 0; i < 1000; i++ {
		if inj.Corrupt(&f) != NoError {
			t.Fatal("zero-rate injector corrupted a flit")
		}
	}
}

func TestNilInjectorIsNoop(t *testing.T) {
	var inj *LinkInjector
	f := cleanFlit()
	if inj.Corrupt(&f) != NoError {
		t.Fatal("nil injector corrupted")
	}
}

// The injected corruption must be exactly what the ECC sees: singles
// decode as Corrected, doubles as Detected.
func TestInjectionMatchesECCOutcome(t *testing.T) {
	inj := NewLinkInjector(1, 0.5, sim.NewRNG(9))
	for i := 0; i < 5000; i++ {
		f := cleanFlit()
		out := inj.Corrupt(&f)
		_, _, dec := ecc.Decode(f.Word, f.Check)
		switch out {
		case SingleFlip:
			if dec != ecc.Corrected {
				t.Fatalf("single flip decoded as %v", dec)
			}
		case DoubleFlip:
			if dec != ecc.Detected {
				t.Fatalf("double flip decoded as %v", dec)
			}
		default:
			t.Fatal("rate-1 injector produced no error")
		}
	}
}

func TestDoubleFlipsDistinctBits(t *testing.T) {
	// If the two flips ever hit the same bit they would cancel and decode
	// clean; the injector must prevent that.
	inj := NewLinkInjector(1, 1, sim.NewRNG(4))
	for i := 0; i < 5000; i++ {
		f := cleanFlit()
		inj.Corrupt(&f)
		if _, _, dec := ecc.Decode(f.Word, f.Check); dec == ecc.OK {
			t.Fatal("double flip cancelled itself")
		}
	}
}

func TestLogicInjectorRate(t *testing.T) {
	inj := NewLogicInjector(SALogic, 0.01, sim.NewRNG(2))
	if inj.Class() != SALogic {
		t.Fatal("class wrong")
	}
	hits := 0
	const n = 200_000
	for i := 0; i < n; i++ {
		if inj.Upset() {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.01) > 0.002 {
		t.Fatalf("upset rate %.5f, want ~0.01", frac)
	}
}

func TestNilLogicInjectorNeverUpsets(t *testing.T) {
	var inj *LogicInjector
	for i := 0; i < 100; i++ {
		if inj.Upset() {
			t.Fatal("nil injector upset")
		}
	}
}

func TestInjectorPanicsOnBadRates(t *testing.T) {
	for _, fn := range []func(){
		func() { NewLinkInjector(-0.1, 0, sim.NewRNG(1)) },
		func() { NewLinkInjector(1.1, 0, sim.NewRNG(1)) },
		func() { NewLinkInjector(0.5, 2, sim.NewRNG(1)) },
		func() { NewLogicInjector(RTLogic, -1, sim.NewRNG(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad rate did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestClassString(t *testing.T) {
	want := map[Class]string{
		LinkError: "LINK", RTLogic: "RT-Logic", VALogic: "VA-Logic", SALogic: "SA-Logic",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.AddInjected(LinkError)
	c.AddInjected(LinkError)
	c.AddCorrected(LinkError)
	c.AddUndetected(SALogic)
	if c.Injected[LinkError] != 2 || c.Corrected[LinkError] != 1 || c.Undetected[SALogic] != 1 {
		t.Fatalf("counters wrong: %+v", c)
	}
}
