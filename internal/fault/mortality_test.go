package fault

import (
	"testing"

	"ftnoc/internal/topology"
)

func TestMortalityStringParseRoundTrip(t *testing.T) {
	cases := []Mortality{
		{},
		{Links: []LinkDeath{{From: 3, Dir: topology.East, Cycle: 1000}}},
		{
			Links: []LinkDeath{
				{From: 3, Dir: topology.East, Cycle: 1000},
				{From: 12, Dir: topology.North, Cycle: 2500},
			},
			Routers: []RouterDeath{{Node: 9, Cycle: 4000}},
		},
		{HazardRate: 1e-4},
		{HazardRate: 2.5e-3, HazardStart: 500},
		{HazardRate: 2.5e-3, HazardStart: 500, HazardStop: 9000},
		{Routers: []RouterDeath{{Node: 0, Cycle: 1}}, HazardRate: 1e-5, HazardStop: 100},
	}
	for _, m := range cases {
		s := m.String()
		got, err := ParseMortality(s)
		if err != nil {
			t.Fatalf("ParseMortality(%q): %v", s, err)
		}
		if got.String() != s {
			t.Fatalf("round trip %q -> %q", s, got.String())
		}
	}
	if (Mortality{}).String() != "none" {
		t.Fatal("empty schedule should print as none")
	}
	if m, err := ParseMortality(""); err != nil || m.Enabled() {
		t.Fatal("empty string should parse to the empty schedule")
	}
}

func TestParseMortalityRejectsGarbage(t *testing.T) {
	for _, s := range []string{
		"link:3X@100",      // bad direction
		"link:3E",          // missing cycle
		"link:E@100",       // missing node
		"router:abc@5",     // bad node
		"router:2",         // missing cycle
		"hazard:zap",       // bad rate
		"hazard:1e-3@x",    // bad start
		"hazard:1e-3@1-y",  // bad stop
		"explode:all@9000", // unknown kind
		"link",             // no colon
	} {
		if _, err := ParseMortality(s); err == nil {
			t.Errorf("ParseMortality(%q) accepted garbage", s)
		}
	}
}

func TestMortalitySorted(t *testing.T) {
	m := Mortality{
		Links: []LinkDeath{
			{From: 5, Dir: topology.West, Cycle: 200},
			{From: 5, Dir: topology.North, Cycle: 200},
			{From: 1, Dir: topology.East, Cycle: 100},
		},
		Routers: []RouterDeath{{Node: 9, Cycle: 50}, {Node: 2, Cycle: 50}},
	}
	links, routers := m.Sorted()
	if links[0].From != 1 || links[1].Dir != topology.North || links[2].Dir != topology.West {
		t.Fatalf("links not in (cycle,node,dir) order: %+v", links)
	}
	if routers[0].Node != 2 {
		t.Fatalf("routers not in (cycle,node) order: %+v", routers)
	}
	if len(m.Links) != 3 || m.Links[0].From != 5 {
		t.Fatal("Sorted mutated the schedule")
	}
}
