package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ftnoc/internal/flit"
	"ftnoc/internal/topology"
)

// Mortality is the hard-fault schedule of a run: permanent link and
// router deaths at configured cycles, plus an optional memoryless hazard
// process that kills random live links at a per-cycle rate. Unlike the
// transient Rates it sits beside, mortality is irreversible — the
// network degrades monotonically and the interesting measurements are
// reachability and throughput after each death.
//
// Mortality is part of the configuration (hash-included): two runs with
// different schedules are different experiments.
type Mortality struct {
	// Links lists scheduled link deaths. Each kills the physical link in
	// both directions at its cycle.
	Links []LinkDeath `json:",omitempty"`
	// Routers lists scheduled router deaths: all incident links die and
	// the node's PE stops generating traffic.
	Routers []RouterDeath `json:",omitempty"`
	// HazardRate is the per-cycle probability that one additional random
	// live link dies, active on cycles [HazardStart, HazardStop) (a zero
	// HazardStop means "until the run ends"). Victims derive from the
	// simulation seed, so a hazard schedule is as reproducible as an
	// explicit one.
	HazardRate  float64 `json:",omitempty"`
	HazardStart uint64  `json:",omitempty"`
	HazardStop  uint64  `json:",omitempty"`
}

// LinkDeath schedules the bidirectional death of the physical link
// (From, Dir) at the start of the given cycle.
type LinkDeath struct {
	From  flit.NodeID
	Dir   topology.Port
	Cycle uint64
}

// RouterDeath schedules the death of a router (and its PE) at the start
// of the given cycle.
type RouterDeath struct {
	Node  flit.NodeID
	Cycle uint64
}

// Enabled reports whether the schedule kills anything.
func (m Mortality) Enabled() bool {
	return len(m.Links) > 0 || len(m.Routers) > 0 || m.HazardRate > 0
}

// dirNames maps mesh directions to their schedule-grammar letters.
var dirNames = map[topology.Port]string{
	topology.North: "N", topology.East: "E", topology.South: "S", topology.West: "W",
}

// String renders the schedule in the ParseMortality grammar — the
// canonical axis label campaign tables and CLI flags use. Entries print
// in schedule order; an empty schedule prints as "none".
func (m Mortality) String() string {
	if !m.Enabled() {
		return "none"
	}
	var parts []string
	for _, l := range m.Links {
		d, ok := dirNames[l.Dir]
		if !ok {
			d = fmt.Sprintf("(%d)", l.Dir)
		}
		parts = append(parts, fmt.Sprintf("link:%d%s@%d", l.From, d, l.Cycle))
	}
	for _, r := range m.Routers {
		parts = append(parts, fmt.Sprintf("router:%d@%d", r.Node, r.Cycle))
	}
	if m.HazardRate > 0 {
		h := "hazard:" + strconv.FormatFloat(m.HazardRate, 'g', -1, 64)
		if m.HazardStart > 0 || m.HazardStop > 0 {
			h += fmt.Sprintf("@%d", m.HazardStart)
			if m.HazardStop > 0 {
				h += fmt.Sprintf("-%d", m.HazardStop)
			}
		}
		parts = append(parts, h)
	}
	return strings.Join(parts, ",")
}

// ParseMortality parses the schedule grammar: a comma-separated list of
//
//	link:<node><N|E|S|W>@<cycle>   one link dies (both directions)
//	router:<node>@<cycle>          one router dies
//	hazard:<rate>[@<start>[-<stop>]]  memoryless link deaths
//
// "none" or the empty string is the empty schedule. The grammar is the
// inverse of String, so schedules round-trip through campaign tables.
func ParseMortality(s string) (Mortality, error) {
	var m Mortality
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return m, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		kind, rest, ok := strings.Cut(part, ":")
		if !ok {
			return Mortality{}, fmt.Errorf("fault: bad mortality entry %q (want kind:spec)", part)
		}
		switch kind {
		case "link":
			spec, cyc, ok := strings.Cut(rest, "@")
			if !ok {
				return Mortality{}, fmt.Errorf("fault: link death %q is missing its @cycle", part)
			}
			if len(spec) < 2 {
				return Mortality{}, fmt.Errorf("fault: bad link spec %q (want <node><N|E|S|W>)", spec)
			}
			var dir topology.Port
			switch spec[len(spec)-1] {
			case 'N':
				dir = topology.North
			case 'E':
				dir = topology.East
			case 'S':
				dir = topology.South
			case 'W':
				dir = topology.West
			default:
				return Mortality{}, fmt.Errorf("fault: bad link direction %q (want N, E, S or W)", spec[len(spec)-1:])
			}
			node, err := strconv.ParseUint(spec[:len(spec)-1], 10, 16)
			if err != nil {
				return Mortality{}, fmt.Errorf("fault: bad link node in %q: %v", part, err)
			}
			cycle, err := strconv.ParseUint(cyc, 10, 64)
			if err != nil {
				return Mortality{}, fmt.Errorf("fault: bad death cycle in %q: %v", part, err)
			}
			m.Links = append(m.Links, LinkDeath{From: flit.NodeID(node), Dir: dir, Cycle: cycle})
		case "router":
			spec, cyc, ok := strings.Cut(rest, "@")
			if !ok {
				return Mortality{}, fmt.Errorf("fault: router death %q is missing its @cycle", part)
			}
			node, err := strconv.ParseUint(spec, 10, 16)
			if err != nil {
				return Mortality{}, fmt.Errorf("fault: bad router node in %q: %v", part, err)
			}
			cycle, err := strconv.ParseUint(cyc, 10, 64)
			if err != nil {
				return Mortality{}, fmt.Errorf("fault: bad death cycle in %q: %v", part, err)
			}
			m.Routers = append(m.Routers, RouterDeath{Node: flit.NodeID(node), Cycle: cycle})
		case "hazard":
			spec, window, windowed := strings.Cut(rest, "@")
			rate, err := strconv.ParseFloat(spec, 64)
			if err != nil {
				return Mortality{}, fmt.Errorf("fault: bad hazard rate in %q: %v", part, err)
			}
			m.HazardRate = rate
			if windowed {
				start, stop, ranged := strings.Cut(window, "-")
				if m.HazardStart, err = strconv.ParseUint(start, 10, 64); err != nil {
					return Mortality{}, fmt.Errorf("fault: bad hazard start in %q: %v", part, err)
				}
				if ranged {
					if m.HazardStop, err = strconv.ParseUint(stop, 10, 64); err != nil {
						return Mortality{}, fmt.Errorf("fault: bad hazard stop in %q: %v", part, err)
					}
				}
			}
		default:
			return Mortality{}, fmt.Errorf("fault: unknown mortality entry kind %q (want link, router or hazard)", kind)
		}
	}
	return m, nil
}

// Sorted returns copies of the explicit death lists ordered by (cycle,
// node, direction) — the deterministic application order of the
// reconfiguration controller.
func (m Mortality) Sorted() (links []LinkDeath, routers []RouterDeath) {
	links = append(links, m.Links...)
	routers = append(routers, m.Routers...)
	sort.SliceStable(links, func(i, j int) bool {
		if links[i].Cycle != links[j].Cycle {
			return links[i].Cycle < links[j].Cycle
		}
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].Dir < links[j].Dir
	})
	sort.SliceStable(routers, func(i, j int) bool {
		if routers[i].Cycle != routers[j].Cycle {
			return routers[i].Cycle < routers[j].Cycle
		}
		return routers[i].Node < routers[j].Node
	})
	return links, routers
}
