package fault

import (
	"math/bits"
	"testing"

	"ftnoc/internal/ecc"
	"ftnoc/internal/flit"
	"ftnoc/internal/sim"
)

// FuzzLinkInjector drives the link fault injector with arbitrary rates,
// seeds and codewords and holds it to the contract the protection
// schemes build on: the reported outcome exactly matches the number of
// bits flipped, and the SEC/DED decoder classifies the damage the way
// the outcome promises (SingleFlip is correctable back to the original
// codeword, DoubleFlip is detected).
func FuzzLinkInjector(f *testing.F) {
	f.Add(uint64(1), uint64(0), uint64(42), uint64(0xDEADBEEF), uint16(200))
	f.Add(uint64(1000), uint64(1000), uint64(7), uint64(0), uint16(50))
	f.Add(uint64(0), uint64(500), uint64(9), ^uint64(0), uint16(10))
	f.Fuzz(func(t *testing.T, rateMil, doubleMil, seed, word uint64, n uint16) {
		rate := float64(rateMil%1001) / 1000
		double := float64(doubleMil%1001) / 1000
		li := NewLinkInjector(rate, double, sim.NewRNG(seed))
		for i := 0; i < int(n%512)+1; i++ {
			fl := flit.Flit{Word: word, Check: ecc.Encode(word)}
			origWord, origCheck := fl.Word, fl.Check
			out := li.Corrupt(&fl)
			flips := bits.OnesCount64(fl.Word^origWord) + bits.OnesCount8(fl.Check^origCheck)
			want := map[LinkOutcome]int{NoError: 0, SingleFlip: 1, DoubleFlip: 2}
			if flipped, ok := want[out]; !ok || flipped != flips {
				t.Fatalf("outcome %d reports %d flips, codeword shows %d", out, flipped, flips)
			}
			dw, dc, dout := ecc.Decode(fl.Word, fl.Check)
			switch out {
			case NoError:
				if dout != ecc.OK {
					t.Fatalf("clean traversal decodes as %v", dout)
				}
			case SingleFlip:
				if dout != ecc.Corrected || dw != origWord || dc != origCheck {
					t.Fatalf("single flip not corrected: outcome %v, word %#x/%#x want %#x/%#x",
						dout, dw, dc, origWord, origCheck)
				}
			case DoubleFlip:
				if dout != ecc.Detected {
					t.Fatalf("double flip decodes as %v, want Detected", dout)
				}
			}
		}
	})
}
