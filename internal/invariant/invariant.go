// Package invariant is the simulator's runtime verification layer: a
// trace.Sink that audits the event stream against global conservation
// and protocol laws, plus a reporting surface the network's per-cycle
// state walker feeds structural violations into.
//
// The checks fall into two families:
//
//   - Event-driven (this package, via Emit): packet conservation — every
//     injected packet is eventually ejected, terminally dropped with a
//     recorded reason, or still resident when the run ends — plus event
//     monotonicity, ejection validity (right destination, no double
//     delivery), the retransmission bound (replays cannot outnumber
//     link-error NACKs times the shifter depth), and deadlock-recovery
//     liveness (episodes pair up and terminate within a bound).
//
//   - State-driven (package network, via Report): per-VC credit
//     conservation, retransmission-buffer age soundness, VA-binding
//     consistency, probe-memory bounds, and quiescence safety. Those
//     need access to live component state, so the network walks its own
//     structures and reports what it finds here.
//
// The checker is wired through Config.Invariants / the -check CLI flags
// and is off by default: it exists to make test and fuzz runs
// self-verifying, not to tax production sweeps.
package invariant

import (
	"fmt"
	"sync"

	"ftnoc/internal/link"
	"ftnoc/internal/trace"
)

// Violation is one detected invariant breach, with enough context to
// localise it: which check, when, and where.
type Violation struct {
	Check string // stable check identifier (e.g. "conservation", "credits")
	Cycle uint64
	Node  int32 // -1 when not attributable
	Port  int8  // -1 when not attributable
	VC    int8  // -1 when not attributable
	PID   uint64
	Msg   string
}

// Error implements error.
func (v Violation) Error() string {
	s := fmt.Sprintf("invariant %q violated at cycle %d", v.Check, v.Cycle)
	if v.Node >= 0 {
		s += fmt.Sprintf(" node %d", v.Node)
	}
	if v.Port >= 0 {
		s += fmt.Sprintf(" port %d", v.Port)
	}
	if v.VC >= 0 {
		s += fmt.Sprintf(" vc %d", v.VC)
	}
	if v.PID != 0 {
		s += fmt.Sprintf(" pid %d", v.PID)
	}
	return s + ": " + v.Msg
}

// Config tunes a Checker. The zero value is usable: every-cycle state
// audits, 100 recorded violations, the paper's shifter depth, and a
// 2^17-cycle recovery bound.
type Config struct {
	// Every is the state-audit stride: the network walks component state
	// (credits, shifters, bindings, quiescence) every Every cycles.
	// 0 means every cycle.
	Every uint64
	// Limit caps recorded violations so a systemic breach cannot OOM the
	// run. 0 means 100. Counting continues past the cap.
	Limit int
	// ShifterDepth is the per-VC retransmission-buffer depth used by the
	// retransmission bound. 0 means link.NACKWindow.
	ShifterDepth int
	// RecoveryBound is the maximum cycles a deadlock-recovery episode may
	// stay open before it is declared a livelock. 0 means 1<<17.
	RecoveryBound uint64
	// OnViolation, when non-nil, runs synchronously on every violation
	// (recorded or past the cap) — e.g. a test's t.Errorf.
	OnViolation func(Violation)
}

func (c Config) withDefaults() Config {
	if c.Every == 0 {
		c.Every = 1
	}
	if c.Limit == 0 {
		c.Limit = 100
	}
	if c.ShifterDepth == 0 {
		c.ShifterDepth = link.NACKWindow
	}
	if c.RecoveryBound == 0 {
		c.RecoveryBound = 1 << 17
	}
	return c
}

// pidState tracks one injected packet through the ledger.
type pidState struct {
	src     int32
	dst     int32
	ejected bool
	dropped bool // terminal drop reason recorded
}

// Checker audits a simulation run. Attach it to the run's event bus
// (it implements trace.Sink) and, for the state-driven checks, let the
// network call Report; after the run, Finalize closes the conservation
// ledger and Err reports the verdict. Not safe for concurrent use — one
// checker per run, like the bus it listens to.
type Checker struct {
	cfg Config

	// mu guards Report: most reporters run serially at cycle boundaries,
	// but the ECC verifier hook fires inside receiver ticks, which the
	// parallel kernel runs on concurrent workers. Violations are rare, so
	// the lock is uncontended in healthy runs.
	mu         sync.Mutex
	violations []Violation
	total      int

	// Conservation ledger.
	ledger   map[uint64]*pidState
	injected uint64
	ejected  uint64
	dropped  uint64

	// Liveness and bounds.
	episodes    map[int32]uint64 // node -> RecoveryBegin cycle
	linkNACKs   uint64
	retransmits uint64
	boundTrip   bool // retransmission bound already reported

	lastCycle uint64
	events    uint64
}

// New creates a checker with the given configuration.
func New(cfg Config) *Checker {
	return &Checker{
		cfg:      cfg.withDefaults(),
		ledger:   make(map[uint64]*pidState),
		episodes: make(map[int32]uint64),
	}
}

// Every returns the configured state-audit stride (>= 1).
func (c *Checker) Every() uint64 { return c.cfg.Every }

// RecoveryBound returns the configured livelock bound.
func (c *Checker) RecoveryBound() uint64 { return c.cfg.RecoveryBound }

// Report records a violation found by an external state walker. Safe for
// concurrent use (see mu).
func (c *Checker) Report(v Violation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total++
	if len(c.violations) < c.cfg.Limit {
		c.violations = append(c.violations, v)
	}
	if c.cfg.OnViolation != nil {
		c.cfg.OnViolation(v)
	}
}

func (c *Checker) reportf(check string, cycle uint64, node int32, port, vc int8, pid uint64, format string, args ...any) {
	c.Report(Violation{
		Check: check, Cycle: cycle, Node: node, Port: port, VC: vc, PID: pid,
		Msg: fmt.Sprintf(format, args...),
	})
}

// Emit implements trace.Sink: the event-driven checks.
func (c *Checker) Emit(e trace.Event) {
	// Campaign bracketing events carry point/replicate identifiers in the
	// packet fields and replicate durations in Cycle; they are not part of
	// any single run's timeline.
	if e.Kind == trace.CampaignPointStart || e.Kind == trace.CampaignPointDone {
		return
	}
	c.events++
	if e.Cycle < c.lastCycle {
		c.reportf("monotonic", e.Cycle, e.Node, e.Port, e.VC, e.PID,
			"%v event at cycle %d after cycle %d", e.Kind, e.Cycle, c.lastCycle)
	} else {
		c.lastCycle = e.Cycle
	}

	switch e.Kind {
	case trace.FlitInjected:
		if _, dup := c.ledger[e.PID]; dup {
			c.reportf("conservation", e.Cycle, e.Node, e.Port, e.VC, e.PID,
				"packet id injected twice")
			return
		}
		c.ledger[e.PID] = &pidState{src: e.Node, dst: int32(e.Aux)}
		c.injected++

	case trace.FlitEjected:
		st, ok := c.ledger[e.PID]
		if !ok {
			c.reportf("conservation", e.Cycle, e.Node, e.Port, e.VC, e.PID,
				"ejected packet was never injected")
			return
		}
		if st.ejected {
			c.reportf("conservation", e.Cycle, e.Node, e.Port, e.VC, e.PID,
				"packet ejected twice")
			return
		}
		if e.Node != st.dst {
			c.reportf("conservation", e.Cycle, e.Node, e.Port, e.VC, e.PID,
				"packet for node %d ejected at node %d", st.dst, e.Node)
		}
		st.ejected = true
		c.ejected++

	case trace.FlitDropped:
		// Transient reasons (drop window, NACK, misroute) leave a live
		// retransmission copy upstream; only terminal reasons account for
		// a packet in the conservation ledger.
		switch e.Aux {
		case trace.DropStray, trace.DropWormhole, trace.DropSALost,
			trace.DropCorrupt, trace.DropEvicted,
			trace.DropLinkDead, trace.DropUnreachable:
			if st, ok := c.ledger[e.PID]; ok && !st.dropped {
				st.dropped = true
				c.dropped++
			}
		}

	case trace.NACKSent:
		if e.Aux == uint64(link.NACKLinkError) {
			c.linkNACKs++
		}

	case trace.Retransmit:
		c.retransmits++
		if bound := c.linkNACKs * uint64(c.cfg.ShifterDepth); c.retransmits > bound && !c.boundTrip {
			c.boundTrip = true
			c.reportf("retrans-bound", e.Cycle, e.Node, e.Port, e.VC, e.PID,
				"%d retransmissions exceed %d link-error NACKs x shifter depth %d",
				c.retransmits, c.linkNACKs, c.cfg.ShifterDepth)
		}

	case trace.RecoveryBegin:
		if begin, open := c.episodes[e.Node]; open {
			c.reportf("recovery-liveness", e.Cycle, e.Node, e.Port, e.VC, 0,
				"recovery begun while episode from cycle %d still open", begin)
		}
		c.episodes[e.Node] = e.Cycle

	case trace.RecoveryEnd:
		if _, open := c.episodes[e.Node]; !open {
			c.reportf("recovery-liveness", e.Cycle, e.Node, e.Port, e.VC, 0,
				"recovery ended with no open episode")
			return
		}
		delete(c.episodes, e.Node)
	}
}

// CheckEpisodes asserts no open deadlock-recovery episode has outlived
// the livelock bound. The network's per-cycle audit calls this; it is
// O(open episodes), which is almost always zero.
func (c *Checker) CheckEpisodes(cycle uint64) {
	for node, begin := range c.episodes {
		if cycle > begin && cycle-begin > c.cfg.RecoveryBound {
			c.reportf("recovery-liveness", cycle, node, -1, -1, 0,
				"recovery episode open since cycle %d (%d cycles > bound %d)",
				begin, cycle-begin, c.cfg.RecoveryBound)
			// Re-arm so a genuine livelock reports once per bound, not
			// once per audit.
			c.episodes[node] = cycle
		}
	}
}

// Finalize closes the conservation ledger at the end of a run. clean
// reports whether the run terminated normally (all traffic delivered or
// accounted, no stall/abort); resident holds the packet ids still
// physically present in the network (buffers, shifters, wires, PE
// queues), which a stalled run legitimately strands. On a clean run
// every injected packet must be ejected, terminally dropped, or
// resident; open recovery episodes are livelocks.
func (c *Checker) Finalize(cycle uint64, clean bool, resident map[uint64]bool) {
	if !clean {
		return
	}
	for pid, st := range c.ledger {
		if st.ejected || st.dropped || resident[pid] {
			continue
		}
		c.reportf("conservation", cycle, st.src, -1, -1, pid,
			"packet for node %d vanished: not ejected, not dropped, not resident", st.dst)
	}
	for node, begin := range c.episodes {
		c.reportf("recovery-liveness", cycle, node, -1, -1, 0,
			"recovery episode open since cycle %d at end of run", begin)
	}
}

// Violations returns the recorded violations (capped at Config.Limit).
func (c *Checker) Violations() []Violation { return c.violations }

// Total returns the number of violations detected, including any past
// the recording cap.
func (c *Checker) Total() int { return c.total }

// Stats returns the ledger tallies: packets injected, cleanly ejected,
// and terminally dropped, plus events audited.
func (c *Checker) Stats() (injected, ejected, dropped, events uint64) {
	return c.injected, c.ejected, c.dropped, c.events
}

// Err returns nil when no violation was detected, or an error naming
// the first violation and the total count.
func (c *Checker) Err() error {
	if c.total == 0 {
		return nil
	}
	if len(c.violations) == 0 {
		return fmt.Errorf("%d invariant violations (recording disabled)", c.total)
	}
	if c.total == 1 {
		return c.violations[0]
	}
	return fmt.Errorf("%d invariant violations, first: %w", c.total, c.violations[0])
}
