package invariant

import (
	"strings"
	"testing"

	"ftnoc/internal/link"
	"ftnoc/internal/trace"
)

func inject(c *Checker, cycle, pid uint64, src, dst int32) {
	c.Emit(trace.Event{Cycle: cycle, Kind: trace.FlitInjected, Node: src, Port: -1, VC: -1, PID: pid, Aux: uint64(dst)})
}

func eject(c *Checker, cycle, pid uint64, node int32) {
	c.Emit(trace.Event{Cycle: cycle, Kind: trace.FlitEjected, Node: node, Port: -1, VC: 0, PID: pid})
}

func firstCheck(c *Checker) string {
	if len(c.Violations()) == 0 {
		return ""
	}
	return c.Violations()[0].Check
}

func TestLedgerCleanRoundTrip(t *testing.T) {
	c := New(Config{})
	inject(c, 10, 1, 0, 5)
	inject(c, 12, 2, 3, 7)
	eject(c, 40, 1, 5)
	eject(c, 44, 2, 7)
	c.Finalize(100, true, nil)
	if err := c.Err(); err != nil {
		t.Fatalf("clean round trip: %v", err)
	}
	injected, ejected, dropped, events := c.Stats()
	if injected != 2 || ejected != 2 || dropped != 0 || events != 4 {
		t.Fatalf("stats = %d/%d/%d/%d, want 2/2/0/4", injected, ejected, dropped, events)
	}
}

func TestLedgerVanishedPacket(t *testing.T) {
	c := New(Config{})
	inject(c, 10, 1, 0, 5)
	c.Finalize(100, true, nil)
	if c.Total() != 1 || firstCheck(c) != "conservation" {
		t.Fatalf("vanished packet not flagged: total=%d first=%q", c.Total(), firstCheck(c))
	}
	if !strings.Contains(c.Err().Error(), "vanished") {
		t.Fatalf("error does not name the failure: %v", c.Err())
	}
}

func TestLedgerResidentPacketIsAccounted(t *testing.T) {
	c := New(Config{})
	inject(c, 10, 1, 0, 5)
	c.Finalize(100, true, map[uint64]bool{1: true})
	if err := c.Err(); err != nil {
		t.Fatalf("resident packet misreported: %v", err)
	}
}

func TestLedgerUncleanRunSkipsConservation(t *testing.T) {
	c := New(Config{})
	inject(c, 10, 1, 0, 5)
	c.Finalize(100, false, nil)
	if err := c.Err(); err != nil {
		t.Fatalf("stalled run misreported: %v", err)
	}
}

func TestLedgerTerminalDropAccounts(t *testing.T) {
	for _, reason := range []uint64{trace.DropStray, trace.DropWormhole, trace.DropSALost, trace.DropCorrupt, trace.DropEvicted} {
		c := New(Config{})
		inject(c, 10, 1, 0, 5)
		c.Emit(trace.Event{Cycle: 20, Kind: trace.FlitDropped, Node: 2, Port: 1, VC: 0, PID: 1, Aux: reason})
		c.Finalize(100, true, nil)
		if err := c.Err(); err != nil {
			t.Fatalf("reason %d: terminally dropped packet misreported: %v", reason, err)
		}
	}
}

func TestLedgerTransientDropDoesNotAccount(t *testing.T) {
	for _, reason := range []uint64{trace.DropWindow, trace.DropNACK, trace.DropMisroute} {
		c := New(Config{})
		inject(c, 10, 1, 0, 5)
		c.Emit(trace.Event{Cycle: 20, Kind: trace.FlitDropped, Node: 2, Port: 1, VC: 0, PID: 1, Aux: reason})
		c.Finalize(100, true, nil)
		if c.Total() != 1 {
			t.Fatalf("reason %d: transient drop wrongly closed the ledger (total=%d)", reason, c.Total())
		}
	}
}

func TestLedgerEjectionValidity(t *testing.T) {
	t.Run("never-injected", func(t *testing.T) {
		c := New(Config{})
		eject(c, 40, 9, 5)
		if c.Total() != 1 || firstCheck(c) != "conservation" {
			t.Fatalf("ghost ejection not flagged: total=%d", c.Total())
		}
	})
	t.Run("double-ejection", func(t *testing.T) {
		c := New(Config{})
		inject(c, 10, 1, 0, 5)
		eject(c, 40, 1, 5)
		eject(c, 41, 1, 5)
		if c.Total() != 1 {
			t.Fatalf("double ejection not flagged: total=%d", c.Total())
		}
	})
	t.Run("wrong-destination", func(t *testing.T) {
		c := New(Config{})
		inject(c, 10, 1, 0, 5)
		eject(c, 40, 1, 6)
		if c.Total() != 1 {
			t.Fatalf("misdelivery not flagged: total=%d", c.Total())
		}
	})
	t.Run("duplicate-pid", func(t *testing.T) {
		c := New(Config{})
		inject(c, 10, 1, 0, 5)
		inject(c, 11, 1, 2, 6)
		if c.Total() != 1 {
			t.Fatalf("duplicate injection not flagged: total=%d", c.Total())
		}
	})
}

func TestMonotonicity(t *testing.T) {
	c := New(Config{})
	inject(c, 50, 1, 0, 5)
	inject(c, 40, 2, 1, 6) // time went backwards
	if c.Total() != 1 || firstCheck(c) != "monotonic" {
		t.Fatalf("non-monotonic cycle not flagged: total=%d first=%q", c.Total(), firstCheck(c))
	}
}

func TestCampaignEventsIgnored(t *testing.T) {
	c := New(Config{})
	inject(c, 50, 1, 0, 5)
	// Campaign brackets carry replicate durations in Cycle and replicate
	// indices in PID — neither belongs to this run's timeline or ledger.
	c.Emit(trace.Event{Cycle: 3, Kind: trace.CampaignPointDone, Node: -1, Port: -1, VC: -1, PID: 0, Aux: 7})
	eject(c, 90, 1, 5)
	c.Finalize(100, true, nil)
	if err := c.Err(); err != nil {
		t.Fatalf("campaign event perturbed the checker: %v", err)
	}
}

func TestRetransmissionBound(t *testing.T) {
	c := New(Config{ShifterDepth: 3})
	nack := trace.Event{Cycle: 10, Kind: trace.NACKSent, Node: 1, Port: 0, VC: 0, Aux: uint64(link.NACKLinkError)}
	retrans := trace.Event{Cycle: 11, Kind: trace.Retransmit, Node: 0, Port: 2, VC: 0, PID: 4}
	c.Emit(nack)
	for i := 0; i < 3; i++ {
		c.Emit(retrans)
	}
	if c.Total() != 0 {
		t.Fatalf("3 retransmits after 1 NACK (depth 3) wrongly flagged: %v", c.Err())
	}
	c.Emit(retrans) // 4th replay from a single 3-deep drain is impossible
	if c.Total() != 1 || firstCheck(c) != "retrans-bound" {
		t.Fatalf("retransmission bound not enforced: total=%d first=%q", c.Total(), firstCheck(c))
	}
	// Non-link-error NACKs (misroute reports) must not widen the bound.
	c2 := New(Config{ShifterDepth: 3})
	c2.Emit(trace.Event{Cycle: 10, Kind: trace.NACKSent, Node: 1, Port: 0, VC: 0, Aux: uint64(link.NACKMisroute)})
	c2.Emit(retrans)
	if c2.Total() != 1 {
		t.Fatalf("retransmit without link-error NACK not flagged: total=%d", c2.Total())
	}
}

func TestRecoveryLiveness(t *testing.T) {
	t.Run("paired-episode", func(t *testing.T) {
		c := New(Config{})
		c.Emit(trace.Event{Cycle: 100, Kind: trace.RecoveryBegin, Node: 3, Port: -1, VC: -1})
		c.Emit(trace.Event{Cycle: 180, Kind: trace.RecoveryEnd, Node: 3, Port: -1, VC: -1})
		c.CheckEpisodes(10_000)
		c.Finalize(20_000, true, nil)
		if err := c.Err(); err != nil {
			t.Fatalf("paired episode misreported: %v", err)
		}
	})
	t.Run("double-begin", func(t *testing.T) {
		c := New(Config{})
		c.Emit(trace.Event{Cycle: 100, Kind: trace.RecoveryBegin, Node: 3, Port: -1, VC: -1})
		c.Emit(trace.Event{Cycle: 120, Kind: trace.RecoveryBegin, Node: 3, Port: -1, VC: -1})
		if c.Total() != 1 || firstCheck(c) != "recovery-liveness" {
			t.Fatalf("double begin not flagged: total=%d", c.Total())
		}
	})
	t.Run("end-without-begin", func(t *testing.T) {
		c := New(Config{})
		c.Emit(trace.Event{Cycle: 100, Kind: trace.RecoveryEnd, Node: 3, Port: -1, VC: -1})
		if c.Total() != 1 {
			t.Fatalf("unpaired end not flagged: total=%d", c.Total())
		}
	})
	t.Run("livelock-bound", func(t *testing.T) {
		c := New(Config{RecoveryBound: 1000})
		c.Emit(trace.Event{Cycle: 100, Kind: trace.RecoveryBegin, Node: 3, Port: -1, VC: -1})
		c.CheckEpisodes(900)
		if c.Total() != 0 {
			t.Fatalf("episode inside bound wrongly flagged: %v", c.Err())
		}
		c.CheckEpisodes(1200)
		if c.Total() != 1 {
			t.Fatalf("livelocked episode not flagged: total=%d", c.Total())
		}
		// Re-armed: the same episode reports again only after another full
		// bound, not on every subsequent audit.
		c.CheckEpisodes(1300)
		if c.Total() != 1 {
			t.Fatalf("livelock re-reported every audit: total=%d", c.Total())
		}
	})
	t.Run("open-at-finalize", func(t *testing.T) {
		c := New(Config{})
		c.Emit(trace.Event{Cycle: 100, Kind: trace.RecoveryBegin, Node: 3, Port: -1, VC: -1})
		c.Finalize(5000, true, nil)
		if c.Total() != 1 {
			t.Fatalf("episode open at end of run not flagged: total=%d", c.Total())
		}
	})
}

func TestViolationLimitAndCallback(t *testing.T) {
	var seen int
	c := New(Config{Limit: 3, OnViolation: func(Violation) { seen++ }})
	for pid := uint64(1); pid <= 10; pid++ {
		eject(c, pid, pid, 0) // ten ghost ejections
	}
	if len(c.Violations()) != 3 {
		t.Fatalf("recorded %d violations, cap is 3", len(c.Violations()))
	}
	if c.Total() != 10 || seen != 10 {
		t.Fatalf("total=%d callback=%d, want 10/10", c.Total(), seen)
	}
	if !strings.Contains(c.Err().Error(), "10 invariant violations") {
		t.Fatalf("summary error wrong: %v", c.Err())
	}
}

func TestViolationErrorRendering(t *testing.T) {
	v := Violation{Check: "credits", Cycle: 42, Node: 3, Port: 1, VC: 2, PID: 9, Msg: "leak"}
	s := v.Error()
	for _, want := range []string{"credits", "cycle 42", "node 3", "port 1", "vc 2", "pid 9", "leak"} {
		if !strings.Contains(s, want) {
			t.Errorf("violation text %q missing %q", s, want)
		}
	}
	// Unattributable fields stay out of the text.
	v2 := Violation{Check: "monotonic", Cycle: 7, Node: -1, Port: -1, VC: -1, Msg: "x"}
	if s2 := v2.Error(); strings.Contains(s2, "node") || strings.Contains(s2, "port") {
		t.Errorf("unattributable violation leaked placeholder fields: %q", s2)
	}
}
