// Package trace is the simulator's structured observability layer: a
// typed event bus that every component publishes microarchitectural
// events to, plus a time-series metrics registry of per-router gauges.
//
// Design constraints:
//
//   - Zero cost when disabled. Publishers guard every emission with
//     Bus.Enabled(), which inlines to a nil/empty check, and Event is a
//     flat value type, so a disabled bus adds no allocations and no
//     measurable overhead to the simulation hot path (see the
//     disabled-path benchmark in bench_test.go). Tracing therefore stays
//     compiled in unconditionally.
//   - One pathway. Everything that observes the simulation — NDJSON
//     event streams, Chrome trace_event exports, the human-readable
//     packet-journey renderer — is a Sink attached to the same Bus, so
//     instrumentation never forks into bespoke side channels.
//   - No upward dependencies. The package imports nothing from the
//     simulator, so every layer (link, router, network) can publish.
package trace

import "fmt"

// Kind classifies a structured event. The taxonomy covers the flit
// lifecycle, the fault-tolerance protocols, and the fault injectors;
// see the constant docs for the publisher of each kind.
type Kind uint8

// Event kinds.
const (
	// FlitInjected: a packet entered its source PE's injection queue.
	// Node is the source; Aux is the destination node.
	FlitInjected Kind = iota + 1
	// FlitBuffered: a flit was written into an input VC buffer.
	FlitBuffered
	// FlitDequeued: a flit left a router's input VC storage (toward the
	// crossbar, or dropped as a stray). Aux bit 0 set means it came from
	// the credited buffer rather than the parked/pending queue; bit 1
	// set means it was dropped as a stray rather than switched.
	FlitDequeued
	// FlitParked: deadlock recovery moved a flit from an input VC buffer
	// into the retransmission shifter's parking space (§3.2.1).
	FlitParked
	// FlitRecalled: a misroute NACK recalled a flit from a
	// retransmission buffer back into its input VC's pending queue
	// (§4.2).
	FlitRecalled
	// FlitEjected: a packet's tail was consumed cleanly at its
	// destination PE. Node is the destination.
	FlitEjected
	// RouteComputed: the routing unit produced a candidate set for the
	// packet resident in (Node, Port, VC) — including re-routes after
	// misroute detection.
	RouteComputed
	// VCAllocated: the VC allocator committed an output binding. Port
	// and VC name the granted output.
	VCAllocated
	// ACMismatch: the Allocation Comparator invalidated an allocation.
	// Aux 0 = VA stage, 1 = SA stage.
	ACMismatch
	// NACKSent: a receiver raised a NACK handshake. Aux is the
	// link.NACKKind code.
	NACKSent
	// Retransmit: a transmitter re-sent a flit from its retransmission
	// buffer after a link-error NACK (§3.1).
	Retransmit
	// ECCCorrected: a SEC/DED unit corrected a single-bit error.
	ECCCorrected
	// ProbeSent: the deadlock detector emitted a control flit from
	// (Node, Port, VC). Aux 0 = probe, 1 = activation (§3.2.2).
	ProbeSent
	// RecoveryBegin / RecoveryEnd bracket a router's deadlock-recovery
	// episode (§3.2.1).
	RecoveryBegin
	RecoveryEnd
	// FaultInjected / FaultCorrected / FaultUndetected mirror the fault
	// accounting of package fault. Aux is the fault.Class code; Node is
	// -1 (the counters are network-global).
	FaultInjected
	FaultCorrected
	FaultUndetected
	// CampaignPointStart / CampaignPointDone bracket one replicate of one
	// grid point in a campaign run (package campaign). Aux is the point
	// index, PID the replicate index; Cycle on Done is the replicate's
	// simulated length. Node/Port/VC are -1 (not router-attributable).
	CampaignPointStart
	CampaignPointDone
	// FlitDropped: a flit (or, for the terminal reasons, a whole packet)
	// left the network without reaching its destination cleanly. Aux is a
	// Drop* reason code. Emitted at every discard site — receiver drop
	// windows, NACK drops, misroute force-drops, stray/wormhole drops,
	// uncaught switch-allocation losses, corrupt deliveries and retention
	// evictions — so a conservation checker can account for every packet.
	FlitDropped

	// Campaign span-timeline kinds (package campaign). Unlike every kind
	// above, their Cycle field carries wall-clock microseconds since the
	// campaign started, not a simulated cycle — they describe the
	// engine's schedule, not the simulated network — so the hierarchy
	// campaign → point → replicate renders as nested spans in the Chrome
	// exporter (worker lanes included; see ChromeTrace).
	//
	// CampaignBegin / CampaignEnd bracket the whole run. Begin: Aux is
	// the point count, Aux2 the total replicate count. End: Aux is the
	// replicates that ran, Aux2 is 1 if the campaign was aborted.
	CampaignBegin
	CampaignEnd
	// CampaignPointBegin / CampaignPointEnd bracket a grid point's wall
	// window, from its first replicate's dispatch to its last
	// replicate's retirement. Aux is the point index; End's Aux2 counts
	// the point's failed replicates.
	CampaignPointBegin
	CampaignPointEnd
	// CampaignRepBegin / CampaignRepEnd bracket one replicate on its
	// worker: Node is the worker index, PID the replicate index. Begin:
	// Aux is the point index, Aux2 the derived simulation seed. End: Aux
	// and Aux2 carry the kernel's ticked/skipped actor-tick counters,
	// and Seq is a RepStatus* code.
	CampaignRepBegin
	CampaignRepEnd

	// Hard-fault kinds (the progressive-mortality regime).
	//
	// LinkDied: the directed link (Node, Port) hard-failed at Cycle —
	// emitted by the reconfiguration controller at the death boundary,
	// before any same-cycle actor event. Aux2 is 1 when the death is part
	// of a router death rather than an isolated link fault.
	LinkDied
	// RouterDied: router Node hard-failed at Cycle (its PE stops
	// generating and all incident links die alongside, each with its own
	// LinkDied event).
	RouterDied
	// FaultMapUpdate: router Node's local fault map learned of new
	// damage — at the death boundary for the fault site's own routers,
	// or via one-hop-per-cycle dissemination from a live neighbor for
	// everyone else. Aux is the map's new version, Aux2 its dead
	// directed-link count.
	FaultMapUpdate

	numKinds
)

// Seq values for CampaignRepEnd.
const (
	RepStatusOK      uint8 = 0
	RepStatusError   uint8 = 1
	RepStatusAborted uint8 = 2
)

// String implements fmt.Stringer with stable kebab-case names (they are
// part of the NDJSON output format).
func (k Kind) String() string {
	switch k {
	case FlitInjected:
		return "flit-injected"
	case FlitBuffered:
		return "flit-buffered"
	case FlitDequeued:
		return "flit-dequeued"
	case FlitParked:
		return "flit-parked"
	case FlitRecalled:
		return "flit-recalled"
	case FlitEjected:
		return "flit-ejected"
	case RouteComputed:
		return "route-computed"
	case VCAllocated:
		return "vc-allocated"
	case ACMismatch:
		return "ac-mismatch"
	case NACKSent:
		return "nack-sent"
	case Retransmit:
		return "retransmit"
	case ECCCorrected:
		return "ecc-corrected"
	case ProbeSent:
		return "probe-sent"
	case RecoveryBegin:
		return "recovery-begin"
	case RecoveryEnd:
		return "recovery-end"
	case FaultInjected:
		return "fault-injected"
	case FaultCorrected:
		return "fault-corrected"
	case FaultUndetected:
		return "fault-undetected"
	case CampaignPointStart:
		return "campaign-point-start"
	case CampaignPointDone:
		return "campaign-point-done"
	case FlitDropped:
		return "flit-dropped"
	case CampaignBegin:
		return "campaign-begin"
	case CampaignEnd:
		return "campaign-end"
	case CampaignPointBegin:
		return "campaign-point-begin"
	case CampaignPointEnd:
		return "campaign-point-end"
	case CampaignRepBegin:
		return "campaign-rep-begin"
	case CampaignRepEnd:
		return "campaign-rep-end"
	case LinkDied:
		return "link-died"
	case RouterDied:
		return "router-died"
	case FaultMapUpdate:
		return "fault-map-update"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Aux values for FlitDequeued.
const (
	DequeuedFromBuffer uint64 = 1 << 0 // credited buffer slot (vs pending queue)
	DequeuedStray      uint64 = 1 << 1 // dropped as a stray, not switched
)

// Aux values for ACMismatch and ProbeSent.
const (
	AuxVA         uint64 = 0
	AuxSA         uint64 = 1
	AuxProbe      uint64 = 0
	AuxActivation uint64 = 1
)

// Aux reason codes for FlitDropped. Transient reasons mean the flit has a
// live retransmission copy upstream (the packet is still in flight);
// terminal reasons mean this copy of the packet can only be recovered
// end-to-end, if at all.
const (
	// DropWindow: discarded inside a receiver's post-NACK drop window
	// (transient — the transmitter's shifter replays it).
	DropWindow uint64 = iota + 1
	// DropNACK: the uncorrectable flit that raised a link-error NACK
	// (transient — drained into the replay queue).
	DropNACK
	// DropMisroute: force-dropped by the §4.2 arrival-direction check
	// (transient — recalled from the shifter and re-routed).
	DropMisroute
	// DropStray: a non-head flit arrived at an idle VC with no wormhole
	// (terminal for the flit; only unprotected logic faults cause it).
	DropStray
	// DropWormhole: arrived at a full buffer after corrupted wormhole
	// state defeated flow control (terminal for the flit).
	DropWormhole
	// DropSALost: an uncaught switch-allocation corruption sent the flit
	// nowhere usable (terminal for the flit).
	DropSALost
	// DropCorrupt: the packet completed at its destination but failed the
	// end check (terminal unless an E2E/FEC retransmission revives it).
	DropCorrupt
	// DropEvicted: an E2E/FEC retransmission request arrived after the
	// retained copy timed out — the packet is unrecoverable.
	DropEvicted
	// DropLinkDead: the packet occupied (or was in flight on) a link that
	// hard-failed; the reconfiguration controller destroyed the whole
	// worm at the death boundary (terminal — the packet counts as
	// undeliverable, never as lost in transit).
	DropLinkDead
	// DropUnreachable: the packet's destination is unreachable on the
	// surviving topology — detected at injection admission or by the
	// controller's wedge sweep (terminal; counted as undeliverable).
	DropUnreachable
)

// Event is one structured record. It is a flat value type — publishing
// one allocates nothing. Fields not meaningful for a Kind are zero;
// Node/Port/VC use -1 for "not attributable".
type Event struct {
	Cycle uint64
	Kind  Kind
	Node  int32 // router / PE node id
	Port  int8  // physical channel index (topology.Port), -1 if n/a
	VC    int8  // virtual channel index, -1 if n/a
	Seq   uint8 // flit sequence within its packet
	PID   uint64
	Aux   uint64 // kind-specific detail (see the Kind docs)
	Aux2  uint64 // second kind-specific detail; zero for most kinds
}

// Sink consumes events. Implementations must not assume any ordering
// beyond: events arrive in emission order, and Cycle is non-decreasing.
type Sink interface {
	Emit(Event)
}

// Bus fans events out to its sinks. The zero value and the nil pointer
// are both valid, disabled buses.
type Bus struct {
	sinks []Sink
}

// NewBus returns an empty (disabled) bus.
func NewBus() *Bus { return &Bus{} }

// Attach adds a sink. Attaching enables the bus.
func (b *Bus) Attach(s Sink) {
	if s != nil {
		b.sinks = append(b.sinks, s)
	}
}

// Enabled reports whether any sink is attached. Publishers must guard
// every Emit with it; the method is small enough to inline, which is
// what keeps the disabled path free.
func (b *Bus) Enabled() bool { return b != nil && len(b.sinks) > 0 }

// Emit delivers e to every sink.
func (b *Bus) Emit(e Event) {
	for _, s := range b.sinks {
		s.Emit(e)
	}
}

// multiSink fans one stream into several (for CLI use where one run
// feeds both an NDJSON file and a Chrome trace).
type multiSink []Sink

func (m multiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// Tee combines sinks into one. Nil entries are dropped; a single
// non-nil sink is returned unwrapped.
func Tee(sinks ...Sink) Sink {
	var kept multiSink
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}

// FilterPIDs wraps a sink, passing only events whose PID is in pids
// (events without packet attribution — recovery episodes, fault
// accounting — are dropped too, since their PID field is zero).
func FilterPIDs(s Sink, pids []uint64) Sink {
	set := make(map[uint64]bool, len(pids))
	for _, p := range pids {
		set[p] = true
	}
	return pidFilter{set: set, next: s}
}

type pidFilter struct {
	set  map[uint64]bool
	next Sink
}

func (f pidFilter) Emit(e Event) {
	if f.set[e.PID] {
		f.next.Emit(e)
	}
}

// FilterKinds wraps a sink, passing only events of the given kinds.
func FilterKinds(s Sink, kinds ...Kind) Sink {
	var mask uint32
	for _, k := range kinds {
		mask |= 1 << k
	}
	return kindFilter{mask: mask, next: s}
}

type kindFilter struct {
	mask uint32
	next Sink
}

func (f kindFilter) Emit(e Event) {
	if f.mask&(1<<e.Kind) != 0 {
		f.next.Emit(e)
	}
}
