package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// collector is a Sink that records everything it sees.
type collector struct{ events []Event }

func (c *collector) Emit(e Event) { c.events = append(c.events, e) }

func TestKindStringsStable(t *testing.T) {
	// The kebab-case names are part of the NDJSON format: lock them.
	want := map[Kind]string{
		FlitInjected:    "flit-injected",
		FlitBuffered:    "flit-buffered",
		FlitDequeued:    "flit-dequeued",
		FlitParked:      "flit-parked",
		FlitRecalled:    "flit-recalled",
		FlitEjected:     "flit-ejected",
		FlitDropped:     "flit-dropped",
		RouteComputed:   "route-computed",
		VCAllocated:     "vc-allocated",
		ACMismatch:      "ac-mismatch",
		NACKSent:        "nack-sent",
		Retransmit:      "retransmit",
		ECCCorrected:    "ecc-corrected",
		ProbeSent:       "probe-sent",
		RecoveryBegin:   "recovery-begin",
		RecoveryEnd:     "recovery-end",
		FaultInjected:   "fault-injected",
		FaultCorrected:  "fault-corrected",
		FaultUndetected: "fault-undetected",

		CampaignPointStart: "campaign-point-start",
		CampaignPointDone:  "campaign-point-done",

		CampaignBegin:      "campaign-begin",
		CampaignEnd:        "campaign-end",
		CampaignPointBegin: "campaign-point-begin",
		CampaignPointEnd:   "campaign-point-end",
		CampaignRepBegin:   "campaign-rep-begin",
		CampaignRepEnd:     "campaign-rep-end",

		LinkDied:       "link-died",
		RouterDied:     "router-died",
		FaultMapUpdate: "fault-map-update",
	}
	for k := Kind(1); k < numKinds; k++ {
		if w, ok := want[k]; !ok || k.String() != w {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), w)
		}
	}
	if !strings.HasPrefix(Kind(200).String(), "kind(") {
		t.Errorf("unknown kind should render as kind(N), got %q", Kind(200).String())
	}
}

func TestBusEnabledAndFanOut(t *testing.T) {
	var nilBus *Bus
	if nilBus.Enabled() {
		t.Fatal("nil bus must be disabled")
	}
	b := NewBus()
	if b.Enabled() {
		t.Fatal("empty bus must be disabled")
	}
	var c1, c2 collector
	b.Attach(&c1)
	b.Attach(nil) // nil sinks are dropped
	b.Attach(&c2)
	if !b.Enabled() {
		t.Fatal("bus with sinks must be enabled")
	}
	b.Emit(Event{Cycle: 3, Kind: Retransmit, Node: 7})
	if len(c1.events) != 1 || len(c2.events) != 1 {
		t.Fatalf("fan-out failed: %d / %d", len(c1.events), len(c2.events))
	}
	if c1.events[0].Node != 7 || c1.events[0].Kind != Retransmit {
		t.Fatalf("event mangled: %+v", c1.events[0])
	}
}

// The whole observability design rests on this: with no sink attached,
// the guard-then-emit pattern must not allocate.
func TestDisabledBusZeroAlloc(t *testing.T) {
	var nilBus *Bus
	empty := NewBus()
	allocs := testing.AllocsPerRun(1000, func() {
		if nilBus.Enabled() {
			nilBus.Emit(Event{Cycle: 1, Kind: FlitBuffered})
		}
		if empty.Enabled() {
			empty.Emit(Event{Cycle: 1, Kind: FlitBuffered})
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled bus allocated %.1f times per emission attempt", allocs)
	}
}

func TestTee(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Fatal("Tee of nothing must be nil")
	}
	var c collector
	if Tee(&c) != Sink(&c) {
		t.Fatal("Tee of one sink must return it unwrapped")
	}
	var c2 collector
	s := Tee(&c, nil, &c2)
	s.Emit(Event{Kind: NACKSent})
	if len(c.events) != 1 || len(c2.events) != 1 {
		t.Fatal("Tee did not fan out")
	}
}

func TestFilterPIDs(t *testing.T) {
	var c collector
	s := FilterPIDs(&c, []uint64{5, 9})
	s.Emit(Event{Kind: FlitBuffered, PID: 5})
	s.Emit(Event{Kind: FlitBuffered, PID: 6})
	s.Emit(Event{Kind: RecoveryBegin, PID: 0}) // unattributed: dropped
	s.Emit(Event{Kind: FlitEjected, PID: 9})
	if len(c.events) != 2 || c.events[0].PID != 5 || c.events[1].PID != 9 {
		t.Fatalf("pid filter wrong: %+v", c.events)
	}
}

func TestFilterKinds(t *testing.T) {
	var c collector
	s := FilterKinds(&c, Retransmit, ECCCorrected)
	s.Emit(Event{Kind: FlitBuffered})
	s.Emit(Event{Kind: Retransmit})
	s.Emit(Event{Kind: ECCCorrected})
	s.Emit(Event{Kind: NACKSent})
	if len(c.events) != 2 || c.events[0].Kind != Retransmit || c.events[1].Kind != ECCCorrected {
		t.Fatalf("kind filter wrong: %+v", c.events)
	}
}

func TestNDJSONFormat(t *testing.T) {
	var buf bytes.Buffer
	s := NewNDJSON(&buf)
	s.Emit(Event{Cycle: 42, Kind: Retransmit, Node: 3, Port: 2, VC: 1, Seq: 9, PID: 1234, Aux: 7})
	s.Emit(Event{Cycle: 43, Kind: RecoveryBegin, Node: -1, Port: -1, VC: -1})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d: %q", len(lines), buf.String())
	}
	want := `{"cycle":42,"kind":"retransmit","node":3,"port":2,"vc":1,"pid":1234,"seq":9,"aux":7}`
	if lines[0] != want {
		t.Fatalf("line 0:\n got %s\nwant %s", lines[0], want)
	}
	// Every line must be valid JSON with the fixed field set.
	for _, l := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("invalid JSON %q: %v", l, err)
		}
		for _, k := range []string{"cycle", "kind", "node", "port", "vc", "pid", "seq", "aux"} {
			if _, ok := m[k]; !ok {
				t.Fatalf("line %q missing field %q", l, k)
			}
		}
	}
}

func TestNDJSONAux2OnlyWhenSet(t *testing.T) {
	var buf bytes.Buffer
	s := NewNDJSON(&buf)
	s.Emit(Event{Cycle: 1, Kind: Retransmit, Node: 3, Port: 2, VC: 1})
	s.Emit(Event{Cycle: 2, Kind: CampaignRepBegin, Node: 0, Port: -1, VC: -1, Aux: 4, Aux2: 99})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if strings.Contains(lines[0], "aux2") {
		t.Errorf("aux2-free event must not serialise the field: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"aux2":99`) {
		t.Errorf("aux2 missing: %s", lines[1])
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	var buf bytes.Buffer
	c := NewChromeTrace(&buf)
	c.ProcessName = func(node int) string { return "R" }
	c.ThreadName = func(port int) string { return "P" }
	c.Emit(Event{Cycle: 1, Kind: FlitBuffered, Node: 0, Port: 1, VC: 0, PID: 5})
	c.Emit(Event{Cycle: 2, Kind: RecoveryBegin, Node: 0, Port: -1, VC: -1})
	c.Emit(Event{Cycle: 9, Kind: RecoveryEnd, Node: 0, Port: -1, VC: -1})
	c.Emit(Event{Cycle: 10, Kind: Retransmit, Node: 4, Port: 3, VC: 2, PID: 8, Seq: 1})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			PID  int    `json:"pid"`
			TID  int    `json:"tid"`
			TS   uint64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	phases := map[string]string{}
	meta := 0
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			meta++
			continue
		}
		phases[e.Name] = e.Ph
	}
	if meta == 0 {
		t.Fatal("no metadata (process/thread name) events emitted")
	}
	if phases["recovery-begin"] != "B" || phases["recovery-end"] != "E" {
		t.Fatalf("recovery episode must be a B/E span, got %v", phases)
	}
	if phases["retransmit"] != "i" || phases["flit-buffered"] != "i" {
		t.Fatalf("point events must be instants, got %v", phases)
	}
}

func TestChromeCampaignTimelineLanes(t *testing.T) {
	var buf bytes.Buffer
	c := NewChromeTrace(&buf)
	c.Emit(Event{Cycle: 0, Kind: CampaignBegin, Node: -1, Aux: 2, Aux2: 2})
	c.Emit(Event{Cycle: 1, Kind: CampaignPointBegin, Node: -1, Aux: 0})
	c.Emit(Event{Cycle: 1, Kind: CampaignRepBegin, Node: 0, Aux: 0, PID: 0, Aux2: 77})
	c.Emit(Event{Cycle: 9, Kind: CampaignRepEnd, Node: 0, PID: 0, Aux: 100, Aux2: 40, Seq: RepStatusOK})
	c.Emit(Event{Cycle: 9, Kind: CampaignPointEnd, Node: -1, Aux: 0, Aux2: 0})
	c.Emit(Event{Cycle: 10, Kind: CampaignEnd, Node: -1, Aux: 2})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int64          `json:"pid"`
			TID  int64          `json:"tid"`
			TS   uint64         `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	// Each lane must open and close on the same (pid, tid), and the
	// replicate end must carry the kernel stats.
	type lane struct{ pid, tid int64 }
	open := map[lane]int{}
	var sawRepStats bool
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "B":
			open[lane{e.PID, e.TID}]++
		case "E":
			open[lane{e.PID, e.TID}]--
			if e.PID == WorkerLanePID {
				if e.Args["kernel_ticked"] != float64(100) || e.Args["kernel_skipped"] != float64(40) || e.Args["status"] != "ok" {
					t.Errorf("rep-end args wrong: %v", e.Args)
				}
				sawRepStats = true
			}
		}
	}
	for l, n := range open {
		if n != 0 {
			t.Errorf("lane %+v has %d unmatched span boundaries", l, n)
		}
	}
	if !sawRepStats {
		t.Error("no replicate end span on the worker lane")
	}
	if len(open) != 3 {
		t.Errorf("want spans on 3 lanes (campaign, point, worker), got %d", len(open))
	}
}

func TestMetricsSampling(t *testing.T) {
	var buf bytes.Buffer
	m := NewMetrics(&buf, 10)
	if m.Interval() != 10 {
		t.Fatalf("interval = %d", m.Interval())
	}
	v := 0.0
	m.Register(3, "gauge", func() float64 { v += 0.5; return v })
	for cycle := uint64(1); cycle <= 25; cycle++ {
		m.Tick(cycle)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 { // cycles 10 and 20
		t.Fatalf("want 2 samples, got %d: %q", len(lines), buf.String())
	}
	want := `{"cycle":10,"node":3,"metric":"gauge","value":0.5}`
	if lines[0] != want {
		t.Fatalf("got %s\nwant %s", lines[0], want)
	}
	var row struct {
		Cycle  uint64  `json:"cycle"`
		Node   int     `json:"node"`
		Metric string  `json:"metric"`
		Value  float64 `json:"value"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &row); err != nil {
		t.Fatal(err)
	}
	if row.Cycle != 20 || row.Value != 1.0 {
		t.Fatalf("second sample wrong: %+v", row)
	}
}

func TestMetricsZeroIntervalDefaultsToOne(t *testing.T) {
	var buf bytes.Buffer
	m := NewMetrics(&buf, 0)
	if m.Interval() != 1 {
		t.Fatalf("interval = %d, want 1", m.Interval())
	}
}
