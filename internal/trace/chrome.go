package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// ChromeTrace exports events in the Chrome trace_event JSON format, so a
// run can be replayed visually in chrome://tracing or Perfetto
// (ui.perfetto.dev → "Open trace file"). The mapping:
//
//   - one "process" per router (pid = node id),
//   - one "thread" per physical port (tid = port + 1; tid 0 is the
//     router-level control thread carrying recovery episodes),
//   - one simulated cycle = 1 µs of trace time,
//   - RecoveryBegin/RecoveryEnd become duration ("B"/"E") events, so a
//     deadlock-recovery episode renders as a span,
//   - every other kind becomes a thread-scoped instant ("i") event with
//     the packet id, VC, sequence number and aux detail in args.
//
// Campaign span kinds (CampaignBegin … CampaignRepEnd) are timeline
// events rather than simulation events: their timestamps are wall-clock
// microseconds, and they render on three dedicated processes far above
// any router id — CampaignLanePID holds the campaign-wide span,
// PointLanePID one thread per grid point (stragglers appear as the long
// lanes), and WorkerLanePID one thread per pool worker (gaps are idle
// workers). Replicate spans carry the seed, the kernel's ticked/skipped
// counters and the terminal status in args.
//
// Process and thread names are emitted lazily as metadata events the
// first time a (node) or (node, port) appears; override the generic
// labels with ProcessName / ThreadName before the first event.
type ChromeTrace struct {
	// ProcessName, when non-nil, labels a router's process (e.g.
	// "router 12 (4,1)").
	ProcessName func(node int) string
	// ThreadName, when non-nil, labels a port's thread (e.g. "port E").
	ThreadName func(port int) string

	w       *bufio.Writer
	buf     []byte
	err     error
	first   bool
	procs   map[int32]bool
	threads map[int64]bool
	lanes   map[int64]bool // campaign timeline (pid, tid) pairs already named
}

// Campaign timeline process ids (see the type comment). They sit far
// above any realistic router id so a mixed trace cannot collide.
const (
	CampaignLanePID = 1 << 20
	PointLanePID    = 1<<20 + 1
	WorkerLanePID   = 1<<20 + 2
)

// NewChromeTrace creates a Chrome trace_event exporter writing to w.
func NewChromeTrace(w io.Writer) *ChromeTrace {
	c := &ChromeTrace{
		w:       bufio.NewWriterSize(w, 1<<16),
		buf:     make([]byte, 0, 256),
		first:   true,
		procs:   make(map[int32]bool),
		threads: make(map[int64]bool),
		lanes:   make(map[int64]bool),
	}
	c.writeString(`{"displayTimeUnit":"ms","traceEvents":[`)
	return c
}

func (c *ChromeTrace) writeString(s string) {
	if c.err != nil {
		return
	}
	if _, err := c.w.WriteString(s); err != nil {
		c.err = err
	}
}

func (c *ChromeTrace) sep() {
	if c.first {
		c.first = false
		c.writeString("\n")
	} else {
		c.writeString(",\n")
	}
}

// meta emits process/thread-name metadata the first time an identity is
// seen.
func (c *ChromeTrace) meta(node int32, port int8) {
	if !c.procs[node] {
		c.procs[node] = true
		name := fmt.Sprintf("router %d", node)
		if c.ProcessName != nil {
			name = c.ProcessName(int(node))
		}
		c.sep()
		c.writeString(fmt.Sprintf(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%s}}`, node, strconv.Quote(name)))
	}
	tid := int64(port) + 1
	key := int64(node)<<8 | tid
	if !c.threads[key] {
		c.threads[key] = true
		name := "control"
		if port >= 0 {
			name = fmt.Sprintf("port %d", port)
			if c.ThreadName != nil {
				name = c.ThreadName(int(port))
			}
		}
		c.sep()
		c.writeString(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`, node, tid, strconv.Quote(name)))
	}
}

// laneMeta names a campaign timeline (pid, tid) pair the first time it
// appears.
func (c *ChromeTrace) laneMeta(pid, tid int64, process, thread string) {
	key := pid<<32 | tid
	if c.lanes[key] {
		return
	}
	c.lanes[key] = true
	c.sep()
	c.writeString(fmt.Sprintf(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%s}}`, pid, strconv.Quote(process)))
	c.sep()
	c.writeString(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`, pid, tid, strconv.Quote(thread)))
}

// emitCampaign renders one campaign span event on its timeline lane.
func (c *ChromeTrace) emitCampaign(e Event) {
	var (
		pid, tid int64
		ph       byte
		name     string
		args     string
	)
	switch e.Kind {
	case CampaignBegin:
		pid, tid, ph = CampaignLanePID, 1, 'B'
		c.laneMeta(pid, tid, "campaign", "schedule")
		name = "campaign"
		args = fmt.Sprintf(`{"points":%d,"reps_total":%d}`, e.Aux, e.Aux2)
	case CampaignEnd:
		pid, tid, ph = CampaignLanePID, 1, 'E'
		name = "campaign"
		args = fmt.Sprintf(`{"reps_run":%d,"aborted":%t}`, e.Aux, e.Aux2 != 0)
	case CampaignPointBegin:
		pid, tid, ph = PointLanePID, int64(e.Aux)+1, 'B'
		c.laneMeta(pid, tid, "points", fmt.Sprintf("point %d", e.Aux))
		name = fmt.Sprintf("point %d", e.Aux)
		args = fmt.Sprintf(`{"point":%d}`, e.Aux)
	case CampaignPointEnd:
		pid, tid, ph = PointLanePID, int64(e.Aux)+1, 'E'
		name = fmt.Sprintf("point %d", e.Aux)
		args = fmt.Sprintf(`{"point":%d,"failed_reps":%d}`, e.Aux, e.Aux2)
	case CampaignRepBegin:
		pid, tid, ph = WorkerLanePID, int64(e.Node)+1, 'B'
		c.laneMeta(pid, tid, "workers", fmt.Sprintf("worker %d", e.Node))
		name = fmt.Sprintf("p%d r%d", e.Aux, e.PID)
		args = fmt.Sprintf(`{"point":%d,"rep":%d,"seed":%d}`, e.Aux, e.PID, e.Aux2)
	case CampaignRepEnd:
		pid, tid, ph = WorkerLanePID, int64(e.Node)+1, 'E'
		status := "ok"
		switch e.Seq {
		case RepStatusError:
			status = "error"
		case RepStatusAborted:
			status = "aborted"
		}
		name = fmt.Sprintf("r%d", e.PID)
		args = fmt.Sprintf(`{"rep":%d,"kernel_ticked":%d,"kernel_skipped":%d,"status":%q}`,
			e.PID, e.Aux, e.Aux2, status)
	}
	c.sep()
	c.writeString(fmt.Sprintf(`{"ph":"%c","name":%s,"pid":%d,"tid":%d,"ts":%d,"args":%s}`,
		ph, strconv.Quote(name), pid, tid, e.Cycle, args))
}

// Emit implements Sink.
func (c *ChromeTrace) Emit(e Event) {
	if c.err != nil {
		return
	}
	switch e.Kind {
	case CampaignBegin, CampaignEnd, CampaignPointBegin, CampaignPointEnd,
		CampaignRepBegin, CampaignRepEnd:
		c.emitCampaign(e)
		return
	}
	node := e.Node
	if node < 0 {
		node = -1 // fault accounting and other global events get pid -1
	}
	port := e.Port
	var ph byte
	switch e.Kind {
	case RecoveryBegin:
		ph, port = 'B', -1
	case RecoveryEnd:
		ph, port = 'E', -1
	default:
		ph = 'i'
	}
	c.meta(node, port)
	c.sep()

	b := c.buf[:0]
	b = append(b, `{"ph":"`...)
	b = append(b, ph)
	b = append(b, `","name":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","pid":`...)
	b = strconv.AppendInt(b, int64(node), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(port)+1, 10)
	b = append(b, `,"ts":`...)
	b = strconv.AppendUint(b, e.Cycle, 10)
	if ph == 'i' {
		b = append(b, `,"s":"t"`...)
	}
	b = append(b, `,"args":{"pid":`...)
	b = strconv.AppendUint(b, e.PID, 10)
	b = append(b, `,"vc":`...)
	b = strconv.AppendInt(b, int64(e.VC), 10)
	b = append(b, `,"seq":`...)
	b = strconv.AppendUint(b, uint64(e.Seq), 10)
	b = append(b, `,"aux":`...)
	b = strconv.AppendUint(b, e.Aux, 10)
	b = append(b, `}}`...)
	c.buf = b
	if _, err := c.w.Write(b); err != nil {
		c.err = err
	}
}

// Close terminates the JSON document, flushes it, and returns the first
// write error.
func (c *ChromeTrace) Close() error {
	c.writeString("\n]}\n")
	if err := c.w.Flush(); c.err == nil {
		c.err = err
	}
	return c.err
}
