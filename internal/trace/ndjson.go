package trace

import (
	"bufio"
	"io"
	"strconv"
)

// NDJSON streams events as newline-delimited JSON, one object per
// event, with a fixed field order so output is byte-deterministic for a
// given simulation seed. Lines look like:
//
//	{"cycle":412,"kind":"retransmit","node":5,"port":2,"vc":0,"pid":97,"seq":1,"aux":0}
//
// Writes are buffered; call Close to flush. Write errors are sticky and
// reported by Close (an event bus cannot propagate them mid-run).
type NDJSON struct {
	w   *bufio.Writer
	buf []byte
	err error
}

// NewNDJSON creates an NDJSON exporter writing to w.
func NewNDJSON(w io.Writer) *NDJSON {
	return &NDJSON{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 160)}
}

// Emit implements Sink.
func (s *NDJSON) Emit(e Event) {
	if s.err != nil {
		return
	}
	b := s.buf[:0]
	b = append(b, `{"cycle":`...)
	b = strconv.AppendUint(b, e.Cycle, 10)
	b = append(b, `,"kind":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","node":`...)
	b = strconv.AppendInt(b, int64(e.Node), 10)
	b = append(b, `,"port":`...)
	b = strconv.AppendInt(b, int64(e.Port), 10)
	b = append(b, `,"vc":`...)
	b = strconv.AppendInt(b, int64(e.VC), 10)
	b = append(b, `,"pid":`...)
	b = strconv.AppendUint(b, e.PID, 10)
	b = append(b, `,"seq":`...)
	b = strconv.AppendUint(b, uint64(e.Seq), 10)
	b = append(b, `,"aux":`...)
	b = strconv.AppendUint(b, e.Aux, 10)
	// aux2 appears only when set, so the simulator kinds' output (all
	// aux2-free) is byte-identical to the pre-aux2 format.
	if e.Aux2 != 0 {
		b = append(b, `,"aux2":`...)
		b = strconv.AppendUint(b, e.Aux2, 10)
	}
	b = append(b, '}', '\n')
	s.buf = b
	if _, err := s.w.Write(b); err != nil {
		s.err = err
	}
}

// Close flushes buffered output and returns the first write error.
func (s *NDJSON) Close() error {
	if err := s.w.Flush(); s.err == nil {
		s.err = err
	}
	return s.err
}
