package trace

import (
	"bufio"
	"io"
	"strconv"
)

// Metrics is the time-series half of the observability layer: a
// registry of named per-node gauges, snapshotted every Interval cycles
// into an NDJSON stream. The network registers one gauge set per router
// (VC-buffer occupancy, retransmission-buffer depth, cumulative credit
// stalls); callers may register more. Output lines look like:
//
//	{"cycle":400,"node":12,"metric":"vc-occupancy","value":0.41666666666666669}
//
// Gauges are read in registration order, which is deterministic, so the
// stream is byte-reproducible for a fixed seed. Call Close to flush.
type Metrics struct {
	interval uint64
	gauges   []gauge
	w        *bufio.Writer
	buf      []byte
	err      error
}

type gauge struct {
	node int
	name string
	fn   func() float64
}

// NewMetrics creates a registry sampling every interval cycles (0 or 1
// means every cycle) into w.
func NewMetrics(w io.Writer, interval uint64) *Metrics {
	if interval == 0 {
		interval = 1
	}
	return &Metrics{
		interval: interval,
		w:        bufio.NewWriterSize(w, 1<<16),
		buf:      make([]byte, 0, 128),
	}
}

// Interval returns the sampling period in cycles.
func (m *Metrics) Interval() uint64 { return m.interval }

// Register adds a gauge. fn is invoked at every sampling point; it must
// be cheap and must not mutate simulation state.
func (m *Metrics) Register(node int, name string, fn func() float64) {
	m.gauges = append(m.gauges, gauge{node: node, name: name, fn: fn})
}

// Tick samples every gauge when cycle lands on the interval. The
// network calls it once per simulated cycle.
func (m *Metrics) Tick(cycle uint64) {
	if cycle%m.interval != 0 || m.err != nil {
		return
	}
	for _, g := range m.gauges {
		b := m.buf[:0]
		b = append(b, `{"cycle":`...)
		b = strconv.AppendUint(b, cycle, 10)
		b = append(b, `,"node":`...)
		b = strconv.AppendInt(b, int64(g.node), 10)
		b = append(b, `,"metric":"`...)
		b = append(b, g.name...)
		b = append(b, `","value":`...)
		b = strconv.AppendFloat(b, g.fn(), 'g', -1, 64)
		b = append(b, '}', '\n')
		m.buf = b
		if _, err := m.w.Write(b); err != nil {
			m.err = err
			return
		}
	}
}

// Close flushes buffered output and returns the first write error.
func (m *Metrics) Close() error {
	if err := m.w.Flush(); m.err == nil {
		m.err = err
	}
	return m.err
}
