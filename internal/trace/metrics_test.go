package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// A gauge registered after sampling has begun simply joins subsequent
// sampling points — earlier lines are not retroactively rewritten and
// the registration order (hence the line order) stays deterministic.
func TestMetricsRegisterAfterFirstTick(t *testing.T) {
	var buf bytes.Buffer
	m := NewMetrics(&buf, 5)
	m.Register(0, "early", func() float64 { return 1 })
	m.Tick(5)
	m.Register(1, "late", func() float64 { return 2 })
	m.Tick(10)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 samples (early@5, early@10, late@10), got %d: %q", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], `"metric":"early"`) || !strings.Contains(lines[0], `"cycle":5`) {
		t.Errorf("line 0 wrong: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"metric":"early"`) || !strings.Contains(lines[2], `"metric":"late"`) {
		t.Errorf("registration order not preserved at cycle 10: %q", lines[1:])
	}
}

// Close is idempotent: the second call reports the same error state and
// must not panic or duplicate output.
func TestMetricsCloseIdempotent(t *testing.T) {
	var buf bytes.Buffer
	m := NewMetrics(&buf, 1)
	m.Register(0, "g", func() float64 { return 3 })
	m.Tick(1)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if buf.Len() != n {
		t.Fatalf("second Close wrote %d more bytes", buf.Len()-n)
	}
}

// errWriter fails after the first write, to exercise sticky errors.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 1 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestMetricsStickyWriteError(t *testing.T) {
	m := NewMetrics(&errWriter{}, 1)
	// A payload larger than the 64 KiB buffer forces flushes during Tick.
	big := strings.Repeat("x", 1<<16)
	m.Register(0, big, func() float64 { return 0 })
	m.Register(1, big, func() float64 { return 0 })
	for c := uint64(1); c <= 4; c++ {
		m.Tick(c)
	}
	if err := m.Close(); err == nil {
		t.Fatal("Close must surface the write error")
	}
}

// Interval 0 means "sample every cycle", including cycle 0 — the same
// contract Run relies on when the caller passes -metrics-every 0.
func TestMetricsIntervalZeroSamplesEveryCycle(t *testing.T) {
	var buf bytes.Buffer
	m := NewMetrics(&buf, 0)
	m.Register(0, "g", func() float64 { return 1 })
	for c := uint64(0); c < 3; c++ {
		m.Tick(c)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 samples, got %d: %q", len(lines), buf.String())
	}
}

// A registry with no gauges must still tick and close cleanly.
func TestMetricsNoGauges(t *testing.T) {
	var buf bytes.Buffer
	m := NewMetrics(&buf, 1)
	m.Tick(1)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("gauge-less registry wrote %q", buf.String())
	}
}
