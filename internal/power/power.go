// Package power models the energy and area of the router and its
// fault-tolerance additions. The paper obtained these numbers by
// synthesizing an RTL router in a TSMC 90 nm library (1 V, 500 MHz) and
// importing them into the network simulator (§2.2); we cannot run Design
// Compiler, so this package substitutes an analytical model calibrated to
// the paper's published synthesis results:
//
//   - generic 5-PC, 4-VC router: 119.55 mW, 0.374862 mm² (Table 1)
//   - Allocation Comparator:      2.02 mW (+1.69 %), 0.004474 mm² (+1.19 %)
//
// Component proportions follow the standard published breakdowns for
// VC routers of that era (input buffers dominate, then crossbar, then
// allocators); the absolute constants are fitted so that the paper's
// configuration reproduces Table 1 exactly. Per-event energies are chosen
// so a 4-flit message crossing an average 8x8-mesh path costs a few
// hundred pJ, matching the 0.2-0.8 nJ/message range of Figs. 7 and 13b.
package power

import (
	"ftnoc/internal/stats"
)

// FlitBits is the modelled flit width: a 64-bit content word plus 8
// SEC/DED check bits.
const FlitBits = 72

// Energy costs in picojoules per event, used to convert the simulator's
// event counts into energy. See the package comment for calibration.
const (
	pjBufWrite   = 3.5 // flit written into an input VC buffer
	pjBufRead    = 3.0 // flit read out of an input VC buffer
	pjXbar       = 5.0 // flit through the 5x5 crossbar
	pjLink       = 8.0 // flit across an inter-router link (1 mm wire)
	pjLocal      = 2.0 // flit across the short PE<->router channel
	pjVAArb      = 0.6 // one VC-allocator arbitration
	pjSAArb      = 0.4 // one switch-allocator arbitration
	pjRetransWr  = 1.2 // flit captured into a retransmission buffer
	pjRetransmit = 1.5 // extra control cost of a replayed flit
	pjNACK       = 0.3 // NACK handshake toggle
	pjCredit     = 0.2 // credit handshake toggle
	pjProbe      = 2.0 // deadlock probe/activation flit handling
	pjECCDecode  = 0.9 // SEC/DED syndrome computation
	pjECCFix     = 0.4 // correction mux activity
	pjACCheck    = 0.5 // Allocation Comparator evaluation
	pjRTCompute  = 0.5 // routing-unit computation
)

// Energy converts an event record into total dynamic energy in
// nanojoules.
func Energy(e stats.Events) float64 {
	pj := float64(e.BufWrites)*pjBufWrite +
		float64(e.BufReads)*pjBufRead +
		float64(e.XbTraversals)*pjXbar +
		float64(e.LinkTraversals)*pjLink +
		float64(e.LocalTraversals)*pjLocal +
		float64(e.VAAllocs)*pjVAArb +
		float64(e.SAAllocs)*pjSAArb +
		float64(e.RetransWrites)*pjRetransWr +
		float64(e.Retransmitted)*pjRetransmit +
		float64(e.NACKs)*pjNACK +
		float64(e.Credits)*pjCredit +
		float64(e.Probes)*pjProbe +
		float64(e.ECCDecodes)*pjECCDecode +
		float64(e.ECCCorrections)*pjECCFix +
		float64(e.ACChecks)*pjACCheck +
		float64(e.RTComputes)*pjRTCompute
	return pj / 1000
}

// EnergyPerMessage returns the average dynamic energy per delivered
// message in nanojoules — the metric of Figs. 7 and 13(b).
func EnergyPerMessage(e stats.Events, messages uint64) float64 {
	if messages == 0 {
		return 0
	}
	return Energy(e) / float64(messages)
}

// RouterConfig describes a router for the area/power estimator.
type RouterConfig struct {
	Ports    int // physical channels, including the PE port
	VCs      int // virtual channels per PC
	BufDepth int // flits per VC buffer
	// RetransDepth is the retransmission-buffer depth per VC (0 = no
	// fault tolerance; 3 for the paper's scheme; 6 with the duplicate
	// buffers of §4.5).
	RetransDepth int
	// AC includes the Allocation Comparator.
	AC bool
}

// PaperRouter is the configuration the paper synthesized for Table 1.
func PaperRouter() RouterConfig {
	return RouterConfig{Ports: 5, VCs: 4, BufDepth: 4, RetransDepth: 0, AC: false}
}

// Calibration: the analytical model is anchored to the paper's published
// synthesis of the generic 5-PC, 4-VC router (Table 1): 119.55 mW and
// 0.374862 mm². Component proportions follow the standard breakdowns for
// early-2000s VC routers: input buffers dominate, then the crossbar, then
// the allocators, with routing/control/handshake as the remainder.
const (
	paperAreaMM2 = 0.374862
	paperPowerMW = 119.55

	fracAreaBuf   = 0.60
	fracAreaXbar  = 0.20
	fracAreaArb   = 0.05
	fracAreaFixed = 0.15

	fracPowBuf   = 0.55
	fracPowXbar  = 0.25
	fracPowArb   = 0.08
	fracPowFixed = 0.12
)

// structure returns the raw element counts of a router configuration:
// buffer bits (including retransmission buffers), crossbar crosspoints
// (per bit), arbiter request terms, and ports.
func structure(c RouterConfig) (bufBits, xbarPts, arbTerms, ports float64) {
	bufBits = float64(c.Ports*c.VCs*(c.BufDepth+c.RetransDepth)) * FlitBits
	xbarPts = float64(c.Ports*c.Ports) * FlitBits
	arbTerms = float64(c.Ports*c.VCs*c.Ports*c.VCs) + float64(c.Ports*c.Ports*c.VCs)
	ports = float64(c.Ports)
	return bufBits, xbarPts, arbTerms, ports
}

// paperBasis returns the element counts of the synthesized Table 1 router.
func paperBasis() (bufBits, xbarPts, arbTerms, ports float64) {
	return structure(PaperRouter())
}

// Area returns the estimated router area in mm².
func Area(c RouterConfig) float64 {
	pb, px, pa, pp := paperBasis()
	b, x, ar, p := structure(c)
	a := paperAreaMM2 * (fracAreaBuf*b/pb + fracAreaXbar*x/px + fracAreaArb*ar/pa + fracAreaFixed*p/pp)
	if c.AC {
		a += ACArea(c)
	}
	return a
}

// Power returns the estimated router power in mW at the paper's operating
// point (1 V, 500 MHz, typical activity).
func Power(c RouterConfig) float64 {
	pb, px, pa, pp := paperBasis()
	b, x, ar, p := structure(c)
	w := paperPowerMW * (fracPowBuf*b/pb + fracPowXbar*x/px + fracPowArb*ar/pa + fracPowFixed*p/pp)
	if c.AC {
		w += ACPower(c)
	}
	return w
}

// Published AC unit costs (Table 1) for the 20-entry comparator of the
// synthesized router; the model scales them linearly in the entry count.
const (
	paperACAreaMM2 = 0.004474
	paperACPowerMW = 2.02
	paperACEntries = 20
)

// ACArea returns the Allocation Comparator's area in mm². The unit
// compares PV state entries of a few bits each (§4.1); its size scales
// with the entry count.
func ACArea(c RouterConfig) float64 {
	return float64(Entries(c)) * paperACAreaMM2 / paperACEntries
}

// ACPower returns the Allocation Comparator's power in mW.
func ACPower(c RouterConfig) float64 {
	return float64(Entries(c)) * paperACPowerMW / paperACEntries
}

// Entries is the number of AC state entries for a configuration: PV.
func Entries(c RouterConfig) int { return c.Ports * c.VCs }

// Overhead describes a component's cost relative to a baseline router:
// the shape of Table 1.
type Overhead struct {
	BasePowerMW float64
	BaseAreaMM2 float64
	AddPowerMW  float64
	AddAreaMM2  float64
}

// PowerPct returns the power overhead in percent.
func (o Overhead) PowerPct() float64 { return o.AddPowerMW / o.BasePowerMW * 100 }

// AreaPct returns the area overhead in percent.
func (o Overhead) AreaPct() float64 { return o.AddAreaMM2 / o.BaseAreaMM2 * 100 }

// ACOverhead reproduces Table 1: the Allocation Comparator's power and
// area against the generic router.
func ACOverhead(c RouterConfig) Overhead {
	return Overhead{
		BasePowerMW: Power(c),
		BaseAreaMM2: Area(c),
		AddPowerMW:  ACPower(c),
		AddAreaMM2:  ACArea(c),
	}
}

// RetransOverhead quantifies the retransmission buffers' cost (an
// ablation the paper argues is subsidised by their deadlock-recovery
// double duty).
func RetransOverhead(c RouterConfig, depth int) Overhead {
	with := c
	with.RetransDepth = depth
	return Overhead{
		BasePowerMW: Power(c),
		BaseAreaMM2: Area(c),
		AddPowerMW:  Power(with) - Power(c),
		AddAreaMM2:  Area(with) - Area(c),
	}
}
