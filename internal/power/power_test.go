package power

import (
	"math"
	"testing"

	"ftnoc/internal/stats"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Table 1 of the paper: the calibrated model must return the published
// synthesis numbers for the synthesized configuration.
func TestTable1Calibration(t *testing.T) {
	c := PaperRouter()
	if got := Power(c); !approx(got, 119.55, 0.01) {
		t.Errorf("router power = %.3f mW, want 119.55", got)
	}
	if got := Area(c); !approx(got, 0.374862, 1e-5) {
		t.Errorf("router area = %.6f mm², want 0.374862", got)
	}
	if got := ACPower(c); !approx(got, 2.02, 0.001) {
		t.Errorf("AC power = %.3f mW, want 2.02", got)
	}
	if got := ACArea(c); !approx(got, 0.004474, 1e-6) {
		t.Errorf("AC area = %.6f mm², want 0.004474", got)
	}
	ov := ACOverhead(c)
	if !approx(ov.PowerPct(), 1.69, 0.01) {
		t.Errorf("AC power overhead = %.2f%%, want 1.69%%", ov.PowerPct())
	}
	if !approx(ov.AreaPct(), 1.19, 0.01) {
		t.Errorf("AC area overhead = %.2f%%, want 1.19%%", ov.AreaPct())
	}
}

func TestAreaPowerMonotonicity(t *testing.T) {
	base := PaperRouter()
	bigger := []RouterConfig{
		{Ports: 5, VCs: 8, BufDepth: 4},
		{Ports: 5, VCs: 4, BufDepth: 8},
		{Ports: 7, VCs: 4, BufDepth: 4},
		{Ports: 5, VCs: 4, BufDepth: 4, RetransDepth: 3},
	}
	for _, c := range bigger {
		if Area(c) <= Area(base) {
			t.Errorf("config %+v area %.4f not > base %.4f", c, Area(c), Area(base))
		}
		if Power(c) <= Power(base) {
			t.Errorf("config %+v power %.2f not > base %.2f", c, Power(c), Power(base))
		}
	}
}

func TestACScalesWithEntries(t *testing.T) {
	small := RouterConfig{Ports: 5, VCs: 2, BufDepth: 4}
	big := RouterConfig{Ports: 5, VCs: 8, BufDepth: 4}
	if ACArea(small) >= ACArea(big) || ACPower(small) >= ACPower(big) {
		t.Error("AC cost does not scale with entry count")
	}
	if Entries(PaperRouter()) != 20 {
		t.Errorf("paper router entries = %d, want 20 (5x4)", Entries(PaperRouter()))
	}
}

func TestDuplicateRetransDoublesBufferCost(t *testing.T) {
	c := PaperRouter()
	single := RetransOverhead(c, 3)
	double := RetransOverhead(c, 6)
	if !approx(double.AddAreaMM2, 2*single.AddAreaMM2, 1e-9) {
		t.Errorf("duplicate buffers area %.6f != 2x single %.6f", double.AddAreaMM2, single.AddAreaMM2)
	}
	if !approx(double.AddPowerMW, 2*single.AddPowerMW, 1e-9) {
		t.Errorf("duplicate buffers power %.4f != 2x single %.4f", double.AddPowerMW, single.AddPowerMW)
	}
}

func TestEnergyZeroForNoEvents(t *testing.T) {
	if Energy(stats.Events{}) != 0 {
		t.Fatal("zero events produced nonzero energy")
	}
	if EnergyPerMessage(stats.Events{}, 0) != 0 {
		t.Fatal("EnergyPerMessage with zero messages not 0")
	}
}

func TestEnergyAdditive(t *testing.T) {
	a := stats.Events{LinkTraversals: 10, BufWrites: 5}
	b := stats.Events{LinkTraversals: 3, XbTraversals: 7}
	sum := a
	sum.Add(b)
	if !approx(Energy(sum), Energy(a)+Energy(b), 1e-12) {
		t.Fatalf("energy not additive: %v vs %v", Energy(sum), Energy(a)+Energy(b))
	}
}

// A nominal message on the paper's platform must land in the 0.2-0.8 nJ
// range of Figs. 7 and 13(b): ~5.3 hops, 4 flits, plus injection/ejection.
func TestEnergyPerMessageMagnitude(t *testing.T) {
	var e stats.Events
	const flits, hops = 4, 5
	e.LinkTraversals = flits * hops
	e.LocalTraversals = flits * 2
	e.BufWrites = flits * (hops + 2)
	e.BufReads = flits * (hops + 2)
	e.XbTraversals = flits * (hops + 1)
	e.RetransWrites = flits * hops
	e.Credits = flits * (hops + 2)
	e.ECCDecodes = flits * hops
	e.VAAllocs = hops + 1
	e.SAAllocs = flits * (hops + 1) * 2
	e.RTComputes = hops + 1
	got := EnergyPerMessage(e, 1)
	if got < 0.2 || got > 0.8 {
		t.Fatalf("energy per message = %.3f nJ, want within the paper's 0.2-0.8 nJ band", got)
	}
}
