// Package obs is the service-layer metrics library: a stdlib-only
// registry of counters, gauges and fixed-bucket histograms with a
// Prometheus text-format (v0.0.4) encoder, built for long-running
// daemons (cmd/nocd) rather than for the simulation hot path — the
// simulator's own observability stays in package trace.
//
// Design constraints:
//
//   - No dependencies. The repo takes no third-party modules; the
//     encoder implements exactly the slice of the exposition format a
//     Prometheus (or compatible) scraper needs: HELP/TYPE headers,
//     label escaping, histogram _bucket/_sum/_count expansion.
//   - Cheap when unscraped. Series updates are single atomics (a CAS
//     loop for float adds); no update allocates after the series has
//     been interned, so instrumented code paths cost nanoseconds
//     whether or not anything ever scrapes /metrics. Func-backed
//     families are read only at encode time.
//   - Deterministic output. Families encode sorted by name and series
//     sorted by label values, so two scrapes of identical state are
//     byte-identical — scrape output is testable with string equality.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// kind is a family's Prometheus metric type.
type kind uint8

const (
	counterKind kind = iota + 1
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	}
	return "untyped"
}

// family is one named metric with its labelled series.
type family struct {
	name   string
	help   string
	kind   kind
	labels []string

	mu     sync.Mutex
	series map[string]*series // key: joined label values
	// fn, when non-nil, makes this a single-series family whose value is
	// read at encode time (queue depth, goroutine count, ...).
	fn func() float64

	buckets []float64 // histogram upper bounds, ascending, no +Inf
}

// series is one (label-values, value) pair. Counter and gauge values
// live in bits (counters as float64 too, so Add(0.5) is representable;
// in practice every counter here increments integrally). Histograms use
// counts/sum/total.
type series struct {
	labelVals []string

	bits atomic.Uint64 // counter/gauge: math.Float64bits of the value

	counts []atomic.Uint64 // histogram: per-bucket (non-cumulative) counts
	inf    atomic.Uint64   // histogram: observations above the last bound
	sum    atomic.Uint64   // histogram: float bits of the sum
	total  atomic.Uint64   // histogram: observation count
}

func (s *series) addFloat(v float64) {
	for {
		old := s.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Registry holds metric families and encodes them for scraping. The
// zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register interns a family, panicking on a name reused with a
// different shape — metric names are programmer-chosen constants, so a
// clash is a bug, not an input error.
func (r *Registry) register(name, help string, k kind, labels []string, buckets []float64, fn func() float64) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different type or label set", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: k, labels: labels,
		series: make(map[string]*series), fn: fn, buckets: buckets,
	}
	r.families[name] = f
	return f
}

// Counter registers (or returns) an unlabelled monotonic counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, counterKind, nil, nil, nil)
	return &Counter{s: f.intern(nil)}
}

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, counterKind, labels, nil, nil)}
}

// CounterFunc registers a counter whose value is read from fn at encode
// time — for mirroring a monotonic total owned elsewhere (a cache's hit
// count) without double accounting.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, counterKind, nil, nil, fn)
}

// Gauge registers (or returns) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, gaugeKind, nil, nil, nil)
	return &Gauge{s: f.intern(nil)}
}

// GaugeVec registers a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, gaugeKind, labels, nil, nil)}
}

// GaugeFunc registers a gauge read from fn at encode time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, gaugeKind, nil, nil, fn)
}

// Histogram registers an unlabelled fixed-bucket histogram. Bounds must
// be ascending; +Inf is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, histogramKind, nil, checkBuckets(buckets), nil)
	return &Histogram{s: f.intern(nil), buckets: f.buckets}
}

// HistogramVec registers a histogram family with the given label names.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, histogramKind, labels, checkBuckets(buckets), nil)}
}

func checkBuckets(buckets []float64) []float64 {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i] > buckets[i-1]) {
			panic("obs: histogram buckets must be strictly ascending")
		}
	}
	if math.IsInf(buckets[len(buckets)-1], +1) {
		buckets = buckets[:len(buckets)-1] // +Inf is implicit
	}
	return buckets
}

// DefBuckets is the default latency bucket ladder, in seconds.
var DefBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60}

// intern returns the series for the given label values, creating it on
// first use.
func (f *family) intern(labelVals []string) *series {
	if len(labelVals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q used with %d label values, want %d", f.name, len(labelVals), len(f.labels)))
	}
	key := strings.Join(labelVals, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelVals: append([]string(nil), labelVals...)}
	if f.kind == histogramKind {
		s.counts = make([]atomic.Uint64, len(f.buckets))
	}
	f.series[key] = s
	return s
}

// Counter is a monotonically increasing series.
type Counter struct{ s *series }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increments by v; negative deltas panic (counters are monotonic).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("obs: counter decremented")
	}
	c.s.addFloat(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.s.bits.Load()) }

// CounterVec is a labelled counter family.
type CounterVec struct{ f *family }

// With returns the series for the given label values (interned: a
// repeated With is a map lookup, no allocation).
func (v *CounterVec) With(labelVals ...string) *Counter {
	return &Counter{s: v.f.intern(labelVals)}
}

// Gauge is a series that can go up and down.
type Gauge struct{ s *series }

// Set stores v.
func (g *Gauge) Set(v float64) { g.s.bits.Store(math.Float64bits(v)) }

// Add increments by v (negative to decrement).
func (g *Gauge) Add(v float64) { g.s.addFloat(v) }

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.bits.Load()) }

// GaugeVec is a labelled gauge family.
type GaugeVec struct{ f *family }

// With returns the series for the given label values.
func (v *GaugeVec) With(labelVals ...string) *Gauge {
	return &Gauge{s: v.f.intern(labelVals)}
}

// Histogram is a fixed-bucket distribution.
type Histogram struct {
	s       *series
	buckets []float64
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v) // first bound >= v
	if i < len(h.buckets) {
		h.s.counts[i].Add(1)
	} else {
		h.s.inf.Add(1)
	}
	h.s.total.Add(1)
	for {
		old := h.s.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.s.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.s.total.Load() }

// HistogramVec is a labelled histogram family.
type HistogramVec struct{ f *family }

// With returns the series for the given label values.
func (v *HistogramVec) With(labelVals ...string) *Histogram {
	return &Histogram{s: v.f.intern(labelVals), buckets: v.f.buckets}
}
