package obs

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the HTTP Content-Type for the encoder's output.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText encodes every family in the Prometheus text exposition
// format (v0.0.4): families sorted by name, series sorted by label
// values, histograms expanded to cumulative _bucket/_sum/_count. The
// output for identical registry state is byte-identical.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	families := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		families = append(families, f)
	}
	r.mu.Unlock()
	sort.Slice(families, func(i, j int) bool { return families[i].name < families[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range families {
		f.writeText(bw)
	}
	return bw.Flush()
}

func (f *family) writeText(w *bufio.Writer) {
	w.WriteString("# HELP ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(escapeHelp(f.help))
	w.WriteString("\n# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.kind.String())
	w.WriteByte('\n')

	if f.fn != nil {
		w.WriteString(f.name)
		w.WriteByte(' ')
		w.WriteString(formatValue(f.fn()))
		w.WriteByte('\n')
		return
	}

	f.mu.Lock()
	all := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		all = append(all, s)
	}
	f.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		return strings.Join(all[i].labelVals, "\x00") < strings.Join(all[j].labelVals, "\x00")
	})

	for _, s := range all {
		switch f.kind {
		case histogramKind:
			f.writeHistogram(w, s)
		default:
			w.WriteString(f.name)
			writeLabels(w, f.labels, s.labelVals, "")
			w.WriteByte(' ')
			w.WriteString(formatValue(math.Float64frombits(s.bits.Load())))
			w.WriteByte('\n')
		}
	}
}

// writeHistogram expands one series into cumulative le-buckets plus the
// _sum and _count samples.
func (f *family) writeHistogram(w *bufio.Writer, s *series) {
	var cum uint64
	for i, bound := range f.buckets {
		cum += s.counts[i].Load()
		w.WriteString(f.name)
		w.WriteString("_bucket")
		writeLabels(w, f.labels, s.labelVals, formatValue(bound))
		w.WriteByte(' ')
		w.WriteString(strconv.FormatUint(cum, 10))
		w.WriteByte('\n')
	}
	cum += s.inf.Load()
	w.WriteString(f.name)
	w.WriteString("_bucket")
	writeLabels(w, f.labels, s.labelVals, "+Inf")
	w.WriteByte(' ')
	w.WriteString(strconv.FormatUint(cum, 10))
	w.WriteByte('\n')

	w.WriteString(f.name)
	w.WriteString("_sum")
	writeLabels(w, f.labels, s.labelVals, "")
	w.WriteByte(' ')
	w.WriteString(formatValue(math.Float64frombits(s.sum.Load())))
	w.WriteByte('\n')

	w.WriteString(f.name)
	w.WriteString("_count")
	writeLabels(w, f.labels, s.labelVals, "")
	w.WriteByte(' ')
	w.WriteString(strconv.FormatUint(s.total.Load(), 10))
	w.WriteByte('\n')
}

// writeLabels renders {k="v",...}, appending le when non-empty. Nothing
// is written for a label-less sample without le.
func writeLabels(w *bufio.Writer, names, vals []string, le string) {
	if len(names) == 0 && le == "" {
		return
	}
	w.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(n)
		w.WriteString(`="`)
		w.WriteString(escapeLabel(vals[i]))
		w.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			w.WriteByte(',')
		}
		w.WriteString(`le="`)
		w.WriteString(le)
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

// formatValue renders a sample value: shortest round-trip float, with
// the infinities spelled the way the exposition format wants them.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var (
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }
