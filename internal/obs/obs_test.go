package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return sb.String()
}

func TestCounterAndGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Total jobs.")
	c.Inc()
	c.Add(2)
	g := r.Gauge("queue_depth", "Jobs waiting.")
	g.Set(4)
	g.Dec()

	got := scrape(t, r)
	for _, want := range []string{
		"# HELP jobs_total Total jobs.\n# TYPE jobs_total counter\njobs_total 3\n",
		"# HELP queue_depth Jobs waiting.\n# TYPE queue_depth gauge\nqueue_depth 3\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
}

func TestLabelledSeriesSortedAndEscaped(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http_requests_total", "Requests.", "route", "status")
	v.With("/v1/b", "200").Add(2)
	v.With("/v1/a", "500").Inc()
	v.With(`q"\`+"\n", "200").Inc()

	got := scrape(t, r)
	iA := strings.Index(got, `http_requests_total{route="/v1/a",status="500"} 1`)
	iB := strings.Index(got, `http_requests_total{route="/v1/b",status="200"} 2`)
	if iA < 0 || iB < 0 || iA > iB {
		t.Fatalf("series missing or unsorted:\n%s", got)
	}
	if !strings.Contains(got, `route="q\"\\\n"`) {
		t.Errorf("label escaping wrong:\n%s", got)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	got := scrape(t, r)
	for _, want := range []string{
		`latency_seconds_bucket{le="0.1"} 2`, // 0.05 and the equal-to-bound 0.1
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		`latency_seconds_sum 55.65`,
		`latency_seconds_count 5`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count() = %d, want 5", h.Count())
	}
}

func TestFuncFamiliesReadAtScrapeTime(t *testing.T) {
	r := NewRegistry()
	n := 0.0
	r.GaugeFunc("goroutines", "Now.", func() float64 { n++; return n })
	r.CounterFunc("hits_total", "Mirrored.", func() float64 { return 42 })

	if got := scrape(t, r); !strings.Contains(got, "goroutines 1\n") {
		t.Fatalf("first scrape:\n%s", got)
	}
	got := scrape(t, r)
	if !strings.Contains(got, "goroutines 2\n") || !strings.Contains(got, "hits_total 42\n") {
		t.Fatalf("second scrape:\n%s", got)
	}
}

func TestDeterministicOutput(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.CounterVec("b_total", "B.", "x").With("1").Inc()
		r.Gauge("a", "A.").Set(7)
		r.Histogram("c_seconds", "C.", []float64{1}).Observe(0.5)
		return r
	}
	if a, b := scrape(t, build()), scrape(t, build()); a != b {
		t.Fatalf("scrapes differ:\n%s\n---\n%s", a, b)
	}
	// Families are name-sorted: a before b_total before c_seconds.
	got := scrape(t, build())
	if !(strings.Index(got, "# TYPE a ") < strings.Index(got, "# TYPE b_total ") &&
		strings.Index(got, "# TYPE b_total ") < strings.Index(got, "# TYPE c_seconds ")) {
		t.Fatalf("families not name-sorted:\n%s", got)
	}
}

func TestSpecialValues(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("inf", "Inf.", func() float64 { return math.Inf(1) })
	got := scrape(t, r)
	if !strings.Contains(got, "inf +Inf\n") {
		t.Errorf("infinity rendering:\n%s", got)
	}
}

func TestReRegisterSameShapeSharesState(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.").Add(3)
	r.Counter("x_total", "X.").Inc()
	if got := scrape(t, r); !strings.Contains(got, "x_total 4\n") {
		t.Fatalf("re-registration did not share state:\n%s", got)
	}

	defer func() {
		if recover() == nil {
			t.Error("re-registering with a different type should panic")
		}
	}()
	r.Gauge("x_total", "X.")
}

func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "N.")
	v := r.CounterVec("m_total", "M.", "w")
	h := r.Histogram("d_seconds", "D.", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lab := string(rune('a' + w))
			for i := 0; i < 1000; i++ {
				c.Inc()
				v.With(lab).Inc()
				h.Observe(float64(i) / 1000)
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sb strings.Builder
			_ = r.WriteText(&sb)
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %v, want 8000 (lost updates)", got)
	}
	if got := h.Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}
