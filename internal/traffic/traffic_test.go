package traffic

import (
	"math"
	"testing"

	"ftnoc/internal/flit"
	"ftnoc/internal/sim"
	"ftnoc/internal/topology"
)

func mesh8() *topology.Topology { return topology.New(topology.Mesh, 8, 8) }

func TestInjectionRateAccuracy(t *testing.T) {
	const rate, size, cycles = 0.25, 4, 100_000
	src := NewSource(0, mesh8(), UniformRandom, rate, size, sim.NewRNG(1))
	injected := 0
	for i := 0; i < cycles; i++ {
		if _, ok := src.Tick(); ok {
			injected++
		}
	}
	want := rate / size * cycles
	if math.Abs(float64(injected)-want) > want*0.02 {
		t.Fatalf("injected %d packets over %d cycles, want ~%.0f", injected, cycles, want)
	}
}

func TestInjectionIsRegular(t *testing.T) {
	// The paper specifies regular intervals: with rate 0.2 and 4-flit
	// packets, packets should arrive every 20 cycles exactly (after the
	// random phase).
	src := NewSource(3, mesh8(), UniformRandom, 0.2, 4, sim.NewRNG(7))
	var times []int
	for i := 0; i < 500; i++ {
		if _, ok := src.Tick(); ok {
			times = append(times, i)
		}
	}
	if len(times) < 3 {
		t.Fatalf("too few injections: %v", times)
	}
	for i := 2; i < len(times); i++ {
		gap := times[i] - times[i-1]
		if gap != 20 {
			t.Fatalf("irregular gap %d at injection %d (times %v)", gap, i, times[:i+1])
		}
	}
}

func TestZeroRateNeverInjects(t *testing.T) {
	src := NewSource(0, mesh8(), UniformRandom, 0, 4, sim.NewRNG(1))
	for i := 0; i < 1000; i++ {
		if _, ok := src.Tick(); ok {
			t.Fatal("zero-rate source injected")
		}
	}
}

func TestUniformRandomDestinations(t *testing.T) {
	src := NewSource(10, mesh8(), UniformRandom, 1, 2, sim.NewRNG(3))
	counts := map[flit.NodeID]int{}
	for i := 0; i < 63_000; i++ {
		if d, ok := src.Tick(); ok {
			if d == 10 {
				t.Fatal("uniform random chose self")
			}
			counts[d]++
		}
	}
	if len(counts) != 63 {
		t.Fatalf("uniform random hit %d destinations, want 63", len(counts))
	}
	for d, c := range counts {
		if c < 350 || c > 650 {
			t.Errorf("destination %d drawn %d times; badly skewed", d, c)
		}
	}
}

func TestBitComplement(t *testing.T) {
	topo := mesh8()
	cases := map[flit.NodeID]flit.NodeID{0: 63, 63: 0, 1: 62, 21: 42}
	for src, want := range cases {
		s := NewSource(src, topo, BitComplement, 1, 2, sim.NewRNG(1))
		d, ok := s.Tick()
		if !ok || d != want {
			t.Errorf("BC from %d = %d,%v, want %d", src, d, ok, want)
		}
	}
}

func TestTornado(t *testing.T) {
	topo := mesh8()
	// Tornado on an 8-wide mesh: dx = (x + 3) mod 8, same row.
	s := NewSource(0, topo, Tornado, 1, 2, sim.NewRNG(1))
	if d, ok := s.Tick(); !ok || d != 3 {
		t.Errorf("TN from 0 = %d,%v, want 3", d, ok)
	}
	s = NewSource(9, topo, Tornado, 1, 2, sim.NewRNG(1)) // (1,1) -> (4,1) = 12
	if d, ok := s.Tick(); !ok || d != 12 {
		t.Errorf("TN from 9 = %d,%v, want 12", d, ok)
	}
}

func TestTranspose(t *testing.T) {
	topo := mesh8()
	s := NewSource(topo.IDOf(topology.Coord{X: 2, Y: 5}), topo, Transpose, 1, 2, sim.NewRNG(1))
	want := topo.IDOf(topology.Coord{X: 5, Y: 2})
	if d, ok := s.Tick(); !ok || d != want {
		t.Errorf("TP = %d,%v, want %d", d, ok, want)
	}
	// Diagonal nodes never inject.
	diag := NewSource(topo.IDOf(topology.Coord{X: 3, Y: 3}), topo, Transpose, 1, 2, sim.NewRNG(1))
	for i := 0; i < 100; i++ {
		if _, ok := diag.Tick(); ok {
			t.Fatal("diagonal transpose node injected")
		}
	}
}

func TestShuffle(t *testing.T) {
	topo := mesh8()
	// 64 nodes = 6 address bits; shuffle rotates left: 0b000001 -> 0b000010.
	s := NewSource(1, topo, Shuffle, 1, 2, sim.NewRNG(1))
	if d, ok := s.Tick(); !ok || d != 2 {
		t.Errorf("SH from 1 = %d,%v, want 2", d, ok)
	}
	// 0b100000 (32) -> 0b000001 (1).
	s = NewSource(32, topo, Shuffle, 1, 2, sim.NewRNG(1))
	if d, ok := s.Tick(); !ok || d != 1 {
		t.Errorf("SH from 32 = %d,%v, want 1", d, ok)
	}
}

func TestHotspotFraction(t *testing.T) {
	src := NewSource(10, mesh8(), Hotspot, 1, 2, sim.NewRNG(5))
	hot := 0
	n := 0
	for i := 0; i < 50_000; i++ {
		if d, ok := src.Tick(); ok {
			n++
			if d == 0 {
				hot++
			}
		}
	}
	frac := float64(hot) / float64(n)
	// HotspotFraction plus the uniform share that happens to hit node 0.
	want := HotspotFraction + (1-HotspotFraction)/63
	if math.Abs(frac-want) > 0.02 {
		t.Fatalf("hotspot fraction %.3f, want ~%.3f", frac, want)
	}
}

func TestPatternString(t *testing.T) {
	want := map[Pattern]string{
		UniformRandom: "NR", BitComplement: "BC", Tornado: "TN",
		Transpose: "TP", Shuffle: "SH", Hotspot: "HS",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q want %q", p, p.String(), s)
		}
	}
}

func TestSourcePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewSource(0, mesh8(), UniformRandom, -1, 4, sim.NewRNG(1)) },
		func() { NewSource(0, mesh8(), UniformRandom, 0.5, 0, sim.NewRNG(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad source construction did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestPhaseStagger(t *testing.T) {
	// Two sources with different RNG streams must not inject on identical
	// cycles (phase staggering prevents chip-wide synchronisation).
	a := NewSource(0, mesh8(), UniformRandom, 0.2, 4, sim.NewRNG(1).Split())
	b := NewSource(1, mesh8(), UniformRandom, 0.2, 4, sim.NewRNG(2).Split())
	same, total := 0, 0
	for i := 0; i < 2000; i++ {
		_, oka := a.Tick()
		_, okb := b.Tick()
		if oka {
			total++
			if okb {
				same++
			}
		}
	}
	if total > 10 && same == total {
		t.Fatal("sources are phase-locked")
	}
}
