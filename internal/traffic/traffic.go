// Package traffic implements the paper's workload model (§2.2): every
// node injects fixed-size messages at regular intervals set by the
// injection rate (flits/node/cycle), with destinations drawn from one of
// three spatial distributions — normal random (NR), bit-complement (BC)
// and tornado (TN) — plus transpose, shuffle and hotspot as extensions.
package traffic

import (
	"fmt"
	"math/bits"
	"strings"

	"ftnoc/internal/flit"
	"ftnoc/internal/sim"
	"ftnoc/internal/topology"
)

// Pattern selects the destination distribution.
type Pattern uint8

// Destination patterns. NR, BC and TN are the paper's three; the rest are
// classic additions from the interconnection-network literature [19, 23].
const (
	// UniformRandom (NR): uniform over all nodes except the source.
	UniformRandom Pattern = iota + 1
	// BitComplement (BC): node i sends to ~i (within the address width).
	BitComplement
	// Tornado (TN): half-ring offset along the X dimension.
	Tornado
	// Transpose: (x, y) sends to (y, x); diagonal nodes stay silent.
	Transpose
	// Shuffle: address rotated left by one bit.
	Shuffle
	// Hotspot: uniform random, but a fixed fraction targets node 0.
	Hotspot
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case UniformRandom:
		return "NR"
	case BitComplement:
		return "BC"
	case Tornado:
		return "TN"
	case Transpose:
		return "TP"
	case Shuffle:
		return "SH"
	case Hotspot:
		return "HS"
	default:
		return fmt.Sprintf("Pattern(%d)", uint8(p))
	}
}

// ParsePattern maps a pattern mnemonic (NR, BC, TN, TP, SH, HS —
// case-insensitive) to its Pattern.
func ParsePattern(s string) (Pattern, error) {
	switch strings.ToUpper(s) {
	case "NR":
		return UniformRandom, nil
	case "BC":
		return BitComplement, nil
	case "TN":
		return Tornado, nil
	case "TP":
		return Transpose, nil
	case "SH":
		return Shuffle, nil
	case "HS":
		return Hotspot, nil
	default:
		return 0, fmt.Errorf("unknown pattern %q (want NR, BC, TN, TP, SH or HS)", s)
	}
}

// HotspotFraction is the share of Hotspot traffic aimed at the hot node.
const HotspotFraction = 0.2

// Source produces one node's injection process: a deterministic
// rate-accumulator (the paper's "regular intervals"), phase-staggered per
// node so injections do not synchronise across the chip.
type Source struct {
	node    flit.NodeID
	topo    *topology.Topology
	pattern Pattern
	// perCycle is the packet injection probability-mass accumulated each
	// cycle: rate / packetSize.
	perCycle float64
	acc      float64
	rng      *sim.RNG
}

// NewSource creates the injection process for one node. rate is in
// flits/node/cycle; packetSize converts it to packets.
func NewSource(node flit.NodeID, topo *topology.Topology, pattern Pattern, rate float64, packetSize int, rng *sim.RNG) *Source {
	if rate < 0 {
		panic("traffic: negative injection rate")
	}
	if packetSize < 1 {
		panic("traffic: packet size must be >= 1")
	}
	return &Source{
		node:     node,
		topo:     topo,
		pattern:  pattern,
		perCycle: rate / float64(packetSize),
		acc:      rng.Float64(), // random phase
		rng:      rng,
	}
}

// Tick advances one cycle and reports whether a packet should be injected
// now, and to which destination. ok is false on non-injection cycles and
// for pattern fixed points (e.g. transpose diagonals).
func (s *Source) Tick() (dst flit.NodeID, ok bool) {
	s.acc += s.perCycle
	if s.acc < 1 {
		return 0, false
	}
	s.acc--
	d := s.dest()
	if d == s.node {
		return 0, false
	}
	return d, true
}

// Skip advances the accumulator by k non-injecting cycles, replaying
// exactly the additions Tick would have performed — so a caller that
// skipped k idle cycles ends up with a bit-identical accumulator. It must
// only be called for cycles known not to reach the injection threshold
// (see NextCrossing): a crossing cycle draws a destination from the RNG,
// which Skip deliberately does not.
func (s *Source) Skip(k uint64) {
	for i := uint64(0); i < k; i++ {
		s.acc += s.perCycle
	}
}

// NextCrossing predicts when the source next reaches the injection
// threshold: the k-th future Tick (k >= 1) is the first to attempt an
// injection. The prediction replays the accumulator's exact float
// additions rather than dividing, so it agrees bit-for-bit with what Tick
// will do. The search is capped at limit: (limit, false) means cycles
// 1..limit-1 are all sub-threshold — the caller may sleep that long and
// ask again. A zero-rate source returns (0, false): it never crosses.
func (s *Source) NextCrossing(limit uint64) (k uint64, crosses bool) {
	if s.perCycle <= 0 {
		return 0, false
	}
	acc := s.acc
	for k = 1; k < limit; k++ {
		acc += s.perCycle
		if acc >= 1 {
			return k, true
		}
	}
	return limit, false
}

// dest draws a destination per the configured pattern.
func (s *Source) dest() flit.NodeID {
	n := s.topo.Nodes()
	switch s.pattern {
	case UniformRandom:
		d := flit.NodeID(s.rng.Intn(n - 1))
		if d >= s.node {
			d++
		}
		return d
	case BitComplement:
		if n&(n-1) == 0 {
			mask := flit.NodeID(n - 1)
			return ^s.node & mask
		}
		return flit.NodeID(n-1) - s.node
	case Tornado:
		c := s.topo.CoordOf(s.node)
		w := s.topo.Width()
		c.X = (c.X + (w+1)/2 - 1) % w
		return s.topo.IDOf(c)
	case Transpose:
		c := s.topo.CoordOf(s.node)
		c.X, c.Y = c.Y, c.X
		if c.X >= s.topo.Width() || c.Y >= s.topo.Height() {
			return s.node // non-square grid: out-of-range transposes stay home
		}
		return s.topo.IDOf(c)
	case Shuffle:
		if n&(n-1) == 0 {
			width := bits.Len(uint(n - 1))
			v := uint(s.node)
			v = (v<<1 | v>>(width-1)) & uint(n-1)
			return flit.NodeID(v)
		}
		return flit.NodeID((int(s.node) * 2) % n)
	case Hotspot:
		if s.rng.Bool(HotspotFraction) {
			return 0
		}
		d := flit.NodeID(s.rng.Intn(n - 1))
		if d >= s.node {
			d++
		}
		return d
	default:
		panic("traffic: unknown pattern")
	}
}
