package traffic

import "testing"

// FuzzParsePattern holds the traffic-pattern parser to: no panics;
// accepted mnemonics map to a known pattern; and the pattern's String
// form parses back to the same pattern.
func FuzzParsePattern(f *testing.F) {
	for _, s := range []string{"NR", "bc", "TN", "tp", "SH", "hs", "", "XX"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePattern(s)
		if err != nil {
			return
		}
		switch p {
		case UniformRandom, BitComplement, Tornado, Transpose, Shuffle, Hotspot:
		default:
			t.Fatalf("ParsePattern(%q) produced unknown pattern %d", s, p)
		}
		back, err := ParsePattern(p.String())
		if err != nil || back != p {
			t.Fatalf("String form %q of ParsePattern(%q) does not round-trip: %v / %v", p, s, back, err)
		}
	})
}
