package ac

import (
	"testing"

	"ftnoc/internal/topology"
)

const (
	vcsPerPC = 3
	numPorts = int(topology.NumPorts)
)

func candidates(ps ...topology.Port) []topology.Port { return ps }

func TestCheckVAClean(t *testing.T) {
	b := Binding{InPort: topology.North, InVC: 1, OutPort: topology.South, OutVC: 2}
	if v := CheckVA(b, candidates(topology.South), vcsPerPC, numPorts, nil); v != None {
		t.Fatalf("clean allocation flagged: %v", v)
	}
}

// Scenario 1 of §4.1: an invalid output VC id.
func TestCheckVAInvalidVC(t *testing.T) {
	b := Binding{OutPort: topology.South, OutVC: 3} // VCs are 0..2
	if v := CheckVA(b, candidates(topology.South), vcsPerPC, numPorts, nil); v != InvalidVC {
		t.Fatalf("got %v, want InvalidVC", v)
	}
	b.OutVC = -1
	if v := CheckVA(b, candidates(topology.South), vcsPerPC, numPorts, nil); v != InvalidVC {
		t.Fatalf("got %v, want InvalidVC for negative", v)
	}
}

// Scenarios 2/3: the output VC is already reserved by another input VC.
func TestCheckVADuplicate(t *testing.T) {
	existing := []Binding{
		{InPort: topology.West, InVC: 0, OutPort: topology.South, OutVC: 1},
	}
	b := Binding{InPort: topology.North, InVC: 2, OutPort: topology.South, OutVC: 1}
	if v := CheckVA(b, candidates(topology.South), vcsPerPC, numPorts, existing); v != DuplicateAssignment {
		t.Fatalf("got %v, want DuplicateAssignment", v)
	}
	// Rewriting one's own entry is not a duplicate.
	own := []Binding{{InPort: topology.North, InVC: 2, OutPort: topology.South, OutVC: 1}}
	if v := CheckVA(b, candidates(topology.South), vcsPerPC, numPorts, own); v != None {
		t.Fatalf("own entry flagged: %v", v)
	}
}

// Scenario 4b: the assigned VC belongs to a PC the routing function did
// not return.
func TestCheckVARouteDisagreement(t *testing.T) {
	b := Binding{OutPort: topology.North, OutVC: 0}
	if v := CheckVA(b, candidates(topology.South, topology.East), vcsPerPC, numPorts, nil); v != RouteDisagreement {
		t.Fatalf("got %v, want RouteDisagreement", v)
	}
}

// Scenario 4a (benign): a different-but-free VC on the intended PC passes.
func TestCheckVABenignWrongVC(t *testing.T) {
	b := Binding{OutPort: topology.South, OutVC: 2}
	if v := CheckVA(b, candidates(topology.South), vcsPerPC, numPorts, nil); v != None {
		t.Fatalf("benign same-PC VC flagged: %v", v)
	}
}

func TestCheckVAInvalidPort(t *testing.T) {
	b := Binding{OutPort: topology.Port(7), OutVC: 0}
	if v := CheckVA(b, candidates(topology.South), vcsPerPC, numPorts, nil); v != InvalidPort {
		t.Fatalf("got %v, want InvalidPort", v)
	}
}

func lookupFrom(bindings []Binding) func(topology.Port, int) (Binding, bool) {
	return func(p topology.Port, vc int) (Binding, bool) {
		for _, b := range bindings {
			if b.InPort == p && b.InVC == vc {
				return b, true
			}
		}
		return Binding{}, false
	}
}

func TestCheckSAClean(t *testing.T) {
	bindings := []Binding{
		{InPort: topology.North, InVC: 0, OutPort: topology.South, OutVC: 1},
		{InPort: topology.West, InVC: 1, OutPort: topology.East, OutVC: 0},
	}
	grants := []Grant{
		{InPort: topology.North, InVC: 0, OutPort: topology.South},
		{InPort: topology.West, InVC: 1, OutPort: topology.East},
	}
	for i, v := range CheckSA(grants, numPorts, lookupFrom(bindings)) {
		if v != None {
			t.Fatalf("clean grant %d flagged: %v", i, v)
		}
	}
}

// Case (b) of §4.3: a flit sent to a direction different from its header.
func TestCheckSAStateMismatch(t *testing.T) {
	bindings := []Binding{{InPort: topology.North, InVC: 0, OutPort: topology.South, OutVC: 1}}
	grants := []Grant{{InPort: topology.North, InVC: 0, OutPort: topology.East}}
	v := CheckSA(grants, numPorts, lookupFrom(bindings))
	if v[0] != StateMismatch {
		t.Fatalf("got %v, want StateMismatch", v[0])
	}
}

// Case (c): two flits directed to the same output.
func TestCheckSACollision(t *testing.T) {
	bindings := []Binding{
		{InPort: topology.North, InVC: 0, OutPort: topology.South, OutVC: 1},
		{InPort: topology.West, InVC: 1, OutPort: topology.South, OutVC: 2},
	}
	grants := []Grant{
		{InPort: topology.North, InVC: 0, OutPort: topology.South},
		{InPort: topology.West, InVC: 1, OutPort: topology.South},
	}
	v := CheckSA(grants, numPorts, lookupFrom(bindings))
	if v[0] != CrossbarCollision || v[1] != CrossbarCollision {
		t.Fatalf("got %v, want both CrossbarCollision", v)
	}
}

// Case (d): one input granted multiple outputs (multicast).
func TestCheckSAMulticast(t *testing.T) {
	bindings := []Binding{
		{InPort: topology.North, InVC: 0, OutPort: topology.South, OutVC: 1},
		{InPort: topology.North, InVC: 0, OutPort: topology.East, OutVC: 1},
	}
	lookup := func(p topology.Port, vc int) (Binding, bool) {
		// A corrupted VA state could claim both; the SA check still
		// catches the duplicated input.
		return bindings[0], p == topology.North && vc == 0
	}
	grants := []Grant{
		{InPort: topology.North, InVC: 0, OutPort: topology.South},
		{InPort: topology.North, InVC: 0, OutPort: topology.South},
	}
	v := CheckSA(grants, numPorts, lookup)
	// The same output twice is a collision; the same input twice with
	// different outputs is a multicast.
	if v[1] == None {
		t.Fatalf("duplicate input/output grant not flagged: %v", v)
	}
}

func TestCheckSAMissingBinding(t *testing.T) {
	grants := []Grant{{InPort: topology.North, InVC: 0, OutPort: topology.South}}
	v := CheckSA(grants, numPorts, lookupFrom(nil))
	if v[0] != StateMismatch {
		t.Fatalf("grant without binding: got %v, want StateMismatch", v[0])
	}
}

func TestCheckSAInvalidPort(t *testing.T) {
	grants := []Grant{{InPort: topology.North, InVC: 0, OutPort: topology.Port(9)}}
	v := CheckSA(grants, numPorts, lookupFrom(nil))
	if v[0] != InvalidPort {
		t.Fatalf("got %v, want InvalidPort", v[0])
	}
}

func TestEntries(t *testing.T) {
	if Entries(5, 4) != 20 {
		t.Fatalf("Entries(5,4) = %d, want 20 (the paper's PV)", Entries(5, 4))
	}
}

func TestViolationString(t *testing.T) {
	for v := None; v <= StateMismatch; v++ {
		if v.String() == "" {
			t.Errorf("violation %d has empty string", v)
		}
	}
}
