// Package ac implements the Allocation Comparator unit of Fig. 12: a
// compact combinational checker that cross-examines the state of the
// routing unit (RT), the virtual-channel allocator (VA) and the switch
// allocator (SA) to catch intra-router logic soft errors (§4.1, §4.3).
//
// The unit performs three comparisons in parallel, within one clock
// cycle:
//
//  1. every output VC assigned by the VA must agree with the routing
//     function's candidate set (catches scenario 4b of §4.1);
//  2. the VA state must contain no invalid and no duplicate output-VC
//     assignments (catches scenarios 1–3);
//  3. the SA grant vector must contain no invalid output port, no two
//     grants to the same output (crossbar collision) and no input granted
//     multiple outputs (multicast) (catches cases b–d of §4.3).
//
// The checks are pure functions over state snapshots: detection is
// honest — the comparator finds the corruption, it is not told about it.
package ac

import (
	"fmt"

	"ftnoc/internal/topology"
)

// Binding is one entry of the VA state table: input VC (inPort, inVC) has
// been paired with output VC (outPort, outVC).
type Binding struct {
	InPort  topology.Port
	InVC    int
	OutPort topology.Port
	OutVC   int
}

// Grant is one entry of the SA grant vector for a cycle: the flit at the
// front of (inPort, inVC) traverses the crossbar to outPort.
type Grant struct {
	InPort  topology.Port
	InVC    int
	OutPort topology.Port
}

// Violation classifies what a comparator check found.
type Violation uint8

// Violations. None means the allocation is clean.
const (
	None Violation = iota
	// InvalidVC: the assigned output VC id does not exist (scenario 1).
	InvalidVC
	// InvalidPort: the assigned or granted output port does not exist.
	InvalidPort
	// DuplicateAssignment: the output VC is already bound to another
	// input VC (scenarios 2 and 3).
	DuplicateAssignment
	// RouteDisagreement: the assigned output port is not in the routing
	// function's candidate set (scenario 4b).
	RouteDisagreement
	// CrossbarCollision: two SA grants target the same output port
	// (case c of §4.3).
	CrossbarCollision
	// Multicast: one input VC granted multiple outputs (case d).
	Multicast
	// StateMismatch: an SA grant disagrees with the VA binding of its
	// input VC (case b: flit sent to a direction different from its
	// header).
	StateMismatch
)

// String implements fmt.Stringer.
func (v Violation) String() string {
	switch v {
	case None:
		return "none"
	case InvalidVC:
		return "invalid-vc"
	case InvalidPort:
		return "invalid-port"
	case DuplicateAssignment:
		return "duplicate-assignment"
	case RouteDisagreement:
		return "route-disagreement"
	case CrossbarCollision:
		return "crossbar-collision"
	case Multicast:
		return "multicast"
	case StateMismatch:
		return "state-mismatch"
	default:
		return fmt.Sprintf("Violation(%d)", uint8(v))
	}
}

// CheckVA validates a fresh VA allocation b against the routing
// function's candidate ports for that packet, the number of VCs per
// physical channel, and the pre-existing bindings. It returns the first
// violation found, or None.
func CheckVA(b Binding, candidates []topology.Port, vcsPerPC, numPorts int, existing []Binding) Violation {
	if int(b.OutPort) >= numPorts {
		return InvalidPort
	}
	if b.OutVC < 0 || b.OutVC >= vcsPerPC {
		return InvalidVC
	}
	inSet := false
	for _, c := range candidates {
		if c == b.OutPort {
			inSet = true
			break
		}
	}
	if !inSet {
		return RouteDisagreement
	}
	for _, e := range existing {
		if e.InPort == b.InPort && e.InVC == b.InVC {
			continue // the entry being (re)written
		}
		if e.OutPort == b.OutPort && e.OutVC == b.OutVC {
			return DuplicateAssignment
		}
	}
	return None
}

// CheckSA validates a cycle's SA grant vector against the VA state. The
// lookup callback resolves the VA binding of an input VC (ok=false if the
// input VC holds no binding — itself a violation). It returns, aligned
// with grants, the violation found for each grant (None for clean ones).
func CheckSA(grants []Grant, numPorts int, lookup func(inPort topology.Port, inVC int) (Binding, bool)) []Violation {
	return CheckSAInto(nil, grants, numPorts, lookup)
}

// CheckSAInto is CheckSA writing its result into dst (grown as needed),
// so steady-state callers can reuse one buffer. A grant vector holds at
// most one entry per output port, so duplicate detection uses linear
// scans over small on-stack index lists instead of maps.
func CheckSAInto(dst []Violation, grants []Grant, numPorts int, lookup func(inPort topology.Port, inVC int) (Binding, bool)) []Violation {
	if cap(dst) < len(grants) {
		dst = make([]Violation, len(grants))
	}
	out := dst[:len(grants)]
	for i := range out {
		out[i] = None
	}
	// Indices of grants admitted to the "seen output port" / "seen input
	// VC" tables; a colliding grant is reported but never admitted, so
	// later duplicates always blame the first admitted entry.
	var seenOutBuf, seenInBuf [8]int
	seenOut := seenOutBuf[:0]
	seenIn := seenInBuf[:0]
	for i, g := range grants {
		if int(g.OutPort) >= numPorts {
			out[i] = InvalidPort
			continue
		}
		b, ok := lookup(g.InPort, g.InVC)
		if !ok || b.OutPort != g.OutPort {
			out[i] = StateMismatch
			continue
		}
		dup := false
		for _, j := range seenOut {
			if grants[j].OutPort == g.OutPort {
				out[i] = CrossbarCollision
				if out[j] == None {
					out[j] = CrossbarCollision
				}
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seenOut = append(seenOut, i)
		for _, j := range seenIn {
			if grants[j].InPort == g.InPort && grants[j].InVC == g.InVC {
				out[i] = Multicast
				if out[j] == None {
					out[j] = Multicast
				}
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seenIn = append(seenIn, i)
	}
	return out
}

// Entries returns the number of state entries the comparator examines for
// a router with p ports and v VCs per port — the PV figure the paper uses
// to argue the unit's compactness (§4.1: 5x4 = 20 entries for the
// synthesized router).
func Entries(p, v int) int { return p * v }
