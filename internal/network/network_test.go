package network

import (
	"testing"

	"ftnoc/internal/link"
	"ftnoc/internal/routing"
	"ftnoc/internal/traffic"
)

// smallConfig is a quick 4x4 run for unit-level integration tests.
func smallConfig() Config {
	cfg := NewConfig()
	cfg.Width, cfg.Height = 4, 4
	cfg.WarmupMessages = 200
	cfg.TotalMessages = 1_000
	cfg.MaxCycles = 500_000
	return cfg
}

func TestFaultFreeDelivery(t *testing.T) {
	cfg := smallConfig()
	res := New(cfg).Run()
	if res.Stalled {
		t.Fatal("fault-free network stalled")
	}
	if res.Delivered < cfg.TotalMessages {
		t.Fatalf("delivered %d, want >= %d", res.Delivered, cfg.TotalMessages)
	}
	if res.CorruptedPackets != 0 || res.LostPackets != 0 || res.SinkAnomalies != 0 {
		t.Fatalf("fault-free run saw corruption: %+v", res)
	}
	if res.WormholeViolations != 0 || res.StrayFlits != 0 {
		t.Fatalf("fault-free run saw wormhole violations/strays: %d/%d", res.WormholeViolations, res.StrayFlits)
	}
	if res.TotalEvents.Retransmitted != 0 || res.TotalEvents.NACKs != 0 {
		t.Fatalf("fault-free run retransmitted: %d NACKs %d", res.TotalEvents.Retransmitted, res.TotalEvents.NACKs)
	}
	// 4x4 mesh, 3-stage pipeline: zero-load header latency ~ (avg 2.7 hops
	// + ejection/injection) * 3 + serialization 3. Anything wildly off
	// means the pipeline timing broke.
	if res.AvgLatency < 8 || res.AvgLatency > 60 {
		t.Fatalf("avg latency %.1f implausible for light load on 4x4", res.AvgLatency)
	}
}

func TestZeroLoadLatencyMatchesPipelineDepth(t *testing.T) {
	// At near-zero load, per-hop header latency is depth cycles (router
	// stages folded with single-cycle link), so average latency must rise
	// monotonically with pipeline depth.
	var prev float64
	for depth := 1; depth <= 4; depth++ {
		cfg := smallConfig()
		cfg.PipelineDepth = depth
		cfg.InjectionRate = 0.02
		cfg.WarmupMessages = 100
		cfg.TotalMessages = 600
		res := New(cfg).Run()
		if res.Stalled || res.Delivered < cfg.TotalMessages {
			t.Fatalf("depth %d: run incomplete: %+v", depth, res)
		}
		if res.AvgLatency <= prev {
			t.Fatalf("depth %d latency %.2f not greater than depth %d latency %.2f",
				depth, res.AvgLatency, depth-1, prev)
		}
		prev = res.AvgLatency
	}
}

func TestDeterminism(t *testing.T) {
	cfg := smallConfig()
	cfg.TotalMessages = 500
	cfg.WarmupMessages = 100
	cfg.Faults.Link = 0.01
	a := New(cfg).Run()
	b := New(cfg).Run()
	if a.AvgLatency != b.AvgLatency || a.Cycles != b.Cycles || a.TotalEvents != b.TotalEvents {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
	cfg.Seed = 99
	c := New(cfg).Run()
	if a.Cycles == c.Cycles && a.AvgLatency == c.AvgLatency {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestHBHUnderLinkErrors(t *testing.T) {
	cfg := smallConfig()
	cfg.Faults.Link = 0.05
	res := New(cfg).Run()
	if res.Stalled {
		t.Fatal("HBH network stalled under 5% link errors")
	}
	if res.Delivered < cfg.TotalMessages {
		t.Fatalf("delivered %d, want >= %d", res.Delivered, cfg.TotalMessages)
	}
	if res.CorruptedPackets != 0 || res.SinkAnomalies != 0 {
		t.Fatalf("HBH delivered corrupt packets: %d (anomalies %d)", res.CorruptedPackets, res.SinkAnomalies)
	}
	if res.TotalEvents.ECCCorrections == 0 {
		t.Fatal("no single-bit corrections recorded at 5% error rate")
	}
	if res.TotalEvents.Retransmitted == 0 {
		t.Fatal("no retransmissions recorded at 5% error rate")
	}
}

func TestAdaptiveRoutingDelivers(t *testing.T) {
	cfg := smallConfig()
	cfg.Routing = routing.MinimalAdaptive
	cfg.Cthres = 24
	res := New(cfg).Run()
	if res.Stalled {
		t.Fatalf("adaptive run stalled (recoveries=%d probes=%d)", res.Recoveries, res.ProbesSent)
	}
	if res.Delivered < cfg.TotalMessages {
		t.Fatalf("delivered %d, want >= %d", res.Delivered, cfg.TotalMessages)
	}
}

func TestTrafficPatternsDeliver(t *testing.T) {
	for _, p := range []traffic.Pattern{traffic.UniformRandom, traffic.BitComplement, traffic.Tornado, traffic.Transpose, traffic.Shuffle, traffic.Hotspot} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			cfg := smallConfig()
			cfg.Pattern = p
			cfg.InjectionRate = 0.1
			cfg.WarmupMessages = 100
			cfg.TotalMessages = 500
			res := New(cfg).Run()
			if res.Stalled || res.Delivered < cfg.TotalMessages {
				t.Fatalf("%v: delivered %d/%d stalled=%v", p, res.Delivered, cfg.TotalMessages, res.Stalled)
			}
		})
	}
}

func TestE2EAndFECDeliverUnderErrors(t *testing.T) {
	for _, prot := range []link.Protection{link.E2E, link.FEC} {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			cfg := smallConfig()
			cfg.Protection = prot
			cfg.Faults.Link = 0.01
			cfg.InjectionRate = 0.15
			cfg.WarmupMessages = 100
			cfg.TotalMessages = 600
			res := New(cfg).Run()
			if res.Stalled {
				t.Fatalf("%v stalled", prot)
			}
			if res.Delivered < cfg.TotalMessages {
				t.Fatalf("%v delivered %d/%d", prot, res.Delivered, cfg.TotalMessages)
			}
		})
	}
}

func TestProtectionSchemeLatencyOrdering(t *testing.T) {
	// Fig. 5's central claim: at a high error rate, HBH << FEC << E2E in
	// average latency.
	lat := map[link.Protection]float64{}
	for _, prot := range []link.Protection{link.HBH, link.FEC, link.E2E} {
		cfg := smallConfig()
		cfg.Protection = prot
		cfg.Faults.Link = 0.05
		cfg.InjectionRate = 0.15
		cfg.WarmupMessages = 100
		cfg.TotalMessages = 800
		res := New(cfg).Run()
		if res.Delivered < cfg.TotalMessages/2 {
			t.Fatalf("%v delivered only %d", prot, res.Delivered)
		}
		lat[prot] = res.AvgLatency
	}
	if !(lat[link.HBH] < lat[link.FEC] && lat[link.FEC] < lat[link.E2E]) {
		t.Fatalf("latency ordering violated: HBH=%.1f FEC=%.1f E2E=%.1f", lat[link.HBH], lat[link.FEC], lat[link.E2E])
	}
}
