package network

import (
	"fmt"
	"testing"

	"ftnoc/internal/link"
	"ftnoc/internal/routing"
	"ftnoc/internal/topology"
	"ftnoc/internal/traffic"
)

// Conservation: with a bounded injected population and a fault-free
// network, every injected packet must eventually eject — nothing is lost
// and nothing is duplicated.
func TestPacketConservation(t *testing.T) {
	cfg := smallConfig()
	cfg.WarmupMessages = 0
	cfg.InjectLimit = 2_000
	cfg.TotalMessages = 2_000
	n := New(cfg)
	res := n.Run()
	if res.Stalled {
		t.Fatal("stalled")
	}
	if n.injected != 2_000 {
		t.Fatalf("injected %d, want exactly 2000", n.injected)
	}
	if res.Delivered != 2_000 {
		t.Fatalf("delivered %d of 2000 injected", res.Delivered)
	}
	// With everything delivered, the network must be fully drained.
	for i, r := range n.routers {
		if occ, _ := r.BufferOccupancy(); occ != 0 {
			t.Fatalf("router %d still holds %d flits after full delivery", i, occ)
		}
	}
}

// Conservation must also hold under link errors: retransmission may
// repeat flits on wires, but every packet still ejects exactly once.
func TestPacketConservationUnderErrors(t *testing.T) {
	cfg := smallConfig()
	cfg.WarmupMessages = 0
	cfg.InjectLimit = 2_000
	cfg.TotalMessages = 2_000
	cfg.Faults.Link = 0.02
	res := New(cfg).Run()
	if res.Stalled || res.Delivered != 2_000 {
		t.Fatalf("delivered %d of 2000 injected under errors (stalled=%v)", res.Delivered, res.Stalled)
	}
	if res.CorruptedPackets != 0 {
		t.Fatalf("%d corrupt deliveries", res.CorruptedPackets)
	}
}

// Soak: random combinations of topology size, routing, protection, VC
// count, fault rates and seeds — with all protection on, every
// configuration must deliver intact traffic.
func TestSoakRandomConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	routings := []routing.Algorithm{routing.XY, routing.MinimalAdaptive, routing.WestFirst, routing.OddEven}
	protections := []link.Protection{link.HBH, link.FEC, link.E2E}
	patterns := []traffic.Pattern{traffic.UniformRandom, traffic.Transpose, traffic.Hotspot}
	for i := 0; i < 18; i++ {
		i := i
		t.Run(fmt.Sprintf("combo%02d", i), func(t *testing.T) {
			cfg := NewConfig()
			cfg.Width = 3 + i%3
			cfg.Height = 3 + (i/2)%3
			cfg.VCs = 2 + i%2
			cfg.BufDepth = 4 + 2*(i%2)
			cfg.PipelineDepth = 1 + i%4
			cfg.Routing = routings[i%len(routings)]
			cfg.Protection = protections[i%len(protections)]
			cfg.Pattern = patterns[i%len(patterns)]
			cfg.InjectionRate = 0.08 + 0.04*float64(i%3)
			cfg.Faults.Link = []float64{0, 1e-3, 1e-2}[i%3]
			if cfg.Protection == link.HBH {
				// Logic faults only with full protection; the E2E/FEC
				// baselines do not carry the AC in the paper either.
				cfg.Faults.RT = 5e-4
				cfg.Faults.SA = 5e-4
				cfg.Faults.VA = 5e-4
			}
			cfg.Seed = uint64(1000 + i)
			cfg.WarmupMessages = 100
			cfg.TotalMessages = 800
			cfg.MaxCycles = 400_000
			n := New(cfg)
			res := n.Run()
			if res.Stalled || res.Delivered < cfg.TotalMessages {
				t.Fatalf("delivered %d/%d (stalled=%v): %+v", res.Delivered, cfg.TotalMessages, res.Stalled, cfg)
			}
			// Probe memory stays bounded: dedup by (origin, port, VC) caps
			// it at the keyspace, and the age-out prune — which must run in
			// recovery mode too — keeps the live population far below that.
			probeCap := n.Topology().Nodes() * int(topology.NumPorts) * cfg.VCs
			for id, r := range n.Routers() {
				if l := r.ProbeSeenLen(); l > probeCap {
					t.Fatalf("router %d probe memory grew to %d entries (keyspace %d)", id, l, probeCap)
				}
			}
			if res.SinkAnomalies != 0 {
				t.Fatalf("sink anomalies escaped protection: %d (cfg %+v)", res.SinkAnomalies, cfg)
			}
			// Destination-detected corruption is the E2E/FEC recovery
			// mechanism at work; only HBH promises corruption-free hops.
			if cfg.Protection == link.HBH && res.CorruptedPackets != 0 {
				t.Fatalf("HBH delivered corruption: %d (cfg %+v)", res.CorruptedPackets, cfg)
			}
			// E2E/FEC can genuinely lose packets when the retransmission
			// request itself is corrupted in transit — exactly the weakness
			// the paper calls out for end-to-end schemes (§3). Only HBH
			// promises zero loss.
			if cfg.Protection == link.HBH && res.LostPackets != 0 {
				t.Fatalf("HBH lost packets: %d (cfg %+v)", res.LostPackets, cfg)
			}
			if res.LostPackets > res.Delivered/20 {
				t.Fatalf("excessive loss %d for %d delivered (cfg %+v)", res.LostPackets, res.Delivered, cfg)
			}
		})
	}
}

// Multi-seed determinism and sanity of the headline experiment point.
func TestSeedStability(t *testing.T) {
	var base float64
	for seed := uint64(1); seed <= 5; seed++ {
		cfg := smallConfig()
		cfg.Seed = seed
		res := New(cfg).Run()
		if res.Stalled {
			t.Fatalf("seed %d stalled", seed)
		}
		if seed == 1 {
			base = res.AvgLatency
			continue
		}
		// Different seeds, same workload: latency must agree within a few
		// percent (statistical noise only).
		if diff := res.AvgLatency/base - 1; diff > 0.1 || diff < -0.1 {
			t.Fatalf("seed %d latency %.2f deviates >10%% from seed 1's %.2f", seed, res.AvgLatency, base)
		}
	}
}

// All fault classes at once, at realistic rates: the combined protection
// stack holds.
func TestAllFaultsSimultaneously(t *testing.T) {
	cfg := smallConfig()
	cfg.Faults.Link = 5e-3
	cfg.Faults.RT = 5e-4
	cfg.Faults.VA = 5e-4
	cfg.Faults.SA = 5e-4
	cfg.Faults.Handshake = 0.05
	cfg.TMREnabled = true
	res := New(cfg).Run()
	if res.Stalled || res.Delivered < cfg.TotalMessages {
		t.Fatalf("run incomplete: %v", res)
	}
	if res.CorruptedPackets != 0 || res.SinkAnomalies != 0 || res.StrayFlits != 0 {
		t.Fatalf("combined faults leaked corruption: %+v", res)
	}
}
