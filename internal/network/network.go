package network

import (
	"context"
	"fmt"
	"strings"

	"ftnoc/internal/fault"
	"ftnoc/internal/flit"
	"ftnoc/internal/invariant"
	"ftnoc/internal/kernel"
	"ftnoc/internal/link"
	"ftnoc/internal/router"
	"ftnoc/internal/routing"
	"ftnoc/internal/sim"
	"ftnoc/internal/stats"
	"ftnoc/internal/topology"
	"ftnoc/internal/trace"
	"ftnoc/internal/traffic"
)

// Network is a fully assembled simulation: topology, routers, links, PEs,
// fault injectors and measurement probes.
type Network struct {
	cfg     Config
	kernel  sim.Kernel
	topo    *topology.Topology
	routers []*router.Router
	pes     []*pe

	// Kernel handles for wake wiring and quiescence-aware sampling.
	routerH []sim.Handle
	peH     []sim.Handle
	// Cached per-router buffer capacities (constant after build), letting
	// sampleUtilization skip walking a quiescent router's VCs.
	bufCap []int

	events     stats.Events
	counters   *fault.Counters
	latency    stats.LatencyStats
	txUtil     stats.Utilization
	rtUtil     stats.Utilization
	routerUtil []stats.Utilization // per-router transmission-buffer utilization

	pidCounter uint64
	injected   uint64
	delivered  uint64
	lastEject  uint64 // cycle of most recent delivery, for stall detection

	measuring    bool
	warmupEvents stats.Events
	warmupCycle  uint64

	// Structured event bus and its built-in consumers.
	bus     trace.Bus
	journey *journeyTracker

	// Runtime invariant checking (nil unless Config.Invariants is set).
	inv   *invariant.Checker
	loops []creditLoop

	// Failure-mode tallies.
	corruptedPackets uint64
	lostPackets      uint64
	sinkAnomalies    uint64
	e2eNACKs         uint64
	e2eRetransmits   uint64
	e2eBufMax        int
}

// New builds a network from cfg. It panics on invalid configuration —
// construction is programmer-driven, not input-driven. Callers handling
// untrusted or generated configurations should call cfg.Validate first
// and surface the error themselves.
func New(cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic("network: " + err.Error())
	}
	cfg.applyDefaults()
	n := &Network{cfg: cfg, counters: fault.NewCounters()}
	root := sim.NewRNG(cfg.Seed)

	kind := cfg.TopologyKind
	if kind == 0 {
		kind = topology.Mesh
	}
	n.topo = topology.New(kind, cfg.Width, cfg.Height)
	for _, hf := range cfg.HardFaults {
		n.topo.FailLink(hf.From, hf.Dir)
	}
	route := routing.New(cfg.Routing, n.topo)
	xyCheck := !cfg.Routing.Adaptive()

	// Observability: attach the packet-journey tracker and any caller
	// sink before construction, so routers capture a bus that is already
	// final. With no sinks the bus stays disabled and costs nothing.
	if len(cfg.TracePIDs) > 0 {
		n.journey = newJourneyTracker(cfg.TracePIDs)
		n.bus.Attach(n.journey)
	}
	n.bus.Attach(cfg.TraceSink)
	n.inv = cfg.Invariants
	if n.inv != nil {
		n.bus.Attach(n.inv)
	}
	if n.bus.Enabled() {
		// Republish fault accounting as structured events, stamped with
		// the live cycle (the counters themselves are cycle-blind).
		n.counters.Observer = func(op fault.CounterOp, cl fault.Class) {
			var k trace.Kind
			switch op {
			case fault.OpInjected:
				k = trace.FaultInjected
			case fault.OpCorrected:
				k = trace.FaultCorrected
			case fault.OpUndetected:
				k = trace.FaultUndetected
			default:
				return
			}
			n.bus.Emit(trace.Event{
				Cycle: n.kernel.Cycle(), Kind: k,
				Node: -1, Port: -1, VC: -1, Aux: uint64(cl),
			})
		}
	}

	nodes := n.topo.Nodes()
	n.routers = make([]*router.Router, nodes)
	n.pes = make([]*pe, nodes)

	logicRNG := root.Split()
	for i := 0; i < nodes; i++ {
		rc := router.Config{
			ID:              flit.NodeID(i),
			Topo:            n.topo,
			Route:           route,
			VCs:             cfg.VCs,
			BufDepth:        cfg.BufDepth,
			PipelineDepth:   cfg.PipelineDepth,
			Protection:      cfg.Protection,
			ACEnabled:       cfg.ACEnabled,
			XYCheck:         xyCheck,
			RecoveryEnabled: cfg.RecoveryEnabled,
			Cthres:          cfg.Cthres,
			Sparse:          cfg.Kernel == kernel.Event,
			Events:          &n.events,
			Counters:        n.counters,
			Bus:             &n.bus,
		}
		if cfg.Faults.RT > 0 {
			rc.RTFault = fault.NewLogicInjector(fault.RTLogic, cfg.Faults.RT, logicRNG.Split())
		}
		if cfg.Faults.VA > 0 {
			rc.VAFault = fault.NewLogicInjector(fault.VALogic, cfg.Faults.VA, logicRNG.Split())
		}
		if cfg.Faults.SA > 0 {
			rc.SAFault = fault.NewLogicInjector(fault.SALogic, cfg.Faults.SA, logicRNG.Split())
		}
		if cfg.Faults.Xbar > 0 {
			rc.XbarFault = fault.NewLogicInjector(fault.XbarError, cfg.Faults.Xbar, logicRNG.Split())
		}
		n.routers[i] = router.New(rc)
	}

	// flitWires records, for every channel, which actor consumes its
	// forward flit pipe and which actor owns its transmitter (the NACK
	// consumer); the wake callbacks are installed once actor handles exist
	// (after registration below).
	type flitWire struct {
		ch     *link.Channel
		node   int
		toPE   bool
		txNode int
		txPE   bool
	}
	var wires []flitWire

	// Inter-router links: one channel per direction.
	linkRNG := root.Split()
	for _, l := range n.topo.Links() {
		dst, _ := n.topo.Neighbor(l.From, l.Dir)
		var inj fault.Corruptor
		if cfg.Faults.Link > 0 {
			inj = fault.NewLinkInjector(cfg.Faults.Link, cfg.Faults.LinkDouble, linkRNG.Split())
		}
		ch := link.NewChannel(&n.kernel, inj, false, &n.events, n.counters)
		wires = append(wires, flitWire{ch: ch, node: int(dst), txNode: int(l.From)})
		if cfg.Faults.Handshake > 0 {
			ch.SetHandshakeFaults(cfg.Faults.Handshake, cfg.TMREnabled, linkRNG.Split())
		}
		tx := link.NewTransmitter(ch, cfg.VCs, cfg.BufDepth, cfg.shifterDepth(), &n.events, n.counters)
		if cfg.Faults.RetransBuf > 0 {
			tx.SetRetransBufFaults(cfg.Faults.RetransBuf, cfg.DuplicateRetrans, linkRNG.Split())
		}
		rx := link.NewReceiver(ch, cfg.VCs, cfg.Protection, &n.events, n.counters)
		tx.SetTrace(&n.bus, int32(l.From), int8(l.Dir))
		rx.SetTrace(&n.bus, int32(dst), int8(l.Dir.Opposite()))
		n.routers[l.From].AttachOutput(l.Dir, tx)
		n.routers[dst].AttachInput(l.Dir.Opposite(), rx)
		if n.inv != nil {
			n.watchLink(tx, rx, ch, int32(l.From), int8(l.Dir), int(dst), l.Dir.Opposite(), false)
		}
	}

	// PE <-> router local channels (fault-free, §2.2).
	trafficRNG := root.Split()
	for i := 0; i < nodes; i++ {
		id := flit.NodeID(i)
		// PE -> router.
		up := link.NewChannel(&n.kernel, nil, true, &n.events, n.counters)
		wires = append(wires, flitWire{ch: up, node: i, txNode: i, txPE: true})
		upTx := link.NewTransmitter(up, cfg.VCs, cfg.BufDepth, cfg.shifterDepth(), &n.events, n.counters)
		upRx := link.NewReceiver(up, cfg.VCs, cfg.Protection, &n.events, n.counters)
		upTx.SetTrace(&n.bus, int32(i), int8(topology.Local))
		upRx.SetTrace(&n.bus, int32(i), int8(topology.Local))
		n.routers[i].AttachInput(topology.Local, upRx)
		// Router -> PE.
		down := link.NewChannel(&n.kernel, nil, true, &n.events, n.counters)
		wires = append(wires, flitWire{ch: down, node: i, toPE: true, txNode: i})
		downTx := link.NewTransmitter(down, cfg.VCs, cfg.BufDepth, cfg.shifterDepth(), &n.events, n.counters)
		downRx := link.NewReceiver(down, cfg.VCs, cfg.Protection, &n.events, n.counters)
		downTx.SetTrace(&n.bus, int32(i), int8(topology.Local))
		downRx.SetTrace(&n.bus, int32(i), int8(topology.Local))
		n.routers[i].AttachOutput(topology.Local, downTx)
		if n.inv != nil {
			n.watchLink(upTx, upRx, up, int32(i), int8(topology.Local), i, topology.Local, false)
			n.watchLink(downTx, downRx, down, int32(i), int8(topology.Local), i, topology.Local, true)
		}

		src := traffic.NewSource(id, n.topo, cfg.Pattern, cfg.InjectionRate, cfg.PacketSize, trafficRNG.Split())
		n.pes[i] = newPE(n, id, src, upTx, downRx)
	}

	// Registration order (router i, PE i, router i+1, ...) fixes the
	// intra-cycle trace-event order and must not change.
	n.routerH = make([]sim.Handle, nodes)
	n.peH = make([]sim.Handle, nodes)
	for i := 0; i < nodes; i++ {
		n.routerH[i] = n.kernel.RegisterActor(n.routers[i])
		n.peH[i] = n.kernel.RegisterActor(n.pes[i])
	}

	// Quiescence wiring: every flit pipe wakes its consuming actor when a
	// latch leaves flits visible, and every NACK pipe wakes the
	// transmitter-owning actor (relaxed quiescence lets an actor sleep
	// with occupied retransmission shifters — see link.Channel.SetNACKWake
	// for why that makes NACK wakes necessary). Credit pipes need no wakes
	// (see link.Channel.SetFlitWake). Only with all deliveries covered is
	// it sound to opt the actors into idle skipping.
	for _, w := range wires {
		h := n.routerH[w.node]
		if w.toPE {
			h = n.peH[w.node]
		}
		w.ch.SetFlitWake(n.kernel.Waker(h))
		th := n.routerH[w.txNode]
		if w.txPE {
			th = n.peH[w.txNode]
		}
		w.ch.SetNACKWake(n.kernel.Waker(th))
	}
	for i := 0; i < nodes; i++ {
		n.kernel.EnableQuiescence(n.routerH[i])
		n.kernel.EnableQuiescence(n.peH[i])
	}
	switch cfg.Kernel {
	case kernel.Naive:
		n.kernel.SetMode(sim.ModeNaive)
	case kernel.Quiescent:
		n.kernel.SetMode(sim.ModeQuiescent)
	default:
		n.kernel.SetMode(sim.ModeEvent)
	}

	// Metrics registry: per-router gauges, sampled by Run.
	if cfg.Metrics != nil {
		for i := range n.routers {
			r := n.routers[i]
			cfg.Metrics.Register(i, "vc-occupancy", func() float64 {
				return occupancyFraction(r.BufferOccupancy())
			})
			cfg.Metrics.Register(i, "retrans-occupancy", func() float64 {
				return occupancyFraction(r.ShifterOccupancy())
			})
			cfg.Metrics.Register(i, "credit-stalls", func() float64 {
				return float64(r.CreditStalls())
			})
		}
	}
	return n
}

// occupancyFraction turns an (occupied, capacity) pair into [0,1].
func occupancyFraction(occupied, capacity int) float64 {
	if capacity == 0 {
		return 0
	}
	return float64(occupied) / float64(capacity)
}

// Bus exposes the network's structured event bus, letting embedding
// harnesses attach additional sinks before Run.
func (n *Network) Bus() *trace.Bus { return &n.bus }

// Topology returns the network's topology (for tooling).
func (n *Network) Topology() *topology.Topology { return n.topo }

// Kernel exposes the simulation kernel for fine-grained stepping in tests.
func (n *Network) Kernel() *sim.Kernel { return &n.kernel }

// Routers exposes the router array (read-only use).
func (n *Network) Routers() []*router.Router { return n.routers }

// nextPID allocates a packet identifier.
func (n *Network) nextPID() flit.PacketID {
	n.pidCounter++
	return flit.PacketID(n.pidCounter)
}

// recordDelivery accounts one cleanly ejected message; node is the
// delivering PE's index, which fixes how far the current cycle's tick
// order has progressed if this delivery opens the measurement window.
func (n *Network) recordDelivery(cycle, injectedAt uint64, node int) {
	n.delivered++
	n.lastEject = cycle
	if n.delivered == n.cfg.WarmupMessages {
		n.startMeasuring(cycle, node)
	}
	if n.measuring && n.delivered > n.cfg.WarmupMessages {
		n.latency.Record(cycle - injectedAt)
	}
}

// startMeasuring snapshots the event counters at the warm-up boundary.
// When triggered by a delivery it fires mid-cycle, from PE node's tick;
// sleeping routers' lazily deferred idle-tick counters must be replayed
// to exactly that point first, or the snapshot would differ from the
// naive kernel's.
func (n *Network) startMeasuring(cycle uint64, node int) {
	n.syncIdleCounters(cycle, node)
	n.measuring = true
	n.warmupEvents = n.events
	n.warmupCycle = cycle
}

// syncIdleCounters brings every sleeping router's externally visible
// counters up to date with what the naive kernel would show at an
// observation point during cycle's actor loop. Actors tick in node order
// (router 0, PE 0, router 1, ...), so routers with index <= upTo have
// already ticked this cycle and owe its idle effects too; later routers
// owe only the cycles before it. Awake routers are already current and
// the call is a no-op for them. Pass upTo = -1 at a clean cycle boundary.
func (n *Network) syncIdleCounters(cycle uint64, upTo int) {
	for i, r := range n.routers {
		if i <= upTo {
			r.CatchUpTo(cycle + 1)
		} else {
			r.CatchUpTo(cycle)
		}
	}
}

// AbortCheckInterval is how often (in cycles) RunContext polls its
// context for cancellation: once cancelled, RunContext returns within
// this many simulated cycles.
const AbortCheckInterval = 256

// Run drives the simulation until TotalMessages have ejected, the network
// stalls, or MaxCycles elapse, then returns the measurements. It is the
// zero-dependency wrapper around RunContext for callers that never cancel.
func (n *Network) Run() Results { return n.run(nil) }

// RunContext is Run with cooperative cancellation: it polls ctx every
// AbortCheckInterval cycles and, once ctx is done, stops the simulation
// and returns the measurements gathered so far with Aborted set. A
// cancelled run is a partial measurement, not an error — latency and
// event counts cover whatever completed before the abort.
func (n *Network) RunContext(ctx context.Context) Results {
	return n.run(ctx.Done())
}

func (n *Network) run(done <-chan struct{}) Results {
	if n.cfg.WarmupMessages == 0 {
		n.startMeasuring(0, -1)
	}
	stalled, aborted := false, false
	for n.delivered < n.cfg.TotalMessages {
		c := n.kernel.Cycle()
		if c >= n.cfg.MaxCycles {
			break
		}
		if c > n.lastEject+n.cfg.StallCycles && (n.delivered > 0 || c > n.cfg.StallCycles) {
			stalled = true
			break
		}
		if done != nil && c%AbortCheckInterval == 0 {
			select {
			case <-done:
				aborted = true
			default:
			}
			if aborted {
				break
			}
		}
		n.kernel.Step()
		if n.inv != nil {
			if cl := n.kernel.Cycle(); cl%n.inv.Every() == 0 {
				n.checkState(cl)
			}
		}
		if n.measuring {
			n.sampleUtilization()
		}
		if n.journey != nil {
			n.journey.endCycle(n.kernel.Cycle())
		}
		if n.cfg.Metrics != nil {
			n.cfg.Metrics.Tick(n.kernel.Cycle())
		}
	}
	res := n.results(stalled)
	res.Aborted = aborted
	if n.inv != nil {
		clean := !stalled && !aborted && n.delivered >= n.cfg.TotalMessages
		n.inv.Finalize(n.kernel.Cycle(), clean, n.residentPIDs())
	}
	return res
}

// sampleUtilization records this cycle's buffer occupancies (Figs. 8-9)
// plus the per-router breakdown for floorplan heatmaps.
func (n *Network) sampleUtilization() {
	if n.routerUtil == nil {
		n.routerUtil = make([]stats.Utilization, len(n.routers))
		n.bufCap = make([]int, len(n.routers))
		for i, r := range n.routers {
			_, n.bufCap[i] = r.BufferOccupancy()
		}
	}
	to, tc, ro, rc := 0, 0, 0, 0
	for i, r := range n.routers {
		if n.kernel.Asleep(n.routerH[i]) {
			// A quiescent router proved every VC buffer empty, so its
			// buffer sample is (0, capacity) without walking them. Its
			// retransmission shifters may still hold entries awaiting
			// their NACK-window expiry (relaxed quiescence), and that
			// frozen occupancy is exactly what the naive kernel would
			// observe — no entry can expire before the declared wake —
			// so it is read for real.
			n.routerUtil[i].Sample(0, n.bufCap[i])
			tc += n.bufCap[i]
			o, c := r.ShifterOccupancy()
			ro += o
			rc += c
			continue
		}
		o, c := r.BufferOccupancy()
		n.routerUtil[i].Sample(o, c)
		to += o
		tc += c
		o, c = r.ShifterOccupancy()
		ro += o
		rc += c
	}
	n.txUtil.Sample(to, tc)
	n.rtUtil.Sample(ro, rc)
}

// KernelStats reports the kernel's cumulative scheduling counters: actor
// ticks executed, actor ticks skipped relative to the naive schedule, and
// calendar-queue events dispatched (event mode only). Deliberately not
// part of Results — scheduling is an implementation detail and all
// kernels must produce identical Results.
func (n *Network) KernelStats() sim.Stats { return n.kernel.Stats() }

// Snapshot renders every router's live VC state — a debugging view of
// the whole chip at the current cycle.
func (n *Network) Snapshot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle %d, delivered %d\n", n.kernel.Cycle(), n.delivered)
	for i, r := range n.routers {
		state := r.DebugVCs(n.kernel.Cycle())
		if state == "" && !r.InRecovery() {
			continue
		}
		fmt.Fprintf(&b, "router %2d recovery=%v: %s\n", i, r.InRecovery(), state)
	}
	return b.String()
}

// results assembles the final measurement record.
func (n *Network) results(stalled bool) Results {
	// Runs end at a clean cycle boundary; settle any counter catch-up
	// still pending in sleeping routers before reading the totals.
	n.syncIdleCounters(n.kernel.Cycle(), -1)
	measured := stats.Events{}
	if n.measuring {
		measured = n.events
		w := n.warmupEvents
		measured = subtractEvents(measured, w)
	}
	cycles := n.kernel.Cycle()
	measuredCycles := uint64(0)
	if n.measuring && cycles > n.warmupCycle {
		measuredCycles = cycles - n.warmupCycle
	}
	var recoveries, probes, viol, stray uint64
	for _, r := range n.routers {
		recoveries += r.Recoveries()
		probes += r.ProbesSent()
		viol += r.WormholeViolations()
		stray += r.StrayFlits()
	}
	measuredMsgs := uint64(0)
	if n.delivered > n.cfg.WarmupMessages {
		measuredMsgs = n.delivered - n.cfg.WarmupMessages
	}
	res := Results{
		Cycles:             cycles,
		LatencyHist:        n.latency.Histogram(latencyBinWidth, latencyBins),
		MeasuredCycles:     measuredCycles,
		Delivered:          n.delivered,
		MeasuredMessages:   measuredMsgs,
		AvgLatency:         n.latency.Mean(),
		P95Latency:         n.latency.Percentile(95),
		MaxLatency:         n.latency.Max(),
		Events:             measured,
		TotalEvents:        n.events,
		TxBufUtil:          n.txUtil.Mean(),
		RtBufUtil:          n.rtUtil.Mean(),
		RouterTxUtil:       routerMeans(n.routerUtil),
		Counters:           n.counters,
		Recoveries:         recoveries,
		ProbesSent:         probes,
		WormholeViolations: viol,
		StrayFlits:         stray,
		CorruptedPackets:   n.corruptedPackets,
		LostPackets:        n.lostPackets,
		SinkAnomalies:      n.sinkAnomalies,
		E2ENACKs:           n.e2eNACKs,
		E2ERetransmits:     n.e2eRetransmits,
		E2EBufMax:          n.e2eBufMax,
		Traces:             n.tracesForResults(),
		Stalled:            stalled,
		Throughput: stats.Throughput{
			FlitsDelivered:    measuredMsgs * uint64(n.cfg.PacketSize),
			MessagesDelivered: measuredMsgs,
			Cycles:            measuredCycles,
			Nodes:             n.topo.Nodes(),
		},
	}
	return res
}

// Latency histogram shape: 24 bins of 10 cycles, last bin open-ended.
const (
	latencyBinWidth = 10
	latencyBins     = 24
)

// routerMeans extracts the time-averaged per-router utilizations.
func routerMeans(us []stats.Utilization) []float64 {
	if us == nil {
		return nil
	}
	out := make([]float64, len(us))
	for i := range us {
		out[i] = us[i].Mean()
	}
	return out
}

func subtractEvents(a, b stats.Events) stats.Events {
	return stats.Events{
		BufWrites:       a.BufWrites - b.BufWrites,
		BufReads:        a.BufReads - b.BufReads,
		XbTraversals:    a.XbTraversals - b.XbTraversals,
		LinkTraversals:  a.LinkTraversals - b.LinkTraversals,
		LocalTraversals: a.LocalTraversals - b.LocalTraversals,
		VAAllocs:        a.VAAllocs - b.VAAllocs,
		SAAllocs:        a.SAAllocs - b.SAAllocs,
		RetransWrites:   a.RetransWrites - b.RetransWrites,
		Retransmitted:   a.Retransmitted - b.Retransmitted,
		NACKs:           a.NACKs - b.NACKs,
		Credits:         a.Credits - b.Credits,
		Probes:          a.Probes - b.Probes,
		ECCDecodes:      a.ECCDecodes - b.ECCDecodes,
		ECCCorrections:  a.ECCCorrections - b.ECCCorrections,
		ACChecks:        a.ACChecks - b.ACChecks,
		RTComputes:      a.RTComputes - b.RTComputes,
	}
}

// Results is the measurement record of one simulation run. Event counts
// and latency cover the post-warm-up window; Total* fields cover the
// whole run.
type Results struct {
	Cycles           uint64
	MeasuredCycles   uint64
	Delivered        uint64
	MeasuredMessages uint64

	AvgLatency float64
	P95Latency float64
	MaxLatency float64
	// LatencyHist buckets measured message latencies into latencyBins
	// bins of latencyBinWidth cycles (last bin is open-ended).
	LatencyHist []int
	Throughput  stats.Throughput

	Events      stats.Events
	TotalEvents stats.Events

	TxBufUtil float64 // transmission (input VC) buffer utilization, Fig. 8
	RtBufUtil float64 // retransmission buffer utilization, Fig. 9
	// RouterTxUtil is the per-router breakdown of TxBufUtil, indexed by
	// node id (nil if measurement never started).
	RouterTxUtil []float64

	Counters *fault.Counters

	Recoveries         uint64
	ProbesSent         uint64
	WormholeViolations uint64
	StrayFlits         uint64
	CorruptedPackets   uint64
	LostPackets        uint64
	SinkAnomalies      uint64
	E2ENACKs           uint64
	E2ERetransmits     uint64
	E2EBufMax          int

	// Traces holds the recorded journeys of Config.TracePIDs packets,
	// keyed by packet ID, one line per location change.
	Traces map[uint64][]string

	Stalled bool
	// Aborted reports that RunContext stopped early because its context
	// was cancelled; all measurements cover only the completed prefix.
	Aborted bool
}

// tracesForResults exports the journey tracker's recorded lines (nil
// when tracing was not configured).
func (n *Network) tracesForResults() map[uint64][]string {
	if n.journey == nil {
		return nil
	}
	return n.journey.export()
}

// String summarises the run for human consumption.
func (r Results) String() string {
	return fmt.Sprintf("delivered %d msgs in %d cycles: avg latency %.1f cyc, tx-util %.3f, rt-util %.3f, retrans %d, recoveries %d",
		r.Delivered, r.Cycles, r.AvgLatency, r.TxBufUtil, r.RtBufUtil, r.TotalEvents.Retransmitted, r.Recoveries)
}
