package network

import (
	"context"
	"fmt"
	"runtime"
	"strings"

	"ftnoc/internal/fault"
	"ftnoc/internal/flit"
	"ftnoc/internal/invariant"
	"ftnoc/internal/kernel"
	"ftnoc/internal/link"
	"ftnoc/internal/router"
	"ftnoc/internal/routing"
	"ftnoc/internal/sim"
	"ftnoc/internal/stats"
	"ftnoc/internal/topology"
	"ftnoc/internal/trace"
	"ftnoc/internal/traffic"
)

// Network is a fully assembled simulation: topology, routers, links, PEs,
// fault injectors and measurement probes.
type Network struct {
	cfg     Config
	kernel  sim.Kernel
	topo    *topology.Topology
	routers []*router.Router
	pes     []*pe

	// Kernel handles for wake wiring and quiescence-aware sampling.
	routerH []sim.Handle
	peH     []sim.Handle
	// Cached per-router buffer capacities (constant after build), letting
	// sampleUtilization skip walking a quiescent router's VCs.
	bufCap []int

	// events is the serial accounting shard: PE-side activity plus
	// everything else charged outside router ticks. routerEvents[i] is
	// router i's shard; run totals are the sum (see totalEvents). Under
	// the serial kernels the split is cosmetic — shards are summed, and
	// integer sums are order-independent — but under the parallel kernel
	// each worker writes only the shards of the routers it owns, so the
	// accounting hot path stays lock- and contention-free.
	events       stats.Events
	routerEvents []stats.Events
	// routerMirrors[i] receives a copy of routerEvents[i] at the start of
	// each executed tick of router i (parallel kernel only); measurement
	// snapshots use it to observe a router the parallel schedule has
	// already run past the serial observation point (see snapshotEvents).
	routerMirrors []stats.Events
	// Per-actor fault-counter shards, merged when results are read. PEs
	// get shards too (not just routers) so each shard's bus Observer can
	// emit into the owning actor's trace buffer under the parallel kernel.
	routerCounters []*fault.Counters
	peCounters     []*fault.Counters

	// Parallel-kernel partition: workers row bands, groupOf[node] the
	// band (worker index) owning that node's router. Nil/zero for the
	// serial kernels.
	parallel bool
	workers  int
	groupOf  []int

	// Per-actor trace buffering, active only under the parallel kernel
	// with an enabled bus: each actor emits into its own buffer during
	// the concurrent phase and flushTrace replays the buffers into the
	// real bus in registration order after every step, reproducing the
	// serial kernels' intra-cycle event order exactly.
	routerBus []trace.Bus
	peBus     []trace.Bus
	actorBuf  []*traceBuffer // [2i] = router i, [2i+1] = PE i

	latency    stats.LatencyStats
	txUtil     stats.Utilization
	rtUtil     stats.Utilization
	routerUtil []stats.Utilization // per-router transmission-buffer utilization

	pidCounter uint64
	injected   uint64
	delivered  uint64
	lastEject  uint64 // cycle of most recent delivery, for stall detection

	measuring    bool
	warmupEvents stats.Events
	warmupCycle  uint64

	// Structured event bus and its built-in consumers.
	bus     trace.Bus
	journey *journeyTracker

	// Runtime invariant checking (nil unless Config.Invariants is set).
	inv   *invariant.Checker
	loops []creditLoop

	// Hard-fault channel registry: chanAt[node*NumPorts+dir] is the
	// inter-router channel transmitted by node through dir; peUp/peDown
	// are the local PE<->router channels. The reconfiguration controller
	// (mortality.go) needs direct wire access to destroy in-flight
	// traffic at death boundaries.
	chanAt []*link.Channel
	peUp   []*link.Channel
	peDown []*link.Channel

	// mort is the hard-fault regime state: per-router fault maps, the
	// death timeline, undeliverable accounting and the reconfiguration
	// machinery. Nil unless the run is "degraded" (a mortality schedule
	// or fault-adaptive routing is configured).
	mort *mortalityState

	// Failure-mode tallies.
	corruptedPackets uint64
	lostPackets      uint64
	sinkAnomalies    uint64
	e2eNACKs         uint64
	e2eRetransmits   uint64
	e2eBufMax        int
}

// New builds a network from cfg. It panics on invalid configuration —
// construction is programmer-driven, not input-driven. Callers handling
// untrusted or generated configurations should call cfg.Validate first
// and surface the error themselves.
func New(cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic("network: " + err.Error())
	}
	cfg.applyDefaults()
	n := &Network{cfg: cfg}
	root := sim.NewRNG(cfg.Seed)

	kind := cfg.TopologyKind
	if kind == 0 {
		kind = topology.Mesh
	}
	n.topo = topology.New(kind, cfg.Width, cfg.Height)
	for _, hf := range cfg.HardFaults {
		n.topo.FailLink(hf.From, hf.Dir)
	}
	route := routing.New(cfg.Routing, n.topo)
	xyCheck := !cfg.Routing.Adaptive()

	// Observability: attach the packet-journey tracker and any caller
	// sink before construction, so routers capture a bus that is already
	// final. With no sinks the bus stays disabled and costs nothing.
	if len(cfg.TracePIDs) > 0 {
		n.journey = newJourneyTracker(cfg.TracePIDs)
		n.bus.Attach(n.journey)
	}
	n.bus.Attach(cfg.TraceSink)
	n.inv = cfg.Invariants
	if n.inv != nil {
		n.bus.Attach(n.inv)
	}

	nodes := n.topo.Nodes()
	n.routers = make([]*router.Router, nodes)
	n.pes = make([]*pe, nodes)
	n.chanAt = make([]*link.Channel, nodes*int(topology.NumPorts))
	n.peUp = make([]*link.Channel, nodes)
	n.peDown = make([]*link.Channel, nodes)

	// Hard-fault regime: per-router fault maps, the mortality timeline
	// and the reconfiguration controller. Built before the routers so
	// each router's Config can capture its local map.
	if cfg.Faults.Mortality.Enabled() || cfg.Routing == routing.FaultAdaptive {
		n.mort = newMortalityState(n, route)
	}

	// Parallel partition: contiguous row bands, one worker each. The
	// worker count defaults to GOMAXPROCS and is clamped to the mesh
	// height (a band is at least one row).
	n.parallel = cfg.Kernel == kernel.Parallel
	if n.parallel {
		w := cfg.KernelWorkers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		if w > cfg.Height {
			w = cfg.Height
		}
		if w < 1 {
			w = 1
		}
		n.workers = w
		n.groupOf = make([]int, nodes)
		for i := range n.groupOf {
			n.groupOf[i] = (i / cfg.Width) * w / cfg.Height
		}
	}

	// Accounting shards: one Events + Counters per router, one Counters
	// per PE (PE events share the serial shard n.events).
	n.routerEvents = make([]stats.Events, nodes)
	n.routerCounters = make([]*fault.Counters, nodes)
	n.peCounters = make([]*fault.Counters, nodes)
	for i := 0; i < nodes; i++ {
		n.routerCounters[i] = fault.NewCounters()
		n.peCounters[i] = fault.NewCounters()
	}
	if n.parallel {
		n.routerMirrors = make([]stats.Events, nodes)
	}

	// Trace buffering (see the field comment). The decision is taken
	// here, after every construction-time sink is attached: sinks
	// attached later via Bus() are unsupported under the parallel kernel.
	buffered := n.parallel && n.bus.Enabled()
	if buffered {
		n.routerBus = make([]trace.Bus, nodes)
		n.peBus = make([]trace.Bus, nodes)
		n.actorBuf = make([]*traceBuffer, 2*nodes)
		for i := 0; i < nodes; i++ {
			rb, pb := new(traceBuffer), new(traceBuffer)
			n.actorBuf[2*i], n.actorBuf[2*i+1] = rb, pb
			n.routerBus[i].Attach(rb)
			n.peBus[i].Attach(pb)
		}
	}
	routerBus := func(i int) *trace.Bus {
		if buffered {
			return &n.routerBus[i]
		}
		return &n.bus
	}
	peBus := func(i int) *trace.Bus {
		if buffered {
			return &n.peBus[i]
		}
		return &n.bus
	}

	if n.bus.Enabled() {
		// Republish fault accounting as structured events, stamped with
		// the live cycle (the counters themselves are cycle-blind). One
		// observer per shard, emitting into the shard owner's bus, so
		// under the parallel kernel the emission lands in the owning
		// actor's buffer rather than racing on the shared bus.
		observer := func(bus *trace.Bus) func(op fault.CounterOp, cl fault.Class) {
			return func(op fault.CounterOp, cl fault.Class) {
				var k trace.Kind
				switch op {
				case fault.OpInjected:
					k = trace.FaultInjected
				case fault.OpCorrected:
					k = trace.FaultCorrected
				case fault.OpUndetected:
					k = trace.FaultUndetected
				default:
					return
				}
				bus.Emit(trace.Event{
					Cycle: n.kernel.Cycle(), Kind: k,
					Node: -1, Port: -1, VC: -1, Aux: uint64(cl),
				})
			}
		}
		for i := 0; i < nodes; i++ {
			n.routerCounters[i].Observer = observer(routerBus(i))
			n.peCounters[i].Observer = observer(peBus(i))
		}
	}

	logicRNG := root.Split()
	for i := 0; i < nodes; i++ {
		rc := router.Config{
			ID:              flit.NodeID(i),
			Topo:            n.topo,
			Route:           route,
			VCs:             cfg.VCs,
			BufDepth:        cfg.BufDepth,
			PipelineDepth:   cfg.PipelineDepth,
			Protection:      cfg.Protection,
			ACEnabled:       cfg.ACEnabled,
			XYCheck:         xyCheck,
			RecoveryEnabled: cfg.RecoveryEnabled,
			Cthres:          cfg.Cthres,
			Sparse:          cfg.Kernel == kernel.Event,
			Events:          &n.routerEvents[i],
			Counters:        n.routerCounters[i],
			Bus:             routerBus(i),
		}
		if n.parallel {
			rc.EventsMirror = &n.routerMirrors[i]
		}
		if n.mort != nil {
			rc.FaultMap = n.mort.maps[i]
			if n.inv != nil {
				rc.DeadSend = n.deadSendViolation
			}
		}
		if cfg.Faults.RT > 0 {
			rc.RTFault = fault.NewLogicInjector(fault.RTLogic, cfg.Faults.RT, logicRNG.Split())
		}
		if cfg.Faults.VA > 0 {
			rc.VAFault = fault.NewLogicInjector(fault.VALogic, cfg.Faults.VA, logicRNG.Split())
		}
		if cfg.Faults.SA > 0 {
			rc.SAFault = fault.NewLogicInjector(fault.SALogic, cfg.Faults.SA, logicRNG.Split())
		}
		if cfg.Faults.Xbar > 0 {
			rc.XbarFault = fault.NewLogicInjector(fault.XbarError, cfg.Faults.Xbar, logicRNG.Split())
		}
		n.routers[i] = router.New(rc)
	}

	// flitWires records, for every channel, which actor consumes its
	// forward flit pipe and which actor owns its transmitter (the NACK
	// consumer); the wake callbacks are installed once actor handles exist
	// (after registration below).
	type flitWire struct {
		ch     *link.Channel
		node   int
		toPE   bool
		txNode int
		txPE   bool
	}
	var wires []flitWire

	// Inter-router links: one channel per direction.
	linkRNG := root.Split()
	for _, l := range n.topo.Links() {
		dst, _ := n.topo.Neighbor(l.From, l.Dir)
		var inj fault.Corruptor
		if cfg.Faults.Link > 0 {
			inj = fault.NewLinkInjector(cfg.Faults.Link, cfg.Faults.LinkDouble, linkRNG.Split())
		}
		// Endpoint accounting: the transmitter side (Send, NACK receipt,
		// retransmission) is ticked by router l.From, the receiver side
		// (credits, NACK raising, ECC) by router dst — each charges its
		// own shard.
		ch := link.NewChannel(&n.kernel, inj, false, &n.routerEvents[l.From], n.routerCounters[l.From])
		ch.SetRxStats(&n.routerEvents[dst], n.routerCounters[dst])
		n.chanAt[int(l.From)*int(topology.NumPorts)+int(l.Dir)] = ch
		wires = append(wires, flitWire{ch: ch, node: int(dst), txNode: int(l.From)})
		if cfg.Faults.Handshake > 0 {
			ch.SetHandshakeFaults(cfg.Faults.Handshake, cfg.TMREnabled, linkRNG.Split())
		}
		tx := link.NewTransmitter(ch, cfg.VCs, cfg.BufDepth, cfg.shifterDepth(), &n.routerEvents[l.From], n.routerCounters[l.From])
		if cfg.Faults.RetransBuf > 0 {
			tx.SetRetransBufFaults(cfg.Faults.RetransBuf, cfg.DuplicateRetrans, linkRNG.Split())
		}
		rx := link.NewReceiver(ch, cfg.VCs, cfg.Protection, &n.routerEvents[dst], n.routerCounters[dst])
		tx.SetTrace(routerBus(int(l.From)), int32(l.From), int8(l.Dir))
		rx.SetTrace(routerBus(int(dst)), int32(dst), int8(l.Dir.Opposite()))
		if n.parallel {
			ch.SetArmShards(n.groupOf[l.From]+1, n.groupOf[dst]+1)
		}
		n.routers[l.From].AttachOutput(l.Dir, tx)
		n.routers[dst].AttachInput(l.Dir.Opposite(), rx)
		if n.inv != nil {
			n.watchLink(tx, rx, ch, int32(l.From), int8(l.Dir), int(dst), l.Dir.Opposite(), false)
		}
	}

	// PE <-> router local channels (fault-free, §2.2).
	trafficRNG := root.Split()
	for i := 0; i < nodes; i++ {
		id := flit.NodeID(i)
		// PE -> router: the PE owns the transmitter side (serial shards),
		// router i the receiver side.
		up := link.NewChannel(&n.kernel, nil, true, &n.events, n.peCounters[i])
		up.SetRxStats(&n.routerEvents[i], n.routerCounters[i])
		n.peUp[i] = up
		wires = append(wires, flitWire{ch: up, node: i, txNode: i, txPE: true})
		upTx := link.NewTransmitter(up, cfg.VCs, cfg.BufDepth, cfg.shifterDepth(), &n.events, n.peCounters[i])
		upRx := link.NewReceiver(up, cfg.VCs, cfg.Protection, &n.routerEvents[i], n.routerCounters[i])
		upTx.SetTrace(peBus(i), int32(i), int8(topology.Local))
		upRx.SetTrace(routerBus(i), int32(i), int8(topology.Local))
		n.routers[i].AttachInput(topology.Local, upRx)
		// Router -> PE: mirror image.
		down := link.NewChannel(&n.kernel, nil, true, &n.routerEvents[i], n.routerCounters[i])
		down.SetRxStats(&n.events, n.peCounters[i])
		n.peDown[i] = down
		wires = append(wires, flitWire{ch: down, node: i, toPE: true, txNode: i})
		downTx := link.NewTransmitter(down, cfg.VCs, cfg.BufDepth, cfg.shifterDepth(), &n.routerEvents[i], n.routerCounters[i])
		downRx := link.NewReceiver(down, cfg.VCs, cfg.Protection, &n.events, n.peCounters[i])
		downTx.SetTrace(routerBus(i), int32(i), int8(topology.Local))
		downRx.SetTrace(peBus(i), int32(i), int8(topology.Local))
		n.routers[i].AttachOutput(topology.Local, downTx)
		if n.parallel {
			up.SetArmShards(0, n.groupOf[i]+1)
			down.SetArmShards(n.groupOf[i]+1, 0)
		}
		if n.inv != nil {
			n.watchLink(upTx, upRx, up, int32(i), int8(topology.Local), i, topology.Local, false)
			n.watchLink(downTx, downRx, down, int32(i), int8(topology.Local), i, topology.Local, true)
		}

		src := traffic.NewSource(id, n.topo, cfg.Pattern, cfg.InjectionRate, cfg.PacketSize, trafficRNG.Split())
		n.pes[i] = newPE(n, id, src, upTx, downRx, peBus(i))
	}

	// Registration order (router i, PE i, router i+1, ...) fixes the
	// intra-cycle trace-event order and must not change.
	n.routerH = make([]sim.Handle, nodes)
	n.peH = make([]sim.Handle, nodes)
	for i := 0; i < nodes; i++ {
		n.routerH[i] = n.kernel.RegisterActor(n.routers[i])
		n.peH[i] = n.kernel.RegisterActor(n.pes[i])
	}

	// Quiescence wiring: every flit pipe wakes its consuming actor when a
	// latch leaves flits visible, and every NACK pipe wakes the
	// transmitter-owning actor (relaxed quiescence lets an actor sleep
	// with occupied retransmission shifters — see link.Channel.SetNACKWake
	// for why that makes NACK wakes necessary). Credit pipes need no wakes
	// (see link.Channel.SetFlitWake). Only with all deliveries covered is
	// it sound to opt the actors into idle skipping.
	for _, w := range wires {
		h := n.routerH[w.node]
		if w.toPE {
			h = n.peH[w.node]
		}
		w.ch.SetFlitWake(n.kernel.Waker(h))
		th := n.routerH[w.txNode]
		if w.txPE {
			th = n.peH[w.txNode]
		}
		w.ch.SetNACKWake(n.kernel.Waker(th))
	}
	for i := 0; i < nodes; i++ {
		n.kernel.EnableQuiescence(n.routerH[i])
		n.kernel.EnableQuiescence(n.peH[i])
	}
	switch cfg.Kernel {
	case kernel.Naive:
		n.kernel.SetMode(sim.ModeNaive)
	case kernel.Quiescent:
		n.kernel.SetMode(sim.ModeQuiescent)
	case kernel.Parallel:
		// Routers go to their band's worker; PEs stay serial (group -1):
		// they share global injection state (PID counter, delivery and
		// failure tallies, the latency accumulator) and must tick in
		// registration order.
		groups := make([]int, 2*nodes)
		for i := 0; i < nodes; i++ {
			groups[int(n.routerH[i])] = n.groupOf[i]
			groups[int(n.peH[i])] = -1
		}
		n.kernel.SetParallel(groups, n.workers)
	default:
		n.kernel.SetMode(sim.ModeEvent)
	}

	// Metrics registry: per-router gauges, sampled by Run.
	if cfg.Metrics != nil {
		for i := range n.routers {
			r := n.routers[i]
			cfg.Metrics.Register(i, "vc-occupancy", func() float64 {
				return occupancyFraction(r.BufferOccupancy())
			})
			cfg.Metrics.Register(i, "retrans-occupancy", func() float64 {
				return occupancyFraction(r.ShifterOccupancy())
			})
			cfg.Metrics.Register(i, "credit-stalls", func() float64 {
				return float64(r.CreditStalls())
			})
		}
	}
	return n
}

// occupancyFraction turns an (occupied, capacity) pair into [0,1].
func occupancyFraction(occupied, capacity int) float64 {
	if capacity == 0 {
		return 0
	}
	return float64(occupied) / float64(capacity)
}

// Bus exposes the network's structured event bus, letting embedding
// harnesses attach additional sinks before Run. Under the parallel
// kernel the bus must already be enabled at construction (TracePIDs,
// TraceSink or Invariants set) for per-actor buffering to engage; a
// first sink attached only here would receive racy concurrent
// emissions, so configure at least one sink through Config instead.
func (n *Network) Bus() *trace.Bus { return &n.bus }

// Topology returns the network's topology (for tooling).
func (n *Network) Topology() *topology.Topology { return n.topo }

// Kernel exposes the simulation kernel for fine-grained stepping in tests.
func (n *Network) Kernel() *sim.Kernel { return &n.kernel }

// Routers exposes the router array (read-only use).
func (n *Network) Routers() []*router.Router { return n.routers }

// nextPID allocates a packet identifier.
func (n *Network) nextPID() flit.PacketID {
	n.pidCounter++
	return flit.PacketID(n.pidCounter)
}

// recordDelivery accounts one cleanly ejected message; node is the
// delivering PE's index, which fixes how far the current cycle's tick
// order has progressed if this delivery opens the measurement window.
func (n *Network) recordDelivery(cycle, injectedAt uint64, node int) {
	n.delivered++
	n.lastEject = cycle
	if n.delivered == n.cfg.WarmupMessages {
		n.startMeasuring(cycle, node)
	}
	if n.measuring && n.delivered > n.cfg.WarmupMessages {
		n.latency.Record(cycle - injectedAt)
	}
}

// startMeasuring snapshots the event counters at the warm-up boundary.
// When triggered by a delivery it fires mid-cycle, from PE node's tick;
// sleeping routers' lazily deferred idle-tick counters must be replayed
// to exactly that point first, or the snapshot would differ from the
// naive kernel's.
func (n *Network) startMeasuring(cycle uint64, node int) {
	n.syncIdleCounters(cycle, node)
	n.measuring = true
	n.warmupEvents = n.snapshotEvents(cycle, node)
	n.warmupCycle = cycle
}

// totalEvents sums the serial shard and every per-router shard into the
// run-total counters. Integer sums are order-independent, so the result
// is identical no matter which kernel filled the shards.
func (n *Network) totalEvents() stats.Events {
	t := n.events
	for i := range n.routerEvents {
		t.Add(n.routerEvents[i])
	}
	return t
}

// snapshotEvents reconstructs the run-total event counters as the naive
// kernel would show them at an observation point during cycle's actor
// loop, from PE node's tick (node = -1 at a clean cycle boundary). The
// serial shard and routers with index <= node are exactly current: PEs
// past node cannot have ticked yet, and syncIdleCounters has replayed
// sleeping routers to the right point. A router PAST node has not
// reached this cycle's tick in the serial order — but the parallel
// kernel ticks every router before any PE, so it may already hold this
// cycle's contributions. Its mirror preserves the pre-tick state for
// exactly this case: used when the kernel executed the router's tick
// this cycle, otherwise the live shard (idle catch-up included) is
// already right.
func (n *Network) snapshotEvents(cycle uint64, node int) stats.Events {
	t := n.events
	for i := range n.routerEvents {
		if n.parallel && i > node {
			if last, ok := n.kernel.LastTicked(n.routerH[i]); ok && last == cycle {
				t.Add(n.routerMirrors[i])
				continue
			}
		}
		t.Add(n.routerEvents[i])
	}
	return t
}

// mergedCounters folds the per-actor fault-counter shards into one
// record. Exact regardless of kernel: every count is attributed to
// exactly one shard.
func (n *Network) mergedCounters() *fault.Counters {
	m := fault.NewCounters()
	for _, c := range n.routerCounters {
		m.Merge(c)
	}
	for _, c := range n.peCounters {
		m.Merge(c)
	}
	return m
}

// traceBuffer is a trace.Sink recording one actor's events for deferred
// in-order replay. The backing slice keeps its capacity across cycles.
type traceBuffer struct{ evs []trace.Event }

// Emit implements trace.Sink.
func (t *traceBuffer) Emit(e trace.Event) { t.evs = append(t.evs, e) }

// flushTrace replays the per-actor trace buffers into the real bus in
// registration order (router 0, PE 0, router 1, ...), reproducing the
// serial kernels' intra-cycle event order.
func (n *Network) flushTrace() {
	for _, b := range n.actorBuf {
		for _, e := range b.evs {
			n.bus.Emit(e)
		}
		b.evs = b.evs[:0]
	}
}

// syncIdleCounters brings every sleeping router's externally visible
// counters up to date with what the naive kernel would show at an
// observation point during cycle's actor loop. Actors tick in node order
// (router 0, PE 0, router 1, ...), so routers with index <= upTo have
// already ticked this cycle and owe its idle effects too; later routers
// owe only the cycles before it. Awake routers are already current and
// the call is a no-op for them. Pass upTo = -1 at a clean cycle boundary.
func (n *Network) syncIdleCounters(cycle uint64, upTo int) {
	for i, r := range n.routers {
		if i <= upTo {
			r.CatchUpTo(cycle + 1)
		} else {
			r.CatchUpTo(cycle)
		}
	}
}

// AbortCheckInterval is how often (in cycles) RunContext polls its
// context for cancellation: once cancelled, RunContext returns within
// this many simulated cycles.
const AbortCheckInterval = 256

// Run drives the simulation until TotalMessages have ejected, the network
// stalls, or MaxCycles elapse, then returns the measurements. It is the
// zero-dependency wrapper around RunContext for callers that never cancel.
func (n *Network) Run() Results { return n.run(nil) }

// RunContext is Run with cooperative cancellation: it polls ctx every
// AbortCheckInterval cycles and, once ctx is done, stops the simulation
// and returns the measurements gathered so far with Aborted set. A
// cancelled run is a partial measurement, not an error — latency and
// event counts cover whatever completed before the abort.
func (n *Network) RunContext(ctx context.Context) Results {
	return n.run(ctx.Done())
}

func (n *Network) run(done <-chan struct{}) Results {
	// The parallel kernel keeps persistent worker goroutines between
	// steps; release them however the run ends. No-op for serial kernels.
	defer n.kernel.StopWorkers()
	if n.cfg.WarmupMessages == 0 {
		n.startMeasuring(0, -1)
	}
	stalled, aborted := false, false
	for n.accounted() < n.cfg.TotalMessages {
		c := n.kernel.Cycle()
		if c >= n.cfg.MaxCycles {
			break
		}
		if c > n.lastEject+n.cfg.StallCycles && (n.delivered > 0 || c > n.cfg.StallCycles) {
			stalled = true
			break
		}
		if done != nil && c%AbortCheckInterval == 0 {
			select {
			case <-done:
				aborted = true
			default:
			}
			if aborted {
				break
			}
		}
		if n.mort != nil {
			// Hard-fault boundary processing for cycle c, before the step
			// executes it: every kernel's Step advances exactly one cycle,
			// so deaths land at identical boundaries under all four.
			n.mort.preStep(c)
			if n.accounted() >= n.cfg.TotalMessages {
				break
			}
		}
		n.kernel.Step()
		if n.actorBuf != nil {
			n.flushTrace()
		}
		if n.inv != nil {
			if cl := n.kernel.Cycle(); cl%n.inv.Every() == 0 {
				n.checkState(cl)
			}
		}
		if n.measuring {
			n.sampleUtilization()
		}
		if n.journey != nil {
			n.journey.endCycle(n.kernel.Cycle())
		}
		if n.cfg.Metrics != nil {
			n.cfg.Metrics.Tick(n.kernel.Cycle())
		}
	}
	res := n.results(stalled)
	res.Aborted = aborted
	if n.inv != nil {
		clean := !stalled && !aborted && n.accounted() >= n.cfg.TotalMessages
		n.inv.Finalize(n.kernel.Cycle(), clean, n.residentPIDs())
	}
	return res
}

// accounted is the termination tally: messages that have reached a final
// verdict. Delivered always counts; in the hard-fault regime messages
// proven undeliverable (destination unreachable, or destroyed by a death
// boundary) count too — waiting for them would spin until MaxCycles.
func (n *Network) accounted() uint64 {
	if n.mort == nil {
		return n.delivered
	}
	return n.delivered + n.mort.undeliverable
}

// sampleUtilization records this cycle's buffer occupancies (Figs. 8-9)
// plus the per-router breakdown for floorplan heatmaps.
func (n *Network) sampleUtilization() {
	if n.routerUtil == nil {
		n.routerUtil = make([]stats.Utilization, len(n.routers))
		n.bufCap = make([]int, len(n.routers))
		for i, r := range n.routers {
			_, n.bufCap[i] = r.BufferOccupancy()
		}
	}
	to, tc, ro, rc := 0, 0, 0, 0
	for i, r := range n.routers {
		if n.kernel.Asleep(n.routerH[i]) {
			// A quiescent router proved every VC buffer empty, so its
			// buffer sample is (0, capacity) without walking them. Its
			// retransmission shifters may still hold entries awaiting
			// their NACK-window expiry (relaxed quiescence), and that
			// frozen occupancy is exactly what the naive kernel would
			// observe — no entry can expire before the declared wake —
			// so it is read for real.
			n.routerUtil[i].Sample(0, n.bufCap[i])
			tc += n.bufCap[i]
			o, c := r.ShifterOccupancy()
			ro += o
			rc += c
			continue
		}
		o, c := r.BufferOccupancy()
		n.routerUtil[i].Sample(o, c)
		to += o
		tc += c
		o, c = r.ShifterOccupancy()
		ro += o
		rc += c
	}
	n.txUtil.Sample(to, tc)
	n.rtUtil.Sample(ro, rc)
}

// KernelStats reports the kernel's cumulative scheduling counters: actor
// ticks executed, actor ticks skipped relative to the naive schedule, and
// calendar-queue events dispatched (event mode only). Deliberately not
// part of Results — scheduling is an implementation detail and all
// kernels must produce identical Results.
func (n *Network) KernelStats() sim.Stats { return n.kernel.Stats() }

// Snapshot renders every router's live VC state — a debugging view of
// the whole chip at the current cycle.
func (n *Network) Snapshot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle %d, delivered %d\n", n.kernel.Cycle(), n.delivered)
	for i, r := range n.routers {
		state := r.DebugVCs(n.kernel.Cycle())
		if state == "" && !r.InRecovery() {
			continue
		}
		fmt.Fprintf(&b, "router %2d recovery=%v: %s\n", i, r.InRecovery(), state)
	}
	return b.String()
}

// results assembles the final measurement record.
func (n *Network) results(stalled bool) Results {
	// Runs end at a clean cycle boundary; settle any counter catch-up
	// still pending in sleeping routers before reading the totals.
	n.syncIdleCounters(n.kernel.Cycle(), -1)
	total := n.totalEvents()
	measured := stats.Events{}
	if n.measuring {
		measured = subtractEvents(total, n.warmupEvents)
	}
	cycles := n.kernel.Cycle()
	measuredCycles := uint64(0)
	if n.measuring && cycles > n.warmupCycle {
		measuredCycles = cycles - n.warmupCycle
	}
	var recoveries, probes, viol, stray uint64
	for _, r := range n.routers {
		recoveries += r.Recoveries()
		probes += r.ProbesSent()
		viol += r.WormholeViolations()
		stray += r.StrayFlits()
	}
	measuredMsgs := uint64(0)
	if n.delivered > n.cfg.WarmupMessages {
		measuredMsgs = n.delivered - n.cfg.WarmupMessages
	}
	res := Results{
		Cycles:                cycles,
		LatencyHist:           n.latency.Histogram(latencyBinWidth, latencyBins),
		MeasuredCycles:        measuredCycles,
		Delivered:             n.delivered,
		MeasuredMessages:      measuredMsgs,
		AvgLatency:            n.latency.Mean(),
		P95Latency:            n.latency.Percentile(95),
		MaxLatency:            n.latency.Max(),
		Events:                measured,
		TotalEvents:           total,
		TxBufUtil:             n.txUtil.Mean(),
		RtBufUtil:             n.rtUtil.Mean(),
		RouterTxUtil:          routerMeans(n.routerUtil),
		Counters:              n.mergedCounters(),
		Recoveries:            recoveries,
		ProbesSent:            probes,
		WormholeViolations:    viol,
		StrayFlits:            stray,
		CorruptedPackets:      n.corruptedPackets,
		LostPackets:           n.lostPackets,
		SinkAnomalies:         n.sinkAnomalies,
		E2ENACKs:              n.e2eNACKs,
		E2ERetransmits:        n.e2eRetransmits,
		E2EBufMax:             n.e2eBufMax,
		Traces:                n.tracesForResults(),
		Stalled:               stalled,
		ReachablePairFraction: 1,
		Throughput: stats.Throughput{
			FlitsDelivered:    measuredMsgs * uint64(n.cfg.PacketSize),
			MessagesDelivered: measuredMsgs,
			Cycles:            measuredCycles,
			Nodes:             n.topo.Nodes(),
		},
	}
	if n.mort != nil {
		res.Undeliverable = n.mort.undeliverable
		res.DeadLinks = n.mort.deadLinks
		res.DeadRouters = n.mort.deadRouters
		res.ReachablePairFraction = n.mort.reachablePairFraction()
		res.PostFaultThroughput = n.mort.postFaultThroughput(n.delivered, cycles)
	}
	return res
}

// Latency histogram shape: 24 bins of 10 cycles, last bin open-ended.
const (
	latencyBinWidth = 10
	latencyBins     = 24
)

// routerMeans extracts the time-averaged per-router utilizations.
func routerMeans(us []stats.Utilization) []float64 {
	if us == nil {
		return nil
	}
	out := make([]float64, len(us))
	for i := range us {
		out[i] = us[i].Mean()
	}
	return out
}

func subtractEvents(a, b stats.Events) stats.Events {
	return stats.Events{
		BufWrites:       a.BufWrites - b.BufWrites,
		BufReads:        a.BufReads - b.BufReads,
		XbTraversals:    a.XbTraversals - b.XbTraversals,
		LinkTraversals:  a.LinkTraversals - b.LinkTraversals,
		LocalTraversals: a.LocalTraversals - b.LocalTraversals,
		VAAllocs:        a.VAAllocs - b.VAAllocs,
		SAAllocs:        a.SAAllocs - b.SAAllocs,
		RetransWrites:   a.RetransWrites - b.RetransWrites,
		Retransmitted:   a.Retransmitted - b.Retransmitted,
		NACKs:           a.NACKs - b.NACKs,
		Credits:         a.Credits - b.Credits,
		Probes:          a.Probes - b.Probes,
		ECCDecodes:      a.ECCDecodes - b.ECCDecodes,
		ECCCorrections:  a.ECCCorrections - b.ECCCorrections,
		ACChecks:        a.ACChecks - b.ACChecks,
		RTComputes:      a.RTComputes - b.RTComputes,
	}
}

// Results is the measurement record of one simulation run. Event counts
// and latency cover the post-warm-up window; Total* fields cover the
// whole run.
type Results struct {
	Cycles           uint64
	MeasuredCycles   uint64
	Delivered        uint64
	MeasuredMessages uint64

	AvgLatency float64
	P95Latency float64
	MaxLatency float64
	// LatencyHist buckets measured message latencies into latencyBins
	// bins of latencyBinWidth cycles (last bin is open-ended).
	LatencyHist []int
	Throughput  stats.Throughput

	Events      stats.Events
	TotalEvents stats.Events

	TxBufUtil float64 // transmission (input VC) buffer utilization, Fig. 8
	RtBufUtil float64 // retransmission buffer utilization, Fig. 9
	// RouterTxUtil is the per-router breakdown of TxBufUtil, indexed by
	// node id (nil if measurement never started).
	RouterTxUtil []float64

	Counters *fault.Counters

	Recoveries         uint64
	ProbesSent         uint64
	WormholeViolations uint64
	StrayFlits         uint64
	CorruptedPackets   uint64
	LostPackets        uint64
	SinkAnomalies      uint64
	E2ENACKs           uint64
	E2ERetransmits     uint64
	E2EBufMax          int

	// Traces holds the recorded journeys of Config.TracePIDs packets,
	// keyed by packet ID, one line per location change.
	Traces map[uint64][]string

	Stalled bool
	// Aborted reports that RunContext stopped early because its context
	// was cancelled; all measurements cover only the completed prefix.
	Aborted bool

	// Hard-fault regime measurements. Undeliverable counts messages with
	// a terminal negative verdict: refused at injection because the
	// destination was unreachable, or destroyed mid-flight by a death
	// boundary or stuck-worm sweep. DeadLinks/DeadRouters are the final
	// mortality tallies. ReachablePairFraction is the fraction of ordered
	// source/destination pairs still connected at the end of the run
	// (1 when no hard-fault state exists). PostFaultThroughput is the
	// flits/node/cycle rate over the window after the last applied death
	// (equal to the whole-run rate when nothing died).
	Undeliverable         uint64
	DeadLinks             int
	DeadRouters           int
	ReachablePairFraction float64
	PostFaultThroughput   float64
}

// tracesForResults exports the journey tracker's recorded lines (nil
// when tracing was not configured).
func (n *Network) tracesForResults() map[uint64][]string {
	if n.journey == nil {
		return nil
	}
	return n.journey.export()
}

// String summarises the run for human consumption.
func (r Results) String() string {
	return fmt.Sprintf("delivered %d msgs in %d cycles: avg latency %.1f cyc, tx-util %.3f, rt-util %.3f, retrans %d, recoveries %d",
		r.Delivered, r.Cycles, r.AvgLatency, r.TxBufUtil, r.RtBufUtil, r.TotalEvents.Retransmitted, r.Recoveries)
}
