package network

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

func tinyRunConfig() Config {
	cfg := NewConfig()
	cfg.Width, cfg.Height = 4, 4
	cfg.WarmupMessages = 50
	cfg.TotalMessages = 300
	cfg.MaxCycles = 100_000
	cfg.StallCycles = 30_000
	return cfg
}

func TestValidateErrors(t *testing.T) {
	if err := NewConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Width = 1; c.Height = 1 },
		func(c *Config) { c.VCs = 0 },
		func(c *Config) { c.BufDepth = 0 },
		func(c *Config) { c.PacketSize = 1 },
		func(c *Config) { c.PipelineDepth = 5 },
		func(c *Config) { c.InjectionRate = 1.5 },
		func(c *Config) { c.InjectionRate = -0.1 },
		func(c *Config) { c.TotalMessages = 0 },
		func(c *Config) { c.TotalMessages = 5; c.WarmupMessages = 10 },
	}
	for i, mutate := range bad {
		cfg := NewConfig()
		mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("bad config %d passed Validate", i)
			continue
		}
		if !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("bad config %d: error %v does not wrap ErrInvalidConfig", i, err)
		}
	}
	// Zero-valued optional fields are valid: New fills their defaults.
	cfg := NewConfig()
	cfg.Protection = 0
	cfg.MaxCycles = 0
	cfg.StallCycles = 0
	cfg.E2ETimeout = 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("optional zero fields rejected: %v", err)
	}
}

// TestRunContextMatchesRun: an uncancelled RunContext is byte-identical
// to Run.
func TestRunContextMatchesRun(t *testing.T) {
	cfg := tinyRunConfig()
	a := New(cfg).Run()
	b := New(cfg).RunContext(context.Background())
	if b.Aborted {
		t.Fatal("uncancelled RunContext marked aborted")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("RunContext diverged from Run:\n%+v\nvs\n%+v", a, b)
	}
}

// TestRunContextPreCancelled: an already-cancelled context aborts at the
// very first check — within one AbortCheckInterval of cycle zero.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := New(tinyRunConfig()).RunContext(ctx)
	if !res.Aborted {
		t.Fatal("pre-cancelled run not aborted")
	}
	if res.Cycles > AbortCheckInterval {
		t.Fatalf("aborted after %d cycles, want <= %d", res.Cycles, AbortCheckInterval)
	}
}

// TestRunContextCancelMidRun: cancellation during a long run returns
// promptly with the partial measurements.
func TestRunContextCancelMidRun(t *testing.T) {
	cfg := tinyRunConfig()
	cfg.WarmupMessages = 0
	cfg.TotalMessages = 1_000_000 // far beyond the cancel horizon
	cfg.MaxCycles = 500_000_000
	cfg.StallCycles = 500_000_000
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res := New(cfg).RunContext(ctx)
	if !res.Aborted {
		t.Fatal("cancelled run not aborted")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if res.Delivered == 0 {
		t.Fatal("expected partial deliveries before the abort")
	}
}
