package network

import (
	"math/rand"
	"os"
	"reflect"
	"testing"

	"ftnoc/internal/invariant"
	"ftnoc/internal/kernel"
	"ftnoc/internal/link"
	"ftnoc/internal/routing"
	"ftnoc/internal/topology"
)

// TestInvariantCheckerCatchesCreditLeak is the checker's proof of work:
// a deliberately broken credit loop — every 4th freed buffer slot never
// reported back to the transmitter (link.Receiver.SkipCreditEvery) —
// must be flagged as a credit-conservation violation. A checker that
// passes clean runs but cannot see this bug would be decorative.
func TestInvariantCheckerCatchesCreditLeak(t *testing.T) {
	cfg := NewConfig()
	cfg.Width, cfg.Height = 4, 4
	cfg.WarmupMessages = 0
	cfg.TotalMessages = 400
	cfg.MaxCycles = 100_000
	cfg.StallCycles = 5_000
	cfg.Seed = 17
	chk := attachChecker(&cfg)
	n := New(cfg)

	// Break one inter-router receiver. The loops slice is ordered: every
	// inter-router link first, then the per-node PE channels.
	broken := n.loops[0]
	if broken.toPE {
		t.Fatal("expected loops[0] to be an inter-router link")
	}
	broken.rx.SkipCreditEvery(4)

	n.Run()

	creditViolations := 0
	for _, v := range chk.Violations() {
		if v.Check == "credits" {
			creditViolations++
			if v.Node != broken.node || v.Port != broken.port {
				t.Errorf("violation attributed to node %d port %d, leak is at node %d port %d",
					v.Node, v.Port, broken.node, broken.port)
			}
		}
	}
	if creditViolations == 0 {
		t.Fatalf("skipped credit returns went undetected (total violations: %d)", chk.Total())
	}
	if chk.Err() == nil {
		t.Fatal("Err() nil despite recorded violations")
	}
}

// TestInvariantCheckerCleanRun pins the other side of the contract: an
// unbroken run reports zero violations and a balanced ledger.
func TestInvariantCheckerCleanRun(t *testing.T) {
	cfg := NewConfig()
	cfg.Width, cfg.Height = 4, 4
	cfg.WarmupMessages = 0
	cfg.TotalMessages = 300
	cfg.MaxCycles = 100_000
	cfg.Seed = 23
	chk := attachChecker(&cfg)
	res := New(cfg).Run()
	if res.Stalled {
		t.Fatal("clean run stalled")
	}
	assertClean(t, "clean", chk)
	injected, ejected, dropped, _ := chk.Stats()
	if injected == 0 || ejected == 0 {
		t.Fatalf("ledger empty: injected %d ejected %d", injected, ejected)
	}
	if dropped != 0 {
		t.Fatalf("fault-free run recorded %d terminal drops", dropped)
	}
	if ejected+dropped > injected {
		t.Fatalf("ledger overflow: %d ejected + %d dropped > %d injected", ejected, dropped, injected)
	}
}

// TestInvariantCheckerHardFaults exercises the audit under permanent
// link failures and adaptive routing — the configuration most likely to
// bend flow control — and still demands a spotless verdict.
func TestInvariantCheckerHardFaults(t *testing.T) {
	cfg := NewConfig()
	cfg.Width, cfg.Height = 4, 4
	cfg.Routing = routing.MinimalAdaptive
	cfg.WarmupMessages = 0
	cfg.TotalMessages = 300
	cfg.MaxCycles = 200_000
	cfg.Seed = 29
	cfg.Faults.Link = 1e-3
	cfg.HardFaults = []topology.LinkID{
		{From: 5, Dir: topology.East},
		{From: 10, Dir: topology.North},
	}
	chk := attachChecker(&cfg)
	New(cfg).Run()
	assertClean(t, "hard-faults", chk)
}

// TestRandomizedDifferentialProperty is the property-based harness: a
// seeded stream of random configurations, each run under both kernels
// with the invariant checker attached. The property is twofold — the
// kernels agree exactly, and no configuration drives the simulator into
// an invariant violation. FTNOC_SOAK=1 widens the sample for long CI
// soak runs.
func TestRandomizedDifferentialProperty(t *testing.T) {
	iters := 6
	if os.Getenv("FTNOC_SOAK") != "" {
		iters = 60
	}
	rng := rand.New(rand.NewSource(0xF7A0C))
	algs := []routing.Algorithm{routing.XY, routing.OddEven, routing.MinimalAdaptive}
	prots := []link.Protection{link.HBH, link.E2E, link.FEC}
	for i := 0; i < iters; i++ {
		cfg := NewConfig()
		cfg.Width = 3 + rng.Intn(3)
		cfg.Height = 3 + rng.Intn(3)
		cfg.VCs = 2 + rng.Intn(3)
		cfg.BufDepth = 2 + rng.Intn(4)
		cfg.PacketSize = 2 + rng.Intn(4)
		cfg.PipelineDepth = 1 + rng.Intn(4)
		cfg.Routing = algs[rng.Intn(len(algs))]
		cfg.Protection = prots[rng.Intn(len(prots))]
		cfg.InjectionRate = 0.05 + 0.25*rng.Float64()
		cfg.Faults.Link = []float64{0, 1e-3, 1e-2}[rng.Intn(3)]
		cfg.WarmupMessages = 0
		cfg.TotalMessages = 150
		cfg.MaxCycles = 300_000
		cfg.Seed = rng.Uint64()

		hash, err := cfg.CanonicalHash()
		if err != nil {
			t.Fatalf("hashing config: %v", err)
		}
		t.Run(hash[:12], func(t *testing.T) {
			t.Parallel()
			want, _ := runKernel(t, cfg, kernel.Naive)
			for _, k := range diffKernels() {
				got, _ := runKernel(t, cfg, k)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("%v kernel diverged on %+v:\nnaive: %+v\n%v:    %+v", k, cfg, want, k, got)
				}
			}
		})
	}
}

// TestInvariantCheckerStalledRun ensures Finalize does not misreport a
// stalled run's stranded packets as conservation violations: stalls are
// legitimate outcomes (e.g. saturation without recovery), and the
// checker only demands full accounting from clean terminations.
func TestInvariantCheckerStalledRun(t *testing.T) {
	cfg := NewConfig()
	cfg.Width, cfg.Height = 3, 3
	cfg.RecoveryEnabled = false
	cfg.InjectionRate = 0.9 // saturating
	cfg.WarmupMessages = 0
	cfg.TotalMessages = 100_000
	cfg.MaxCycles = 30_000
	cfg.StallCycles = 2_000
	cfg.Seed = 31
	chk := attachChecker(&cfg)
	New(cfg).Run()
	for _, v := range chk.Violations() {
		if v.Check == "conservation" {
			t.Fatalf("stalled/truncated run misreported as conservation violation: %v", v)
		}
	}
}

// TestInvariantConfigDefaults pins the zero-value behaviour the CLI
// relies on (-check with no tuning must be usable).
func TestInvariantConfigDefaults(t *testing.T) {
	chk := invariant.New(invariant.Config{})
	if chk.Every() != 1 {
		t.Errorf("default audit stride = %d, want 1", chk.Every())
	}
	if chk.RecoveryBound() != 1<<17 {
		t.Errorf("default recovery bound = %d, want %d", chk.RecoveryBound(), 1<<17)
	}
	if err := chk.Err(); err != nil {
		t.Errorf("fresh checker reports error: %v", err)
	}
}
