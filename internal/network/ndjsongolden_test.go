package network

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ftnoc/internal/trace"
)

// ndjsonGoldenConfig is a small run with link errors, so the event
// stream includes the retransmission and ECC paths, bounded tightly
// enough to keep the golden file reviewable.
func ndjsonGoldenConfig() Config {
	cfg := smallConfig()
	cfg.WarmupMessages = 0
	cfg.TotalMessages = 12
	cfg.InjectLimit = 12
	cfg.Faults.Link = 1e-2
	cfg.Seed = 11
	return cfg
}

// captureNDJSON runs the config with an NDJSON sink attached and returns
// the raw stream.
func captureNDJSON(t *testing.T, cfg Config) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink := trace.NewNDJSON(&buf)
	cfg.TraceSink = sink
	res := New(cfg).Run()
	if res.Stalled {
		t.Fatal("stalled")
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The NDJSON event stream must be a deterministic function of the
// configuration and seed: two identical runs produce identical bytes,
// and the bytes match the checked-in golden file.
func TestNDJSONGoldenDeterminism(t *testing.T) {
	got := captureNDJSON(t, ndjsonGoldenConfig())
	again := captureNDJSON(t, ndjsonGoldenConfig())
	if !bytes.Equal(got, again) {
		t.Fatal("two identical runs produced different NDJSON streams")
	}

	path := filepath.Join("testdata", "events_golden.ndjson")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("NDJSON stream diverged from golden (len got %d, want %d)", len(got), len(want))
	}
}
