package network

import (
	"testing"

	"ftnoc/internal/fault"
)

// §4.6: with TMR on the handshake lines, injected handshake faults are
// all masked and traffic is unaffected even while link errors exercise
// the NACK wires heavily.
func TestTMRMasksHandshakeFaults(t *testing.T) {
	cfg := smallConfig()
	cfg.Faults.Link = 0.02 // generate plenty of NACK traffic
	cfg.Faults.Handshake = 0.2
	cfg.TMREnabled = true
	res := New(cfg).Run()
	if res.Stalled || res.Delivered < cfg.TotalMessages {
		t.Fatalf("run incomplete under TMR: %v", res)
	}
	inj := res.Counters.Injected[fault.HandshakeError]
	cor := res.Counters.Corrected[fault.HandshakeError]
	if inj == 0 {
		t.Fatal("no handshake faults injected at rate 0.2")
	}
	if cor != inj {
		t.Fatalf("TMR masked %d of %d handshake faults; must mask all", cor, inj)
	}
	if res.Counters.Undetected[fault.HandshakeError] != 0 {
		t.Fatal("handshake faults escaped under TMR")
	}
	if res.CorruptedPackets != 0 || res.SinkAnomalies != 0 {
		t.Fatalf("traffic corrupted under TMR: %+v", res)
	}
}

// Without TMR, lost NACKs strand retransmissions: the same fault rates
// visibly damage the network (missing deliveries, stalls or stranded
// wormholes).
func TestHandshakeFaultsWithoutTMR(t *testing.T) {
	cfg := smallConfig()
	cfg.Faults.Link = 0.02
	cfg.Faults.Handshake = 0.5
	cfg.TMREnabled = false
	cfg.StallCycles = 30_000
	cfg.MaxCycles = 200_000
	res := New(cfg).Run()
	lost := res.Counters.Undetected[fault.HandshakeError]
	if lost == 0 {
		t.Fatal("no handshake faults lost despite TMR being off")
	}
	if res.Counters.Corrected[fault.HandshakeError] != 0 {
		t.Fatal("handshake corrections recorded without a voter")
	}
	// A lost link-error NACK means the dropped flits are never replayed:
	// the packets they belonged to arrive with sequence gaps (or the run
	// outright stalls on the leaked state).
	damage := res.CorruptedPackets + res.SinkAnomalies
	if !res.Stalled && damage == 0 {
		t.Fatalf("network fully healthy despite %d lost NACKs; fault path inert", lost)
	}
}
