package network

import (
	"io"
	"testing"

	"ftnoc/internal/kernel"
	"ftnoc/internal/trace"
)

// benchConfig is the steady-state benchmark workload: a fault-free 4x4
// mesh at the paper's 0.25 operating point, trace bus off. Warm-up is
// set unreachably high so the measurement window never opens during the
// benchmark — latency sampling appends to a slice and would otherwise
// show up as (amortised) allocations that are the statistics pipeline's,
// not the kernel's.
func benchConfig() Config {
	cfg := NewConfig()
	cfg.Width, cfg.Height = 4, 4
	cfg.InjectionRate = 0.25
	cfg.WarmupMessages = 1 << 62
	cfg.TotalMessages = 1 << 62
	cfg.MaxCycles = 1 << 62
	return cfg
}

// BenchmarkKernelSteady is the CI-guarded hot path: one simulated cycle
// of the whole network in steady state under the default (event)
// scheduler. After the 2000-cycle warm-up all scratch buffers, queues,
// calendar buckets and wake-heap capacity have reached their
// steady-state sizes, so the per-cycle step must allocate nothing — the
// CI bench-smoke job fails the build if allocs/op is ever > 0.
func BenchmarkKernelSteady(b *testing.B) {
	n := New(benchConfig())
	for i := 0; i < 2000; i++ {
		n.kernel.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.kernel.Step()
	}
	b.StopTimer()
	reportKernel(b, n)
}

// BenchmarkKernelSteadyMetrics proves the zero-cost-when-unscraped
// observability contract on the hot path: a metrics registry is
// attached (every router registers its three gauges at construction)
// but the sampling interval never fires inside the measurement window,
// and the steady-state tick must still allocate nothing — the off-cycle
// Tick is one modulo and a return.
func BenchmarkKernelSteadyMetrics(b *testing.B) {
	cfg := benchConfig()
	m := trace.NewMetrics(io.Discard, 1<<62)
	cfg.Metrics = m
	n := New(cfg)
	for i := 0; i < 2000; i++ {
		n.kernel.Step()
		m.Tick(n.kernel.Cycle())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.kernel.Step()
		m.Tick(n.kernel.Cycle())
	}
	b.StopTimer()
	reportKernel(b, n)
}

// BenchmarkKernelSteadyNaive is the same workload under the naive
// scheduler — the baseline every other kernel is measured against.
func BenchmarkKernelSteadyNaive(b *testing.B) {
	cfg := benchConfig()
	cfg.Kernel = kernel.Naive
	n := New(cfg)
	for i := 0; i < 2000; i++ {
		n.kernel.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.kernel.Step()
	}
	b.StopTimer()
	reportKernel(b, n)
}

// BenchmarkKernelSteadyQuiescent is the same workload under the
// quiescent scheduler: the per-cycle active-set walk with dense VC
// iteration, kept live as the middle point between naive and event.
func BenchmarkKernelSteadyQuiescent(b *testing.B) {
	cfg := benchConfig()
	cfg.Kernel = kernel.Quiescent
	n := New(cfg)
	for i := 0; i < 2000; i++ {
		n.kernel.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.kernel.Step()
	}
	b.StopTimer()
	reportKernel(b, n)
}

// BenchmarkKernelSteadyParallel is the same workload under the
// mesh-partitioned parallel scheduler. It shares the CI allocation
// gate with the other steady benchmarks: after warm-up the per-cycle
// step is worker wake/join over pre-allocated channels plus in-place
// heap walks, so it must allocate nothing even with the barrier in the
// loop. On a 4x4 mesh the bands are small and barrier overhead
// dominates — see the 16x16 variant for the workload the kernel is for.
func BenchmarkKernelSteadyParallel(b *testing.B) {
	cfg := benchConfig()
	cfg.Kernel = kernel.Parallel
	n := New(cfg)
	defer n.kernel.StopWorkers()
	for i := 0; i < 2000; i++ {
		n.kernel.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.kernel.Step()
	}
	b.StopTimer()
	reportKernel(b, n)
}

// BenchmarkKernelSteadyParallel16 is the parallel kernel's home
// workload: a 16x16 mesh at the paper's 0.25 operating point, where
// each row band carries enough routers per cycle to amortise the
// barrier. Compare against BenchmarkKernelSteadyEvent16.
func BenchmarkKernelSteadyParallel16(b *testing.B) {
	cfg := benchConfig()
	cfg.Width, cfg.Height = 16, 16
	cfg.Kernel = kernel.Parallel
	n := New(cfg)
	defer n.kernel.StopWorkers()
	for i := 0; i < 6000; i++ {
		n.kernel.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.kernel.Step()
	}
	b.StopTimer()
	reportKernel(b, n)
}

// BenchmarkKernelSteadyEvent16 is the serial comparison point for
// BenchmarkKernelSteadyParallel16: the default event kernel on the
// identical 16x16 workload.
func BenchmarkKernelSteadyEvent16(b *testing.B) {
	cfg := benchConfig()
	cfg.Width, cfg.Height = 16, 16
	n := New(cfg)
	for i := 0; i < 6000; i++ {
		n.kernel.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.kernel.Step()
	}
	b.StopTimer()
	reportKernel(b, n)
}

// BenchmarkKernelSteadyLowLoad is the quiescence showcase: at 0.05
// injection most actors are idle most cycles, and the kernel skips them
// outright instead of ticking them to prove they had nothing to do.
func BenchmarkKernelSteadyLowLoad(b *testing.B) {
	cfg := benchConfig()
	cfg.InjectionRate = 0.05
	n := New(cfg)
	for i := 0; i < 2000; i++ {
		n.kernel.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.kernel.Step()
	}
	b.StopTimer()
	reportKernel(b, n)
}

// reportKernel attaches the skipped-actor-tick ratio to the benchmark
// output, and cycles/sec as the human-facing inverse of ns/op.
func reportKernel(b *testing.B, n *Network) {
	ks := n.KernelStats()
	if total := ks.Ticked + ks.Skipped; total > 0 {
		b.ReportMetric(float64(ks.Skipped)/float64(total), "skipped-ratio")
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "cycles/sec")
	}
}

// BenchmarkRunQuick benchmarks a complete short simulation including
// construction and teardown — the unit of work the figure harnesses and
// campaign engine repeat thousands of times.
func BenchmarkRunQuick(b *testing.B) {
	cfg := NewConfig()
	cfg.Width, cfg.Height = 4, 4
	cfg.InjectionRate = 0.05
	cfg.WarmupMessages = 100
	cfg.TotalMessages = 500
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := New(cfg).Run()
		if res.Stalled {
			b.Fatal("benchmark run stalled")
		}
	}
}
