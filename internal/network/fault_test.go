package network

import (
	"testing"

	"ftnoc/internal/fault"
	"ftnoc/internal/routing"
	"ftnoc/internal/topology"
)

// RT-logic faults under deterministic routing with the AC + VA-state +
// neighbor checks engaged (§4.2): every injected misdirection must be
// corrected, and traffic must stay intact.
func TestRTLogicFaultsCorrected(t *testing.T) {
	cfg := smallConfig()
	cfg.Faults.RT = 0.001
	res := New(cfg).Run()
	if res.Stalled || res.Delivered < cfg.TotalMessages {
		t.Fatalf("run incomplete: %v", res)
	}
	if res.CorruptedPackets != 0 || res.SinkAnomalies != 0 || res.StrayFlits != 0 {
		t.Fatalf("RT faults leaked corruption: %+v", res)
	}
	inj := res.Counters.Injected[fault.RTLogic]
	cor := res.Counters.Corrected[fault.RTLogic]
	if inj == 0 {
		t.Fatal("no RT faults injected at rate 1e-3")
	}
	if cor == 0 {
		t.Fatal("no RT faults corrected")
	}
	// Under XY every harmful misdirection is corrected; benign ones (the
	// random port happens to be the right one, ~1/5) need no correction.
	if cor < inj/2 {
		t.Fatalf("corrected %d of %d injected RT faults; protection leaky", cor, inj)
	}
}

// Under adaptive routing a misdirection to a legal port is undetectable
// but benign (§4.2): packets still arrive.
func TestRTLogicFaultsAdaptiveBenign(t *testing.T) {
	cfg := smallConfig()
	cfg.Routing = routing.MinimalAdaptive
	cfg.Faults.RT = 0.001
	res := New(cfg).Run()
	if res.Stalled || res.Delivered < cfg.TotalMessages {
		t.Fatalf("run incomplete: %v", res)
	}
	if res.CorruptedPackets != 0 || res.SinkAnomalies != 0 {
		t.Fatalf("adaptive RT faults corrupted traffic: %+v", res)
	}
}

// SA-logic faults with the AC engaged (§4.3): corrupted grants are
// squashed, nothing corrupts, and the paper's Fig. 13a ordering holds —
// SA upsets outnumber both link errors and RT upsets at equal rates.
func TestSALogicFaultsCorrected(t *testing.T) {
	cfg := smallConfig()
	cfg.Faults.SA = 0.001
	res := New(cfg).Run()
	if res.Stalled || res.Delivered < cfg.TotalMessages {
		t.Fatalf("run incomplete: %v", res)
	}
	if res.CorruptedPackets != 0 || res.SinkAnomalies != 0 || res.StrayFlits != 0 {
		t.Fatalf("SA faults leaked corruption: %+v", res)
	}
	if res.Counters.Injected[fault.SALogic] == 0 || res.Counters.Corrected[fault.SALogic] == 0 {
		t.Fatalf("SA fault accounting empty: %+v", res.Counters)
	}
}

// VA-logic faults with the AC engaged (§4.1): all four upset scenarios
// are caught by the comparator.
func TestVALogicFaultsCorrected(t *testing.T) {
	cfg := smallConfig()
	cfg.Faults.VA = 0.002
	res := New(cfg).Run()
	if res.Stalled || res.Delivered < cfg.TotalMessages {
		t.Fatalf("run incomplete: %v", res)
	}
	if res.CorruptedPackets != 0 || res.SinkAnomalies != 0 {
		t.Fatalf("VA faults leaked corruption: %+v", res)
	}
	inj := res.Counters.Injected[fault.VALogic]
	cor := res.Counters.Corrected[fault.VALogic]
	if inj == 0 || cor < inj {
		t.Fatalf("VA: injected %d corrected %d; AC must catch every VA upset", inj, cor)
	}
	if res.Counters.Undetected[fault.VALogic] != 0 {
		t.Fatalf("VA upsets escaped the AC: %d", res.Counters.Undetected[fault.VALogic])
	}
}

// The AC-off ablation: the same VA fault rate now corrupts real traffic
// (stranded packets, mixing, loss) — the paper's motivation for the unit.
func TestVALogicFaultsUnprotected(t *testing.T) {
	cfg := smallConfig()
	cfg.ACEnabled = false
	cfg.Faults.VA = 0.005
	cfg.StallCycles = 30_000
	cfg.MaxCycles = 200_000
	res := New(cfg).Run()
	damage := res.Counters.Undetected[fault.VALogic] + res.WormholeViolations +
		res.SinkAnomalies + res.StrayFlits + res.CorruptedPackets
	if damage == 0 {
		t.Fatal("AC-off run with VA faults showed no damage; ablation not meaningful")
	}
	if res.Counters.Corrected[fault.VALogic] != 0 {
		t.Fatal("AC disabled but VA corrections recorded")
	}
}

// Fig. 13a's ordering at a common rate: SA corrections > LINK corrections
// > RT corrections, because SA arbitrates every flit (often repeatedly),
// links carry each flit once per hop, and RT touches only headers.
func TestFig13aOrdering(t *testing.T) {
	rate := 0.001
	counts := map[fault.Class]uint64{}
	for _, cl := range []fault.Class{fault.LinkError, fault.RTLogic, fault.SALogic} {
		cfg := smallConfig()
		cfg.WarmupMessages = 300
		cfg.TotalMessages = 3_000
		switch cl {
		case fault.LinkError:
			cfg.Faults.Link = rate
		case fault.RTLogic:
			cfg.Faults.RT = rate
		case fault.SALogic:
			cfg.Faults.SA = rate
		}
		res := New(cfg).Run()
		if res.Stalled || res.Delivered < cfg.TotalMessages {
			t.Fatalf("%v run incomplete", cl)
		}
		counts[cl] = res.Counters.Corrected[cl]
	}
	if !(counts[fault.SALogic] > counts[fault.LinkError]) {
		t.Errorf("SA corrections (%d) not > LINK corrections (%d)", counts[fault.SALogic], counts[fault.LinkError])
	}
	if !(counts[fault.LinkError] > counts[fault.RTLogic]) {
		t.Errorf("LINK corrections (%d) not > RT corrections (%d)", counts[fault.LinkError], counts[fault.RTLogic])
	}
}

// Hard link faults: adaptive routing must route around a failed link.
// Note minimal-adaptive cannot avoid a dead link when it is the only
// productive direction (a column-edge case), so the failed link here is
// an interior one with a minimal alternative for all (src,dst) pairs that
// would use it... which on a mesh is true only for packets with both X
// and Y offsets. Packets aligned with the dead link would strand, so this
// test uses a torus-free workaround: fail one direction of a diagonal-
// adjacent link and accept partial delivery being impossible — instead it
// verifies no corruption and that the network does not stall thanks to
// probing discarding suspicion at the faulty neighbor (§3.2.2).
func TestHardFaultNoFalseDeadlock(t *testing.T) {
	cfg := smallConfig()
	cfg.Routing = routing.MinimalAdaptive
	cfg.InjectionRate = 0.05
	cfg.WarmupMessages = 0
	cfg.TotalMessages = 300
	cfg.MaxCycles = 300_000
	cfg.HardFaults = []topology.LinkID{{From: 5, Dir: topology.East}}
	res := New(cfg).Run()
	if res.CorruptedPackets != 0 || res.SinkAnomalies != 0 {
		t.Fatalf("hard fault corrupted traffic: %+v", res)
	}
	// Node 5 -> 6 traffic (same row, eastbound) has no minimal detour, so
	// a small fraction of packets can strand; the rest must flow.
	if res.Delivered < cfg.TotalMessages/2 {
		t.Fatalf("delivered only %d/%d with one hard-faulted link", res.Delivered, cfg.TotalMessages)
	}
}

// §4.4: crossbar transient faults produce single-bit upsets that the
// next hop's SEC/DED corrects — benign by design. Traffic stays intact
// and the corrections surface in the ECC counters even with no link
// errors injected.
func TestXbarFaultsCorrectedByECC(t *testing.T) {
	cfg := smallConfig()
	cfg.Faults.Xbar = 0.01
	res := New(cfg).Run()
	if res.Stalled || res.Delivered < cfg.TotalMessages {
		t.Fatalf("run incomplete: %v", res)
	}
	if res.CorruptedPackets != 0 || res.SinkAnomalies != 0 {
		t.Fatalf("crossbar upsets corrupted traffic: %+v", res)
	}
	inj := res.Counters.Injected[fault.XbarError]
	if inj == 0 {
		t.Fatal("no crossbar faults injected at 1e-2")
	}
	if res.Counters.Corrected[fault.XbarError] != inj {
		t.Fatal("crossbar fault accounting inconsistent")
	}
	if res.TotalEvents.ECCCorrections == 0 {
		t.Fatal("ECC saw no corrections despite crossbar upsets")
	}
	if res.TotalEvents.Retransmitted != 0 {
		t.Fatalf("single-bit crossbar upsets caused %d retransmissions; should be corrected in place",
			res.TotalEvents.Retransmitted)
	}
}
