// Package network assembles routers, links and processing elements into
// the paper's evaluation platform (§2.2): an 8x8 mesh of 3-stage
// pipelined routers with 5 physical channels per router, 3 virtual
// channels per PC and 4-flit messages, plus the traffic, fault-injection
// and measurement machinery around it.
package network

import (
	"errors"
	"fmt"

	"ftnoc/internal/fault"
	"ftnoc/internal/invariant"
	"ftnoc/internal/kernel"
	"ftnoc/internal/link"
	"ftnoc/internal/routing"
	"ftnoc/internal/topology"
	"ftnoc/internal/trace"
	"ftnoc/internal/traffic"
)

// Config describes a complete simulation. NewConfig returns the paper's
// defaults; callers override fields before passing it to New.
type Config struct {
	// Topology.
	TopologyKind  topology.Kind
	Width, Height int

	// Router microarchitecture.
	VCs           int // virtual channels per physical channel
	BufDepth      int // per-VC input buffer depth T, in flits
	PipelineDepth int // 1-4 router pipeline stages

	// Protocol.
	Protection link.Protection
	Routing    routing.Algorithm
	// DuplicateRetrans doubles the retransmission buffers (§4.5) to
	// survive soft errors inside the buffers themselves
	// (Faults.RetransBuf).
	DuplicateRetrans bool

	// Protection mechanisms.
	ACEnabled       bool
	RecoveryEnabled bool
	// TMREnabled triplicates-and-votes the handshake lines (§4.6),
	// masking Faults.Handshake upsets. On by default in NewConfig.
	TMREnabled bool
	Cthres     uint64

	// Workload.
	Pattern       traffic.Pattern
	InjectionRate float64 // flits/node/cycle
	PacketSize    int     // flits per message, >= 2
	// InjectLimit stops traffic generation after this many packets have
	// been created network-wide (0 = unlimited). Burst workloads isolate
	// recovery correctness — a fixed message population must fully drain
	// (the premise of the Eq. 1 theorem) — from sustained-overload
	// behaviour.
	InjectLimit uint64

	// Fault injection.
	Faults fault.Rates
	// HardFaults lists permanently failed directed links, applied before
	// the simulation starts.
	HardFaults []topology.LinkID

	// TracePIDs lists packet IDs whose journey through the network should
	// be recorded (one line per location change); the traces appear in
	// Results.Traces. Packet IDs are allocated sequentially from 1 in
	// injection order, deterministically per seed. Implemented as a
	// consumer of the structured event bus.
	TracePIDs []uint64

	// TraceSink, when non-nil, receives every structured event the
	// simulation publishes (see package trace for the taxonomy). Wrap it
	// with trace.FilterPIDs/FilterKinds to subscribe selectively, or
	// trace.Tee to fan out. Excluded from JSON: sinks are not data.
	TraceSink trace.Sink `json:"-"`

	// Metrics, when non-nil, is the time-series registry the network
	// populates with per-router gauges (VC occupancy, retransmission
	// buffer depth, credit stalls) and samples every Metrics.Interval()
	// cycles. Excluded from JSON for the same reason as TraceSink.
	Metrics *trace.Metrics `json:"-"`

	// Invariants, when non-nil, attaches the runtime invariant checker:
	// it joins the event bus for the conservation/liveness ledger, and the
	// network walks its component state (credits, shifters, bindings,
	// quiescence) every Invariants.Every() cycles, reporting violations
	// into it. Off by default — it exists to make test, fuzz and -check
	// runs self-verifying. Excluded from JSON: checkers are not data.
	Invariants *invariant.Checker `json:"-"`

	// Measurement.
	WarmupMessages uint64
	TotalMessages  uint64 // ejected messages, including warm-up
	MaxCycles      uint64 // safety bound
	// StallCycles: abort (Stalled=true) if no message ejects for this
	// long after warm-up traffic has started. Catches unrecovered
	// deadlocks without hanging the harness.
	StallCycles uint64

	// E2ETimeout is how long an E2E/FEC source retains a packet copy for
	// possible retransmission before assuming delivery.
	E2ETimeout uint64

	// Kernel selects the simulation scheduler: kernel.Naive ticks every
	// actor every cycle (the differential oracle), kernel.Quiescent skips
	// provably idle actors, kernel.Event (the default) runs the calendar-
	// queue scheduler that steps actors only when an event is due, and
	// kernel.Parallel partitions the mesh into row bands ticked by
	// concurrent workers. Results are identical across all four (that is
	// the scheduling contract, enforced by the differential tests); the
	// knob exists as the escape hatch and the baseline axis for
	// benchmarks. Excluded from JSON so scheduling never perturbs
	// ConfigHash or canonical configs.
	Kernel kernel.Kind `json:"-"`

	// KernelWorkers caps the worker count of the parallel kernel. Zero
	// (the default) means GOMAXPROCS; the value is further clamped to the
	// mesh height, since the partition unit is a row band. Ignored by the
	// serial kernels. Excluded from JSON for the same reason as Kernel:
	// scheduling must never perturb ConfigHash.
	KernelWorkers int `json:"-"`

	Seed uint64
}

// NewConfig returns the paper's evaluation platform defaults: 8x8 mesh,
// 3 VCs/PC, 4-flit buffers and packets, 3-stage routers, XY routing, HBH
// protection, AC on, deadlock recovery on, uniform NR traffic at 0.25
// flits/node/cycle. Message counts default to a CI-friendly scale; use
// PaperScale to get the full 300k-message runs.
func NewConfig() Config {
	return Config{
		TopologyKind:    topology.Mesh,
		Width:           8,
		Height:          8,
		VCs:             3,
		BufDepth:        4,
		PipelineDepth:   3,
		Protection:      link.HBH,
		Routing:         routing.XY,
		ACEnabled:       true,
		RecoveryEnabled: true,
		TMREnabled:      true,
		Pattern:         traffic.UniformRandom,
		InjectionRate:   0.25,
		PacketSize:      4,
		Faults:          fault.Rates{LinkDouble: fault.DefaultLinkDouble},
		WarmupMessages:  2_000,
		TotalMessages:   8_000,
		MaxCycles:       2_000_000,
		StallCycles:     100_000,
		E2ETimeout:      2_048,
		Seed:            1,
	}
}

// PaperScale adjusts the message counts to the paper's 300,000 ejected
// messages with 100,000 warm-up (§2.2).
func (c Config) PaperScale() Config {
	c.WarmupMessages = 100_000
	c.TotalMessages = 300_000
	c.MaxCycles = 50_000_000
	return c
}

// ErrInvalidConfig is the sentinel wrapped by every Validate failure, so
// callers can distinguish configuration mistakes from other errors with
// errors.Is.
var ErrInvalidConfig = errors.New("invalid config")

// Validate checks the configuration, returning an error wrapping
// ErrInvalidConfig describing the first violated constraint, or nil.
// Zero values of optional fields (Protection, MaxCycles, StallCycles,
// E2ETimeout) are valid: New substitutes defaults for them.
func (c Config) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrInvalidConfig, fmt.Sprintf(format, args...))
	}
	switch {
	case c.Width < 2 || c.Height < 1 || c.Width*c.Height < 2:
		return fail("topology %dx%d too small", c.Width, c.Height)
	case c.VCs < 1:
		return fail("need at least one VC, have %d", c.VCs)
	case c.BufDepth < 1:
		return fail("BufDepth must be >= 1, have %d", c.BufDepth)
	case c.PacketSize < 2:
		return fail("PacketSize must be >= 2 (head + tail), have %d", c.PacketSize)
	case c.PipelineDepth < 1 || c.PipelineDepth > 4:
		return fail("PipelineDepth must be in [1,4], have %d", c.PipelineDepth)
	case !(c.InjectionRate >= 0 && c.InjectionRate <= 1): // negated form rejects NaN too
		return fail("InjectionRate must be in [0,1], have %g", c.InjectionRate)
	case c.TotalMessages == 0 || c.TotalMessages < c.WarmupMessages:
		return fail("TotalMessages must be >= WarmupMessages and > 0, have %d total / %d warm-up",
			c.TotalMessages, c.WarmupMessages)
	case c.Width*c.Height > maxNodes:
		return fail("topology %dx%d exceeds %d nodes", c.Width, c.Height, maxNodes)
	case c.Kernel != 0 && !c.Kernel.Valid():
		return fail("unknown kernel %d (want naive, quiescent, event or parallel)", c.Kernel)
	case c.KernelWorkers < 0:
		return fail("KernelWorkers must be >= 0, have %d", c.KernelWorkers)
	}
	// Fault rates are probabilities; out-of-range (or NaN) values would
	// otherwise surface as panics deep inside New's injector assembly.
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"Faults.Link", c.Faults.Link}, {"Faults.LinkDouble", c.Faults.LinkDouble},
		{"Faults.RT", c.Faults.RT}, {"Faults.VA", c.Faults.VA}, {"Faults.SA", c.Faults.SA},
		{"Faults.Handshake", c.Faults.Handshake}, {"Faults.RetransBuf", c.Faults.RetransBuf},
		{"Faults.Xbar", c.Faults.Xbar},
	} {
		if !(r.v >= 0 && r.v <= 1) {
			return fail("%s must be in [0,1], have %g", r.name, r.v)
		}
	}
	// Hard faults must name links that physically exist: New applies them
	// via Topology.FailLink, which panics on a non-existent link.
	if len(c.HardFaults) > 0 {
		kind := c.TopologyKind
		if kind == 0 {
			kind = topology.Mesh
		}
		topo := topology.New(kind, c.Width, c.Height)
		for _, hf := range c.HardFaults {
			if int(hf.From) >= topo.Nodes() {
				return fail("hard fault names node %d outside the %dx%d topology", hf.From, c.Width, c.Height)
			}
			if _, ok := topo.Neighbor(hf.From, hf.Dir); !ok {
				return fail("hard fault names non-existent link %v from node %d", hf.Dir, hf.From)
			}
		}
	}
	// Mortality schedules must name real links/routers and die within the
	// run: a death past MaxCycles silently never happens, which is always
	// a misconfigured experiment.
	// A negative rate is malformed even though Enabled() treats it as
	// "no hazard" — reject it rather than silently running fault-free.
	if rate := c.Faults.Mortality.HazardRate; !(rate >= 0 && rate < 1) {
		return fail("mortality hazard rate must be in [0,1), have %g", rate)
	}
	if mort := c.Faults.Mortality; mort.Enabled() {
		kind := c.TopologyKind
		if kind == 0 {
			kind = topology.Mesh
		}
		topo := topology.New(kind, c.Width, c.Height)
		for _, ld := range mort.Links {
			if int(ld.From) >= topo.Nodes() {
				return fail("mortality schedule names node %d outside the %dx%d topology", ld.From, c.Width, c.Height)
			}
			if _, ok := topo.Neighbor(ld.From, ld.Dir); !ok {
				return fail("mortality schedule names non-existent link %v from node %d", ld.Dir, ld.From)
			}
			if c.MaxCycles > 0 && ld.Cycle >= c.MaxCycles {
				return fail("mortality link death at cycle %d is past MaxCycles %d", ld.Cycle, c.MaxCycles)
			}
		}
		for _, rd := range mort.Routers {
			if int(rd.Node) >= topo.Nodes() {
				return fail("mortality schedule names node %d outside the %dx%d topology", rd.Node, c.Width, c.Height)
			}
			if c.MaxCycles > 0 && rd.Cycle >= c.MaxCycles {
				return fail("mortality router death at cycle %d is past MaxCycles %d", rd.Cycle, c.MaxCycles)
			}
		}
		if !(mort.HazardRate >= 0 && mort.HazardRate < 1) {
			return fail("mortality hazard rate must be in [0,1), have %g", mort.HazardRate)
		}
		if mort.HazardStop != 0 && mort.HazardStart > mort.HazardStop {
			return fail("mortality hazard window [%d,%d) is empty", mort.HazardStart, mort.HazardStop)
		}
		if mort.HazardRate > 0 && c.MaxCycles > 0 && mort.HazardStart >= c.MaxCycles {
			return fail("mortality hazard start %d is past MaxCycles %d", mort.HazardStart, c.MaxCycles)
		}
	}
	return nil
}

// maxNodes bounds the topology size Validate accepts, so untrusted
// configuration documents (nocd request bodies) cannot demand an
// arbitrarily large allocation.
const maxNodes = 1 << 16

// applyDefaults substitutes defaults for the optional zero-valued fields.
func (c *Config) applyDefaults() {
	if c.Protection == 0 {
		c.Protection = link.HBH
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 2_000_000
	}
	if c.StallCycles == 0 {
		c.StallCycles = 100_000
	}
	if c.E2ETimeout == 0 {
		c.E2ETimeout = 2_048
	}
	if c.Kernel == 0 {
		c.Kernel = kernel.Event
	}
}

// shifterDepth returns the retransmission-buffer depth implied by the
// duplicate-buffer option.
func (c Config) shifterDepth() int {
	if c.DuplicateRetrans {
		return 2 * link.NACKWindow
	}
	return link.NACKWindow
}
