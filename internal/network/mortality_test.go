package network

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ftnoc/internal/fault"
	"ftnoc/internal/flit"
	"ftnoc/internal/kernel"
	"ftnoc/internal/routing"
	"ftnoc/internal/topology"
)

// mortalityConfig is the shared platform for the hard-fault tests: a
// 4x4 mesh under fault-adaptive routing, small enough that a run with
// several deaths finishes in milliseconds.
func mortalityConfig(seed uint64) Config {
	cfg := NewConfig()
	cfg.Width, cfg.Height = 4, 4
	cfg.Routing = routing.FaultAdaptive
	cfg.Seed = seed
	cfg.WarmupMessages = 100
	cfg.TotalMessages = 600
	cfg.MaxCycles = 300_000
	cfg.StallCycles = 50_000
	return cfg
}

// undirectedLink is a canonical (East/South representative) mesh link,
// used both to schedule deaths and to run the BFS oracle.
type undirectedLink struct {
	from flit.NodeID
	dir  topology.Port
}

// meshLinks enumerates every canonical undirected link of a WxH mesh.
func meshLinks(w, h int) []undirectedLink {
	t := topology.New(topology.Mesh, w, h)
	var links []undirectedLink
	for n := 0; n < t.Nodes(); n++ {
		for _, d := range []topology.Port{topology.East, topology.South} {
			if _, ok := t.Neighbor(flit.NodeID(n), d); ok {
				links = append(links, undirectedLink{flit.NodeID(n), d})
			}
		}
	}
	return links
}

// oracleFraction computes the reachable-pair fraction of the post-fault
// topology with a plain BFS — an implementation-independent oracle for
// Results.ReachablePairFraction. Dead routers drop out of the numerator
// (they can talk to nobody) but stay in the denominator: the metric is
// "of all pairs the fault-free chip had, how many still communicate".
func oracleFraction(w, h int, deadLinks []undirectedLink, deadRouters []flit.NodeID) float64 {
	t := topology.New(topology.Mesh, w, h)
	dead := make(map[undirectedLink]bool, len(deadLinks))
	for _, l := range deadLinks {
		dead[l] = true
	}
	isDeadNode := make([]bool, t.Nodes())
	for _, n := range deadRouters {
		isDeadNode[n] = true
	}
	live := func(from flit.NodeID, d topology.Port) bool {
		nb, ok := t.Neighbor(from, d)
		if !ok || isDeadNode[from] || isDeadNode[nb] {
			return false
		}
		// Normalise to the canonical East/South representative.
		switch d {
		case topology.West:
			return !dead[undirectedLink{nb, topology.East}]
		case topology.North:
			return !dead[undirectedLink{nb, topology.South}]
		}
		return !dead[undirectedLink{from, d}]
	}
	comp := make([]int, t.Nodes())
	for i := range comp {
		comp[i] = -1
	}
	pairs := 0
	for s := 0; s < t.Nodes(); s++ {
		if comp[s] >= 0 || isDeadNode[s] {
			continue
		}
		size := 0
		queue := []flit.NodeID{flit.NodeID(s)}
		comp[s] = s
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			size++
			for _, d := range []topology.Port{topology.North, topology.East, topology.South, topology.West} {
				if !live(v, d) {
					continue
				}
				nb, _ := t.Neighbor(v, d)
				if comp[nb] < 0 {
					comp[nb] = s
					queue = append(queue, nb)
				}
			}
		}
		pairs += size * (size - 1)
	}
	total := t.Nodes() * (t.Nodes() - 1)
	return float64(pairs) / float64(total)
}

// TestMortalityPropertyRandomFaults is the network-level property test
// of the hard-fault regime: for randomly drawn fault patterns (up to
// 30% of the mesh's links plus occasional router deaths, striking at
// random mid-run cycles), every kernel must terminate without stalling,
// account for every injected message as delivered or undeliverable,
// report the exact BFS reachable-pair fraction, and keep the runtime
// invariant checker silent. Run it under -race to also exercise the
// parallel kernel's cross-band kill paths.
func TestMortalityPropertyRandomFaults(t *testing.T) {
	const w, h = 4, 4
	all := meshLinks(w, h)
	maxDead := len(all) * 30 / 100
	rng := rand.New(rand.NewSource(42))

	for pat := 0; pat < 5; pat++ {
		var mort fault.Mortality
		var deadLinks []undirectedLink
		var deadRouters []flit.NodeID

		picked := map[undirectedLink]bool{}
		k := 1 + rng.Intn(maxDead)
		for len(deadLinks) < k {
			l := all[rng.Intn(len(all))]
			if picked[l] {
				continue
			}
			picked[l] = true
			deadLinks = append(deadLinks, l)
			mort.Links = append(mort.Links, fault.LinkDeath{
				From: l.from, Dir: l.dir, Cycle: uint64(100 + rng.Intn(300)),
			})
		}
		if rng.Intn(3) == 0 {
			n := flit.NodeID(rng.Intn(w * h))
			deadRouters = append(deadRouters, n)
			mort.Routers = append(mort.Routers, fault.RouterDeath{
				Node: n, Cycle: uint64(100 + rng.Intn(300)),
			})
		}
		want := oracleFraction(w, h, deadLinks, deadRouters)

		for _, k := range kernel.Kinds() {
			cfg := mortalityConfig(uint64(1000 + pat))
			cfg.Faults.Mortality = mort
			cfg.Kernel = k
			cfg.KernelWorkers = h
			chk := attachChecker(&cfg)
			t.Run(fmt.Sprintf("pattern%d/%v", pat, k), func(t *testing.T) {
				n := New(cfg)
				res := n.Run()
				if res.Stalled {
					t.Fatalf("run stalled under schedule %v", mort)
				}
				// The run terminates the first time the accounted total
				// reaches TotalMessages; several accounting events can
				// land in that final cycle, so "==" would be too strong.
				got := res.Delivered + res.Undeliverable
				if got < cfg.TotalMessages {
					t.Fatalf("accounted %d messages (delivered %d + undeliverable %d), want >= %d",
						got, res.Delivered, res.Undeliverable, cfg.TotalMessages)
				}
				if got > n.injected {
					t.Fatalf("accounted %d messages but only %d were injected", got, n.injected)
				}
				if res.Cycles <= 400 {
					t.Fatalf("run ended at cycle %d, before the last scheduled death could fire", res.Cycles)
				}
				if res.DeadRouters != len(deadRouters) {
					t.Fatalf("%d routers died, schedule kills %d", res.DeadRouters, len(deadRouters))
				}
				if res.ReachablePairFraction != want {
					t.Fatalf("reachable-pair fraction %v, BFS oracle says %v (schedule %v)",
						res.ReachablePairFraction, want, mort)
				}
				for _, v := range chk.Violations() {
					t.Errorf("invariant violation: %v", v)
				}
			})
		}
	}
}

// TestKernelDifferentialMortality extends the kernel differential grid
// with mid-run mortality: every scheduler must reproduce the naive
// oracle's Results and full event stream bit-for-bit while links and a
// router die mid-flight. The schedule deliberately includes vertical
// (South) links — with KernelWorkers = Height each mesh row is its own
// band, so those deaths sever parallel-kernel partition boundaries and
// the cross-band kill/handoff machinery is on the hook for determinism.
func TestKernelDifferentialMortality(t *testing.T) {
	schedules := []fault.Mortality{
		{Links: []fault.LinkDeath{
			{From: 5, Dir: topology.South, Cycle: 250}, // band boundary row1→row2
			{From: 9, Dir: topology.South, Cycle: 450}, // band boundary row2→row3
		}},
		{
			Links:   []fault.LinkDeath{{From: 2, Dir: topology.East, Cycle: 200}},
			Routers: []fault.RouterDeath{{Node: 10, Cycle: 350}},
		},
	}
	for si, mort := range schedules {
		cfg := mortalityConfig(uint64(7 + si))
		cfg.Faults.Mortality = mort
		cfg.KernelWorkers = cfg.Height
		cfg.TracePIDs = []uint64{1, 2, 3, 5, 8, 13}

		want, wantEvents := runCapture(t, cfg, kernel.Naive)
		for _, k := range diffKernels() {
			t.Run(fmt.Sprintf("schedule%d/%v", si, k), func(t *testing.T) {
				got, gotEvents := runCapture(t, cfg, k)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("results diverge from naive oracle:\n got %+v\nwant %+v", got, want)
				}
				if len(gotEvents) != len(wantEvents) {
					t.Fatalf("event stream length %d, want %d", len(gotEvents), len(wantEvents))
				}
				for i := range gotEvents {
					if gotEvents[i] != wantEvents[i] {
						t.Fatalf("event %d diverges:\n got %+v\nwant %+v", i, gotEvents[i], wantEvents[i])
					}
				}
			})
		}
	}
}

// TestMortalityDeadSendInvariant seeds the bug the dead-send invariant
// exists to catch: a router whose local fault map marks an output link
// dead while the topology still carries it (the inverse of reality —
// normally the map lags the topology, never leads it). The allocator
// legality checks consult the topology, so traffic keeps winning grants
// toward the "dead" link and every such send must be reported with
// exact node/port attribution.
func TestMortalityDeadSendInvariant(t *testing.T) {
	cfg := mortalityConfig(11)
	chk := attachChecker(&cfg)
	n := New(cfg)
	if n.mort == nil {
		t.Fatal("fault-adaptive config did not build the mortality controller")
	}
	// Poison node 5's local map: link 5→East marked dead, topology alive.
	const victim, dir = 5, topology.East
	n.mort.maps[victim].MarkLinkDead(victim, dir)
	res := n.Run()
	if res.Stalled {
		t.Fatal("poisoned run stalled")
	}
	found := false
	for _, v := range chk.Violations() {
		if v.Check != "dead-send" {
			t.Errorf("unexpected violation: %v", v)
			continue
		}
		if v.Node != victim || v.Port != int8(dir) {
			t.Fatalf("dead-send attributed to node %d port %d, want node %d port %d",
				v.Node, v.Port, victim, dir)
		}
		found = true
	}
	if !found {
		t.Fatal("no dead-send violation reported for a poisoned fault map")
	}
}

// TestMortalityDegradationMonotone pins the paper-style degradation
// curve: killing a superset of links can never increase connectivity,
// so the reachable-pair fraction must be non-increasing along a
// schedule prefix chain — and every point must still account for all
// of its traffic.
func TestMortalityDegradationMonotone(t *testing.T) {
	deaths := []fault.LinkDeath{
		{From: 0, Dir: topology.East, Cycle: 200},
		{From: 0, Dir: topology.South, Cycle: 200}, // node 0 now isolated
		{From: 5, Dir: topology.East, Cycle: 300},
		{From: 5, Dir: topology.South, Cycle: 300},
		{From: 9, Dir: topology.East, Cycle: 400},
		{From: 13, Dir: topology.East, Cycle: 400},
	}
	prev := 2.0
	for n := 0; n <= len(deaths); n += 2 {
		cfg := mortalityConfig(3)
		cfg.Faults.Mortality = fault.Mortality{Links: deaths[:n]}
		chk := attachChecker(&cfg)
		res := New(cfg).Run()
		if res.Stalled {
			t.Fatalf("%d deaths: stalled", n)
		}
		if got := res.Delivered + res.Undeliverable; got < cfg.TotalMessages {
			t.Fatalf("%d deaths: accounted %d messages, want >= %d", n, got, cfg.TotalMessages)
		}
		if res.ReachablePairFraction > prev {
			t.Fatalf("%d deaths: reachable-pair fraction rose to %v from %v",
				n, res.ReachablePairFraction, prev)
		}
		if n == 0 && res.ReachablePairFraction != 1 {
			t.Fatalf("fault-free fraction %v, want 1", res.ReachablePairFraction)
		}
		if n == len(deaths) && res.ReachablePairFraction >= 1 {
			t.Fatalf("%d deaths left fraction %v, want < 1 (node 0 is isolated)", n, res.ReachablePairFraction)
		}
		prev = res.ReachablePairFraction
		for _, v := range chk.Violations() {
			t.Errorf("%d deaths: invariant violation: %v", n, v)
		}
	}
}

// TestValidateMortality pins the Validate guard: malformed schedules
// must be rejected with ErrInvalidConfig before a network is built.
func TestValidateMortality(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"link node out of range", func(c *Config) {
			c.Faults.Mortality.Links = []fault.LinkDeath{{From: 99, Dir: topology.East, Cycle: 10}}
		}},
		{"link off the edge", func(c *Config) {
			c.Faults.Mortality.Links = []fault.LinkDeath{{From: 3, Dir: topology.East, Cycle: 10}}
		}},
		{"link death past horizon", func(c *Config) {
			c.Faults.Mortality.Links = []fault.LinkDeath{{From: 0, Dir: topology.East, Cycle: c.MaxCycles}}
		}},
		{"router out of range", func(c *Config) {
			c.Faults.Mortality.Routers = []fault.RouterDeath{{Node: 99, Cycle: 10}}
		}},
		{"router death past horizon", func(c *Config) {
			c.Faults.Mortality.Routers = []fault.RouterDeath{{Node: 1, Cycle: c.MaxCycles + 1}}
		}},
		{"hazard rate not a probability", func(c *Config) {
			c.Faults.Mortality.HazardRate = 1.5
		}},
		{"negative hazard rate", func(c *Config) {
			c.Faults.Mortality.HazardRate = -0.1
		}},
		{"hazard window inverted", func(c *Config) {
			c.Faults.Mortality.HazardRate = 1e-3
			c.Faults.Mortality.HazardStart = 500
			c.Faults.Mortality.HazardStop = 100
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := mortalityConfig(1)
			tc.mut(&cfg)
			err := cfg.Validate()
			if !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("Validate() = %v, want ErrInvalidConfig", err)
			}
		})
	}
	// And the well-formed schedule passes.
	cfg := mortalityConfig(1)
	cfg.Faults.Mortality = fault.Mortality{
		Links:      []fault.LinkDeath{{From: 0, Dir: topology.East, Cycle: 100}},
		Routers:    []fault.RouterDeath{{Node: 5, Cycle: 200}},
		HazardRate: 1e-4, HazardStart: 50,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

// TestMortalityHazardReproducible pins the hazard process: a rate-driven
// schedule derives its victims and death cycles from the simulation seed
// alone, so two runs of the same config are bit-identical experiments —
// and the rate actually kills something over a multi-hundred-cycle run.
func TestMortalityHazardReproducible(t *testing.T) {
	cfg := mortalityConfig(21)
	cfg.Faults.Mortality = fault.Mortality{HazardRate: 5e-3, HazardStart: 100}
	first := comparable(New(cfg).Run())
	again := comparable(New(cfg).Run())
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("hazard runs diverge:\n got %+v\nwant %+v", again, first)
	}
	if first.DeadLinks == 0 {
		t.Fatal("hazard rate 5e-3 killed nothing over the run")
	}
	if first.Stalled {
		t.Fatal("hazard run stalled")
	}
	if got := first.Delivered + first.Undeliverable; got < cfg.TotalMessages {
		t.Fatalf("accounted %d messages, want >= %d", got, cfg.TotalMessages)
	}
}

// TestMortalityRouterDeathCleanup drives the full router-kill path and
// its PE cleanup: the dead core's queued and staged traffic must get
// terminal verdicts, traffic to the dead node must be refused or
// excised, and the invariant ledger must stay clean through all of it.
func TestMortalityRouterDeathCleanup(t *testing.T) {
	cfg := mortalityConfig(13)
	cfg.Faults.Mortality = fault.Mortality{
		Routers: []fault.RouterDeath{{Node: 5, Cycle: 250}, {Node: 10, Cycle: 400}},
	}
	chk := attachChecker(&cfg)
	res := New(cfg).Run()
	if res.Stalled {
		t.Fatal("run stalled")
	}
	if res.DeadRouters != 2 {
		t.Fatalf("%d routers died, want 2", res.DeadRouters)
	}
	if res.Undeliverable == 0 {
		t.Fatal("two router deaths produced no undeliverable verdicts")
	}
	want := oracleFraction(4, 4, nil, []flit.NodeID{5, 10})
	if res.ReachablePairFraction != want {
		t.Fatalf("reachable-pair fraction %v, BFS oracle says %v", res.ReachablePairFraction, want)
	}
	for _, v := range chk.Violations() {
		t.Errorf("invariant violation: %v", v)
	}
}
