package network

import (
	"fmt"
	"reflect"
	"testing"

	"ftnoc/internal/link"
	"ftnoc/internal/routing"
)

// diffConfig builds one point of the differential grid: a small network
// with packet journeys traced so the comparison covers event timing, not
// just aggregate counts.
func diffConfig(alg routing.Algorithm, prot link.Protection, linkRate float64, seed uint64) Config {
	cfg := NewConfig()
	cfg.Width, cfg.Height = 4, 4
	cfg.Routing = alg
	cfg.Protection = prot
	cfg.Faults.Link = linkRate
	cfg.Seed = seed
	cfg.WarmupMessages = 50
	cfg.TotalMessages = 600
	cfg.MaxCycles = 300_000
	cfg.TracePIDs = []uint64{1, 2, 3, 5, 8, 13, 21, 34}
	return cfg
}

// comparable strips the one non-comparable field from a Results: the
// counters' Observer callback (a func, installed whenever tracing is on,
// never DeepEqual). Everything measured stays.
func comparable(r Results) Results {
	if r.Counters != nil {
		c := *r.Counters
		c.Observer = nil
		r.Counters = &c
	}
	return r
}

// TestQuiescenceDifferential is the quiescence contract made executable:
// for every grid point, a run with idle-actor skipping enabled must
// produce Results — counters, latencies, utilizations, and the traced
// packet journeys — deeply equal to the naive tick-everyone kernel's.
// Subtests are keyed by the config's canonical hash, so a failure names
// the exact reproducible configuration.
func TestQuiescenceDifferential(t *testing.T) {
	algs := []routing.Algorithm{routing.XY, routing.OddEven}
	prots := []link.Protection{link.HBH, link.E2E, link.FEC}
	rates := []float64{0, 1e-3, 1e-2}
	for _, alg := range algs {
		for _, prot := range prots {
			for _, rate := range rates {
				cfg := diffConfig(alg, prot, rate, 7)
				hash, err := cfg.CanonicalHash()
				if err != nil {
					t.Fatalf("hashing config: %v", err)
				}
				name := fmt.Sprintf("%s-%s-%g-%s", alg, prot, rate, hash[:12])
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					naiveCfg := cfg
					naiveCfg.NaiveKernel = true
					nn := New(naiveCfg)
					want := comparable(nn.Run())
					if _, skipped := nn.KernelStats(); skipped != 0 {
						t.Fatalf("naive kernel skipped %d ticks", skipped)
					}

					qn := New(cfg)
					got := comparable(qn.Run())
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("quiescent kernel diverged from naive:\nnaive:     %+v\nquiescent: %+v", want, got)
					}
					if _, skipped := qn.KernelStats(); skipped == 0 && rate == 0 {
						t.Error("quiescent kernel never skipped a tick on a fault-free run")
					}
				})
			}
		}
	}
}

// TestQuiescenceDifferentialBurst covers the injection-limit path: once
// the network-wide limit is reached, sleeping sources stop replaying
// their accumulators — that divergence must stay unobservable.
func TestQuiescenceDifferentialBurst(t *testing.T) {
	cfg := diffConfig(routing.XY, link.HBH, 1e-3, 11)
	cfg.WarmupMessages = 0
	cfg.InjectLimit = 400
	cfg.TotalMessages = 400
	naiveCfg := cfg
	naiveCfg.NaiveKernel = true
	want := comparable(New(naiveCfg).Run())
	got := comparable(New(cfg).Run())
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("burst run diverged:\nnaive:     %+v\nquiescent: %+v", want, got)
	}
	if want.Delivered != 400 {
		t.Fatalf("burst delivered %d/400", want.Delivered)
	}
}

// TestQuiescenceDifferentialRecovery drives the deadlock-recovery and
// hard-fault machinery (probes, activations, reroutes) under both
// kernels: the protocol state machines must be cycle-identical too.
func TestQuiescenceDifferentialRecovery(t *testing.T) {
	cfg := diffConfig(routing.MinimalAdaptive, link.HBH, 1e-3, 3)
	cfg.InjectionRate = 0.30
	cfg.Faults.RT = 5e-4
	cfg.Faults.SA = 5e-4
	cfg.Faults.VA = 5e-4
	naiveCfg := cfg
	naiveCfg.NaiveKernel = true
	want := comparable(New(naiveCfg).Run())
	got := comparable(New(cfg).Run())
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("recovery run diverged:\nnaive:     %+v\nquiescent: %+v", want, got)
	}
}
