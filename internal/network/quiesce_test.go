package network

import (
	"fmt"
	"reflect"
	"testing"

	"ftnoc/internal/invariant"
	"ftnoc/internal/kernel"
	"ftnoc/internal/link"
	"ftnoc/internal/routing"
)

// attachChecker gives cfg a fresh runtime invariant checker (one per
// run — checkers are stateful) and returns it for the post-run verdict.
func attachChecker(cfg *Config) *invariant.Checker {
	chk := invariant.New(invariant.Config{})
	cfg.Invariants = chk
	return chk
}

// assertClean fails the test if the checker recorded any violation, and
// sanity-checks that it actually audited traffic (a checker that saw
// nothing proves nothing).
func assertClean(t *testing.T, label string, chk *invariant.Checker) {
	t.Helper()
	for i, v := range chk.Violations() {
		if i >= 5 {
			t.Errorf("%s: ... and %d more violations", label, chk.Total()-i)
			break
		}
		t.Errorf("%s: %v", label, v)
	}
	injected, _, _, events := chk.Stats()
	if injected == 0 || events == 0 {
		t.Fatalf("%s: checker audited no traffic (injected %d, events %d)", label, injected, events)
	}
}

// diffConfig builds one point of the differential grid: a small network
// with packet journeys traced so the comparison covers event timing, not
// just aggregate counts.
func diffConfig(alg routing.Algorithm, prot link.Protection, linkRate float64, seed uint64) Config {
	cfg := NewConfig()
	cfg.Width, cfg.Height = 4, 4
	cfg.Routing = alg
	cfg.Protection = prot
	cfg.Faults.Link = linkRate
	cfg.Seed = seed
	cfg.WarmupMessages = 50
	cfg.TotalMessages = 600
	cfg.MaxCycles = 300_000
	cfg.TracePIDs = []uint64{1, 2, 3, 5, 8, 13, 21, 34}
	return cfg
}

// comparable strips the one non-comparable field from a Results: the
// counters' Observer callback (a func, installed whenever tracing is on,
// never DeepEqual). Everything measured stays.
func comparable(r Results) Results {
	if r.Counters != nil {
		c := *r.Counters
		c.Observer = nil
		r.Counters = &c
	}
	return r
}

// runKernel executes cfg under the given scheduler with a fresh checker
// attached and returns the comparable results plus the scheduler stats.
func runKernel(t *testing.T, cfg Config, k kernel.Kind) (Results, uint64) {
	t.Helper()
	cfg.Kernel = k
	chk := attachChecker(&cfg)
	n := New(cfg)
	res := comparable(n.Run())
	assertClean(t, k.String(), chk)
	return res, n.KernelStats().Skipped
}

// diffKernels are the schedulers checked against the naive oracle: every
// registered kind except the oracle itself. Deriving the list from
// kernel.Kinds keeps the grids honest — a new kernel cannot be added
// without entering the differential contract.
func diffKernels() []kernel.Kind {
	var ks []kernel.Kind
	for _, k := range kernel.Kinds() {
		if k != kernel.Naive {
			ks = append(ks, k)
		}
	}
	return ks
}

// TestKernelDifferential is the scheduling contract made executable: for
// every grid point, the quiescent and event kernels must produce
// Results — counters, latencies, utilizations, and the traced packet
// journeys — deeply equal to the naive tick-everyone oracle's. Subtests
// are keyed by the config's canonical hash, so a failure names the exact
// reproducible configuration.
func TestKernelDifferential(t *testing.T) {
	algs := []routing.Algorithm{routing.XY, routing.OddEven}
	prots := []link.Protection{link.HBH, link.E2E, link.FEC}
	rates := []float64{0, 1e-3, 1e-2}
	for _, alg := range algs {
		for _, prot := range prots {
			for _, rate := range rates {
				cfg := diffConfig(alg, prot, rate, 7)
				hash, err := cfg.CanonicalHash()
				if err != nil {
					t.Fatalf("hashing config: %v", err)
				}
				name := fmt.Sprintf("%s-%s-%g-%s", alg, prot, rate, hash[:12])
				rate := rate
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					want, naiveSkipped := runKernel(t, cfg, kernel.Naive)
					if naiveSkipped != 0 {
						t.Fatalf("naive kernel skipped %d ticks", naiveSkipped)
					}
					for _, k := range diffKernels() {
						got, skipped := runKernel(t, cfg, k)
						if !reflect.DeepEqual(want, got) {
							t.Fatalf("%v kernel diverged from naive:\nnaive: %+v\n%v:    %+v", k, want, k, got)
						}
						if skipped == 0 && rate == 0 {
							t.Errorf("%v kernel never skipped a tick on a fault-free run", k)
						}
					}
					// The parallel kernel must be worker-count blind:
					// band boundaries move with the worker count, and
					// every placement must reproduce the oracle exactly.
					for _, w := range []int{1, 2, 3} {
						c := cfg
						c.KernelWorkers = w
						got, _ := runKernel(t, c, kernel.Parallel)
						if !reflect.DeepEqual(want, got) {
							t.Fatalf("parallel kernel with %d workers diverged from naive:\nnaive:    %+v\nparallel: %+v", w, want, got)
						}
					}
				})
			}
		}
	}
}

// TestKernelDifferentialBurst covers the injection-limit path: once the
// network-wide limit is reached, sleeping sources stop replaying their
// accumulators — that divergence must stay unobservable under both
// skipping schedulers.
func TestKernelDifferentialBurst(t *testing.T) {
	cfg := diffConfig(routing.XY, link.HBH, 1e-3, 11)
	cfg.WarmupMessages = 0
	cfg.InjectLimit = 400
	cfg.TotalMessages = 400
	want, _ := runKernel(t, cfg, kernel.Naive)
	if want.Delivered != 400 {
		t.Fatalf("burst delivered %d/400", want.Delivered)
	}
	for _, k := range diffKernels() {
		got, _ := runKernel(t, cfg, k)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("burst run diverged under %v:\nnaive: %+v\n%v:    %+v", k, want, k, got)
		}
	}
}

// TestKernelDifferentialRecovery drives the deadlock-recovery and
// hard-fault machinery (probes, activations, reroutes) under all three
// kernels: the protocol state machines must be cycle-identical too.
func TestKernelDifferentialRecovery(t *testing.T) {
	cfg := diffConfig(routing.MinimalAdaptive, link.HBH, 1e-3, 3)
	cfg.InjectionRate = 0.30
	cfg.Faults.RT = 5e-4
	cfg.Faults.SA = 5e-4
	cfg.Faults.VA = 5e-4
	want, _ := runKernel(t, cfg, kernel.Naive)
	for _, k := range diffKernels() {
		got, _ := runKernel(t, cfg, k)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("recovery run diverged under %v:\nnaive: %+v\n%v:    %+v", k, want, k, got)
		}
	}
}
