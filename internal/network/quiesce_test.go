package network

import (
	"fmt"
	"reflect"
	"testing"

	"ftnoc/internal/invariant"
	"ftnoc/internal/link"
	"ftnoc/internal/routing"
)

// attachChecker gives cfg a fresh runtime invariant checker (one per
// run — checkers are stateful) and returns it for the post-run verdict.
func attachChecker(cfg *Config) *invariant.Checker {
	chk := invariant.New(invariant.Config{})
	cfg.Invariants = chk
	return chk
}

// assertClean fails the test if the checker recorded any violation, and
// sanity-checks that it actually audited traffic (a checker that saw
// nothing proves nothing).
func assertClean(t *testing.T, label string, chk *invariant.Checker) {
	t.Helper()
	for i, v := range chk.Violations() {
		if i >= 5 {
			t.Errorf("%s: ... and %d more violations", label, chk.Total()-i)
			break
		}
		t.Errorf("%s: %v", label, v)
	}
	injected, _, _, events := chk.Stats()
	if injected == 0 || events == 0 {
		t.Fatalf("%s: checker audited no traffic (injected %d, events %d)", label, injected, events)
	}
}

// diffConfig builds one point of the differential grid: a small network
// with packet journeys traced so the comparison covers event timing, not
// just aggregate counts.
func diffConfig(alg routing.Algorithm, prot link.Protection, linkRate float64, seed uint64) Config {
	cfg := NewConfig()
	cfg.Width, cfg.Height = 4, 4
	cfg.Routing = alg
	cfg.Protection = prot
	cfg.Faults.Link = linkRate
	cfg.Seed = seed
	cfg.WarmupMessages = 50
	cfg.TotalMessages = 600
	cfg.MaxCycles = 300_000
	cfg.TracePIDs = []uint64{1, 2, 3, 5, 8, 13, 21, 34}
	return cfg
}

// comparable strips the one non-comparable field from a Results: the
// counters' Observer callback (a func, installed whenever tracing is on,
// never DeepEqual). Everything measured stays.
func comparable(r Results) Results {
	if r.Counters != nil {
		c := *r.Counters
		c.Observer = nil
		r.Counters = &c
	}
	return r
}

// TestQuiescenceDifferential is the quiescence contract made executable:
// for every grid point, a run with idle-actor skipping enabled must
// produce Results — counters, latencies, utilizations, and the traced
// packet journeys — deeply equal to the naive tick-everyone kernel's.
// Subtests are keyed by the config's canonical hash, so a failure names
// the exact reproducible configuration.
func TestQuiescenceDifferential(t *testing.T) {
	algs := []routing.Algorithm{routing.XY, routing.OddEven}
	prots := []link.Protection{link.HBH, link.E2E, link.FEC}
	rates := []float64{0, 1e-3, 1e-2}
	for _, alg := range algs {
		for _, prot := range prots {
			for _, rate := range rates {
				cfg := diffConfig(alg, prot, rate, 7)
				hash, err := cfg.CanonicalHash()
				if err != nil {
					t.Fatalf("hashing config: %v", err)
				}
				name := fmt.Sprintf("%s-%s-%g-%s", alg, prot, rate, hash[:12])
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					naiveCfg := cfg
					naiveCfg.NaiveKernel = true
					naiveChk := attachChecker(&naiveCfg)
					nn := New(naiveCfg)
					want := comparable(nn.Run())
					if _, skipped := nn.KernelStats(); skipped != 0 {
						t.Fatalf("naive kernel skipped %d ticks", skipped)
					}
					assertClean(t, "naive", naiveChk)

					quiesCfg := cfg
					quiesChk := attachChecker(&quiesCfg)
					qn := New(quiesCfg)
					got := comparable(qn.Run())
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("quiescent kernel diverged from naive:\nnaive:     %+v\nquiescent: %+v", want, got)
					}
					if _, skipped := qn.KernelStats(); skipped == 0 && rate == 0 {
						t.Error("quiescent kernel never skipped a tick on a fault-free run")
					}
					assertClean(t, "quiescent", quiesChk)
				})
			}
		}
	}
}

// TestQuiescenceDifferentialBurst covers the injection-limit path: once
// the network-wide limit is reached, sleeping sources stop replaying
// their accumulators — that divergence must stay unobservable.
func TestQuiescenceDifferentialBurst(t *testing.T) {
	cfg := diffConfig(routing.XY, link.HBH, 1e-3, 11)
	cfg.WarmupMessages = 0
	cfg.InjectLimit = 400
	cfg.TotalMessages = 400
	naiveCfg := cfg
	naiveCfg.NaiveKernel = true
	naiveChk := attachChecker(&naiveCfg)
	quiesChk := attachChecker(&cfg)
	want := comparable(New(naiveCfg).Run())
	got := comparable(New(cfg).Run())
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("burst run diverged:\nnaive:     %+v\nquiescent: %+v", want, got)
	}
	if want.Delivered != 400 {
		t.Fatalf("burst delivered %d/400", want.Delivered)
	}
	assertClean(t, "naive", naiveChk)
	assertClean(t, "quiescent", quiesChk)
}

// TestQuiescenceDifferentialRecovery drives the deadlock-recovery and
// hard-fault machinery (probes, activations, reroutes) under both
// kernels: the protocol state machines must be cycle-identical too.
func TestQuiescenceDifferentialRecovery(t *testing.T) {
	cfg := diffConfig(routing.MinimalAdaptive, link.HBH, 1e-3, 3)
	cfg.InjectionRate = 0.30
	cfg.Faults.RT = 5e-4
	cfg.Faults.SA = 5e-4
	cfg.Faults.VA = 5e-4
	naiveCfg := cfg
	naiveCfg.NaiveKernel = true
	naiveChk := attachChecker(&naiveCfg)
	quiesChk := attachChecker(&cfg)
	want := comparable(New(naiveCfg).Run())
	got := comparable(New(cfg).Run())
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("recovery run diverged:\nnaive:     %+v\nquiescent: %+v", want, got)
	}
	assertClean(t, "naive", naiveChk)
	assertClean(t, "quiescent", quiesChk)
}
