package network

import (
	"fmt"
	"strings"
	"testing"

	"ftnoc/internal/flit"
	"ftnoc/internal/routing"
)

// legacySignature polls the routers the way the removed sampler did.
func legacySignature(n *Network, pid uint64) string {
	var locs []string
	for i, r := range n.routers {
		for _, l := range r.FindPacket(flit.PacketID(pid)) {
			locs = append(locs, fmt.Sprintf("router%d/%s", i, l))
		}
	}
	return strings.Join(locs, " ")
}

// The journey tracker's event-folded counts must agree with a direct
// poll of the router state at every single cycle — including under
// heavy link errors and deadlock recovery, where flits are parked,
// replayed and recalled. This is the live invariant behind the golden
// test.
func TestJourneyMatchesFindPacketEveryCycle(t *testing.T) {
	cfg := smallConfig()
	cfg.WarmupMessages = 0
	cfg.TotalMessages = 400
	cfg.Routing = routing.MinimalAdaptive
	cfg.VCs = 2
	cfg.InjectionRate = 0.5
	cfg.Faults.Link = 5e-3
	cfg.Cthres = 32
	cfg.Seed = 13
	pids := make([]uint64, 0, 120)
	for pid := uint64(1); pid <= 120; pid++ {
		pids = append(pids, pid)
	}
	cfg.TracePIDs = pids

	n := New(cfg)
	for cycle := 0; cycle < 3_000; cycle++ {
		n.kernel.Step()
		n.journey.endCycle(n.kernel.Cycle())
		for _, pid := range pids {
			want := legacySignature(n, pid)
			got := n.journey.pids[pid].signature()
			if got != want {
				t.Fatalf("cycle %d pid %d:\n  journey: %q\n  poll:    %q",
					n.kernel.Cycle(), pid, got, want)
			}
		}
	}
}
