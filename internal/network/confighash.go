package network

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// CanonicalJSON returns the configuration's canonical serialized form:
// compact JSON with the struct's fixed field order. It is the input to
// CanonicalHash and is stable across runs and processes — encoding/json
// emits struct fields in declaration order, and every Config field is a
// value type, so equal configurations always serialize to equal bytes.
// TraceSink and Metrics carry `json:"-"`: observability attachments do
// not alter simulation results and must not alter the hash.
func (c Config) CanonicalJSON() ([]byte, error) {
	b, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("network: canonicalizing config: %w", err)
	}
	return b, nil
}

// CanonicalHash returns the hex SHA-256 of CanonicalJSON. Because a
// simulation is a pure function of its Config (seed included), the hash
// content-addresses the run's results: equal hashes mean byte-identical
// measurements.
func (c Config) CanonicalHash() (string, error) {
	b, err := c.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
