package network

import (
	"bytes"
	"strings"
	"testing"

	"ftnoc/internal/invariant"
)

// FuzzReadConfig throws arbitrary documents at the configuration parser
// and holds it to three laws: it never panics; an accepted document
// re-serialises to a fixed point (write → read → write is
// byte-identical); and a document that additionally passes Validate can
// be simulated — briefly, with the invariant checker attached — without
// panicking or violating a structural invariant. The last law is what
// makes this a whole-stack fuzzer rather than a JSON round-trip check.
func FuzzReadConfig(f *testing.F) {
	seed := NewConfig()
	var buf bytes.Buffer
	if err := seed.WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{}`)
	f.Add(`{"width":3,"height":3,"vcs":2}`)
	f.Add(`{"faults":{"link":0.001},"protection":2}`)
	f.Add(`{"hard_faults":[{"from":5,"dir":2}]}`)
	f.Add(`{"injection_rate":1e999}`)
	f.Add(`{"width":-1}`)

	f.Fuzz(func(t *testing.T, doc string) {
		cfg, err := ReadConfig(strings.NewReader(doc))
		if err != nil {
			return
		}

		var w1 bytes.Buffer
		if err := cfg.WriteJSON(&w1); err != nil {
			t.Fatalf("accepted config does not re-serialise: %v", err)
		}
		cfg2, err := ReadConfig(bytes.NewReader(w1.Bytes()))
		if err != nil {
			t.Fatalf("own output rejected: %v\n%s", err, w1.Bytes())
		}
		var w2 bytes.Buffer
		if err := cfg2.WriteJSON(&w2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("write/read/write not a fixed point:\nfirst:  %s\nsecond: %s", w1.Bytes(), w2.Bytes())
		}

		if cfg.Validate() != nil {
			return
		}
		// Keep the simulated slice small and bounded so exploration stays
		// fast; these overrides cannot invalidate a valid config.
		if cfg.Width*cfg.Height > 36 || cfg.VCs > 8 || cfg.BufDepth > 32 || cfg.PacketSize > 32 {
			return
		}
		cfg.WarmupMessages = 0
		cfg.TotalMessages = 20
		cfg.MaxCycles = 50_000
		cfg.StallCycles = 10_000
		cfg.TracePIDs = nil
		chk := invariant.New(invariant.Config{})
		cfg.Invariants = chk
		New(cfg).Run()
		for _, v := range chk.Violations() {
			t.Errorf("invariant violation on fuzzed config: %v", v)
		}
		if t.Failed() {
			t.Fatalf("config: %+v", cfg)
		}
	})
}
