package network

import (
	"strings"
	"testing"

	"ftnoc/internal/topology"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := NewConfig()
	cfg.Width = 6
	cfg.Faults.Link = 1e-3
	cfg.HardFaults = []topology.LinkID{{From: 5, Dir: topology.East}}
	cfg.TracePIDs = []uint64{7}
	cfg.DuplicateRetrans = true

	var b strings.Builder
	if err := cfg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadConfig(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != 6 || got.Faults.Link != 1e-3 || !got.DuplicateRetrans {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if len(got.HardFaults) != 1 || got.HardFaults[0].From != 5 || got.HardFaults[0].Dir != topology.East {
		t.Fatalf("hard faults lost: %+v", got.HardFaults)
	}
	if len(got.TracePIDs) != 1 || got.TracePIDs[0] != 7 {
		t.Fatalf("trace pids lost: %+v", got.TracePIDs)
	}
}

func TestReadConfigPartialKeepsDefaults(t *testing.T) {
	got, err := ReadConfig(strings.NewReader(`{"Width": 4, "Height": 4}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != 4 || got.Height != 4 {
		t.Fatal("overrides not applied")
	}
	// Everything else keeps paper defaults.
	if got.VCs != 3 || got.PacketSize != 4 || got.InjectionRate != 0.25 || !got.ACEnabled {
		t.Fatalf("defaults lost: %+v", got)
	}
}

func TestReadConfigRejectsUnknownFields(t *testing.T) {
	if _, err := ReadConfig(strings.NewReader(`{"Widht": 4}`)); err == nil {
		t.Fatal("typo field accepted")
	}
}

func TestConfigValidationPanics(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Width = 1; c.Height = 1 },
		func(c *Config) { c.VCs = 0 },
		func(c *Config) { c.BufDepth = 0 },
		func(c *Config) { c.PacketSize = 1 },
		func(c *Config) { c.PipelineDepth = 0 },
		func(c *Config) { c.InjectionRate = 1.5 },
		func(c *Config) { c.TotalMessages = 0 },
		func(c *Config) { c.TotalMessages = 5; c.WarmupMessages = 10 },
	}
	for i, mutate := range bad {
		cfg := NewConfig()
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad config %d did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestShifterDepthOption(t *testing.T) {
	cfg := NewConfig()
	if cfg.shifterDepth() != 3 {
		t.Fatalf("default shifter depth %d, want 3", cfg.shifterDepth())
	}
	cfg.DuplicateRetrans = true
	if cfg.shifterDepth() != 6 {
		t.Fatalf("duplicate shifter depth %d, want 6", cfg.shifterDepth())
	}
}

func TestResultsString(t *testing.T) {
	if (Results{}).String() == "" {
		t.Fatal("empty Results.String")
	}
}
