package network

import (
	"testing"

	"ftnoc/internal/fault"
)

// §4.5: a soft error inside a retransmission buffer corrupts the stored
// "clean" copy. When a link error then forces a replay, the corrupt copy
// can never satisfy the receiver — an endless retransmission loop that
// wedges the link. The paper's fool-proof fix is duplicate buffers.
func TestRetransBufFaultsLoopWithoutDuplicates(t *testing.T) {
	cfg := smallConfig()
	cfg.Faults.Link = 0.05
	cfg.Faults.LinkDouble = 0.5 // force frequent replays
	cfg.Faults.RetransBuf = 0.3
	cfg.DuplicateRetrans = false
	cfg.StallCycles = 20_000
	cfg.MaxCycles = 100_000
	res := New(cfg).Run()
	if res.Counters.Undetected[fault.RetransBufError] == 0 {
		t.Fatal("no retransmission-buffer upsets landed")
	}
	// The corrupted copies must visibly damage the run: an endless
	// retransmission loop stalls the affected links.
	if !res.Stalled {
		t.Fatalf("network survived corrupted retransmission copies: %v", res)
	}
}

// With the duplicate buffers the same fault rates are fully masked.
func TestRetransBufFaultsMaskedByDuplicates(t *testing.T) {
	cfg := smallConfig()
	cfg.Faults.Link = 0.05
	cfg.Faults.LinkDouble = 0.5
	cfg.Faults.RetransBuf = 0.3
	cfg.DuplicateRetrans = true
	res := New(cfg).Run()
	if res.Stalled || res.Delivered < cfg.TotalMessages {
		t.Fatalf("duplicate buffers failed to mask: %v", res)
	}
	inj := res.Counters.Injected[fault.RetransBufError]
	cor := res.Counters.Corrected[fault.RetransBufError]
	if inj == 0 || cor != inj {
		t.Fatalf("masking accounting wrong: injected %d corrected %d", inj, cor)
	}
	if res.CorruptedPackets != 0 || res.SinkAnomalies != 0 {
		t.Fatalf("corruption leaked despite duplicates: %+v", res)
	}
}
