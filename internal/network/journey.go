package network

import (
	"fmt"
	"sort"
	"strings"

	"ftnoc/internal/topology"
	"ftnoc/internal/trace"
)

// journeyTracker is the event-bus consumer behind Config.TracePIDs: it
// folds flit-movement events into per-packet buffer-residency counts and
// renders, at each cycle boundary, the same human-readable location
// signature the original polling tracer produced — byte for byte.
//
// The count model mirrors what Router.FindPacket used to observe: a flit
// is visible while it sits in an input-VC buffer (buf) or in that VC's
// recovery parking list (parked). Everything else — wires, shifters,
// PE queues — is "in flight".
type journeyTracker struct {
	pids map[uint64]*journeyState
}

// journeyKey identifies one input VC of one router.
type journeyKey struct {
	node int32
	port int8
	vc   int8
}

type journeyCount struct{ buf, parked int }

type journeyState struct {
	counts map[journeyKey]journeyCount
	last   string
	lines  []string
}

func newJourneyTracker(pids []uint64) *journeyTracker {
	t := &journeyTracker{pids: make(map[uint64]*journeyState, len(pids))}
	for _, pid := range pids {
		if _, dup := t.pids[pid]; dup {
			continue
		}
		t.pids[pid] = &journeyState{counts: make(map[journeyKey]journeyCount)}
	}
	return t
}

// Emit implements trace.Sink, folding one flit-movement event into the
// residency counts. Non-movement kinds and untraced packets are ignored.
func (t *journeyTracker) Emit(e trace.Event) {
	var dBuf, dParked int
	switch e.Kind {
	case trace.FlitBuffered:
		dBuf = 1
	case trace.FlitDequeued:
		if e.Aux&trace.DequeuedFromBuffer != 0 {
			dBuf = -1
		} else {
			dParked = -1
		}
	case trace.FlitParked:
		dBuf, dParked = -1, 1
	case trace.FlitRecalled:
		dParked = 1
	default:
		return
	}
	s, ok := t.pids[e.PID]
	if !ok {
		return
	}
	k := journeyKey{node: e.Node, port: e.Port, vc: e.VC}
	c := s.counts[k]
	c.buf += dBuf
	c.parked += dParked
	if c.buf == 0 && c.parked == 0 {
		delete(s.counts, k)
	} else {
		s.counts[k] = c
	}
}

// endCycle renders each traced packet's location signature for the cycle
// that just completed and appends a trace line when it changed.
func (t *journeyTracker) endCycle(cycle uint64) {
	for _, s := range t.pids {
		sig := s.signature()
		if sig == s.last {
			continue
		}
		s.last = sig
		if sig == "" {
			sig = "(in flight / source / delivered)"
		}
		s.lines = append(s.lines, fmt.Sprintf("cycle %d: %s", cycle, sig))
	}
}

// signature renders the occupied input VCs in (router, port, VC) order,
// matching the original router-by-router poll.
func (s *journeyState) signature() string {
	if len(s.counts) == 0 {
		return ""
	}
	keys := make([]journeyKey, 0, len(s.counts))
	for k := range s.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.node != b.node {
			return a.node < b.node
		}
		if a.port != b.port {
			return a.port < b.port
		}
		return a.vc < b.vc
	})
	locs := make([]string, 0, len(keys))
	for _, k := range keys {
		c := s.counts[k]
		loc := fmt.Sprintf("router%d/%v%d[buf:%d", k.node, topology.Port(k.port), k.vc, c.buf)
		if c.parked > 0 {
			loc += fmt.Sprintf(" parked:%d", c.parked)
		}
		loc += "]"
		locs = append(locs, loc)
	}
	return strings.Join(locs, " ")
}

// export converts the recorded journeys to the public Results form: only
// packets that produced at least one line appear.
func (t *journeyTracker) export() map[uint64][]string {
	out := make(map[uint64][]string, len(t.pids))
	for pid, s := range t.pids {
		if len(s.lines) > 0 {
			out[pid] = s.lines
		}
	}
	return out
}
