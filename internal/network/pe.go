package network

import (
	"ftnoc/internal/ecc"
	"ftnoc/internal/flit"
	"ftnoc/internal/link"
	"ftnoc/internal/trace"
	"ftnoc/internal/traffic"
)

// nackMagic marks a tail payload as an end-to-end retransmission request
// (E2E/FEC baselines): the tail word is nackMagic<<32 | packetID. A
// 32-bit magic makes accidental collision with a pseudo-random payload
// word practically impossible.
const nackMagic = uint64(0xE2E1F17A)

// isNACKRequest reports whether a tail word encodes a retransmission
// request, and for which packet.
func isNACKRequest(word uint64) (flit.PacketID, bool) {
	if word>>32 != nackMagic {
		return 0, false
	}
	return flit.PacketID(word & 0xffffffff), true
}

// retained is an E2E/FEC source-side packet copy awaiting implicit
// acknowledgement (timeout) or a retransmission request.
type retained struct {
	pkt      flit.Packet
	deadline uint64
}

// pe is one node's processing element: traffic source, packet injector,
// destination sink, and — under the E2E/FEC baselines — the end-to-end
// retransmission endpoint.
type pe struct {
	net *Network
	id  flit.NodeID
	src *traffic.Source
	tx  *link.Transmitter
	rx  *link.Receiver

	// Injection side.
	queue   []flit.Packet // waiting packets; front is next to start
	ctrl    [][]flit.Flit // pre-built priority packets (e2e NACKs) awaiting a VC
	vcFlits [][]flit.Flit // per VC, remaining flits of the packet being injected
	vcRR    int

	// Sink side, per VC of the router->PE channel.
	sinkPID     []flit.PacketID
	sinkSrc     []flit.NodeID
	sinkBorn    []uint64
	sinkCorrupt []bool
	sinkLive    []bool
	sinkNextSeq []uint8

	// E2E/FEC source retention buffer.
	retention map[flit.PacketID]retained
}

func newPE(n *Network, id flit.NodeID, src *traffic.Source, tx *link.Transmitter, rx *link.Receiver) *pe {
	vcs := n.cfg.VCs
	return &pe{
		net:         n,
		id:          id,
		src:         src,
		tx:          tx,
		rx:          rx,
		vcFlits:     make([][]flit.Flit, vcs),
		sinkPID:     make([]flit.PacketID, vcs),
		sinkSrc:     make([]flit.NodeID, vcs),
		sinkBorn:    make([]uint64, vcs),
		sinkCorrupt: make([]bool, vcs),
		sinkLive:    make([]bool, vcs),
		sinkNextSeq: make([]uint8, vcs),
		retention:   make(map[flit.PacketID]retained),
	}
}

// Tick runs one cycle of PE behaviour.
func (p *pe) Tick(cycle uint64) {
	p.tx.BeginCycle(cycle)
	p.tx.ExpireShifters(cycle)
	p.eject(cycle)
	p.generate(cycle)
	p.assign()
	p.inject(cycle)
	if p.usesRetention() && cycle%256 == 0 {
		p.sweepRetention(cycle)
	}
}

func (p *pe) usesRetention() bool {
	return p.net.cfg.Protection == link.E2E || p.net.cfg.Protection == link.FEC
}

// generate asks the traffic source for this cycle's injection.
func (p *pe) generate(cycle uint64) {
	if lim := p.net.cfg.InjectLimit; lim != 0 && p.net.injected >= lim {
		return
	}
	dst, ok := p.src.Tick()
	if !ok {
		return
	}
	p.net.injected++
	pid := p.net.nextPID()
	p.queue = append(p.queue, flit.Packet{
		ID:         pid,
		Src:        p.id,
		Dst:        dst,
		Size:       p.net.cfg.PacketSize,
		InjectedAt: cycle,
	})
	if p.net.bus.Enabled() {
		p.net.bus.Emit(trace.Event{
			Cycle: cycle, Kind: trace.FlitInjected,
			Node: int32(p.id), Port: -1, VC: -1,
			PID: uint64(pid), Aux: uint64(dst),
		})
	}
}

// assign moves the next packet (priority control first, then the data
// queue) onto an idle injection VC.
func (p *pe) assign() {
	for v := range p.vcFlits {
		if len(p.vcFlits[v]) != 0 {
			continue
		}
		switch {
		case len(p.ctrl) > 0:
			p.vcFlits[v] = p.ctrl[0]
			p.ctrl = p.ctrl[1:]
		case len(p.queue) > 0:
			p.vcFlits[v] = p.queue[0].Flits()
			p.queue = p.queue[1:]
		default:
			return
		}
	}
}

// inject sends at most one flit into the router's local port, rotating
// across VCs for fairness.
func (p *pe) inject(cycle uint64) {
	n := len(p.vcFlits)
	for i := 0; i < n; i++ {
		v := (p.vcRR + i) % n
		fs := p.vcFlits[v]
		if len(fs) == 0 || p.tx.Credits(v) <= 0 || p.tx.HasReplay() {
			continue
		}
		f := fs[0]
		p.vcFlits[v] = fs[1:]
		p.tx.Send(f, v, cycle)
		_, isReq := isNACKRequest(f.Word)
		if f.Type == flit.Tail && p.usesRetention() && !isReq {
			p.retention[f.PID] = retained{
				pkt:      flit.Packet{ID: f.PID, Src: f.Src, Dst: f.Dst, Size: p.net.cfg.PacketSize, InjectedAt: f.InjectedAt},
				deadline: cycle + p.net.cfg.E2ETimeout,
			}
			if occ := len(p.retention); occ > p.net.e2eBufMax {
				p.net.e2eBufMax = occ
			}
		}
		p.vcRR = v + 1
		return
	}
}

// eject consumes the cycle's arrivals from the router and reassembles
// packets.
func (p *pe) eject(cycle uint64) {
	data, _ := p.rx.ReceiveAll(cycle)
	for _, f := range data {
		vc := int(f.VC)
		if vc >= len(p.sinkPID) {
			vc = 0
		}
		p.rx.ReturnCredit(vc)
		p.consume(cycle, vc, f)
	}
}

// consume runs the destination-side integrity check and packet assembly
// for one flit.
func (p *pe) consume(cycle uint64, vc int, f flit.Flit) {
	switch f.Type {
	case flit.Head:
		if p.sinkLive[vc] {
			// Previous packet never closed: stranded wormhole debris
			// (possible only with unprotected logic faults).
			p.net.sinkAnomalies++
		}
		hdr := flit.DecodeHeader(f.Word)
		p.sinkLive[vc] = true
		p.sinkPID[vc] = hdr.PID
		p.sinkSrc[vc] = hdr.Src
		p.sinkBorn[vc] = f.InjectedAt
		p.sinkCorrupt[vc] = false
		p.sinkNextSeq[vc] = 1
		if hdr.Dst != p.id {
			// Misdelivered packet that escaped every check.
			p.sinkCorrupt[vc] = true
			p.net.sinkAnomalies++
		}
		return
	case flit.Body, flit.Tail:
		if !p.sinkLive[vc] {
			p.net.sinkAnomalies++
			return
		}
		// Sequence continuity: a gap means flits were lost in transit
		// (e.g. a retransmission NACK lost on an unprotected handshake
		// line, §4.6).
		if f.Seq != p.sinkNextSeq[vc] || f.PID != p.sinkPID[vc] {
			p.sinkCorrupt[vc] = true
		} else {
			p.sinkNextSeq[vc]++
		}
		if p.flitCorrupt(f) {
			p.sinkCorrupt[vc] = true
		}
		if f.Type != flit.Tail {
			return
		}
	default:
		return
	}

	// Tail: packet complete.
	p.sinkLive[vc] = false
	pid, src, born, corrupt := p.sinkPID[vc], p.sinkSrc[vc], p.sinkBorn[vc], p.sinkCorrupt[vc]

	if reqPID, isReq := isNACKRequest(f.Word); isReq && !corrupt && p.usesRetention() {
		// An end-to-end retransmission request addressed to us.
		p.handleRetransRequest(cycle, reqPID)
		return
	}
	if corrupt {
		p.net.corruptedPackets++
		if p.usesRetention() {
			p.sendRetransRequest(cycle, src, pid)
		}
		return
	}
	if p.net.bus.Enabled() {
		p.net.bus.Emit(trace.Event{
			Cycle: cycle, Kind: trace.FlitEjected,
			Node: int32(p.id), Port: -1, VC: int8(vc),
			PID: uint64(pid), Aux: uint64(src),
		})
	}
	p.net.recordDelivery(cycle, born)
}

// flitCorrupt applies the destination's end check per protection scheme.
func (p *pe) flitCorrupt(f flit.Flit) bool {
	_, _, out := ecc.Decode(f.Word, f.Check)
	p.net.events.ECCDecodes++
	switch p.net.cfg.Protection {
	case link.E2E:
		// Detection-only at the destination: any error condemns the packet.
		return out != ecc.OK
	default:
		// HBH/FEC corrected singles at the hops; only uncorrectable
		// residue condemns the packet.
		return out == ecc.Detected
	}
}

// sendRetransRequest injects the 2-flit end-to-end NACK packet back to
// the source, ahead of local traffic.
func (p *pe) sendRetransRequest(cycle uint64, src flit.NodeID, pid flit.PacketID) {
	req := flit.Packet{
		ID:         p.net.nextPID(),
		Src:        p.id,
		Dst:        src,
		Size:       2,
		InjectedAt: cycle,
	}
	fs := req.Flits()
	word := nackMagic<<32 | uint64(pid)&0xffffffff
	fs[1].Word = word
	fs[1].Check = ecc.Encode(word)
	p.net.e2eNACKs++
	// Control traffic jumps the queue: packet loss recovery cannot wait
	// behind a saturated source.
	p.queuePacketFront(fs)
}

// queuePacketFront stages pre-built flits ahead of all data traffic.
func (p *pe) queuePacketFront(fs []flit.Flit) {
	p.ctrl = append(p.ctrl, fs)
}

// handleRetransRequest re-injects a retained packet.
func (p *pe) handleRetransRequest(cycle uint64, pid flit.PacketID) {
	ret, ok := p.retention[pid]
	if !ok {
		// Evicted: the packet is unrecoverable.
		p.net.lostPackets++
		return
	}
	ret.deadline = cycle + p.net.cfg.E2ETimeout
	p.retention[pid] = ret
	p.net.e2eRetransmits++
	// Retransmission keeps the original injection timestamp so measured
	// latency includes the recovery round trip.
	p.queue = append([]flit.Packet{ret.pkt}, p.queue...)
}

// sweepRetention drops copies whose implicit-ACK timeout expired.
func (p *pe) sweepRetention(cycle uint64) {
	for pid, ret := range p.retention {
		if cycle > ret.deadline {
			delete(p.retention, pid)
		}
	}
}
